// E11 -- the Section 4.2 remark: "In some settings, it might make sense to
// run the agreement protocol less frequently, and generate seeds of
// sufficient length to satisfy the demands of multiple phases.  Such
// modifications do not change our worst-case time bounds but might improve
// an average case cost or practical performance."
//
// Measured: with k phases per SeedAlg run, the preamble overhead falls from
// T_s/(T_s+T_prog) to T_s/(T_s+k*T_prog); goodput (deliveries per round)
// rises correspondingly while the spec stays green.
#include <memory>

#include "bench_support.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

struct Sample {
  double deliveries_per_kround = 0;
  double progress_freq = 1.0;
  bool spec_ok = false;
};

Sample trial(std::uint64_t seed, int k) {
  const auto g = graph::clique_cluster(12);
  lb::LbScales scales;
  scales.ack_scale = 0.05;
  auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  params.phases_per_seed = k;
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, seed);
  sim.keep_busy({0, 1, 2});
  const std::int64_t rounds = 20 * params.phase_length();
  sim.run_rounds(rounds);
  const auto& r = sim.report();
  Sample out;
  out.deliveries_per_kround =
      1000.0 * static_cast<double>(r.recv_count + r.raw_receptions) /
      static_cast<double>(rounds);
  out.progress_freq =
      r.progress.trials() ? r.progress.frequency() : 1.0;
  out.spec_ok = r.timely_ack_ok && r.validity_ok && r.violations == 0;
  return out;
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E11: seed reuse across phases (Section 4.2 remark)",
      "Claim: running SeedAlg once per k phases (with a k*kappa-bit seed) "
      "keeps the\nworst-case bounds and improves average-case cost.  "
      "Measured: preamble overhead,\nreceptions per 1000 rounds, progress "
      "frequency, spec verdicts.  Clique Delta=12,\n3 saturated senders.");

  const auto base = lb::LbParams::calibrated(0.1, 1.5, 12, 12,
                                             lb::LbScales{1.0, 1.0, 1.0, 1.1,
                                                          0.05});
  Table table({"k (phases/seed)", "preamble overhead", "recv per 1k rounds",
               "progress freq", "spec"});
  const int trials = 16;
  for (int k : {1, 2, 4, 8}) {
    auto p = base;
    p.phases_per_seed = k;
    const double overhead = static_cast<double>(p.t_s) /
                            static_cast<double>(p.group_length());
    const auto samples = stats::run_trials(
        trials, 0xe11ULL + static_cast<std::uint64_t>(k),
        [&](std::size_t, std::uint64_t s) { return trial(s, k); });
    double goodput = 0, progress = 0;
    bool ok = true;
    for (const auto& s : samples) {
      goodput += s.deliveries_per_kround;
      progress += s.progress_freq;
      ok = ok && s.spec_ok;
    }
    table.row()
        .cell(k)
        .cell(overhead, 3)
        .cell(goodput / trials, 1)
        .cell(progress / trials, 3)
        .cell(ok ? "OK" : "VIOLATED");
  }
  bench::print_table(table);
  std::cout << "\nShape check: overhead falls ~1/k; goodput rises; progress "
               "frequency and the\ndeterministic spec stay put -- the remark "
               "holds as stated.\n";
  return 0;
}
