// E3 -- Theorem 4.1 (progress): t_prog = O(r^2 log Delta log(r^4 log^4
// Delta / eps1)).  Measured: rounds until a receiver with one active
// reliable neighbor first receives a message, as Delta grows.  The paper's
// bound says this grows ~log Delta; a receiver is also guaranteed to
// receive within one t_prog phase with probability 1 - eps1.
//
// Ported: the workload is the checked-in scenario file
// campaigns/e3_progress.json (clique sweep, Bernoulli(0.5) scheduler, 30
// trials per Delta, seed 0xe3 + Delta); this binary is a thin wrapper that
// runs it through the scn::CampaignRunner and prints the historical table
// from the per-trial samples.  The numbers are bit-identical to the
// pre-port hand-written bench: same trial seeds, same workload body
// (src/scn/workload.cpp).
#include <cmath>
#include <iostream>

#include "bench_support.h"
#include "scn/campaign.h"

int main() {
  using namespace dg;
  const std::string path = bench::campaign_file("e3_progress.json");
  const auto parsed = scn::parse_campaign_file(path);
  if (!parsed.ok()) {
    std::cerr << parsed.error << "\n";
    return 2;
  }
  const auto result = scn::run_campaign(parsed.campaign, scn::RunOptions{});

  bench::print_header(
      "E3: progress latency vs Delta (Theorem 4.1)",
      "Claim: t_prog = O(r^2 log Delta log(r^4 log^4 Delta / eps1)); "
      "measured first-reception\nlatency at a receiver with one active "
      "reliable neighbor grows ~log Delta.\neps1 = 0.1, r = 1.5, clique "
      "topologies (Delta = clique size).\nScenario: " +
          path);

  Table table({"Delta", "measured mean", "measured p90", "t_prog bound",
               "mean/log2(Delta)", "Pr[recv <= 1 phase]"});
  for (const auto& v : result.variants) {
    const auto clique = v.spec.topology.k;
    std::vector<double> lat;
    double bound = 0;
    std::size_t within_phase = 0;
    for (const auto& row : v.trials) {
      const double latency = row[0];
      bound = row[1];
      if (latency > 0) {
        lat.push_back(latency);
        if (latency <= bound) ++within_phase;
      }
    }
    const auto summary = stats::Summary::of(lat);
    table.row()
        .cell(static_cast<std::uint64_t>(clique))
        .cell(summary.mean, 1)
        .cell(summary.p90, 1)
        .cell(bound, 0)
        .cell(summary.mean / std::log2(static_cast<double>(clique)), 1)
        .cell(static_cast<double>(within_phase) /
                  static_cast<double>(v.trials.size()),
              2);
  }
  bench::print_table(table);
  std::cout << "\nShape check: 'measured mean' grows sub-linearly (log-ish) "
               "in Delta; receivers\nget a message within one phase with "
               "probability >= 1 - eps1 = 0.9.\n";
  return 0;
}
