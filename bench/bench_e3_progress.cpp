// E3 -- Theorem 4.1 (progress): t_prog = O(r^2 log Delta log(r^4 log^4
// Delta / eps1)).  Measured: rounds until a receiver with one active
// reliable neighbor first receives a message, as Delta grows.  The paper's
// bound says this grows ~log Delta; a receiver is also guaranteed to
// receive within one t_prog phase with probability 1 - eps1.
#include <memory>

#include "bench_support.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

struct Sample {
  double latency = 0;       // rounds to first reception (0 = never)
  double phase_len = 0;     // the spec t_prog bound
};

Sample trial(std::uint64_t seed, std::size_t clique) {
  const auto g = graph::clique_cluster(clique);
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  const auto latency = bench::lb_progress_latency(
      g, std::make_unique<sim::BernoulliScheduler>(0.5), params,
      /*senders=*/{1}, /*receiver=*/0, /*horizon_phases=*/12, seed);
  return Sample{static_cast<double>(latency),
                static_cast<double>(params.t_prog_bound())};
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E3: progress latency vs Delta (Theorem 4.1)",
      "Claim: t_prog = O(r^2 log Delta log(r^4 log^4 Delta / eps1)); "
      "measured first-reception\nlatency at a receiver with one active "
      "reliable neighbor grows ~log Delta.\neps1 = 0.1, r = 1.5, clique "
      "topologies (Delta = clique size).");

  Table table({"Delta", "measured mean", "measured p90", "t_prog bound",
               "mean/log2(Delta)", "Pr[recv <= 1 phase]"});
  const int trials = 30;
  for (std::size_t clique : {4, 8, 16, 32, 64}) {
    const auto samples =
        stats::run_trials(trials, 0xe3ULL + clique,
                          [&](std::size_t, std::uint64_t s) {
                            return trial(s, clique);
                          });
    std::vector<double> lat;
    double bound = 0;
    std::size_t within_phase = 0;
    for (const auto& s : samples) {
      bound = s.phase_len;
      if (s.latency > 0) {
        lat.push_back(s.latency);
        if (s.latency <= s.phase_len) ++within_phase;
      }
    }
    const auto summary = stats::Summary::of(lat);
    table.row()
        .cell(static_cast<std::uint64_t>(clique))
        .cell(summary.mean, 1)
        .cell(summary.p90, 1)
        .cell(bound, 0)
        .cell(summary.mean / std::log2(static_cast<double>(clique)), 1)
        .cell(static_cast<double>(within_phase) / trials, 2);
  }
  bench::print_table(table);
  std::cout << "\nShape check: 'measured mean' grows sub-linearly (log-ish) "
               "in Delta; receivers\nget a message within one phase with "
               "probability >= 1 - eps1 = 0.9.\n";
  return 0;
}
