// E12 -- the impossibility counterfactual ([11], cited in Related Work):
// "local broadcast with efficient progress is impossible with an adaptive
// link scheduler of this type, but is feasible with an oblivious link
// schedule."
//
// The paper assumes obliviousness; this bench shows the assumption is
// load-bearing.  The TargetedJammer (sim/adaptive.h) picks the unreliable
// edges AFTER seeing each round's transmit decisions -- illegal in the
// model.  Its power grows with the traffic available to weaponize, which is
// exactly the leverage obliviousness denies:
//
//   Scenario A (protocol traffic): the receiver's 16 unreliable neighbors
//   are saturated senders running the same algorithm.  The jammer turns
//   every coincidental neighbor transmission into a collision -- measurable
//   degradation, bounded only by how often the protocol's own randomness
//   leaves it nothing to jam with.
//
//   Scenario B (heavy exogenous traffic): the unreliable neighbors carry
//   always-on foreign traffic.  An oblivious scheduler can only turn that
//   into constant noise decided in advance; the adaptive jammer turns it
//   into a perfect shutter -- the receiver never hears anything, for any
//   algorithm, confirming the impossibility.
#include <memory>

#include "baseline/decay.h"
#include "bench_support.h"
#include "sim/adaptive.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

constexpr std::size_t kUnreliable = 16;
constexpr sim::Round kHorizon = 4096;
constexpr int kLogDelta = 5;

/// Heavy exogenous traffic: transmits a fresh message every round.
class BlasterProcess final : public sim::Process {
 public:
  explicit BlasterProcess(sim::ProcessId id) : sim::Process(id) {}
  std::optional<sim::Packet> transmit(sim::RoundContext&) override {
    return sim::Packet{id(),
                       sim::DataPayload{sim::MessageId{id(), ++seq_}, 0}};
  }
  void receive(const std::optional<sim::Packet>&,
               sim::RoundContext&) override {}

 private:
  std::uint32_t seq_ = 0;
};

struct Config {
  bool lbalg = false;     // algorithm under test at the reliable sender
  bool blasters = false;  // scenario B?
  bool adaptive = false;  // install the jammer?
};

double trial(const Config& cfg, std::uint64_t seed) {
  const auto g = bench::contention_star(kUnreliable);
  const auto ids = sim::assign_ids(g.size(), seed);
  sim::ConstantScheduler benign(false);

  lb::LbScales scales;
  scales.ack_scale = 0.05;
  const auto lb_params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  baseline::DecayParams decay_params;
  decay_params.log_delta = kLogDelta;
  decay_params.ack_rounds = 1 << 20;

  const auto make_protocol_process =
      [&](graph::Vertex v) -> std::unique_ptr<sim::Process> {
    if (cfg.lbalg) {
      return std::make_unique<lb::LbProcess>(lb_params, ids[v], v, nullptr);
    }
    return std::make_unique<baseline::DecayProcess>(decay_params, ids[v], v,
                                                    nullptr);
  };

  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.push_back(make_protocol_process(0));  // receiver
  procs.push_back(make_protocol_process(1));  // reliable sender
  for (graph::Vertex v = 2; v < g.size(); ++v) {
    if (cfg.blasters) {
      procs.push_back(std::make_unique<BlasterProcess>(ids[v]));
    } else {
      procs.push_back(make_protocol_process(v));
    }
  }

  sim::Engine engine(g, benign, std::move(procs), seed);
  sim::TargetedJammer jammer(/*target=*/0);
  if (cfg.adaptive) engine.set_adaptive_adversary(&jammer);
  stats::FirstReceptionProbe probe(g.size());
  engine.add_observer(&probe);

  // Keep every protocol sender saturated; step round by round.
  std::uint64_t content = 0;
  while (engine.round() < kHorizon && probe.first_reception(0) == 0) {
    for (graph::Vertex v = 1; v < g.size(); ++v) {
      if (cfg.blasters && v >= 2) continue;
      if (cfg.lbalg) {
        auto& p = dynamic_cast<lb::LbProcess&>(engine.process(v));
        if (!p.busy()) p.post_bcast(++content);
      } else {
        auto& p = dynamic_cast<baseline::DecayProcess&>(engine.process(v));
        if (!p.busy()) p.post_bcast(++content);
      }
    }
    engine.run_round();
  }
  const auto first = probe.first_reception(0);
  return static_cast<double>(first == 0 ? kHorizon : first);
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E12: the adaptive/oblivious feasibility frontier ([11], Related "
      "Work)",
      "Claim: progress is impossible under an adaptive link scheduler, "
      "feasible under an\noblivious one.  Receiver + 1 reliable sender + 16 "
      "unreliable neighbors.\nScenario A: neighbors run the same protocol, "
      "saturated.  Scenario B: neighbors\ncarry always-on exogenous "
      "traffic.  Latency = rounds to the receiver's first\nreception; "
      "horizon 4096 (= starved).  The jammer sees transmit decisions "
      "before\nchoosing edges -- outside the model.");

  Table table({"algorithm", "scenario", "adversary", "progress mean",
               "starved"});
  const int trials = 12;
  for (bool lbalg : {false, true}) {
    for (bool blasters : {false, true}) {
      for (bool adaptive : {false, true}) {
        const Config cfg{lbalg, blasters, adaptive};
        const auto samples = stats::run_trials(
            trials,
            0xe12ULL + (lbalg ? 1 : 0) + (blasters ? 2 : 0) +
                (adaptive ? 4 : 0),
            [&](std::size_t, std::uint64_t s) { return trial(cfg, s); });
        const auto summary = stats::Summary::of(samples);
        std::size_t starved = 0;
        for (double v : samples) {
          if (v >= static_cast<double>(kHorizon)) ++starved;
        }
        table.row()
            .cell(lbalg ? "lbalg" : "decay")
            .cell(blasters ? "B: exogenous traffic" : "A: protocol traffic")
            .cell(adaptive ? "ADAPTIVE jammer" : "oblivious benign")
            .cell(summary.mean, 1)
            .cell(std::to_string(starved) + "/" + std::to_string(trials));
      }
    }
  }
  bench::print_table(table);
  std::cout << "\nShape check: in scenario B the adaptive jammer starves "
               "every trial for every\nalgorithm while the oblivious "
               "scheduler is harmless -- the [11] impossibility,\n"
               "realized.  In scenario A it degrades progress by whatever "
               "fraction of rounds\nthe protocol hands it collision "
               "material.  Obliviousness is what makes the\npaper's "
               "guarantees possible at all.\n";
  return 0;
}
