// E8 -- near-optimality (Section 1): the paper argues its bounds are close
// to the best possible:
//   (a) progress requires Omega(log) rounds even with no unreliable links
//       (symmetry breaking among an unknown set of contenders), and
//   (b) acknowledgement requires Omega(Delta) rounds (a receiver hears at
//       most one message per round).
// This bench measures both universal obstructions and places LBAlg and the
// globally-coordinated TDMA comparator against them.
#include <algorithm>
#include <memory>

#include "baseline/tdma.h"
#include "bench_support.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

// (a) progress: clique of k saturated contenders + 1 receiver.
double lb_progress(std::uint64_t seed, std::size_t contenders) {
  const auto g = graph::clique_cluster(contenders + 1);
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  std::vector<graph::Vertex> senders;
  for (graph::Vertex v = 1; v <= contenders; ++v) senders.push_back(v);
  const auto latency = bench::lb_progress_latency(
      g, std::make_unique<sim::ConstantScheduler>(false), params, senders, 0,
      /*horizon_phases=*/10, seed);
  return static_cast<double>(latency == 0 ? 10 * params.phase_length()
                                          : latency);
}

// (b) ack: Delta-leaf star, every leaf saturated; mean delivery latency.
double lb_delivery(std::uint64_t seed, std::size_t leaves) {
  const auto g = graph::star_ring(leaves, 1.5);
  lb::LbScales scales;
  scales.ack_scale = 0.05;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, seed);
  std::vector<graph::Vertex> senders;
  for (graph::Vertex v = 1; v <= leaves; ++v) senders.push_back(v);
  sim.keep_busy(senders);
  sim.run_phases(params.t_ack_phases + 1);
  double total = 0;
  std::size_t count = 0;
  for (const auto& rec : sim.checker().broadcasts()) {
    if (rec.delivered()) {
      total += static_cast<double>(rec.delivered_round - rec.input_round);
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

double tdma_delivery(std::uint64_t seed, std::size_t leaves) {
  const auto g = graph::star_ring(leaves, 1.5);
  const auto color = baseline::distance2_coloring(g);
  const int slots = 1 + *std::max_element(color.begin(), color.end());
  const auto ids = sim::assign_ids(g.size(), seed);
  sim::ConstantScheduler sched(false);
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(std::make_unique<baseline::TdmaProcess>(
        color[v], slots, 1, ids[v], v, nullptr));
  }
  sim::Engine engine(g, sched, std::move(procs), seed);
  for (graph::Vertex v = 1; v <= leaves; ++v) {
    dynamic_cast<baseline::TdmaProcess&>(engine.process(v)).post_bcast(v);
  }
  engine.run_rounds(slots);
  return static_cast<double>(slots);  // deterministic one-cycle delivery
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E8: lower-bound obstructions (Section 1 near-optimality)",
      "(a) Progress needs Omega(log k) symmetry breaking among k unknown "
      "contenders;\n(b) acknowledgement needs Omega(Delta) on a saturated "
      "Delta-star.  TDMA is the\nglobally-coordinated comparator (distance-2 "
      "coloring computed centrally --\nexactly what a truly local algorithm "
      "cannot do).");

  const int trials = 12;

  Table ta({"contenders k", "LBAlg progress mean", "mean/log2(k)"});
  for (std::size_t k : {2, 4, 8, 16, 32}) {
    const auto samples = stats::run_trials(
        trials, 0xe8aULL + k,
        [&](std::size_t, std::uint64_t s) { return lb_progress(s, k); });
    const auto summary = stats::Summary::of(samples);
    ta.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(summary.mean, 1)
        .cell(summary.mean / std::max(1.0, std::log2(double(k))), 1);
  }
  bench::print_table(ta);

  std::cout << "\n";
  Table tb({"Delta", "LBAlg delivery mean", "TDMA cycle (global knowledge)",
            "LBAlg/Delta"});
  for (std::size_t leaves : {4, 8, 16, 32}) {
    const auto lb_samples = stats::run_trials(
        trials, 0xe8bULL + leaves,
        [&](std::size_t, std::uint64_t s) { return lb_delivery(s, leaves); });
    const auto td = tdma_delivery(1, leaves);
    const auto summary = stats::Summary::of(lb_samples);
    tb.row()
        .cell(static_cast<std::uint64_t>(leaves + 1))
        .cell(summary.mean, 1)
        .cell(td, 0)
        .cell(summary.mean / static_cast<double>(leaves + 1), 1);
  }
  bench::print_table(tb);

  std::cout << "\nShape check: (a) progress grows ~log k (ratio column "
               "flat-ish);\n(b) delivery grows at least linearly in Delta "
               "for every algorithm -- TDMA's\ncycle is the Omega(Delta) "
               "floor made concrete, LBAlg pays polylog factors on top.\n";
  return 0;
}
