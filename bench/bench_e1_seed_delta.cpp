// E1 -- Theorem 3.1 (agreement): SeedAlg commits at most
// delta = O(r^2 log(1/eps1)) distinct owners in any closed G'-neighborhood,
// independent of Delta and of n.
//
// Sweep eps1 and the network density; report the measured max/mean
// neighborhood owner counts, the O(r^2 log(1/eps1)) reference, and the
// fraction of trials inside the reference (the agreement probability).
#include <cmath>
#include <memory>

#include "bench_support.h"
#include "seed/seed_alg.h"
#include "seed/spec.h"
#include "sim/engine.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

struct Sample {
  std::size_t max_owners = 0;
  std::size_t delta = 0;
};

Sample trial(std::uint64_t seed, double eps1, std::size_t n, double side) {
  Rng rng(seed);
  graph::GeometricSpec spec;
  spec.n = n;
  spec.side = side;
  spec.r = 1.5;
  const auto g = graph::random_geometric(spec, rng);
  const auto params = seed::SeedAlgParams::make(eps1, g.delta());
  const auto ids = sim::assign_ids(g.size(), derive_seed(seed, 1));
  sim::BernoulliScheduler sched(0.5);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng init(derive_seed(seed, 2));
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(std::make_unique<seed::SeedProcess>(params, ids[v], init));
  }
  sim::Engine engine(g, sched, std::move(procs), derive_seed(seed, 3));
  engine.run_rounds(params.total_rounds());
  seed::DecisionVector decisions(g.size());
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    decisions[v] =
        dynamic_cast<const seed::SeedProcess&>(engine.process(v)).decision();
  }
  const auto res = seed::check_seed_spec(g, ids, decisions);
  return Sample{res.max_neighborhood_owners, g.delta()};
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E1: seed partition bound (Theorem 3.1)",
      "Claim: max distinct owners per closed G'-neighborhood is "
      "O(r^2 log(1/eps1)),\nindependent of Delta and n.  r = 1.5.  Reference "
      "bound: 6 r^2 log2(1/eps1) + 6.");

  Table table({"eps1", "n", "avg Delta", "owners mean", "owners max",
               "reference", "Pr[<= ref]"});
  const int trials = 40;
  for (double eps1 : {0.25, 0.1, 0.05, 0.01}) {
    for (std::size_t n : {32, 128}) {
      const double side = n <= 32 ? 2.5 : 5.0;  // keep density comparable
      const auto samples = stats::run_trials(
          trials, 0xe1ULL + n, [&](std::size_t, std::uint64_t s) {
            return trial(s, eps1, n, side);
          });
      double owners_sum = 0, delta_sum = 0;
      std::size_t owners_max = 0, within = 0;
      const double reference = 6.0 * 1.5 * 1.5 * std::log2(1.0 / eps1) + 6.0;
      for (const auto& s : samples) {
        owners_sum += static_cast<double>(s.max_owners);
        delta_sum += static_cast<double>(s.delta);
        owners_max = std::max(owners_max, s.max_owners);
        if (static_cast<double>(s.max_owners) <= reference) ++within;
      }
      table.row()
          .cell(eps1, 2)
          .cell(static_cast<std::uint64_t>(n))
          .cell(delta_sum / trials, 1)
          .cell(owners_sum / trials, 2)
          .cell(static_cast<std::uint64_t>(owners_max))
          .cell(reference, 1)
          .cell(static_cast<double>(within) / trials, 3);
    }
  }
  bench::print_table(table);
  std::cout << "\nShape check: 'owners mean' grows with log(1/eps1) and is "
               "flat in n; 'Pr[<= ref]' stays ~1.\n";
  return 0;
}
