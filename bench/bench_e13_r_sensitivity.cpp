// E13 -- the r-dependence discussion (Appendix B.3.2): "the error bound
// eps3 ... has a double-exponential dependence on r.  We do not know how to
// avoid this.  To compensate for large r, we would need to use small values
// of eps1, which would impact the running time ... for this approach to be
// feasible in practice, one would need to have small values of r."
//
// Measured: sweep the geographic parameter r at fixed density and error
// target.  The parameter formulas inflate (eps2 coupling, T_s, T_prog) and
// the measured latencies follow -- quantifying how quickly "small r" stops
// being small.
//
// Ported: the sweep is campaigns/e13_r_sensitivity.json (seed_then_progress
// workload: SeedAlg safety + LBAlg progress per trial, seeds 0xe13 + 10r);
// this binary runs it through scn::CampaignRunner and prints the historical
// table, recomputing the reference parameter columns locally.
#include <cmath>
#include <iostream>

#include "bench_support.h"
#include "scn/campaign.h"

int main() {
  using namespace dg;
  const std::string path = bench::campaign_file("e13_r_sensitivity.json");
  const auto parsed = scn::parse_campaign_file(path);
  if (!parsed.ok()) {
    std::cerr << parsed.error << "\n";
    return 2;
  }
  const auto result = scn::run_campaign(parsed.campaign, scn::RunOptions{});

  bench::print_header(
      "E13: sensitivity to the geographic parameter r (App. B.3.2)",
      "Claim: the analysis degrades quickly in r (eps' shrinks "
      "double-exponentially,\ninflating every log(1/eps2) factor) -- 'one "
      "would need to have small values of r'.\nMeasured at fixed density "
      "and eps1 = 0.1: parameter growth and observed latency\n/ safety as "
      "r sweeps 1.0 -> 2.5.\nScenario: " +
          path);

  Table table({"r", "eps2", "T_s", "T_prog", "phase", "delta bound ref",
               "owners max", "progress mean"});
  for (const auto& v : result.variants) {
    const double r = v.spec.topology.r;
    // Reference parameter inflation at a nominal Delta=24/Delta'=48
    // density (presentation only; the measured columns come from the
    // campaign samples).
    const auto params = lb::LbParams::calibrated(
        0.1, r, 24, 48, lb::LbScales{1.0, 1.0, 1.0, 1.1, 0.02});
    std::vector<double> latencies;
    std::size_t owners_max = 0;
    for (const auto& row : v.trials) {
      if (row[0] > 0) latencies.push_back(row[0]);
      owners_max = std::max(owners_max, static_cast<std::size_t>(row[1]));
    }
    const auto summary = stats::Summary::of(latencies);
    const double delta_ref = 6.0 * r * r * std::log2(1.0 / 0.1) + 6.0;
    table.row()
        .cell(r, 1)
        .cell(params.eps2, 4)
        .cell(params.t_s)
        .cell(params.t_prog)
        .cell(params.phase_length())
        .cell(delta_ref, 1)
        .cell(static_cast<std::uint64_t>(owners_max))
        .cell(summary.mean, 1);
  }
  bench::print_table(table);
  std::cout << "\nShape check -- the B.3.2 tension, in numbers.  At small r "
               "the analysis demands a\ntiny SeedAlg error (eps2 ~ 1e-3 at "
               "r=1), which is affordable: T_s dominates but\nstays "
               "moderate.  As r grows, holding eps2 that small would need "
               "double-\nexponentially more rounds, so the Appendix C "
               "formula lets eps2 drift up to the\neps1 cap -- eroding "
               "exactly the slack the union bounds need -- while T_prog\n"
               "inflates ~r^2.  Either way large r costs: 'one would need "
               "to have small values\nof r.'  Measured safety (owners) "
               "stays inside the O(r^2 log(1/eps1)) reference\nthroughout "
               "at laptop scale.\n";
  return 0;
}
