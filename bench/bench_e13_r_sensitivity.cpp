// E13 -- the r-dependence discussion (Appendix B.3.2): "the error bound
// eps3 ... has a double-exponential dependence on r.  We do not know how to
// avoid this.  To compensate for large r, we would need to use small values
// of eps1, which would impact the running time ... for this approach to be
// feasible in practice, one would need to have small values of r."
//
// Measured: sweep the geographic parameter r at fixed density and error
// target.  The parameter formulas inflate (eps2 coupling, T_s, T_prog) and
// the measured latencies follow -- quantifying how quickly "small r" stops
// being small.
#include <memory>

#include "bench_support.h"
#include "seed/spec.h"
#include "seed/seed_alg.h"
#include "sim/engine.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

struct Sample {
  double progress_latency = 0;
  std::size_t max_owners = 0;
};

Sample trial(std::uint64_t seed, double r) {
  Rng rng(seed);
  graph::GeometricSpec spec;
  spec.n = 48;
  spec.side = 3.0;
  spec.r = r;
  const auto g = graph::random_geometric(spec, rng);

  // Seed agreement safety at this r.
  const auto sparams = seed::SeedAlgParams::make(0.1, g.delta());
  const auto ids = sim::assign_ids(g.size(), derive_seed(seed, 1));
  sim::BernoulliScheduler sched(0.5);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng init(derive_seed(seed, 2));
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(
        std::make_unique<seed::SeedProcess>(sparams, ids[v], init));
  }
  sim::Engine engine(g, sched, std::move(procs), derive_seed(seed, 3));
  engine.run_rounds(sparams.total_rounds());
  seed::DecisionVector decisions(g.size());
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    decisions[v] =
        dynamic_cast<const seed::SeedProcess&>(engine.process(v)).decision();
  }
  const auto res = seed::check_seed_spec(g, ids, decisions);

  // LBAlg progress at this r.
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params =
      lb::LbParams::calibrated(0.1, r, g.delta(), g.delta_prime(), scales);
  const auto latency = bench::lb_progress_latency(
      g, std::make_unique<sim::BernoulliScheduler>(0.5), params, {0},
      /*receiver=*/g.g_neighbors(0).empty()
          ? 1
          : g.g_neighbors(0).front(),
      /*horizon_phases=*/8, derive_seed(seed, 4));

  return Sample{static_cast<double>(latency), res.max_neighborhood_owners};
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E13: sensitivity to the geographic parameter r (App. B.3.2)",
      "Claim: the analysis degrades quickly in r (eps' shrinks "
      "double-exponentially,\ninflating every log(1/eps2) factor) -- 'one "
      "would need to have small values of r'.\nMeasured at fixed density "
      "and eps1 = 0.1: parameter growth and observed latency\n/ safety as "
      "r sweeps 1.0 -> 2.5.");

  Table table({"r", "eps2", "T_s", "T_prog", "phase", "delta bound ref",
               "owners max", "progress mean"});
  const int trials = 16;
  for (double r : {1.0, 1.5, 2.0, 2.5}) {
    const auto params = lb::LbParams::calibrated(
        0.1, r, 24, 48, lb::LbScales{1.0, 1.0, 1.0, 1.1, 0.02});
    const auto samples = stats::run_trials(
        trials, 0xe13ULL + static_cast<std::uint64_t>(r * 10),
        [&](std::size_t, std::uint64_t s) { return trial(s, r); });
    std::vector<double> latencies;
    std::size_t owners_max = 0;
    for (const auto& s : samples) {
      if (s.progress_latency > 0) latencies.push_back(s.progress_latency);
      owners_max = std::max(owners_max, s.max_owners);
    }
    const auto summary = stats::Summary::of(latencies);
    const double delta_ref = 6.0 * r * r * std::log2(1.0 / 0.1) + 6.0;
    table.row()
        .cell(r, 1)
        .cell(params.eps2, 4)
        .cell(params.t_s)
        .cell(params.t_prog)
        .cell(params.phase_length())
        .cell(delta_ref, 1)
        .cell(static_cast<std::uint64_t>(owners_max))
        .cell(summary.mean, 1);
  }
  bench::print_table(table);
  std::cout << "\nShape check -- the B.3.2 tension, in numbers.  At small r "
               "the analysis demands a\ntiny SeedAlg error (eps2 ~ 1e-3 at "
               "r=1), which is affordable: T_s dominates but\nstays "
               "moderate.  As r grows, holding eps2 that small would need "
               "double-\nexponentially more rounds, so the Appendix C "
               "formula lets eps2 drift up to the\neps1 cap -- eroding "
               "exactly the slack the union bounds need -- while T_prog\n"
               "inflates ~r^2.  Either way large r costs: 'one would need "
               "to have small values\nof r.'  Measured safety (owners) "
               "stays inside the O(r^2 log(1/eps1)) reference\nthroughout "
               "at laptop scale.\n";
  return 0;
}
