// E15 (extension, not a paper claim) -- open-loop traffic and the
// saturation knee: LBAlg as an *ongoing* broadcast service under the
// traffic subsystem's arrival processes (src/traffic/), instead of the
// closed-loop saturated workload behind the progress/ack experiments.
//
// Pipeline per trial (src/scn/workload.cpp, traffic_latency): build the
// variant's topology, attach the declared TrafficSource (Poisson open-loop
// arrivals, a saturating set, bursts, or a hotspot mix) over the per-node
// admission queues, run the horizon, and read the TrafficStats ledger --
// offered vs delivered throughput, enqueue->ack / enqueue->first-recv
// latency, queueing delay, and queue depths.
//
// The headline chart is offered load vs delivered (ack) throughput: below
// the service capacity the two track each other and latency is flat; past
// the knee, delivered throughput plateaus while queues and latency grow
// with the horizon.  This is the multi-message regime of the related work
// (Ghaffari-Kantor-Lynch-Newport multi-message broadcast) expressed as a
// declarative campaign: campaigns/e15_traffic.json sweeps load x topology
// x scheduler.
#include <algorithm>
#include <iostream>
#include <string>

#include "bench_support.h"
#include "scn/campaign.h"

int main() {
  using namespace dg;
  const std::string path = bench::campaign_file("e15_traffic.json");
  const auto parsed = scn::parse_campaign_file(path);
  if (!parsed.ok()) {
    std::cerr << parsed.error << "\n";
    return 2;
  }
  const auto result = scn::run_campaign(parsed.campaign, scn::RunOptions{});

  bench::print_header(
      "E15: offered load vs delivered throughput (extension)",
      "Not a paper claim: LBAlg as an ongoing service under open-loop "
      "arrivals.\nTrafficSources feed per-node admission queues over the "
      "one-outstanding\ncontract; the sweep charts the saturation knee "
      "(offered vs ack throughput,\nenqueue->ack latency, queue depths)."
      "\nScenario: " +
          path);

  // "backlog" is the network-wide queued total per round; "qdepth max"
  // the worst single-node queue (so backlog can exceed it by design).
  Table table({"variant", "offered/rd", "delivered/rd", "util %", "wait",
               "ack lat", "recv lat", "backlog", "qdepth max",
               "dropped"});
  // Metric row layout (scn::metric_names, traffic_latency):
  //   0 offered, 1 admitted, 2 dropped, 3 acked, 4 aborted, 5 wait_mean,
  //   6 ack_latency, 7 recv_latency, 8 backlog_mean, 9 qdepth_max,
  //   10 offered_rate, 11 delivered_rate, 12 first_recvs.
  for (const auto& v : result.variants) {
    const double trials = static_cast<double>(v.trials.size());
    double offered_rate = 0, delivered_rate = 0, dropped = 0;
    double backlog_mean = 0, qdepth_max = 0;
    // Latency means are pooled over events, not averaged over per-trial
    // means: trials with no acks contribute no latency, and weighting
    // them equally would understate the loaded trials.  Each mean is
    // re-pooled against its own event count (admitted / acked /
    // first_recvs).
    double wait_sum = 0, ack_sum = 0, recv_sum = 0;
    double admitted = 0, acked = 0, recvd = 0;
    for (const auto& row : v.trials) {
      offered_rate += row[10];
      delivered_rate += row[11];
      dropped += row[2];
      backlog_mean += row[8];
      qdepth_max = std::max(qdepth_max, row[9]);
      wait_sum += row[5] * row[1];
      admitted += row[1];
      ack_sum += row[6] * row[3];
      acked += row[3];
      recv_sum += row[7] * row[12];
      recvd += row[12];
    }
    table.row()
        .cell(v.spec.name)
        .cell(offered_rate / trials, 4)
        .cell(delivered_rate / trials, 4)
        .cell(offered_rate != 0 ? 100.0 * delivered_rate / offered_rate : 0,
              1)
        .cell(admitted != 0 ? wait_sum / admitted : 0, 1)
        .cell(acked != 0 ? ack_sum / acked : 0, 1)
        .cell(recvd != 0 ? recv_sum / recvd : 0, 1)
        .cell(backlog_mean / trials, 2)
        .cell(qdepth_max, 0)
        .cell(dropped, 0);
  }
  bench::print_table(table);
  std::cout << "\nReading: 'util %' near 100 = the service keeps up "
               "(pre-knee); a delivered\nplateau with growing backlog/wait "
               "= past the saturation knee.  The 'sat'\nvariants are the "
               "closed-loop ceiling (the legacy keep_busy workload).\n";
  return 0;
}
