// E6 -- the paper's motivating claim (Section 1, Discussion): a fixed
// broadcast-probability schedule (Decay) is thwarted by an oblivious link
// scheduler built from its (public, deterministic) schedule, while LBAlg's
// runtime-permuted schedules are immune -- the whole point of seed
// agreement.
//
// Topology: receiver with 1 reliable sender + k unreliable neighbors, all
// saturated.  Schedulers: benign (no unreliable edges), anti-schedule
// (floods the high-probability rounds of Decay's cycle), flood (all edges
// always).  Metric: progress latency at the receiver, normalized per
// algorithm to its own benign baseline -- the shape claim is the
// adversarial/benign ratio.
#include <memory>

#include "baseline/decay.h"
#include "bench_support.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

constexpr std::size_t kUnreliable = 64;
constexpr int kLogDelta = 7;

enum class Sched { benign, anti, flood };

std::unique_ptr<sim::LinkScheduler> make_sched(Sched kind) {
  switch (kind) {
    case Sched::benign:
      return std::make_unique<sim::ConstantScheduler>(false);
    case Sched::anti:
      return std::make_unique<sim::AntiScheduleAdversary>(
          [](sim::Round t) {
            return baseline::decay_probability(t, kLogDelta);
          },
          /*pivot=*/1.0 / 16.0);
    case Sched::flood:
      return std::make_unique<sim::ConstantScheduler>(true);
  }
  return nullptr;
}

const char* sched_name(Sched kind) {
  switch (kind) {
    case Sched::benign:
      return "benign";
    case Sched::anti:
      return "anti-schedule";
    case Sched::flood:
      return "flood";
  }
  return "?";
}

double decay_trial(Sched kind, std::uint64_t seed) {
  const auto g = bench::contention_star(kUnreliable);
  const auto ids = sim::assign_ids(g.size(), seed);
  baseline::DecayParams params;
  params.log_delta = kLogDelta;
  params.ack_rounds = 1 << 20;
  auto sched = make_sched(kind);
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(
        std::make_unique<baseline::DecayProcess>(params, ids[v], v, nullptr));
  }
  sim::Engine engine(g, *sched, std::move(procs), seed);
  stats::FirstReceptionProbe probe(g.size());
  engine.add_observer(&probe);
  for (graph::Vertex v = 1; v < g.size(); ++v) {
    dynamic_cast<baseline::DecayProcess&>(engine.process(v)).post_bcast(v);
  }
  const sim::Round horizon = 4096;
  engine.run_rounds(horizon);
  const auto first = probe.first_reception(0);
  return static_cast<double>(first == 0 ? horizon : first);
}

double lbalg_trial(Sched kind, std::uint64_t seed) {
  const auto g = bench::contention_star(kUnreliable);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  std::vector<graph::Vertex> senders;
  for (graph::Vertex v = 1; v < g.size(); ++v) senders.push_back(v);
  const auto latency = bench::lb_progress_latency(
      g, make_sched(kind), params, senders, /*receiver=*/0,
      /*horizon_phases=*/10, seed);
  return static_cast<double>(
      latency == 0 ? 10 * params.phase_length() : latency);
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E6: fixed schedules vs seed-permuted schedules under an oblivious "
      "adversary",
      "Claim (Discussion, Sec. 1): an oblivious scheduler keyed to Decay's "
      "fixed schedule\nruins its progress; LBAlg permutes its schedule with "
      "runtime seeds, so the same\nadversary cannot target it.  Receiver "
      "with 1 reliable sender + 64 unreliable\nneighbors, all saturated.  "
      "Metric: mean progress latency (rounds), and the\nratio to the "
      "algorithm's own benign baseline.");

  Table table({"algorithm", "scheduler", "progress mean", "progress p90",
               "vs own benign"});
  const int trials = 20;

  for (const char* algo : {"decay", "lbalg"}) {
    double benign_mean = 0;
    for (Sched kind : {Sched::benign, Sched::anti, Sched::flood}) {
      const auto samples = stats::run_trials(
          trials,
          0xe6ULL + static_cast<std::uint64_t>(kind) * 131 + algo[0],
          [&](std::size_t, std::uint64_t s) {
            return std::string(algo) == "decay" ? decay_trial(kind, s)
                                                : lbalg_trial(kind, s);
          });
      const auto summary = stats::Summary::of(samples);
      if (kind == Sched::benign) benign_mean = summary.mean;
      table.row()
          .cell(algo)
          .cell(sched_name(kind))
          .cell(summary.mean, 1)
          .cell(summary.p90, 1)
          .cell(summary.mean / benign_mean, 2);
    }
  }
  bench::print_table(table);
  std::cout << "\nShape check: Decay's anti-schedule ratio blows up "
               "(crossover: the adversary\nthat breaks the fixed schedule "
               "leaves LBAlg's ratio near 1).  LBAlg's absolute\nlatency is "
               "larger (it pays the seed-agreement preamble) -- the claim is "
               "about\nrobustness, not constants.\n";
  return 0;
}
