// E6 -- the paper's motivating claim (Section 1, Discussion): a fixed
// broadcast-probability schedule (Decay) is thwarted by an oblivious link
// scheduler built from its (public, deterministic) schedule, while LBAlg's
// runtime-permuted schedules are immune -- the whole point of seed
// agreement.
//
// Topology: receiver with 1 reliable sender + k unreliable neighbors, all
// saturated.  Schedulers: benign (no unreliable edges), anti-schedule
// (floods the high-probability rounds of Decay's cycle), flood (all edges
// always).  Metric: progress latency at the receiver, normalized per
// algorithm to its own benign baseline -- the shape claim is the
// adversarial/benign ratio.
//
// Ported: the algorithm x scheduler cross-product is the checked-in
// campaigns/e6_adversary.json matrix (seeds 0xe6 + kind*131 + algo[0],
// exactly the hand-written formula); this binary runs it through
// scn::CampaignRunner and prints the historical table.  Never-received
// trials clamp to the horizon (Decay: horizon_rounds; LBAlg:
// horizon_phases * phase_length), as the pre-port trial functions did.
#include <iostream>
#include <map>
#include <string>

#include "bench_support.h"
#include "scn/campaign.h"

namespace {

// Labels come from the variant's *spec*, not its name, so reordering the
// campaign's matrix axes cannot mislabel a row.
const char* sched_display(const std::string& scheduler_spec) {
  if (scheduler_spec == "full-g") return "benign";
  if (scheduler_spec.rfind("anti", 0) == 0) return "anti-schedule";
  return "flood";
}

}  // namespace

int main() {
  using namespace dg;
  const std::string path = bench::campaign_file("e6_adversary.json");
  const auto parsed = scn::parse_campaign_file(path);
  if (!parsed.ok()) {
    std::cerr << parsed.error << "\n";
    return 2;
  }
  const auto result = scn::run_campaign(parsed.campaign, scn::RunOptions{});

  bench::print_header(
      "E6: fixed schedules vs seed-permuted schedules under an oblivious "
      "adversary",
      "Claim (Discussion, Sec. 1): an oblivious scheduler keyed to Decay's "
      "fixed schedule\nruins its progress; LBAlg permutes its schedule with "
      "runtime seeds, so the same\nadversary cannot target it.  Receiver "
      "with 1 reliable sender + 64 unreliable\nneighbors, all saturated.  "
      "Metric: mean progress latency (rounds), and the\nratio to the "
      "algorithm's own benign baseline.\nScenario: " +
          path);

  Table table({"algorithm", "scheduler", "progress mean", "progress p90",
               "vs own benign"});
  const auto summarize = [](const scn::VariantResult& v) {
    // Horizon clamp for never-received trials (latency metric 0): Decay
    // clamps to horizon_rounds, LBAlg to horizon_phases * phase_length.
    const bool decay = v.spec.algorithm.type == "decay_progress";
    std::vector<double> samples;
    for (const auto& row : v.trials) {
      const double clamp =
          decay ? row[1]
                : static_cast<double>(v.spec.algorithm.horizon_phases) *
                      row[1];
      samples.push_back(row[0] > 0 ? row[0] : clamp);
    }
    return stats::Summary::of(samples);
  };
  // First pass: each algorithm's own benign (full-g) baseline, so the
  // ratio column is robust to the variants' emission order.
  std::map<std::string, double> benign_mean;
  for (const auto& v : result.variants) {
    if (v.spec.scheduler == "full-g") {
      benign_mean[v.spec.algorithm.type] = summarize(v).mean;
    }
  }
  for (const auto& v : result.variants) {
    const bool decay = v.spec.algorithm.type == "decay_progress";
    const auto summary = summarize(v);
    const double benign = benign_mean[v.spec.algorithm.type];
    table.row()
        .cell(decay ? "decay" : "lbalg")
        .cell(sched_display(v.spec.scheduler))
        .cell(summary.mean, 1)
        .cell(summary.p90, 1)
        .cell(benign > 0 ? summary.mean / benign : 0.0, 2);
  }
  bench::print_table(table);
  std::cout << "\nShape check: Decay's anti-schedule ratio blows up "
               "(crossover: the adversary\nthat breaks the fixed schedule "
               "leaves LBAlg's ratio near 1).  LBAlg's absolute\nlatency is "
               "larger (it pays the seed-agreement preamble) -- the claim is "
               "about\nrobustness, not constants.\n";
  return 0;
}
