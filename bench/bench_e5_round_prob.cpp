// E5 -- Lemma 4.2 / C.1: in any body round of a phase whose SeedAlg call
// succeeded, a receiver u with an active reliable neighbor receives some
// message with probability p_u >= c2 / (r^2 log(1/eps2) log Delta), and
// receives from a *specific* active reliable neighbor v with probability
// p_uv >= p_u / Delta'.
//
// Measured: per-body-round reception frequencies at a designated receiver,
// with k active senders in a clique (u's neighborhood), as Delta grows.
#include <memory>

#include "bench_support.h"
#include "lb/spec.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

/// Counts, per body round in which the receiver has an active G-neighbor,
/// whether it received (and from whom).
class BodyRoundProbe final : public sim::Observer {
 public:
  BodyRoundProbe(const lb::LbSimulation& sim, graph::Vertex receiver,
                 graph::Vertex tracked_sender)
      : sim_(&sim), receiver_(receiver), tracked_(tracked_sender) {}

  void on_round_begin(sim::Round round) override {
    const auto& params = sim_->params();
    const std::int64_t pos = (round - 1) % params.phase_length();
    in_body_ = pos >= params.t_s;
    received_this_round_ = false;
  }

  void on_receive(sim::Round, graph::Vertex u, graph::Vertex from,
                  const sim::Packet& packet) override {
    if (u != receiver_ || !packet.is_data()) return;
    received_this_round_ = true;
    from_tracked_ = from == tracked_;
  }

  void on_round_end(sim::Round round) override {
    if (!in_body_) return;
    // Opportunity: some reliable neighbor actively broadcasting this round.
    bool opportunity = false;
    for (graph::Vertex v : sim_->network().g_neighbors(receiver_)) {
      if (sim_->checker().actively_broadcasting(v, round)) {
        opportunity = true;
        break;
      }
    }
    if (!opportunity) return;
    ++body_rounds;
    if (received_this_round_) {
      ++receptions;
      if (from_tracked_) ++tracked_receptions;
    }
    from_tracked_ = false;
  }

  std::uint64_t body_rounds = 0;
  std::uint64_t receptions = 0;
  std::uint64_t tracked_receptions = 0;

 private:
  const lb::LbSimulation* sim_;
  graph::Vertex receiver_;
  graph::Vertex tracked_;
  bool in_body_ = false;
  bool received_this_round_ = false;
  bool from_tracked_ = false;
};

struct Sample {
  std::uint64_t rounds = 0, recv = 0, tracked = 0;
  double floor_pu = 0, delta_prime = 0;
};

Sample trial(std::uint64_t seed, std::size_t clique, std::size_t senders) {
  const auto g = graph::clique_cluster(clique);
  lb::LbScales scales;
  scales.ack_scale = 0.05;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, seed);
  BodyRoundProbe probe(sim, /*receiver=*/0, /*tracked_sender=*/1);
  sim.add_observer(&probe);
  std::vector<graph::Vertex> active;
  for (graph::Vertex v = 1; v <= senders; ++v) active.push_back(v);
  sim.keep_busy(active);
  sim.run_phases(6);

  Sample out;
  out.rounds = probe.body_rounds;
  out.recv = probe.receptions;
  out.tracked = probe.tracked_receptions;
  const double log2e2 = std::max(2.0, std::log2(1.0 / params.eps2));
  out.floor_pu =
      1.0 / (1.5 * 1.5 * log2e2 * static_cast<double>(params.log_delta));
  out.delta_prime = static_cast<double>(g.delta_prime());
  return out;
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E5: per-round reception probabilities (Lemma 4.2 / C.1)",
      "Claim: p_u >= c2 / (r^2 log(1/eps2) log Delta) in every useful body "
      "round, and\np_uv >= p_u / Delta'.  Measured on cliques with half the "
      "nodes saturated;\nv = one designated sender.");

  Table table({"Delta", "senders", "body rounds", "p_u", "floor/c2",
               "p_uv", "p_u/Delta'"});
  const int trials = 16;
  for (std::size_t clique : {8, 16, 32}) {
    const std::size_t senders = clique / 2;
    const auto samples = stats::run_trials(
        trials, 0xe5ULL + clique, [&](std::size_t, std::uint64_t s) {
          return trial(s, clique, senders);
        });
    std::uint64_t rounds = 0, recv = 0, tracked = 0;
    double floor_pu = 0, dprime = 0;
    for (const auto& s : samples) {
      rounds += s.rounds;
      recv += s.recv;
      tracked += s.tracked;
      floor_pu = s.floor_pu;
      dprime = s.delta_prime;
    }
    const double pu = rounds ? static_cast<double>(recv) / rounds : 0.0;
    const double puv = rounds ? static_cast<double>(tracked) / rounds : 0.0;
    table.row()
        .cell(static_cast<std::uint64_t>(clique))
        .cell(static_cast<std::uint64_t>(senders))
        .cell(rounds)
        .cell(pu, 4)
        .cell(floor_pu, 4)
        .cell(puv, 4)
        .cell(pu / dprime, 4);
  }
  bench::print_table(table);
  std::cout << "\nShape check: p_u stays above the floor shape (up to the "
               "constant c2) and decays\nlike 1/log Delta, not 1/Delta; "
               "p_uv tracks p_u / (#active senders) >= p_u / Delta'.\n";
  return 0;
}
