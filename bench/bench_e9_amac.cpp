// E9 -- the abstract MAC layer claim (Sections 1 and 5): LBAlg implements
// the abstract MAC layer in the dual graph model, so algorithms written
// against that layer port over unchanged.  Two representatives of the
// "growing corpus" run here on top of LbMacLayer with unreliable links
// active: multi-message broadcast (flood-relay, [9, 10]) and neighbor
// discovery ([5, 6]).
#include <memory>

#include "amac/lb_amac.h"
#include "amac/mmb.h"
#include "amac/neighbor_discovery.h"
#include "bench_support.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

struct MmbSample {
  double rounds_to_full = 0;   // 0 = incomplete within horizon
  double f_ack = 0;
  double hops = 0;
};

MmbSample mmb_trial(std::uint64_t seed, std::size_t length) {
  const auto g = graph::line(length, 1.0, 1.5);
  lb::LbScales scales;
  scales.ack_scale = 0.1;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::BernoulliScheduler>(0.5),
                       params, seed);
  amac::LbMacLayer mac(sim);
  std::vector<amac::MmbNode> nodes(g.size());
  std::vector<amac::MacApplication*> apps;
  for (auto& n : nodes) apps.push_back(&n);
  mac.attach(apps);
  nodes[0].inject(42);

  const std::int64_t step = params.phase_length();
  const std::int64_t horizon =
      (params.t_ack_phases + 2) * step * static_cast<std::int64_t>(length) * 3;
  MmbSample out;
  out.f_ack = static_cast<double>(mac.bounds().f_ack);
  out.hops = static_cast<double>(length - 1);
  for (std::int64_t t = 0; t < horizon; t += step) {
    mac.run_rounds(step);
    bool all = true;
    for (const auto& n : nodes) {
      if (!n.knows(42)) {
        all = false;
        break;
      }
    }
    if (all) {
      out.rounds_to_full = static_cast<double>(sim.round());
      break;
    }
  }
  return out;
}

struct NdSample {
  double recall = 0;
  double acked = 0;
};

NdSample nd_trial(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  graph::GeometricSpec spec;
  spec.n = n;
  spec.side = 2.5;
  spec.r = 1.5;
  const auto g = graph::random_geometric(spec, rng);
  lb::LbScales scales;
  scales.ack_scale = 0.2;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::BernoulliScheduler>(0.5),
                       params, derive_seed(seed, 7));
  amac::LbMacLayer mac(sim);
  std::vector<amac::NeighborDiscoveryNode> nodes;
  nodes.reserve(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) {
    nodes.emplace_back(1000 + v);
  }
  std::vector<amac::MacApplication*> apps;
  for (auto& node : nodes) apps.push_back(&node);
  mac.attach(apps);
  mac.run_rounds((params.t_ack_phases + 3) * params.phase_length());

  std::size_t edges = 0, found = 0, acked = 0;
  for (graph::Vertex u = 0; u < g.size(); ++u) {
    if (nodes[u].hello_acked()) ++acked;
    for (graph::Vertex v : g.g_neighbors(u)) {
      ++edges;
      if (nodes[u].discovered().contains(1000 + v)) ++found;
    }
  }
  NdSample out;
  out.recall = edges ? static_cast<double>(found) / edges : 1.0;
  out.acked = static_cast<double>(acked) / static_cast<double>(g.size());
  return out;
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E9: algorithms over the abstract MAC layer (Sections 1, 5)",
      "Claim: LBAlg implements the abstract MAC layer in the dual graph "
      "model, porting\nthe corpus of aMAC algorithms.  (a) Multi-message "
      "broadcast floods a line network\n(completion within O(hops * f_ack)); "
      "(b) neighbor discovery recall >= 1 - eps1\nper directed reliable "
      "edge.  Unreliable links active (Bernoulli 0.5).");

  const int trials = 8;

  Table ta({"line length", "hops", "completed", "rounds mean",
            "rounds / (hops*f_ack)"});
  for (std::size_t len : {4, 6, 8}) {
    const auto samples = stats::run_trials(
        trials, 0xe9aULL + len,
        [&](std::size_t, std::uint64_t s) { return mmb_trial(s, len); });
    std::vector<double> rounds;
    double f_ack = 0, hops = 0;
    for (const auto& s : samples) {
      f_ack = s.f_ack;
      hops = s.hops;
      if (s.rounds_to_full > 0) rounds.push_back(s.rounds_to_full);
    }
    const auto summary = stats::Summary::of(rounds);
    ta.row()
        .cell(static_cast<std::uint64_t>(len))
        .cell(hops, 0)
        .cell(static_cast<std::uint64_t>(summary.count))
        .cell(summary.mean, 0)
        .cell(summary.mean / (hops * f_ack), 2);
  }
  bench::print_table(ta);

  std::cout << "\n";
  Table tb({"n", "discovery recall", "hello acked"});
  for (std::size_t n : {16, 32}) {
    const auto samples = stats::run_trials(
        trials, 0xe9bULL + n,
        [&](std::size_t, std::uint64_t s) { return nd_trial(s, n); });
    double recall = 0, acked = 0;
    for (const auto& s : samples) {
      recall += s.recall;
      acked += s.acked;
    }
    tb.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(recall / trials, 3)
        .cell(acked / trials, 3);
  }
  bench::print_table(tb);

  std::cout << "\nShape check: floods complete in every trial well inside "
               "hops * f_ack; discovery\nrecall >= 1 - eps1 = 0.9.  Neither "
               "application touched anything but bcast/ack/rcv.\n";
  return 0;
}
