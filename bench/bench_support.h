// Shared helpers for the experiment benches (E1..E13 and B-goodness).
//
// Every bench binary regenerates one of the paper's quantitative claims as
// a printed table: a header states the claim being reproduced, the rows are
// the measured sweep.
//
// Machine-readable output: when the environment variable DG_BENCH_JSON
// names a file path, the same headers and tables that go to stdout are
// mirrored into that file as a JSON document at process exit, including the
// bench's wall-clock time.  tools/run_benches.sh uses this to sweep every
// bench binary into BENCH_<name>.json files.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/dual_graph.h"
#include "graph/generators.h"
#include "lb/measure.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"
#include "stats/probes.h"
#include "stats/summary.h"
#include "util/table.h"

namespace dg::bench {

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// True when the formatted cell can be emitted as a bare JSON number.
/// Deliberately stricter than strtod: "nan", "inf", and hex forms parse as
/// doubles but are not valid JSON numbers, so they stay quoted strings.
inline bool json_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      digit = true;
    } else if (c != '.' && c != '+' && c != '-' && c != 'e' && c != 'E') {
      return false;
    }
  }
  if (!digit) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Collects the (experiment, claim, tables) sections a bench prints and, if
/// DG_BENCH_JSON is set, writes them as one JSON document when the process
/// exits.  print_header() starts a new section; print_table() appends to the
/// latest one.
class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  void begin_section(const std::string& experiment, const std::string& claim) {
    sections_.push_back(Section{experiment, claim, {}});
  }

  void add_table(const Table& table) {
    if (sections_.empty()) sections_.push_back(Section{});
    sections_.back().tables.push_back(
        Captured{table.headers(), table.rows()});
  }

  ~JsonReport() {
    const char* path = std::getenv("DG_BENCH_JSON");
    if (path == nullptr || *path == '\0' || sections_.empty()) return;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench_support: cannot open DG_BENCH_JSON path " << path
                << '\n';
      return;
    }
    const auto elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    // Machine/build provenance: timings are only comparable on the same
    // hardware and source revision, and tools/bench_diff.py refuses
    // cross-machine diffs based on these stamps.
#ifdef DG_GIT_SHA
    const char* git_sha = DG_GIT_SHA;
#else
    const char* git_sha = "unknown";
#endif
    os << "{\n  \"elapsed_ms\": " << elapsed
       << ",\n  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n  \"git_sha\": \""
       << json_escape(git_sha) << "\",\n  \"sections\": [";
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      const auto& s = sections_[i];
      os << (i ? ",\n" : "\n") << "    {\n      \"experiment\": \""
         << json_escape(s.experiment) << "\",\n      \"claim\": \""
         << json_escape(s.claim) << "\",\n      \"tables\": [";
      for (std::size_t t = 0; t < s.tables.size(); ++t) {
        const auto& tab = s.tables[t];
        // Row objects are keyed by column header; duplicate headers would
        // collide as JSON keys (parsers keep only the last), so repeats get
        // a ".2", ".3", ... suffix.
        std::vector<std::string> keys;
        keys.reserve(tab.headers.size());
        for (std::size_t c = 0; c < tab.headers.size(); ++c) {
          std::size_t copies = 1;
          for (std::size_t p = 0; p < c; ++p) {
            if (tab.headers[p] == tab.headers[c]) ++copies;
          }
          keys.push_back(copies > 1
                             ? tab.headers[c] + "." + std::to_string(copies)
                             : tab.headers[c]);
        }
        os << (t ? ",\n" : "\n") << "        {\n          \"columns\": [";
        for (std::size_t c = 0; c < tab.headers.size(); ++c) {
          os << (c ? ", " : "") << '"' << json_escape(tab.headers[c]) << '"';
        }
        os << "],\n          \"rows\": [";
        for (std::size_t r = 0; r < tab.rows.size(); ++r) {
          os << (r ? ",\n" : "\n") << "            {";
          const auto& row = tab.rows[r];
          for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? ", " : "") << '"'
               << json_escape(c < keys.size() ? keys[c] : std::to_string(c))
               << "\": ";
            if (json_numeric(row[c])) {
              os << row[c];
            } else {
              os << '"' << json_escape(row[c]) << '"';
            }
          }
          os << '}';
        }
        os << "\n          ]\n        }";
      }
      os << "\n      ]\n    }";
    }
    os << "\n  ]\n}\n";
  }

 private:
  struct Captured {
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  struct Section {
    std::string experiment;
    std::string claim;
    std::vector<Captured> tables;
  };

  JsonReport() = default;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::vector<Section> sections_;
};

}  // namespace detail

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  detail::JsonReport::instance().begin_section(experiment, claim);
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

inline void print_table(const Table& table) {
  detail::JsonReport::instance().add_table(table);
  table.print(std::cout);
  std::cout << std::flush;
}

/// Locates a checked-in scenario file for the campaign-ported benches:
/// $DG_CAMPAIGN_DIR (env) wins, else the configure-time campaigns/
/// directory baked in by bench/CMakeLists.txt.
inline std::string campaign_file(const std::string& name) {
  const char* dir = std::getenv("DG_CAMPAIGN_DIR");
  if (dir == nullptr || *dir == '\0') {
#ifdef DG_CAMPAIGN_DIR
    dir = DG_CAMPAIGN_DIR;
#else
    dir = "campaigns";
#endif
  }
  return std::string(dir) + "/" + name;
}

// The shared workload topologies and measurements moved into the library
// (graph/generators.h, lb/measure.h) when the scenario subsystem (src/scn/)
// started running the same workloads declaratively; these aliases keep the
// bench binaries' historical spellings working.
using graph::contention_star;
using graph::disjoint_cliques;

inline sim::Round lb_progress_latency(
    const graph::DualGraph& g, std::unique_ptr<sim::LinkScheduler> scheduler,
    const lb::LbParams& params, const std::vector<graph::Vertex>& senders,
    graph::Vertex receiver, std::int64_t horizon_phases, std::uint64_t seed) {
  return lb::progress_latency(g, std::move(scheduler), params, senders,
                              receiver, horizon_phases, seed);
}

}  // namespace dg::bench
