// Shared helpers for the experiment benches (E1..E10).
//
// Every bench binary regenerates one of the paper's quantitative claims as
// a printed table: a header states the claim being reproduced, the rows are
// the measured sweep.  EXPERIMENTS.md records the expected vs observed
// shape for each.
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "graph/dual_graph.h"
#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"
#include "stats/probes.h"
#include "stats/summary.h"
#include "util/table.h"

namespace dg::bench {

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

inline void print_table(const Table& table) {
  table.print(std::cout);
  std::cout << std::flush;
}

/// The contention-star topology of the paper's Discussion section: receiver
/// 0, one reliable sender (vertex 1), and `unreliable_neighbors` vertices
/// attached to the receiver by unreliable edges only.
inline graph::DualGraph contention_star(std::size_t unreliable_neighbors) {
  graph::DualGraph g(unreliable_neighbors + 2);
  g.add_reliable_edge(0, 1);
  for (graph::Vertex v = 2; v < unreliable_neighbors + 2; ++v) {
    g.add_unreliable_edge(0, v);
  }
  g.finalize();
  return g;
}

/// Disjoint union of `cliques` cliques of `clique_size` mutually-reliable
/// nodes: the fixed-Delta, growing-n family for the locality experiments.
inline graph::DualGraph disjoint_cliques(std::size_t cliques,
                                         std::size_t clique_size) {
  graph::DualGraph g(cliques * clique_size);
  for (std::size_t c = 0; c < cliques; ++c) {
    for (std::size_t i = 0; i < clique_size; ++i) {
      for (std::size_t j = i + 1; j < clique_size; ++j) {
        g.add_reliable_edge(
            static_cast<graph::Vertex>(c * clique_size + i),
            static_cast<graph::Vertex>(c * clique_size + j));
      }
    }
  }
  g.finalize();
  return g;
}

/// Measures LBAlg progress latency: rounds until the designated receiver's
/// first data reception, with `senders` kept saturated.  Returns 0 when the
/// receiver never received within `horizon_phases`.
inline sim::Round lb_progress_latency(
    const graph::DualGraph& g, std::unique_ptr<sim::LinkScheduler> scheduler,
    const lb::LbParams& params, const std::vector<graph::Vertex>& senders,
    graph::Vertex receiver, std::int64_t horizon_phases, std::uint64_t seed) {
  lb::LbSimulation sim(g, std::move(scheduler), params, seed);
  stats::FirstReceptionProbe probe(g.size());
  sim.add_observer(&probe);
  sim.keep_busy(senders);
  for (std::int64_t p = 0; p < horizon_phases; ++p) {
    sim.run_phases(1);
    if (probe.first_reception(receiver) != 0) break;
  }
  return probe.first_reception(receiver);
}

}  // namespace dg::bench
