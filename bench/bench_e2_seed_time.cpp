// E2 -- Theorem 3.1 (time): SeedAlg takes O(log Delta * log^2(1/eps1))
// rounds.  The algorithm is synchronous, so the count is deterministic; this
// bench tabulates it against the formula to exhibit the exact scaling.
#include <cmath>

#include "bench_support.h"
#include "seed/seed_alg.h"
#include "util/intmath.h"

int main() {
  using namespace dg;
  bench::print_header(
      "E2: seed agreement round complexity (Theorem 3.1)",
      "Claim: SeedAlg(eps1) runs O(log Delta * log^2(1/eps1)) rounds.\n"
      "Measured rounds are exact (synchronous algorithm); the ratio to\n"
      "log2(Delta) * ceil(log2(1/eps1))^2 is the leading constant c4.");

  Table table({"Delta", "eps1", "phases", "phase len", "total rounds",
               "formula", "ratio"});
  for (std::size_t delta : {4, 16, 64, 256, 1024}) {
    for (double eps1 : {0.25, 0.1, 0.01}) {
      const auto p = seed::SeedAlgParams::make(eps1, delta);
      const double log_eps = std::max(2.0, std::log2(1.0 / eps1));
      const double formula =
          std::log2(static_cast<double>(pow2_ceil(delta))) * log_eps * log_eps;
      table.row()
          .cell(static_cast<std::uint64_t>(delta))
          .cell(eps1, 2)
          .cell(p.num_phases)
          .cell(p.phase_length)
          .cell(p.total_rounds())
          .cell(formula, 1)
          .cell(p.total_rounds() / formula, 2);
    }
  }
  bench::print_table(table);
  std::cout << "\nShape check: doubling Delta adds one phase (log growth); "
               "the ratio column is the constant c4 (flat).\n";
  return 0;
}
