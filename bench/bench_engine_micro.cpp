// Engine micro-benchmarks (google-benchmark): raw round-execution
// throughput of the simulator substrate.  Not a paper claim -- a regression
// guard for the experiment harness itself.
#include <benchmark/benchmark.h>

#include <memory>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/engine.h"
#include "sim/scheduler.h"

namespace dg {
namespace {

void BM_EngineRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto round_threads = static_cast<std::size_t>(state.range(1));
  Rng rng(7);
  graph::GeometricSpec spec;
  spec.n = n;
  spec.side = std::sqrt(static_cast<double>(n)) / 2.5;
  spec.r = 1.5;
  const auto g = graph::random_geometric(spec, rng);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::BernoulliScheduler>(0.5),
                       params, 99);
  sim.set_round_threads(round_threads);
  sim.keep_busy({0});
  for (auto _ : state) {
    sim.run_round();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
// Second arg: round_threads (the deterministic sharding thread cap); the
// per-thread-count series feeds tools/engine_micro_report.py's scaling
// table.  Results are byte-identical across the series -- only time moves.
BENCHMARK(BM_EngineRound)
    ->ArgsProduct({{64, 256, 1024}, {1, 2, 4, 8}});

void BM_SchedulerActive(benchmark::State& state) {
  const auto g = graph::grid(16, 16, 1.0, 1.5);
  sim::BernoulliScheduler sched(0.5);
  sched.commit(g, 42);
  sim::Round round = 1;
  for (auto _ : state) {
    for (graph::UnreliableEdgeId e = 0;
         e < static_cast<graph::UnreliableEdgeId>(g.unreliable_edge_count());
         ++e) {
      benchmark::DoNotOptimize(sched.active(e, round));
    }
    ++round;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.unreliable_edge_count()));
}
BENCHMARK(BM_SchedulerActive);

void BM_SeedBitsTake(benchmark::State& state) {
  SeedBits bits(0x1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits.take(7));
  }
}
BENCHMARK(BM_SeedBitsTake);

}  // namespace
}  // namespace dg

BENCHMARK_MAIN();
