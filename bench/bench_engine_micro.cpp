// Engine micro-benchmarks (google-benchmark): raw round-execution
// throughput of the simulator substrate.  Not a paper claim -- a regression
// guard for the experiment harness itself.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "obs/registry.h"
#include "sim/engine.h"
#include "sim/engine_config.h"
#include "sim/scheduler.h"
#include "traffic/spec.h"

namespace dg {
namespace {

void BM_EngineRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto round_threads = static_cast<std::size_t>(state.range(1));
  Rng rng(7);
  graph::GeometricSpec spec;
  spec.n = n;
  spec.side = std::sqrt(static_cast<double>(n)) / 2.5;
  spec.r = 1.5;
  const auto g = graph::random_geometric(spec, rng);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::BernoulliScheduler>(0.5),
                       params, 99);
  sim.set_round_threads(round_threads);
  sim.keep_busy({0});
  for (auto _ : state) {
    sim.run_round();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
// Second arg: round_threads (the deterministic sharding thread cap); the
// per-thread-count series feeds tools/engine_micro_report.py's scaling
// table.  Results are byte-identical across the series -- only time moves.
BENCHMARK(BM_EngineRound)
    ->ArgsProduct({{64, 256, 1024}, {1, 2, 4, 8}});

// Sparse-traffic series: grid topology, offered load at three levels
// (dense = every node kept busy; "1%" / "0.1%" = Poisson arrivals
// calibrated so that fraction of nodes is in the sending state at a time),
// with the activity-driven sparse dispatch forced on or off.  The
// active_fraction counter reports the mean fraction of 64-vertex frontier
// words touched per round -- the quantity the sparse path's cost scales
// with (1.0 on the dense dispatch by definition).  phases_per_seed
// amortizes the all-nodes SeedAlg preambles so steady-state body rounds
// dominate the series, as they do in long campaigns.
void BM_EngineRoundSparse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int load = static_cast<int>(state.range(1));  // 0=dense,1=1%,2=0.1%
  const bool sparse = state.range(2) != 0;
  const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  const auto g = graph::grid(side, side, 1.0, 1.5);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  params.phases_per_seed = 8;
  lb::LbSimulation sim(g, std::make_unique<sim::BernoulliScheduler>(0.5),
                       params, 99);
  sim.configure(sim::EngineConfig{}.with_sparse_rounds(sparse));
  obs::Registry registry;
  sim.set_telemetry(&registry);
  if (load == 0) {
    std::vector<graph::Vertex> all(g.size());
    std::iota(all.begin(), all.end(), 0);
    sim.keep_busy(all);
  } else {
    const double busy_fraction = load == 1 ? 0.01 : 0.001;
    traffic::TrafficSpec tspec;
    tspec.kind = traffic::TrafficSpec::Kind::kPoisson;
    // Each admitted message occupies its sender for ~t_ack_bound rounds, so
    // this arrival rate holds ~busy_fraction * n nodes in the sending state.
    tspec.rate = std::max(busy_fraction * static_cast<double>(g.size()) /
                              static_cast<double>(params.t_ack_bound()),
                          1e-3);
    sim.add_traffic(
        traffic::build_source(tspec, g.size(), derive_seed(99, 0x7fcULL)));
  }
  // Warm past the first SeedAlg preamble (all nodes active every round by
  // construction) so short measurement windows at large n sample the
  // steady-state body mix, not the group prologue.
  sim.run_rounds(params.t_s);
  const std::uint64_t rounds0 =
      registry.counter("engine.rounds", obs::Domain::kLogical);
  const std::uint64_t blocks0 =
      registry.counter("engine.active_blocks", obs::Domain::kTiming);
  for (auto _ : state) {
    sim.run_round();
  }
  double active_fraction = 1.0;
  if (sparse) {
    const auto rounds = static_cast<double>(
        registry.counter("engine.rounds", obs::Domain::kLogical) - rounds0);
    const auto blocks = static_cast<double>(
        registry.counter("engine.active_blocks", obs::Domain::kTiming) -
        blocks0);
    const auto words = static_cast<double>((g.size() + 63) / 64);
    if (rounds > 0) active_fraction = blocks / (rounds * words);
  }
  state.counters["active_fraction"] = active_fraction;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_EngineRoundSparse)
    ->ArgsProduct({{4096, 65536}, {0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_SchedulerActive(benchmark::State& state) {
  const auto g = graph::grid(16, 16, 1.0, 1.5);
  sim::BernoulliScheduler sched(0.5);
  sched.commit(g, 42);
  sim::Round round = 1;
  for (auto _ : state) {
    for (graph::UnreliableEdgeId e = 0;
         e < static_cast<graph::UnreliableEdgeId>(g.unreliable_edge_count());
         ++e) {
      benchmark::DoNotOptimize(sched.active(e, round));
    }
    ++round;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.unreliable_edge_count()));
}
BENCHMARK(BM_SchedulerActive);

void BM_SeedBitsTake(benchmark::State& state) {
  SeedBits bits(0x1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits.take(7));
  }
}
BENCHMARK(BM_SeedBitsTake);

}  // namespace
}  // namespace dg

BENCHMARK_MAIN();
