// E14 (extension, not a paper claim) -- abstraction fidelity: LBAlg on the
// dual-graph *abstraction* of a deployment vs the same stack on the SINR
// *ground truth*, over identical embeddings.
//
// Pipeline per trial (src/scn/workload.cpp, abstraction_fidelity): sample a
// plane deployment; phys::extract_dual_graph turns its SINR physics into a
// Section 2 dual graph; LBAlg then runs twice with identical parameters and
// master seed -- (a) dual-graph reception + Bernoulli(0.5) scheduler, (b)
// phys::SinrChannel over the raw embedding.  Small deltas mean the dual
// graph is a faithful abstraction of interference-limited radio for the LB
// layer's guarantees.  (Ack latency is quantized to LBAlg phase boundaries,
// so it typically matches exactly while the flood-shape metrics expose the
// channel difference.)
//
// Ported: the size sweep is campaigns/e14_sinr.json (seeds 0xe14 + n);
// this binary runs it through scn::CampaignRunner and prints the
// historical table from the per-trial metric rows.
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_support.h"
#include "scn/campaign.h"

namespace {

double pct_delta(double base, double other) {
  return base != 0 ? (other - base) / base * 100.0 : 0.0;
}

}  // namespace

int main() {
  using namespace dg;
  const std::string path = bench::campaign_file("e14_sinr.json");
  const auto parsed = scn::parse_campaign_file(path);
  if (!parsed.ok()) {
    std::cerr << parsed.error << "\n";
    return 2;
  }
  const auto result = scn::run_campaign(parsed.campaign, scn::RunOptions{});

  bench::print_header(
      "E14: dual-graph abstraction vs SINR ground truth (extension)",
      "Not a paper claim: the dual graph abstracts radio unreliability; "
      "this bench\nextracts a dual graph from an SINR deployment "
      "(phys::extract_dual_graph) and\ncompares LBAlg progress/ack latency "
      "under dual-graph reception vs SINR\nreception on the same "
      "embeddings.\nScenario: " +
          path);

  Table table({"n", "edges E/E'-E", "progress dual", "progress sinr",
               "progress delta %", "reached dual", "reached sinr",
               "recv dual", "recv sinr", "acks dual", "acks sinr",
               "ack dual", "ack sinr", "ack delta %"});
  // Metric row layout (scn::metric_names, abstraction_fidelity):
  //   0 dual_progress, 1 dual_reached, 2 dual_receptions,
  //   3 dual_ack_latency, 4 dual_acked, 5..9 same for sinr,
  //   10 reliable_edges, 11 unreliable_edges.
  for (const auto& v : result.variants) {
    const double t = static_cast<double>(v.trials.size());
    double rel = 0, unrel = 0;
    // Ack latency is pooled over all acked broadcasts (latency-sum /
    // ack-count), not averaged over per-trial means: the two channels can
    // ack in different trial subsets, and the ack-count columns expose
    // that asymmetry so a latency delta is never read without it.
    double ack_sum_d = 0, ack_cnt_d = 0, ack_sum_s = 0, ack_cnt_s = 0;
    std::vector<double> pd, ps, rd, rs, vd, vs;
    for (const auto& row : v.trials) {
      rel += row[10];
      unrel += row[11];
      pd.push_back(row[0]);
      ps.push_back(row[5]);
      rd.push_back(row[1]);
      rs.push_back(row[6]);
      vd.push_back(row[2]);
      vs.push_back(row[7]);
      ack_sum_d += row[3] * row[4];
      ack_cnt_d += row[4];
      ack_sum_s += row[8] * row[9];
      ack_cnt_s += row[9];
    }
    const double ack_mean_d = ack_cnt_d != 0 ? ack_sum_d / ack_cnt_d : 0;
    const double ack_mean_s = ack_cnt_s != 0 ? ack_sum_s / ack_cnt_s : 0;
    const auto mean = [](const std::vector<double>& xs) {
      return xs.empty()
                 ? 0.0
                 : std::accumulate(xs.begin(), xs.end(), 0.0) /
                       static_cast<double>(xs.size());
    };
    table.row()
        .cell(static_cast<std::uint64_t>(v.spec.topology.n))
        .cell(std::to_string(static_cast<int>(rel / t)) + "/" +
              std::to_string(static_cast<int>(unrel / t)))
        .cell(mean(pd), 1)
        .cell(mean(ps), 1)
        .cell(pct_delta(mean(pd), mean(ps)), 1)
        .cell(mean(rd), 3)
        .cell(mean(rs), 3)
        .cell(mean(vd), 0)
        .cell(mean(vs), 0)
        .cell(ack_cnt_d, 0)
        .cell(ack_cnt_s, 0)
        .cell(ack_mean_d, 1)
        .cell(ack_mean_s, 1)
        .cell(pct_delta(ack_mean_d, ack_mean_s), 1);
  }
  bench::print_table(table);
  std::cout << "\nReading: small deltas = the Section 2 abstraction tracks "
               "SINR ground truth\nfor the LB layer's progress and "
               "acknowledgement behavior; large positive\ndeltas mark "
               "regimes where physics (cumulative interference) is harsher "
               "than\nthe per-edge abstraction.\n";
  return 0;
}
