// E14 (extension, not a paper claim) -- abstraction fidelity: LBAlg on the
// dual-graph *abstraction* of a deployment vs the same stack on the SINR
// *ground truth*, over identical embeddings.
//
// Pipeline per trial: sample a plane deployment; phys::extract_dual_graph
// turns its SINR physics into a Section 2 dual graph (reliable /
// grey-zone-unreliable / absent pairs, rescaled to r-geographic form); LBAlg
// then runs twice with identical parameters and master seed --
//   (a) abstraction: dual-graph reception, Bernoulli(0.5) link scheduler
//       over the extracted unreliable edges;
//   (b) ground truth: phys::SinrChannel reception over the raw embedding.
// Measured, with one saturated sender: mean first-data-reception round over
// all other vertices (horizon-clamped), the fraction of vertices reached,
// raw delivery counts, and acknowledgement latency, plus the relative
// deltas.  Small deltas mean the dual graph is a faithful abstraction of
// interference-limited radio for the LB layer's guarantees.  (Ack latency
// is quantized to LBAlg phase boundaries, so it typically matches exactly
// while the flood-shape metrics expose the channel difference.)
#include <algorithm>
#include <numeric>
#include <memory>

#include "bench_support.h"
#include "phys/extract.h"
#include "phys/sinr.h"
#include "stats/montecarlo.h"
#include "stats/probes.h"

namespace dg {
namespace {

constexpr std::int64_t kHorizonPhases = 16;

struct RunStats {
  double progress_rounds = 0;  // mean first data reception, horizon-clamped
  double reached_frac = 0;     // fraction of non-senders that ever received
  double receptions = 0;       // raw single-transmitter deliveries
  double ack_latency = 0;      // mean over acked broadcasts; 0 if none
  double acked = 0;
};

RunStats measure(lb::LbSimulation& sim, graph::Vertex sender) {
  const std::size_t n = sim.network().size();
  stats::FirstReceptionProbe probe(n);
  stats::TrafficProbe traffic;
  sim.add_observer(&probe);
  sim.add_observer(&traffic);
  sim.keep_busy({sender});
  sim.run_phases(kHorizonPhases);

  RunStats out;
  const auto horizon = static_cast<double>(sim.round());
  double progress_total = 0;
  for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(n); ++v) {
    if (v == sender) continue;
    const auto first = probe.first_reception(v);
    if (first != 0) out.reached_frac += 1;
    progress_total += first != 0 ? static_cast<double>(first) : horizon;
  }
  out.progress_rounds = progress_total / static_cast<double>(n - 1);
  out.reached_frac /= static_cast<double>(n - 1);
  out.receptions = static_cast<double>(traffic.receptions());
  double total = 0;
  for (const auto& rec : sim.checker().broadcasts()) {
    if (!rec.acked()) continue;
    total += static_cast<double>(rec.ack_round - rec.input_round);
    out.acked += 1;
  }
  out.ack_latency = out.acked != 0 ? total / out.acked : 0;
  return out;
}

struct Sample {
  RunStats dual, sinr;
  double reliable_edges = 0;
  double unreliable_edges = 0;
};

Sample trial(std::uint64_t seed, std::size_t n, double side) {
  Rng rng(seed);
  geo::Embedding emb;
  emb.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    emb.push_back(geo::Point{rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  phys::SinrExtractParams xp;  // alpha=3, beta=2, noise=0.1 defaults
  const auto ext = phys::extract_dual_graph(emb, xp, derive_seed(seed, 1));

  const graph::Vertex sender = 0;
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params = lb::LbParams::calibrated(
      0.1, std::max(1.0, ext.graph.r()), ext.graph.delta(),
      ext.graph.delta_prime(), scales);
  const std::uint64_t master = derive_seed(seed, 2);

  Sample out;
  out.reliable_edges = static_cast<double>(ext.stats.reliable_edges);
  out.unreliable_edges = static_cast<double>(ext.stats.unreliable_edges);
  {
    lb::LbSimulation sim(ext.graph,
                         std::make_unique<sim::BernoulliScheduler>(0.5),
                         params, master);
    out.dual = measure(sim, sender);
  }
  {
    // Same processes and parameters, but reception is SINR physics over the
    // RAW deployment coordinates (the extracted graph's embedding is
    // rescaled; the physics must see the real geometry).
    lb::LbSimulation sim(
        ext.graph, std::make_unique<phys::SinrChannel>(xp.sinr, emb), params,
        master);
    out.sinr = measure(sim, sender);
  }
  return out;
}

double pct_delta(double base, double other) {
  return base != 0 ? (other - base) / base * 100.0 : 0.0;
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E14: dual-graph abstraction vs SINR ground truth (extension)",
      "Not a paper claim: the dual graph abstracts radio unreliability; "
      "this bench\nextracts a dual graph from an SINR deployment "
      "(phys::extract_dual_graph) and\ncompares LBAlg progress/ack latency "
      "under dual-graph reception vs SINR\nreception on the same "
      "embeddings.");

  Table table({"n", "edges E/E'-E", "progress dual", "progress sinr",
               "progress delta %", "reached dual", "reached sinr",
               "recv dual", "recv sinr", "acks dual", "acks sinr",
               "ack dual", "ack sinr", "ack delta %"});
  const std::size_t trials = 6;
  for (const auto& [n, side] :
       {std::pair<std::size_t, double>{32, 3.5},
        std::pair<std::size_t, double>{48, 4.0},
        std::pair<std::size_t, double>{64, 4.5}}) {
    const auto samples = stats::run_trials(
        trials, 0xe14ULL + n,
        [&, n = n, side = side](std::size_t, std::uint64_t s) {
          return trial(s, n, side);
        });
    double rel = 0, unrel = 0;
    // Ack latency is pooled over all acked broadcasts (latency-sum /
    // ack-count), not averaged over per-trial means: the two channels can
    // ack in different trial subsets, and the ack-count columns expose
    // that asymmetry so a latency delta is never read without it.
    double ack_sum_d = 0, ack_cnt_d = 0, ack_sum_s = 0, ack_cnt_s = 0;
    std::vector<double> pd, ps, rd, rs, vd, vs;
    for (const auto& s : samples) {
      rel += s.reliable_edges;
      unrel += s.unreliable_edges;
      pd.push_back(s.dual.progress_rounds);
      ps.push_back(s.sinr.progress_rounds);
      rd.push_back(s.dual.reached_frac);
      rs.push_back(s.sinr.reached_frac);
      vd.push_back(s.dual.receptions);
      vs.push_back(s.sinr.receptions);
      ack_sum_d += s.dual.ack_latency * s.dual.acked;
      ack_cnt_d += s.dual.acked;
      ack_sum_s += s.sinr.ack_latency * s.sinr.acked;
      ack_cnt_s += s.sinr.acked;
    }
    const double ack_mean_d = ack_cnt_d != 0 ? ack_sum_d / ack_cnt_d : 0;
    const double ack_mean_s = ack_cnt_s != 0 ? ack_sum_s / ack_cnt_s : 0;
    const double t = static_cast<double>(trials);
    const auto mean = [](const std::vector<double>& xs) {
      return xs.empty()
                 ? 0.0
                 : std::accumulate(xs.begin(), xs.end(), 0.0) /
                       static_cast<double>(xs.size());
    };
    table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(std::to_string(static_cast<int>(rel / t)) + "/" +
              std::to_string(static_cast<int>(unrel / t)))
        .cell(mean(pd), 1)
        .cell(mean(ps), 1)
        .cell(pct_delta(mean(pd), mean(ps)), 1)
        .cell(mean(rd), 3)
        .cell(mean(rs), 3)
        .cell(mean(vd), 0)
        .cell(mean(vs), 0)
        .cell(ack_cnt_d, 0)
        .cell(ack_cnt_s, 0)
        .cell(ack_mean_d, 1)
        .cell(ack_mean_s, 1)
        .cell(pct_delta(ack_mean_d, ack_mean_s), 1);
  }
  bench::print_table(table);
  std::cout << "\nReading: small deltas = the Section 2 abstraction tracks "
               "SINR ground truth\nfor the LB layer's progress and "
               "acknowledgement behavior; large positive\ndeltas mark "
               "regimes where physics (cumulative interference) is harsher "
               "than\nthe per-edge abstraction.\n";
  return 0;
}
