// E4 -- Theorem 4.1 (acknowledgement): t_ack = O(Delta polylog(Delta,
// 1/eps)).  Measured: rounds until a broadcast is delivered to every
// reliable neighbor, on the star topology that realizes the Omega(Delta)
// lower bound (the hub can receive at most one message per round, so Delta
// saturated leaves force ~Delta rounds of serialization).
#include <memory>

#include "bench_support.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

struct Sample {
  std::vector<double> delivery_latencies;  // per completed broadcast
  double t_ack_bound = 0;
};

Sample trial(std::uint64_t seed, std::size_t leaves) {
  const auto g = graph::star_ring(leaves, 1.5);
  lb::LbScales scales;
  scales.ack_scale = 0.05;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::BernoulliScheduler>(0.5),
                       params, seed);
  std::vector<graph::Vertex> senders;
  for (graph::Vertex v = 1; v <= leaves; ++v) senders.push_back(v);
  sim.keep_busy(senders);
  sim.run_phases(2 * (params.t_ack_phases + 1));

  Sample out;
  out.t_ack_bound = static_cast<double>(params.t_ack_bound());
  for (const auto& rec : sim.checker().broadcasts()) {
    if (rec.delivered()) {
      out.delivery_latencies.push_back(
          static_cast<double>(rec.delivered_round - rec.input_round));
    }
  }
  return out;
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E4: acknowledgement / delivery latency vs Delta (Theorem 4.1)",
      "Claim: t_ack = O(Delta log(Delta/eps1) log Delta log(...)); any "
      "algorithm needs\nOmega(Delta) here (hub receives <= 1 message/round; "
      "all Delta leaves saturated).\nMeasured: rounds from bcast input to "
      "delivery at every reliable neighbor.");

  Table table({"Delta (leaves+1)", "deliveries", "latency mean",
               "latency p90", "mean/Delta", "t_ack bound"});
  const int trials = 10;
  for (std::size_t leaves : {4, 8, 16, 32}) {
    const auto samples = stats::run_trials(
        trials, 0xe4ULL + leaves,
        [&](std::size_t, std::uint64_t s) { return trial(s, leaves); });
    std::vector<double> lat;
    double bound = 0;
    for (const auto& s : samples) {
      bound = s.t_ack_bound;
      lat.insert(lat.end(), s.delivery_latencies.begin(),
                 s.delivery_latencies.end());
    }
    const auto summary = stats::Summary::of(lat);
    table.row()
        .cell(static_cast<std::uint64_t>(leaves + 1))
        .cell(static_cast<std::uint64_t>(summary.count))
        .cell(summary.mean, 1)
        .cell(summary.p90, 1)
        .cell(summary.mean / static_cast<double>(leaves + 1), 1)
        .cell(bound, 0);
  }
  bench::print_table(table);
  std::cout << "\nShape check: delivery latency grows at least linearly in "
               "Delta (the paper's\nOmega(Delta) argument); the theory bound "
               "t_ack dominates every measurement.\n";
  return 0;
}
