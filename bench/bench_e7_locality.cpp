// E7 -- "true locality": every guarantee of SeedAlg and LBAlg is stated and
// achieved independent of the network size n.  Fix Delta (disjoint cliques
// of size 8) and grow n by 64x: parameters, measured seed-agreement safety,
// and measured progress latency must all stay flat.
#include <memory>

#include "bench_support.h"
#include "seed/seed_alg.h"
#include "seed/spec.h"
#include "sim/engine.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

constexpr std::size_t kClique = 8;

struct Sample {
  std::size_t max_owners = 0;
  double progress_latency = 0;
};

Sample trial(std::uint64_t seed, std::size_t cliques) {
  const auto g = bench::disjoint_cliques(cliques, kClique);

  // Seed agreement across the whole network.
  const auto sparams = seed::SeedAlgParams::make(0.1, g.delta());
  const auto ids = sim::assign_ids(g.size(), derive_seed(seed, 1));
  sim::ConstantScheduler sched(false);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng init(derive_seed(seed, 2));
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(
        std::make_unique<seed::SeedProcess>(sparams, ids[v], init));
  }
  sim::Engine engine(g, sched, std::move(procs), derive_seed(seed, 3));
  engine.run_rounds(sparams.total_rounds());
  seed::DecisionVector decisions(g.size());
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    decisions[v] =
        dynamic_cast<const seed::SeedProcess&>(engine.process(v)).decision();
  }
  const auto res = seed::check_seed_spec(g, ids, decisions);

  // LBAlg progress in the first clique (receiver 0, sender 1).
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  const auto latency = bench::lb_progress_latency(
      g, std::make_unique<sim::ConstantScheduler>(false), params, {1}, 0,
      /*horizon_phases=*/8, derive_seed(seed, 4));

  return Sample{res.max_neighborhood_owners,
                static_cast<double>(latency)};
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E7: true locality -- nothing depends on n",
      "Claim (Section 1): specification, time complexity and error bounds "
      "are expressed\nindependent of n.  Fixed Delta = 8 (disjoint cliques), "
      "n grows 64x.  Parameters\nare identical by construction; measured "
      "behavior must stay flat too.");

  const auto params_ref = lb::LbParams::calibrated(0.1, 1.5, kClique, kClique);
  Table table({"n", "t_s", "t_prog bound", "t_ack bound", "owners mean",
               "progress mean", "progress p90"});
  const int trials = 12;
  for (std::size_t cliques : {1, 4, 16, 64}) {
    const auto samples = stats::run_trials(
        trials, 0xe7ULL + cliques,
        [&](std::size_t, std::uint64_t s) { return trial(s, cliques); });
    double owners = 0;
    std::vector<double> latencies;
    for (const auto& s : samples) {
      owners += static_cast<double>(s.max_owners);
      if (s.progress_latency > 0) latencies.push_back(s.progress_latency);
    }
    const auto summary = stats::Summary::of(latencies);
    table.row()
        .cell(static_cast<std::uint64_t>(cliques * kClique))
        .cell(params_ref.t_s)
        .cell(params_ref.t_prog_bound())
        .cell(params_ref.t_ack_bound())
        .cell(owners / trials, 2)
        .cell(summary.mean, 1)
        .cell(summary.p90, 1);
  }
  bench::print_table(table);
  std::cout << "\nShape check: every column is flat as n grows 64x -- "
               "contrast with 'w.h.p. in n'\nalgorithms whose bounds degrade "
               "(or whose error grows) with network size.\n";
  return 0;
}
