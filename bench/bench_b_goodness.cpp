// Appendix B replay -- the "region of goodness" argument, measured.
//
// The paper's central proof device (Lemmas B.2, B.8, B.10): every plane
// region starts phase 1 good (P_{x,1} <= 1), and goodness is preserved
// phase over phase with high probability, so the target node's
// neighborhood stays well-behaved long enough to finish.  This bench runs
// SeedAlg on embedded networks and prints the per-phase goodness record:
// the empirical counterpart of the induction.
#include <memory>

#include "bench_support.h"
#include "seed/goodness.h"
#include "seed/seed_alg.h"
#include "sim/engine.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

struct PhaseStats {
  double p_h = 0;
  double max_p = 0;
  std::size_t good = 0;
  std::size_t regions = 0;
};

std::vector<PhaseStats> trial(std::uint64_t seed, double eps1) {
  Rng rng(seed);
  graph::GeometricSpec spec;
  spec.n = 96;
  spec.side = 4.0;
  spec.r = 1.5;
  const auto g = graph::random_geometric(spec, rng);
  const auto params = seed::SeedAlgParams::make(eps1, g.delta());
  const auto ids = sim::assign_ids(g.size(), derive_seed(seed, 1));
  sim::BernoulliScheduler sched(0.5);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng init(derive_seed(seed, 2));
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(
        std::make_unique<seed::SeedProcess>(params, ids[v], init));
  }
  sim::Engine engine(g, sched, std::move(procs), derive_seed(seed, 3));
  seed::GoodnessAnalyzer analyzer(g, eps1);

  std::vector<PhaseStats> out;
  for (int h = 1; h <= params.num_phases; ++h) {
    const auto snap = analyzer.snapshot(engine, h, params);
    out.push_back(PhaseStats{snap.p_h, snap.max_p, snap.good, snap.regions});
    engine.run_rounds(params.phase_length);
  }
  return out;
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "Appendix B replay: region goodness across phases",
      "Lemma B.2: every region is good at phase 1 (P_{x,1} <= 1).  Lemmas "
      "B.8/B.10:\ngoodness persists w.h.p. phase over phase.  Measured: "
      "per-phase max P_{x,h} and\nthe fraction of occupied regions that are "
      "good (threshold c2 log2(1/eps1), c2=4).\nn=96 random geometric, "
      "r=1.5, eps1=0.1, 20 trials.");

  const double eps1 = 0.1;
  const int trials = 20;
  const auto runs = stats::run_trials(
      trials, 0xb00dULL,
      [&](std::size_t, std::uint64_t s) { return trial(s, eps1); });

  // Different trials may draw different Delta (hence phase counts); align
  // on the longest run and skip shorter ones per phase.
  std::size_t phases = 0;
  for (const auto& run : runs) phases = std::max(phases, run.size());
  Table table({"phase h", "p_h", "max P_{x,h}", "good regions",
               "good fraction"});
  for (std::size_t h = 0; h < phases; ++h) {
    double max_p = 0, p_h = 0;
    std::size_t good = 0, regions = 0;
    for (const auto& run : runs) {
      if (h >= run.size()) continue;
      p_h = std::max(p_h, run[h].p_h);
      max_p = std::max(max_p, run[h].max_p);
      good += run[h].good;
      regions += run[h].regions;
    }
    if (regions == 0) continue;
    table.row()
        .cell(static_cast<std::uint64_t>(h + 1))
        .cell(p_h, 4)
        .cell(max_p, 3)
        .cell(std::to_string(good) + "/" + std::to_string(regions))
        .cell(static_cast<double>(good) / static_cast<double>(regions), 4);
  }
  bench::print_table(table);
  std::cout << "\nShape check: phase 1 max P <= 1 (Lemma B.2, deterministic "
               "here); the good\nfraction stays ~1.0 through every phase -- "
               "the induction's premise, observed.\n";
  return 0;
}
