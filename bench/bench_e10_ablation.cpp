// E10 -- ablation: how much does seed agreement actually buy?
//
// LBAlg's body-round choices (participant groups, the b index) come from
// seeds shared across a neighborhood.  The ablated variant draws the same
// distributions from *private* coins -- identical marginals, identical
// timing structure, no coordination.  The paper's analysis needs the
// coordination (it bounds the number of distinct schedules per neighborhood
// by delta); this experiment quantifies the empirical gap on contended
// neighborhoods and under the anti-schedule adversary.
#include <memory>

#include "baseline/decay.h"
#include "bench_support.h"
#include "stats/montecarlo.h"

namespace dg {
namespace {

double trial(std::uint64_t seed, bool shared_seeds, std::size_t contenders,
             bool adversarial) {
  const auto g = graph::clique_cluster(contenders + 1);
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  params.use_shared_seeds = shared_seeds;
  std::unique_ptr<sim::LinkScheduler> sched;
  if (adversarial) {
    // Cliques have no unreliable edges; the adversary only matters on the
    // contention star, handled below.
    sched = std::make_unique<sim::ConstantScheduler>(true);
  } else {
    sched = std::make_unique<sim::ConstantScheduler>(false);
  }
  std::vector<graph::Vertex> senders;
  for (graph::Vertex v = 1; v <= contenders; ++v) senders.push_back(v);
  const auto latency =
      bench::lb_progress_latency(g, std::move(sched), params, senders, 0,
                                 /*horizon_phases=*/12, seed);
  return static_cast<double>(latency == 0 ? 12 * params.phase_length()
                                          : latency);
}

double star_trial(std::uint64_t seed, bool shared_seeds) {
  const auto g = bench::contention_star(64);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  params.use_shared_seeds = shared_seeds;
  std::vector<graph::Vertex> senders;
  for (graph::Vertex v = 1; v < g.size(); ++v) senders.push_back(v);
  const auto latency = bench::lb_progress_latency(
      g, std::make_unique<sim::ConstantScheduler>(true), params, senders, 0,
      /*horizon_phases=*/10, seed);
  return static_cast<double>(latency == 0 ? 10 * params.phase_length()
                                          : latency);
}

}  // namespace
}  // namespace dg

int main() {
  using namespace dg;
  bench::print_header(
      "E10: seed-agreement ablation",
      "LBAlg vs an ablated variant drawing identical distributions from "
      "private coins\n(no neighborhood coordination).  The analysis requires "
      "coordination to bound the\nnumber of distinct schedules per "
      "neighborhood; this measures what it buys\nempirically.  Metric: "
      "progress latency at a contended receiver.");

  const int trials = 20;

  Table table({"topology", "variant", "progress mean", "progress p90"});
  for (std::size_t contenders : {8, 32}) {
    for (bool shared : {true, false}) {
      const auto samples = stats::run_trials(
          trials, 0xe10ULL + contenders + (shared ? 1 : 0),
          [&](std::size_t, std::uint64_t s) {
            return trial(s, shared, contenders, false);
          });
      const auto summary = stats::Summary::of(samples);
      table.row()
          .cell("clique k=" + std::to_string(contenders))
          .cell(shared ? "seeded (LBAlg)" : "ablated (private)")
          .cell(summary.mean, 1)
          .cell(summary.p90, 1);
    }
  }
  for (bool shared : {true, false}) {
    const auto samples = stats::run_trials(
        trials, 0xe10fULL + (shared ? 1 : 0),
        [&](std::size_t, std::uint64_t s) { return star_trial(s, shared); });
    const auto summary = stats::Summary::of(samples);
    table.row()
        .cell("unreliable star k=64 (flooded)")
        .cell(shared ? "seeded (LBAlg)" : "ablated (private)")
        .cell(summary.mean, 1)
        .cell(summary.p90, 1);
  }
  bench::print_table(table);
  std::cout << "\nReading: both variants resist the oblivious adversary "
               "(randomized schedules are\nunpredictable either way), and on "
               "these benign/flooded workloads the ablated\nvariant is "
               "somewhat *faster* on cliques: shared seeds make whole groups "
               "go\nsilent together (correlated non-participation), which "
               "costs rounds.  What the\nseeds buy is not average-case speed "
               "but *analyzability*: Lemma C.1's proof\nneeds the number of "
               "distinct schedules per neighborhood bounded by delta, "
               "which\nonly the agreement provides -- the worst-case "
               "guarantee holds for every oblivious\nscheduler, not just the "
               "ones tried here.  Reported as measured.\n";
  return 0;
}
