// Consensus over the abstract MAC layer, on top of LBAlg, in the dual
// graph model -- three papers composed ([this paper] + [14] + [20]).
//
//   $ ./examples/consensus_demo
//
// Eight devices in radio range of each other (plus adversarially flickering
// unreliable links) must agree on a configuration value.  The consensus
// protocol knows nothing about rounds, collisions, or link schedules -- it
// sees only bcast/abort/ack/rcv.  Everything below the MAC interface is
// this repository's LBAlg stack.
//
// Expected output: the eight proposals with their random priorities, then
// -- after the run -- every device reporting the same decided value (the
// value championed by the highest priority).  Exits 0.
#include <iostream>
#include <memory>

#include "amac/consensus.h"
#include "amac/lb_amac.h"
#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"

int main() {
  constexpr std::size_t kNodes = 8;
  const auto net = dg::graph::clique_cluster(kNodes);

  dg::lb::LbScales scales;
  scales.ack_scale = 0.05;
  const auto params = dg::lb::LbParams::calibrated(
      0.1, 1.5, net.delta(), net.delta_prime(), scales);
  dg::lb::LbSimulation sim(
      net, std::make_unique<dg::sim::FlickerScheduler>(50, 25), params, 77);
  dg::amac::LbMacLayer mac(sim);

  dg::Rng rng(123);
  std::vector<dg::amac::ConsensusNode> nodes;
  nodes.reserve(kNodes);
  std::cout << "proposals:\n";
  for (std::size_t i = 0; i < kNodes; ++i) {
    const auto value = static_cast<std::uint32_t>(100 + 11 * i);
    const auto priority = static_cast<std::uint32_t>(rng.bits());
    std::cout << "  device " << i << ": value " << value << " (priority "
              << priority << ")\n";
    nodes.emplace_back(value, priority);
  }
  std::vector<dg::amac::MacApplication*> apps;
  for (auto& n : nodes) apps.push_back(&n);
  mac.attach(apps);

  mac.run_rounds(10 * (params.t_ack_phases + 2) * params.phase_length());

  std::cout << "\nafter " << sim.round() << " rounds:\n";
  bool agreement = true;
  std::uint32_t first = 0;
  bool have_first = false;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (!nodes[i].decided()) {
      std::cout << "  device " << i << ": undecided\n";
      agreement = false;
      continue;
    }
    const auto d = nodes[i].decision();
    std::cout << "  device " << i << ": decided " << d << "\n";
    if (!have_first) {
      first = d;
      have_first = true;
    } else if (d != first) {
      agreement = false;
    }
  }
  std::cout << "\nagreement: " << (agreement ? "YES" : "NO")
            << "   (LB spec verdicts: timely-ack="
            << (sim.report().timely_ack_ok ? "OK" : "VIOLATED")
            << " validity=" << (sim.report().validity_ok ? "OK" : "VIOLATED")
            << ")\n";
  return agreement ? 0 : 1;
}
