// Abstract MAC layer demo: multi-message broadcast over a multihop grid
// with unreliable links -- the paper's compositionality story end to end.
//
//   $ ./examples/amac_flood
//
// Three data items start at three corners of a 6x4 grid whose diagonal
// links are unreliable (present each round only at the whim of the
// oblivious scheduler).  Every node runs the flood-relay multi-message
// broadcast of Ghaffari et al. written purely against the abstract MAC
// interface (bcast/ack/rcv) -- it compiles against *any* MAC
// implementation.  Here it runs over LbMacLayer, the paper's dual-graph
// implementation, and completes despite the link chaos.
//
// Expected output: the grid summary and derived (f_ack, f_prog, eps)
// bounds, then full coverage -- "coverage: 72/72 (item, node) pairs" with
// the completion round -- and OK timely-ack/validity verdicts from the
// underlying LB layer.  Exits 0.
#include <iostream>
#include <memory>

#include "amac/lb_amac.h"
#include "amac/mmb.h"
#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"

int main() {
  const auto net = dg::graph::grid(6, 4, 1.0, 1.5);
  std::cout << "6x4 grid: n=" << net.size() << "  Delta=" << net.delta()
            << "  unreliable (diagonal) edges=" << net.unreliable_edge_count()
            << "\n";

  dg::lb::LbScales scales;
  scales.ack_scale = 0.1;
  const auto params = dg::lb::LbParams::calibrated(
      0.1, 1.5, net.delta(), net.delta_prime(), scales);
  dg::lb::LbSimulation sim(
      net, std::make_unique<dg::sim::BernoulliScheduler>(0.3), params, 7);

  dg::amac::LbMacLayer mac(sim);
  const auto bounds = mac.bounds();
  std::cout << "abstract MAC bounds: f_ack=" << bounds.f_ack
            << "  f_prog=" << bounds.f_prog << "  eps=" << bounds.eps
            << "\n\n";

  std::vector<dg::amac::MmbNode> nodes(net.size());
  std::vector<dg::amac::MacApplication*> apps;
  for (auto& n : nodes) apps.push_back(&n);
  mac.attach(apps);

  // Three items at three corners.
  nodes[0].inject(101);                    // bottom-left
  nodes[5].inject(202);                    // bottom-right
  nodes[net.size() - 1].inject(303);       // top-right

  const std::int64_t step = params.phase_length();
  std::int64_t completed_at = -1;
  for (int i = 0; i < 400; ++i) {
    mac.run_rounds(step);
    bool all = true;
    for (const auto& n : nodes) {
      if (n.known().size() < 3) {
        all = false;
        break;
      }
    }
    if (all) {
      completed_at = sim.round();
      break;
    }
  }

  std::size_t total_known = 0;
  for (const auto& n : nodes) total_known += n.known().size();
  std::cout << "coverage: " << total_known << "/" << 3 * net.size()
            << " (item, node) pairs\n";
  if (completed_at > 0) {
    std::cout << "all three items reached all " << net.size()
              << " nodes by round " << completed_at << " ("
              << completed_at / step << " phases)\n";
  } else {
    std::cout << "flood incomplete within the horizon\n";
  }
  std::cout << "\nspec verdicts from the underlying LB layer: timely-ack="
            << (sim.report().timely_ack_ok ? "OK" : "VIOLATED")
            << " validity=" << (sim.report().validity_ok ? "OK" : "VIOLATED")
            << "\n";
  return 0;
}
