// Quickstart: build a dual graph network, run the local broadcast service,
// watch the spec checker confirm the Section 4.1 guarantees.
//
//   $ ./examples/quickstart [master_seed]
//
// Walks through the whole public API surface in ~80 lines:
//   1. generate an r-geographic random network,
//   2. pick an oblivious link scheduler,
//   3. derive the LBAlg parameters from (eps1, r, Delta, Delta'),
//   4. broadcast a message and run phases,
//   5. read the machine-checked verdicts and per-broadcast latencies.
//
// Expected output: a network/parameter summary, then "timely
// acknowledgement: OK" and "validity: OK" verdicts, reliability 2/2,
// a progress tally near its opportunity count, and the ack/delivery
// latencies of node 0's broadcast.  Exits 0.
#include <cstdlib>
#include <iostream>
#include <memory>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"

int main(int argc, char** argv) {
  const std::uint64_t master_seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2015;

  // 1. An r-geographic dual graph: 48 nodes in a 3x3 box; pairs within
  //    distance 1 are reliable, grey-zone pairs (1 < d <= r) mostly become
  //    unreliable links whose round-by-round fate the scheduler decides.
  dg::Rng rng(master_seed);
  dg::graph::GeometricSpec spec;
  spec.n = 48;
  spec.side = 3.0;
  spec.r = 1.5;
  const dg::graph::DualGraph net = dg::graph::random_geometric(spec, rng);
  std::cout << "network: n=" << net.size() << "  Delta=" << net.delta()
            << "  Delta'=" << net.delta_prime()
            << "  unreliable edges=" << net.unreliable_edge_count() << "\n";

  // 2. An oblivious link scheduler: each unreliable edge flips an
  //    independent coin per round, all committed before round 1.
  auto scheduler = std::make_unique<dg::sim::BernoulliScheduler>(0.5);

  // 3. LBAlg parameters for error bound eps1 = 0.1.  ack_scale shortens the
  //    (deliberately conservative) sending budget for this demo.
  dg::lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params = dg::lb::LbParams::calibrated(
      /*eps1=*/0.1, spec.r, net.delta(), net.delta_prime(), scales);
  std::cout << "params: T_s=" << params.t_s << "  T_prog=" << params.t_prog
            << "  phase=" << params.phase_length()
            << "  T_ack=" << params.t_ack_phases << " phases\n";

  // 4. Run: node 0 broadcasts one message; node n/2 stays saturated.
  dg::lb::LbSimulation sim(net, std::move(scheduler), params, master_seed);
  sim.post_bcast(0, /*content=*/0xC0FFEE);
  sim.keep_busy({static_cast<dg::graph::Vertex>(net.size() / 2)});
  sim.run_phases(params.t_ack_phases + 2);

  // 5. Verdicts.
  const dg::lb::LbSpecReport& report = sim.report();
  std::cout << "\nafter " << sim.round() << " rounds:\n"
            << "  timely acknowledgement: "
            << (report.timely_ack_ok ? "OK" : "VIOLATED") << "\n"
            << "  validity:               "
            << (report.validity_ok ? "OK" : "VIOLATED") << "\n"
            << "  bcast/ack/recv:         " << report.bcast_count << "/"
            << report.ack_count << "/" << report.recv_count << "\n"
            << "  reliability:            " << report.reliability.successes()
            << "/" << report.reliability.trials() << " broadcasts delivered "
            << "to every reliable neighbor\n"
            << "  progress:               " << report.progress.successes()
            << "/" << report.progress.trials()
            << " (vertex,phase) opportunities met\n";

  for (const auto& rec : sim.checker().broadcasts()) {
    if (rec.origin != 0) continue;
    std::cout << "\nnode 0's broadcast: input round " << rec.input_round
              << ", ack round " << rec.ack_round;
    if (rec.delivered()) {
      std::cout << ", delivered to all " << rec.recv_rounds.size()
                << " reliable neighbors by round " << rec.delivered_round;
    }
    std::cout << "\n";
  }
  return 0;
}
