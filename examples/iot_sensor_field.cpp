// IoT sensor field: the "ubiquitous computing" scenario from the paper's
// introduction -- a massive network in which each device only cares about
// its local neighborhood, and guarantees must not depend on global size.
//
//   $ ./examples/iot_sensor_field [fields]
//
// `fields` identical 60-node sensor patches (default 4, i.e. n = 240) are
// deployed far apart.  Every patch elects its densest node as a local sink;
// sensors take turns broadcasting readings; sinks count distinct readings
// gathered.  The point of the demo: the LBAlg parameter set -- computed
// only from (eps1, r, Delta, Delta') -- is the same whether one patch or a
// thousand exist, and per-patch behavior does not change as the deployment
// grows.  Locality is not an optimization here; it is the spec.
//
// Expected output: the deployment summary, the LBAlg parameter set (the
// same for any `fields` value), per-patch reading/delivery counts -- every
// patch fully broadcasting all 15 readings -- and OK global spec verdicts
// with reliability 60/60 per 4 patches.  Exits 0.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <unordered_set>

#include "graph/dual_graph.h"
#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"

namespace {

/// One 60-node patch stamped at the given offset; returns local Delta.
void stamp_patch(dg::graph::DualGraph& g, dg::geo::Embedding& emb,
                 std::size_t base, double offset_x, dg::Rng& rng) {
  // Sample 60 points in a 3x3 box at offset_x.
  const std::size_t kPatch = 60;
  std::vector<dg::geo::Point> pts(kPatch);
  for (auto& p : pts) {
    p = {offset_x + rng.uniform(0.0, 3.0), rng.uniform(0.0, 3.0)};
  }
  for (std::size_t i = 0; i < kPatch; ++i) {
    emb[base + i] = pts[i];
    for (std::size_t j = i + 1; j < kPatch; ++j) {
      const double d = dg::geo::distance(pts[i], pts[j]);
      const auto u = static_cast<dg::graph::Vertex>(base + i);
      const auto v = static_cast<dg::graph::Vertex>(base + j);
      if (d <= 1.0) {
        g.add_reliable_edge(u, v);
      } else if (d <= 1.5 && rng.chance(0.6)) {
        g.add_unreliable_edge(u, v);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t fields =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  const std::size_t kPatch = 60;
  const std::size_t n = fields * kPatch;

  dg::Rng rng(99);
  dg::graph::DualGraph net(n);
  dg::geo::Embedding emb(n);
  for (std::size_t f = 0; f < fields; ++f) {
    stamp_patch(net, emb, f * kPatch, static_cast<double>(f) * 1000.0, rng);
  }
  net.set_embedding(std::move(emb), 1.5);
  net.finalize();

  std::cout << "deployment: " << fields << " patches, n=" << n
            << ", Delta=" << net.delta() << ", Delta'=" << net.delta_prime()
            << "\n";

  dg::lb::LbScales scales;
  scales.ack_scale = 0.005;
  const auto params = dg::lb::LbParams::calibrated(
      0.1, 1.5, net.delta(), net.delta_prime(), scales);
  std::cout << "LBAlg parameters (functions of Delta only -- identical for "
               "any deployment size):\n  T_s="
            << params.t_s << " T_prog=" << params.t_prog
            << " phase=" << params.phase_length()
            << " T_ack=" << params.t_ack_phases << " phases\n\n";

  dg::lb::LbSimulation sim(
      net, std::make_unique<dg::sim::BernoulliScheduler>(0.5), params, 123);

  // In each patch, the 5 lowest-index sensors cycle readings forever.
  std::vector<dg::graph::Vertex> reporters;
  for (std::size_t f = 0; f < fields; ++f) {
    for (std::size_t i = 0; i < 5; ++i) {
      reporters.push_back(static_cast<dg::graph::Vertex>(f * kPatch + i));
    }
  }
  sim.keep_busy(reporters);
  sim.run_phases(3 * (params.t_ack_phases + 1));

  // Per-patch accounting: distinct readings heard by patch members.
  std::cout << "per-patch results after " << sim.round() << " rounds:\n";
  for (std::size_t f = 0; f < fields; ++f) {
    std::size_t recvs = 0, acks = 0;
    for (const auto& rec : sim.checker().broadcasts()) {
      if (rec.origin / kPatch != f) continue;
      if (rec.acked()) ++acks;
      recvs += rec.recv_rounds.size();
    }
    std::cout << "  patch " << f << ": " << acks
              << " readings fully broadcast, " << recvs
              << " neighbor deliveries\n";
  }
  const auto& report = sim.report();
  std::cout << "\nglobal spec verdicts: timely-ack="
            << (report.timely_ack_ok ? "OK" : "VIOLATED")
            << " validity=" << (report.validity_ok ? "OK" : "VIOLATED")
            << "  reliability=" << report.reliability.successes() << "/"
            << report.reliability.trials() << "\n"
            << "\nRe-run with a different `fields` argument: per-patch "
               "numbers stay put while n\nscales -- the introduction's "
               "'truly local' pitch, executable.\n";
  return 0;
}
