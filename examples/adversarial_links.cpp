// Adversarial links demo: the scenario from the paper's Discussion section,
// live.
//
//   $ ./examples/adversarial_links
//
// A receiver sits next to one reliable sender and 64 unreliable neighbors.
// An oblivious adversary -- legal under the dual graph model, because it
// commits its whole schedule before round 1 -- reads Decay's *published*
// probability schedule and floods the unreliable edges exactly in the
// high-probability rounds.  Decay, the textbook strategy for reliable radio
// networks, collapses.  LBAlg draws its schedule from seeds agreed at
// runtime, after the adversary has committed; the same adversary has
// nothing to aim at.
//
// Expected output: mean first-reception latencies over 15 trials for Decay
// and LBAlg under the benign and anti-schedule adversaries.  Decay degrades
// by an order of magnitude or more under attack; LBAlg's degradation factor
// stays near 1.  Exits 0.
#include <iostream>
#include <memory>

#include "baseline/decay.h"
#include "graph/dual_graph.h"
#include "lb/simulation.h"
#include "sim/engine.h"
#include "stats/probes.h"
#include "stats/summary.h"

namespace {

constexpr std::size_t kUnreliable = 64;
constexpr int kLogDelta = 7;

dg::graph::DualGraph make_star() {
  dg::graph::DualGraph g(kUnreliable + 2);
  g.add_reliable_edge(0, 1);
  for (dg::graph::Vertex v = 2; v < kUnreliable + 2; ++v) {
    g.add_unreliable_edge(0, v);
  }
  g.finalize();
  return g;
}

double decay_progress(bool adversarial, std::uint64_t seed) {
  const auto g = make_star();
  const auto ids = dg::sim::assign_ids(g.size(), seed);
  dg::baseline::DecayParams params;
  params.log_delta = kLogDelta;
  params.ack_rounds = 1 << 20;
  std::unique_ptr<dg::sim::LinkScheduler> sched;
  if (adversarial) {
    sched = std::make_unique<dg::sim::AntiScheduleAdversary>(
        [](dg::sim::Round t) {
          return dg::baseline::decay_probability(t, kLogDelta);
        },
        /*pivot=*/1.0 / 16.0);
  } else {
    sched = std::make_unique<dg::sim::ConstantScheduler>(false);
  }
  std::vector<std::unique_ptr<dg::sim::Process>> procs;
  for (dg::graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(std::make_unique<dg::baseline::DecayProcess>(
        params, ids[v], v, nullptr));
  }
  dg::sim::Engine engine(g, *sched, std::move(procs), seed);
  dg::stats::FirstReceptionProbe probe(g.size());
  engine.add_observer(&probe);
  for (dg::graph::Vertex v = 1; v < g.size(); ++v) {
    dynamic_cast<dg::baseline::DecayProcess&>(engine.process(v)).post_bcast(v);
  }
  engine.run_rounds(4096);
  const auto first = probe.first_reception(0);
  return static_cast<double>(first == 0 ? 4096 : first);
}

double lbalg_progress(bool adversarial, std::uint64_t seed) {
  const auto g = make_star();
  dg::lb::LbScales scales;
  scales.ack_scale = 0.01;
  const auto params = dg::lb::LbParams::calibrated(0.1, 1.5, g.delta(),
                                                   g.delta_prime(), scales);
  std::unique_ptr<dg::sim::LinkScheduler> sched;
  if (adversarial) {
    sched = std::make_unique<dg::sim::AntiScheduleAdversary>(
        [](dg::sim::Round t) {
          return dg::baseline::decay_probability(t, kLogDelta);
        },
        /*pivot=*/1.0 / 16.0);
  } else {
    sched = std::make_unique<dg::sim::ConstantScheduler>(false);
  }
  dg::lb::LbSimulation sim(g, std::move(sched), params, seed);
  dg::stats::FirstReceptionProbe probe(g.size());
  sim.add_observer(&probe);
  std::vector<dg::graph::Vertex> senders;
  for (dg::graph::Vertex v = 1; v < g.size(); ++v) senders.push_back(v);
  sim.keep_busy(senders);
  for (int p = 0; p < 10 && probe.first_reception(0) == 0; ++p) {
    sim.run_phases(1);
  }
  const auto first = probe.first_reception(0);
  return static_cast<double>(first == 0 ? 4096 : first);
}

void report(const char* name, double (*run)(bool, std::uint64_t)) {
  std::vector<double> benign, adv;
  for (std::uint64_t s = 1; s <= 15; ++s) {
    benign.push_back(run(false, s));
    adv.push_back(run(true, s));
  }
  const auto b = dg::stats::Summary::of(benign);
  const auto a = dg::stats::Summary::of(adv);
  std::cout << "  " << name << ":  benign " << b.mean
            << " rounds,  anti-schedule " << a.mean
            << " rounds   (degradation x" << a.mean / b.mean << ")\n";
}

}  // namespace

int main() {
  std::cout
      << "One receiver, 1 reliable sender, 64 unreliable neighbors -- all "
         "saturated.\nMean rounds until the receiver first hears anything "
         "(15 trials):\n\n";
  report("Decay (fixed schedule)  ", decay_progress);
  report("LBAlg (seed-permuted)   ", lbalg_progress);
  std::cout
      << "\nThe adversary is oblivious -- completely legal in the dual "
         "graph model -- yet\nit cripples the fixed schedule.  LBAlg's "
         "schedule is sampled after the\nadversary commits, which is "
         "precisely why the paper routes all shared\nrandomness through "
         "seed agreement.\n";
  return 0;
}
