// Tests for the bounded trace recorder.
#include <gtest/gtest.h>

#include <sstream>

#include "fault/plan.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "sim/trace.h"
#include "test_support.h"

namespace dg::sim {
namespace {

using test::reliable_path;
using test::ScriptProcess;

TEST(TraceRecorder, RecordsTransmitAndReceive) {
  const auto g = reliable_path(2);
  const auto ids = assign_ids(2, 1);
  ConstantScheduler sched(false);
  std::vector<std::unique_ptr<Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[0], std::map<Round, std::uint64_t>{{1, 42}}));
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[1], std::map<Round, std::uint64_t>{}));
  Engine engine(g, sched, std::move(procs), 7);
  TraceRecorder trace;
  engine.add_observer(&trace);
  engine.run_round();
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].kind, TraceRecorder::EventKind::transmit);
  EXPECT_EQ(trace.events()[0].vertex, 0u);
  EXPECT_EQ(trace.events()[0].detail, 42u);
  EXPECT_EQ(trace.events()[1].kind, TraceRecorder::EventKind::receive);
  EXPECT_EQ(trace.events()[1].vertex, 1u);
  EXPECT_EQ(trace.events()[1].peer, 0u);
}

TEST(TraceRecorder, RecordsCollisionsNotSilence) {
  const auto g = reliable_path(3);
  const auto ids = assign_ids(3, 1);
  ConstantScheduler sched(false);
  std::vector<std::unique_ptr<Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[0], std::map<Round, std::uint64_t>{{1, 1}}));
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[1], std::map<Round, std::uint64_t>{}));
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[2], std::map<Round, std::uint64_t>{{1, 2}}));
  Engine engine(g, sched, std::move(procs), 7);
  TraceRecorder trace;
  engine.add_observer(&trace);
  engine.run_rounds(2);  // round 2: everyone silent, nothing recorded
  std::size_t collisions = 0;
  for (const auto& e : trace.events()) {
    if (e.kind == TraceRecorder::EventKind::collision) ++collisions;
  }
  EXPECT_EQ(collisions, 1u);  // vertex 1 in round 1 only
}

TEST(TraceRecorder, RingBufferDropsOldest) {
  TraceRecorder trace(/*capacity=*/3);
  const Packet p{1, DataPayload{MessageId{1, 1}, 9}};
  for (Round t = 1; t <= 5; ++t) {
    trace.on_transmit(t, 0, p);
  }
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.dropped(), 2u);
  EXPECT_EQ(trace.events().front().round, 3);
}

TEST(TraceRecorder, RoundMarkersAreOptInAndBracketTheRound) {
  const auto g = reliable_path(2);
  const auto ids = assign_ids(2, 1);
  ConstantScheduler sched(false);
  std::vector<std::unique_ptr<Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[0], std::map<Round, std::uint64_t>{{1, 42}}));
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[1], std::map<Round, std::uint64_t>{}));
  Engine engine(g, sched, std::move(procs), 7);
  TraceRecorder trace;
  trace.enable_round_markers(true);  // before add_observer: interest is
                                     // sampled at registration
  engine.add_observer(&trace);
  engine.run_round();
  ASSERT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.events().front().kind, TraceRecorder::EventKind::round_begin);
  EXPECT_EQ(trace.events()[1].kind, TraceRecorder::EventKind::transmit);
  EXPECT_EQ(trace.events()[2].kind, TraceRecorder::EventKind::receive);
  EXPECT_EQ(trace.events().back().kind, TraceRecorder::EventKind::round_end);
  EXPECT_EQ(TraceRecorder::describe(trace.events().front()),
            "round 1: round begin");
  EXPECT_EQ(TraceRecorder::describe(trace.events().back()),
            "round 1: round end");
}

TEST(TraceRecorder, RoundMarkersDefaultOff) {
  const auto g = reliable_path(2);
  const auto ids = assign_ids(2, 1);
  ConstantScheduler sched(false);
  std::vector<std::unique_ptr<Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[0], std::map<Round, std::uint64_t>{{1, 42}}));
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[1], std::map<Round, std::uint64_t>{}));
  Engine engine(g, sched, std::move(procs), 7);
  TraceRecorder trace;  // default interest: wire events only
  engine.add_observer(&trace);
  engine.run_round();
  for (const auto& e : trace.events()) {
    EXPECT_NE(e.kind, TraceRecorder::EventKind::round_begin);
    EXPECT_NE(e.kind, TraceRecorder::EventKind::round_end);
  }
}

TEST(TraceRecorder, FaultEventsFlowThroughTheEngineSeam) {
  const auto g = reliable_path(2);
  const auto ids = assign_ids(2, 1);
  ConstantScheduler sched(false);
  std::vector<std::unique_ptr<Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[0], std::map<Round, std::uint64_t>{}));
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[1], std::map<Round, std::uint64_t>{}));
  Engine engine(g, sched, std::move(procs), 7);
  fault::ScriptFaultPlan plan({{1, 1, fault::FaultKind::kCrash},
                               {2, 1, fault::FaultKind::kRecover}});
  engine.set_fault_plan(&plan);
  TraceRecorder trace;
  trace.enable_fault_events(true);
  engine.add_observer(&trace);
  engine.run_rounds(2);
  std::vector<std::string> described;
  for (const auto& e : trace.events()) {
    if (e.kind == TraceRecorder::EventKind::crash ||
        e.kind == TraceRecorder::EventKind::recover) {
      described.push_back(TraceRecorder::describe(e));
    }
  }
  ASSERT_EQ(described.size(), 2u);
  EXPECT_EQ(described[0], "round 1: v1 crash");
  EXPECT_EQ(described[1], "round 2: v1 recover");
}

TEST(TraceRecorder, DescribeFormats) {
  TraceRecorder::Event e;
  e.round = 17;
  e.kind = TraceRecorder::EventKind::receive;
  e.vertex = 5;
  e.peer = 3;
  e.is_data = true;
  e.detail = 42;
  EXPECT_EQ(TraceRecorder::describe(e), "round 17: v3 -> v5 data content=42");
}

TEST(TraceRecorder, PrintIncludesDropNotice) {
  TraceRecorder trace(1);
  const Packet p{1, DataPayload{MessageId{1, 1}, 9}};
  trace.on_transmit(1, 0, p);
  trace.on_transmit(2, 0, p);
  std::ostringstream os;
  trace.print(os);
  EXPECT_NE(os.str().find("1 earlier events dropped"), std::string::npos);
}

TEST(TraceRecorder, ClearResets) {
  TraceRecorder trace(2);
  const Packet p{1, DataPayload{MessageId{1, 1}, 9}};
  trace.on_transmit(1, 0, p);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.dropped(), 0u);
}

}  // namespace
}  // namespace dg::sim
