// Cross-configuration sweeps: interactions not covered by the per-module
// suites -- seed agreement across structurally different topology families,
// and the LB layer across (seed-reuse x scheduler) combinations.
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "seed/seed_alg.h"
#include "seed/spec.h"
#include "sim/engine.h"
#include "sim/scheduler.h"

namespace dg {
namespace {

// ---- seed agreement across topology families ----

enum class Topo { clique, star, grid, line, bridged };

graph::DualGraph make_topo(Topo t) {
  switch (t) {
    case Topo::clique:
      return graph::clique_cluster(16);
    case Topo::star:
      return graph::star_ring(12, 1.5);
    case Topo::grid:
      return graph::grid(5, 4, 1.0, 1.5);
    case Topo::line:
      return graph::line(12, 0.9, 1.5);
    case Topo::bridged:
      return graph::bridged_clusters(6, 1.5);
  }
  return graph::clique_cluster(2);
}

class SeedAcrossTopologies
    : public ::testing::TestWithParam<std::tuple<Topo, std::uint64_t>> {};

TEST_P(SeedAcrossTopologies, SafetyConditionsAlwaysHold) {
  const auto [topo, seed] = GetParam();
  const auto g = make_topo(topo);
  const auto params = seed::SeedAlgParams::make(0.1, g.delta());
  const auto ids = sim::assign_ids(g.size(), derive_seed(seed, 1));
  sim::BernoulliScheduler sched(0.5);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng init(derive_seed(seed, 2));
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(
        std::make_unique<seed::SeedProcess>(params, ids[v], init));
  }
  sim::Engine engine(g, sched, std::move(procs), derive_seed(seed, 3));
  engine.run_rounds(params.total_rounds());
  seed::DecisionVector decisions(g.size());
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    decisions[v] =
        dynamic_cast<const seed::SeedProcess&>(engine.process(v)).decision();
  }
  const auto res = seed::check_seed_spec(g, ids, decisions);
  EXPECT_TRUE(res.well_formed);
  EXPECT_TRUE(res.consistent);
  EXPECT_TRUE(res.owners_local);
  // Generous concrete agreement ceiling for these small diameters.
  EXPECT_LE(res.max_neighborhood_owners, 24u);
}

INSTANTIATE_TEST_SUITE_P(
    Families, SeedAcrossTopologies,
    ::testing::Combine(::testing::Values(Topo::clique, Topo::star, Topo::grid,
                                         Topo::line, Topo::bridged),
                       ::testing::Values(1, 2, 3)));

// ---- LB layer: seed reuse x scheduler interactions ----

class LbReuseScheduler
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LbReuseScheduler, SpecCleanAndTrafficFlows) {
  const auto [reuse, sched_kind] = GetParam();
  const auto g = graph::grid(4, 3, 1.0, 1.5);
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  params.phases_per_seed = reuse;

  std::unique_ptr<sim::LinkScheduler> sched;
  switch (sched_kind) {
    case 0:
      sched = std::make_unique<sim::ConstantScheduler>(false);
      break;
    case 1:
      sched = std::make_unique<sim::BernoulliScheduler>(0.5);
      break;
    default:
      sched = std::make_unique<sim::BurstScheduler>(24, 0.5);
      break;
  }

  lb::LbSimulation sim(g, std::move(sched), params,
                       1000 + static_cast<std::uint64_t>(reuse * 10 +
                                                         sched_kind));
  sim.keep_busy({0, 5, 11});
  sim.run_rounds(4 * params.group_length());
  const auto& r = sim.report();
  EXPECT_TRUE(r.timely_ack_ok);
  EXPECT_TRUE(r.validity_ok);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_GT(r.raw_receptions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Combos, LbReuseScheduler,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace dg
