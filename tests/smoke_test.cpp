// End-to-end smoke tests: the full stack (generator -> scheduler -> engine
// -> SeedAlg/LBAlg -> spec checkers) on small networks.  Fast and run first;
// deeper per-module suites live alongside.
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "seed/seed_alg.h"
#include "seed/spec.h"
#include "sim/engine.h"
#include "sim/scheduler.h"

namespace dg {
namespace {

TEST(Smoke, SeedAlgDecidesEverywhere) {
  Rng rng(42);
  graph::GeometricSpec spec;
  spec.n = 48;
  spec.side = 3.0;
  spec.r = 1.5;
  const graph::DualGraph g = graph::random_geometric(spec, rng);

  const auto params = seed::SeedAlgParams::make(0.1, g.delta());
  const auto ids = sim::assign_ids(g.size(), 7);

  sim::BernoulliScheduler sched(0.5);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng seed_rng(99);
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(
        std::make_unique<seed::SeedProcess>(params, ids[v], seed_rng));
  }
  sim::Engine engine(g, sched, std::move(procs), /*master_seed=*/1234);
  engine.run_rounds(params.total_rounds());

  seed::DecisionVector decisions(g.size());
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    decisions[v] =
        dynamic_cast<const seed::SeedProcess&>(engine.process(v)).decision();
  }
  const auto result = seed::check_seed_spec(g, ids, decisions);
  EXPECT_TRUE(result.well_formed);
  EXPECT_TRUE(result.consistent);
  EXPECT_TRUE(result.owners_local);
  EXPECT_GE(result.max_neighborhood_owners, 1u);
}

TEST(Smoke, LbAlgDeliversAndChecksClean) {
  Rng rng(7);
  graph::GeometricSpec spec;
  spec.n = 32;
  spec.side = 2.5;
  spec.r = 1.5;
  const graph::DualGraph g = graph::random_geometric(spec, rng);

  lb::LbScales scales;
  scales.ack_scale = 0.02;  // keep the smoke test fast
  const auto params =
      lb::LbParams::calibrated(0.1, spec.r, g.delta(), g.delta_prime(), scales);

  lb::LbSimulation sim(g, std::make_unique<sim::BernoulliScheduler>(0.5),
                       params, /*master_seed=*/2024);
  sim.post_bcast(0, /*content=*/111);
  sim.run_phases(params.t_ack_phases + 2);

  const lb::LbSpecReport& report = sim.report();
  EXPECT_TRUE(report.timely_ack_ok);
  EXPECT_TRUE(report.validity_ok);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.ack_count, 1u);
  EXPECT_EQ(report.bcast_count, 1u);
  // With a nonempty neighborhood, the message should reach someone.
  if (!g.g_neighbors(0).empty()) {
    EXPECT_GT(report.recv_count, 0u);
  }
}

}  // namespace
}  // namespace dg
