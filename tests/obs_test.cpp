// Unit tests for the obs telemetry subsystem: registry bucketing/merge
// semantics (the campaign roll-up relies on merge ORDER being observable
// through gauges), JSON well-formedness of both emitters (checked with the
// scn strict parser, not string fishing), trace span nesting inside the
// virtual round tick, and the record-time filters.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.h"
#include "obs/trace_sink.h"
#include "scn/json.h"
#include "sim/trace.h"

namespace dg::obs {
namespace {

using scn::json::Value;

Value parse_ok(const std::string& text) {
  Value doc;
  const auto err = scn::json::parse(text, doc);
  EXPECT_TRUE(err.ok()) << err.line << ':' << err.col << ": " << err.message;
  return doc;
}

// ---- registry: histogram bucket edges ----

TEST(ObsRegistry, HistogramBucketEdges) {
  Registry reg;
  Registry::Histogram& h =
      reg.histogram("h", Domain::kLogical, {1.0, 10.0, 100.0});
  ASSERT_EQ(h.buckets().size(), 4u);  // 3 bounds + overflow

  // Bucket i covers (bounds[i-1], bounds[i]]: a value exactly on a bound
  // falls into that bound's bucket, one ulp above rolls over.
  h.record(1.0);    // bucket 0 (v <= 1)
  h.record(0.0);    // bucket 0
  h.record(1.5);    // bucket 1 (1 < v <= 10)
  h.record(10.0);   // bucket 1
  h.record(10.5);   // bucket 2
  h.record(100.0);  // bucket 2
  h.record(100.5);  // overflow
  h.record(1e9);    // overflow

  const std::vector<std::uint64_t> want = {2, 2, 2, 2};
  EXPECT_EQ(h.buckets(), want);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 0.0 + 1.5 + 10.0 + 10.5 + 100.0 + 100.5 +
                                1e9);
}

TEST(ObsRegistry, CounterAndGaugeSlotsAreStable) {
  Registry reg;
  std::uint64_t& c = reg.counter("c", Domain::kLogical);
  c += 3;
  reg.counter("c", Domain::kLogical) += 2;  // same slot
  EXPECT_EQ(reg.counter("c", Domain::kLogical), 5u);
  reg.gauge("g", Domain::kTiming) = 7.5;
  EXPECT_DOUBLE_EQ(reg.gauge("g", Domain::kTiming), 7.5);
  EXPECT_EQ(reg.size(), 2u);
}

// ---- registry: merge semantics and order observability ----

TEST(ObsRegistry, MergeAddsCountersAndBucketsGaugesLastWriteWins) {
  Registry a, b;
  a.counter("n", Domain::kLogical) = 10;
  b.counter("n", Domain::kLogical) = 32;
  a.gauge("g", Domain::kLogical) = 1.0;
  b.gauge("g", Domain::kLogical) = 2.0;
  a.histogram("h", Domain::kLogical, {1.0, 2.0}).record(0.5);
  b.histogram("h", Domain::kLogical, {1.0, 2.0}).record(1.5);
  b.counter("only_b", Domain::kTiming) = 4;

  a.merge(b);
  EXPECT_EQ(a.counter("n", Domain::kLogical), 42u);
  EXPECT_DOUBLE_EQ(a.gauge("g", Domain::kLogical), 2.0);  // b overwrote
  const std::vector<std::uint64_t> want = {1, 1, 0};
  EXPECT_EQ(a.histogram("h", Domain::kLogical, {1.0, 2.0}).buckets(), want);
  EXPECT_EQ(a.counter("only_b", Domain::kTiming), 4u);  // created on merge
}

TEST(ObsRegistry, MergeOrderIsObservableThroughGauges) {
  // The campaign runner must fold per-trial registries in TRIAL order;
  // gauges make a wrong (completion-order) fold detectable.
  Registry t0, t1, forward, backward;
  t0.gauge("last", Domain::kLogical) = 0.0;
  t1.gauge("last", Domain::kLogical) = 1.0;
  forward.merge(t0);
  forward.merge(t1);
  backward.merge(t1);
  backward.merge(t0);
  EXPECT_DOUBLE_EQ(forward.gauge("last", Domain::kLogical), 1.0);
  EXPECT_DOUBLE_EQ(backward.gauge("last", Domain::kLogical), 0.0);
  EXPECT_NE(forward.json(), backward.json());
}

// ---- registry: JSON shape ----

TEST(ObsRegistry, JsonParsesAndSeparatesDomains) {
  Registry reg;
  reg.counter("logical.c", Domain::kLogical) = 1;
  reg.counter("timing.c", Domain::kTiming) = 2;
  reg.gauge("logical.g", Domain::kLogical) = 0.5;
  reg.histogram("timing.h", Domain::kTiming, {1.0}).record(2.0);

  const Value full = parse_ok(reg.json(/*include_timing=*/true));
  ASSERT_TRUE(full.is_object());
  EXPECT_EQ(full.find("format")->as_string(), "dg-metrics-v1");
  const Value* logical = full.find("logical");
  ASSERT_NE(logical, nullptr);
  EXPECT_NE(logical->find("counters")->find("logical.c"), nullptr);
  EXPECT_EQ(logical->find("counters")->find("timing.c"), nullptr);
  const Value* timing = full.find("timing");
  ASSERT_NE(timing, nullptr);
  EXPECT_NE(timing->find("counters")->find("timing.c"), nullptr);
  const Value* h = timing->find("histograms")->find("timing.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_number(), 1.0);

  // The gating dump omits the timing domain entirely.
  const Value logical_only = parse_ok(reg.json(/*include_timing=*/false));
  EXPECT_EQ(logical_only.find("timing"), nullptr);
  ASSERT_NE(logical_only.find("logical"), nullptr);
}

TEST(ObsRegistry, EmptyRegistryStillEmitsValidJson) {
  Registry reg;
  const Value doc = parse_ok(reg.json());
  EXPECT_NE(doc.find("logical"), nullptr);
}

// ---- trace sink: document shape and span nesting ----

/// Flattened view of one parsed trace event.
struct Ev {
  std::string name;
  std::string ph;
  std::int64_t ts = 0;
  std::int64_t dur = 0;
  std::int64_t pid = 0;
  std::int64_t tid = 0;
};

std::vector<Ev> parse_events(const TraceSink& sink) {
  const Value doc = parse_ok(sink.json());
  const Value* events = doc.find("traceEvents");
  EXPECT_NE(events, nullptr);
  std::vector<Ev> out;
  for (const Value& v : events->items()) {
    Ev e;
    e.name = v.find("name")->as_string();
    e.ph = v.find("ph")->as_string();
    e.ts = static_cast<std::int64_t>(v.find("ts")->as_number());
    if (const Value* d = v.find("dur")) {
      e.dur = static_cast<std::int64_t>(d->as_number());
    }
    e.pid = static_cast<std::int64_t>(v.find("pid")->as_number());
    e.tid = static_cast<std::int64_t>(v.find("tid")->as_number());
    out.push_back(e);
  }
  return out;
}

const Ev* find_event(const std::vector<Ev>& events, const std::string& name) {
  for (const Ev& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const std::vector<std::string> kCoreStages = {
    "fault", "transmit", "prepare_round", "compute", "receive",
    "output_flush"};

TEST(ObsTraceSink, PhaseSlicesNestInsideTheRoundTick) {
  TraceSink sink;
  // fault/transmit/prepare/compute/receive/output ns, pipeline order.
  sink.round_phases(7, kCoreStages, {0, 3000, 0, 6000, 1000, 0});

  const auto events = parse_events(sink);
  const Ev* round = find_event(events, "round 7");
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->ts, 7 * TraceSink::kRoundTickUs);
  EXPECT_EQ(round->dur, TraceSink::kRoundTickUs);
  for (const char* phase : {"transmit", "compute", "receive"}) {
    const Ev* p = find_event(events, phase);
    ASSERT_NE(p, nullptr) << phase;
    EXPECT_GE(p->ts, round->ts) << phase;
    EXPECT_LE(p->ts + p->dur, round->ts + round->dur) << phase;
    EXPECT_GE(p->dur, 1) << phase;
  }
  // Proportional split: compute measured 60% of the round.
  EXPECT_EQ(find_event(events, "compute")->dur, 600);
  EXPECT_EQ(find_event(events, "prepare_round"), nullptr);  // 0 ns: absent
}

TEST(ObsTraceSink, MessageSpanChildrenStayInsideTheOuterSlice) {
  TraceSink sink;
  // enqueue 3, admit 5, first_recv 6, ack 9.
  sink.message_span(/*vertex=*/4, /*content=*/1234, 3, 5, 6, 9, 0);
  const auto events = parse_events(sink);

  const Ev* outer = find_event(events, "msg 1234");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->ts, 3 * TraceSink::kRoundTickUs);
  EXPECT_EQ(outer->dur, (9 - 3) * TraceSink::kRoundTickUs);
  EXPECT_EQ(outer->tid, 4);

  const Ev* queued = find_event(events, "queued");
  const Ev* inflight = find_event(events, "inflight");
  const Ev* first_recv = find_event(events, "first_recv");
  ASSERT_NE(queued, nullptr);
  ASSERT_NE(inflight, nullptr);
  ASSERT_NE(first_recv, nullptr);
  for (const Ev* child : {queued, inflight}) {
    EXPECT_GE(child->ts, outer->ts);
    EXPECT_LE(child->ts + child->dur, outer->ts + outer->dur);
  }
  EXPECT_EQ(queued->dur, (5 - 3) * TraceSink::kRoundTickUs);
  EXPECT_EQ(inflight->ts, 5 * TraceSink::kRoundTickUs);
  EXPECT_EQ(first_recv->ph, "i");
  EXPECT_EQ(first_recv->ts, 6 * TraceSink::kRoundTickUs);

  // Status is part of the outer slice's args (validate_trace.py keys on it).
  EXPECT_NE(sink.json().find("\"status\": \"acked\""), std::string::npos);
}

TEST(ObsTraceSink, TimestampsAreMonotonePerTrackInFileOrder) {
  TraceSink sink;
  // Insert deliberately out of timestamp order across tracks.
  sink.crash(9, 2);
  sink.round_phases(1, {"transmit"}, {100});
  sink.message_span(2, 50, 2, 3, 4, 8, 0);
  sink.recover(12, 2);
  sink.round_phases(0, {"transmit"}, {100});

  const auto events = parse_events(sink);
  ASSERT_FALSE(events.empty());
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> last;
  for (const Ev& e : events) {
    if (e.ph == "M") continue;
    const auto track = std::make_pair(e.pid, e.tid);
    const auto it = last.find(track);
    if (it != last.end()) {
      EXPECT_GE(e.ts, it->second) << e.name;
    }
    last[track] = e.ts;
  }
}

// ---- trace sink: filters ----

TEST(ObsTraceSink, RoundRangeFilterDropsOutOfWindowEvents) {
  TraceSink::Filter f;
  f.round_lo = 5;
  f.round_hi = 10;
  TraceSink sink(f);

  const std::vector<std::string> names = {"transmit"};
  const std::vector<std::uint64_t> ns = {10};
  sink.round_phases(4, names, ns);   // below the window
  sink.round_phases(5, names, ns);   // lower edge: kept
  sink.round_phases(10, names, ns);  // upper edge: kept
  sink.round_phases(11, names, ns);  // above
  sink.crash(3, 0);           // below
  sink.crash(7, 0);           // kept
  // Span ends (ack=4) before the window opens: dropped entirely.
  sink.message_span(0, 1, 1, 2, 3, 4, 0);
  // Span overlaps the window: kept.
  sink.message_span(0, 2, 4, 6, 7, 12, 0);

  const auto events = parse_events(sink);
  EXPECT_EQ(find_event(events, "round 4"), nullptr);
  EXPECT_NE(find_event(events, "round 5"), nullptr);
  EXPECT_NE(find_event(events, "round 10"), nullptr);
  EXPECT_EQ(find_event(events, "round 11"), nullptr);
  EXPECT_EQ(find_event(events, "msg 1"), nullptr);
  EXPECT_NE(find_event(events, "msg 2"), nullptr);
  const Ev* crash = find_event(events, "crash");
  ASSERT_NE(crash, nullptr);
  EXPECT_EQ(crash->ts, 7 * TraceSink::kRoundTickUs);
}

TEST(ObsTraceSink, VertexFilterScopesMessageAndFaultTracks) {
  TraceSink::Filter f;
  f.vertices = {3, 5};
  TraceSink sink(f);

  sink.message_span(3, 100, 1, 2, 3, 4, 0);  // kept
  sink.message_span(4, 200, 1, 2, 3, 4, 0);  // filtered
  sink.crash(2, 5);                          // kept
  sink.crash(2, 6);                          // filtered
  // Engine slices ignore the vertex filter.
  sink.round_phases(1, {"transmit"}, {10});

  const auto events = parse_events(sink);
  EXPECT_NE(find_event(events, "msg 100"), nullptr);
  EXPECT_EQ(find_event(events, "msg 200"), nullptr);
  const Ev* crash = find_event(events, "crash");
  ASSERT_NE(crash, nullptr);
  EXPECT_EQ(crash->tid, 5);
  EXPECT_NE(find_event(events, "round 1"), nullptr);
}

// ---- recorder export ----

TEST(ObsTraceSink, ExportRecorderMirrorsDescribeText) {
  sim::TraceRecorder recorder(16);
  recorder.enable_round_markers(true);
  recorder.enable_fault_events(true);
  recorder.on_round_begin(3);
  recorder.on_crash(3, 9);
  recorder.on_recover(5, 9);
  recorder.on_round_end(5);

  TraceSink sink;
  export_recorder(recorder, sink);
  ASSERT_EQ(sink.event_count(), 4u);
  const auto events = parse_events(sink);
  EXPECT_NE(find_event(events, "round_begin"), nullptr);
  EXPECT_NE(find_event(events, "crash"), nullptr);
  EXPECT_NE(find_event(events, "recover"), nullptr);
  EXPECT_NE(find_event(events, "round_end"), nullptr);
  // The describe() text rides along, so the JSON and text renderings of
  // one recording agree.
  EXPECT_NE(sink.json().find("v9 crash"), std::string::npos);
  for (const Ev& e : events) EXPECT_EQ(e.pid, 4) << e.name;
}

}  // namespace
}  // namespace dg::obs
