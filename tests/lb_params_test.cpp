// Tests for the Appendix C.1 parameter derivations in LbParams.
#include <gtest/gtest.h>

#include "lb/params.h"
#include "util/intmath.h"

namespace dg::lb {
namespace {

TEST(LbParams, Eps2NeverExceedsEps1) {
  for (double eps1 : {0.5, 0.25, 0.1, 0.01}) {
    for (std::size_t delta : {2, 16, 128}) {
      const auto p = LbParams::calibrated(eps1, 1.5, delta, 2 * delta);
      EXPECT_LE(p.eps2, eps1);
      EXPECT_LE(p.eps2, 0.25);  // SeedAlg ceiling
      EXPECT_GT(p.eps2, 0.0);
    }
  }
}

TEST(LbParams, SeedSubroutineUsesEps2) {
  const auto p = LbParams::calibrated(0.1, 1.5, 32, 64);
  const auto expect = seed::SeedAlgParams::make(p.eps2, 32, LbScales{}.c4);
  EXPECT_EQ(p.seed.total_rounds(), expect.total_rounds());
  EXPECT_EQ(p.t_s, p.seed.total_rounds());
}

TEST(LbParams, TprogGrowsLogarithmicallyInDelta) {
  // T_prog = Theta(log Delta) at fixed eps and r: doubling Delta adds a
  // constant.  Quadrupling from 16 to 256 must far less than quadruple it.
  const auto p16 = LbParams::calibrated(0.1, 1.5, 16, 32);
  const auto p256 = LbParams::calibrated(0.1, 1.5, 256, 512);
  EXPECT_GT(p256.t_prog, p16.t_prog);
  EXPECT_LT(p256.t_prog, 4 * p16.t_prog);
}

TEST(LbParams, TackGrowsLinearlyInDeltaPrime) {
  // T_ack = Theta(Delta' polylog): dominated by the linear factor.
  const auto a = LbParams::calibrated(0.1, 1.5, 16, 32);
  const auto b = LbParams::calibrated(0.1, 1.5, 16, 64);
  EXPECT_GE(b.t_ack_phases, 2 * a.t_ack_phases - 2);
}

TEST(LbParams, KappaCoversEveryBodyRound) {
  for (std::size_t delta : {4, 32, 128}) {
    const auto p = LbParams::calibrated(0.1, 2.0, delta, 4 * delta);
    EXPECT_EQ(p.kappa,
              p.t_prog * (p.participant_bits + p.b_bits));
    // Each body round consumes participant_bits + b_bits; total never
    // exceeds kappa by construction.
    EXPECT_GE(p.participant_bits, 1);
    EXPECT_GE(p.b_bits, 0);
  }
}

TEST(LbParams, BValueRangeMatchesLogDelta) {
  const auto p = LbParams::calibrated(0.1, 1.5, 32, 64);
  EXPECT_EQ(p.log_delta, 5);
  EXPECT_EQ(p.b_bits, ceil_log2(5));
}

TEST(LbParams, SpecBoundsComposePhases) {
  const auto p = LbParams::calibrated(0.1, 1.5, 16, 32);
  EXPECT_EQ(p.phase_length(), p.t_s + p.t_prog);
  EXPECT_EQ(p.t_prog_bound(), p.phase_length());
  EXPECT_EQ(p.t_ack_bound(), (p.t_ack_phases + 1) * p.phase_length());
}

TEST(LbParams, AckScaleShrinksOnlyTack) {
  LbScales scales;
  scales.ack_scale = 0.1;
  const auto full = LbParams::calibrated(0.1, 1.5, 32, 64);
  const auto scaled = LbParams::calibrated(0.1, 1.5, 32, 64, scales);
  EXPECT_LT(scaled.t_ack_phases, full.t_ack_phases);
  EXPECT_EQ(scaled.t_ack_phases_theory, full.t_ack_phases_theory);
  EXPECT_EQ(scaled.t_prog, full.t_prog);
  EXPECT_EQ(scaled.t_s, full.t_s);
}

TEST(LbParams, RejectsInvalidInputs) {
  EXPECT_DEATH(LbParams::calibrated(0.6, 1.5, 4, 8), "precondition");
  EXPECT_DEATH(LbParams::calibrated(0.1, 0.5, 4, 8), "precondition");
  EXPECT_DEATH(LbParams::calibrated(0.1, 1.5, 8, 4), "precondition");
}

TEST(LbParams, LocalityNoDependenceOnN) {
  // The whole parameter set is a function of (eps1, r, Delta, Delta') --
  // the same values regardless of any notion of network size.
  const auto a = LbParams::calibrated(0.1, 1.5, 32, 64);
  const auto b = LbParams::calibrated(0.1, 1.5, 32, 64);
  EXPECT_EQ(a.t_prog, b.t_prog);
  EXPECT_EQ(a.t_ack_phases, b.t_ack_phases);
  EXPECT_EQ(a.t_s, b.t_s);
  EXPECT_EQ(a.kappa, b.kappa);
}

TEST(LbParams, TheoryShapeTprog) {
  // t_prog = O(r^2 log Delta log(r^4 log^4 Delta / eps1)).  The r^2 factor
  // and the eps2 coupling (eps' shrinks as r falls) pull in opposite
  // directions, so we only assert the composite: monotone growth in r and
  // bounded by the r^2 envelope times the log factor.
  const auto r1 = LbParams::calibrated(0.1, 1.0, 32, 64);
  const auto r2 = LbParams::calibrated(0.1, 2.0, 32, 64);
  EXPECT_GT(r2.t_prog, r1.t_prog);
  EXPECT_LT(r2.t_prog, 16 * r1.t_prog);
}

}  // namespace
}  // namespace dg::lb
