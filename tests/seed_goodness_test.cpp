// Analysis-replay tests for Appendix B: the region "goodness" machinery.
//
// The proofs of Theorem 3.1 revolve around the per-region cumulative leader
// election probability P_{x,h} = a_{x,h} * p_h (a_{x,h} = active nodes of
// region x at phase h, p_h = 2^-(log Delta - h + 1)) and the predicate
// "region x is good at phase h" (P_{x,h} <= c2 log(1/eps1)).  These tests
// replay the definitions against real executions:
//   * Lemma B.2: every region is good at phase 1 (in fact P_{x,1} <= 1).
//   * The region-of-goodness argument: goodness persists through the phases
//     for the overwhelming majority of (region, phase) pairs.
//   * Lemma B.5's consequence: few default decisions per region.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <unordered_map>

#include "geo/region_partition.h"
#include "graph/generators.h"
#include "seed/seed_alg.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "util/interval.h"

namespace dg::seed {
namespace {

struct GoodnessReplay {
  std::size_t region_phase_pairs = 0;
  std::size_t good_pairs = 0;
  double max_p_phase1 = 0.0;
  std::size_t max_defaults_per_region = 0;
};

GoodnessReplay replay(std::uint64_t seed, double eps1) {
  Rng rng(seed);
  graph::GeometricSpec spec;
  spec.n = 64;
  spec.side = 3.0;
  spec.r = 1.5;
  const graph::DualGraph g = graph::random_geometric(spec, rng);
  const auto params = SeedAlgParams::make(eps1, g.delta());
  const auto ids = sim::assign_ids(g.size(), derive_seed(seed, 1));

  sim::BernoulliScheduler sched(0.5);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng init_rng(derive_seed(seed, 2));
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(std::make_unique<SeedProcess>(params, ids[v], init_rng));
  }
  sim::Engine engine(g, sched, std::move(procs), derive_seed(seed, 3));

  // Region assignment from the embedding (the analysis is allowed to see
  // it; the processes are not).
  const geo::GridPartition part(0.5, spec.r);
  const auto& emb = *g.embedding();
  std::vector<geo::RegionId> region(g.size());
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    region[v] = part.region_of(emb[v]);
  }

  const double good_threshold =
      4.0 * std::log2(1.0 / eps1);  // c2 log(1/eps1) with c2 = 4

  GoodnessReplay out;
  for (int h = 1; h <= params.num_phases; ++h) {
    // a_{x,h}: active nodes per region at the beginning of phase h.
    std::unordered_map<geo::RegionId, std::size_t, geo::RegionIdHash> active;
    for (graph::Vertex v = 0; v < g.size(); ++v) {
      const auto& p = dynamic_cast<const SeedProcess&>(engine.process(v));
      if (p.runner().status() == SeedStatus::active) {
        ++active[region[v]];
      }
    }
    const double p_h = std::ldexp(1.0, -(params.num_phases - h + 1));
    for (const auto& [x, a] : active) {
      const double p_xh = static_cast<double>(a) * p_h;
      ++out.region_phase_pairs;
      if (p_xh <= good_threshold) ++out.good_pairs;
      if (h == 1) out.max_p_phase1 = std::max(out.max_p_phase1, p_xh);
    }
    engine.run_rounds(params.phase_length);
  }

  // Default decisions per region (Lemma B.5 bounds them for good regions).
  std::unordered_map<geo::RegionId, std::size_t, geo::RegionIdHash> defaults;
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    const auto& p = dynamic_cast<const SeedProcess&>(engine.process(v));
    if (p.decision().has_value() && p.decision()->by_default) {
      ++defaults[region[v]];
    }
  }
  for (const auto& [x, c] : defaults) {
    out.max_defaults_per_region = std::max(out.max_defaults_per_region, c);
  }
  return out;
}

TEST(Goodness, EveryRegionGoodAtPhaseOne) {
  // Lemma B.2: P_{x,1} = a_{x,1} / Delta <= 1 because a region holds at
  // most Delta mutually-reliable nodes.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto r = replay(seed, 0.1);
    EXPECT_LE(r.max_p_phase1, 1.0 + 1e-9) << "seed " << seed;
  }
}

TEST(Goodness, GoodnessPersistsForMostRegionPhases) {
  // The Appendix B induction shows goodness is preserved w.h.p.; across a
  // handful of executions the failure fraction should be tiny.
  std::size_t pairs = 0, good = 0;
  for (std::uint64_t seed = 10; seed < 22; ++seed) {
    const auto r = replay(seed, 0.1);
    pairs += r.region_phase_pairs;
    good += r.good_pairs;
  }
  ASSERT_GT(pairs, 0u);
  const double frac = static_cast<double>(good) / static_cast<double>(pairs);
  EXPECT_GE(frac, 0.95) << good << "/" << pairs;
}

TEST(Goodness, DefaultDecisionsPerRegionBounded) {
  // Lemma B.5: at most 2 c2 log(1/eps1) defaults per good region; with
  // eps1 = 0.1 and c2 = 4 that is ~26.6 -- far above anything observed on
  // these densities, but the structural bound must hold.
  const double bound = 2.0 * 4.0 * std::log2(1.0 / 0.1);
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    const auto r = replay(seed, 0.1);
    EXPECT_LE(static_cast<double>(r.max_defaults_per_region), bound)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace dg::seed
