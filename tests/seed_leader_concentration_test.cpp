// Lemma B.6 replay: per-region leader counts concentrate around
// P_{x,h} = a_{x,h} * p_h.
//
//   (1) if P_{x,h} <= c2 log(1/eps1), then w.h.p.
//       l_{x,h} <= (5/4) c2 log(1/eps1);
//   (2) if P_{x,h} >= (c2/2) log(1/eps1), then w.h.p.
//       l_{x,h} >= (1/4) c2 log(1/eps1).
// The proofs are Chernoff bounds on the sum of the per-node election
// indicators; here we verify the concentration empirically by running many
// independent leader-election steps with controlled a and p.
#include <gtest/gtest.h>

#include <cmath>

#include "seed/seed_alg.h"
#include "util/interval.h"
#include "util/rng.h"

namespace dg::seed {
namespace {

/// Simulates one leader-election step for a region with `a` active nodes
/// and per-node probability `p`; returns the number of leaders elected.
int election_step(std::size_t a, double p, Rng& rng) {
  int leaders = 0;
  for (std::size_t i = 0; i < a; ++i) {
    if (rng.chance(p)) ++leaders;
  }
  return leaders;
}

TEST(LeaderConcentration, UpperTailLemmaB6Part1) {
  // P_{x,h} = c2 log(1/eps1) exactly (the worst case of part 1).
  const double eps1 = 0.1;
  const double c2 = 4.0;
  const double target = c2 * std::log2(1.0 / eps1);  // ~13.3
  const std::size_t a = 256;
  const double p = target / static_cast<double>(a);
  Rng rng(17);
  BernoulliTally within;
  for (int t = 0; t < 4000; ++t) {
    within.record(election_step(a, p, rng) <= 1.25 * target);
  }
  // The Chernoff bound gives failure probability eps1^(c2 log2(e)/32)
  // ~ 0.56 -- weak for these constants, but the empirical tail is far
  // better; require the frequency to clear 0.75 comfortably.
  EXPECT_GE(within.frequency(), 0.75) << within.frequency();
}

TEST(LeaderConcentration, LowerTailLemmaB6Part2) {
  // P_{x,h} = (c2/2) log(1/eps1): part 2's threshold case.
  const double eps1 = 0.1;
  const double c2 = 4.0;
  const double target = c2 * std::log2(1.0 / eps1);
  const std::size_t a = 256;
  const double p = (target / 2.0) / static_cast<double>(a);
  Rng rng(19);
  BernoulliTally within;
  for (int t = 0; t < 4000; ++t) {
    within.record(election_step(a, p, rng) >= 0.25 * target);
  }
  EXPECT_GE(within.frequency(), 0.85) << within.frequency();
}

TEST(LeaderConcentration, MeanMatchesPxh) {
  // E[l_{x,h}] = P_{x,h} by linearity (the lemma's starting point).
  Rng rng(23);
  for (double target : {2.0, 8.0, 20.0}) {
    const std::size_t a = 128;
    const double p = target / static_cast<double>(a);
    double sum = 0;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
      sum += election_step(a, p, rng);
    }
    EXPECT_NEAR(sum / trials, target, 0.15 * target);
  }
}

TEST(LeaderConcentration, ZeroProbabilityZeroLeaders) {
  Rng rng(29);
  EXPECT_EQ(election_step(100, 0.0, rng), 0);
  EXPECT_EQ(election_step(100, 1.0, rng), 100);
}

}  // namespace
}  // namespace dg::seed
