// Shared helpers for the test suites: scripted processes with fully
// deterministic behavior (for exercising the engine's collision semantics)
// and small topology builders.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "graph/dual_graph.h"
#include "sim/packet.h"
#include "sim/process.h"

namespace dg::test {

/// Transmits a scripted data packet in designated rounds, listens otherwise,
/// and logs everything it hears (including silence).
class ScriptProcess final : public sim::Process {
 public:
  ScriptProcess(sim::ProcessId id, std::map<sim::Round, std::uint64_t> sends)
      : sim::Process(id), sends_(std::move(sends)) {}

  std::optional<sim::Packet> transmit(sim::RoundContext& ctx) override {
    const auto it = sends_.find(ctx.round());
    if (it == sends_.end()) return std::nullopt;
    return sim::Packet{
        id(), sim::DataPayload{sim::MessageId{id(), ++seq_}, it->second}};
  }

  void receive(const std::optional<sim::Packet>& packet,
               sim::RoundContext& ctx) override {
    if (packet.has_value() && packet->is_data()) {
      heard.emplace_back(ctx.round(), packet->data().content);
    } else {
      silent_rounds.push_back(ctx.round());
    }
  }

  std::vector<std::pair<sim::Round, std::uint64_t>> heard;
  std::vector<sim::Round> silent_rounds;

 private:
  std::map<sim::Round, std::uint64_t> sends_;
  std::uint32_t seq_ = 0;
};

/// A process that never transmits and records receptions.
class SilentProcess final : public sim::Process {
 public:
  explicit SilentProcess(sim::ProcessId id) : sim::Process(id) {}

  std::optional<sim::Packet> transmit(sim::RoundContext&) override {
    return std::nullopt;
  }
  void receive(const std::optional<sim::Packet>& packet,
               sim::RoundContext& ctx) override {
    if (packet.has_value() && packet->is_data()) {
      heard.emplace_back(ctx.round(), packet->data().content);
    }
  }

  std::vector<std::pair<sim::Round, std::uint64_t>> heard;
};

/// Path a - b - c ... with consecutive vertices reliable.  For collision
/// tests: vertex i and i+1 are G-neighbors; i and i+2 are not.
inline graph::DualGraph reliable_path(std::size_t n) {
  graph::DualGraph g(n);
  for (graph::Vertex v = 0; v + 1 < n; ++v) {
    g.add_reliable_edge(v, v + 1);
  }
  g.finalize();
  return g;
}

/// Triangle where {0,1} and {0,2} are reliable but {1,2} is unreliable:
/// the canonical topology for scheduler-dependent collision tests.
inline graph::DualGraph unreliable_vee() {
  graph::DualGraph g(3);
  g.add_reliable_edge(0, 1);
  g.add_reliable_edge(0, 2);
  g.add_unreliable_edge(1, 2);
  g.finalize();
  return g;
}

}  // namespace dg::test
