// Tests for consensus over the abstract MAC layer ([20]-style): validity,
// agreement, termination on single-hop networks, and the abort interaction.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "amac/consensus.h"
#include "amac/lb_amac.h"
#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"

namespace dg::amac {
namespace {

TEST(ConsensusNode, EncodingRoundTrips) {
  const auto c = ConsensusNode::encode(0xABCD1234u, 0x5678EF01u);
  EXPECT_EQ(ConsensusNode::priority_of(c), 0xABCD1234u);
  EXPECT_EQ(ConsensusNode::value_of(c), 0x5678EF01u);
}

TEST(ConsensusNode, AdoptsOnlyHigherPriority) {
  ConsensusNode node(/*value=*/5, /*priority=*/100);
  node.on_rcv(ConsensusNode::encode(50, 9));  // lower: ignored
  EXPECT_EQ(node.champion_priority(), 100u);
  node.on_rcv(ConsensusNode::encode(200, 9));  // higher: adopted
  EXPECT_EQ(node.champion_priority(), 200u);
}

TEST(ConsensusNode, TieBrokenTowardLargerValue) {
  ConsensusNode node(/*value=*/5, /*priority=*/100);
  node.on_rcv(ConsensusNode::encode(100, 3));  // tie, smaller value: ignored
  node.on_rcv(ConsensusNode::encode(100, 9));  // tie, larger value: adopted
  EXPECT_EQ(node.champion_priority(), 100u);
}

TEST(ConsensusNode, DecisionBeforeDecidedAborts) {
  ConsensusNode node(1, 1);
  EXPECT_DEATH(node.decision(), "precondition");
}

struct RunResult {
  bool all_decided = true;
  std::set<std::uint32_t> decisions;
  std::set<std::uint32_t> initial_values;
};

RunResult run_consensus(std::size_t n, std::uint64_t seed,
                        double link_p = 0.5) {
  const auto g = graph::clique_cluster(n);
  lb::LbScales scales;
  scales.ack_scale = 0.05;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::BernoulliScheduler>(link_p),
                       params, seed);
  LbMacLayer mac(sim);

  Rng rng(derive_seed(seed, 0x77));
  std::vector<ConsensusNode> nodes;
  RunResult result;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto value = static_cast<std::uint32_t>(10 + i);
    result.initial_values.insert(value);
    nodes.emplace_back(value, static_cast<std::uint32_t>(rng.bits()));
  }
  std::vector<MacApplication*> apps;
  for (auto& node : nodes) apps.push_back(&node);
  mac.attach(apps);

  // Enough horizon for several acked broadcast cycles per node.
  mac.run_rounds(10 * (params.t_ack_phases + 2) * params.phase_length());

  for (const auto& node : nodes) {
    if (!node.decided()) {
      result.all_decided = false;
      continue;
    }
    result.decisions.insert(node.decision());
  }
  return result;
}

TEST(Consensus, SingleNodeDecidesItsOwnValue) {
  const auto r = run_consensus(1, 1);
  EXPECT_TRUE(r.all_decided);
  ASSERT_EQ(r.decisions.size(), 1u);
  EXPECT_EQ(*r.decisions.begin(), 10u);
}

class ConsensusSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsensusSweep, AgreementValidityTermination) {
  const auto r = run_consensus(6, GetParam());
  EXPECT_TRUE(r.all_decided);                 // termination
  EXPECT_EQ(r.decisions.size(), 1u);          // agreement
  ASSERT_FALSE(r.decisions.empty());
  EXPECT_TRUE(r.initial_values.contains(*r.decisions.begin()));  // validity
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Consensus, WorksWithAllUnreliableEdgesPresent) {
  const auto r = run_consensus(5, 99, /*link_p=*/1.0);
  EXPECT_TRUE(r.all_decided);
  EXPECT_EQ(r.decisions.size(), 1u);
}

}  // namespace
}  // namespace dg::amac
