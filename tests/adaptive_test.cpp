// Tests for the adaptive-adversary hook (the E12 impossibility
// counterfactual): the TargetedJammer's round logic, and end-to-end
// starvation of the target receiver.
#include <gtest/gtest.h>

#include <memory>

#include "test_support.h"
#include "sim/adaptive.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "stats/probes.h"

namespace dg::sim {
namespace {

using test::ScriptProcess;

/// Star: target 0; reliable neighbor 1; unreliable neighbors 2, 3.
graph::DualGraph jam_star() {
  graph::DualGraph g(4);
  g.add_reliable_edge(0, 1);
  g.add_unreliable_edge(0, 2);
  g.add_unreliable_edge(0, 3);
  g.finalize();
  return g;
}

TEST(TargetedJammer, CollidesLoneReliableTransmitter) {
  const auto g = jam_star();
  TargetedJammer jammer(0);
  // Round: 1 and 2 transmit.
  std::vector<bool> tx{false, true, true, false};
  jammer.plan_round(1, g, tx);
  // Edge 0 connects 0-2 (the transmitting unreliable neighbor): included.
  EXPECT_TRUE(jammer.active(0));
  EXPECT_FALSE(jammer.active(1));
  EXPECT_EQ(jammer.interventions(), 1u);
}

TEST(TargetedJammer, NoInterventionWithoutJamCandidate) {
  const auto g = jam_star();
  TargetedJammer jammer(0);
  std::vector<bool> tx{false, true, false, false};  // only the reliable one
  jammer.plan_round(1, g, tx);
  EXPECT_FALSE(jammer.active(0));
  EXPECT_FALSE(jammer.active(1));
  EXPECT_EQ(jammer.interventions(), 0u);  // delivery unavoidable
}

TEST(TargetedJammer, ExcludesLoneUnreliableTransmitter) {
  const auto g = jam_star();
  TargetedJammer jammer(0);
  std::vector<bool> tx{false, false, true, false};
  jammer.plan_round(1, g, tx);
  EXPECT_FALSE(jammer.active(0));  // silence beats delivery
  EXPECT_FALSE(jammer.active(1));
}

TEST(TargetedJammer, LeavesExistingCollisionsAlone) {
  // Two reliable neighbors transmitting already collide.
  graph::DualGraph g(4);
  g.add_reliable_edge(0, 1);
  g.add_reliable_edge(0, 2);
  g.add_unreliable_edge(0, 3);
  g.finalize();
  TargetedJammer jammer(0);
  std::vector<bool> tx{false, true, true, true};
  jammer.plan_round(1, g, tx);
  EXPECT_FALSE(jammer.active(0));
}

TEST(TargetedJammer, EndToEndStarvesTarget) {
  // Vertex 1 (reliable) and vertex 2 (unreliable) both transmit every
  // round: the jammer always has a jam candidate, so vertex 0 never
  // receives anything, ever.
  const auto g = jam_star();
  const auto ids = assign_ids(4, 1);
  ConstantScheduler benign(false);
  std::map<Round, std::uint64_t> always;
  for (Round t = 1; t <= 300; ++t) always[t] = static_cast<std::uint64_t>(t);
  std::vector<std::unique_ptr<Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[0], std::map<Round, std::uint64_t>{}));
  procs.push_back(std::make_unique<ScriptProcess>(ids[1], always));
  procs.push_back(std::make_unique<ScriptProcess>(ids[2], always));
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[3], std::map<Round, std::uint64_t>{}));
  Engine engine(g, benign, std::move(procs), 42);
  TargetedJammer jammer(0);
  engine.set_adaptive_adversary(&jammer);
  engine.run_rounds(300);
  const auto& target = dynamic_cast<const ScriptProcess&>(engine.process(0));
  EXPECT_TRUE(target.heard.empty());
  EXPECT_EQ(jammer.interventions(), 300u);
  // Without the jammer the reliable sender delivers every round.
}

TEST(TargetedJammer, WithoutJammerSameScriptDelivers) {
  const auto g = jam_star();
  const auto ids = assign_ids(4, 1);
  ConstantScheduler benign(false);  // unreliable edges absent
  std::map<Round, std::uint64_t> always;
  for (Round t = 1; t <= 50; ++t) always[t] = 7;
  std::vector<std::unique_ptr<Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[0], std::map<Round, std::uint64_t>{}));
  procs.push_back(std::make_unique<ScriptProcess>(ids[1], always));
  procs.push_back(std::make_unique<ScriptProcess>(ids[2], always));
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[3], std::map<Round, std::uint64_t>{}));
  Engine engine(g, benign, std::move(procs), 42);
  engine.run_rounds(50);
  const auto& target = dynamic_cast<const ScriptProcess&>(engine.process(0));
  EXPECT_EQ(target.heard.size(), 50u);
}

}  // namespace
}  // namespace dg::sim
