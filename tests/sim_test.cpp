// Tests for the execution engine and the link schedulers: the Section 2
// collision semantics (single-transmitter rule, no collision detection,
// transmitters don't hear), scheduler obliviousness and determinism, and
// engine reproducibility.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sim/engine.h"
#include "sim/scheduler.h"
#include "test_support.h"

namespace dg::sim {
namespace {

using test::reliable_path;
using test::ScriptProcess;
using test::SilentProcess;
using test::unreliable_vee;

std::vector<std::unique_ptr<Process>> make_scripted(
    const std::vector<std::map<Round, std::uint64_t>>& scripts,
    const std::vector<ProcessId>& ids) {
  std::vector<std::unique_ptr<Process>> out;
  for (std::size_t v = 0; v < scripts.size(); ++v) {
    out.push_back(std::make_unique<ScriptProcess>(ids[v], scripts[v]));
  }
  return out;
}

TEST(AssignIds, UniqueAndNonZero) {
  const auto ids = assign_ids(500, 7);
  std::set<ProcessId> s(ids.begin(), ids.end());
  EXPECT_EQ(s.size(), 500u);
  EXPECT_FALSE(s.contains(0));
}

TEST(AssignIds, DeterministicPerSeed) {
  EXPECT_EQ(assign_ids(10, 3), assign_ids(10, 3));
  EXPECT_NE(assign_ids(10, 3), assign_ids(10, 4));
}

TEST(Engine, SingleTransmitterDelivers) {
  const auto g = reliable_path(3);  // 0 - 1 - 2
  const auto ids = assign_ids(3, 1);
  ConstantScheduler sched(false);
  auto procs = make_scripted({{{1, 100}}, {}, {}}, ids);
  Engine engine(g, sched, std::move(procs), 42);
  engine.run_round();
  const auto& p1 = dynamic_cast<const ScriptProcess&>(engine.process(1));
  const auto& p2 = dynamic_cast<const ScriptProcess&>(engine.process(2));
  ASSERT_EQ(p1.heard.size(), 1u);
  EXPECT_EQ(p1.heard[0].second, 100u);
  EXPECT_TRUE(p2.heard.empty());  // 2 is not a neighbor of 0
}

TEST(Engine, TwoTransmittersCollideAtCommonNeighbor) {
  const auto g = reliable_path(3);  // 1 hears both 0 and 2
  const auto ids = assign_ids(3, 1);
  ConstantScheduler sched(false);
  auto procs = make_scripted({{{1, 100}}, {}, {{1, 200}}}, ids);
  Engine engine(g, sched, std::move(procs), 42);
  engine.run_round();
  const auto& p1 = dynamic_cast<const ScriptProcess&>(engine.process(1));
  EXPECT_TRUE(p1.heard.empty());
  ASSERT_EQ(p1.silent_rounds.size(), 1u);  // collision presents as silence
}

TEST(Engine, TransmitterDoesNotReceive) {
  const auto g = reliable_path(2);
  const auto ids = assign_ids(2, 1);
  ConstantScheduler sched(false);
  auto procs = make_scripted({{{1, 100}}, {{1, 200}}}, ids);
  Engine engine(g, sched, std::move(procs), 42);
  engine.run_round();
  for (graph::Vertex v = 0; v < 2; ++v) {
    const auto& p = dynamic_cast<const ScriptProcess&>(engine.process(v));
    EXPECT_TRUE(p.heard.empty());
    EXPECT_TRUE(p.silent_rounds.empty());  // no receive step at all
  }
}

TEST(Engine, UnreliableEdgeDeliversOnlyWhenScheduled) {
  const auto g = unreliable_vee();  // {1,2} unreliable
  const auto ids = assign_ids(3, 1);
  // Round 1: edge absent; round 2: edge present.
  ExplicitScheduler sched({{false}, {true}});
  auto procs = make_scripted({{}, {{1, 10}, {2, 20}}, {}}, ids);
  Engine engine(g, sched, std::move(procs), 42);
  engine.run_rounds(2);
  const auto& p2 = dynamic_cast<const ScriptProcess&>(engine.process(2));
  ASSERT_EQ(p2.heard.size(), 1u);
  EXPECT_EQ(p2.heard[0].first, 2);     // only the round with the edge
  EXPECT_EQ(p2.heard[0].second, 20u);
}

TEST(Engine, UnreliableEdgeCausesCollisionWhenIncluded) {
  // 0 hears 1 (reliable) always; adding unreliable edge 0-2 while 2
  // transmits creates a collision at 0.
  graph::DualGraph g(3);
  g.add_reliable_edge(0, 1);
  g.add_unreliable_edge(0, 2);
  g.finalize();
  const auto ids = assign_ids(3, 1);
  for (bool edge_on : {false, true}) {
    ExplicitScheduler sched(
        std::vector<std::vector<bool>>{std::vector<bool>{edge_on}});
    auto procs = make_scripted({{}, {{1, 10}}, {{1, 20}}}, ids);
    Engine engine(g, sched, std::move(procs), 42);
    engine.run_round();
    const auto& p0 = dynamic_cast<const ScriptProcess&>(engine.process(0));
    if (edge_on) {
      EXPECT_TRUE(p0.heard.empty()) << "collision expected";
    } else {
      ASSERT_EQ(p0.heard.size(), 1u);
      EXPECT_EQ(p0.heard[0].second, 10u);
    }
  }
}

TEST(Engine, SilenceDeliveredAsNull) {
  const auto g = reliable_path(2);
  const auto ids = assign_ids(2, 1);
  ConstantScheduler sched(false);
  auto procs = make_scripted({{}, {}}, ids);
  Engine engine(g, sched, std::move(procs), 42);
  engine.run_rounds(3);
  const auto& p0 = dynamic_cast<const ScriptProcess&>(engine.process(0));
  EXPECT_EQ(p0.silent_rounds.size(), 3u);
}

TEST(Engine, ObserverSeesTransmitsReceivesAndCollisions) {
  class Counter final : public Observer {
   public:
    void on_transmit(Round, graph::Vertex, const Packet&) override {
      ++transmits;
    }
    void on_receive(Round, graph::Vertex, graph::Vertex,
                    const Packet&) override {
      ++receives;
    }
    void on_silence(Round, graph::Vertex, bool collision) override {
      if (collision) ++collisions;
      ++silences;
    }
    int transmits = 0, receives = 0, silences = 0, collisions = 0;
  };

  const auto g = reliable_path(3);
  const auto ids = assign_ids(3, 1);
  ConstantScheduler sched(false);
  // Round 1: 0 and 2 transmit -> 1 collides.
  auto procs = make_scripted({{{1, 1}}, {}, {{1, 2}}}, ids);
  Engine engine(g, sched, std::move(procs), 42);
  Counter counter;
  engine.add_observer(&counter);
  engine.run_round();
  EXPECT_EQ(counter.transmits, 2);
  EXPECT_EQ(counter.receives, 0);
  EXPECT_EQ(counter.collisions, 1);  // vertex 1
  EXPECT_EQ(counter.silences, 1);
}

TEST(Engine, RoundCounterAdvances) {
  const auto g = reliable_path(2);
  const auto ids = assign_ids(2, 1);
  ConstantScheduler sched(false);
  Engine engine(g, sched, make_scripted({{}, {}}, ids), 42);
  EXPECT_EQ(engine.round(), 0);
  engine.run_rounds(5);
  EXPECT_EQ(engine.round(), 5);
}

// ---- schedulers ----

TEST(BernoulliScheduler, DeterministicAfterCommit) {
  const auto g = unreliable_vee();
  BernoulliScheduler a(0.5), b(0.5);
  a.commit(g, 9);
  b.commit(g, 9);
  for (Round t = 1; t <= 200; ++t) {
    EXPECT_EQ(a.active(0, t), b.active(0, t));
  }
}

TEST(BernoulliScheduler, RateMatchesP) {
  const auto g = unreliable_vee();
  for (double p : {0.2, 0.5, 0.8}) {
    BernoulliScheduler sched(p);
    sched.commit(g, 123);
    int on = 0;
    const int n = 20000;
    for (Round t = 1; t <= n; ++t) {
      if (sched.active(0, t)) ++on;
    }
    EXPECT_NEAR(static_cast<double>(on) / n, p, 0.02);
  }
}

TEST(BernoulliScheduler, ExtremesAreConstant) {
  const auto g = unreliable_vee();
  BernoulliScheduler never(0.0), always(1.0);
  never.commit(g, 1);
  always.commit(g, 1);
  for (Round t = 1; t <= 50; ++t) {
    EXPECT_FALSE(never.active(0, t));
    EXPECT_TRUE(always.active(0, t));
  }
}

TEST(FlickerScheduler, RespectsPeriodAndDuty) {
  const auto g = unreliable_vee();
  FlickerScheduler sched(10, 3);
  sched.commit(g, 77);
  int on = 0;
  for (Round t = 1; t <= 1000; ++t) {
    if (sched.active(0, t)) ++on;
  }
  EXPECT_EQ(on, 300);  // exactly duty/period of the rounds
  // Periodicity.
  for (Round t = 1; t <= 50; ++t) {
    EXPECT_EQ(sched.active(0, t), sched.active(0, t + 10));
  }
}

TEST(AntiScheduleAdversary, TracksTargetSchedule) {
  AntiScheduleAdversary sched(
      [](Round t) { return t % 2 == 0 ? 0.5 : 0.125; }, 0.25);
  const auto g = unreliable_vee();
  sched.commit(g, 0);
  EXPECT_TRUE(sched.active(0, 2));    // high-probability round: flood
  EXPECT_FALSE(sched.active(0, 1));   // low-probability round: withdraw
}

TEST(ExplicitScheduler, CyclesPattern) {
  const auto g = unreliable_vee();
  ExplicitScheduler sched({{true}, {false}, {false}});
  sched.commit(g, 0);
  EXPECT_TRUE(sched.active(0, 1));
  EXPECT_FALSE(sched.active(0, 2));
  EXPECT_FALSE(sched.active(0, 3));
  EXPECT_TRUE(sched.active(0, 4));  // wraps
}

TEST(ExplicitScheduler, PatternWidthValidatedAtCommit) {
  const auto g = unreliable_vee();  // one unreliable edge
  ExplicitScheduler sched({{true, false}});
  EXPECT_DEATH(sched.commit(g, 0), "precondition");
}

// ---- reproducibility ----

TEST(Engine, IdenticalSeedsGiveIdenticalExecutions) {
  // Random processes: transmit with probability 1/2 each round.
  class CoinProcess final : public Process {
   public:
    explicit CoinProcess(ProcessId id) : Process(id) {}
    std::optional<Packet> transmit(RoundContext& ctx) override {
      if (!ctx.rng().chance(0.5)) return std::nullopt;
      return Packet{id(), DataPayload{MessageId{id(), ++seq_}, 0}};
    }
    void receive(const std::optional<Packet>& packet, RoundContext&) override {
      if (packet.has_value()) ++received;
    }
    std::uint32_t seq_ = 0;
    int received = 0;
  };

  auto run = [](std::uint64_t seed) {
    const auto g = reliable_path(5);
    const auto ids = assign_ids(5, 1);
    BernoulliScheduler sched(0.5);
    std::vector<std::unique_ptr<Process>> procs;
    for (std::size_t v = 0; v < 5; ++v) {
      procs.push_back(std::make_unique<CoinProcess>(ids[v]));
    }
    Engine engine(g, sched, std::move(procs), seed);
    engine.run_rounds(100);
    std::vector<int> received;
    for (graph::Vertex v = 0; v < 5; ++v) {
      received.push_back(
          dynamic_cast<const CoinProcess&>(engine.process(v)).received);
    }
    return received;
  };

  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // overwhelmingly likely over 100 rounds
}

}  // namespace
}  // namespace dg::sim
