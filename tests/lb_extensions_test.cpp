// Tests for the LB-layer extensions: the abort input (abstract MAC [14,16])
// and seed reuse across multiple phases (the Section 4.2 remark).
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"

namespace dg::lb {
namespace {

LbParams reuse_params(std::size_t delta, std::size_t delta_prime, int k,
                      double ack_scale = 0.01) {
  LbScales scales;
  scales.ack_scale = ack_scale;
  auto p = LbParams::calibrated(0.1, 1.5, delta, delta_prime, scales);
  p.phases_per_seed = k;
  return p;
}

// ---- abort ----

TEST(LbAbort, AbortPendingMessageNeverTransmits) {
  const auto g = graph::clique_cluster(4);
  const auto params = reuse_params(g.delta(), g.delta_prime(), 1);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   11);
  sim.run_rounds(2);  // mid-preamble: message stays pending
  sim.post_bcast(0, 7);
  const auto aborted = sim.post_abort(0);
  ASSERT_TRUE(aborted.has_value());
  EXPECT_FALSE(sim.busy(0));
  sim.run_phases(params.t_ack_phases + 2);
  EXPECT_EQ(sim.report().ack_count, 0u);
  EXPECT_EQ(sim.report().raw_receptions, 0u);
  EXPECT_TRUE(sim.report().validity_ok);
  EXPECT_TRUE(sim.checker().broadcasts()[0].aborted());
}

TEST(LbAbort, AbortMidBroadcastStopsAndSkipsAck) {
  const auto g = graph::clique_cluster(4);
  const auto params = reuse_params(g.delta(), g.delta_prime(), 1, 0.2);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   12);
  sim.post_bcast(0, 7);
  sim.run_phases(1);  // actively broadcasting now
  const auto receptions_before = sim.report().raw_receptions;
  const auto aborted = sim.post_abort(0);
  ASSERT_TRUE(aborted.has_value());
  sim.run_phases(params.t_ack_phases + 1);
  EXPECT_EQ(sim.report().ack_count, 0u);
  // No transmissions after the abort round.
  EXPECT_EQ(sim.report().raw_receptions, receptions_before);
  EXPECT_TRUE(sim.report().validity_ok);
  EXPECT_TRUE(sim.report().timely_ack_ok);
  EXPECT_FALSE(sim.busy(0));
}

TEST(LbAbort, AbortWithNothingOutstandingIsNoop) {
  const auto g = graph::clique_cluster(3);
  const auto params = reuse_params(g.delta(), g.delta_prime(), 1);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   13);
  EXPECT_FALSE(sim.post_abort(0).has_value());
}

TEST(LbAbort, NewBcastAllowedAfterAbort) {
  const auto g = graph::clique_cluster(4);
  const auto params = reuse_params(g.delta(), g.delta_prime(), 1, 0.2);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   14);
  sim.post_bcast(0, 1);
  sim.run_rounds(3);
  sim.post_abort(0);
  const auto m2 = sim.post_bcast(0, 2);  // contract permits a fresh bcast
  sim.run_phases(params.t_ack_phases + 2);
  EXPECT_EQ(sim.report().ack_count, 1u);
  EXPECT_EQ(sim.checker().broadcasts()[1].id, m2);
  EXPECT_TRUE(sim.checker().broadcasts()[1].acked());
}

// ---- seed reuse (Section 4.2 remark) ----

class SeedReuse : public ::testing::TestWithParam<int> {};

TEST_P(SeedReuse, GroupLayoutKeepsSeedTrafficInPreambles) {
  const int k = GetParam();
  const auto g = graph::clique_cluster(6);
  const auto params = reuse_params(g.delta(), g.delta_prime(), k, 0.05);

  class Discipline final : public sim::Observer {
   public:
    explicit Discipline(const LbParams& p) : p_(&p) {}
    void on_transmit(sim::Round round, graph::Vertex,
                     const sim::Packet& packet) override {
      const std::int64_t pos = (round - 1) % p_->group_length();
      const bool preamble = pos < p_->t_s;
      if (packet.is_seed()) {
        EXPECT_TRUE(preamble) << "round " << round;
      } else {
        EXPECT_FALSE(preamble) << "round " << round;
      }
    }
    const LbParams* p_;
  };

  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   20 + k);
  Discipline discipline(params);
  sim.add_observer(&discipline);
  sim.keep_busy({0});
  sim.run_rounds(3 * params.group_length());
  EXPECT_GT(sim.report().raw_receptions, 0u);
}

TEST_P(SeedReuse, SpecHoldsUnderReuse) {
  const int k = GetParam();
  const auto g = graph::clique_cluster(8);
  const auto params = reuse_params(g.delta(), g.delta_prime(), k, 0.05);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   30 + k);
  sim.keep_busy({0, 1});
  // Enough rounds for at least one full ack cycle regardless of k.
  sim.run_rounds((params.t_ack_phases + 2) * params.group_length());
  const auto& r = sim.report();
  EXPECT_TRUE(r.timely_ack_ok);
  EXPECT_TRUE(r.validity_ok);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_GT(r.ack_count, 0u);
  EXPECT_GT(r.recv_count, 0u);
}

TEST_P(SeedReuse, AckLatencyWithinBound) {
  const int k = GetParam();
  const auto g = graph::clique_cluster(4);
  const auto params = reuse_params(g.delta(), g.delta_prime(), k, 0.05);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   40 + k);
  sim.run_rounds(3);  // post mid-group
  sim.post_bcast(0, 9);
  sim.run_rounds(3 * params.group_length() +
                 params.t_ack_phases * params.group_length());
  ASSERT_EQ(sim.report().ack_count, 1u);
  const auto& rec = sim.checker().broadcasts()[0];
  EXPECT_LE(rec.ack_round - rec.input_round, params.t_ack_bound());
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, SeedReuse, ::testing::Values(1, 2, 4));

TEST(SeedReuse, OverheadShrinksWithGroupSize) {
  // The amortized preamble overhead T_s / group_length drops as k grows --
  // the remark's entire point.
  const auto p1 = reuse_params(16, 32, 1);
  const auto p4 = reuse_params(16, 32, 4);
  const double overhead1 =
      static_cast<double>(p1.t_s) / static_cast<double>(p1.group_length());
  const double overhead4 =
      static_cast<double>(p4.t_s) / static_cast<double>(p4.group_length());
  EXPECT_LT(overhead4, overhead1 / 2.0);
  // Worst-case spec bounds unchanged in t_prog, finite in t_ack.
  EXPECT_EQ(p4.t_prog_bound(), p1.t_prog_bound());
  EXPECT_GT(p4.t_ack_bound(), 0);
  EXPECT_EQ(p4.kappa_per_group(), 4 * p1.kappa_per_group());
}

TEST(SeedReuse, MidGroupPromotionHappensAtSegmentBoundary) {
  // With k = 4, a message posted during the first body segment enters the
  // sending state at the second segment -- not a full group later.
  const auto g = graph::clique_cluster(4);
  const auto params = reuse_params(g.delta(), g.delta_prime(), 4, 0.05);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   50);
  sim.run_rounds(params.t_s + 1);  // first body segment underway
  sim.post_bcast(0, 5);
  // The message enters the sending state at the second segment of the SAME
  // group (not a whole group later): by the group's end the lone sender has
  // had three full segments of body rounds to get through.
  sim.run_rounds(4 * params.t_prog);
  EXPECT_GT(sim.report().raw_receptions, 0u);
}

}  // namespace
}  // namespace dg::lb
