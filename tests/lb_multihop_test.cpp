// Multi-hop and high-load integration tests: the LB layer under sustained
// network-wide traffic on structured topologies, with full spec checking.
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"

namespace dg::lb {
namespace {

TEST(LbMultihop, GridUnderFullLoadStaysClean) {
  // Every vertex saturated on a 5x4 grid with flickering diagonals: the
  // harshest steady-state load the env contract permits.
  const auto g = graph::grid(5, 4, 1.0, 1.5);
  LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  LbSimulation sim(g, std::make_unique<sim::FlickerScheduler>(32, 16),
                   params, 61);
  std::vector<graph::Vertex> all;
  for (graph::Vertex v = 0; v < g.size(); ++v) all.push_back(v);
  sim.keep_busy(all);
  sim.run_phases(3 * (params.t_ack_phases + 1));
  const auto& r = sim.report();
  EXPECT_TRUE(r.timely_ack_ok);
  EXPECT_TRUE(r.validity_ok);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_GE(r.ack_count, g.size());  // everyone completed at least one
  EXPECT_GT(r.recv_count, 0u);
}

TEST(LbMultihop, LineDeliversOnlyToGPrimeNeighbors) {
  // On a line with spacing 1 and r = 1.5, messages from vertex 0 can reach
  // vertex 1 (reliable); vertex 2+ are out of G' range entirely.
  const auto g = graph::line(5, 1.0, 1.5);
  LbScales scales;
  scales.ack_scale = 0.05;
  const auto params =
      LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(true), params,
                   62);
  sim.keep_busy({0});
  sim.run_phases(2 * (params.t_ack_phases + 1));
  for (const auto& rec : sim.checker().broadcasts()) {
    for (const auto& [v, round] : rec.recv_rounds) {
      EXPECT_TRUE(g.has_gprime_edge(0, v)) << "leak to vertex " << v;
    }
  }
  EXPECT_TRUE(sim.report().validity_ok);
}

TEST(LbMultihop, ReceiversInTwoHopShadowStillProgress) {
  // Middle vertex of a line hears both sides; ends hear only one neighbor.
  // All senders saturated: everyone with an active G-neighbor must keep
  // receiving (progress), even under Bernoulli link chaos.
  const auto g = graph::line(7, 1.0, 1.5);
  LbScales scales;
  scales.ack_scale = 0.02;
  const auto params =
      LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  LbSimulation sim(g, std::make_unique<sim::BernoulliScheduler>(0.5), params,
                   63);
  sim.keep_busy({1, 3, 5});
  sim.run_phases(8);
  const auto& r = sim.report();
  EXPECT_TRUE(r.validity_ok);
  ASSERT_GT(r.progress.trials(), 0u);
  EXPECT_TRUE(r.progress.consistent_with_at_least(0.8));
}

TEST(LbMultihop, HeavyLoadDeliveryRecordsAreComplete) {
  const auto g = graph::clique_cluster(6);
  LbScales scales;
  scales.ack_scale = 0.05;
  const auto params =
      LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   64);
  sim.keep_busy({0, 1, 2, 3, 4, 5});
  sim.run_phases(2 * (params.t_ack_phases + 1));
  // Every acked record must have consistent rounds.
  for (const auto& rec : sim.checker().broadcasts()) {
    if (!rec.acked()) continue;
    EXPECT_GE(rec.ack_round, rec.input_round);
    if (rec.delivered()) {
      EXPECT_LE(rec.delivered_round, rec.ack_round);
      EXPECT_GE(rec.delivered_round, rec.input_round);
      EXPECT_EQ(rec.recv_rounds.size(), g.g_neighbors(rec.origin).size());
    }
  }
}

}  // namespace
}  // namespace dg::lb
