// Tests for the fault-injection subsystem (src/fault/ + the engine seam):
// schedule determinism (same seed => same event stream), engine semantics
// for crashed vertices (no transmit, no receive, idempotent events),
// crash-abort accounting through the LB stack (in-flight broadcast aborted,
// traffic crash-requeue + re-admission), recovery re-initialization (the
// recovered process acks again), spec-checker fault-window masking (clean
// tallies never shrink; tainted windows land in the degradation ledger),
// and the shared fault spec grammar.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "fault/plan.h"
#include "fault/spec.h"
#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "test_support.h"
#include "traffic/source.h"
#include "util/bitmap.h"

namespace dg {
namespace {

using test::reliable_path;
using test::ScriptProcess;
using test::SilentProcess;

// ---- plan schedules ----

/// Replays a plan the way the engine does: serial plan_round calls with the
/// crashed set maintained from the plan's own (non-redundant) events.
std::vector<std::tuple<sim::Round, graph::Vertex, bool>> drive_plan(
    fault::FaultPlan& plan, const graph::DualGraph& g, std::uint64_t seed,
    sim::Round horizon) {
  plan.bind(g, seed);
  Bitmap crashed(g.size());
  std::vector<fault::FaultEvent> events;
  std::vector<std::tuple<sim::Round, graph::Vertex, bool>> log;
  for (sim::Round t = 1; t <= horizon; ++t) {
    events.clear();
    plan.plan_round(t, crashed, events);
    for (const auto& ev : events) {
      const bool crash = ev.kind == fault::FaultKind::kCrash;
      if (crash == crashed.test(ev.vertex)) continue;  // engine idempotence
      if (crash) {
        crashed.set(ev.vertex);
      } else {
        crashed.reset(ev.vertex);
      }
      log.emplace_back(ev.round, ev.vertex, crash);
    }
  }
  return log;
}

TEST(FaultPlan, PoissonScheduleIsSeedDeterministic) {
  const auto g = graph::grid(5, 4, 1.0, 1.5);
  auto run = [&](std::uint64_t seed) {
    fault::PoissonFaultPlan plan(0.5, 10.0);
    return drive_plan(plan, g, seed, 600);
  };
  const auto a = run(7);
  EXPECT_EQ(a, run(7));
  EXPECT_NE(a, run(8));
  // The schedule churns: both crash and recover events occur.
  std::size_t crashes = 0, recoveries = 0;
  for (const auto& [round, v, crash] : a) (crash ? crashes : recoveries)++;
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(recoveries, 0u);
  EXPECT_LE(recoveries, crashes);
}

TEST(FaultPlan, RegionKillsTheBallAndRecoversItTogether) {
  const auto g = reliable_path(5);  // ball(2, r=1) = {1, 2, 3}
  fault::RegionFaultPlan plan(4, 2, 1, 3);
  const auto log = drive_plan(plan, g, 99, 10);
  const std::vector<std::tuple<sim::Round, graph::Vertex, bool>> expected{
      {4, 1, true},  {4, 2, true},  {4, 3, true},
      {7, 1, false}, {7, 2, false}, {7, 3, false},
  };
  EXPECT_EQ(log, expected);
}

TEST(FaultPlan, AdversaryTargetsTheHighestProgressVertex) {
  const auto g = reliable_path(4);
  fault::AdversaryFaultPlan plan(1, 3, 2);
  plan.bind(g, 5);
  for (int i = 0; i < 3; ++i) plan.note_progress(2);
  plan.note_progress(0);
  Bitmap crashed(g.size());
  std::vector<fault::FaultEvent> events;
  std::vector<std::tuple<sim::Round, graph::Vertex, bool>> log;
  for (sim::Round t = 1; t <= 7; ++t) {
    events.clear();
    plan.plan_round(t, crashed, events);
    for (const auto& ev : events) {
      const bool crash = ev.kind == fault::FaultKind::kCrash;
      if (crash) crashed.set(ev.vertex); else crashed.reset(ev.vertex);
      log.emplace_back(ev.round, ev.vertex, crash);
    }
  }
  // Attack rounds 3 and 6 both pick vertex 2 (3 acks beats 1); it is back
  // up at round 5, in time to be re-targeted.
  const std::vector<std::tuple<sim::Round, graph::Vertex, bool>> expected{
      {3, 2, true}, {5, 2, false}, {6, 2, true}};
  EXPECT_EQ(log, expected);
}

// ---- engine semantics ----

TEST(EngineFaults, CrashedTransmitterFallsSilent) {
  const auto g = reliable_path(2);
  const auto ids = sim::assign_ids(2, 1);
  sim::ConstantScheduler sched(false);
  std::map<sim::Round, std::uint64_t> sends;
  for (sim::Round t = 1; t <= 8; ++t) sends[t] = 10 + t;
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(ids[0], sends));
  procs.push_back(std::make_unique<SilentProcess>(ids[1]));
  sim::Engine engine(g, sched, std::move(procs), 42);
  fault::ScriptFaultPlan plan({{3, 0, fault::FaultKind::kCrash},
                               {5, 0, fault::FaultKind::kRecover}});
  engine.set_fault_plan(&plan);
  engine.run_rounds(8);
  const auto& p1 = dynamic_cast<const SilentProcess&>(engine.process(1));
  std::vector<sim::Round> heard_rounds;
  for (const auto& [round, content] : p1.heard) {
    EXPECT_EQ(content, 10u + static_cast<std::uint64_t>(round));
    heard_rounds.push_back(round);
  }
  EXPECT_EQ(heard_rounds, (std::vector<sim::Round>{1, 2, 5, 6, 7, 8}));
  EXPECT_FALSE(engine.crashed(0));
}

TEST(EngineFaults, CrashedListenerHearsNothing) {
  const auto g = reliable_path(2);
  const auto ids = sim::assign_ids(2, 1);
  sim::ConstantScheduler sched(false);
  std::map<sim::Round, std::uint64_t> sends;
  for (sim::Round t = 1; t <= 6; ++t) sends[t] = 10 + t;
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(ids[0], sends));
  procs.push_back(std::make_unique<SilentProcess>(ids[1]));
  sim::Engine engine(g, sched, std::move(procs), 42);
  fault::ScriptFaultPlan plan({{3, 1, fault::FaultKind::kCrash},
                               {4, 1, fault::FaultKind::kRecover}});
  engine.set_fault_plan(&plan);
  engine.run_rounds(6);
  const auto& p1 = dynamic_cast<const SilentProcess&>(engine.process(1));
  std::vector<sim::Round> heard_rounds;
  for (const auto& [round, content] : p1.heard) heard_rounds.push_back(round);
  EXPECT_EQ(heard_rounds, (std::vector<sim::Round>{1, 2, 4, 5, 6}));
}

/// Records the engine's fault callbacks: process hooks and listener, with
/// the listener's crash leg required to precede Process::on_crash.
class FaultProbeProcess final : public sim::Process {
 public:
  explicit FaultProbeProcess(sim::ProcessId id) : sim::Process(id) {}
  std::optional<sim::Packet> transmit(sim::RoundContext&) override {
    return std::nullopt;
  }
  void receive(const std::optional<sim::Packet>&,
               sim::RoundContext&) override {}
  void on_crash(sim::Round round) override { crash_rounds.push_back(round); }
  void on_recover(sim::Round round) override {
    recover_rounds.push_back(round);
  }
  std::vector<sim::Round> crash_rounds, recover_rounds;
};

class CountingListener final : public fault::FaultListener {
 public:
  explicit CountingListener(const FaultProbeProcess* probe) : probe_(probe) {}
  void on_crash(sim::Round round, graph::Vertex v) override {
    crashes.emplace_back(round, v);
    // Ordering contract: the listener sees the pre-crash process (its
    // on_crash has not fired yet), so it can still abort in-flight work.
    EXPECT_LT(probe_->crash_rounds.size(), crashes.size());
  }
  void on_recover(sim::Round round, graph::Vertex v) override {
    recovers.emplace_back(round, v);
    // And the recovery leg talks to an already re-initialized process.
    EXPECT_EQ(probe_->recover_rounds.size(), recovers.size());
  }
  std::vector<std::pair<sim::Round, graph::Vertex>> crashes, recovers;

 private:
  const FaultProbeProcess* probe_;
};

TEST(EngineFaults, RedundantEventsAreIgnoredOnce) {
  const auto g = reliable_path(2);
  const auto ids = sim::assign_ids(2, 1);
  sim::ConstantScheduler sched(false);
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.push_back(std::make_unique<FaultProbeProcess>(ids[0]));
  procs.push_back(std::make_unique<SilentProcess>(ids[1]));
  sim::Engine engine(g, sched, std::move(procs), 42);
  const auto* probe =
      dynamic_cast<const FaultProbeProcess*>(&engine.process(0));
  // Crash twice, recover twice: the redundant second of each pair must be
  // swallowed (plans may emit idempotently).
  fault::ScriptFaultPlan plan({{2, 0, fault::FaultKind::kCrash},
                               {3, 0, fault::FaultKind::kCrash},
                               {5, 0, fault::FaultKind::kRecover},
                               {6, 0, fault::FaultKind::kRecover}});
  CountingListener listener(probe);
  engine.set_fault_plan(&plan, &listener);
  engine.run_rounds(8);
  EXPECT_EQ(probe->crash_rounds, (std::vector<sim::Round>{2}));
  EXPECT_EQ(probe->recover_rounds, (std::vector<sim::Round>{5}));
  const std::vector<std::pair<sim::Round, graph::Vertex>> one_crash{{2, 0}};
  const std::vector<std::pair<sim::Round, graph::Vertex>> one_recover{{5, 0}};
  EXPECT_EQ(listener.crashes, one_crash);
  EXPECT_EQ(listener.recovers, one_recover);
  EXPECT_FALSE(engine.crashed(0));
}

// ---- the LB stack under faults ----

lb::LbParams small_params(const graph::DualGraph& g) {
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  return lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(),
                                  scales);
}

std::unique_ptr<lb::LbSimulation> make_sim(const graph::DualGraph& g,
                                           std::uint64_t seed) {
  return std::make_unique<lb::LbSimulation>(
      g, std::make_unique<sim::BernoulliScheduler>(0.5), small_params(g),
      seed);
}

TEST(FaultStack, CrashAbortsRequeuesAndTheRecoveredVertexAcksAgain) {
  const auto g = graph::clique_cluster(4);
  auto sim = make_sim(g, 21);
  std::vector<traffic::ScriptSource::Post> posts{{1, 0, 501}, {1, 0, 502}};
  sim->add_traffic(
      std::make_unique<traffic::ScriptSource>(std::move(posts)));
  sim->keep_busy({2});  // a live transmitter for the re-stabilization probe
  fault::ScriptFaultPlan plan({{2, 0, fault::FaultKind::kCrash},
                               {3, 0, fault::FaultKind::kRecover}});
  sim->set_fault_plan(&plan);
  sim->run_phases(12);

  // 501 was in flight at the crash: aborted through the usual path, then
  // crash-requeued at the queue head and re-admitted after recovery.
  const auto& ts = sim->traffic().stats();
  EXPECT_EQ(ts.crash_requeues, 1u);
  EXPECT_EQ(ts.readmitted, 1u);
  EXPECT_GE(ts.aborted, 1u);
  EXPECT_EQ(ts.dropped, 0u);
  const traffic::MessageRecord* first = nullptr;
  const traffic::MessageRecord* second = nullptr;
  for (const auto& rec : sim->traffic().messages()) {
    if (rec.content == 501) first = &rec;
    if (rec.content == 502) second = &rec;
  }
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(first->requeued);
  EXPECT_TRUE(first->aborted());
  // Recovery re-init: the resynced process serves the re-admitted message
  // to completion, and the FIFO successor behind it.
  EXPECT_TRUE(first->acked());
  EXPECT_GT(first->ack_round, 3);
  EXPECT_TRUE(second->acked());
  EXPECT_GT(second->admit_round, first->ack_round);

  const auto& led = sim->ledger();
  EXPECT_EQ(led.crashes, 1u);
  EXPECT_EQ(led.recoveries, 1u);
  EXPECT_EQ(led.fault_rounds, 1u);  // down during round 2 only
  EXPECT_GT(led.rounds_observed, led.fault_rounds);
  // Vertex 2 keeps transmitting, so the recovered vertex re-stabilizes.
  EXPECT_EQ(led.restab_count, 1u);
  // The crash-abort is environment-initiated: no spec violation.
  EXPECT_EQ(sim->report().violations, 0u);
  EXPECT_TRUE(sim->report().timely_ack_ok);
}

TEST(FaultChecker, CrashMasksPhaseWindowsIntoTheLedger) {
  const auto g = graph::clique_cluster(4);
  auto sim = make_sim(g, 31);
  sim->keep_busy({0, 1, 2, 3});
  const auto phase_len = sim->params().phase_length();
  // Crash at the first round of phase 2 and stay down: in a clique the
  // taint covers every vertex, so phase 2 contributes no clean trials.
  fault::ScriptFaultPlan plan(
      {{phase_len + 1, 0, fault::FaultKind::kCrash}});
  sim->set_fault_plan(&plan);

  sim->run_phases(1);
  const auto clean_trials = sim->report().progress.trials();
  EXPECT_GT(clean_trials, 0u);
  EXPECT_EQ(sim->ledger().faulty_progress.trials(), 0u);

  sim->run_phases(1);
  EXPECT_EQ(sim->report().progress.trials(), clean_trials);
  EXPECT_GT(sim->ledger().faulty_progress.trials(), 0u);
  EXPECT_EQ(sim->ledger().crashes, 1u);
  EXPECT_EQ(sim->ledger().recoveries, 0u);
  EXPECT_EQ(sim->ledger().fault_rounds,
            static_cast<std::uint64_t>(phase_len));
  EXPECT_EQ(sim->report().violations, 0u);
}

TEST(FaultChecker, NoPlanLeavesTheLedgerUntouched) {
  const auto g = graph::clique_cluster(4);
  auto sim = make_sim(g, 41);
  sim->keep_busy({0, 1});
  sim->run_phases(2);
  const auto& led = sim->ledger();
  EXPECT_EQ(led.crashes, 0u);
  EXPECT_EQ(led.recoveries, 0u);
  EXPECT_EQ(led.fault_rounds, 0u);
  EXPECT_EQ(led.faulty_progress.trials(), 0u);
  EXPECT_EQ(led.faulty_reliability.trials(), 0u);
  EXPECT_EQ(led.restab_count, 0u);
  EXPECT_GT(led.rounds_observed, 0u);
  EXPECT_GT(sim->report().progress.trials(), 0u);
}

// ---- spec grammar ----

TEST(FaultSpec, ParsesEveryKindWithDefaults) {
  fault::FaultSpec s;
  EXPECT_EQ(fault::parse_fault_spec("crash:100:3", s), "");
  EXPECT_EQ(s.kind, fault::FaultSpec::Kind::kCrash);
  EXPECT_EQ(s.round, 100);
  EXPECT_EQ(s.vertex, 3u);
  EXPECT_EQ(s.repair, 0);
  EXPECT_EQ(fault::parse_fault_spec("crash:100:3:50", s), "");
  EXPECT_EQ(s.repair, 50);
  EXPECT_EQ(fault::parse_fault_spec("poisson", s), "");
  EXPECT_EQ(s.kind, fault::FaultSpec::Kind::kPoisson);
  EXPECT_DOUBLE_EQ(s.rate, 0.02);
  EXPECT_DOUBLE_EQ(s.mean_repair, 64.0);
  EXPECT_EQ(fault::parse_fault_spec("poisson:0.1:32", s), "");
  EXPECT_DOUBLE_EQ(s.rate, 0.1);
  EXPECT_DOUBLE_EQ(s.mean_repair, 32.0);
  EXPECT_EQ(fault::parse_fault_spec("region:257:7:2:512", s), "");
  EXPECT_EQ(s.kind, fault::FaultSpec::Kind::kRegion);
  EXPECT_EQ(s.round, 257);
  EXPECT_EQ(s.vertex, 7u);
  EXPECT_EQ(s.radius, 2);
  EXPECT_EQ(s.repair, 512);
  EXPECT_EQ(fault::parse_fault_spec("adversary", s), "");
  EXPECT_EQ(s.kind, fault::FaultSpec::Kind::kAdversary);
  EXPECT_EQ(s.k, 1);
  EXPECT_EQ(s.period, 64);
  EXPECT_EQ(s.repair, 64);
  EXPECT_EQ(fault::parse_fault_spec("adversary:4:128:32", s), "");
  EXPECT_EQ(s.k, 4);
  EXPECT_EQ(s.period, 128);
  EXPECT_EQ(s.repair, 32);
}

TEST(FaultSpec, RejectionsListValidSpecs) {
  fault::FaultSpec s;
  for (const char* bad :
       {"", "crashh:1:0", "crash:0:1", "crash:1", "crash:1:2:3:4",
        "poisson:0", "poisson:2", "poisson:0.5:0.5", "region:1:0",
        "region:1:0:-1", "adversary:0", "adversary:1:0",
        // Integer arguments past 2^31 are rejected, as in the traffic
        // grammar: the double->integer casts would otherwise be undefined.
        "crash:1e20:0", "region:1:0:1e20", "adversary:1e20"}) {
    EXPECT_FALSE(fault::parse_fault_spec(bad, s).empty()) << bad;
  }
  const std::string err = fault::parse_fault_spec("crashh:1:0", s);
  EXPECT_NE(err.find("crash:round:vertex[:repair]"), std::string::npos)
      << err;
  EXPECT_NE(err.find("adversary:k[:period[:repair]]"), std::string::npos)
      << err;
}

TEST(FaultSpec, BuildsTheMatchingPlan) {
  fault::FaultSpec s;
  ASSERT_EQ(fault::parse_fault_spec("crash:5:1:10", s), "");
  EXPECT_STREQ(fault::build_fault_plan(s)->name(), "script");
  ASSERT_EQ(fault::parse_fault_spec("poisson:0.1", s), "");
  EXPECT_STREQ(fault::build_fault_plan(s)->name(), "poisson");
  ASSERT_EQ(fault::parse_fault_spec("region:1:0:1", s), "");
  EXPECT_STREQ(fault::build_fault_plan(s)->name(), "region");
  ASSERT_EQ(fault::parse_fault_spec("adversary:2", s), "");
  EXPECT_STREQ(fault::build_fault_plan(s)->name(), "adversary");
}

}  // namespace
}  // namespace dg
