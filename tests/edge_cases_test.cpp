// Degenerate-configuration tests: single-node networks, Delta = 1,
// empty neighborhoods, minimal parameters -- places where off-by-ones and
// vacuous-truth bugs hide.
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "seed/seed_alg.h"
#include "sim/engine.h"
#include "sim/scheduler.h"

namespace dg {
namespace {

TEST(EdgeCases, SingleNodeSeedAgreementDecidesItself) {
  const auto g = graph::clique_cluster(1);
  const auto params = seed::SeedAlgParams::make(0.25, g.delta());
  const auto ids = sim::assign_ids(1, 1);
  sim::ConstantScheduler sched(false);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng init(3);
  procs.push_back(std::make_unique<seed::SeedProcess>(params, ids[0], init));
  sim::Engine engine(g, sched, std::move(procs), 9);
  engine.run_rounds(params.total_rounds());
  const auto& p = dynamic_cast<const seed::SeedProcess&>(engine.process(0));
  ASSERT_TRUE(p.decision().has_value());
  EXPECT_EQ(p.decision()->owner, ids[0]);
}

TEST(EdgeCases, SingleNodeLbAcksWithoutNeighbors) {
  const auto g = graph::clique_cluster(1);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, 10);
  sim.post_bcast(0, 1);
  sim.run_phases(params.t_ack_phases + 1);
  const auto& r = sim.report();
  EXPECT_EQ(r.ack_count, 1u);
  EXPECT_TRUE(r.timely_ack_ok);
  // Reliability with zero neighbors is vacuously satisfied.
  EXPECT_EQ(r.reliability.successes(), 1u);
  EXPECT_TRUE(sim.checker().broadcasts()[0].delivered());
}

TEST(EdgeCases, DeltaOneParamsAreSane) {
  const auto p = lb::LbParams::calibrated(0.1, 1.0, 1, 1);
  EXPECT_GE(p.log_delta, 1);
  EXPECT_EQ(p.b_bits, 0);  // [log Delta] = {1}: no bits needed
  EXPECT_GE(p.t_prog, 1);
  EXPECT_GE(p.t_s, 1);
  EXPECT_GE(p.t_ack_phases, 1);
}

TEST(EdgeCases, TwoNodePairDelivers) {
  const auto g = graph::clique_cluster(2);
  lb::LbScales scales;
  scales.ack_scale = 0.05;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, 11);
  sim.post_bcast(0, 42);
  sim.run_phases(params.t_ack_phases + 1);
  const auto& r = sim.report();
  EXPECT_EQ(r.ack_count, 1u);
  EXPECT_EQ(r.recv_count, 1u);  // the peer got it
  EXPECT_EQ(r.reliability.successes(), 1u);
}

TEST(EdgeCases, IsolatedVerticesNeverReceive) {
  // Two nodes, no edges at all (legal when they are > r apart).
  graph::DualGraph g(2);
  g.set_embedding({{0.0, 0.0}, {10.0, 0.0}}, 1.5);
  g.finalize();
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(true),
                       params, 12);
  sim.post_bcast(0, 1);
  sim.run_phases(params.t_ack_phases + 1);
  EXPECT_EQ(sim.report().raw_receptions, 0u);
  EXPECT_EQ(sim.report().ack_count, 1u);  // still acks (vacuous delivery)
}

TEST(EdgeCases, SeedAlgDeltaOneSinglePhase) {
  const auto p = seed::SeedAlgParams::make(0.25, 1);
  EXPECT_EQ(p.num_phases, 1);
  // Final (only) phase elects with probability 1/2.
  Rng rng(7);
  int leaders = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    seed::SeedAlgRunner runner(p, 1, rng);
    for (int s = 0; s < p.total_rounds(); ++s) {
      if (!runner.step_transmit(rng).has_value()) {
        runner.step_receive(std::nullopt);
      }
    }
    if (runner.decision()->as_leader) ++leaders;
  }
  EXPECT_NEAR(static_cast<double>(leaders) / trials, 0.5, 0.05);
}

TEST(EdgeCases, ZeroRoundRunIsNoop) {
  const auto g = graph::clique_cluster(2);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, 13);
  sim.run_rounds(0);
  EXPECT_EQ(sim.round(), 0);
  EXPECT_EQ(sim.report().bcast_count, 0u);
}

TEST(EdgeCases, EmptyGraphOfOneVertexHasDeltaOne) {
  graph::DualGraph g(1);
  g.finalize();
  EXPECT_EQ(g.delta(), 1u);
  EXPECT_EQ(g.delta_prime(), 1u);
  EXPECT_TRUE(g.g_neighbors(0).empty());
}

TEST(EdgeCases, BurstSchedulerExtremes) {
  graph::DualGraph g(2);
  g.add_unreliable_edge(0, 1);
  g.finalize();
  sim::BurstScheduler never(8, 0.0), always(8, 1.0);
  never.commit(g, 1);
  always.commit(g, 1);
  for (sim::Round t = 1; t <= 64; ++t) {
    EXPECT_FALSE(never.active(0, t));
    EXPECT_TRUE(always.active(0, t));
  }
}

TEST(EdgeCases, BurstSchedulerConstantWithinEpoch) {
  graph::DualGraph g(2);
  g.add_unreliable_edge(0, 1);
  g.finalize();
  sim::BurstScheduler sched(10, 0.5);
  sched.commit(g, 77);
  for (sim::Round epoch = 0; epoch < 50; ++epoch) {
    const bool state = sched.active(0, epoch * 10 + 1);
    for (sim::Round r = 2; r <= 10; ++r) {
      EXPECT_EQ(sched.active(0, epoch * 10 + r), state);
    }
  }
}

TEST(EdgeCases, BurstSchedulerRateMatchesPUp) {
  graph::DualGraph g(2);
  g.add_unreliable_edge(0, 1);
  g.finalize();
  sim::BurstScheduler sched(4, 0.3);
  sched.commit(g, 5);
  int on = 0;
  const int epochs = 20000;
  for (int e = 0; e < epochs; ++e) {
    if (sched.active(0, static_cast<sim::Round>(e) * 4 + 1)) ++on;
  }
  EXPECT_NEAR(static_cast<double>(on) / epochs, 0.3, 0.02);
}

}  // namespace
}  // namespace dg
