// Tests for the physical-layer channel subsystem (src/phys/): the SINR
// reception rule and its grid acceleration, the dual-graph extractor's
// Section 2 guarantees, and the DualGraphChannel seam (the explicit-channel
// engine constructor must behave exactly like the scheduler constructor).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "phys/channel.h"
#include "phys/dual_graph_channel.h"
#include "phys/extract.h"
#include "phys/sinr.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "test_support.h"
#include "util/rng.h"

namespace dg::phys {
namespace {

graph::DualGraph edgeless(std::size_t n) {
  graph::DualGraph g(n);
  g.finalize();
  return g;
}

geo::Embedding random_embedding(std::size_t n, double side, Rng& rng) {
  geo::Embedding emb;
  emb.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    emb.push_back(geo::Point{rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return emb;
}

/// Runs one SinrChannel round directly: heard words per vertex.
std::vector<std::uint64_t> sinr_round(const SinrParams& params,
                                      const geo::Embedding& emb,
                                      const std::vector<graph::Vertex>& tx) {
  const auto g = edgeless(emb.size());
  SinrChannel channel(params, emb);
  channel.bind(g, /*master_seed=*/1);
  Bitmap transmitting(emb.size());
  for (graph::Vertex v : tx) transmitting.set(v);
  std::vector<std::uint64_t> heard(emb.size(), 0);
  channel.compute_round(1, transmitting, heard);
  return heard;
}

/// The semantic SINR rule, computed naively with *exact* interference (no
/// far-field aggregation): sender of the delivery at u, if any.
std::optional<graph::Vertex> exact_delivery(
    const SinrParams& params, const geo::Embedding& emb,
    const std::vector<graph::Vertex>& tx, graph::Vertex u) {
  double total = 0.0;
  for (graph::Vertex v : tx) {
    total += path_gain(params, geo::distance_sq(emb[u], emb[v]));
  }
  std::optional<graph::Vertex> winner;
  int clears = 0;
  for (graph::Vertex v : tx) {
    const double gain = path_gain(params, geo::distance_sq(emb[u], emb[v]));
    if (gain >= params.beta * (params.noise + total - gain)) {
      ++clears;
      winner = v;
    }
  }
  return clears == 1 ? winner : std::nullopt;
}

/// Extracts (receiver -> sender) deliveries from heard words.
std::map<graph::Vertex, graph::Vertex> deliveries(
    const std::vector<std::uint64_t>& heard) {
  std::map<graph::Vertex, graph::Vertex> out;
  for (graph::Vertex u = 0; u < static_cast<graph::Vertex>(heard.size());
       ++u) {
    if (static_cast<std::uint32_t>(heard[u]) == 1) {
      out[u] = static_cast<graph::Vertex>(heard[u] >> 32);
    }
  }
  return out;
}

TEST(SinrParams, MaxSignalRangeMatchesClosedForm) {
  SinrParams p;  // alpha=3, beta=2, noise=0.1, power=1
  EXPECT_NEAR(p.max_signal_range(), std::cbrt(1.0 / 0.2), 1e-12);
  // At the range boundary an isolated sender exactly meets beta * noise.
  const double gain =
      path_gain(p, p.max_signal_range() * p.max_signal_range());
  EXPECT_NEAR(gain, p.beta * p.noise, 1e-9);
}

TEST(SinrChannel, IsolatedPairWithinRangeAlwaysDelivers) {
  SinrParams params;
  for (double d : {0.1, 0.5, 1.0, 1.5, params.max_signal_range() * 0.999}) {
    const geo::Embedding emb{{0.0, 0.0}, {d, 0.0}};
    const auto heard = sinr_round(params, emb, {0});
    EXPECT_EQ(deliveries(heard), (std::map<graph::Vertex, graph::Vertex>{
                                     {1, 0}}))
        << "distance " << d;
  }
}

TEST(SinrChannel, IsolatedPairBeyondRangeNeverDelivers) {
  SinrParams params;
  for (double d : {params.max_signal_range() * 1.001, 3.0, 10.0}) {
    const geo::Embedding emb{{0.0, 0.0}, {d, 0.0}};
    const auto heard = sinr_round(params, emb, {0});
    EXPECT_TRUE(deliveries(heard).empty()) << "distance " << d;
  }
}

TEST(SinrChannel, TransmittersHearNothing) {
  const geo::Embedding emb{{0.0, 0.0}, {0.5, 0.0}};
  const auto heard = sinr_round(SinrParams{}, emb, {0, 1});
  EXPECT_TRUE(deliveries(heard).empty());
}

// Monotonicity: adding a transmitter w never creates a delivery from any
// other sender (its interference only grows every receiver's denominator;
// with beta >= 1 at most one sender can clear, so no knock-out effects can
// mint a new delivery either).  Randomized sweep over embeddings and
// transmit sets.
TEST(SinrChannel, AddingInterfererNeverCreatesDelivery) {
  SinrParams params;
  Rng rng(2026);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t n = 30;
    const auto emb = random_embedding(n, /*side=*/6.0, rng);
    std::vector<graph::Vertex> tx;
    for (graph::Vertex v = 1; v < n; ++v) {
      if (rng.chance(0.3)) tx.push_back(v);
    }
    const auto w = static_cast<graph::Vertex>(0);  // never in tx
    auto with_w = tx;
    with_w.push_back(w);

    const auto before = deliveries(sinr_round(params, emb, tx));
    const auto after = deliveries(sinr_round(params, emb, with_w));
    for (const auto& [u, from] : after) {
      if (from == w) continue;  // w itself may be decodable: that is fine
      const auto it = before.find(u);
      ASSERT_TRUE(it != before.end() && it->second == from)
          << "iter " << iter << ": adding interferer " << w
          << " created delivery " << from << " -> " << u;
    }
  }
}

// In a compact deployment every occupied cell is within the near radius of
// every other, the far-field aggregate is empty, and the grid-accelerated
// channel must agree with the naive exact rule verbatim.
TEST(SinrChannel, MatchesExactRuleWhenAllCellsNear) {
  SinrParams params;
  Rng rng(7);
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t n = 16;
    const auto emb = random_embedding(n, /*side=*/1.0, rng);
    std::vector<graph::Vertex> tx;
    for (graph::Vertex v = 0; v < n; ++v) {
      if (rng.chance(0.4)) tx.push_back(v);
    }
    const auto heard = sinr_round(params, emb, tx);
    const auto got = deliveries(heard);
    for (graph::Vertex u = 0; u < n; ++u) {
      if (std::find(tx.begin(), tx.end(), u) != tx.end()) continue;
      const auto want = exact_delivery(params, emb, tx, u);
      const auto it = got.find(u);
      if (want.has_value()) {
        ASSERT_TRUE(it != got.end() && it->second == *want) << "u=" << u;
      } else {
        ASSERT_TRUE(it == got.end()) << "u=" << u;
      }
    }
  }
}

// In spread-out deployments the far-field term over-estimates interference
// (min_cell_distance is a lower bound on every far pair distance), so the
// accelerated channel is conservative: everything it delivers, the exact
// rule delivers too.
TEST(SinrChannel, ConservativeAgainstExactRuleOnSpreadDeployments) {
  SinrParams params;
  Rng rng(11);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = 60;
    const auto emb = random_embedding(n, /*side=*/12.0, rng);
    std::vector<graph::Vertex> tx;
    for (graph::Vertex v = 0; v < n; ++v) {
      if (rng.chance(0.25)) tx.push_back(v);
    }
    const auto got = deliveries(sinr_round(params, emb, tx));
    for (const auto& [u, from] : got) {
      const auto want = exact_delivery(params, emb, tx, u);
      ASSERT_TRUE(want.has_value() && *want == from)
          << "channel delivered " << from << " -> " << u
          << " but the exact rule does not";
    }
  }
}

TEST(ExtractDualGraph, TwoCloseNodesBecomeReliable) {
  const geo::Embedding emb{{0.0, 0.0}, {0.3, 0.0}};
  const auto ext = extract_dual_graph(emb, SinrExtractParams{}, 1);
  EXPECT_EQ(ext.stats.reliable_edges, 1u);
  EXPECT_TRUE(ext.graph.has_reliable_edge(0, 1));
}

TEST(ExtractDualGraph, FarApartNodesStayDisconnected) {
  const geo::Embedding emb{{0.0, 0.0}, {50.0, 0.0}};
  const auto ext = extract_dual_graph(emb, SinrExtractParams{}, 1);
  EXPECT_EQ(ext.stats.reliable_edges, 0u);
  EXPECT_EQ(ext.stats.unreliable_edges, 0u);
  EXPECT_FALSE(ext.graph.has_gprime_edge(0, 1));
}

TEST(ExtractDualGraph, OutputValidatesSectionTwoConstraints) {
  Rng rng(3);
  for (int iter = 0; iter < 5; ++iter) {
    const auto emb = random_embedding(40, /*side=*/5.0, rng);
    const auto ext =
        extract_dual_graph(emb, SinrExtractParams{}, /*seed=*/100 + iter);
    const auto& g = ext.graph;
    ASSERT_TRUE(g.embedding().has_value());
    EXPECT_TRUE(graph::is_r_geographic(g, *g.embedding(), g.r()))
        << "iter " << iter << " scale=" << ext.stats.scale
        << " r=" << ext.stats.r;
    EXPECT_GE(g.r(), 1.0);
    EXPECT_EQ(g.unreliable_edge_count(), ext.stats.unreliable_edges);
    // A 40-node deployment in a 5x5 square is dense enough that the
    // extraction must find some structure.
    EXPECT_GT(ext.stats.candidate_pairs, 0u);
    EXPECT_GT(ext.stats.reliable_edges, 0u);
  }
}

TEST(ExtractDualGraph, DeterministicForFixedSeed) {
  Rng rng(9);
  const auto emb = random_embedding(30, 4.0, rng);
  const auto a = extract_dual_graph(emb, SinrExtractParams{}, 42);
  const auto b = extract_dual_graph(emb, SinrExtractParams{}, 42);
  EXPECT_EQ(a.stats.reliable_edges, b.stats.reliable_edges);
  EXPECT_EQ(a.stats.unreliable_edges, b.stats.unreliable_edges);
  EXPECT_EQ(a.stats.scale, b.stats.scale);
  for (graph::Vertex u = 0; u < 30; ++u) {
    for (graph::Vertex v = u + 1; v < 30; ++v) {
      EXPECT_EQ(a.graph.has_reliable_edge(u, v),
                b.graph.has_reliable_edge(u, v));
      EXPECT_EQ(a.graph.has_gprime_edge(u, v),
                b.graph.has_gprime_edge(u, v));
    }
  }
}

TEST(ExtractDualGraph, ExtractedGraphRunsTheExistingStack) {
  Rng rng(5);
  const auto emb = random_embedding(24, 3.0, rng);
  const auto ext = extract_dual_graph(emb, SinrExtractParams{}, 7);
  // The extracted graph must be a drop-in for the seed/LB substrate: the
  // engine runs it with scripted processes without tripping any contract.
  const auto ids = sim::assign_ids(ext.graph.size(), 1);
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (std::size_t v = 0; v < ext.graph.size(); ++v) {
    procs.push_back(std::make_unique<test::ScriptProcess>(
        ids[v], std::map<sim::Round, std::uint64_t>{
                    {static_cast<sim::Round>(1 + (v % 3)), v}}));
  }
  sim::BernoulliScheduler sched(0.5);
  sim::Engine engine(ext.graph, sched, std::move(procs), 99);
  engine.run_rounds(5);
  EXPECT_EQ(engine.round(), 5);
}

/// Order-sensitive digest of all wire events (same folding scheme as
/// tests/determinism_test.cpp).
class EventDigest final : public sim::Observer {
 public:
  std::uint64_t value() const noexcept { return h_; }
  void on_transmit(sim::Round round, graph::Vertex v,
                   const sim::Packet&) override {
    fold(1, round, v, 0);
  }
  void on_receive(sim::Round round, graph::Vertex u, graph::Vertex from,
                  const sim::Packet&) override {
    fold(2, round, u, from);
  }
  void on_silence(sim::Round round, graph::Vertex u, bool collision) override {
    fold(3, round, u, collision ? 1 : 0);
  }

 private:
  void fold(std::uint64_t kind, sim::Round round, std::uint64_t a,
            std::uint64_t b) {
    for (std::uint64_t w :
         {kind, static_cast<std::uint64_t>(round), a, b}) {
      h_ ^= w + 0x9e3779b97f4a7c15ULL + (h_ << 6) + (h_ >> 2);
    }
  }
  std::uint64_t h_ = 0;
};

std::vector<std::unique_ptr<sim::Process>> coin_processes(std::size_t n) {
  struct Coin final : sim::Process {
    explicit Coin(sim::ProcessId id) : sim::Process(id) {}
    std::optional<sim::Packet> transmit(sim::RoundContext& ctx) override {
      if (!ctx.rng().chance(0.5)) return std::nullopt;
      return sim::Packet{
          id(), sim::DataPayload{sim::MessageId{id(), ++seq_}, seq_}};
    }
    void receive(const std::optional<sim::Packet>&,
                 sim::RoundContext&) override {}
    std::uint32_t seq_ = 0;
  };
  const auto ids = sim::assign_ids(n, 17);
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (std::size_t v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<Coin>(ids[v]));
  }
  return procs;
}

TEST(SinrChannel, LbStackRunsWithoutSpecViolations) {
  // Ground-truth physics may deliver across pairs the declared G' does not
  // connect; the spec checker must grade such executions by the
  // active-broadcaster half of validity only (channel.respects_dual_graph()
  // wiring in LbSimulation), not flag them for obeying physics.
  Rng rng(13);
  graph::GeometricSpec spec;
  spec.n = 32;
  const auto g = graph::random_geometric(spec, rng);
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params = lb::LbParams::calibrated(0.1, g.r(), g.delta(),
                                               g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<SinrChannel>(SinrParams{}),
                       params, /*master_seed=*/77);
  sim.keep_busy({0, 16});
  sim.run_phases(4);
  EXPECT_TRUE(sim.report().validity_ok);
  EXPECT_EQ(sim.report().violations, 0u);
  EXPECT_GT(sim.report().raw_receptions, 0u);
}

TEST(DualGraphChannel, ExplicitChannelMatchesSchedulerConstructor) {
  const auto g = graph::bridged_clusters(6, 1.5);
  std::uint64_t digests[2];
  for (int mode = 0; mode < 2; ++mode) {
    sim::BernoulliScheduler sched(0.4);
    DualGraphChannel channel(sched);
    EventDigest digest;
    auto procs = coin_processes(g.size());
    std::unique_ptr<sim::Engine> engine;
    if (mode == 0) {
      engine = std::make_unique<sim::Engine>(g, sched, std::move(procs),
                                             /*master_seed=*/31337);
    } else {
      engine = std::make_unique<sim::Engine>(g, channel, std::move(procs),
                                             /*master_seed=*/31337);
    }
    engine->add_observer(&digest);
    engine->run_rounds(200);
    digests[mode] = digest.value();
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(Engine, ReportsChannelName) {
  const auto g = test::reliable_path(3);
  sim::BernoulliScheduler sched(0.5);
  sim::Engine engine(g, sched, coin_processes(3), 1);
  EXPECT_EQ(engine.channel().name(), "dual-graph(bernoulli(p=0.500000))");
}

}  // namespace
}  // namespace dg::phys
