// Tests for the abstract MAC layer adapter and the algorithms running on
// top of it (multi-message broadcast, neighbor discovery) -- the E9
// compositionality claim at test scale.
#include <gtest/gtest.h>

#include <memory>

#include "amac/lb_amac.h"
#include "amac/mmb.h"
#include "amac/neighbor_discovery.h"
#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"

namespace dg::amac {
namespace {

lb::LbParams test_params(const graph::DualGraph& g, double ack_scale) {
  lb::LbScales scales;
  scales.ack_scale = ack_scale;
  return lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(),
                                  scales);
}

TEST(LbMacLayer, BoundsMirrorLbParams) {
  const auto g = graph::clique_cluster(4);
  const auto params = test_params(g, 0.01);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, 1);
  LbMacLayer mac(sim);
  const MacBounds b = mac.bounds();
  EXPECT_EQ(b.f_ack, params.t_ack_bound());
  EXPECT_EQ(b.f_prog, params.t_prog_bound());
  EXPECT_DOUBLE_EQ(b.eps, params.eps1);
}

TEST(LbMacLayer, EndpointRejectsBcastWhileBusy) {
  const auto g = graph::clique_cluster(4);
  const auto params = test_params(g, 0.01);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, 2);
  LbMacLayer mac(sim);
  EXPECT_TRUE(mac.endpoint(0).bcast(7));
  EXPECT_TRUE(mac.endpoint(0).busy());
  EXPECT_FALSE(mac.endpoint(0).bcast(8));  // rejected, not fatal
}

TEST(Mmb, RelaysEachContentOnce) {
  MmbNode node;
  node.on_rcv(5);
  node.on_rcv(5);
  EXPECT_EQ(node.pending_relays(), 1u);
  EXPECT_TRUE(node.knows(5));
}

TEST(Mmb, InjectMarksKnownAndQueues) {
  MmbNode node;
  node.inject(9);
  EXPECT_TRUE(node.knows(9));
  EXPECT_EQ(node.pending_relays(), 1u);
  node.inject(9);  // idempotent
  EXPECT_EQ(node.pending_relays(), 1u);
}

TEST(Mmb, FloodsAcrossMultiHopLine) {
  // 5-hop line; content injected at one end must traverse relays to the
  // other end using nothing but the abstract MAC API.
  const auto g = graph::line(6, 1.0, 1.5);
  // Enough sending phases per hop that each relay's delivery is reliable
  // (relay-once floods have no retransmission to recover from a miss).
  const auto params = test_params(g, 0.1);
  lb::LbSimulation sim(g, std::make_unique<sim::BernoulliScheduler>(0.5),
                       params, 3);
  LbMacLayer mac(sim);
  std::vector<MmbNode> nodes(g.size());
  std::vector<MacApplication*> apps;
  for (auto& n : nodes) apps.push_back(&n);
  mac.attach(apps);

  nodes[0].inject(777);
  // Each hop needs roughly one ack period; give slack.
  mac.run_rounds((params.t_ack_phases + 2) * params.phase_length() * 8);
  for (std::size_t v = 0; v < g.size(); ++v) {
    EXPECT_TRUE(nodes[v].knows(777)) << "vertex " << v;
  }
  EXPECT_TRUE(sim.report().validity_ok);
  EXPECT_TRUE(sim.report().timely_ack_ok);
}

TEST(Mmb, MultipleSourcesAllDeliver) {
  const auto g = graph::clique_cluster(6);
  const auto params = test_params(g, 0.1);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, 4);
  LbMacLayer mac(sim);
  std::vector<MmbNode> nodes(g.size());
  std::vector<MacApplication*> apps;
  for (auto& n : nodes) apps.push_back(&n);
  mac.attach(apps);

  nodes[0].inject(100);
  nodes[3].inject(200);
  mac.run_rounds((params.t_ack_phases + 2) * params.phase_length() * 8);
  for (std::size_t v = 0; v < g.size(); ++v) {
    EXPECT_TRUE(nodes[v].knows(100)) << v;
    EXPECT_TRUE(nodes[v].knows(200)) << v;
  }
}

TEST(NeighborDiscovery, CliqueDiscoversAlmostEveryone) {
  const auto g = graph::clique_cluster(8);
  // Eight concurrent hellos contend for the channel; give each sender its
  // full contention-resolution budget.
  const auto params = test_params(g, 0.2);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, 5);
  LbMacLayer mac(sim);
  std::vector<NeighborDiscoveryNode> nodes;
  nodes.reserve(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) {
    nodes.emplace_back(/*identity=*/1000 + v);
  }
  std::vector<MacApplication*> apps;
  for (auto& n : nodes) apps.push_back(&n);
  mac.attach(apps);

  mac.run_rounds((params.t_ack_phases + 3) * params.phase_length());

  std::size_t edges = 0, discovered = 0;
  for (graph::Vertex u = 0; u < g.size(); ++u) {
    EXPECT_TRUE(nodes[u].hello_acked()) << u;
    for (graph::Vertex v : g.g_neighbors(u)) {
      ++edges;
      if (nodes[u].discovered().contains(1000 + v)) ++discovered;
    }
  }
  // Reliability gives each directed edge >= 1 - eps1 = 0.9 discovery
  // probability; require a safely weaker aggregate.
  EXPECT_GE(static_cast<double>(discovered) / static_cast<double>(edges),
            0.85)
      << discovered << "/" << edges;
}

TEST(LbMacLayer, AttachRequiresOneAppPerVertex) {
  const auto g = graph::clique_cluster(3);
  const auto params = test_params(g, 0.01);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, 6);
  LbMacLayer mac(sim);
  std::vector<MacApplication*> apps;  // wrong size
  EXPECT_DEATH(mac.attach(apps), "precondition");
}

}  // namespace
}  // namespace dg::amac
