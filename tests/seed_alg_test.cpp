// Unit tests for SeedAlg: parameter formulas, the runner state machine
// (leader election window, adoption, default decision), and the standalone
// SeedProcess.
#include <gtest/gtest.h>

#include <cmath>

#include "seed/seed_alg.h"
#include "sim/packet.h"
#include "util/rng.h"

namespace dg::seed {
namespace {

sim::Packet seed_packet(sim::ProcessId owner, std::uint64_t value) {
  return sim::Packet{owner, sim::SeedPayload{owner, value}};
}

// ---- parameters ----

TEST(SeedAlgParams, PhaseCountIsLogDelta) {
  EXPECT_EQ(SeedAlgParams::make(0.25, 8).num_phases, 3);
  EXPECT_EQ(SeedAlgParams::make(0.25, 16).num_phases, 4);
  EXPECT_EQ(SeedAlgParams::make(0.25, 17).num_phases, 5);  // rounded up
  EXPECT_EQ(SeedAlgParams::make(0.25, 1).num_phases, 1);   // clamped
}

TEST(SeedAlgParams, PhaseLengthIsC4LogSquared) {
  const auto p = SeedAlgParams::make(0.25, 8, /*c4=*/3.0);
  // log2(1/0.25) = 2 -> phase length = 3 * 4 = 12.
  EXPECT_EQ(p.phase_length, 12);
  EXPECT_EQ(p.total_rounds(), 36);
}

TEST(SeedAlgParams, BroadcastProbabilityIsInverseLog) {
  const auto p = SeedAlgParams::make(1.0 / 16.0, 8);
  EXPECT_DOUBLE_EQ(p.broadcast_prob, 0.25);  // 1/log2(16)
  EXPECT_LE(SeedAlgParams::make(0.25, 8).broadcast_prob, 0.5);
}

TEST(SeedAlgParams, RejectsOutOfRangeEps) {
  EXPECT_DEATH(SeedAlgParams::make(0.3, 8), "precondition");   // > 1/4
  EXPECT_DEATH(SeedAlgParams::make(0.0, 8), "precondition");
}

TEST(SeedAlgParams, ShrinkingEpsGrowsPhaseLength) {
  const auto loose = SeedAlgParams::make(0.25, 16);
  const auto tight = SeedAlgParams::make(0.01, 16);
  EXPECT_GT(tight.phase_length, loose.phase_length);
  EXPECT_EQ(tight.num_phases, loose.num_phases);  // depends only on Delta
}

// ---- runner state machine ----

TEST(SeedAlgRunner, NeverTransmitsInLeaderElectionRound) {
  // Leaders broadcast only in the *remaining* rounds of their phase, so no
  // transmission can ever happen in round 0 of any phase.
  const auto params = SeedAlgParams::make(0.25, 16);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    SeedAlgRunner runner(params, /*self=*/1, rng);
    for (int step = 0; step < params.total_rounds(); ++step) {
      auto out = runner.step_transmit(rng);
      if (step % params.phase_length == 0) {
        EXPECT_FALSE(out.has_value()) << "step " << step;
      }
      if (!out.has_value()) runner.step_receive(std::nullopt);
    }
  }
}

TEST(SeedAlgRunner, IsolatedNodeDecidesItself) {
  // With nothing ever received, the node either elects itself leader or
  // defaults -- both commit its own id and initial seed.
  const auto params = SeedAlgParams::make(0.25, 8);
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    SeedAlgRunner runner(params, /*self=*/99, rng);
    while (!runner.done()) {
      if (!runner.step_transmit(rng).has_value()) {
        runner.step_receive(std::nullopt);
      }
    }
    ASSERT_TRUE(runner.decision().has_value());
    EXPECT_EQ(runner.decision()->owner, 99u);
    EXPECT_EQ(runner.decision()->seed_value, runner.initial_seed());
    EXPECT_TRUE(runner.decision()->as_leader || runner.decision()->by_default);
  }
}

TEST(SeedAlgRunner, AdoptsHeardSeedAndGoesInactive) {
  const auto params = SeedAlgParams::make(0.25, 8);
  Rng rng(11);
  SeedAlgRunner runner(params, /*self=*/1, rng);
  // Step into round 2 of phase 1 (no self election at 1/Delta w.h.p. is not
  // guaranteed, so retry trials until the runner is still active).
  auto out = runner.step_transmit(rng);
  if (out.has_value() || runner.decision().has_value()) {
    GTEST_SKIP() << "node elected itself in this trial";
  }
  runner.step_receive(seed_packet(42, 0xbeef));
  ASSERT_TRUE(runner.decision().has_value());
  EXPECT_EQ(runner.decision()->owner, 42u);
  EXPECT_EQ(runner.decision()->seed_value, 0xbeefu);
  EXPECT_FALSE(runner.decision()->as_leader);
  EXPECT_FALSE(runner.decision()->by_default);
  EXPECT_EQ(runner.status(), SeedStatus::inactive);
}

TEST(SeedAlgRunner, FirstHeardSeedWins) {
  const auto params = SeedAlgParams::make(0.25, 8);
  Rng rng(13);
  SeedAlgRunner runner(params, 1, rng);
  if (runner.step_transmit(rng).has_value() ||
      runner.decision().has_value()) {
    GTEST_SKIP() << "node elected itself in this trial";
  }
  runner.step_receive(seed_packet(50, 1));
  if (!runner.done()) {
    runner.step_transmit(rng);
    runner.step_receive(seed_packet(60, 2));  // ignored: already decided
  }
  EXPECT_EQ(runner.decision()->owner, 50u);
}

TEST(SeedAlgRunner, HearingInLastRoundBeatsDefault) {
  // A seed heard in the very last round must be adopted, not defaulted.
  const auto params = SeedAlgParams::make(0.25, 1);  // 1 phase
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    SeedAlgRunner runner(params, 1, rng);
    bool self_elected = false;
    for (int step = 0; step < params.total_rounds(); ++step) {
      const auto out = runner.step_transmit(rng);
      if (runner.decision().has_value() &&
          runner.decision()->owner == 1u) {
        self_elected = true;
        break;
      }
      const bool last = step == params.total_rounds() - 1;
      if (!out.has_value()) {
        runner.step_receive(last ? std::optional<sim::Packet>(
                                       seed_packet(7, 0xfee))
                                 : std::nullopt);
      }
    }
    if (self_elected) continue;
    ASSERT_TRUE(runner.decision().has_value());
    EXPECT_EQ(runner.decision()->owner, 7u);
    EXPECT_FALSE(runner.decision()->by_default);
  }
}

TEST(SeedAlgRunner, LeaderElectionProbabilityRampsUp) {
  // Measure per-phase election frequency on isolated runners: phase h has
  // probability 2^-(num_phases - h + 1), so the last phase is 1/2.
  const auto params = SeedAlgParams::make(0.25, 16);  // 4 phases
  const int trials = 4000;
  std::vector<int> elected_in_phase(params.num_phases + 1, 0);
  Rng rng(17);
  for (int t = 0; t < trials; ++t) {
    SeedAlgRunner runner(params, 1, rng);
    for (int step = 0; step < params.total_rounds(); ++step) {
      const bool had = runner.decision().has_value();
      if (!runner.step_transmit(rng).has_value()) {
        runner.step_receive(std::nullopt);
      }
      if (!had && runner.decision().has_value() &&
          runner.decision()->as_leader) {
        elected_in_phase[step / params.phase_length + 1]++;
        break;
      }
    }
  }
  // Phase 1: p = 1/16; phase 2 conditional p = 1/8, ...
  EXPECT_NEAR(elected_in_phase[1] / double(trials), 1.0 / 16, 0.02);
  const double p2_conditional =
      elected_in_phase[2] / double(trials - elected_in_phase[1]);
  EXPECT_NEAR(p2_conditional, 1.0 / 8, 0.02);
}

TEST(SeedAlgRunner, StepsBeyondTotalAbort) {
  const auto params = SeedAlgParams::make(0.25, 2);
  Rng rng(3);
  SeedAlgRunner runner(params, 1, rng);
  for (int step = 0; step < params.total_rounds(); ++step) {
    if (!runner.step_transmit(rng).has_value()) {
      runner.step_receive(std::nullopt);
    }
  }
  EXPECT_TRUE(runner.done());
  EXPECT_DEATH(runner.step_transmit(rng), "precondition");
}

TEST(SeedAlgRunner, LeaderBroadcastsItsOwnSeed) {
  const auto params = SeedAlgParams::make(0.25, 4);
  Rng rng(23);
  for (int trial = 0; trial < 400; ++trial) {
    SeedAlgRunner runner(params, 77, rng);
    for (int step = 0; step < params.total_rounds(); ++step) {
      const auto out = runner.step_transmit(rng);
      if (out.has_value()) {
        EXPECT_EQ(out->owner, 77u);
        EXPECT_EQ(out->seed_value, runner.initial_seed());
        // Transmitting requires leader status; on the final round of the
        // phase the runner already advanced to inactive for the next round.
        const bool phase_last =
            step % params.phase_length == params.phase_length - 1;
        EXPECT_EQ(runner.status(),
                  phase_last ? SeedStatus::inactive : SeedStatus::leader);
      } else {
        runner.step_receive(std::nullopt);
      }
    }
  }
}

TEST(SeedAlgRunner, InitialSeedsAreIndependentDraws) {
  Rng rng(29);
  const auto params = SeedAlgParams::make(0.25, 4);
  SeedAlgRunner a(params, 1, rng), b(params, 2, rng);
  EXPECT_NE(a.initial_seed(), b.initial_seed());  // w.o.p.
}

}  // namespace
}  // namespace dg::seed
