// Tests for the baselines: the Decay schedule and process, the distance-2
// coloring, and the TDMA process -- including the adversary interaction the
// paper's Discussion section describes (the full-strength statistical
// version is experiment E6).
#include <gtest/gtest.h>

#include <memory>

#include "baseline/decay.h"
#include "baseline/tdma.h"
#include "graph/generators.h"
#include "lb/spec.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "stats/probes.h"

namespace dg::baseline {
namespace {

TEST(DecaySchedule, CyclesGeometricProbabilities) {
  EXPECT_DOUBLE_EQ(decay_probability(1, 3), 0.5);
  EXPECT_DOUBLE_EQ(decay_probability(2, 3), 0.25);
  EXPECT_DOUBLE_EQ(decay_probability(3, 3), 0.125);
  EXPECT_DOUBLE_EQ(decay_probability(4, 3), 0.5);  // cycle restarts
}

/// Collects ack/recv events from baseline processes.
class EventLog final : public lb::LbListener {
 public:
  void on_ack(graph::Vertex v, const sim::MessageId&, sim::Round r) override {
    acks.emplace_back(v, r);
  }
  void on_recv(graph::Vertex v, const sim::MessageId&, std::uint64_t,
               sim::Round r) override {
    recvs.emplace_back(v, r);
  }
  std::vector<std::pair<graph::Vertex, sim::Round>> acks;
  std::vector<std::pair<graph::Vertex, sim::Round>> recvs;
};

TEST(DecayProcess, DeliversOnCliqueWithReliableLinks) {
  const auto g = graph::clique_cluster(8);
  const auto ids = sim::assign_ids(g.size(), 3);
  EventLog log;
  DecayParams params;
  params.log_delta = 3;
  params.ack_rounds = 600;
  sim::ConstantScheduler sched(false);
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(std::make_unique<DecayProcess>(params, ids[v], v, &log));
  }
  sim::Engine engine(g, sched, std::move(procs), 11);
  dynamic_cast<DecayProcess&>(engine.process(0)).post_bcast(1);
  engine.run_rounds(params.ack_rounds);
  EXPECT_EQ(log.acks.size(), 1u);
  // All 7 listeners should have heard the lone transmitter.
  EXPECT_EQ(log.recvs.size(), 7u);
}

TEST(DecayProcess, BusyContractEnforced) {
  const auto ids = sim::assign_ids(1, 3);
  DecayParams params;
  DecayProcess p(params, ids[0], 0, nullptr);
  p.post_bcast(1);
  EXPECT_TRUE(p.busy());
  EXPECT_DEATH(p.post_bcast(2), "precondition");
}

TEST(DecayProcess, AckAfterExactBudget) {
  const auto g = graph::clique_cluster(2);
  const auto ids = sim::assign_ids(2, 3);
  EventLog log;
  DecayParams params;
  params.log_delta = 1;
  params.ack_rounds = 25;
  sim::ConstantScheduler sched(false);
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (graph::Vertex v = 0; v < 2; ++v) {
    procs.push_back(std::make_unique<DecayProcess>(params, ids[v], v, &log));
  }
  sim::Engine engine(g, sched, std::move(procs), 12);
  dynamic_cast<DecayProcess&>(engine.process(0)).post_bcast(1);
  engine.run_rounds(25);
  ASSERT_EQ(log.acks.size(), 1u);
  EXPECT_EQ(log.acks[0].second, 25);
}

// ---- distance-2 coloring / TDMA ----

class ColoringProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColoringProperty, NoColorRepeatsWithinTwoHops) {
  Rng rng(GetParam());
  graph::GeometricSpec spec;
  spec.n = 50;
  spec.side = 3.0;
  spec.r = 1.5;
  const auto g = graph::random_geometric(spec, rng);
  const auto color = distance2_coloring(g);
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    for (graph::Vertex w : g.gprime_neighbors(v)) {
      EXPECT_NE(color[v], color[w]);
      for (graph::Vertex x : g.gprime_neighbors(w)) {
        if (x != v) {
          EXPECT_NE(color[v], color[x]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringProperty,
                         ::testing::Values(21, 22, 23, 24));

TEST(Tdma, DeliversToAllGNeighborsInOneCycleDespiteAdversary) {
  // Even with every unreliable edge always present, distance-2 coloring
  // means no receiver ever sees two transmitters: delivery within one cycle
  // is deterministic.
  Rng rng(31);
  graph::GeometricSpec spec;
  spec.n = 30;
  spec.side = 2.5;
  spec.r = 1.5;
  const auto g = graph::random_geometric(spec, rng);
  const auto color = distance2_coloring(g);
  const int num_slots =
      1 + *std::max_element(color.begin(), color.end());
  const auto ids = sim::assign_ids(g.size(), 32);

  EventLog log;
  sim::ConstantScheduler sched(true);  // adversary floods all edges
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(std::make_unique<TdmaProcess>(
        color[v], num_slots, /*cycles=*/1, ids[v], v, &log));
  }
  sim::Engine engine(g, sched, std::move(procs), 33);
  // Saturate everyone simultaneously -- the worst case for collisions.
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    dynamic_cast<TdmaProcess&>(engine.process(v)).post_bcast(v);
  }
  engine.run_rounds(num_slots);

  // With the adversary flooding every unreliable edge and the coloring
  // preventing all collisions, each transmission reaches every G'-neighbor
  // exactly once: directed G'-edge deliveries, which dominate the required
  // directed G-edge deliveries.
  std::size_t expected = 0;
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    expected += g.gprime_neighbors(v).size();
  }
  EXPECT_EQ(log.recvs.size(), expected);
  EXPECT_EQ(log.acks.size(), g.size());
}

TEST(Tdma, SlotOutOfRangeRejected) {
  const auto ids = sim::assign_ids(1, 3);
  EXPECT_DEATH(TdmaProcess(5, 3, 1, ids[0], 0, nullptr), "precondition");
}

TEST(AntiScheduleVsDecay, AdversaryStallsProgress) {
  // Micro-version of E6, built exactly like the paper's Discussion section
  // describes.  Receiver 0 has one reliable sender (vertex 1) and k
  // unreliable neighbors (vertices 2..k+1), all saturated with Decay.  The
  // adversary knows Decay's fixed schedule and includes the unreliable
  // edges exactly in the high-probability rounds -- turning them into
  // collision storms -- while withdrawing them in the low-probability
  // rounds, where the lone reliable sender rarely speaks.
  constexpr int k = 64;
  constexpr int log_delta = 7;  // schedule 1/2 .. 1/128
  auto run = [](bool adversarial, std::uint64_t seed) {
    graph::DualGraph g(k + 2);
    g.add_reliable_edge(0, 1);
    for (graph::Vertex v = 2; v < k + 2; ++v) {
      g.add_unreliable_edge(0, v);
    }
    g.finalize();
    const auto ids = sim::assign_ids(g.size(), seed);
    DecayParams params;
    params.log_delta = log_delta;
    params.ack_rounds = 100000;

    std::unique_ptr<sim::LinkScheduler> sched;
    if (adversarial) {
      sched = std::make_unique<sim::AntiScheduleAdversary>(
          [](sim::Round t) { return decay_probability(t, log_delta); },
          /*pivot=*/1.0 / 16.0);  // flood p in {1/2, 1/4, 1/8}
    } else {
      sched = std::make_unique<sim::ConstantScheduler>(false);
    }
    EventLog log;
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (graph::Vertex v = 0; v < g.size(); ++v) {
      procs.push_back(
          std::make_unique<DecayProcess>(params, ids[v], v, &log));
    }
    sim::Engine engine(g, *sched, std::move(procs), seed);
    stats::FirstReceptionProbe probe(g.size());
    engine.add_observer(&probe);
    for (graph::Vertex v = 1; v < g.size(); ++v) {
      dynamic_cast<DecayProcess&>(engine.process(v)).post_bcast(v);
    }
    const sim::Round horizon = 2048;
    engine.run_rounds(horizon);
    const auto first = probe.first_reception(0);
    return first == 0 ? horizon + 1 : first;
  };

  double benign_total = 0, adv_total = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    benign_total += static_cast<double>(run(false, 1000 + t));
    adv_total += static_cast<double>(run(true, 1000 + t));
  }
  // Benign progress is a handful of rounds (lone reliable sender at p=1/2);
  // the adversary forces tens of rounds.  Require a conservative 3x gap.
  EXPECT_GT(adv_total / trials, 3.0 * (benign_total / trials))
      << "benign=" << benign_total / trials
      << " adversarial=" << adv_total / trials;
}

}  // namespace
}  // namespace dg::baseline
