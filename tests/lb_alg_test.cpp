// Unit tests for LbProcess: phase structure (preamble vs body traffic),
// sending-state lifecycle, ack timing, recv dedup, and the environment
// contract.
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"

namespace dg::lb {
namespace {

LbParams small_params(std::size_t delta, std::size_t delta_prime,
                      double ack_scale = 0.002) {
  LbScales scales;
  scales.ack_scale = ack_scale;
  return LbParams::calibrated(0.1, 1.5, delta, delta_prime, scales);
}

/// Observer asserting the phase discipline: seed packets only in preambles,
/// data packets only in bodies.
class PhaseDiscipline final : public sim::Observer {
 public:
  explicit PhaseDiscipline(const LbParams& params) : params_(&params) {}

  void on_transmit(sim::Round round, graph::Vertex,
                   const sim::Packet& packet) override {
    const std::int64_t pos = (round - 1) % params_->phase_length();
    const bool preamble = pos < params_->t_s;
    if (packet.is_seed()) {
      EXPECT_TRUE(preamble) << "seed packet in body at round " << round;
    } else {
      EXPECT_FALSE(preamble) << "data packet in preamble at round " << round;
    }
  }

 private:
  const LbParams* params_;
};

TEST(LbProcess, SeedPacketsOnlyInPreambleDataOnlyInBody) {
  const auto g = graph::clique_cluster(8);
  const auto params = small_params(g.delta(), g.delta_prime());
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   77);
  PhaseDiscipline discipline(params);
  sim.add_observer(&discipline);
  sim.post_bcast(0, 1);
  sim.run_phases(params.t_ack_phases + 1);
  EXPECT_EQ(sim.report().ack_count, 1u);
}

TEST(LbProcess, AckArrivesAtPhaseEndAfterTackPhases) {
  const auto g = graph::clique_cluster(4);
  const auto params = small_params(g.delta(), g.delta_prime());
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   78);
  sim.post_bcast(0, 5);  // input at round 1 == phase start
  sim.run_phases(params.t_ack_phases + 1);
  ASSERT_EQ(sim.checker().broadcasts().size(), 1u);
  const auto& record = sim.checker().broadcasts()[0];
  ASSERT_TRUE(record.acked());
  // Input at a phase boundary: sending starts immediately, so the ack lands
  // exactly at the end of phase t_ack_phases.
  EXPECT_EQ(record.ack_round, params.t_ack_phases * params.phase_length());
}

TEST(LbProcess, MidPhaseInputWaitsForNextBoundary) {
  const auto g = graph::clique_cluster(4);
  const auto params = small_params(g.delta(), g.delta_prime());
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   79);
  sim.run_rounds(3);  // mid-phase
  sim.post_bcast(0, 5);
  sim.run_phases(params.t_ack_phases + 2);
  const auto& record = sim.checker().broadcasts()[0];
  ASSERT_TRUE(record.acked());
  // Sending starts at the next boundary (end of phase 1), then runs
  // t_ack_phases full phases.
  EXPECT_EQ(record.ack_round,
            (params.t_ack_phases + 1) * params.phase_length());
  EXPECT_LE(record.ack_round - record.input_round, params.t_ack_bound());
}

TEST(LbProcess, BusyUntilAcked) {
  const auto g = graph::clique_cluster(4);
  const auto params = small_params(g.delta(), g.delta_prime());
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   80);
  EXPECT_FALSE(sim.busy(0));
  sim.post_bcast(0, 9);
  EXPECT_TRUE(sim.busy(0));
  sim.run_phases(params.t_ack_phases + 1);
  EXPECT_FALSE(sim.busy(0));
}

TEST(LbProcess, DoubleBcastViolatesContract) {
  const auto g = graph::clique_cluster(4);
  const auto params = small_params(g.delta(), g.delta_prime());
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   81);
  sim.post_bcast(0, 1);
  EXPECT_DEATH(sim.post_bcast(0, 2), "precondition");
}

TEST(LbProcess, MessagesAreUniquePerSender) {
  const auto g = graph::clique_cluster(4);
  const auto params = small_params(g.delta(), g.delta_prime());
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   82);
  const auto m1 = sim.post_bcast(0, 1);
  sim.run_phases(params.t_ack_phases + 1);
  const auto m2 = sim.post_bcast(0, 1);  // same content, new message
  EXPECT_EQ(m1.origin, m2.origin);
  EXPECT_NE(m1.seq, m2.seq);
}

TEST(LbProcess, RecvEmittedOncePerMessage) {
  const auto g = graph::clique_cluster(3);
  // Enough sending phases that the message is heard many times over.
  const auto params = small_params(g.delta(), g.delta_prime(), 0.5);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   83);
  sim.post_bcast(0, 42);
  sim.run_phases(params.t_ack_phases + 1);
  const auto& report = sim.report();
  // Two receivers, one message: at most one recv each, while raw receptions
  // pile up across the many body rounds.
  EXPECT_LE(report.recv_count, 2u);
  EXPECT_GT(report.raw_receptions, report.recv_count);
}

TEST(LbProcess, SequentialBroadcastsBothAcked) {
  const auto g = graph::clique_cluster(4);
  const auto params = small_params(g.delta(), g.delta_prime());
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   84);
  sim.post_bcast(0, 1);
  sim.run_phases(params.t_ack_phases + 1);
  sim.post_bcast(0, 2);
  sim.run_phases(params.t_ack_phases + 2);
  EXPECT_EQ(sim.report().ack_count, 2u);
  EXPECT_TRUE(sim.report().timely_ack_ok);
}

TEST(LbProcess, KeepBusySaturatesVertex) {
  const auto g = graph::clique_cluster(4);
  const auto params = small_params(g.delta(), g.delta_prime());
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   85);
  sim.keep_busy({0});
  sim.run_phases(3 * (params.t_ack_phases + 1));
  EXPECT_GE(sim.report().ack_count, 2u);
  // An ack may land on the very last executed round; one more round lets
  // the environment re-post, after which the vertex must be busy again.
  sim.run_rounds(1);
  EXPECT_TRUE(sim.busy(0));
}

TEST(LbProcess, PhaseSeedCommittedEachPhase) {
  const auto g = graph::clique_cluster(4);
  const auto params = small_params(g.delta(), g.delta_prime());
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   86);
  // During the first preamble: no committed seed yet.
  sim.run_rounds(params.t_s - 1);
  EXPECT_FALSE(sim.process(0).phase_seed().has_value());
  // First body round: committed.
  sim.run_rounds(2);
  ASSERT_TRUE(sim.process(0).phase_seed().has_value());
}

TEST(LbProcess, AblatedModeStillSatisfiesDeterministicSpec) {
  const auto g = graph::clique_cluster(6);
  auto params = small_params(g.delta(), g.delta_prime(), 0.01);
  params.use_shared_seeds = false;
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   87);
  sim.post_bcast(0, 7);
  sim.run_phases(params.t_ack_phases + 1);
  EXPECT_TRUE(sim.report().timely_ack_ok);
  EXPECT_TRUE(sim.report().validity_ok);
  EXPECT_EQ(sim.report().ack_count, 1u);
}

TEST(LbProcess, IdleNetworkStaysSilentInBody) {
  // No bcast inputs: body rounds carry no data packets at all.
  const auto g = graph::clique_cluster(5);
  const auto params = small_params(g.delta(), g.delta_prime());
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   88);
  sim.run_phases(2);
  EXPECT_EQ(sim.report().raw_receptions, 0u);
  EXPECT_EQ(sim.report().recv_count, 0u);
}

}  // namespace
}  // namespace dg::lb
