// Unit tests for src/util: RNG streams, seed-bit expansion, integer math,
// word-packed bitmaps, Wilson intervals, and table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "util/bitmap.h"
#include "util/bits.h"
#include "util/interval.h"
#include "util/intmath.h"
#include "util/rng.h"
#include "util/table.h"

namespace dg {
namespace {

// ---- splitmix / derive_seed ----

TEST(SplitMix, IsDeterministic) {
  EXPECT_EQ(splitmix64(12345), splitmix64(12345));
  EXPECT_NE(splitmix64(12345), splitmix64(12346));
}

TEST(SplitMix, DeriveSeedSeparatesStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 64; ++s) {
    seeds.insert(derive_seed(7, s));
  }
  EXPECT_EQ(seeds.size(), 64u);
}

// ---- Rng ----

TEST(Rng, SameSeedSameSequence) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.bits(), b.bits());
  }
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(99, 1), b(99, 2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceFrequencyNearP) {
  Rng rng(2);
  const int n = 20000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  const double freq = static_cast<double>(hits) / n;
  EXPECT_NEAR(freq, 0.25, 0.02);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, BetweenInclusive) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

// ---- SeedBits ----

TEST(SeedBits, SameSeedSameStream) {
  SeedBits a(42), b(42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.take(3), b.take(3));
  }
}

TEST(SeedBits, DifferentSeedsDiffer) {
  SeedBits a(42), b(43);
  int diff = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.take(8) != b.take(8)) ++diff;
  }
  EXPECT_GT(diff, 32);
}

TEST(SeedBits, TakeMatchesBitAt) {
  SeedBits s(777);
  std::vector<int> expanded;
  for (std::uint64_t i = 0; i < 64; ++i) {
    expanded.push_back(s.bit_at(i));
  }
  const std::uint64_t v = s.take(64);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ((v >> (63 - i)) & 1, static_cast<std::uint64_t>(expanded[i]));
  }
}

TEST(SeedBits, SeekRealigns) {
  SeedBits a(9), b(9);
  a.take(13);
  a.seek(5);
  b.seek(5);
  EXPECT_EQ(a.take(20), b.take(20));
}

TEST(SeedBits, TakeZeroBitsIsZero) {
  SeedBits s(1);
  EXPECT_EQ(s.take(0), 0u);
  EXPECT_EQ(s.cursor(), 0u);
}

TEST(SeedBits, AllZeroFrequencyMatchesTwoToMinusK) {
  // Across many seeds, P(take_all_zero(k)) should be close to 2^-k.
  const int k = 3;
  int hits = 0;
  const int n = 8000;
  for (int seed = 0; seed < n; ++seed) {
    SeedBits s(static_cast<std::uint64_t>(seed) * 2654435761u + 17);
    if (s.take_all_zero(k)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, std::ldexp(1.0, -k), 0.02);
}

TEST(SeedBits, BitsAreBalanced) {
  // Bit frequency over a long stream from one seed.
  SeedBits s(123456789);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ones += static_cast<int>(s.take(1));
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.02);
}

// ---- intmath ----

TEST(IntMath, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(IntMath, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(IntMath, Pow2Ceil) {
  EXPECT_EQ(pow2_ceil(1), 1u);
  EXPECT_EQ(pow2_ceil(2), 2u);
  EXPECT_EQ(pow2_ceil(3), 4u);
  EXPECT_EQ(pow2_ceil(17), 32u);
}

TEST(IntMath, Log2Clamped) {
  EXPECT_DOUBLE_EQ(log2_clamped(0.5, 1.0), 1.0);   // below 1 clamps
  EXPECT_DOUBLE_EQ(log2_clamped(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(log2_clamped(8.0), 3.0);
  EXPECT_DOUBLE_EQ(log2_clamped(2.0, 2.0), 2.0);   // floor dominates
}

TEST(IntMath, CeilToInt) {
  EXPECT_EQ(ceil_to_int(0.1), 1);
  EXPECT_EQ(ceil_to_int(1.0), 1);
  EXPECT_EQ(ceil_to_int(1.00001), 2);
  EXPECT_EQ(ceil_to_int(-3.5), 1);  // clamped to >= 1
}

TEST(IntMath, RoundUp) {
  EXPECT_EQ(round_up(0, 5), 0);
  EXPECT_EQ(round_up(1, 5), 5);
  EXPECT_EQ(round_up(5, 5), 5);
  EXPECT_EQ(round_up(6, 5), 10);
}

// ---- Wilson intervals ----

TEST(Wilson, ContainsTruthForFairCoin) {
  const auto iv = wilson_interval(500, 1000, 2.58);
  EXPECT_TRUE(iv.contains(0.5));
  EXPECT_LT(iv.width(), 0.1);
}

TEST(Wilson, ExtremesClamp) {
  const auto all = wilson_interval(100, 100);
  EXPECT_LE(all.hi, 1.0);
  EXPECT_GT(all.lo, 0.9);
  const auto none = wilson_interval(0, 100);
  EXPECT_GE(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.1);
}

TEST(Wilson, NarrowsWithTrials) {
  const auto small = wilson_interval(5, 10);
  const auto big = wilson_interval(5000, 10000);
  EXPECT_LT(big.width(), small.width());
}

TEST(BernoulliTally, TracksCounts) {
  BernoulliTally t;
  for (int i = 0; i < 9; ++i) t.record(true);
  t.record(false);
  EXPECT_EQ(t.trials(), 10u);
  EXPECT_EQ(t.successes(), 9u);
  EXPECT_DOUBLE_EQ(t.frequency(), 0.9);
}

TEST(BernoulliTally, ConsistencyCheck) {
  BernoulliTally t;
  for (int i = 0; i < 95; ++i) t.record(true);
  for (int i = 0; i < 5; ++i) t.record(false);
  EXPECT_TRUE(t.consistent_with_at_least(0.9));
  EXPECT_FALSE(t.consistent_with_at_least(0.9999));
  BernoulliTally empty;
  EXPECT_TRUE(empty.consistent_with_at_least(1.0));  // vacuous
}

// ---- Table ----

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{42});
  t.row().cell("b").cell(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell(1).cell(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CellBeyondHeadersAborts) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_DEATH(t.cell("overflow"), "precondition");
}

// ---- Bitmap ----

TEST(Bitmap, SetTestResetAcrossWordBoundary) {
  Bitmap b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.word_count(), 3u);
  for (std::size_t i : {0u, 63u, 64u, 127u, 128u, 129u}) {
    EXPECT_FALSE(b.test(i));
    b.set(i);
    EXPECT_TRUE(b.test(i));
  }
  EXPECT_EQ(b.count(), 6u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 5u);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitmap, SetAllMasksTailBits) {
  for (std::size_t size : {1u, 63u, 64u, 65u, 130u}) {
    Bitmap b(size);
    b.set_all();
    EXPECT_EQ(b.count(), size) << "size " << size;
    for (std::size_t i = 0; i < size; ++i) EXPECT_TRUE(b.test(i));
    // Tail bits beyond size() stay zero so word scans are exact.
    if (size % 64 != 0) {
      EXPECT_EQ(b.words().back() >> (size % 64), 0u);
    }
  }
}

TEST(Bitmap, ForEachSetVisitsInOrder) {
  Bitmap b(200);
  const std::vector<std::size_t> expect = {0, 5, 63, 64, 100, 199};
  for (std::size_t i : expect) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expect);
}

TEST(Bitmap, WordMaskCoversPartialLastWord) {
  Bitmap b(70);
  EXPECT_EQ(b.word_mask(0), ~0ULL);
  EXPECT_EQ(b.word_mask(1), (1ULL << 6) - 1);
  Bitmap exact(128);
  EXPECT_EQ(exact.word_mask(1), ~0ULL);
}

TEST(Bitmap, EqualityComparesSizeAndBits) {
  Bitmap a(70), b(70), c(71);
  a.set(69);
  EXPECT_FALSE(a == b);
  b.set(69);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace dg
