// Tests for the statistics module: summaries, quantiles, the Monte Carlo
// runner (determinism, parallel/sequential equivalence), and the probes.
#include <gtest/gtest.h>

#include "sim/packet.h"
#include "stats/montecarlo.h"
#include "stats/probes.h"
#include "stats/summary.h"

namespace dg::stats {
namespace {

TEST(Summary, BasicMoments) {
  const auto s = Summary::of({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Summary, EmptyAndSingle) {
  EXPECT_EQ(Summary::of({}).count, 0u);
  const auto s = Summary::of({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 7.0);
}

TEST(Summary, UnsortedInputHandled) {
  const auto s = Summary::of({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(QuantileSorted, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 10.0);
}

TEST(RunTrials, DeterministicAcrossRuns) {
  auto fn = [](std::size_t i, std::uint64_t seed) {
    return static_cast<double>(splitmix64(seed) % 1000) + i;
  };
  const auto a = run_trials(64, 5, fn);
  const auto b = run_trials(64, 5, fn);
  EXPECT_EQ(a, b);
  const auto c = run_trials(64, 6, fn);
  EXPECT_NE(a, c);
}

TEST(RunTrials, ResultsIndexedByTrial) {
  const auto r = run_trials(
      16, 1, [](std::size_t i, std::uint64_t) { return i; });
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i], i);
  }
}

TEST(RunTrials, WorkerCapDoesNotChangeResults) {
  // The scenario runner's --threads guarantee: per-trial seeds depend on
  // the trial index only, so any worker cap yields identical results.
  auto fn = [](std::size_t i, std::uint64_t seed) {
    return static_cast<double>(splitmix64(seed + i) % 100000);
  };
  const auto one = run_trials(37, 11, fn, 1);
  const auto three = run_trials(37, 11, fn, 3);
  const auto many = run_trials(37, 11, fn, 64);
  const auto dflt = run_trials(37, 11, fn);
  EXPECT_EQ(one, three);
  EXPECT_EQ(one, many);
  EXPECT_EQ(one, dflt);
}

TEST(FirstReceptionProbe, RecordsOnlyFirstDataPacket) {
  FirstReceptionProbe probe(2);
  const sim::Packet data{1, sim::DataPayload{sim::MessageId{1, 1}, 5}};
  const sim::Packet seed{1, sim::SeedPayload{1, 9}};
  probe.on_receive(3, 0, 1, seed);   // ignored: not data
  EXPECT_EQ(probe.first_reception(0), 0);
  probe.on_receive(5, 0, 1, data);
  probe.on_receive(9, 0, 1, data);   // not overwritten
  EXPECT_EQ(probe.first_reception(0), 5);
  EXPECT_EQ(probe.first_reception(1), 0);
}

TEST(ContentReceptionProbe, FiltersByContent) {
  ContentReceptionProbe probe(1, /*tracked_content=*/42);
  const sim::Packet other{1, sim::DataPayload{sim::MessageId{1, 1}, 5}};
  const sim::Packet match{1, sim::DataPayload{sim::MessageId{1, 2}, 42}};
  probe.on_receive(2, 0, 1, other);
  EXPECT_EQ(probe.first_reception(0), 0);
  probe.on_receive(4, 0, 1, match);
  EXPECT_EQ(probe.first_reception(0), 4);
}

TEST(TrafficProbe, CountsAllEventKinds) {
  TrafficProbe probe;
  const sim::Packet data{1, sim::DataPayload{sim::MessageId{1, 1}, 5}};
  probe.on_transmit(1, 0, data);
  probe.on_transmit(1, 1, data);
  probe.on_receive(1, 2, 0, data);
  probe.on_silence(1, 3, true);
  probe.on_silence(1, 4, false);
  EXPECT_EQ(probe.transmissions(), 2u);
  EXPECT_EQ(probe.receptions(), 1u);
  EXPECT_EQ(probe.collisions(), 1u);
}

}  // namespace
}  // namespace dg::stats
