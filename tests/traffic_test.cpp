// Tests for the traffic subsystem (src/traffic/): queue invariants (FIFO
// admission order, one-outstanding admission, capacity drops), abort
// interaction with queued messages, MessageId uniqueness under heavy
// enqueue, bit-for-bit equivalence of the Saturate source with the
// historical hard-wired keep_busy environment, and the shared traffic
// spec grammar.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"
#include "traffic/injector.h"
#include "traffic/source.h"
#include "traffic/spec.h"

namespace dg::traffic {
namespace {

lb::LbParams small_params(const graph::DualGraph& g) {
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  return lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(),
                                  scales);
}

std::unique_ptr<lb::LbSimulation> make_sim(const graph::DualGraph& g,
                                           std::uint64_t seed) {
  return std::make_unique<lb::LbSimulation>(
      g, std::make_unique<sim::BernoulliScheduler>(0.5), small_params(g),
      seed);
}

// ---- queue invariants ----

TEST(Injector, FifoAdmissionOneOutstanding) {
  const auto g = graph::clique_cluster(4);
  auto sim = make_sim(g, 11);
  // Three scripted messages at vertex 0 in round 1: the queue must admit
  // them strictly in enqueue order, one service period at a time.
  std::vector<ScriptSource::Post> posts{
      {1, 0, 101}, {1, 0, 102}, {1, 0, 103}};
  sim->add_traffic(std::make_unique<ScriptSource>(std::move(posts)));
  sim->run_phases(10);

  const auto& recs = sim->traffic().messages();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].content, 101u);
  EXPECT_EQ(recs[1].content, 102u);
  EXPECT_EQ(recs[2].content, 103u);
  // FIFO: admissions in enqueue order, and never while a predecessor is
  // still outstanding (admit follows the predecessor's ack).
  ASSERT_TRUE(recs[0].admitted());
  EXPECT_EQ(recs[0].admit_round, 1);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    if (!recs[i].admitted()) continue;
    EXPECT_GT(recs[i].admit_round, recs[i - 1].admit_round);
    ASSERT_TRUE(recs[i - 1].acked());
    EXPECT_GT(recs[i].admit_round, recs[i - 1].ack_round);
  }
  const auto& ts = sim->traffic().stats();
  EXPECT_EQ(ts.offered, 3u);
  EXPECT_EQ(ts.enqueued, 3u);
  EXPECT_EQ(ts.dropped, 0u);
  EXPECT_GE(ts.acked, 1u);
}

TEST(Injector, CapacityDropsAreCounted) {
  const auto g = graph::clique_cluster(4);
  auto sim = make_sim(g, 12);
  sim->traffic().set_queue_capacity(2);
  std::vector<ScriptSource::Post> posts;
  for (int i = 0; i < 6; ++i) {
    posts.push_back({1, 0, static_cast<std::uint64_t>(200 + i)});
  }
  sim->add_traffic(std::make_unique<ScriptSource>(std::move(posts)));
  sim->run_rounds(2);
  const auto& ts = sim->traffic().stats();
  EXPECT_EQ(ts.offered, 6u);
  // Round 1: the whole burst is offered before the admission drain, so
  // the capacity-2 queue accepts two, drops four, then hands one to the
  // idle service -- leaving one queued (the sampled steady-state depth).
  EXPECT_EQ(ts.enqueued, 2u);
  EXPECT_EQ(ts.dropped, 4u);
  EXPECT_EQ(ts.admitted, 1u);
  EXPECT_EQ(ts.depth_max, 1u);
}

TEST(Injector, AbortFreesTheServiceForQueuedMessages) {
  const auto g = graph::clique_cluster(4);
  auto sim = make_sim(g, 13);
  std::vector<ScriptSource::Post> posts{{1, 0, 301}, {1, 0, 302}};
  sim->add_traffic(std::make_unique<ScriptSource>(std::move(posts)));
  sim->run_rounds(2);  // 301 admitted round 1; 302 queued behind it

  const auto& recs = sim->traffic().messages();
  ASSERT_EQ(recs.size(), 2u);
  ASSERT_TRUE(recs[0].admitted());
  ASSERT_FALSE(recs[1].admitted());

  const auto aborted = sim->post_abort(0);
  ASSERT_TRUE(aborted.has_value());
  EXPECT_EQ(*aborted, recs[0].id);
  sim->run_rounds(1);  // the freed service admits the queued message

  const auto& after = sim->traffic().messages();
  EXPECT_TRUE(after[0].aborted());
  EXPECT_FALSE(after[0].acked());
  ASSERT_TRUE(after[1].admitted());
  EXPECT_EQ(after[1].admit_round, after[0].abort_round);
  EXPECT_EQ(sim->traffic().stats().aborted, 1u);
}

TEST(Injector, ConsecutiveRoundAbortsAdmitInFifoOrder) {
  const auto g = graph::clique_cluster(4);
  auto sim = make_sim(g, 15);
  std::vector<ScriptSource::Post> posts{
      {1, 0, 401}, {1, 0, 402}, {1, 0, 403}};
  sim->add_traffic(std::make_unique<ScriptSource>(std::move(posts)));
  // Abort vertex 0's outstanding broadcast in two consecutive rounds: each
  // abort hits a message that is admitted but not yet acked, and each
  // freed service admits the FIFO successor in the abort's own round.
  sim->run_rounds(1);  // 401 admitted round 1
  ASSERT_TRUE(sim->busy(0));
  const auto a1 = sim->post_abort(0);
  ASSERT_TRUE(a1.has_value());
  sim->run_rounds(1);  // abort lands round 2; 402 admitted round 2
  const auto a2 = sim->post_abort(0);
  ASSERT_TRUE(a2.has_value());
  EXPECT_NE(*a1, *a2);
  sim->run_rounds(1);  // abort lands round 3; 403 admitted round 3
  sim->run_phases(10);

  const auto& recs = sim->traffic().messages();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].admit_round, 1);
  EXPECT_EQ(recs[0].abort_round, 2);
  EXPECT_FALSE(recs[0].acked());
  EXPECT_EQ(recs[1].admit_round, 2);
  EXPECT_EQ(recs[1].abort_round, 3);
  EXPECT_FALSE(recs[1].acked());
  EXPECT_EQ(recs[2].admit_round, 3);
  EXPECT_FALSE(recs[2].aborted());
  EXPECT_TRUE(recs[2].acked());
  const auto& ts = sim->traffic().stats();
  EXPECT_EQ(ts.offered, 3u);
  EXPECT_EQ(ts.admitted, 3u);
  EXPECT_EQ(ts.aborted, 2u);
  EXPECT_EQ(ts.acked, 1u);
  // Plain environment aborts never trigger the crash-requeue path.
  EXPECT_EQ(ts.crash_requeues, 0u);
  EXPECT_EQ(ts.readmitted, 0u);
}

TEST(Injector, MessageIdsUniqueUnderHeavyEnqueue) {
  const auto g = graph::clique_cluster(6);
  auto sim = make_sim(g, 14);
  // Well past the service capacity: every node's queue stays hot, so
  // admissions keep coming from all origins for the whole horizon.
  sim->add_traffic(std::make_unique<PoissonSource>(2.0, 99));
  sim->run_phases(6);

  const auto& recs = sim->traffic().messages();
  std::set<std::pair<sim::ProcessId, std::uint32_t>> ids;
  std::size_t admitted = 0;
  for (const auto& rec : recs) {
    if (!rec.admitted()) continue;
    ++admitted;
    EXPECT_TRUE(ids.insert({rec.id.origin, rec.id.seq}).second)
        << "duplicate MessageId (origin " << rec.id.origin << ", seq "
        << rec.id.seq << ")";
  }
  EXPECT_GE(admitted, 6u);  // every vertex admitted at least once
  EXPECT_EQ(sim->traffic().stats().admitted, admitted);
  EXPECT_GT(sim->traffic().stats().offered,
            sim->traffic().stats().admitted);
}

// ---- Saturate vs the historical keep_busy environment ----

/// The pre-refactor LbSimulation::run_round environment loop, reproduced
/// verbatim through the direct post_bcast API: the Saturate source must
/// match it bit for bit (same contents, same rounds, same counters).
TEST(Saturate, MatchesLegacyKeepBusyBitForBit) {
  const auto g = graph::grid(5, 4, 1.0, 1.5);
  const std::vector<graph::Vertex> busy{0, 7, 13};

  auto legacy = make_sim(g, 2026);
  std::vector<std::uint64_t> counter(g.size(), 0);
  legacy->set_environment(
      [&busy, &counter](lb::LbSimulation& s, sim::Round) {
        for (graph::Vertex v : busy) {
          if (!s.busy(v)) s.post_bcast(v, ++counter[v]);
        }
      });

  auto traffic = make_sim(g, 2026);
  traffic->add_traffic(std::make_unique<SaturateSource>(busy));

  legacy->run_phases(8);
  traffic->run_phases(8);

  const auto& lr = legacy->report();
  const auto& tr = traffic->report();
  EXPECT_EQ(lr.bcast_count, tr.bcast_count);
  EXPECT_EQ(lr.ack_count, tr.ack_count);
  EXPECT_EQ(lr.recv_count, tr.recv_count);
  EXPECT_EQ(lr.raw_receptions, tr.raw_receptions);
  EXPECT_EQ(lr.violations, tr.violations);
  EXPECT_EQ(lr.reliability.successes(), tr.reliability.successes());
  EXPECT_EQ(lr.reliability.trials(), tr.reliability.trials());
  EXPECT_EQ(lr.progress.successes(), tr.progress.successes());
  EXPECT_EQ(lr.progress.trials(), tr.progress.trials());

  const auto& lb_recs = legacy->checker().broadcasts();
  const auto& tb_recs = traffic->checker().broadcasts();
  ASSERT_EQ(lb_recs.size(), tb_recs.size());
  // The admission loop drains by vertex index while the legacy loop posts
  // in list order; compare as (origin, input, ack) multisets per round.
  std::multiset<std::tuple<graph::Vertex, sim::Round, sim::Round>> l, t;
  for (const auto& rec : lb_recs) {
    l.insert({rec.origin, rec.input_round, rec.ack_round});
  }
  for (const auto& rec : tb_recs) {
    t.insert({rec.origin, rec.input_round, rec.ack_round});
  }
  EXPECT_EQ(l, t);
}

// ---- spec grammar ----

TEST(TrafficSpec, ParsesEveryKindWithDefaults) {
  TrafficSpec s;
  EXPECT_EQ(parse_traffic_spec("saturate", s), "");
  EXPECT_EQ(s.kind, TrafficSpec::Kind::kSaturate);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(parse_traffic_spec("saturate:3", s), "");
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(parse_traffic_spec("poisson:0.25", s), "");
  EXPECT_EQ(s.kind, TrafficSpec::Kind::kPoisson);
  EXPECT_DOUBLE_EQ(s.rate, 0.25);
  EXPECT_EQ(parse_traffic_spec("burst:32:2:3", s), "");
  EXPECT_EQ(s.kind, TrafficSpec::Kind::kBurst);
  EXPECT_EQ(s.period, 32);
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(parse_traffic_spec("hotspot:0.4:0.75:2", s), "");
  EXPECT_EQ(s.kind, TrafficSpec::Kind::kHotspot);
  EXPECT_DOUBLE_EQ(s.bias, 0.75);
  EXPECT_EQ(s.hot, 2u);
}

TEST(TrafficSpec, RejectionsListValidSpecs) {
  TrafficSpec s;
  for (const char* bad :
       {"", "poison:0.5", "saturate:0", "poisson:-1", "burst:0:1",
        "hotspot:0.5:2", "saturate:1:2",
        // Rates past the exact-sampler bound (256) are rejected, not
        // silently clipped by exp(-rate) underflow.
        "poisson:1000", "hotspot:1000:0.5",
        // Integer arguments past 2^31 are rejected here; the
        // double->integer casts would otherwise be undefined.
        "saturate:1e20", "burst:1e300:1:1", "hotspot:0.5:0.5:1e20"}) {
    const std::string err = parse_traffic_spec(bad, s);
    EXPECT_FALSE(err.empty()) << bad;
  }
  const std::string err = parse_traffic_spec("poison:0.5", s);
  EXPECT_NE(err.find("saturate[:count]"), std::string::npos) << err;
  EXPECT_NE(err.find("hotspot:rate:bias[:hot]"), std::string::npos) << err;
}

TEST(TrafficSpec, SpreadVerticesMatchesDglabPlacement) {
  EXPECT_EQ(spread_vertices(1, 8), (std::vector<graph::Vertex>{0}));
  EXPECT_EQ(spread_vertices(3, 9), (std::vector<graph::Vertex>{0, 3, 6}));
  EXPECT_EQ(spread_vertices(4, 4), (std::vector<graph::Vertex>{0, 1, 2, 3}));
}

TEST(TrafficSpec, BuiltSourcesAreSeedDeterministic) {
  TrafficSpec s;
  ASSERT_EQ(parse_traffic_spec("hotspot:1.5:0.5:0", s), "");
  const auto g = graph::clique_cluster(5);
  auto run = [&](std::uint64_t seed) {
    auto sim = make_sim(g, 77);
    sim->add_traffic(build_source(s, g.size(), seed));
    sim->run_phases(2);
    std::vector<std::pair<graph::Vertex, sim::Round>> arrivals;
    for (const auto& rec : sim->traffic().messages()) {
      arrivals.emplace_back(rec.vertex, rec.enqueue_round);
    }
    return arrivals;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace dg::traffic
