// Negative and differential tests for the composable round pipeline:
// the splice grammar (sim/splice.h), the load-time write-set validator,
// the scenario-level "stages" key (scn/scenario.cpp), and the runtime
// contract that spliced stages preserve -- a noop splice is byte-free and
// a dedup splice is byte-identical at every thread count.
//
// The error-message assertions here are deliberately string-y: the
// validator's whole job is an *actionable* rejection (name the stage, the
// slab, the owning core stage, the valid alternatives), so the wording is
// part of the contract the CLIs and scenario loader surface to users.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "obs/registry.h"
#include "scn/scenario.h"
#include "sim/engine.h"
#include "sim/engine_config.h"
#include "sim/scheduler.h"
#include "sim/slab.h"
#include "sim/splice.h"
#include "util/rng.h"

namespace dg::sim {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 3, 8};

SpliceSpec parse_ok(const std::string& text) {
  SpliceSpec spec;
  std::string error;
  const bool ok = parse_splice_spec(text, spec, error);
  EXPECT_TRUE(ok) << text << ": " << error;
  return spec;
}

std::string parse_error(const std::string& text) {
  SpliceSpec spec;
  std::string error;
  EXPECT_FALSE(parse_splice_spec(text, spec, error)) << text;
  EXPECT_FALSE(error.empty()) << text;
  return error;
}

// ---- the splice grammar ----

TEST(SpliceGrammar, AcceptedFormsAndDefaults) {
  const SpliceSpec noop = parse_ok("noop");
  EXPECT_EQ(noop.kind, SpliceSpec::Kind::kNoop);

  const SpliceSpec dedup = parse_ok("dedup");
  EXPECT_EQ(dedup.kind, SpliceSpec::Kind::kDedup);
  EXPECT_EQ(dedup.window, 8u);
  EXPECT_EQ(dedup.mask_slab, Slab::kDeliveryMask);

  EXPECT_EQ(parse_ok("dedup:16").window, 16u);
  EXPECT_EQ(parse_ok("dedup:1:delivery_mask").mask_slab, Slab::kDeliveryMask);

  const SpliceSpec tap = parse_ok("tap:transmit_bitmap:0,5,63");
  EXPECT_EQ(tap.kind, SpliceSpec::Kind::kTap);
  EXPECT_EQ(tap.tap_slab, Slab::kTransmitBitmap);
  EXPECT_EQ(tap.vertices, (std::vector<std::uint32_t>{0, 5, 63}));
  EXPECT_TRUE(parse_ok("tap:heard_words").vertices.empty());
}

TEST(SpliceGrammar, UnknownStageKindListsValidKinds) {
  const std::string error = parse_error("dedupe");
  EXPECT_NE(error.find("unknown stage 'dedupe'"), std::string::npos) << error;
  EXPECT_NE(error.find(valid_splice_kinds()), std::string::npos) << error;
}

TEST(SpliceGrammar, BadDedupWindowIsActionable) {
  for (const char* text : {"dedup:0", "dedup:-3", "dedup:2.5", "dedup:x",
                           "dedup:5000"}) {
    const std::string error = parse_error(text);
    EXPECT_NE(error.find("bad window"), std::string::npos)
        << text << ": " << error;
  }
  EXPECT_NE(parse_error("dedup:4:delivery_mask:9").find("too many arguments"),
            std::string::npos);
}

TEST(SpliceGrammar, UnknownSlabListsValidSlabNames) {
  for (const char* text : {"dedup:4:heard_wordz", "tap:bitmap"}) {
    const std::string error = parse_error(text);
    EXPECT_NE(error.find("unknown slab"), std::string::npos)
        << text << ": " << error;
    EXPECT_NE(error.find(valid_slab_names()), std::string::npos)
        << text << ": " << error;
  }
}

TEST(SpliceGrammar, TapArgumentErrors) {
  EXPECT_NE(parse_error("tap").find("missing slab"), std::string::npos);
  EXPECT_NE(parse_error("tap:packet_slab").find("not tappable"),
            std::string::npos);
  // The frontier's activity mask is engine-internal scratch whose contents
  // are only meaningful mid-round on the sparse path; it is not tappable.
  EXPECT_NE(parse_error("tap:activity_mask").find("not tappable"),
            std::string::npos);
  EXPECT_NE(parse_error("tap:heard_words:1,x").find("bad vertex 'x'"),
            std::string::npos);
  EXPECT_NE(parse_error("noop:1").find("takes no arguments"),
            std::string::npos);
}

// ---- the write-set validator ----

TEST(SpliceValidator, OverlappingWriteSetsNameBothStagesAndTheSlab) {
  const std::vector<SpliceSpec> specs = {parse_ok("dedup"),
                                         parse_ok("dedup:4")};
  EXPECT_EQ(validate_splice_specs(specs),
            "stages 'dedup' and 'dedup' both write slab(s): delivery_mask");
}

TEST(SpliceValidator, CoreOwnedSlabWriteNamesTheOwner) {
  // A dedup pointed at a core-owned slab must be rejected naming the
  // owning core stage, for each ownership class in the catalog.
  struct Case {
    const char* text;
    const char* slab;
    const char* owner;
  };
  for (const Case& c :
       {Case{"dedup:4:heard_words", "heard_words", "compute"},
        Case{"dedup:4:transmit_bitmap", "transmit_bitmap", "transmit"},
        Case{"dedup:4:crashed_bitmap", "crashed_bitmap", "fault"},
        Case{"dedup:4:activity_mask", "activity_mask", "frontier"}}) {
    const std::vector<SpliceSpec> specs = {parse_ok(c.text)};
    const std::string error = validate_splice_specs(specs);
    EXPECT_NE(error.find(std::string("writes slab '") + c.slab + "'"),
              std::string::npos)
        << c.text << ": " << error;
    EXPECT_NE(error.find(std::string("owned by core stage '") + c.owner + "'"),
              std::string::npos)
        << c.text << ": " << error;
  }
}

TEST(SpliceValidator, ReadOnlyStagesComposeFreely) {
  // Taps and noops write nothing, so any number of them composes with one
  // mask writer.
  const std::vector<SpliceSpec> specs = {
      parse_ok("noop"), parse_ok("tap:transmit_bitmap"),
      parse_ok("tap:heard_words"), parse_ok("dedup:4"),
      parse_ok("tap:crashed_bitmap")};
  EXPECT_EQ(validate_splice_specs(specs), "");
}

// ---- Engine::splice_stage install-time rejection ----

/// Coin-flip transmitter that retransmits ONE fixed packet (same content
/// key every time), so a dedup cache has duplicates to suppress; ledgers
/// deliveries vs null indicators so suppression is process-visible.
class RepeatProcess final : public Process {
 public:
  explicit RepeatProcess(ProcessId id) : Process(id) {}

  std::optional<Packet> transmit(RoundContext& ctx) override {
    if (!ctx.rng().chance(0.5)) return std::nullopt;
    return Packet{id(), DataPayload{MessageId{id(), 1}, id() * 11ULL}};
  }
  void receive(const std::optional<Packet>& packet,
               RoundContext& ctx) override {
    if (packet.has_value() && packet->is_data()) {
      ++deliveries_;
      heard_hash_ = splitmix64(heard_hash_ ^ packet->data().content ^
                               static_cast<std::uint64_t>(ctx.round()));
    } else {
      ++nulls_;
    }
  }
  bool shard_safe() const override { return true; }

  std::uint64_t heard_hash() const noexcept { return heard_hash_; }
  std::uint64_t deliveries() const noexcept { return deliveries_; }
  std::uint64_t nulls() const noexcept { return nulls_; }

 private:
  std::uint64_t deliveries_ = 0;
  std::uint64_t nulls_ = 0;
  std::uint64_t heard_hash_ = 0x9e3779b97f4a7c15ULL;
};

std::vector<std::unique_ptr<Process>> repeat_procs(std::size_t n,
                                                   std::uint64_t id_seed) {
  const auto ids = assign_ids(n, id_seed);
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<RepeatProcess>(ids[v]));
  }
  return procs;
}

TEST(EngineSplice, ConflictingSpliceRejectedAtInstallPipelineUntouched) {
  const auto g = graph::grid(8, 8, 1.0, 1.5);
  BernoulliScheduler sched(0.5);
  Engine engine(g, sched, repeat_procs(g.size(), 0x1157ULL), 0x1157);

  EXPECT_EQ(engine.splice_stage(parse_ok("dedup")), "");
  ASSERT_EQ(engine.splices().size(), 1u);

  const std::string error = engine.splice_stage(parse_ok("dedup:4"));
  EXPECT_NE(error.find("both write slab(s): delivery_mask"),
            std::string::npos)
      << error;
  EXPECT_EQ(engine.splices().size(), 1u) << "failed splice must not install";

  engine.run_rounds(8);  // the surviving pipeline still runs
  EXPECT_EQ(engine.round(), 8u);
}

// ---- the scenario-level "stages" key ----

std::string stages_campaign(const std::string& stages_json) {
  return R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "algorithm": {"type": "decay_progress", "log_delta": 4,
                    "horizon_rounds": 64, "receiver": 0},
      "trials": 1, "seed": 7, "stages": )" +
         stages_json + "}]}";
}

TEST(CampaignStages, ValidStagesRoundTrip) {
  const auto p = scn::parse_campaign_text(
      stages_campaign(R"(["noop", "dedup:4", "tap:heard_words"])"),
      "test.json");
  ASSERT_TRUE(p.ok()) << p.error;
  ASSERT_EQ(p.campaign.variants.size(), 1u);
  EXPECT_EQ(p.campaign.variants[0].stages,
            (std::vector<std::string>{"noop", "dedup:4", "tap:heard_words"}));
}

TEST(CampaignStages, BadStageSpecNamesFileAndElementPath) {
  const auto p = scn::parse_campaign_text(stages_campaign(R"(["dedupe"])"),
                                          "test.json");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("test.json:"), std::string::npos) << p.error;
  EXPECT_NE(p.error.find("scenarios[0].stages[0]"), std::string::npos)
      << p.error;
  EXPECT_NE(p.error.find("unknown stage 'dedupe'"), std::string::npos)
      << p.error;
  EXPECT_NE(p.error.find(valid_splice_kinds()), std::string::npos) << p.error;
}

TEST(CampaignStages, UnknownSlabInStageSpecIsActionable) {
  const auto p = scn::parse_campaign_text(
      stages_campaign(R"(["tap:heard_wordz"])"), "test.json");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("scenarios[0].stages[0]"), std::string::npos)
      << p.error;
  EXPECT_NE(p.error.find("unknown slab 'heard_wordz'"), std::string::npos)
      << p.error;
}

TEST(CampaignStages, NonStringElementRejected) {
  const auto p = scn::parse_campaign_text(stages_campaign(R"([7])"),
                                          "test.json");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("scenarios[0].stages[0]"), std::string::npos)
      << p.error;
  EXPECT_NE(p.error.find("stage spec must be a string"), std::string::npos)
      << p.error;
}

TEST(CampaignStages, NonArrayStagesRejected) {
  const auto p = scn::parse_campaign_text(stages_campaign(R"("dedup")"),
                                          "test.json");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("an array of stage spec strings"), std::string::npos)
      << p.error;
}

TEST(CampaignStages, ConflictingStagesRejectedAtLoadTime) {
  const auto p = scn::parse_campaign_text(
      stages_campaign(R"(["dedup", "dedup:4"])"), "test.json");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("scenarios[0].stages"), std::string::npos)
      << p.error;
  EXPECT_NE(p.error.find("both write slab(s): delivery_mask"),
            std::string::npos)
      << p.error;
}

// ---- runtime contract: splices across thread counts ----

/// Records every event as a formatted line (same idiom as
/// engine_shard_test.cpp): vectors compare with exact failure positions.
class StreamObserver final : public Observer {
 public:
  const std::vector<std::string>& events() const noexcept { return events_; }
  std::size_t tx_events() const noexcept { return tx_; }

  void on_round_begin(Round round) override {
    line() << "begin " << round;
    push();
  }
  void on_transmit(Round round, graph::Vertex v, const Packet& p) override {
    line() << "tx " << round << ' ' << v << ' ' << p.sender;
    ++tx_;
    push();
  }
  void on_receive(Round round, graph::Vertex u, graph::Vertex from,
                  const Packet& p) override {
    line() << "rx " << round << ' ' << u << ' ' << from << ' ' << p.sender;
    push();
  }
  void on_silence(Round round, graph::Vertex u, bool collision) override {
    line() << "sil " << round << ' ' << u << ' ' << (collision ? 1 : 0);
    push();
  }
  void on_round_end(Round round) override {
    line() << "end " << round;
    push();
  }

 private:
  std::ostringstream& line() {
    os_.str("");
    return os_;
  }
  void push() { events_.push_back(os_.str()); }

  std::ostringstream os_;
  std::vector<std::string> events_;
  std::size_t tx_ = 0;
};

struct SplicedRun {
  std::vector<std::string> events;
  std::vector<std::uint64_t> heard;      ///< per-vertex process hash
  std::vector<std::uint64_t> delivered;  ///< per-vertex delivery count
  std::string logical_json;              ///< registry dump, timing excluded
  std::uint64_t suppressed = 0;          ///< stage.dedup.suppressed
  std::size_t tx_events = 0;
};

SplicedRun run_spliced(const graph::DualGraph& g, std::size_t round_threads,
                       const std::vector<std::string>& stages, Round rounds,
                       std::uint64_t master_seed) {
  BernoulliScheduler sched(0.5);
  Engine engine(g, sched, repeat_procs(g.size(), master_seed ^ 0x5eedULL),
                master_seed);
  obs::Registry registry;
  EngineConfig config;
  config.with_round_threads(round_threads).with_telemetry(&registry);
  for (const std::string& text : stages) config.with_splice(parse_ok(text));
  engine.configure(config);

  StreamObserver stream;
  engine.add_observer(&stream);
  engine.run_rounds(rounds);

  SplicedRun result;
  result.events = stream.events();
  result.tx_events = stream.tx_events();
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    const auto& proc =
        dynamic_cast<const RepeatProcess&>(engine.process(v));
    result.heard.push_back(proc.heard_hash());
    result.delivered.push_back(proc.deliveries());
  }
  result.logical_json = registry.json(/*include_timing=*/false);
  result.suppressed =
      registry.counter("stage.dedup.suppressed", obs::Domain::kLogical);
  return result;
}

TEST(EngineSplice, NoopSpliceIsByteFree) {
  // The CI campaign gate diffs COUNTERS/METRICS for --splice=noop; this is
  // the same property at the engine level, including the observer stream.
  const auto g = graph::grid(12, 12, 1.0, 1.5);
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const SplicedRun plain = run_spliced(g, threads, {}, 32, 0xABCD);
    const SplicedRun spliced = run_spliced(g, threads, {"noop"}, 32, 0xABCD);
    EXPECT_EQ(plain.events, spliced.events) << threads << " threads";
    EXPECT_EQ(plain.heard, spliced.heard) << threads << " threads";
    EXPECT_EQ(plain.logical_json, spliced.logical_json)
        << threads << " threads";
  }
}

TEST(EngineSplice, DedupByteIdenticalAcrossThreadCounts) {
  // The dedup stage runs block-parallel in sharded rounds (it declares
  // vertex-disjoint writes); its mask -- and therefore the null-indicator
  // deliveries it forces -- must be byte-identical at every thread count.
  const auto g = graph::grid(16, 16, 1.0, 1.5);  // n=256: 2+ real blocks
  const SplicedRun serial =
      run_spliced(g, 1, {"dedup:6", "tap:heard_words"}, 48, 0xD0D0);
  // RepeatProcess retransmits one fixed packet, so the cache must actually
  // suppress -- otherwise this fixture proves nothing.
  EXPECT_GT(serial.suppressed, 0u);
  EXPECT_NE(serial.logical_json.find("stage.dedup.suppressed"),
            std::string::npos);
  EXPECT_NE(serial.logical_json.find("stage.tap.heard_words"),
            std::string::npos);

  for (std::size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    const SplicedRun sharded =
        run_spliced(g, threads, {"dedup:6", "tap:heard_words"}, 48, 0xD0D0);
    ASSERT_EQ(serial.events.size(), sharded.events.size())
        << threads << " threads";
    for (std::size_t i = 0; i < serial.events.size(); ++i) {
      ASSERT_EQ(serial.events[i], sharded.events[i])
          << threads << " threads, event " << i;
    }
    ASSERT_EQ(serial.heard, sharded.heard) << threads << " threads";
    ASSERT_EQ(serial.delivered, sharded.delivered) << threads << " threads";
    ASSERT_EQ(serial.logical_json, sharded.logical_json)
        << threads << " threads";
  }
}

TEST(EngineSplice, DedupSuppressionIsProcessVisible) {
  // Suppressed deliveries arrive as null indicators: total deliveries with
  // the dedup splice must drop below the unspliced run's, by exactly the
  // suppressed count.
  const auto g = graph::grid(12, 12, 1.0, 1.5);
  const SplicedRun plain = run_spliced(g, 1, {}, 48, 0xFACE);
  const SplicedRun deduped = run_spliced(g, 1, {"dedup:6"}, 48, 0xFACE);
  std::uint64_t plain_total = 0;
  std::uint64_t dedup_total = 0;
  for (const std::uint64_t d : plain.delivered) plain_total += d;
  for (const std::uint64_t d : deduped.delivered) dedup_total += d;
  EXPECT_GT(deduped.suppressed, 0u);
  EXPECT_EQ(plain_total, dedup_total + deduped.suppressed);
}

TEST(EngineSplice, TapCounterMatchesObserverStream) {
  // stage.tap.transmit_bitmap tallies the transmit-bitmap population every
  // round, which is exactly the number of on_transmit events fanned out.
  const auto g = graph::grid(10, 10, 1.0, 1.5);
  const SplicedRun run =
      run_spliced(g, 1, {"tap:transmit_bitmap"}, 32, 0xBEEF);
  const SplicedRun sharded =
      run_spliced(g, 8, {"tap:transmit_bitmap"}, 32, 0xBEEF);
  EXPECT_NE(run.logical_json.find("stage.tap.transmit_bitmap"),
            std::string::npos);
  EXPECT_GT(run.tx_events, 0u);
  EXPECT_EQ(run.logical_json, sharded.logical_json);
  // The exact counter value needs direct registry access (run_spliced only
  // keeps the dump), so repeat the serial run with a local registry.
  BernoulliScheduler sched(0.5);
  Engine engine(g, sched, repeat_procs(g.size(), 0xBEEF ^ 0x5eedULL), 0xBEEF);
  obs::Registry registry;
  engine.configure(EngineConfig()
                       .with_telemetry(&registry)
                       .with_splice(parse_ok("tap:transmit_bitmap")));
  StreamObserver stream;
  engine.add_observer(&stream);
  engine.run_rounds(32);
  EXPECT_EQ(
      registry.counter("stage.tap.transmit_bitmap", obs::Domain::kLogical),
      stream.tx_events());
}

// ---- EngineConfig vs the deprecated setter surface ----

TEST(EngineConfigApi, ConfigureMatchesDeprecatedSetters) {
  const auto g = graph::grid(10, 10, 1.0, 1.5);
  const auto run = [&](bool use_config) {
    BernoulliScheduler sched(0.5);
    Engine engine(g, sched, repeat_procs(g.size(), 0xC0FFEEULL), 0xC0FFEE);
    obs::Registry registry;
    if (use_config) {
      engine.configure(
          EngineConfig().with_round_threads(3).with_telemetry(&registry));
    } else {
      engine.set_round_threads(3);
      engine.set_telemetry(&registry);
    }
    StreamObserver stream;
    engine.add_observer(&stream);
    engine.run_rounds(24);
    return std::make_pair(stream.events(),
                          registry.json(/*include_timing=*/false));
  };
  const auto via_setters = run(false);
  const auto via_config = run(true);
  EXPECT_EQ(via_setters.first, via_config.first);
  EXPECT_EQ(via_setters.second, via_config.second);
}

}  // namespace
}  // namespace dg::sim
