// Tests for the scenario campaign subsystem (src/scn/): the JSON parser's
// error positions, schema validation (unknown keys, bad channel/scheduler
// specs, empty sweeps, duplicate names -- each with an actionable
// message), matrix expansion (cross product, tags, additive seed offsets,
// dotted-path patches), runner determinism across thread counts, and
// equivalence of the declarative workloads with the direct library calls
// they subsumed.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "graph/generators.h"
#include "lb/measure.h"
#include "scn/campaign.h"
#include "scn/json.h"
#include "scn/scenario.h"
#include "scn/workload.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace dg::scn {
namespace {

// ---- JSON parser ----

TEST(Json, ParsesScalarsArraysObjects) {
  json::Value v;
  const auto err = json::parse(
      R"({"a": 1, "b": [true, null, -2.5e1], "c": {"d": "x\ny"}})", v);
  ASSERT_TRUE(err.ok()) << err.message;
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.0);
  const auto& b = v.find("b")->items();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_TRUE(b[0].as_bool());
  EXPECT_EQ(b[1].kind(), json::Value::Kind::null);
  EXPECT_DOUBLE_EQ(b[2].as_number(), -25.0);
  EXPECT_EQ(v.find("c")->find("d")->as_string(), "x\ny");
}

TEST(Json, ReportsLineAndColumn) {
  json::Value v;
  const auto err = json::parse("{\n  \"a\": 1\n  \"b\": 2\n}", v);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.line, 3u);  // the missing-comma position
  EXPECT_NE(err.message.find("','"), std::string::npos);
}

TEST(Json, RejectsDuplicateKeys) {
  json::Value v;
  const auto err = json::parse(R"({"a": 1, "a": 2})", v);
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.message.find("duplicate object key 'a'"),
            std::string::npos);
}

TEST(Json, RejectsTrailingContent) {
  json::Value v;
  EXPECT_FALSE(json::parse("{} x", v).ok());
  EXPECT_FALSE(json::parse("", v).ok());
}

TEST(Json, ValuesRememberPositions) {
  json::Value v;
  ASSERT_TRUE(json::parse("{\n  \"k\": 7\n}", v).ok());
  const json::Value* k = v.find("k");
  EXPECT_EQ(k->line(), 2u);
  EXPECT_EQ(k->col(), 8u);
}

TEST(Json, FormatNumberIntegersBareDoublesRoundTrip) {
  EXPECT_EQ(json::format_number(42.0), "42");
  EXPECT_EQ(json::format_number(-3.0), "-3");
  EXPECT_EQ(json::format_number(0.0), "0");
  for (double d : {0.1, 1.0 / 3.0, 2.5, 1e-9, 123456.789}) {
    const std::string s = json::format_number(d);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), d) << s;
  }
}

TEST(Json, SetPathCreatesAndReplaces) {
  json::Value v = json::Value::make_object();
  EXPECT_TRUE(v.set_path("topology.k", json::Value::make_number(8)));
  EXPECT_DOUBLE_EQ(v.find("topology")->find("k")->as_number(), 8.0);
  EXPECT_TRUE(v.set_path("topology.k", json::Value::make_number(9)));
  EXPECT_DOUBLE_EQ(v.find("topology")->find("k")->as_number(), 9.0);
  // Stepping through a non-object fails.
  EXPECT_FALSE(v.set_path("topology.k.deep", json::Value::make_number(1)));
}

// ---- campaign schema validation ----

CampaignParse parse(const std::string& text) {
  return parse_campaign_text(text, "test.json");
}

std::string minimal_scenario(const std::string& extra = "") {
  return R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "algorithm": {"type": "lb_progress", "senders": [1], "receiver": 0},
      "trials": 2, "seed": 7)" +
         extra + "}]}";
}

TEST(CampaignSchema, MinimalScenarioParses) {
  const auto p = parse(minimal_scenario());
  ASSERT_TRUE(p.ok()) << p.error;
  ASSERT_EQ(p.campaign.variants.size(), 1u);
  const ScenarioSpec& s = p.campaign.variants[0];
  EXPECT_EQ(s.name, "s");
  EXPECT_EQ(s.topology.k, 4u);
  EXPECT_EQ(s.trials, 2u);
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.scheduler, "bernoulli:0.5");  // default
  EXPECT_FALSE(s.channel_spec.is_sinr);
}

TEST(CampaignSchema, UnknownScenarioKeyIsActionable) {
  const auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4}, "trils": 3}]})");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("unknown key 'trils'"), std::string::npos);
  EXPECT_NE(p.error.find("valid keys:"), std::string::npos);
  EXPECT_NE(p.error.find("trials"), std::string::npos);  // suggestion list
  EXPECT_NE(p.error.find("scenarios[0]"), std::string::npos);
  EXPECT_NE(p.error.find("test.json:"), std::string::npos);
}

TEST(CampaignSchema, UnknownTopologyKeyNamesThePath) {
  const auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4, "sides": 2}}]})");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("scenarios[0].topology"), std::string::npos);
  EXPECT_NE(p.error.find("unknown key 'sides'"), std::string::npos);
}

TEST(CampaignSchema, BadChannelSpecsAreActionable) {
  for (const char* chan : {"laser", "sinr:x", "sinr:1,2,3,4", "sinr:0,2,1",
                           "sinr:3,0.5,1"}) {
    const auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
        "topology": {"type": "geometric", "n": 8, "side": 2.0},
        "channel": ")" +
                         std::string(chan) + R"("}]})");
    ASSERT_FALSE(p.ok()) << chan;
    EXPECT_NE(p.error.find("scenarios[0].channel"), std::string::npos)
        << p.error;
  }
}

TEST(CampaignSchema, BadSchedulerSpecsAreActionable) {
  for (const char* sched :
       {"bernouli:0.5", "bernoulli:1.5", "flicker:4:9", "burst:0:0.5",
        "anti:0", "bernoulli:0.5:1"}) {
    const auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
        "topology": {"type": "clique", "k": 4},
        "scheduler": ")" +
                         std::string(sched) + R"("}]})");
    ASSERT_FALSE(p.ok()) << sched;
    EXPECT_NE(p.error.find("scenarios[0].scheduler"), std::string::npos)
        << p.error;
  }
}

TEST(CampaignSchema, EmptySweepAxisIsAnError) {
  const auto p = parse(minimal_scenario(R"(, "matrix": {"delta": []})"));
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("empty sweep axis"), std::string::npos);
  EXPECT_NE(p.error.find("matrix.delta"), std::string::npos);
}

TEST(CampaignSchema, DuplicateScenarioNamesAreAnError) {
  const auto p = parse(R"({"campaign": "t", "scenarios": [
      {"name": "s", "topology": {"type": "clique", "k": 4}},
      {"name": "s", "topology": {"type": "clique", "k": 8}}]})");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("duplicate scenario name 's'"), std::string::npos);
}

TEST(CampaignSchema, DuplicateAxisTagsAreAnError) {
  const auto p = parse(minimal_scenario(
      R"(, "matrix": {"delta": [
          {"tag": "a", "set": {"topology.k": 4}},
          {"tag": "a", "set": {"topology.k": 8}}]})"));
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("duplicate tag 'a'"), std::string::npos);
}

TEST(CampaignSchema, WorkloadTopologyMismatchesAreErrors) {
  // deployment topology needs abstraction_fidelity.
  auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "deployment", "n": 8, "side": 2.0},
      "algorithm": {"type": "lb_progress"}}]})");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("deployment"), std::string::npos);

  // abstraction_fidelity needs an SINR channel.
  p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "deployment", "n": 8, "side": 2.0},
      "algorithm": {"type": "abstraction_fidelity"}}]})");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("sinr"), std::string::npos);

  // SINR reception needs an embedded topology.
  p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4}, "channel": "sinr"}]})");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("embedded topology"), std::string::npos);
}

TEST(CampaignSchema, VertexBoundsAreChecked) {
  auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "algorithm": {"type": "lb_progress", "receiver": 4}}]})");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("receiver 4 out of range"), std::string::npos);

  p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "algorithm": {"type": "lb_progress", "senders": [9]}}]})");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("sender 9 out of range"), std::string::npos);
}

TEST(CampaignSchema, TrialsMustBePositiveIntegers) {
  const auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4}, "trials": 0}]})");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("trials"), std::string::npos);
}

// ---- matrix expansion ----

TEST(CampaignExpansion, CrossProductOrderTagsAndSeeds) {
  const auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "trials": 1, "seed": 100,
      "matrix": {
        "a": [{"tag": "x", "seed_offset": 1, "set": {"topology.k": 5}},
              {"tag": "y", "seed_offset": 2, "set": {"topology.k": 6}}],
        "b": [{"tag": "p", "seed_offset": 10},
              {"tag": "q", "seed_offset": 20,
               "set": {"scheduler": "full-g"}}]
      }}]})");
  ASSERT_TRUE(p.ok()) << p.error;
  const auto& vs = p.campaign.variants;
  ASSERT_EQ(vs.size(), 4u);
  // Declaration order, last axis fastest.
  EXPECT_EQ(vs[0].name, "s/x/p");
  EXPECT_EQ(vs[1].name, "s/x/q");
  EXPECT_EQ(vs[2].name, "s/y/p");
  EXPECT_EQ(vs[3].name, "s/y/q");
  // Offsets add across axes on top of the base seed.
  EXPECT_EQ(vs[0].seed, 111u);
  EXPECT_EQ(vs[1].seed, 121u);
  EXPECT_EQ(vs[2].seed, 112u);
  EXPECT_EQ(vs[3].seed, 122u);
  // Patches land; unpatched fields keep the base value.
  EXPECT_EQ(vs[0].topology.k, 5u);
  EXPECT_EQ(vs[2].topology.k, 6u);
  EXPECT_EQ(vs[0].scheduler, "bernoulli:0.5");
  EXPECT_EQ(vs[1].scheduler, "full-g");
}

TEST(CampaignExpansion, PatchedValuesAreValidated) {
  // A matrix patch writing garbage is caught by the same schema pass.
  const auto p = parse(minimal_scenario(
      R"(, "matrix": {"a": [{"tag": "x", "set": {"topology.k": "big"}}]})"));
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("'k'"), std::string::npos);
  EXPECT_NE(p.error.find("{a=x}"), std::string::npos);  // variant path
}

// ---- runner ----

Campaign tiny_campaign() {
  const auto p = parse(R"({"campaign": "tiny", "scenarios": [
      {"name": "progress",
       "topology": {"type": "clique", "k": 4},
       "algorithm": {"type": "lb_progress", "r": 1.5, "senders": [1],
                     "receiver": 0, "horizon_phases": 4},
       "trials": 4, "seed": 231,
       "matrix": {"d": [{"tag": "4", "seed_offset": 0},
                        {"tag": "8", "seed_offset": 4,
                         "set": {"topology.k": 8}}]}},
      {"name": "seed_check",
       "topology": {"type": "grid", "cols": 3, "rows": 3},
       "scheduler": "full-gprime",
       "algorithm": {"type": "seed_agreement"},
       "trials": 3, "seed": 5}]})");
  EXPECT_TRUE(p.ok()) << p.error;
  return p.campaign;
}

TEST(CampaignRunner, CountersAreByteIdenticalAcrossThreadCounts) {
  const Campaign c = tiny_campaign();
  RunOptions one;
  one.threads = 1;
  RunOptions many;
  many.threads = 4;
  const std::string a = counters_json(run_campaign(c, one));
  const std::string b = counters_json(run_campaign(c, many));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"per_trial\""), std::string::npos);
}

TEST(CampaignRunner, CountersAreByteIdenticalAcrossRoundThreads) {
  // The sharded-round analogue of the trial-thread guarantee: forcing the
  // engine's round_threads onto every variant must not move a single
  // counter byte (the sharded loop replays observers serially in vertex
  // order, so the per-trial metrics are identical).
  const Campaign c = tiny_campaign();
  RunOptions serial;
  serial.threads = 1;
  serial.round_threads = 1;
  RunOptions sharded;
  sharded.threads = 1;
  sharded.round_threads = 8;
  const std::string a = counters_json(run_campaign(c, serial));
  const std::string b = counters_json(run_campaign(c, sharded));
  EXPECT_EQ(a, b);
}

TEST(ScenarioSchema, RoundThreadsValueValidation) {
  // The shared flag grammar for dglab/dgcampaign --round-threads: digits
  // only, >= 1 ("run serial" is spelled 1, not 0).
  std::size_t out = 0;
  EXPECT_EQ(validate_round_threads_value("1", out), "");
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(validate_round_threads_value("8", out), "");
  EXPECT_EQ(out, 8u);
  for (const char* bad : {"", "0", "-3", "4x", "x", " 2", "+2"}) {
    std::size_t ignored = 0;
    EXPECT_NE(validate_round_threads_value(bad, ignored), "") << bad;
  }
}

TEST(ScenarioSchema, RoundThreadsKeyParsesAndRejectsZero) {
  const auto ok = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "algorithm": {"type": "seed_agreement"},
      "trials": 1, "seed": 7, "round_threads": 4}]})");
  ASSERT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(ok.campaign.variants[0].round_threads, 4u);

  const auto absent = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "algorithm": {"type": "seed_agreement"},
      "trials": 1, "seed": 7}]})");
  ASSERT_TRUE(absent.ok()) << absent.error;
  EXPECT_EQ(absent.campaign.variants[0].round_threads, 0u);  // engine default

  const auto zero = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "algorithm": {"type": "seed_agreement"},
      "trials": 1, "seed": 7, "round_threads": 0}]})");
  EXPECT_FALSE(zero.ok());
}

TEST(CampaignRunner, FilterAndMaxTrials) {
  const Campaign c = tiny_campaign();
  RunOptions options;
  options.threads = 2;
  options.filter = "seed_check";
  options.max_trials = 2;
  const auto result = run_campaign(c, options);
  ASSERT_EQ(result.variants.size(), 1u);
  EXPECT_EQ(result.variants[0].spec.name, "seed_check");
  EXPECT_EQ(result.variants[0].trials.size(), 2u);
  // The clamped prefix equals the unclamped run's first trials (same
  // seeds), so reduced nightly runs stay comparable per trial.
  RunOptions full;
  full.threads = 2;
  full.filter = "seed_check";
  const auto all = run_campaign(c, full);
  EXPECT_EQ(all.variants[0].trials[0], result.variants[0].trials[0]);
  EXPECT_EQ(all.variants[0].trials[1], result.variants[0].trials[1]);
}

TEST(CampaignRunner, LbProgressMatchesDirectLibraryCall) {
  // The declarative lb_progress workload must reproduce the direct
  // lb::progress_latency measurement from the same seeds -- the bench
  // porting guarantee (E3's trial body, one sweep point).
  const auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "e3",
      "topology": {"type": "clique", "k": 4},
      "algorithm": {"type": "lb_progress", "eps1": 0.1, "r": 1.5,
                    "ack_scale": 0.02, "senders": [1], "receiver": 0,
                    "horizon_phases": 12},
      "trials": 3, "seed": 231}]})");
  ASSERT_TRUE(p.ok()) << p.error;
  RunOptions options;
  options.threads = 2;
  const auto result = run_campaign(p.campaign, options);
  ASSERT_EQ(result.variants.size(), 1u);
  const auto& trials = result.variants[0].trials;
  ASSERT_EQ(trials.size(), 3u);

  const auto g = graph::clique_cluster(4);
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  for (std::size_t t = 0; t < 3; ++t) {
    const auto latency = lb::progress_latency(
        g, std::make_unique<sim::BernoulliScheduler>(0.5), params, {1}, 0,
        12, derive_seed(231, t));
    EXPECT_DOUBLE_EQ(trials[t][0], static_cast<double>(latency)) << t;
    EXPECT_DOUBLE_EQ(trials[t][1],
                     static_cast<double>(params.phase_length()));
  }
}

TEST(CampaignReports, SanitizeAndShapes) {
  EXPECT_EQ(sanitize_filename("e6/decay/anti"), "e6_decay_anti");
  EXPECT_EQ(sanitize_filename("ok_name-1.2"), "ok_name-1.2");

  const Campaign c = tiny_campaign();
  RunOptions options;
  options.threads = 2;
  const auto result = run_campaign(c, options);
  const std::string report =
      variant_report_json(result.variants[0], "testsha");
  EXPECT_NE(report.find("\"elapsed_ms\""), std::string::npos);
  EXPECT_NE(report.find("\"git_sha\": \"testsha\""), std::string::npos);
  EXPECT_NE(report.find("\"columns\": [\"trial\""), std::string::npos);
  const std::string rollup = rollup_json(result, "testsha");
  EXPECT_NE(rollup.find("\"campaign\": \"tiny\""), std::string::npos);
  EXPECT_NE(rollup.find("\"variant_count\": 3"), std::string::npos);
}

TEST(SchedulerSpecs, AllValidKindsBuild) {
  for (const char* spec :
       {"bernoulli:0.5", "bernoulli:0", "bernoulli:1", "full-g",
        "full-gprime", "flicker:8:4", "burst:16:0.5", "anti",
        "anti:7:0.0625"}) {
    EXPECT_EQ(validate_scheduler_spec(spec), "") << spec;
    EXPECT_NE(build_scheduler(spec), nullptr) << spec;
  }
}

// ---- the traffic axis ----

std::string traffic_scenario(const std::string& traffic,
                             const std::string& algo_extra = "") {
  return R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "traffic": ")" +
         traffic +
         R"(",
      "algorithm": {"type": "traffic_latency", "horizon_phases": 2)" +
         algo_extra + R"(},
      "trials": 1, "seed": 7}]})";
}

TEST(TrafficAxis, ParsesAndRunsEveryKind) {
  for (const char* spec :
       {"saturate:2", "poisson:0.5", "burst:8:2:1", "hotspot:0.5:0.5:1"}) {
    const auto p = parse(traffic_scenario(spec));
    ASSERT_TRUE(p.ok()) << spec << ": " << p.error;
    const ScenarioSpec& s = p.campaign.variants[0];
    EXPECT_EQ(s.traffic, spec);
    const auto names = metric_names(s);
    const auto row = run_trial(s, 123);
    ASSERT_EQ(row.size(), names.size()) << spec;
    EXPECT_EQ(names.front(), "offered");
    EXPECT_EQ(row, run_trial(s, 123)) << "trial must be seed-deterministic";
  }
}

TEST(TrafficAxis, BadSpecsAreActionable) {
  const auto p = parse(traffic_scenario("poison:0.5"));
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("unknown traffic 'poison'"), std::string::npos)
      << p.error;
  EXPECT_NE(p.error.find("saturate[:count]"), std::string::npos) << p.error;
  EXPECT_NE(p.error.find(".traffic"), std::string::npos) << p.error;
}

TEST(TrafficAxis, TrafficLatencyNeedsATrafficSpec) {
  const auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "algorithm": {"type": "traffic_latency"},
      "trials": 1, "seed": 7}]})");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("needs a \"traffic\" spec"), std::string::npos)
      << p.error;
  EXPECT_NE(p.error.find("poisson:rate"), std::string::npos) << p.error;
}

TEST(TrafficAxis, OtherWorkloadsRejectTrafficListingValidKinds) {
  const auto p = parse(minimal_scenario(R"(, "traffic": "poisson:0.5")"));
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("only consumed by algorithm 'traffic_latency'"),
            std::string::npos)
      << p.error;
  // The rejection lists every valid workload kind (the actionable style).
  for (const char* kind :
       {"lb_progress", "decay_progress", "seed_agreement",
        "seed_then_progress", "abstraction_fidelity", "traffic_latency"}) {
    EXPECT_NE(p.error.find(kind), std::string::npos) << kind;
  }
}

TEST(TrafficAxis, UnknownAlgorithmListsTrafficLatency) {
  const auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "algorithm": {"type": "traffic_latncy"},
      "trials": 1, "seed": 7}]})");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error.find("unknown algorithm type"), std::string::npos);
  EXPECT_NE(p.error.find("traffic_latency"), std::string::npos) << p.error;
}

TEST(TrafficAxis, VertexBoundsAreChecked) {
  {
    const auto p = parse(traffic_scenario("saturate:9"));
    ASSERT_FALSE(p.ok());
    EXPECT_NE(p.error.find("9 sender(s)"), std::string::npos) << p.error;
    EXPECT_NE(p.error.find("4 vertices"), std::string::npos) << p.error;
  }
  {
    const auto p = parse(traffic_scenario("hotspot:0.5:0.5:4"));
    ASSERT_FALSE(p.ok());
    EXPECT_NE(p.error.find("hot vertex 4 out of range"), std::string::npos)
        << p.error;
  }
}

TEST(TrafficAxis, SweepableInMatrixAxes) {
  const auto p = parse(R"({"campaign": "t", "scenarios": [{"name": "s",
      "topology": {"type": "clique", "k": 4},
      "traffic": "poisson:0.1",
      "algorithm": {"type": "traffic_latency", "horizon_phases": 2},
      "trials": 1, "seed": 7,
      "matrix": {"load": [
        {"tag": "lo", "seed_offset": 1, "set": {"traffic": "poisson:0.1"}},
        {"tag": "hi", "seed_offset": 2, "set": {"traffic": "saturate:2"}}
      ]}}]})");
  ASSERT_TRUE(p.ok()) << p.error;
  ASSERT_EQ(p.campaign.variants.size(), 2u);
  EXPECT_EQ(p.campaign.variants[0].traffic, "poisson:0.1");
  EXPECT_EQ(p.campaign.variants[1].traffic, "saturate:2");
  EXPECT_EQ(p.campaign.variants[1].seed, 9u);
}

}  // namespace
}  // namespace dg::scn
