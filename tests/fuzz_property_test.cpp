// Property harness: randomized configurations (topology x scheduler x
// environment schedule) under LBAlg.  The deterministic spec conditions
// (well-formedness of acks, validity of recvs) must hold in EVERY
// execution, not just with high probability -- so any single failure here
// is a real bug.  Randomness is seed-indexed and reproducible.
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"

namespace dg {
namespace {

std::unique_ptr<sim::LinkScheduler> random_scheduler(Rng& rng) {
  switch (rng.below(6)) {
    case 0:
      return std::make_unique<sim::ConstantScheduler>(false);
    case 1:
      return std::make_unique<sim::ConstantScheduler>(true);
    case 2:
      return std::make_unique<sim::BernoulliScheduler>(rng.uniform());
    case 3:
      return std::make_unique<sim::FlickerScheduler>(
          static_cast<sim::Round>(rng.between(2, 100)),
          static_cast<sim::Round>(rng.between(1, 2)));
    case 4:
      return std::make_unique<sim::BurstScheduler>(
          static_cast<sim::Round>(rng.between(1, 64)), rng.uniform());
    default:
      return std::make_unique<sim::AntiScheduleAdversary>(
          [](sim::Round t) { return t % 3 == 0 ? 0.5 : 0.1; }, 0.25);
  }
}

graph::DualGraph random_topology(Rng& rng) {
  switch (rng.below(5)) {
    case 0: {
      graph::GeometricSpec spec;
      spec.n = rng.between(2, 40);
      spec.side = rng.uniform(1.0, 4.0);
      spec.r = rng.uniform(1.0, 2.5);
      spec.p_grey_reliable = rng.uniform();
      spec.p_grey_unreliable = rng.uniform();
      return graph::random_geometric(spec, rng);
    }
    case 1:
      return graph::clique_cluster(rng.between(1, 24));
    case 2:
      return graph::star_ring(rng.between(1, 24), 1.5);
    case 3:
      return graph::line(rng.between(1, 24), 0.9, 1.6);
    default:
      return graph::grid(rng.between(1, 6), rng.between(1, 6), 1.0, 1.5);
  }
}

class LbFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LbFuzz, DeterministicSpecHoldsInEveryExecution) {
  Rng rng(GetParam());
  const auto g = random_topology(rng);
  lb::LbScales scales;
  scales.ack_scale = rng.uniform(0.002, 0.1);
  auto params = lb::LbParams::calibrated(
      rng.uniform(0.02, 0.5), std::max(1.0, g.r()), g.delta(),
      g.delta_prime(), scales);
  if (rng.chance(0.3)) params.phases_per_seed = 1 + static_cast<int>(rng.below(4));
  if (rng.chance(0.2)) params.use_shared_seeds = false;

  lb::LbSimulation sim(g, random_scheduler(rng), params,
                       derive_seed(GetParam(), 5));

  // Random environment: a rotating set of busy vertices, with occasional
  // aborts -- all within the env contract (post only when idle).
  std::vector<graph::Vertex> candidates;
  const std::size_t busy_count = 1 + rng.below(std::min<std::uint64_t>(4, g.size()));
  for (std::size_t i = 0; i < busy_count; ++i) {
    candidates.push_back(
        static_cast<graph::Vertex>(rng.below(g.size())));
  }
  std::uint64_t content = 0;
  Rng env_rng(derive_seed(GetParam(), 6));
  sim.set_environment([&](lb::LbSimulation& s, sim::Round) {
    for (graph::Vertex v : candidates) {
      if (!s.busy(v) && env_rng.chance(0.3)) {
        s.post_bcast(v, ++content);
      } else if (s.busy(v) && env_rng.chance(0.02)) {
        s.post_abort(v);
      }
    }
  });

  sim.run_rounds(4 * params.group_length() +
                 static_cast<std::int64_t>(rng.below(100)));

  const auto& report = sim.report();
  EXPECT_TRUE(report.timely_ack_ok) << "seed " << GetParam();
  EXPECT_TRUE(report.validity_ok) << "seed " << GetParam();
  EXPECT_EQ(report.violations, 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LbFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace dg
