// Tests for the plane geometry and the Appendix A region partition:
// half-open cell assignment, region-graph adjacency, and the f-boundedness
// property of Lemmas A.1 / A.2.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/point.h"
#include "geo/region_partition.h"

namespace dg::geo {
namespace {

TEST(Point, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {2, 0}), 4.0);
}

TEST(GridPartition, CellAssignmentIsHalfOpen) {
  GridPartition part(0.5, 1.0);
  // [0, 0.5) x [0, 0.5) is cell (0, 0); the boundary 0.5 belongs to the
  // next cell -- the "partition, not cover" rule of Lemma A.1.
  EXPECT_EQ(part.region_of({0.0, 0.0}), (RegionId{0, 0}));
  EXPECT_EQ(part.region_of({0.49999, 0.49999}), (RegionId{0, 0}));
  EXPECT_EQ(part.region_of({0.5, 0.0}), (RegionId{1, 0}));
  EXPECT_EQ(part.region_of({0.0, 0.5}), (RegionId{0, 1}));
  EXPECT_EQ(part.region_of({-0.1, -0.1}), (RegionId{-1, -1}));
}

TEST(GridPartition, RegionDiameterAtMostOne) {
  // Lemma A.1 condition 1: any two points of one region are within
  // distance 1.  For a half-open square of side s the diameter is s*sqrt(2).
  GridPartition part(0.5, 1.0);
  EXPECT_LE(part.side() * std::sqrt(2.0), 1.0);
}

TEST(GridPartition, SideAboveDiameterBoundRejected) {
  EXPECT_DEATH(GridPartition(0.8, 1.0), "precondition");
}

TEST(GridPartition, CornerInvertsRegionOf) {
  GridPartition part(0.5, 2.0);
  const RegionId id{3, -2};
  const Point c = part.corner(id);
  EXPECT_EQ(part.region_of(c), id);
}

TEST(GridPartition, MinCellDistanceZeroForTouching) {
  GridPartition part(0.5, 1.0);
  EXPECT_DOUBLE_EQ(part.min_cell_distance({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(part.min_cell_distance({0, 0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(part.min_cell_distance({0, 0}, {1, 1}), 0.0);
}

TEST(GridPartition, MinCellDistanceForSeparatedCells) {
  GridPartition part(0.5, 1.0);
  // Cells (0,0) and (2,0): one whole cell of gap -> 0.5.
  EXPECT_DOUBLE_EQ(part.min_cell_distance({0, 0}, {2, 0}), 0.5);
  // Diagonal gap: sqrt(0.5^2 + 0.5^2).
  EXPECT_DOUBLE_EQ(part.min_cell_distance({0, 0}, {2, 2}),
                   std::sqrt(0.5));
}

// The SINR bucket grid (phys/sinr.h) buckets arbitrary deployments, so the
// negative-quadrant and cell-boundary paths are load-bearing, not just
// analysis corner cases.

TEST(GridPartition, RegionOfAtNegativeBoundaries) {
  GridPartition part(0.5, 1.0);
  // Half-open rule on the negative axes: -0.5 starts cell -1, and any
  // negative epsilon already belongs to cell -1 (floor, not truncation).
  EXPECT_EQ(part.region_of({-0.5, 0.0}), (RegionId{-1, 0}));
  EXPECT_EQ(part.region_of({-1e-12, -1e-12}), (RegionId{-1, -1}));
  EXPECT_EQ(part.region_of({-0.50001, -1.0}), (RegionId{-2, -2}));
  EXPECT_EQ(part.corner({-3, -2}), (Point{-1.5, -1.0}));
}

TEST(GridPartition, MinCellDistanceIsTranslationInvariant) {
  GridPartition part(0.5, 1.0);
  // Shifting both cells by the same offset (into and across the negative
  // quadrant) must not change the gap.
  for (const std::int32_t dx : {-7, -1, 0, 3}) {
    for (const std::int32_t dy : {-4, 0, 5}) {
      EXPECT_DOUBLE_EQ(
          part.min_cell_distance({dx, dy}, {dx + 3, dy}),
          part.min_cell_distance({0, 0}, {3, 0}))
          << "offset " << dx << "," << dy;
      EXPECT_DOUBLE_EQ(
          part.min_cell_distance({dx, dy}, {dx + 2, dy + 3}),
          part.min_cell_distance({0, 0}, {2, 3}))
          << "offset " << dx << "," << dy;
    }
  }
}

TEST(GridPartition, MinCellDistanceAcrossTheOrigin) {
  GridPartition part(0.5, 1.0);
  // Cells {-2,0} and {1,0}: indices 3 apart -> 2 whole cells of gap.
  EXPECT_DOUBLE_EQ(part.min_cell_distance({-2, 0}, {1, 0}), 1.0);
  // Touching across the origin (indices -1 and 0) -> 0.
  EXPECT_DOUBLE_EQ(part.min_cell_distance({-1, -1}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(part.min_cell_distance({-1, 2}, {0, 2}), 0.0);
  // Symmetry in the arguments.
  EXPECT_DOUBLE_EQ(part.min_cell_distance({-5, -3}, {2, 4}),
                   part.min_cell_distance({2, 4}, {-5, -3}));
}

TEST(GridPartition, AdjacencyAtNegativeCoordinates) {
  GridPartition part(0.5, 1.5);
  // The region-graph neighborhood must be identical in every quadrant.
  const auto at_origin = part.neighbors({0, 0}).size();
  EXPECT_EQ(part.neighbors({-6, -9}).size(), at_origin);
  EXPECT_EQ(part.neighbors({-1, 4}).size(), at_origin);
  // Touching cells across the axis are adjacent; cells separated by more
  // than r are not.
  EXPECT_TRUE(part.adjacent({-1, 0}, {0, 0}));
  EXPECT_TRUE(part.adjacent({-2, -2}, {1, -2}));  // gap 1.0 <= r
  EXPECT_TRUE(part.adjacent({-4, 0}, {0, 0}));    // gap 1.5 == r (closed)
  EXPECT_FALSE(part.adjacent({-5, 0}, {0, 0}));   // gap 2.0 > r
}

TEST(GridPartition, AdjacencyExactlyAtTheRadius) {
  // Gap of exactly r counts as adjacent (closed condition d <= r).
  GridPartition part(0.5, 1.0);
  EXPECT_TRUE(part.adjacent({-3, 0}, {0, 0}));   // gap = 2 cells = 1.0 == r
  EXPECT_FALSE(part.adjacent({-4, 0}, {0, 0}));  // gap = 3 cells = 1.5 > r
}

TEST(GridPartition, AdjacencyIsSymmetricAndIrreflexive) {
  GridPartition part(0.5, 1.5);
  const RegionId a{0, 0};
  EXPECT_FALSE(part.adjacent(a, a));
  for (const RegionId& b : part.neighbors(a)) {
    EXPECT_TRUE(part.adjacent(b, a));
  }
}

TEST(GridPartition, NeighborsWithinCrBound) {
  // Lemma A.2: any region has at most c_r - 1 neighbors in G_{R,r}.
  for (double r : {1.0, 1.5, 2.0, 3.0}) {
    GridPartition part(0.5, r);
    const auto neighbors = part.neighbors({0, 0});
    EXPECT_LE(neighbors.size() + 1, part.cr_bound())
        << "r=" << r;
    EXPECT_GE(neighbors.size(), 8u);  // at least the 8 touching cells
  }
}

TEST(GridPartition, CountWithinZeroHopsIsOne) {
  GridPartition part(0.5, 1.0);
  EXPECT_EQ(part.count_within_hops({5, 5}, 0), 1u);
}

// f-boundedness sweep (Lemma A.2): the number of regions within h hops is
// at most c_r * h^2 with c_r = cr_bound() (which is Theta(r^2)).
class FBoundedness : public ::testing::TestWithParam<double> {};

TEST_P(FBoundedness, CountGrowsAtMostQuadratically) {
  const double r = GetParam();
  GridPartition part(0.5, r);
  const std::size_t cr = part.cr_bound();
  for (int h = 1; h <= 3; ++h) {
    const std::size_t count = part.count_within_hops({0, 0}, h);
    EXPECT_LE(count, cr * static_cast<std::size_t>(h) *
                         static_cast<std::size_t>(h))
        << "r=" << r << " h=" << h;
    // And it genuinely grows with h (sanity against vacuous bounds).
    if (h > 1) {
      EXPECT_GT(count, part.count_within_hops({0, 0}, h - 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, FBoundedness,
                         ::testing::Values(1.0, 1.25, 1.5, 2.0, 2.5, 3.0));

TEST(GridPartition, ForEachWithinHopsReportsHopCounts) {
  GridPartition part(0.5, 1.0);
  int zero_hop = 0;
  int max_hop = 0;
  part.for_each_within_hops({0, 0}, 2,
                            [&](const RegionId&, int hops) {
                              if (hops == 0) ++zero_hop;
                              max_hop = std::max(max_hop, hops);
                            });
  EXPECT_EQ(zero_hop, 1);
  EXPECT_EQ(max_hop, 2);
}

TEST(RegionIdHash, DistinguishesNearbyCells) {
  RegionIdHash h;
  EXPECT_NE(h({0, 1}), h({1, 0}));
  EXPECT_EQ(h({3, 4}), h({3, 4}));
}

}  // namespace
}  // namespace dg::geo
