// Determinism regression: golden digests of traced executions.
//
// Each scenario runs a fixed (graph, scheduler, workload, seed) execution
// and folds every wire-level event -- transmit, receive, silence/collision,
// in engine invocation order -- into an FNV-1a digest.  The goldens were
// recorded on the pre-CSR engine (vector<vector> adjacency, per-edge
// virtual scheduler calls); the flat-memory round engine must reproduce
// them bit-for-bit, proving the data-layout change preserves the Section 2
// round semantics, the observer fan-out order, and every RNG draw.
//
// If an *intentional* semantic change ever lands (it should not, short of a
// model revision), re-record with the printed "actual" values.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "fault/plan.h"
#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/adaptive.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "test_support.h"

namespace dg::sim {
namespace {

/// FNV-1a over every observed event, order-sensitive.
class DigestObserver final : public Observer {
 public:
  std::uint64_t digest() const noexcept { return h_; }

  void on_round_begin(Round round) override { fold(1, round, 0, 0, 0); }
  void on_transmit(Round round, graph::Vertex v, const Packet& p) override {
    fold(2, round, v, p.sender, payload_word(p));
  }
  void on_receive(Round round, graph::Vertex u, graph::Vertex from,
                  const Packet& p) override {
    fold(3, round, u, from, payload_word(p));
  }
  void on_silence(Round round, graph::Vertex u, bool collision) override {
    fold(4, round, u, collision ? 1 : 0, 0);
  }
  void on_round_end(Round round) override { fold(5, round, 0, 0, 0); }

 private:
  static std::uint64_t payload_word(const Packet& p) {
    if (p.is_seed()) {
      return p.seed().owner ^ (p.seed().seed_value * 3U);
    }
    return p.data().id.origin ^ (p.data().id.seq * 5U) ^
           (p.data().content * 7U);
  }

  void fold(std::uint64_t kind, Round round, std::uint64_t a, std::uint64_t b,
            std::uint64_t c) {
    const std::uint64_t words[5] = {kind, static_cast<std::uint64_t>(round), a,
                                    b, c};
    for (std::uint64_t w : words) {
      for (int byte = 0; byte < 8; ++byte) {
        h_ ^= (w >> (8 * byte)) & 0xffU;
        h_ *= 0x100000001b3ULL;
      }
    }
  }

  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

/// Transmits with probability 1/2 from the process-local stream; the digest
/// then covers the engine's RNG stream assignment, not just topology.
class CoinProcess final : public Process {
 public:
  explicit CoinProcess(ProcessId id) : Process(id) {}
  std::optional<Packet> transmit(RoundContext& ctx) override {
    if (!ctx.rng().chance(0.5)) return std::nullopt;
    return Packet{id(), DataPayload{MessageId{id(), ++seq_}, seq_ * 11ULL}};
  }
  void receive(const std::optional<Packet>&, RoundContext&) override {}
  // Touches only its own state and rng stream, so the sharded round loop
  // may call it from worker threads.
  bool shard_safe() const override { return true; }

 private:
  std::uint32_t seq_ = 0;
};

/// The thread cap for the sharded re-verification: comfortably above
/// hardware concurrency on small CI boxes, so the dispatcher, block
/// geometry and serial fallbacks all get exercised.
constexpr std::size_t kMaxRoundThreads = 8;

std::vector<std::unique_ptr<Process>> coin_processes(std::size_t n,
                                                     std::uint64_t id_seed) {
  const auto ids = assign_ids(n, id_seed);
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<CoinProcess>(ids[v]));
  }
  return procs;
}

TEST(DeterminismGolden, FullLbStackOnGrid) {
  const auto g = graph::grid(6, 6, 1.0, 1.5);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<BernoulliScheduler>(0.4), params,
                       /*master_seed=*/2026);
  DigestObserver digest;
  sim.add_observer(&digest);
  sim.keep_busy({0, 17, 35});
  sim.run_rounds(300);
  EXPECT_EQ(digest.digest(), 0x737f76bb0a33085fULL)
      << "actual digest: 0x" << std::hex << digest.digest();
}

TEST(DeterminismGolden, LbStackUnderCrashRecoverChurn) {
  // The FullLbStackOnGrid execution with a Poisson crash/recover schedule
  // attached: pins the fault seam itself (event stream truncation at
  // crashed vertices, the 0xFA17 fault rng stream, crash-abort plumbing).
  const auto g = graph::grid(6, 6, 1.0, 1.5);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<BernoulliScheduler>(0.4), params,
                       /*master_seed=*/2027);
  DigestObserver digest;
  sim.add_observer(&digest);
  sim.keep_busy({0, 17, 35});
  fault::PoissonFaultPlan plan(/*rate=*/0.1, /*mean_repair=*/48.0);
  sim.set_fault_plan(&plan);
  sim.run_rounds(300);
  EXPECT_EQ(digest.digest(), 0xc5870458133631caULL)
      << "actual digest: 0x" << std::hex << digest.digest();
  EXPECT_EQ(sim.ledger().crashes, 21u)
      << "actual crashes: " << std::dec << sim.ledger().crashes;
}

TEST(DeterminismGolden, CoinProcessesUnderFlicker) {
  const auto g = graph::bridged_clusters(8, 1.5);
  FlickerScheduler sched(7, 3);
  Engine engine(g, sched, coin_processes(g.size(), /*id_seed=*/5),
                /*master_seed=*/424242);
  DigestObserver digest;
  engine.add_observer(&digest);
  engine.run_rounds(400);
  EXPECT_EQ(digest.digest(), 0x3ea24745e145549dULL)
      << "actual digest: 0x" << std::hex << digest.digest();
}

TEST(DeterminismGolden, AdaptiveJammerCounterfactual) {
  // The E12 path: the adaptive adversary overrides the oblivious scheduler,
  // so this digest pins the adversary bitmap plumbing too.
  graph::DualGraph g(6);
  g.add_reliable_edge(0, 1);
  g.add_reliable_edge(0, 2);
  for (graph::Vertex v = 3; v < 6; ++v) {
    g.add_unreliable_edge(0, v);
    g.add_reliable_edge(1, v);
  }
  g.finalize();
  BernoulliScheduler sched(0.5);
  Engine engine(g, sched, coin_processes(g.size(), /*id_seed=*/9),
                /*master_seed=*/777);
  TargetedJammer jammer(/*target=*/0);
  engine.set_adaptive_adversary(&jammer);
  DigestObserver digest;
  engine.add_observer(&digest);
  engine.run_rounds(250);
  EXPECT_EQ(digest.digest(), 0x8b29ac4fc45ffa00ULL)
      << "actual digest: 0x" << std::hex << digest.digest();
}

// ---- sharded-path re-verification ----
//
// The same three executions with the round-thread cap maxed: every digest
// must stay bit-identical.  At these sizes some rounds take the sharded
// loop and some fall back to the serial loop (block geometry), which is
// exactly the contract -- round_threads is an upper bound on parallelism,
// never a semantics switch.

TEST(DeterminismGoldenSharded, FullLbStackOnGrid) {
  const auto g = graph::grid(6, 6, 1.0, 1.5);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<BernoulliScheduler>(0.4), params,
                       /*master_seed=*/2026);
  sim.set_round_threads(kMaxRoundThreads);
  DigestObserver digest;
  sim.add_observer(&digest);
  sim.keep_busy({0, 17, 35});
  sim.run_rounds(300);
  EXPECT_EQ(digest.digest(), 0x737f76bb0a33085fULL)
      << "actual digest: 0x" << std::hex << digest.digest();
}

TEST(DeterminismGoldenSharded, LbStackUnderCrashRecoverChurn) {
  const auto g = graph::grid(6, 6, 1.0, 1.5);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<BernoulliScheduler>(0.4), params,
                       /*master_seed=*/2027);
  sim.set_round_threads(kMaxRoundThreads);
  DigestObserver digest;
  sim.add_observer(&digest);
  sim.keep_busy({0, 17, 35});
  fault::PoissonFaultPlan plan(/*rate=*/0.1, /*mean_repair=*/48.0);
  sim.set_fault_plan(&plan);
  sim.run_rounds(300);
  EXPECT_EQ(digest.digest(), 0xc5870458133631caULL)
      << "actual digest: 0x" << std::hex << digest.digest();
  EXPECT_EQ(sim.ledger().crashes, 21u)
      << "actual crashes: " << std::dec << sim.ledger().crashes;
}

TEST(DeterminismGoldenSharded, CoinProcessesUnderFlicker) {
  const auto g = graph::bridged_clusters(8, 1.5);
  FlickerScheduler sched(7, 3);
  Engine engine(g, sched, coin_processes(g.size(), /*id_seed=*/5),
                /*master_seed=*/424242);
  engine.set_round_threads(kMaxRoundThreads);
  DigestObserver digest;
  engine.add_observer(&digest);
  engine.run_rounds(400);
  EXPECT_EQ(digest.digest(), 0x3ea24745e145549dULL)
      << "actual digest: 0x" << std::hex << digest.digest();
}

TEST(DeterminismGoldenSharded, AdaptiveJammerCounterfactual) {
  graph::DualGraph g(6);
  g.add_reliable_edge(0, 1);
  g.add_reliable_edge(0, 2);
  for (graph::Vertex v = 3; v < 6; ++v) {
    g.add_unreliable_edge(0, v);
    g.add_reliable_edge(1, v);
  }
  g.finalize();
  BernoulliScheduler sched(0.5);
  Engine engine(g, sched, coin_processes(g.size(), /*id_seed=*/9),
                /*master_seed=*/777);
  engine.set_round_threads(kMaxRoundThreads);
  TargetedJammer jammer(/*target=*/0);
  engine.set_adaptive_adversary(&jammer);
  DigestObserver digest;
  engine.add_observer(&digest);
  engine.run_rounds(250);
  EXPECT_EQ(digest.digest(), 0x8b29ac4fc45ffa00ULL)
      << "actual digest: 0x" << std::hex << digest.digest();
}

}  // namespace
}  // namespace dg::sim
