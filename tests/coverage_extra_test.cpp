// Additional coverage: scheduler metadata and contracts, engine observer
// fan-out and accessor contracts, environment hooks and listener fan-out in
// LbSimulation, pairwise seed independence, LbParams eps2 case split, and
// the abstract-MAC abort endpoint.
#include <gtest/gtest.h>

#include <memory>

#include "amac/lb_amac.h"
#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "stats/montecarlo.h"
#include "test_support.h"

namespace dg {
namespace {

using test::reliable_path;
using test::ScriptProcess;

// ---- scheduler metadata / contracts ----

TEST(SchedulerNames, AreDescriptive) {
  EXPECT_EQ(sim::ConstantScheduler(false).name(), "full-G");
  EXPECT_EQ(sim::ConstantScheduler(true).name(), "full-G'");
  EXPECT_NE(sim::BernoulliScheduler(0.5).name().find("bernoulli"),
            std::string::npos);
  EXPECT_NE(sim::FlickerScheduler(10, 5).name().find("flicker"),
            std::string::npos);
  EXPECT_NE(sim::BurstScheduler(8, 0.5).name().find("burst"),
            std::string::npos);
  EXPECT_EQ(sim::AntiScheduleAdversary([](sim::Round) { return 0.5; }, 0.25)
                .name(),
            "anti-schedule");
}

TEST(SchedulerContracts, InvalidParametersAbort) {
  EXPECT_DEATH(sim::BernoulliScheduler(-0.1), "precondition");
  EXPECT_DEATH(sim::BernoulliScheduler(1.1), "precondition");
  EXPECT_DEATH(sim::FlickerScheduler(0, 0), "precondition");
  EXPECT_DEATH(sim::FlickerScheduler(5, 6), "precondition");
  EXPECT_DEATH(sim::BurstScheduler(0, 0.5), "precondition");
  EXPECT_DEATH(
      sim::AntiScheduleAdversary(nullptr, 0.5), "precondition");
}

// ---- engine ----

TEST(Engine, MultipleObserversSeeIdenticalEvents) {
  class Counter final : public sim::Observer {
   public:
    void on_transmit(sim::Round, graph::Vertex, const sim::Packet&) override {
      ++transmits;
    }
    void on_receive(sim::Round, graph::Vertex, graph::Vertex,
                    const sim::Packet&) override {
      ++receives;
    }
    int transmits = 0, receives = 0;
  };
  const auto g = reliable_path(2);
  const auto ids = sim::assign_ids(2, 1);
  sim::ConstantScheduler sched(false);
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[0], std::map<sim::Round, std::uint64_t>{{1, 1}, {2, 2}}));
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[1], std::map<sim::Round, std::uint64_t>{}));
  sim::Engine engine(g, sched, std::move(procs), 4);
  Counter a, b;
  engine.add_observer(&a);
  engine.add_observer(&b);
  engine.run_rounds(2);
  EXPECT_EQ(a.transmits, b.transmits);
  EXPECT_EQ(a.receives, b.receives);
  EXPECT_EQ(a.transmits, 2);
  EXPECT_EQ(a.receives, 2);
}

TEST(Engine, RoundBeginAndEndBracketEachRound) {
  class OrderCheck final : public sim::Observer {
   public:
    void on_round_begin(sim::Round round) override {
      EXPECT_EQ(round, expected_next);
      inside = true;
    }
    void on_transmit(sim::Round, graph::Vertex, const sim::Packet&) override {
      EXPECT_TRUE(inside);
    }
    void on_round_end(sim::Round round) override {
      EXPECT_EQ(round, expected_next);
      EXPECT_TRUE(inside);
      inside = false;
      ++expected_next;
    }
    sim::Round expected_next = 1;
    bool inside = false;
  };
  const auto g = reliable_path(2);
  const auto ids = sim::assign_ids(2, 1);
  sim::ConstantScheduler sched(false);
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[0], std::map<sim::Round, std::uint64_t>{{1, 1}}));
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[1], std::map<sim::Round, std::uint64_t>{}));
  sim::Engine engine(g, sched, std::move(procs), 4);
  OrderCheck check;
  engine.add_observer(&check);
  engine.run_rounds(5);
  EXPECT_EQ(check.expected_next, 6);
}

TEST(Engine, ProcessAccessorBoundsChecked) {
  const auto g = reliable_path(2);
  const auto ids = sim::assign_ids(2, 1);
  sim::ConstantScheduler sched(false);
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[0], std::map<sim::Round, std::uint64_t>{}));
  procs.push_back(std::make_unique<ScriptProcess>(
      ids[1], std::map<sim::Round, std::uint64_t>{}));
  sim::Engine engine(g, sched, std::move(procs), 4);
  EXPECT_DEATH(engine.process(2), "precondition");
  EXPECT_DEATH(engine.process_rng(5), "precondition");
}

// ---- graph contracts ----

TEST(GraphContracts, UnreliableEdgeOutOfRangeAborts) {
  graph::DualGraph g(2);
  g.add_unreliable_edge(0, 1);
  g.finalize();
  EXPECT_DEATH(g.unreliable_edge(1), "precondition");
}

TEST(GraphContracts, MinimalGenerators) {
  EXPECT_EQ(graph::grid(1, 1, 1.0, 1.5).size(), 1u);
  EXPECT_EQ(graph::star_ring(1, 1.5).size(), 2u);
  EXPECT_EQ(graph::line(1, 1.0, 1.5).size(), 1u);
}

// ---- pairwise seed independence (Seed spec condition 4) ----

TEST(SeedIndependence, DistinctOwnersUncorrelated) {
  // Across many executions, collect the (owner_a, owner_b) committed seed
  // pairs of two fixed vertices and check bitwise agreement ~50%.
  std::uint64_t agree = 0, total = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng init(seed);
    const auto params = seed::SeedAlgParams::make(0.25, 4);
    seed::SeedAlgRunner a(params, 1, init), b(params, 2, init);
    const std::uint64_t sa = a.initial_seed();
    const std::uint64_t sb = b.initial_seed();
    agree += static_cast<std::uint64_t>(64 - std::popcount(sa ^ sb));
    total += 64;
  }
  const double frac = static_cast<double>(agree) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.5, 0.02);
}

// ---- LbParams eps2 case split (the two cases in the C.2 proof) ----

TEST(LbParamsCases, SmallLogDeltaUsesEps1) {
  // Tiny Delta at moderate r: eps' > eps1 so eps2 = eps1 (case 1).
  const auto p = lb::LbParams::calibrated(0.1, 2.5, 2, 4);
  EXPECT_DOUBLE_EQ(p.eps2, 0.1);
}

TEST(LbParamsCases, LargeLogDeltaUsesEpsPrime) {
  // Big Delta at small r: eps' < eps1 so eps2 = eps' (case 2).
  const auto p = lb::LbParams::calibrated(0.1, 1.0, 1024, 2048);
  EXPECT_LT(p.eps2, 0.1);
}

// ---- LbSimulation plumbing ----

TEST(LbSimulation, EnvironmentHookRunsEveryRound) {
  const auto g = graph::clique_cluster(3);
  lb::LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, 5);
  int calls = 0;
  sim::Round last = 0;
  sim.set_environment([&](lb::LbSimulation&, sim::Round next) {
    ++calls;
    EXPECT_EQ(next, last + 1);
    last = next;
  });
  sim.run_rounds(7);
  EXPECT_EQ(calls, 7);
}

TEST(LbSimulation, ExtraListenerReceivesFanout) {
  class CountListener final : public lb::LbListener {
   public:
    void on_ack(graph::Vertex, const sim::MessageId&, sim::Round) override {
      ++acks;
    }
    void on_recv(graph::Vertex, const sim::MessageId&, std::uint64_t,
                 sim::Round) override {
      ++recvs;
    }
    int acks = 0, recvs = 0;
  };
  const auto g = graph::clique_cluster(3);
  lb::LbScales scales;
  scales.ack_scale = 0.05;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, 6);
  CountListener listener;
  sim.set_extra_listener(&listener);
  sim.post_bcast(0, 1);
  sim.run_phases(params.t_ack_phases + 1);
  EXPECT_EQ(listener.acks, static_cast<int>(sim.report().ack_count));
  EXPECT_EQ(listener.recvs, static_cast<int>(sim.report().recv_count));
  EXPECT_EQ(listener.acks, 1);
}

// ---- abstract MAC abort endpoint ----

TEST(MacEndpoint, AbortCancelsOutstandingBcast) {
  const auto g = graph::clique_cluster(3);
  lb::LbScales scales;
  scales.ack_scale = 0.05;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  lb::LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                       params, 7);
  amac::LbMacLayer mac(sim);
  EXPECT_FALSE(mac.endpoint(0).abort());  // nothing outstanding
  EXPECT_TRUE(mac.endpoint(0).bcast(9));
  EXPECT_TRUE(mac.endpoint(0).busy());
  EXPECT_TRUE(mac.endpoint(0).abort());
  EXPECT_FALSE(mac.endpoint(0).busy());
  sim.run_phases(params.t_ack_phases + 1);
  EXPECT_EQ(sim.report().ack_count, 0u);  // aborted: no ack ever
}

}  // namespace
}  // namespace dg
