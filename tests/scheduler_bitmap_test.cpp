// Property test for the bulk scheduler contract: for every scheduler type,
// fill_round() must agree bit-for-bit with per-edge active() -- across a
// sweep of rounds, edge counts (word-boundary shapes included), and seeds.
// This guards the engine's bitmap fast path against drift from the
// oblivious-schedule contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/dual_graph.h"
#include "sim/adaptive.h"
#include "sim/scheduler.h"
#include "util/bitmap.h"
#include "util/rng.h"
#include "util/simd.h"

namespace dg::sim {
namespace {

/// A star of `edges` unreliable spokes: the simplest graph with an exact
/// unreliable edge count (edge ids 0 .. edges-1 in insertion order).
graph::DualGraph unreliable_star(std::size_t edges) {
  graph::DualGraph g(edges + 1);
  for (graph::Vertex v = 1; v <= edges; ++v) {
    g.add_unreliable_edge(0, v);
  }
  g.finalize();
  return g;
}

/// Asserts fill_round == active over `rounds` rounds of the committed
/// scheduler.
void expect_bulk_matches_active(const LinkScheduler& sched, std::size_t edges,
                                Round rounds) {
  EdgeBitmap bulk(edges);
  for (Round t = 1; t <= rounds; ++t) {
    sched.fill_round(t, bulk);
    for (graph::UnreliableEdgeId e = 0;
         e < static_cast<graph::UnreliableEdgeId>(edges); ++e) {
      ASSERT_EQ(bulk.test(e), sched.active(e, t))
          << sched.name() << " diverges at edge " << e << ", round " << t
          << ", edges=" << edges;
    }
  }
}

// Edge counts straddling the 64-bit word boundaries: empty tail, exact
// words, one-past and one-short.
const std::size_t kEdgeCounts[] = {1, 3, 63, 64, 65, 127, 128, 130, 200};

TEST(SchedulerBitmap, ConstantMatchesActive) {
  for (bool include_all : {false, true}) {
    for (std::size_t edges : kEdgeCounts) {
      const auto g = unreliable_star(edges);
      ConstantScheduler sched(include_all);
      sched.commit(g, 1);
      expect_bulk_matches_active(sched, edges, 16);
    }
  }
}

TEST(SchedulerBitmap, BernoulliMatchesActive) {
  for (double p : {0.0, 0.15, 0.5, 0.85, 1.0}) {
    for (std::size_t edges : kEdgeCounts) {
      for (std::uint64_t seed : {7ULL, 99ULL, 0xdeadbeefULL}) {
        const auto g = unreliable_star(edges);
        BernoulliScheduler sched(p);
        sched.commit(g, seed);
        expect_bulk_matches_active(sched, edges, 64);
      }
    }
  }
}

TEST(SchedulerBitmap, FlickerMatchesActive) {
  for (auto [period, duty] : std::vector<std::pair<Round, Round>>{
           {1, 0}, {1, 1}, {7, 3}, {10, 10}, {64, 1}}) {
    for (std::size_t edges : kEdgeCounts) {
      for (std::uint64_t seed : {3ULL, 1234ULL}) {
        const auto g = unreliable_star(edges);
        FlickerScheduler sched(period, duty);
        sched.commit(g, seed);
        expect_bulk_matches_active(sched, edges, 3 * period + 5);
      }
    }
  }
}

TEST(SchedulerBitmap, BurstMatchesActive) {
  for (auto [epoch, p] : std::vector<std::pair<Round, double>>{
           {1, 0.5}, {5, 0.3}, {16, 0.0}, {16, 1.0}, {3, 0.9}}) {
    for (std::size_t edges : kEdgeCounts) {
      for (std::uint64_t seed : {11ULL, 0xabcULL}) {
        const auto g = unreliable_star(edges);
        BurstScheduler sched(epoch, p);
        sched.commit(g, seed);
        expect_bulk_matches_active(sched, edges, 4 * epoch + 3);
      }
    }
  }
}

TEST(SchedulerBitmap, AntiScheduleMatchesActive) {
  for (std::size_t edges : kEdgeCounts) {
    const auto g = unreliable_star(edges);
    AntiScheduleAdversary sched(
        [](Round t) { return t % 3 == 0 ? 0.75 : 0.1; }, 0.5);
    sched.commit(g, 0);
    expect_bulk_matches_active(sched, edges, 30);
  }
}

TEST(SchedulerBitmap, ExplicitMatchesActive) {
  for (std::size_t edges : kEdgeCounts) {
    // Pseudorandom fixed pattern of 5 rounds, cycled.
    std::vector<std::vector<bool>> pattern(5, std::vector<bool>(edges));
    std::uint64_t x = 0x2545f4914f6cdd1dULL;
    for (auto& row : pattern) {
      for (std::size_t e = 0; e < edges; ++e) {
        x = splitmix64(x);
        row[e] = (x & 1) != 0;
      }
    }
    const auto g = unreliable_star(edges);
    ExplicitScheduler sched(pattern);
    sched.commit(g, 0);
    expect_bulk_matches_active(sched, edges, 17);  // cycles past the pattern
  }
}

TEST(SchedulerBitmap, DefaultFillMatchesActiveForCustomScheduler) {
  // A scheduler that does NOT override fill_round exercises the base-class
  // bulk loop.
  class OddEdgesScheduler final : public LinkScheduler {
   public:
    void commit(const graph::DualGraph&, std::uint64_t) override {}
    bool active(graph::UnreliableEdgeId edge, Round round) const override {
      return (edge + static_cast<graph::UnreliableEdgeId>(round)) % 2 == 0;
    }
    std::string name() const override { return "odd-edges"; }
  };
  for (std::size_t edges : kEdgeCounts) {
    const auto g = unreliable_star(edges);
    OddEdgesScheduler sched;
    sched.commit(g, 0);
    expect_bulk_matches_active(sched, edges, 8);
  }
}

// ---- SIMD word kernels ----
//
// The dispatching entry points (AVX2 where the CPU has it, NEON on
// AArch64) must agree word-for-word with the public scalar references,
// including the
// zeroed-tail invariant past n_bits.  The scheduler-vs-active() sweeps
// above already pin the dispatchers against the per-edge contract (the
// schedulers' fill_round now calls them); these sweeps isolate the
// vector/scalar boundary itself across word-straddling sizes, so a lane
// or tail bug cannot hide behind a scheduler's parameter choices.

/// Fills both buffers from poisoned scratch and asserts equality.
void expect_kernel_words_match(
    std::size_t n_bits, const std::function<void(std::uint64_t*)>& dispatch,
    const std::function<void(std::uint64_t*)>& scalar) {
  const std::size_t n_words = (n_bits + 63) / 64;
  std::vector<std::uint64_t> a(n_words, ~0ULL), b(n_words, ~0ULL);
  dispatch(a.data());
  scalar(b.data());
  const char* lane = util::simd::have_avx2()   ? " (avx2)"
                     : util::simd::have_neon() ? " (neon)"
                                               : " (scalar dispatch)";
  for (std::size_t w = 0; w < n_words; ++w) {
    ASSERT_EQ(a[w], b[w]) << "word " << w << ", n_bits=" << n_bits << lane;
  }
  // Tail invariant: bits at or beyond n_bits are zero.
  if (n_bits % 64 != 0) {
    ASSERT_EQ(a[n_words - 1] >> (n_bits % 64), 0ULL) << "n_bits=" << n_bits;
  }
}

TEST(SimdKernels, HashThresholdDispatchMatchesScalar) {
  // Both scheduler hash shapes: Bernoulli (FNV prime, add = round) and
  // Burst (golden-ratio 32, add = epoch), plus degenerate thresholds.
  const std::uint64_t kMuls[] = {0x100000001b3ULL, 0x9e3779b1ULL};
  const std::uint64_t kThresholds[] = {
      0ULL, 1ULL, ~0ULL, static_cast<std::uint64_t>(0.15 * 18446744073709551615.0),
      1ULL << 63, 3ULL << 62};
  for (std::size_t n_bits : kEdgeCounts) {
    for (std::uint64_t mul : kMuls) {
      for (std::uint64_t threshold : kThresholds) {
        for (std::uint64_t seed : {7ULL, 0xdeadbeefULL}) {
          for (std::uint64_t add : {0ULL, 1ULL, 63ULL, 1000ULL}) {
            expect_kernel_words_match(
                n_bits,
                [&](std::uint64_t* words) {
                  util::simd::fill_hash_threshold(words, n_bits, seed, mul,
                                                  add, threshold);
                },
                [&](std::uint64_t* words) {
                  util::simd::fill_hash_threshold_scalar(words, n_bits, seed,
                                                         mul, add, threshold);
                });
          }
        }
      }
    }
  }
}

TEST(SimdKernels, FlickerDispatchMatchesScalar) {
  for (std::size_t n_bits : kEdgeCounts) {
    for (std::int64_t period : {1LL, 7LL, 64LL, 100LL}) {
      // Pseudorandom per-edge phases in [0, period), the committed form.
      std::vector<std::int64_t> phase(n_bits);
      std::uint64_t x = 0x9e3779b97f4a7c15ULL + n_bits;
      for (auto& p : phase) {
        x = splitmix64(x);
        p = static_cast<std::int64_t>(x % static_cast<std::uint64_t>(period));
      }
      for (std::int64_t duty :
           {std::int64_t{0}, std::int64_t{1}, period / 2, period}) {
        for (std::int64_t base = 0; base < period;
             base += std::max<std::int64_t>(1, period / 5)) {
          expect_kernel_words_match(
              n_bits,
              [&](std::uint64_t* words) {
                util::simd::fill_flicker(words, n_bits, phase.data(), base,
                                         period, duty);
              },
              [&](std::uint64_t* words) {
                util::simd::fill_flicker_scalar(words, n_bits, phase.data(),
                                                base, period, duty);
              });
        }
      }
    }
  }
}

TEST(AdaptiveBitmap, JammerFillMatchesActive) {
  // The adaptive bulk path: TargetedJammer's fill_round must mirror its
  // per-edge active() after each plan_round.
  const std::size_t spokes = 70;  // crosses a word boundary
  graph::DualGraph g(spokes + 2);
  g.add_reliable_edge(0, 1);
  for (graph::Vertex v = 2; v < spokes + 2; ++v) {
    g.add_unreliable_edge(0, v);
  }
  g.finalize();
  TargetedJammer jammer(/*target=*/0);
  std::vector<bool> transmitting(g.size(), false);
  transmitting[1] = true;   // lone reliable transmitter -> jam
  transmitting[40] = true;  // a transmitting unreliable spoke
  jammer.plan_round(1, g, transmitting);
  Bitmap bulk(g.unreliable_edge_count());
  jammer.fill_round(bulk);
  std::size_t on = 0;
  for (graph::UnreliableEdgeId e = 0;
       e < static_cast<graph::UnreliableEdgeId>(g.unreliable_edge_count());
       ++e) {
    EXPECT_EQ(bulk.test(e), jammer.active(e)) << "edge " << e;
    if (bulk.test(e)) ++on;
  }
  EXPECT_EQ(on, 1u);  // exactly the one jam edge
}

}  // namespace
}  // namespace dg::sim
