// Tests for the Seed(delta, eps) specification checker itself (it must
// catch violations -- no vacuous greens) and statistical verification of
// the agreement and independence conditions for SeedAlg executions
// (Theorem 3.1).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "graph/generators.h"
#include "seed/seed_alg.h"
#include "seed/spec.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "stats/montecarlo.h"
#include "util/interval.h"
#include "util/intmath.h"

namespace dg::seed {
namespace {

// ---- checker unit tests on synthetic decision vectors ----

graph::DualGraph triangle() {
  graph::DualGraph g(3);
  g.add_reliable_edge(0, 1);
  g.add_reliable_edge(1, 2);
  g.add_unreliable_edge(0, 2);
  g.finalize();
  return g;
}

TEST(SeedSpecChecker, AcceptsCleanDecisions) {
  const auto g = triangle();
  const std::vector<sim::ProcessId> ids{10, 20, 30};
  DecisionVector d(3);
  d[0] = SeedDecision{10, 111, false, true};
  d[1] = SeedDecision{10, 111, false, false};
  d[2] = SeedDecision{10, 111, false, false};
  const auto res = check_seed_spec(g, ids, d);
  EXPECT_TRUE(res.well_formed);
  EXPECT_TRUE(res.consistent);
  EXPECT_TRUE(res.owners_local);
  EXPECT_EQ(res.max_neighborhood_owners, 1u);
  EXPECT_EQ(res.distinct_owners, 1u);
}

TEST(SeedSpecChecker, FlagsMissingDecision) {
  const auto g = triangle();
  const std::vector<sim::ProcessId> ids{10, 20, 30};
  DecisionVector d(3);
  d[0] = SeedDecision{10, 1, false, true};
  d[2] = SeedDecision{10, 1, false, false};
  EXPECT_FALSE(check_seed_spec(g, ids, d).well_formed);
}

TEST(SeedSpecChecker, FlagsInconsistentSeeds) {
  // Same owner, different seeds: violates Condition 2.
  const auto g = triangle();
  const std::vector<sim::ProcessId> ids{10, 20, 30};
  DecisionVector d(3);
  d[0] = SeedDecision{10, 1, false, true};
  d[1] = SeedDecision{10, 2, false, false};
  d[2] = SeedDecision{10, 1, false, false};
  EXPECT_FALSE(check_seed_spec(g, ids, d).consistent);
}

TEST(SeedSpecChecker, FlagsNonLocalOwner) {
  // Vertex 2 commits to id 999 which belongs to no G'-neighbor.
  const auto g = triangle();
  const std::vector<sim::ProcessId> ids{10, 20, 30};
  DecisionVector d(3);
  d[0] = SeedDecision{10, 1, false, true};
  d[1] = SeedDecision{20, 2, false, true};
  d[2] = SeedDecision{999, 3, false, false};
  EXPECT_FALSE(check_seed_spec(g, ids, d).owners_local);
}

TEST(SeedSpecChecker, CountsNeighborhoodOwners) {
  // Path 0 - 1 - 2 (no 0-2 edge): vertex 1 sees all three owners, vertex 0
  // sees only {10, 20}.
  graph::DualGraph g(3);
  g.add_reliable_edge(0, 1);
  g.add_reliable_edge(1, 2);
  g.finalize();
  const std::vector<sim::ProcessId> ids{10, 20, 30};
  DecisionVector d(3);
  d[0] = SeedDecision{10, 1, false, true};
  d[1] = SeedDecision{20, 2, false, true};
  d[2] = SeedDecision{30, 3, false, true};
  EXPECT_EQ(neighborhood_owner_count(g, ids, d, 0), 2u);
  EXPECT_EQ(neighborhood_owner_count(g, ids, d, 1), 3u);
  const auto res = check_seed_spec(g, ids, d);
  EXPECT_EQ(res.max_neighborhood_owners, 3u);
  EXPECT_TRUE(res.agreement(3));
  EXPECT_FALSE(res.agreement(2));
}

TEST(SeedSpecChecker, OwnerSeedsCollectsMapping) {
  DecisionVector d(2);
  d[0] = SeedDecision{10, 1, false, true};
  d[1] = SeedDecision{20, 2, false, true};
  const auto m = owner_seeds(d);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(10), 1u);
  EXPECT_EQ(m.at(20), 2u);
}

// ---- statistical verification of SeedAlg against the spec ----

struct TrialResult {
  bool well_formed = false;
  bool consistent = false;
  bool owners_local = false;
  std::size_t max_owners = 0;
  std::vector<std::uint64_t> committed_seeds;  // one per distinct owner
};

TrialResult run_seed_trial(std::uint64_t seed, double eps1, std::size_t n,
                           double side, double p_sched) {
  Rng rng(seed);
  graph::GeometricSpec spec;
  spec.n = n;
  spec.side = side;
  spec.r = 1.5;
  const graph::DualGraph g = graph::random_geometric(spec, rng);
  const auto params = SeedAlgParams::make(eps1, g.delta());
  const auto ids = sim::assign_ids(g.size(), derive_seed(seed, 1));

  sim::BernoulliScheduler sched(p_sched);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng init_rng(derive_seed(seed, 2));
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(std::make_unique<SeedProcess>(params, ids[v], init_rng));
  }
  sim::Engine engine(g, sched, std::move(procs), derive_seed(seed, 3));
  engine.run_rounds(params.total_rounds());

  DecisionVector decisions(g.size());
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    decisions[v] =
        dynamic_cast<const SeedProcess&>(engine.process(v)).decision();
  }
  const auto res = check_seed_spec(g, ids, decisions);
  TrialResult out;
  out.well_formed = res.well_formed;
  out.consistent = res.consistent;
  out.owners_local = res.owners_local;
  out.max_owners = res.max_neighborhood_owners;
  for (const auto& [owner, value] : owner_seeds(decisions)) {
    out.committed_seeds.push_back(value);
  }
  return out;
}

class SeedAgreement
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SeedAgreement, SafetyHoldsAndOwnersBounded) {
  const auto [eps1, p_sched] = GetParam();
  const auto results =
      stats::run_trials(24, 0x5eedULL ^ std::hash<double>{}(eps1 + p_sched),
                        [&](std::size_t, std::uint64_t s) {
                          return run_seed_trial(s, eps1, 48, 3.0, p_sched);
                        });

  // The paper's delta is O(r^2 log(1/eps1)); with r = 1.5 and calibrated
  // constants a generous concrete ceiling is 6 * r^2 * log2(1/eps1) + 6.
  const double delta_bound = 6.0 * 1.5 * 1.5 * std::log2(1.0 / eps1) + 6.0;
  BernoulliTally agreement;
  for (const auto& r : results) {
    ASSERT_TRUE(r.well_formed);   // deterministic: every execution
    ASSERT_TRUE(r.consistent);    // deterministic: every execution
    ASSERT_TRUE(r.owners_local);
    agreement.record(static_cast<double>(r.max_owners) <= delta_bound);
  }
  // Agreement is probabilistic; with the generous bound it should
  // essentially always hold.
  EXPECT_TRUE(agreement.consistent_with_at_least(1.0 - eps1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeedAgreement,
    ::testing::Combine(::testing::Values(0.25, 0.1, 0.05),
                       ::testing::Values(0.0, 0.5, 1.0)));

TEST(SeedIndependence, CommittedSeedBitsAreBalanced) {
  // Pool committed seed values across owners and trials; every bit position
  // should be ~uniform (Condition 4: seeds are uniform independent draws).
  std::vector<std::uint64_t> seeds;
  const auto results = stats::run_trials(
      40, 0xdeadULL, [&](std::size_t, std::uint64_t s) {
        return run_seed_trial(s, 0.1, 32, 2.5, 0.5);
      });
  for (const auto& r : results) {
    seeds.insert(seeds.end(), r.committed_seeds.begin(),
                 r.committed_seeds.end());
  }
  ASSERT_GT(seeds.size(), 100u);
  for (int bit = 0; bit < 64; ++bit) {
    std::size_t ones = 0;
    for (std::uint64_t s : seeds) {
      ones += (s >> bit) & 1U;
    }
    const double freq = static_cast<double>(ones) / seeds.size();
    EXPECT_NEAR(freq, 0.5, 0.2) << "bit " << bit;
  }
}

TEST(SeedTiming, RoundComplexityMatchesFormula) {
  // Theorem 3.1: O(log Delta * log^2(1/eps1)) rounds -- and the algorithm
  // is synchronous, so the count is exact and deterministic.
  for (std::size_t delta : {4, 16, 64}) {
    for (double eps : {0.25, 0.05}) {
      const auto params = SeedAlgParams::make(eps, delta);
      EXPECT_EQ(params.total_rounds(),
                params.num_phases * params.phase_length);
      EXPECT_EQ(params.num_phases, ceil_log2(pow2_ceil(delta)));
    }
  }
}

TEST(SeedLocality, RoundCountIndependentOfN) {
  // True locality: the algorithm's running time depends on Delta, never on
  // the network size n.
  const auto params = SeedAlgParams::make(0.1, 32);
  for (std::size_t n : {10, 100, 1000}) {
    (void)n;  // there is no n anywhere in the parameter computation
    EXPECT_EQ(SeedAlgParams::make(0.1, 32).total_rounds(),
              params.total_rounds());
  }
}

}  // namespace
}  // namespace dg::seed
