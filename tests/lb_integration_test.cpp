// Integration tests: LBAlg against the full LB specification across
// topology x scheduler combinations, plus the true-locality property
// (latency independent of n at fixed Delta).
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "lb/simulation.h"
#include "sim/scheduler.h"
#include "stats/montecarlo.h"

namespace dg::lb {
namespace {

enum class SchedKind { full_g, full_gprime, bernoulli, flicker };

std::unique_ptr<sim::LinkScheduler> make_scheduler(SchedKind kind) {
  switch (kind) {
    case SchedKind::full_g:
      return std::make_unique<sim::ConstantScheduler>(false);
    case SchedKind::full_gprime:
      return std::make_unique<sim::ConstantScheduler>(true);
    case SchedKind::bernoulli:
      return std::make_unique<sim::BernoulliScheduler>(0.5);
    case SchedKind::flicker:
      return std::make_unique<sim::FlickerScheduler>(64, 32);
  }
  return nullptr;
}

struct TrialOutcome {
  bool deterministic_ok = false;
  std::uint64_t rel_succ = 0, rel_trials = 0;
  std::uint64_t prog_succ = 0, prog_trials = 0;
};

TrialOutcome run_trial(std::uint64_t seed, SchedKind kind) {
  Rng rng(seed);
  graph::GeometricSpec spec;
  spec.n = 40;
  spec.side = 3.0;
  spec.r = 1.5;
  const auto g = graph::random_geometric(spec, rng);
  LbScales scales;
  scales.ack_scale = 0.005;
  const auto params =
      LbParams::calibrated(0.1, spec.r, g.delta(), g.delta_prime(), scales);
  LbSimulation sim(g, make_scheduler(kind), params, derive_seed(seed, 9));
  sim.keep_busy({0, static_cast<graph::Vertex>(g.size() / 2)});
  sim.run_phases(params.t_ack_phases + 3);
  const auto& r = sim.report();
  TrialOutcome out;
  out.deterministic_ok =
      r.timely_ack_ok && r.validity_ok && r.violations == 0;
  out.rel_succ = r.reliability.successes();
  out.rel_trials = r.reliability.trials();
  out.prog_succ = r.progress.successes();
  out.prog_trials = r.progress.trials();
  return out;
}

class LbUnderScheduler : public ::testing::TestWithParam<SchedKind> {};

TEST_P(LbUnderScheduler, SpecHolds) {
  const SchedKind kind = GetParam();
  const auto results = stats::run_trials(
      12, 0xfeedULL + static_cast<std::uint64_t>(kind),
      [&](std::size_t, std::uint64_t s) { return run_trial(s, kind); });

  BernoulliTally reliability, progress;
  for (const auto& r : results) {
    ASSERT_TRUE(r.deterministic_ok);
    reliability.record(r.rel_succ == r.rel_trials);
    for (std::uint64_t i = 0; i < r.prog_trials; ++i) {
      progress.record(i < r.prog_succ);
    }
  }
  // Reliability target 1 - eps1 = 0.9 per broadcast; we asserted all
  // broadcasts per trial delivered, which is stricter, so allow the Wilson
  // band to do its work.
  EXPECT_TRUE(reliability.consistent_with_at_least(0.9));
  if (progress.trials() > 0) {
    EXPECT_TRUE(progress.consistent_with_at_least(0.85))
        << progress.frequency();
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, LbUnderScheduler,
                         ::testing::Values(SchedKind::full_g,
                                           SchedKind::full_gprime,
                                           SchedKind::bernoulli,
                                           SchedKind::flicker));

TEST(LbLocality, LatencyBoundsIndependentOfNetworkSize) {
  // Fix Delta and Delta'; grow n by replicating far-apart cliques.  The
  // parameter set -- and hence every latency bound -- must be identical.
  const auto params_small = LbParams::calibrated(0.1, 1.5, 8, 8);
  const auto params_large = LbParams::calibrated(0.1, 1.5, 8, 8);
  EXPECT_EQ(params_small.t_prog_bound(), params_large.t_prog_bound());
  EXPECT_EQ(params_small.t_ack_bound(), params_large.t_ack_bound());

  // And measured: many disjoint cliques (n = 8 * k) behave like one clique.
  auto measure = [](std::size_t k, std::uint64_t seed) {
    graph::DualGraph g(8 * k);
    geo::Embedding emb(8 * k);
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = i + 1; j < 8; ++j) {
          g.add_reliable_edge(static_cast<graph::Vertex>(8 * c + i),
                              static_cast<graph::Vertex>(8 * c + j));
        }
        emb[8 * c + i] = geo::Point{static_cast<double>(c) * 100.0,
                                    static_cast<double>(i) * 0.1};
      }
    }
    g.set_embedding(std::move(emb), 1.5);
    g.finalize();
    LbScales scales;
    scales.ack_scale = 0.005;
    const auto params =
        LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
    LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false),
                     params, seed);
    sim.post_bcast(0, 1);
    sim.run_phases(params.t_ack_phases + 1);
    const auto& rec = sim.checker().broadcasts()[0];
    return rec.delivered() ? rec.delivered_round : -1;
  };

  // Same seed-derived randomness won't match across sizes, but delivery
  // must complete within the same (n-independent) phase budget.
  for (std::uint64_t seed : {100u, 101u}) {
    const auto small = measure(1, seed);
    const auto large = measure(32, seed);  // 32x the network size
    EXPECT_GT(small, 0);
    EXPECT_GT(large, 0);
  }
}

TEST(LbBridgedClusters, NoCrossTalkWhenSchedulerWithholdsBridge) {
  // All cross-cluster edges are unreliable; with the scheduler excluding
  // E' \ E entirely, no message can cross -- and validity must still hold.
  const auto g = graph::bridged_clusters(4, 1.5);
  LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   321);
  sim.post_bcast(0, 1);  // cluster A
  sim.run_phases(params.t_ack_phases + 1);
  // Nothing in cluster B (vertices 4..7) may have received anything.
  for (const auto& rec : sim.checker().broadcasts()) {
    for (const auto& [v, round] : rec.recv_rounds) {
      EXPECT_LT(v, 4u);
    }
  }
  EXPECT_TRUE(sim.report().validity_ok);
}

TEST(LbBridgedClusters, BridgeCarriesMessagesWhenIncluded) {
  const auto g = graph::bridged_clusters(4, 1.5);
  LbScales scales;
  scales.ack_scale = 0.01;
  const auto params =
      LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(true), params,
                   322);
  sim.keep_busy({0});
  sim.run_phases(params.t_ack_phases + 2);
  // Raw receptions across the bridge are possible now; at minimum the spec
  // holds and someone in cluster B heard something (unreliable edges are
  // all present, cluster B nodes are idle listeners).
  EXPECT_TRUE(sim.report().validity_ok);
  EXPECT_GT(sim.report().raw_receptions, 0u);
}

TEST(LbStarRing, HubReceivesFromSaturatedLeaves) {
  const auto g = graph::star_ring(12, 1.5);
  LbScales scales;
  scales.ack_scale = 0.002;
  const auto params =
      LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  LbSimulation sim(g, std::make_unique<sim::ConstantScheduler>(false), params,
                   323);
  std::vector<graph::Vertex> leaves;
  for (graph::Vertex v = 1; v <= 12; ++v) leaves.push_back(v);
  sim.keep_busy(leaves);
  sim.run_phases(params.t_ack_phases + 2);
  EXPECT_GT(sim.report().recv_count, 0u);
  EXPECT_TRUE(sim.report().validity_ok);
  EXPECT_TRUE(sim.report().timely_ack_ok);
}

}  // namespace
}  // namespace dg::lb
