// Tests for the dual graph structure and the topology generators: the
// E subset-of E' invariant, degree bounds, the r-geographic conditions of
// Section 2 (property sweeps over random instances), and Lemma A.3.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "geo/region_partition.h"
#include "graph/dual_graph.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dg::graph {
namespace {

TEST(DualGraph, ReliableEdgesAppearInBothGraphs) {
  DualGraph g(3);
  g.add_reliable_edge(0, 1);
  g.finalize();
  EXPECT_TRUE(g.has_reliable_edge(0, 1));
  EXPECT_TRUE(g.has_gprime_edge(0, 1));
  EXPECT_FALSE(g.has_reliable_edge(0, 2));
}

TEST(DualGraph, UnreliableEdgesOnlyInGPrime) {
  DualGraph g(3);
  g.add_unreliable_edge(0, 1);
  g.finalize();
  EXPECT_FALSE(g.has_reliable_edge(0, 1));
  EXPECT_TRUE(g.has_gprime_edge(0, 1));
  EXPECT_EQ(g.unreliable_edge_count(), 1u);
  EXPECT_EQ(g.unreliable_edge(0).u, 0u);
  EXPECT_EQ(g.unreliable_edge(0).v, 1u);
}

TEST(DualGraph, AddsAreIdempotent) {
  DualGraph g(2);
  g.add_reliable_edge(0, 1);
  g.add_reliable_edge(1, 0);
  g.finalize();
  EXPECT_EQ(g.g_neighbors(0).size(), 1u);
  EXPECT_EQ(g.gprime_neighbors(0).size(), 1u);
}

TEST(DualGraph, MixingEdgeClassesAborts) {
  DualGraph g(2);
  g.add_reliable_edge(0, 1);
  EXPECT_DEATH(g.add_unreliable_edge(0, 1), "precondition");
}

TEST(DualGraph, SelfLoopsRejected) {
  DualGraph g(2);
  EXPECT_DEATH(g.add_reliable_edge(1, 1), "precondition");
}

TEST(DualGraph, QueriesBeforeFinalizeAbort) {
  DualGraph g(2);
  g.add_reliable_edge(0, 1);
  EXPECT_DEATH(g.g_neighbors(0), "precondition");
}

TEST(DualGraph, EdgesAfterFinalizeAbort) {
  DualGraph g(3);
  g.finalize();
  EXPECT_DEATH(g.add_reliable_edge(0, 1), "precondition");
}

TEST(DualGraph, DegreeBoundsCountSelfPlusNeighbors) {
  DualGraph g(4);  // star around 0 plus an unreliable 1-2 edge
  g.add_reliable_edge(0, 1);
  g.add_reliable_edge(0, 2);
  g.add_reliable_edge(0, 3);
  g.add_unreliable_edge(1, 2);
  g.finalize();
  EXPECT_EQ(g.delta(), 4u);        // |N_G(0) u {0}|
  EXPECT_EQ(g.delta_prime(), 4u);  // same vertex dominates
}

TEST(DualGraph, UnreliableIncidentListsBothEndpoints) {
  DualGraph g(3);
  g.add_unreliable_edge(0, 2);
  g.finalize();
  ASSERT_EQ(g.unreliable_incident(0).size(), 1u);
  ASSERT_EQ(g.unreliable_incident(2).size(), 1u);
  EXPECT_EQ(g.unreliable_incident(0)[0].second, 2u);
  EXPECT_EQ(g.unreliable_incident(2)[0].second, 0u);
  EXPECT_EQ(g.unreliable_incident(0)[0].first,
            g.unreliable_incident(2)[0].first);
}

// ---- generators: property sweeps ----

class GeometricProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeometricProperty, RandomGeometricIsRGeographic) {
  Rng rng(GetParam());
  GeometricSpec spec;
  spec.n = 40;
  spec.side = 3.0;
  spec.r = 1.5;
  const DualGraph g = random_geometric(spec, rng);
  ASSERT_TRUE(g.embedding().has_value());
  EXPECT_TRUE(is_r_geographic(g, *g.embedding(), spec.r));
}

TEST_P(GeometricProperty, DeltaPrimeBoundedByCrDelta) {
  // Lemma A.3: Delta' <= c_r * Delta for r-geographic dual graphs.
  Rng rng(GetParam() ^ 0xabcdef);
  GeometricSpec spec;
  spec.n = 60;
  spec.side = 4.0;
  spec.r = 2.0;
  const DualGraph g = random_geometric(spec, rng);
  const geo::GridPartition part(0.5, spec.r);
  EXPECT_LE(g.delta_prime(), part.cr_bound() * g.delta());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometricProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Generators, GridHasExpectedStructure) {
  const DualGraph g = grid(4, 3, 1.0, 1.5);
  EXPECT_EQ(g.size(), 12u);
  // spacing 1.0: orthogonal neighbors reliable.
  EXPECT_TRUE(g.has_reliable_edge(0, 1));
  EXPECT_TRUE(g.has_reliable_edge(0, 4));
  // diagonal at sqrt(2) ~ 1.414 <= r: unreliable.
  EXPECT_FALSE(g.has_reliable_edge(0, 5));
  EXPECT_TRUE(g.has_gprime_edge(0, 5));
  EXPECT_TRUE(is_r_geographic(g, *g.embedding(), 1.5));
}

TEST(Generators, CliqueClusterIsComplete) {
  const DualGraph g = clique_cluster(8);
  for (Vertex u = 0; u < 8; ++u) {
    EXPECT_EQ(g.g_neighbors(u).size(), 7u);
  }
  EXPECT_EQ(g.delta(), 8u);
  EXPECT_EQ(g.unreliable_edge_count(), 0u);
}

TEST(Generators, StarRingHubSeesAllLeaves) {
  const std::size_t leaves = 16;
  const DualGraph g = star_ring(leaves, 1.5);
  EXPECT_EQ(g.g_neighbors(0).size(), leaves);
  EXPECT_EQ(g.delta(), leaves + 1);
  EXPECT_TRUE(is_r_geographic(g, *g.embedding(), 1.5));
}

TEST(Generators, LineIsAPath) {
  const DualGraph g = line(6, 1.0, 1.5);
  EXPECT_TRUE(g.has_reliable_edge(0, 1));
  EXPECT_FALSE(g.has_reliable_edge(0, 2));
  EXPECT_FALSE(g.has_gprime_edge(0, 3));  // distance 3 > r
  EXPECT_TRUE(is_r_geographic(g, *g.embedding(), 1.5));
}

TEST(Generators, LineGreyZoneIsUnreliable) {
  // spacing 0.75: distance-2 pairs at 1.5 (= r) fall in the grey zone and
  // the generator wires them as unreliable.
  const DualGraph g = line(5, 0.75, 1.5);
  EXPECT_TRUE(g.has_reliable_edge(0, 1));
  EXPECT_TRUE(g.has_gprime_edge(0, 2));
  EXPECT_FALSE(g.has_reliable_edge(0, 2));
}

TEST(Generators, BridgedClustersCrossEdgesAllUnreliable) {
  const DualGraph g = bridged_clusters(5, 1.5);
  EXPECT_EQ(g.size(), 10u);
  for (Vertex a = 0; a < 5; ++a) {
    for (Vertex b = 5; b < 10; ++b) {
      EXPECT_FALSE(g.has_reliable_edge(a, b));
      EXPECT_TRUE(g.has_gprime_edge(a, b))
          << "bridge pair " << a << "," << b;
    }
  }
  // Within a cluster: all reliable.
  EXPECT_TRUE(g.has_reliable_edge(0, 1));
  EXPECT_TRUE(g.has_reliable_edge(5, 6));
  EXPECT_TRUE(is_r_geographic(g, *g.embedding(), 1.5));
}

TEST(Generators, GeneratedGraphsAreDeterministicPerSeed) {
  Rng rng1(55), rng2(55);
  GeometricSpec spec;
  spec.n = 30;
  const DualGraph a = random_geometric(spec, rng1);
  const DualGraph b = random_geometric(spec, rng2);
  ASSERT_EQ(a.size(), b.size());
  const auto same = [](std::span<const Vertex> x, std::span<const Vertex> y) {
    return std::equal(x.begin(), x.end(), y.begin(), y.end());
  };
  for (Vertex v = 0; v < a.size(); ++v) {
    EXPECT_TRUE(same(a.g_neighbors(v), b.g_neighbors(v)));
    EXPECT_TRUE(same(a.gprime_neighbors(v), b.gprime_neighbors(v)));
  }
}

TEST(IsRGeographic, DetectsMissingReliableEdge) {
  // Two nodes at distance 0.5 with no edge: violates condition 1.
  DualGraph g(2);
  g.set_embedding({{0.0, 0.0}, {0.5, 0.0}}, 1.5);
  g.finalize();
  EXPECT_FALSE(is_r_geographic(g, *g.embedding(), 1.5));
}

TEST(IsRGeographic, DetectsTooLongEdge) {
  // Edge between nodes at distance 3 > r: violates condition 2.
  DualGraph g(2);
  g.add_unreliable_edge(0, 1);
  g.set_embedding({{0.0, 0.0}, {3.0, 0.0}}, 1.5);
  g.finalize();
  EXPECT_FALSE(is_r_geographic(g, *g.embedding(), 1.5));
}

}  // namespace
}  // namespace dg::graph
