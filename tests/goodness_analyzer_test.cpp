// Tests for the GoodnessAnalyzer (Appendix B replay tooling as library).
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "seed/goodness.h"
#include "seed/seed_alg.h"
#include "sim/engine.h"
#include "sim/scheduler.h"

namespace dg::seed {
namespace {

struct World {
  graph::DualGraph g;
  SeedAlgParams params;
  std::vector<sim::ProcessId> ids;
  std::unique_ptr<sim::ConstantScheduler> sched;
  std::unique_ptr<sim::Engine> engine;
};

World make_world(std::uint64_t seed, std::size_t n = 48) {
  Rng rng(seed);
  graph::GeometricSpec spec;
  spec.n = n;
  spec.side = 3.0;
  spec.r = 1.5;
  World w{graph::random_geometric(spec, rng),
          SeedAlgParams{},
          sim::assign_ids(n, derive_seed(seed, 1)),
          std::make_unique<sim::ConstantScheduler>(false),
          nullptr};
  w.params = SeedAlgParams::make(0.1, w.g.delta());
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng init(derive_seed(seed, 2));
  for (graph::Vertex v = 0; v < w.g.size(); ++v) {
    procs.push_back(
        std::make_unique<SeedProcess>(w.params, w.ids[v], init));
  }
  w.engine = std::make_unique<sim::Engine>(w.g, *w.sched, std::move(procs),
                                           derive_seed(seed, 3));
  return w;
}

TEST(GoodnessAnalyzer, RequiresEmbedding) {
  graph::DualGraph g(2);
  g.add_reliable_edge(0, 1);
  g.finalize();
  EXPECT_DEATH(GoodnessAnalyzer(g, 0.1), "precondition");
}

TEST(GoodnessAnalyzer, PhaseOneIsAlwaysGood) {
  // Lemma B.2: P_{x,1} <= 1 <= threshold for every region.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto w = make_world(seed);
    GoodnessAnalyzer analyzer(w.g, 0.1);
    const auto snap = analyzer.snapshot(*w.engine, 1, w.params);
    EXPECT_EQ(snap.phase, 1);
    EXPECT_LE(snap.max_p, 1.0 + 1e-9);
    EXPECT_TRUE(snap.all_good());
    EXPECT_GT(snap.regions, 0u);
  }
}

TEST(GoodnessAnalyzer, LeaderProbabilityDoublesPerPhase) {
  auto w = make_world(4);
  GoodnessAnalyzer analyzer(w.g, 0.1);
  double prev = 0.0;
  for (int h = 1; h <= w.params.num_phases; ++h) {
    const auto snap = analyzer.snapshot(*w.engine, h, w.params);
    if (h > 1) {
      EXPECT_DOUBLE_EQ(snap.p_h, 2.0 * prev);
    }
    prev = snap.p_h;
    w.engine->run_rounds(w.params.phase_length);
  }
  EXPECT_DOUBLE_EQ(prev, 0.5);  // final phase: 1/2
}

TEST(GoodnessAnalyzer, ActiveCountsOnlyDecreaseOverPhases) {
  auto w = make_world(5);
  GoodnessAnalyzer analyzer(w.g, 0.1);
  std::size_t prev_regions = w.g.size() + 1;
  for (int h = 1; h <= w.params.num_phases; ++h) {
    const auto snap = analyzer.snapshot(*w.engine, h, w.params);
    EXPECT_LE(snap.regions, prev_regions);
    prev_regions = snap.regions;
    w.engine->run_rounds(w.params.phase_length);
  }
}

TEST(GoodnessAnalyzer, DefaultDecisionsBoundedPerRegion) {
  auto w = make_world(6);
  GoodnessAnalyzer analyzer(w.g, 0.1);
  w.engine->run_rounds(w.params.total_rounds());
  const auto defaults = analyzer.default_decisions(*w.engine);
  // Lemma B.5 for good regions: <= 2 c2 log(1/eps1).
  const double bound = 2.0 * analyzer.threshold();
  for (const auto& [region, count] : defaults) {
    EXPECT_LE(static_cast<double>(count), bound);
  }
}

TEST(GoodnessAnalyzer, ThresholdMatchesC2Formula) {
  auto w = make_world(7);
  GoodnessAnalyzer analyzer(w.g, 0.25, /*c2=*/4.0);
  EXPECT_DOUBLE_EQ(analyzer.threshold(), 4.0 * 2.0);  // 4 * log2(4)
}

TEST(GoodnessAnalyzer, RegionAssignmentMatchesPartition) {
  auto w = make_world(8);
  GoodnessAnalyzer analyzer(w.g, 0.1);
  const auto& emb = *w.g.embedding();
  for (graph::Vertex v = 0; v < w.g.size(); ++v) {
    EXPECT_EQ(analyzer.region_of(v),
              analyzer.partition().region_of(emb[v]));
  }
}

}  // namespace
}  // namespace dg::seed
