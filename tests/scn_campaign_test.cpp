// Integration tests over the checked-in campaign files (campaigns/):
// every file must validate, the smoke campaign must reproduce the golden
// counters byte-for-byte (the same gate CI applies via
// tools/bench_diff.py --counters-only), and the full experiment campaigns
// must execute at reduced trial counts (the nightly job's shape).
//
// The golden compare is the in-repo replica of the CI counter-regression
// gate: if an intentional semantic change moves the counters, regenerate
// with
//   dgcampaign run campaigns/smoke.json --out=<dir>
//   cp <dir>/COUNTERS_smoke.json campaigns/golden/smoke_counters.json
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scn/campaign.h"
#include "scn/scenario.h"

namespace dg::scn {
namespace {

std::string campaign_dir() {
  const char* dir = std::getenv("DG_CAMPAIGN_DIR");
  if (dir != nullptr && *dir != '\0') return dir;
#ifdef DG_CAMPAIGN_DIR
  return DG_CAMPAIGN_DIR;
#else
  return "campaigns";
#endif
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(static_cast<bool>(is)) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(CheckedInCampaigns, AllFilesValidate) {
  namespace fs = std::filesystem;
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(campaign_dir())) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") {
      continue;
    }
    ++seen;
    const auto parsed = parse_campaign_file(entry.path().string());
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_FALSE(parsed.campaign.variants.empty()) << entry.path();
  }
  // smoke + the four ported experiment campaigns + E15, at minimum.
  EXPECT_GE(seen, 6u);
}

TEST(CheckedInCampaigns, SmokeMatchesGoldenCountersAnyThreadCount) {
  const auto parsed =
      parse_campaign_file(campaign_dir() + "/smoke.json");
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  RunOptions one;
  one.threads = 1;
  const std::string counters_one =
      counters_json(run_campaign(parsed.campaign, one));
  RunOptions many;  // hardware concurrency
  const std::string counters_many =
      counters_json(run_campaign(parsed.campaign, many));
  EXPECT_EQ(counters_one, counters_many)
      << "counter output must not depend on the thread count";

  const std::string golden =
      slurp(campaign_dir() + "/golden/smoke_counters.json");
  EXPECT_EQ(counters_one, golden)
      << "seed-deterministic counters moved; if intentional, regenerate "
         "campaigns/golden/smoke_counters.json (see this file's header)";
}

// Nightly-shaped sweep: every experiment campaign executes end to end at
// reduced trials.  Labeled "slow" in tests/CMakeLists.txt -- PR CI runs
// tier1 only, the nightly workflow runs everything.
TEST(CheckedInCampaigns, ExperimentCampaignsRunReduced) {
  for (const char* name :
       {"e3_progress", "e6_adversary", "e13_r_sensitivity", "e14_sinr",
        "e15_traffic"}) {
    const auto parsed = parse_campaign_file(campaign_dir() + "/" +
                                            std::string(name) + ".json");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    RunOptions options;
    options.max_trials = 2;
    const auto result = run_campaign(parsed.campaign, options);
    EXPECT_EQ(result.variants.size(), parsed.campaign.variants.size());
    for (const auto& v : result.variants) {
      EXPECT_EQ(v.trials.size(), 2u) << v.spec.name;
      EXPECT_FALSE(v.metrics.empty()) << v.spec.name;
    }
  }
}

}  // namespace
}  // namespace dg::scn
