// Differential harness for the sharded round engine: the same execution at
// round_threads 1 (the serial loop), 2, 3 and 8 must be *byte-identical* --
// every observer event in the same order, every golden-style digest equal,
// every TrafficStats ledger field equal.  Determinism is structural (disjoint
// block writes, per-vertex rng streams, serial observer replay in ascending
// vertex order), so these sweeps are the engine's strongest contract: any
// scheduling-dependent leak shows up as a stream mismatch, not a flake.
//
// The property section stresses the block geometry where off-by-ones live:
// odd vertex counts straddling the 64-vertex block alignment, networks
// smaller than the thread count (serial fallback), isolated vertices, and
// randomized geometric topologies.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fault/spec.h"
#include "graph/generators.h"
#include "lb/simulation.h"
#include "obs/registry.h"
#include "phys/sinr.h"
#include "seed/seed_alg.h"
#include "sim/engine.h"
#include "sim/engine_config.h"
#include "sim/scheduler.h"
#include "sim/splice.h"
#include "traffic/spec.h"
#include "util/rng.h"

namespace dg::sim {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 3, 8};

/// Records every event as a formatted line; vectors compare with exact
/// failure positions, unlike a bare digest.
class StreamObserver final : public Observer {
 public:
  const std::vector<std::string>& events() const noexcept { return events_; }

  void on_round_begin(Round round) override {
    line() << "begin " << round;
    push();
  }
  void on_transmit(Round round, graph::Vertex v, const Packet& p) override {
    line() << "tx " << round << ' ' << v << ' ' << p.sender << ' '
           << payload_word(p);
    push();
  }
  void on_receive(Round round, graph::Vertex u, graph::Vertex from,
                  const Packet& p) override {
    line() << "rx " << round << ' ' << u << ' ' << from << ' '
           << payload_word(p);
    push();
  }
  void on_silence(Round round, graph::Vertex u, bool collision) override {
    line() << "sil " << round << ' ' << u << ' ' << (collision ? 1 : 0);
    push();
  }
  void on_round_end(Round round) override {
    line() << "end " << round;
    push();
  }

 private:
  static std::uint64_t payload_word(const Packet& p) {
    if (p.is_seed()) return p.seed().owner ^ (p.seed().seed_value * 3U);
    return p.data().id.origin ^ (p.data().id.seq * 5U) ^
           (p.data().content * 7U);
  }
  std::ostringstream& line() {
    os_.str("");
    return os_;
  }
  void push() { events_.push_back(os_.str()); }

  std::ostringstream os_;
  std::vector<std::string> events_;
};

/// Coin-flip transmitter that also ledgers everything it hears, so the
/// comparison covers process-visible state, not just observer streams.
class ShardCoinProcess final : public Process {
 public:
  explicit ShardCoinProcess(ProcessId id) : Process(id) {}

  std::optional<Packet> transmit(RoundContext& ctx) override {
    if (!ctx.rng().chance(0.5)) return std::nullopt;
    return Packet{id(), DataPayload{MessageId{id(), ++seq_}, seq_ * 11ULL}};
  }
  void receive(const std::optional<Packet>& packet,
               RoundContext& ctx) override {
    if (packet.has_value() && packet->is_data()) {
      heard_hash_ = splitmix64(heard_hash_ ^ packet->data().content ^
                               static_cast<std::uint64_t>(ctx.round()));
    }
  }
  bool shard_safe() const override { return true; }

  std::uint64_t heard_hash() const noexcept { return heard_hash_; }

 private:
  std::uint32_t seq_ = 0;
  std::uint64_t heard_hash_ = 0x243f6a8885a308d3ULL;
};

std::vector<std::unique_ptr<Process>> shard_coins(std::size_t n,
                                                  std::uint64_t id_seed) {
  const auto ids = assign_ids(n, id_seed);
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    procs.push_back(std::make_unique<ShardCoinProcess>(ids[v]));
  }
  return procs;
}

struct RunResult {
  std::vector<std::string> events;
  std::vector<std::uint64_t> heard;  ///< per-vertex process end state
};

/// One coin-process execution over `g` at the given thread cap.
RunResult run_once(const graph::DualGraph& g,
                   const std::function<std::unique_ptr<LinkScheduler>()>&
                       make_scheduler,
                   std::size_t round_threads, Round rounds,
                   std::uint64_t master_seed) {
  auto sched = make_scheduler();
  Engine engine(g, *sched, shard_coins(g.size(), master_seed ^ 0x5eedULL),
                master_seed);
  engine.set_round_threads(round_threads);
  StreamObserver stream;
  engine.add_observer(&stream);
  engine.run_rounds(rounds);
  RunResult result;
  result.events = stream.events();
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    result.heard.push_back(
        dynamic_cast<const ShardCoinProcess&>(engine.process(v)).heard_hash());
  }
  return result;
}

/// Asserts byte-identical runs across kThreadCounts, with the serial run as
/// the reference.
void expect_thread_invariant(
    const graph::DualGraph& g,
    const std::function<std::unique_ptr<LinkScheduler>()>& make_scheduler,
    Round rounds, std::uint64_t master_seed, const std::string& what) {
  const RunResult serial = run_once(g, make_scheduler, 1, rounds, master_seed);
  for (std::size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    const RunResult sharded =
        run_once(g, make_scheduler, threads, rounds, master_seed);
    ASSERT_EQ(serial.events.size(), sharded.events.size())
        << what << " @ " << threads << " threads";
    for (std::size_t i = 0; i < serial.events.size(); ++i) {
      ASSERT_EQ(serial.events[i], sharded.events[i])
          << what << " @ " << threads << " threads, event " << i;
    }
    ASSERT_EQ(serial.heard, sharded.heard)
        << what << " @ " << threads << " threads (process state)";
  }
}

graph::DualGraph geometric(std::size_t n, std::uint64_t seed) {
  graph::GeometricSpec spec;
  spec.n = n;
  spec.side = 4.0;
  spec.r = 1.5;
  Rng rng(seed);
  return graph::random_geometric(spec, rng);
}

// ---- the differential matrix: topology x scheduler ----

TEST(EngineShardDifferential, GridAcrossSchedulers) {
  const auto g = graph::grid(16, 16, 1.0, 1.5);  // n=256: 2+ real blocks
  expect_thread_invariant(
      g, [] { return std::make_unique<BernoulliScheduler>(0.5); }, 60, 101,
      "grid/bernoulli");
  expect_thread_invariant(
      g, [] { return std::make_unique<FlickerScheduler>(7, 3); }, 60, 102,
      "grid/flicker");
  expect_thread_invariant(
      g, [] { return std::make_unique<ConstantScheduler>(true); }, 40, 103,
      "grid/full-gprime");
}

TEST(EngineShardDifferential, GeometricAndLine) {
  expect_thread_invariant(
      geometric(200, 77), [] { return std::make_unique<BernoulliScheduler>(0.3); },
      60, 201, "geometric/bernoulli");
  expect_thread_invariant(
      graph::line(150, 1.0, 1.5),
      [] { return std::make_unique<BurstScheduler>(5, 0.4); }, 60, 202,
      "line/burst");
}

TEST(EngineShardDifferential, SinrChannel) {
  // The SINR reception path: prepare_round buckets transmitters serially,
  // compute_shard runs the verdict loop per receiver range; the identical
  // floating-point accumulation order makes the verdicts bit-for-bit equal.
  const auto g = graph::grid(16, 16, 1.0, 1.5);
  phys::SinrParams params;  // defaults: alpha 3, beta 2, noise 0.1
  const Round rounds = 40;
  const std::uint64_t master = 301;

  const auto run = [&](std::size_t threads) {
    phys::SinrChannel channel(params);
    Engine engine(g, channel, shard_coins(g.size(), master ^ 0x5eedULL),
                  master);
    engine.set_round_threads(threads);
    StreamObserver stream;
    engine.add_observer(&stream);
    engine.run_rounds(rounds);
    return stream.events();
  };
  const auto serial = run(1);
  for (std::size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    const auto sharded = run(threads);
    ASSERT_EQ(serial.size(), sharded.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], sharded[i]) << threads << " threads, event " << i;
    }
  }
}

// ---- the full LB stack: observer streams + TrafficStats ledgers ----

/// Every integer field of the injector ledger, as a comparable tuple-ish
/// vector (means derive from these, so integer equality is the strongest
/// form of "byte-identical").
std::vector<std::uint64_t> ledger(const traffic::TrafficStats& ts) {
  return {ts.offered,          ts.enqueued,        ts.dropped,
          ts.admitted,         ts.acked,           ts.aborted,
          ts.first_recvs,      ts.wait_sum,        ts.ack_latency_sum,
          ts.recv_latency_sum, ts.depth_samples,   ts.depth_sum,
          ts.depth_max,        ts.crash_requeues,  ts.readmitted};
}

TEST(EngineShardDifferential, LbStackWithTrafficLedger) {
  const auto g = graph::grid(12, 12, 1.0, 1.5);  // n=144
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);

  traffic::TrafficSpec tspec;
  ASSERT_EQ(traffic::parse_traffic_spec("poisson:0.05", tspec), "");

  const auto run = [&](std::size_t threads) {
    lb::LbSimulation sim(g, std::make_unique<BernoulliScheduler>(0.5), params,
                         /*master_seed=*/2027);
    sim.set_round_threads(threads);
    StreamObserver stream;
    sim.add_observer(&stream);
    sim.traffic().set_queue_capacity(4);
    sim.add_traffic(traffic::build_source(tspec, g.size(),
                                          derive_seed(2027, 0x7fcULL)));
    sim.run_phases(3);
    return std::make_pair(stream.events(), ledger(sim.traffic().stats()));
  };

  const auto serial = run(1);
  for (std::size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    const auto sharded = run(threads);
    ASSERT_EQ(serial.second, sharded.second)
        << threads << " threads (traffic ledger)";
    ASSERT_EQ(serial.first.size(), sharded.first.size()) << threads;
    for (std::size_t i = 0; i < serial.first.size(); ++i) {
      ASSERT_EQ(serial.first[i], sharded.first[i])
          << threads << " threads, event " << i;
    }
  }
}

TEST(EngineShardDifferential, LbStackUnderFaultPlan) {
  // Crash/recover schedules are applied serially at the top of both round
  // loops, so a faulted execution must stay byte-identical across thread
  // counts -- observer stream, traffic ledger (including the crash-requeue
  // counters) and the checker's degradation ledger alike.
  const auto g = graph::grid(10, 10, 1.0, 1.5);
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);

  traffic::TrafficSpec tspec;
  ASSERT_EQ(traffic::parse_traffic_spec("poisson:0.05", tspec), "");
  fault::FaultSpec fspec;
  ASSERT_EQ(fault::parse_fault_spec("poisson:0.1:96", fspec), "");

  const auto run = [&](std::size_t threads) {
    lb::LbSimulation sim(g, std::make_unique<BernoulliScheduler>(0.5), params,
                         /*master_seed=*/2028);
    sim.set_round_threads(threads);
    StreamObserver stream;
    sim.add_observer(&stream);
    sim.add_traffic(traffic::build_source(tspec, g.size(),
                                          derive_seed(2028, 0x7fcULL)));
    const auto plan = fault::build_fault_plan(fspec);
    sim.set_fault_plan(plan.get());
    sim.run_phases(3);
    const lb::DegradationLedger& led = sim.ledger();
    std::vector<std::uint64_t> fault_ledger = {
        led.crashes,
        led.recoveries,
        led.faulty_progress.trials(),
        led.faulty_progress.successes(),
        led.faulty_reliability.trials(),
        led.faulty_reliability.successes(),
        led.restab_count,
        led.restab_rounds_sum,
        led.fault_rounds,
        led.acks_in_fault_rounds};
    auto all = ledger(sim.traffic().stats());
    all.insert(all.end(), fault_ledger.begin(), fault_ledger.end());
    return std::make_pair(stream.events(), all);
  };

  const auto serial = run(1);
  EXPECT_GT(serial.second[13], 0u) << "no crash-requeues; weak fixture";
  for (std::size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    const auto sharded = run(threads);
    ASSERT_EQ(serial.second, sharded.second)
        << threads << " threads (traffic + degradation ledgers)";
    ASSERT_EQ(serial.first.size(), sharded.first.size()) << threads;
    for (std::size_t i = 0; i < serial.first.size(); ++i) {
      ASSERT_EQ(serial.first[i], sharded.first[i])
          << threads << " threads, event " << i;
    }
  }
}

// ---- obs telemetry: the logical domain is part of the contract ----

TEST(EngineShardDifferential, LogicalMetricsByteIdentical) {
  // The obs::Registry logical dump (counters, gauges, histograms minus the
  // timing domain) must be byte-for-byte equal at every thread count: the
  // engine records logical metrics only at serial seams.  Timing metrics
  // exist in every run but are excluded by json(false) by construction.
  const auto g = graph::grid(16, 16, 1.0, 1.5);
  const auto run = [&](std::size_t threads) {
    BernoulliScheduler sched(0.5);
    Engine engine(g, sched, shard_coins(g.size(), 0xAB5eedULL), 0xAB);
    engine.set_round_threads(threads);
    obs::Registry registry;
    engine.set_telemetry(&registry);
    engine.run_rounds(48);
    return registry.json(/*include_timing=*/false);
  };
  const std::string serial = run(1);
  EXPECT_NE(serial.find("engine.rounds"), std::string::npos);
  EXPECT_NE(serial.find("engine.tx_per_round"), std::string::npos);
  for (std::size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    ASSERT_EQ(serial, run(threads)) << threads << " threads";
  }
}

TEST(EngineShardDifferential, LogicalMetricsByteIdenticalUnderFaultPlan) {
  // The full stack's logical telemetry -- engine counters, fault
  // crash/recover counters, traffic ledger sums, checker tallies exported
  // by LbSimulation::export_telemetry -- under a crash/recover schedule.
  const auto g = graph::grid(10, 10, 1.0, 1.5);
  lb::LbScales scales;
  scales.ack_scale = 0.02;
  const auto params =
      lb::LbParams::calibrated(0.1, 1.5, g.delta(), g.delta_prime(), scales);
  traffic::TrafficSpec tspec;
  ASSERT_EQ(traffic::parse_traffic_spec("poisson:0.05", tspec), "");
  fault::FaultSpec fspec;
  ASSERT_EQ(fault::parse_fault_spec("poisson:0.1:96", fspec), "");

  const auto run = [&](std::size_t threads) {
    lb::LbSimulation sim(g, std::make_unique<BernoulliScheduler>(0.5), params,
                         /*master_seed=*/2029);
    sim.set_round_threads(threads);
    sim.add_traffic(traffic::build_source(tspec, g.size(),
                                          derive_seed(2029, 0x7fcULL)));
    const auto plan = fault::build_fault_plan(fspec);
    sim.set_fault_plan(plan.get());
    obs::Registry registry;
    sim.set_telemetry(&registry);
    sim.run_phases(3);
    sim.export_telemetry();
    return registry.json(/*include_timing=*/false);
  };

  const std::string serial = run(1);
  EXPECT_NE(serial.find("engine.faults.crashes"), std::string::npos);
  EXPECT_NE(serial.find("traffic.acked"), std::string::npos);
  EXPECT_NE(serial.find("lb.fault.crashes"), std::string::npos);
  for (std::size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    ASSERT_EQ(serial, run(threads)) << threads << " threads";
  }
}

// ---- shard-boundary properties ----

TEST(EngineShardProperty, OddSizesStraddlingBlockAlignment) {
  // Vertex counts around the 64-vertex block alignment: last-block
  // truncation, exactly-two-blocks, one-past.  Short horizons keep the
  // sweep fast; every round still crosses both parallel phases.
  for (std::size_t n : {65u, 127u, 128u, 129u, 191u, 300u}) {
    expect_thread_invariant(
        geometric(n, 0x9000 + n),
        [] { return std::make_unique<BernoulliScheduler>(0.4); }, 24,
        0x600 + n, "odd-n geometric n=" + std::to_string(n));
  }
}

TEST(EngineShardProperty, SmallerThanThreadCountFallsBackSerial) {
  // n < threads (and n < one block): the dispatcher must take the serial
  // loop and produce the identical stream -- the knob is an upper bound,
  // never a requirement.
  for (std::size_t n : {1u, 3u, 7u}) {
    graph::DualGraph g(n);
    for (graph::Vertex v = 0; v + 1 < n; ++v) g.add_reliable_edge(v, v + 1);
    g.finalize();
    expect_thread_invariant(
        g, [] { return std::make_unique<ConstantScheduler>(true); }, 16,
        0x700 + n, "tiny n=" + std::to_string(n));
  }
}

TEST(EngineShardProperty, IsolatedVerticesAndEmptyBlocks) {
  // 90 isolated vertices after a 40-vertex path: whole shard blocks with
  // no edges at all must still zero their heard_ range and fire silence
  // events in order.
  graph::DualGraph g(130);
  for (graph::Vertex v = 0; v + 1 < 40; ++v) g.add_reliable_edge(v, v + 1);
  g.add_unreliable_edge(0, 129);  // one long unreliable edge into the tail
  g.finalize();
  expect_thread_invariant(
      g, [] { return std::make_unique<BernoulliScheduler>(0.5); }, 32, 0x800,
      "isolated-tail");
}

TEST(EngineShardProperty, RandomizedTopologySweep) {
  // Randomized geometric graphs (connectivity, degree skew and component
  // structure vary with the seed) -- the catch-all net under the targeted
  // shapes above.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    expect_thread_invariant(
        geometric(140 + 17 * seed, seed),
        [] { return std::make_unique<BernoulliScheduler>(0.35); }, 20,
        0x900 + seed, "random sweep seed=" + std::to_string(seed));
  }
}

// ---- sparse-vs-dense differential: the activity-driven round path ----
//
// Every suite above already runs with the session default (sparse on unless
// DG_SPARSE_ROUNDS=0), so the dense-generated goldens double as a sparse
// regression net.  This section pins the two dispatches against each other
// *explicitly*: the same execution with sparse rounds forced on and forced
// off must be byte-identical -- observer stream, process end state, traffic
// and degradation ledgers, logical telemetry -- at every thread count.

/// run_once with the sparse knob forced, instead of the session default.
RunResult run_once_sparse(const graph::DualGraph& g,
                          const std::function<std::unique_ptr<LinkScheduler>()>&
                              make_scheduler,
                          std::size_t round_threads, Round rounds,
                          std::uint64_t master_seed, bool sparse) {
  auto sched = make_scheduler();
  Engine engine(g, *sched, shard_coins(g.size(), master_seed ^ 0x5eedULL),
                master_seed);
  engine.set_round_threads(round_threads);
  engine.set_sparse_rounds(sparse);
  EXPECT_EQ(engine.sparse_rounds_active(), sparse);
  StreamObserver stream;
  engine.add_observer(&stream);
  engine.run_rounds(rounds);
  RunResult result;
  result.events = stream.events();
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    result.heard.push_back(
        dynamic_cast<const ShardCoinProcess&>(engine.process(v)).heard_hash());
  }
  return result;
}

void expect_sparse_invariant(
    const graph::DualGraph& g,
    const std::function<std::unique_ptr<LinkScheduler>()>& make_scheduler,
    Round rounds, std::uint64_t master_seed, const std::string& what) {
  for (std::size_t threads : kThreadCounts) {
    const RunResult dense =
        run_once_sparse(g, make_scheduler, threads, rounds, master_seed,
                        /*sparse=*/false);
    const RunResult sparse =
        run_once_sparse(g, make_scheduler, threads, rounds, master_seed,
                        /*sparse=*/true);
    ASSERT_EQ(dense.events.size(), sparse.events.size())
        << what << " @ " << threads << " threads";
    for (std::size_t i = 0; i < dense.events.size(); ++i) {
      ASSERT_EQ(dense.events[i], sparse.events[i])
          << what << " @ " << threads << " threads, event " << i;
    }
    ASSERT_EQ(dense.heard, sparse.heard)
        << what << " @ " << threads << " threads (process state)";
  }
}

TEST(EngineSparseDifferential, CoinHarnessAcrossTopologies) {
  expect_sparse_invariant(
      graph::grid(12, 12, 1.0, 1.5),
      [] { return std::make_unique<BernoulliScheduler>(0.5); }, 40, 0xA01,
      "grid/bernoulli");
  expect_sparse_invariant(
      geometric(150, 88), [] { return std::make_unique<BurstScheduler>(5, 0.4); },
      40, 0xA02, "geometric/burst");
  // Word-boundary shapes: the frontier bitmap and the per-word park
  // minimums live on 64-vertex granularity.
  for (std::size_t n : {63u, 65u, 129u}) {
    expect_sparse_invariant(
        geometric(n, 0xA000 + n),
        [] { return std::make_unique<BernoulliScheduler>(0.4); }, 24,
        0xA10 + n, "odd-n n=" + std::to_string(n));
  }
}

TEST(EngineSparseDifferential, SinrChannel) {
  // The SINR frontier (near-cell membership of transmitter cells) against
  // the full-range dense verdict loop.
  const auto g = graph::grid(14, 14, 1.0, 1.5);
  const auto run = [&](std::size_t threads, bool sparse) {
    phys::SinrParams params;
    phys::SinrChannel channel(params);
    Engine engine(g, channel, shard_coins(g.size(), 0xB0B ^ 0x5eedULL), 0xB0B);
    engine.set_round_threads(threads);
    engine.set_sparse_rounds(sparse);
    EXPECT_EQ(engine.sparse_rounds_active(), sparse);
    StreamObserver stream;
    engine.add_observer(&stream);
    engine.run_rounds(32);
    return stream.events();
  };
  for (std::size_t threads : kThreadCounts) {
    const auto dense = run(threads, false);
    const auto sparse = run(threads, true);
    ASSERT_EQ(dense.size(), sparse.size()) << threads << " threads";
    for (std::size_t i = 0; i < dense.size(); ++i) {
      ASSERT_EQ(dense[i], sparse[i]) << threads << " threads, event " << i;
    }
  }
}

TEST(EngineSparseDifferential, LbStackMatrix) {
  // The full LB stack -- where silent_steps() actually parks vertices
  // (receiving-state bodies, post-recovery stretches, done seed runners) --
  // across topology x traffic shape x fault plan x thread count.
  struct Topo {
    const char* name;
    graph::DualGraph g;
  };
  const Topo topos[] = {{"grid", graph::grid(10, 10, 1.0, 1.5)},
                        {"geometric", geometric(150, 77)}};
  const char* traffics[] = {"poisson:0.05", "burst:48:3", "hotspot:0.05:0.7"};

  for (const Topo& topo : topos) {
    lb::LbScales scales;
    scales.ack_scale = 0.02;
    const auto params = lb::LbParams::calibrated(
        0.1, 1.5, topo.g.delta(), topo.g.delta_prime(), scales);
    for (const char* traffic : traffics) {
      for (bool faults : {false, true}) {
        const auto run = [&](std::size_t threads, bool sparse) {
          traffic::TrafficSpec tspec;
          EXPECT_EQ(traffic::parse_traffic_spec(traffic, tspec), "");
          fault::FaultSpec fspec;
          EXPECT_EQ(fault::parse_fault_spec("poisson:0.1:96", fspec), "");
          lb::LbSimulation sim(topo.g,
                               std::make_unique<BernoulliScheduler>(0.5),
                               params, /*master_seed=*/2030);
          sim.configure(EngineConfig{}
                            .with_round_threads(threads)
                            .with_sparse_rounds(sparse));
          EXPECT_EQ(sim.engine().sparse_rounds_active(), sparse);
          StreamObserver stream;
          sim.add_observer(&stream);
          sim.add_traffic(traffic::build_source(
              tspec, topo.g.size(), derive_seed(2030, 0x7fcULL)));
          std::unique_ptr<fault::FaultPlan> plan;
          if (faults) {
            plan = fault::build_fault_plan(fspec);
            sim.set_fault_plan(plan.get());
          }
          sim.run_phases(2);
          auto all = ledger(sim.traffic().stats());
          const lb::DegradationLedger& led = sim.ledger();
          all.insert(all.end(),
                     {led.crashes, led.recoveries, led.restab_count,
                      led.restab_rounds_sum, led.fault_rounds,
                      led.acks_in_fault_rounds});
          return std::make_pair(stream.events(), all);
        };
        const std::string what = std::string(topo.name) + "/" + traffic +
                                 (faults ? "/faults" : "/no-faults");
        // The full thread sweep rides on the poisson shape; the other
        // shapes check the serial and widest-parallel endpoints.
        const bool full_sweep = std::string(traffic).rfind("poisson", 0) == 0;
        for (std::size_t threads : kThreadCounts) {
          if (!full_sweep && threads != 1 && threads != 8) continue;
          const auto dense = run(threads, false);
          const auto sparse = run(threads, true);
          ASSERT_EQ(dense.second, sparse.second)
              << what << " @ " << threads << " threads (ledgers)";
          ASSERT_EQ(dense.first.size(), sparse.first.size())
              << what << " @ " << threads << " threads";
          for (std::size_t i = 0; i < dense.first.size(); ++i) {
            ASSERT_EQ(dense.first[i], sparse.first[i])
                << what << " @ " << threads << " threads, event " << i;
          }
        }
      }
    }
  }
}

TEST(EngineSparseDifferential, LogicalMetricsByteIdenticalAcrossSparse) {
  // The logical telemetry domain must not leak which dispatch ran; the
  // sparse-only counters (engine.active_blocks, engine.frontier_fraction)
  // live in the excluded timing domain.
  const auto g = graph::grid(16, 16, 1.0, 1.5);
  const auto run = [&](bool sparse) {
    BernoulliScheduler sched(0.5);
    Engine engine(g, sched, shard_coins(g.size(), 0xAB5eedULL), 0xAB);
    engine.set_sparse_rounds(sparse);
    obs::Registry registry;
    engine.set_telemetry(&registry);
    engine.run_rounds(48);
    return registry.json(/*include_timing=*/false);
  };
  ASSERT_EQ(run(false), run(true));
}

TEST(EngineSparseDifferential, SpliceForcesDenseAndFlushesParked) {
  // Spliced stages see the heard slab, whose non-frontier entries are stale
  // under sparse dispatch, so installing one must drop the engine to dense
  // rounds -- including mid-run, where already-parked vertices are caught
  // up (flushed) before the first spliced round.  Seed processes park
  // forever once their runner is done, making them the sharpest fixture.
  const auto g = graph::grid(8, 8, 1.0, 1.5);
  const auto seed_params = seed::SeedAlgParams::make(0.1, g.delta());
  const auto run = [&](bool sparse) {
    const auto ids = assign_ids(g.size(), 7);
    std::vector<std::unique_ptr<Process>> procs;
    Rng init(99);
    for (graph::Vertex v = 0; v < g.size(); ++v) {
      procs.push_back(
          std::make_unique<seed::SeedProcess>(seed_params, ids[v], init));
    }
    BernoulliScheduler sched(0.5);
    Engine engine(g, sched, std::move(procs), 1234);
    engine.set_sparse_rounds(sparse);
    StreamObserver stream;
    engine.add_observer(&stream);
    // Phase 1: the full SeedAlg run plus a parked stretch.
    engine.run_rounds(seed_params.total_rounds() + 16);
    EXPECT_EQ(engine.sparse_rounds_active(), sparse);
    // Phase 2: a mid-run noop splice forces dense dispatch from here on
    // (and flushes the parked cursors); a noop is byte-free, so the dense
    // reference needs no matching splice semantics.
    SpliceSpec spec;
    std::string error;
    EXPECT_TRUE(parse_splice_spec("noop", spec, error)) << error;
    EXPECT_EQ(engine.splice_stage(spec), "");
    EXPECT_FALSE(engine.sparse_rounds_active());
    engine.run_rounds(12);
    std::vector<std::uint64_t> decisions;
    for (graph::Vertex v = 0; v < g.size(); ++v) {
      const auto& d =
          dynamic_cast<const seed::SeedProcess&>(engine.process(v)).decision();
      decisions.push_back(d.has_value() ? d->seed_value ^ (d->owner * 3U) : 0);
    }
    return std::make_pair(stream.events(), decisions);
  };
  const auto dense = run(false);
  const auto sparse = run(true);
  ASSERT_EQ(dense.second, sparse.second) << "seed decisions";
  ASSERT_EQ(dense.first.size(), sparse.first.size());
  for (std::size_t i = 0; i < dense.first.size(); ++i) {
    ASSERT_EQ(dense.first[i], sparse.first[i]) << "event " << i;
  }
}

TEST(EngineShardProperty, NonConsentingProcessForcesSerial) {
  // A process that keeps the shard_safe() default must pin the whole
  // engine to the serial loop; results are (trivially) identical, and
  // nothing crashes or deadlocks with the cap still set high.
  class DefaultConsent final : public Process {
   public:
    explicit DefaultConsent(ProcessId id) : Process(id) {}
    std::optional<Packet> transmit(RoundContext& ctx) override {
      if (!ctx.rng().chance(0.5)) return std::nullopt;
      return Packet{id(), DataPayload{MessageId{id(), ++seq_}, 1ULL}};
    }
    void receive(const std::optional<Packet>&, RoundContext&) override {}

   private:
    std::uint32_t seq_ = 0;
  };
  const auto g = graph::grid(10, 10, 1.0, 1.5);
  const auto run = [&](std::size_t threads) {
    const auto ids = assign_ids(g.size(), 11);
    std::vector<std::unique_ptr<Process>> procs;
    for (std::size_t v = 0; v < g.size(); ++v) {
      procs.push_back(std::make_unique<DefaultConsent>(ids[v]));
    }
    BernoulliScheduler sched(0.5);
    Engine engine(g, sched, std::move(procs), 99);
    engine.set_round_threads(threads);
    StreamObserver stream;
    engine.add_observer(&stream);
    engine.run_rounds(24);
    return stream.events();
  };
  const auto serial = run(1);
  const auto capped = run(8);
  ASSERT_EQ(serial, capped);
}

}  // namespace
}  // namespace dg::sim
