// Tests for the LB spec checker itself: it must detect violations when fed
// broken event streams (mutant protocols), so that green runs of LBAlg are
// meaningful.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "lb/spec.h"
#include "sim/engine.h"

namespace dg::lb {
namespace {

struct Fixture {
  graph::DualGraph g = graph::clique_cluster(3);
  std::vector<sim::ProcessId> ids = sim::assign_ids(3, 5);
  LbParams params = LbParams::calibrated(0.1, 1.5, 3, 3);
};

TEST(LbSpecChecker, CleanLifecyclePasses) {
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  const sim::MessageId m{f.ids[0], 1};
  checker.on_bcast(0, m, 1);
  checker.on_recv(1, m, 0, 10);
  checker.on_recv(2, m, 0, 12);
  checker.on_ack(0, m, 20);
  EXPECT_TRUE(checker.report().timely_ack_ok);
  EXPECT_TRUE(checker.report().validity_ok);
  EXPECT_EQ(checker.report().violations, 0u);
  EXPECT_EQ(checker.report().reliability.successes(), 1u);
  const auto& rec = checker.broadcasts()[0];
  EXPECT_EQ(rec.ack_round, 20);
  EXPECT_EQ(rec.delivered_round, 12);
}

TEST(LbSpecChecker, FlagsRecvOfUnknownMessage) {
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  checker.on_recv(1, sim::MessageId{f.ids[0], 9}, 0, 5);
  EXPECT_FALSE(checker.report().validity_ok);
}

TEST(LbSpecChecker, FlagsRecvBeforeBroadcastActive) {
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  const sim::MessageId m{f.ids[0], 1};
  checker.on_bcast(0, m, 10);
  checker.on_recv(1, m, 0, 5);  // before the input round
  EXPECT_FALSE(checker.report().validity_ok);
}

TEST(LbSpecChecker, FlagsRecvAfterAck) {
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  const sim::MessageId m{f.ids[0], 1};
  checker.on_bcast(0, m, 1);
  checker.on_ack(0, m, 10);
  checker.on_recv(1, m, 0, 15);  // origin no longer active
  EXPECT_FALSE(checker.report().validity_ok);
}

TEST(LbSpecChecker, FlagsRecvFromNonNeighbor) {
  // Path 0-1-2: vertex 2 cannot validly recv a message of vertex 0.
  graph::DualGraph g(3);
  g.add_reliable_edge(0, 1);
  g.add_reliable_edge(1, 2);
  g.finalize();
  const auto ids = sim::assign_ids(3, 5);
  const auto params = LbParams::calibrated(0.1, 1.5, 2, 2);
  LbSpecChecker checker(g, ids, params);
  const sim::MessageId m{ids[0], 1};
  checker.on_bcast(0, m, 1);
  checker.on_recv(2, m, 0, 5);
  EXPECT_FALSE(checker.report().validity_ok);
}

TEST(LbSpecChecker, FlagsLateAck) {
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  const sim::MessageId m{f.ids[0], 1};
  checker.on_bcast(0, m, 1);
  checker.on_ack(0, m, f.params.t_ack_bound() + 100);
  EXPECT_FALSE(checker.report().timely_ack_ok);
}

TEST(LbSpecChecker, FlagsSpuriousAck) {
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  checker.on_ack(0, sim::MessageId{f.ids[0], 3}, 10);
  EXPECT_FALSE(checker.report().timely_ack_ok);
}

TEST(LbSpecChecker, FlagsDuplicateAck) {
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  const sim::MessageId m{f.ids[0], 1};
  checker.on_bcast(0, m, 1);
  checker.on_ack(0, m, 10);
  checker.on_ack(0, m, 11);
  EXPECT_FALSE(checker.report().timely_ack_ok);
}

TEST(LbSpecChecker, ReliabilityFailureWhenNeighborMissesMessage) {
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  const sim::MessageId m{f.ids[0], 1};
  checker.on_bcast(0, m, 1);
  checker.on_recv(1, m, 0, 5);  // vertex 2 never recvs
  checker.on_ack(0, m, 20);
  EXPECT_EQ(checker.report().reliability.trials(), 1u);
  EXPECT_EQ(checker.report().reliability.successes(), 0u);
  EXPECT_FALSE(checker.broadcasts()[0].delivered());
}

TEST(LbSpecChecker, ProgressConditioningRequiresActiveNeighbor) {
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  // Run empty phases through the observer interface: no active vertices,
  // so no progress opportunities are tallied.
  for (sim::Round t = 1; t <= 2 * f.params.t_prog_bound(); ++t) {
    checker.on_round_end(t);
  }
  EXPECT_EQ(checker.report().progress.trials(), 0u);
}

TEST(LbSpecChecker, ProgressTallyCountsQualifyingReceptions) {
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  const sim::MessageId m{f.ids[0], 1};
  checker.on_bcast(0, m, 1);
  // Vertex 1 hears the active broadcaster mid-phase (raw reception).
  sim::Packet pkt{f.ids[0], sim::DataPayload{m, 7}};
  checker.on_receive(3, 1, 0, pkt);
  for (sim::Round t = 1; t <= f.params.t_prog_bound(); ++t) {
    checker.on_round_end(t);
  }
  // Both neighbors of the active vertex had A^u_alpha; vertex 1 got B.
  EXPECT_EQ(checker.report().progress.trials(), 2u);
  EXPECT_EQ(checker.report().progress.successes(), 1u);
}

TEST(LbSpecChecker, ProgressCountsBackToBackMessagesAsFullyActive) {
  // A vertex that acks message A mid-phase and posts message B in the very
  // next round is actively broadcasting in *every* round of the phase, so
  // its neighbors still have the A^u_alpha progress opportunity -- even
  // though no single broadcast entry spans the whole phase.  Regression
  // guard for the event-driven activity streak (a saturated keep_busy
  // workload is exactly this pattern).
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  const sim::Round bound = f.params.t_prog_bound();
  const sim::MessageId a{f.ids[0], 1};
  const sim::MessageId b{f.ids[0], 2};
  const sim::Round ack_round = bound / 2;
  checker.on_bcast(0, a, 1);
  for (sim::Round t = 1; t <= bound; ++t) {
    if (t == ack_round) checker.on_ack(0, a, t);
    checker.on_round_end(t);
    if (t == ack_round) checker.on_bcast(0, b, t + 1);  // seamless repost
  }
  // Vertex 0 was active rounds 1..bound; both clique neighbors had the
  // opportunity (and no qualifying reception -> both recorded as misses).
  EXPECT_EQ(checker.report().progress.trials(), 2u);

  // A *gap* before the repost must break the streak: next phase, retire B
  // mid-phase and repost two rounds later.
  const sim::MessageId c{f.ids[0], 3};
  const sim::Round ack2 = bound + bound / 2;
  for (sim::Round t = bound + 1; t <= 2 * bound; ++t) {
    if (t == ack2) checker.on_ack(0, b, t);
    checker.on_round_end(t);
    if (t == ack2 + 1) checker.on_bcast(0, c, t + 1);  // one idle round
  }
  EXPECT_EQ(checker.report().progress.trials(), 2u);  // no new opportunities
}

TEST(LbSpecChecker, ActivelyBroadcastingWindow) {
  Fixture f;
  LbSpecChecker checker(f.g, f.ids, f.params);
  const sim::MessageId m{f.ids[0], 1};
  checker.on_bcast(0, m, 5);
  EXPECT_FALSE(checker.actively_broadcasting(0, 4));
  EXPECT_TRUE(checker.actively_broadcasting(0, 5));
  EXPECT_TRUE(checker.actively_broadcasting(0, 50));
  checker.on_ack(0, m, 60);
  EXPECT_TRUE(checker.actively_broadcasting(0, 60));  // ack round inclusive
  checker.on_round_end(60);
  EXPECT_FALSE(checker.actively_broadcasting(0, 61));
}

}  // namespace
}  // namespace dg::lb
