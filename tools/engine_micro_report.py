#!/usr/bin/env python3
"""Run bench_engine_micro and write a bench_support-shaped JSON report.

The experiment benches (bench_support.h) all emit
    {"elapsed_ms": ..., "sections": [{"experiment", "claim", "tables"}]}
but bench_engine_micro is google-benchmark, whose native JSON has neither
elapsed_ms nor table rows -- so the perf trajectory recorded
`elapsed_ms: null` and no throughput at all.  This wrapper runs the binary,
converts its native report into the standard shape (one row per benchmark,
with a rounds/sec column derived from real_time), and keeps the console
output as the .txt mirror.

Usage: engine_micro_report.py BINARY OUT_JSON OUT_TXT [extra gbench args...]
"""
import json
import subprocess
import sys
import tempfile
import time
import os


def main() -> int:
    if len(sys.argv) < 4:
        print(__doc__, file=sys.stderr)
        return 2
    binary, out_json, out_txt = sys.argv[1:4]
    extra = sys.argv[4:]

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        native_path = tmp.name
    try:
        start = time.monotonic()
        with open(out_txt, "w") as txt:
            proc = subprocess.run(
                [binary,
                 f"--benchmark_out={native_path}",
                 "--benchmark_out_format=json",
                 "--benchmark_format=console", *extra],
                stdout=txt, stderr=subprocess.STDOUT)
        elapsed_ms = (time.monotonic() - start) * 1000.0
        if proc.returncode != 0:
            print(f"engine_micro_report: bench exited {proc.returncode}; "
                  f"see {out_txt}", file=sys.stderr)
            return proc.returncode
        with open(native_path) as f:
            native = json.load(f)
    finally:
        try:
            os.unlink(native_path)
        except OSError:
            pass

    rows = []
    for bench in native.get("benchmarks", []):
        if bench.get("run_type") not in (None, "iteration"):
            continue  # skip aggregates; raw runs carry the timing
        time_ns = bench.get("real_time")
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        time_ns = None if time_ns is None else time_ns * scale
        name = bench.get("name", "?")
        row = {
            "benchmark": name,
            "time_ns": time_ns,
            "iterations": bench.get("iterations"),
            # One iteration of BM_EngineRound is one engine round, so
            # rounds/sec is the reciprocal of the per-iteration time.  For
            # the other micro benches this is generically iterations/sec.
            "rounds_per_sec": (1e9 / time_ns) if time_ns else None,
        }
        # BM_EngineRound/<n>/<round_threads>: split the arg positions into
        # explicit columns so the multi-thread series reads as a scaling
        # table.  The full name stays in "benchmark" -- bench_diff.py keys
        # rows on it, and the thread-suffixed names are simply new rows.
        parts = name.split("/")
        if parts[0] == "BM_EngineRound" and len(parts) >= 3:
            try:
                row["n"] = int(parts[1])
                row["round_threads"] = int(parts[2])
            except ValueError:
                pass
        # BM_EngineRoundSparse/<n>/<load>/<sparse>: the activity series.
        # `load` 0/1/2 = dense / ~1% / ~0.1% offered, `sparse` 0/1 = the
        # dispatch under test; active_fraction comes back as a benchmark
        # counter (mean fraction of frontier words touched per round).
        if parts[0] == "BM_EngineRoundSparse" and len(parts) >= 4:
            try:
                row["n"] = int(parts[1])
                row["load"] = {0: "dense", 1: "1%", 2: "0.1%"}.get(
                    int(parts[2]), parts[2])
                row["sparse"] = int(parts[3])
            except ValueError:
                pass
        if "items_per_second" in bench:
            row["items_per_sec"] = bench["items_per_second"]
        if "active_fraction" in bench:
            row["active_fraction"] = bench["active_fraction"]
        rows.append(row)

    # Same machine/build stamps bench_support.h writes, so bench_diff.py can
    # refuse cross-machine comparisons of the micro bench too.  The SHA is
    # read from the build tree's configure-time DG_GIT_SHA file (the binary
    # lives in <build>/bench/), NOT from `git rev-parse` at report time:
    # after a commit without a reconfigure the checkout's HEAD would
    # misattribute stale-binary timings to the new revision.
    git_sha = "unknown"
    sha_file = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(binary))),
        "DG_GIT_SHA")
    try:
        with open(sha_file) as f:
            git_sha = f.read().strip() or "unknown"
    except OSError:
        pass

    columns = ["benchmark", "n", "round_threads", "load", "sparse",
               "time_ns", "iterations", "rounds_per_sec", "items_per_sec",
               "active_fraction"]
    report = {
        "elapsed_ms": elapsed_ms,
        "hardware_concurrency": os.cpu_count() or 0,
        "git_sha": git_sha or "unknown",
        "sections": [{
            "experiment": "engine_micro",
            "claim": ("Simulator substrate throughput (regression guard, "
                      "not a paper claim): per-round execution time and "
                      "rounds/sec of the flat-memory engine."),
            "tables": [{
                "columns": columns,
                "rows": [{c: r.get(c) for c in columns if c in r}
                         for r in rows],
            }],
        }],
    }
    with open(out_json, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
