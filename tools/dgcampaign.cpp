// dgcampaign -- driver for declarative scenario campaigns (src/scn/).
//
//   dgcampaign run      <campaign.json | dir> [--flags]   execute + reports
//   dgcampaign list     <campaign.json | dir> [--filter=] expanded variants
//   dgcampaign validate <campaign.json | dir>...          parse/schema check
//
// Flags:
//   --threads=N     trial worker cap, N >= 1 (omit the flag to use hardware
//                   concurrency; an explicit 0 is rejected).  Changes
//                   scheduling only: the counters artifact is byte-identical
//                   for any value (stats::run_trials derives per-trial seeds
//                   from the trial index, never the worker).
//   --filter=SUBSTR run/list only variants whose name contains SUBSTR
//   --max-trials=N  clamp per-variant trial counts (nightly CI reduction)
//   --round-threads=N  force the engine's sharded-round thread cap onto
//                   every variant, N >= 1 (omit to honor each variant's
//                   spec / the DG_ROUND_THREADS default).  Like --threads
//                   this never moves results: counters are byte-identical
//                   at every value.
//   --splice=SPEC   splice an extra stage into every variant's round
//                   pipeline, after any stages the variant declares (see
//                   sim/splice.h: noop | dedup[:window[:slab]] |
//                   tap:slab[:v1,...]).  Validated up front; a write-set
//                   conflict with a variant's own stages names the variant
//                   and exits 2.
//   --out=DIR       report directory (default bench_out); per variant
//                   SCN_<variant>.json, plus COUNTERS_<campaign>.json (the
//                   seed-deterministic gating file) and
//                   CAMPAIGN_<campaign>.json (roll-up)
//   --quiet         suppress progress lines
//
// A directory argument expands to every *.json directly inside it (sorted;
// subdirectories like campaigns/golden/ are not descended into).
//
// Exit status: 0 ok; 1 execution/write failure; 2 usage or validation
// error.  Unknown --flags are rejected.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "scn/campaign.h"
#include "scn/scenario.h"
#include "scn/workload.h"
#include "sim/splice.h"

namespace {

using namespace dg;

struct FlagInfo {
  const char* name;
  bool takes_value;
};
constexpr FlagInfo kValidFlags[] = {
    {"threads", true},   {"filter", true}, {"max-trials", true},
    {"round-threads", true}, {"splice", true}, {"out", true},
    {"quiet", false},
};

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      const auto eq = arg.find('=');
      const std::string key =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      const auto* info =
          std::find_if(std::begin(kValidFlags), std::end(kValidFlags),
                       [&](const FlagInfo& f) { return key == f.name; });
      if (info == std::end(kValidFlags)) {
        errors_.push_back("unknown flag '" + arg + "'");
        continue;
      }
      if (info->takes_value && eq == std::string::npos) {
        // Catch "--out DIR": the space form would silently drop the value
        // and misread DIR as a campaign path.
        errors_.push_back("flag '" + arg + "' needs a value (--" + key +
                          "=...)");
        continue;
      }
      values_[key] = eq == std::string::npos ? "1" : arg.substr(eq + 1);
      // Numeric flags are validated here so a typo like --threads=4x
      // errors instead of silently parsing as 0.
      if (key == "threads" || key == "max-trials") {
        const std::string& v = values_[key];
        char* end = nullptr;
        const auto parsed = std::strtoull(v.c_str(), &end, 10);
        // strtoull legally wraps "-1" to ULLONG_MAX; the leading '-'
        // check keeps negatives in the rejection path.
        if (v.empty() || v[0] == '-' || end == nullptr || *end != '\0') {
          errors_.push_back("flag '--" + key +
                            "' needs a non-negative integer; got '" + v +
                            "'");
        } else if (key == "threads" && parsed == 0) {
          // An explicit 0 is almost always a typo'd worker count; the
          // "use hardware concurrency" spelling is omitting the flag.
          errors_.push_back(
              "flag '--threads' needs a worker count >= 1; omit the flag "
              "to use hardware concurrency");
        }
      } else if (key == "round-threads") {
        // Shared validator (scn/scenario.h) so dglab rejects identically.
        std::size_t parsed = 0;
        const std::string err =
            scn::validate_round_threads_value(values_[key], parsed);
        if (!err.empty()) errors_.push_back("flag '--round-threads': " + err);
      } else if (key == "splice") {
        // Shared grammar (sim/splice.h) so dglab rejects identically.
        sim::SpliceSpec spec;
        std::string err;
        if (!sim::parse_splice_spec(values_[key], spec, err)) {
          errors_.push_back("flag '--splice': " + err);
        }
      }
    }
  }

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  const std::vector<std::string>& errors() const noexcept { return errors_; }
  std::string str(const std::string& key, const std::string& dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  std::uint64_t uint(const std::string& key, std::uint64_t dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  bool flag(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

/// Expands a positional argument: a file names itself; a directory names
/// every *.json directly inside it, sorted for stable run order.
std::vector<std::string> expand_paths(const std::string& arg) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  if (fs::is_directory(arg)) {
    for (const auto& entry : fs::directory_iterator(arg)) {
      if (entry.is_regular_file() && entry.path().extension() == ".json") {
        out.push_back(entry.path().string());
      }
    }
    std::sort(out.begin(), out.end());
  } else {
    out.push_back(arg);
  }
  return out;
}

const char* git_sha() {
#ifdef DG_GIT_SHA
  return DG_GIT_SHA;
#else
  return "unknown";
#endif
}

int cmd_validate(const std::vector<std::string>& args) {
  bool all_ok = true;
  for (const std::string& arg : args) {
    for (const std::string& path : expand_paths(arg)) {
      const auto parsed = scn::parse_campaign_file(path);
      if (parsed.ok()) {
        std::cout << path << ": OK (campaign '" << parsed.campaign.name
                  << "', " << parsed.campaign.variants.size()
                  << " variants)\n";
      } else {
        std::cout << parsed.error << "\n";
        all_ok = false;
      }
    }
  }
  return all_ok ? 0 : 2;
}

int cmd_list(const std::vector<std::string>& args, const Flags& flags) {
  const std::string filter = flags.str("filter", "");
  std::size_t matched = 0;
  for (const std::string& arg : args) {
    for (const std::string& path : expand_paths(arg)) {
      const auto parsed = scn::parse_campaign_file(path);
      if (!parsed.ok()) {
        std::cerr << parsed.error << "\n";
        return 2;
      }
      std::cout << path << ": campaign '" << parsed.campaign.name << "'\n";
      for (const auto& v : parsed.campaign.variants) {
        if (!filter.empty() && v.name.find(filter) == std::string::npos) {
          continue;
        }
        ++matched;
        std::cout << "  " << v.name << ": " << v.topology.type << " x "
                  << v.scheduler << " x " << v.channel << " x "
                  << v.algorithm.type << ", trials " << v.trials << ", seed "
                  << v.seed << "\n";
      }
    }
  }
  // An over-narrow filter must not look like an empty-but-healthy listing
  // (the same zero-match policy as `run`): a typo like --filter=e3_progess
  // would otherwise exit 0 with nothing listed.
  if (!filter.empty() && matched == 0) {
    std::cerr << "dgcampaign: no variants matched filter '" << filter
              << "'\n";
    return 1;
  }
  return 0;
}

int cmd_run(const std::vector<std::string>& args, const Flags& flags) {
  scn::RunOptions options;
  options.threads = static_cast<std::size_t>(flags.uint("threads", 0));
  options.filter = flags.str("filter", "");
  options.max_trials = static_cast<std::size_t>(flags.uint("max-trials", 0));
  options.round_threads =
      static_cast<std::size_t>(flags.uint("round-threads", 0));
  options.splice = flags.str("splice", "");
  if (!flags.flag("quiet")) options.progress = &std::cout;
  const std::string out_dir = flags.str("out", "bench_out");

  for (const std::string& arg : args) {
    for (const std::string& path : expand_paths(arg)) {
      const auto parsed = scn::parse_campaign_file(path);
      if (!parsed.ok()) {
        std::cerr << parsed.error << "\n";
        return 2;
      }
      if (!options.splice.empty()) {
        // The forced stage must compose with every variant's own stages:
        // re-run the load-time write-set validation over the combined
        // list so a conflict dies here, naming the variant, instead of
        // contract-aborting mid-campaign.
        for (const auto& v : parsed.campaign.variants) {
          std::vector<sim::SpliceSpec> specs;
          std::string err;
          for (const std::string& text : v.stages) {
            sim::SpliceSpec spec;
            if (sim::parse_splice_spec(text, spec, err)) {
              specs.push_back(std::move(spec));
            }
          }
          sim::SpliceSpec forced;
          sim::parse_splice_spec(options.splice, forced, err);
          specs.push_back(std::move(forced));
          const std::string conflict = sim::validate_splice_specs(specs);
          if (!conflict.empty()) {
            std::cerr << "dgcampaign: --splice=" << options.splice
                      << " conflicts with variant '" << v.name
                      << "': " << conflict << "\n";
            return 2;
          }
        }
      }
      if (!flags.flag("quiet")) {
        std::cout << path << ": campaign '" << parsed.campaign.name
                  << "'\n";
      }
      const auto result = scn::run_campaign(parsed.campaign, options);
      if (result.variants.empty()) {
        std::cerr << "dgcampaign: no variants matched"
                  << (options.filter.empty()
                          ? ""
                          : " filter '" + options.filter + "'")
                  << " in " << path << "\n";
        return 1;
      }
      const std::string err =
          scn::write_reports(result, out_dir, git_sha());
      if (!err.empty()) {
        std::cerr << "dgcampaign: " << err << "\n";
        return 1;
      }
      if (!flags.flag("quiet")) {
        std::cout << "  -> " << out_dir << "/COUNTERS_"
                  << scn::sanitize_filename(result.name) << ".json ("
                  << result.variants.size() << " variants, "
                  << static_cast<long>(result.elapsed_ms) << " ms)\n";
      }
    }
  }
  return 0;
}

void usage() {
  std::cout
      << "usage: dgcampaign <run|list|validate> <campaign.json|dir>... "
         "[--flags]\n"
         "  --threads=N --filter=SUBSTR --max-trials=N --round-threads=N "
         "--splice=SPEC --out=DIR --quiet\n"
         "see the header of tools/dgcampaign.cpp for details\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Flags flags(argc, argv, 2);
  if (!flags.errors().empty()) {
    for (const std::string& message : flags.errors()) {
      std::cerr << "dgcampaign: " << message << "\n";
    }
    std::cerr << "valid flags:";
    for (const FlagInfo& f : kValidFlags) std::cerr << " --" << f.name;
    std::cerr << "\n";
    return 2;
  }
  if (flags.positional().empty()) {
    std::cerr << "dgcampaign: " << cmd
              << " needs at least one campaign file or directory\n";
    usage();
    return 2;
  }
  if (cmd == "validate") return cmd_validate(flags.positional());
  if (cmd == "list") return cmd_list(flags.positional(), flags);
  if (cmd == "run") return cmd_run(flags.positional(), flags);
  usage();
  return 2;
}
