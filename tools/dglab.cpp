// dglab -- command-line laboratory for the dual-graph local broadcast stack.
//
//   dglab net   [topology flags]                  describe a network
//   dglab seed  [topology flags] [--eps=0.1]      run seed agreement + spec
//   dglab run   [topology flags] [run flags]      run LBAlg + spec report
//   dglab sweep [--deltas=4,8,16,32] [run flags]  progress/delivery sweep
//
// Topology flags:
//   --type=geometric|grid|clique|star|line   (default geometric)
//   --n=64 --side=4.0 --r=1.5                (geometric)
//   --cols=6 --rows=4 --spacing=1.0          (grid)
//   --k=16                                   (clique size / star leaves / line length)
// Run flags:
//   --eps=0.1 --seed=1 --phases=30 --senders=2 --ack-scale=0.02
//   --sched=bernoulli:0.5 | full-g | full-gprime | flicker:64:32
//           | burst:16:0.5 | anti
//   --channel=dual | sinr:alpha,beta,noise   (reception physics; sinr needs
//           an embedded topology and makes --sched irrelevant)
//   --traffic=saturate[:count] | poisson:rate | burst:period:size[:count]
//           | hotspot:rate:bias[:hot]   (environment traffic model; replaces
//           the --senders keep-busy default and prints queue/latency stats)
//   --traffic-cap=N  (per-node admission queue bound; 0 = unbounded)
//   --faults=crash:round:vertex[:repair] | poisson:rate[:mean_repair]
//           | region:round:center:radius[:repair] | adversary:k[:period[:repair]]
//           (crash/recover schedule; prints the graceful-degradation
//           ledger -- fault-window progress violations, re-stabilization
//           time, throughput dip -- next to the clean-window spec report)
//   --round-threads=N  (sharded-round worker cap, N >= 1; omit to use the
//           DG_ROUND_THREADS default.  Results are byte-identical at every
//           value -- the flag moves wall clock, never outcomes)
//   --splice=SPEC  (splice an extra stage into the engine's round
//           pipeline: noop | dedup[:window[:slab]] | tap:slab[:v1,...];
//           see sim/splice.h for the grammar.  Applies to run, sweep and
//           seed; a dedup stage suppresses recently-heard packets, a tap
//           stage counts slab population per round into the telemetry)
//   --reuse=1 (phases per seed)  --ablate (private coins)  --trace=N
// Telemetry flags (run only):
//   --metrics-out=FILE  write the obs::Registry dump (dg-metrics-v1 JSON;
//           the "logical" domain is byte-identical at every
//           --round-threads value, "timing" is wall clock)
//   --trace-out=FILE    write a Chrome trace-event JSON (open in Perfetto
//           or chrome://tracing): per-round engine phase slices, message
//           lifecycle spans (enqueue->admit->first-recv->ack/abort),
//           crash/recover instants, and the TraceRecorder tail
//   --trace-rounds=LO:HI  clamp trace events to a round window
//   --trace-vertices=v1,v2,...  keep only these vertices' message spans
//           and fault instants (engine phase slices always pass)
//
// --topology=family:args is a compact alias for the topology flags:
//   grid:32x32 | geometric:256 | clique:16 | star:16 | line:16
//
// Unknown --flags are rejected (a typo like --schd= must not silently run
// the default configuration).  When the first argument is a --flag the
// `run` subcommand is implied: `dglab --topology=grid:8x8 --phases=10`.
//
// Example:
//   dglab run --type=geometric --n=48 --sched=bernoulli:0.5 --phases=40
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "fault/spec.h"
#include "graph/generators.h"
#include "lb/simulation.h"
#include "obs/registry.h"
#include "obs/trace_sink.h"
#include "phys/channel_spec.h"
#include "phys/sinr.h"
#include "scn/scenario.h"
#include "seed/seed_alg.h"
#include "seed/spec.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "sim/trace.h"
#include "traffic/spec.h"
#include "util/specparse.h"
#include "util/table.h"

namespace {

using namespace dg;

// ---- tiny flag parser: --key=value ----

/// Every flag any subcommand understands; parsing rejects the rest.
constexpr const char* kValidFlags[] = {
    "type", "n", "side", "r", "cols", "rows", "spacing", "k",   // topology
    "topology",                                                 // alias
    "eps", "seed", "phases", "senders", "ack-scale",            // run
    "sched", "channel", "reuse", "ablate", "trace", "deltas",   // run/sweep
    "traffic", "traffic-cap", "round-threads", "faults",        // environment
    "splice",                                                   // pipeline
    "metrics-out", "trace-out", "trace-rounds", "trace-vertices",  // obs
};

class Flags {
 public:
// GCC 12's -Wrestrict misfires on the std::string assignments below once
// they inline into main (upstream PR105329 family); the code is plain
// map-of-string bookkeeping.  Clang has no -Wrestrict group, so the
// pragma is GCC-only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        unknown_.push_back(arg);
        continue;
      }
      const auto eq = arg.find('=');
      const std::string key =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      if (std::find_if(std::begin(kValidFlags), std::end(kValidFlags),
                       [&](const char* f) { return key == f; }) ==
          std::end(kValidFlags)) {
        unknown_.push_back(arg);
        continue;
      }
      if (eq == std::string::npos) {
        values_[key] = "1";
      } else {
        values_[key] = arg.substr(eq + 1);
      }
    }
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  /// Arguments that matched no known flag (typos like --schd=).
  const std::vector<std::string>& unknown() const noexcept { return unknown_; }

  std::string str(const std::string& key, const std::string& dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  double num(const std::string& key, double dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
  std::uint64_t uint(const std::string& key, std::uint64_t dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  bool flag(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> unknown_;
};

using dg::spec::split;

/// Parses --round-threads through the shared scn validator (the same
/// grammar dgcampaign enforces), exiting with a message on 0, negatives,
/// or trailing junk.  Returns 0 when the flag is absent (engine default,
/// i.e. DG_ROUND_THREADS or serial).
std::size_t round_threads_flag(const Flags& flags) {
  if (!flags.flag("round-threads")) return 0;
  std::size_t parsed = 0;
  const std::string err =
      scn::validate_round_threads_value(flags.str("round-threads", ""), parsed);
  if (!err.empty()) {
    std::cerr << "dglab: --" << err << "\n";
    std::exit(2);
  }
  return parsed;
}

/// Builds the engine config shared by the run/sweep/seed subcommands:
/// the --round-threads cap plus the --splice stage, both validated here
/// so a typo like --splice=dedupe exits 2 with the valid grammar instead
/// of a contract abort inside the engine.
sim::EngineConfig engine_config_flags(const Flags& flags) {
  sim::EngineConfig config;
  const std::size_t round_threads = round_threads_flag(flags);
  if (round_threads != 0) config.with_round_threads(round_threads);
  if (flags.flag("splice")) {
    sim::SpliceSpec spec;
    std::string err;
    if (!sim::parse_splice_spec(flags.str("splice", ""), spec, err)) {
      std::cerr << "dglab: --splice: " << err << "\n";
      std::exit(2);
    }
    config.with_splice(std::move(spec));
  }
  return config;
}

// ---- builders ----

/// Strict non-negative integer parse for compound specs (strtoull would
/// silently wrap "-1" and accept trailing junk).
bool parse_uint(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  out = std::strtoull(s.c_str(), nullptr, 10);
  return true;
}

/// Expands the --topology=family:args alias (grid:32x32, geometric:256,
/// clique:16, star:16, line:16) directly into a network.  Geometry knobs
/// (--side, --spacing, --r) still apply; the alias only fixes the family
/// and its size.
graph::DualGraph build_network_alias(const Flags& flags, Rng& rng) {
  const std::string spec = flags.str("topology", "");
  const auto colon = spec.find(':');
  const std::string fam = spec.substr(0, colon);
  const std::string args =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  const double r = flags.num("r", 1.5);
  const auto bad = [&]() -> graph::DualGraph {
    std::cerr << "dglab: --topology: malformed spec '" << spec
              << "' (valid: grid:COLSxROWS, geometric:N, clique:K, "
                 "star:K, line:K)\n";
    std::exit(2);
  };
  if (fam == "grid") {
    const auto x = args.find('x');
    std::uint64_t cols = 0, rows = 0;
    if (x == std::string::npos || !parse_uint(args.substr(0, x), cols) ||
        !parse_uint(args.substr(x + 1), rows) || cols == 0 || rows == 0) {
      return bad();
    }
    return graph::grid(static_cast<std::size_t>(cols),
                       static_cast<std::size_t>(rows),
                       flags.num("spacing", 1.0), r);
  }
  std::uint64_t k = 0;
  if (!parse_uint(args, k) || k == 0) return bad();
  if (fam == "geometric") {
    graph::GeometricSpec gspec;
    gspec.n = static_cast<std::size_t>(k);
    gspec.side = flags.num("side", 4.0);
    gspec.r = r;
    return graph::random_geometric(gspec, rng);
  }
  if (fam == "clique") return graph::clique_cluster(k);
  if (fam == "star") return graph::star_ring(k, r);
  if (fam == "line") return graph::line(k, flags.num("spacing", 1.0), r);
  return bad();
}

graph::DualGraph build_network(const Flags& flags, Rng& rng) {
  if (flags.flag("topology")) {
    if (flags.flag("type")) {
      std::cerr << "dglab: --topology and --type are mutually exclusive "
                   "(the alias already names the family)\n";
      std::exit(2);
    }
    return build_network_alias(flags, rng);
  }
  const std::string type = flags.str("type", "geometric");
  const double r = flags.num("r", 1.5);
  const auto k = static_cast<std::size_t>(flags.uint("k", 16));
  if (type == "grid") {
    return graph::grid(static_cast<std::size_t>(flags.uint("cols", 6)),
                       static_cast<std::size_t>(flags.uint("rows", 4)),
                       flags.num("spacing", 1.0), r);
  }
  if (type == "clique") return graph::clique_cluster(k);
  if (type == "star") return graph::star_ring(k, r);
  if (type == "line") return graph::line(k, flags.num("spacing", 1.0), r);
  if (type != "geometric") {
    // A typo like --type=cliqe must not silently run the default family.
    std::cerr << "dglab: unknown --type '" << type
              << "' (valid: geometric, grid, clique, star, line)\n";
    std::exit(2);
  }
  graph::GeometricSpec spec;
  spec.n = static_cast<std::size_t>(flags.uint("n", 64));
  spec.side = flags.num("side", 4.0);
  spec.r = r;
  return graph::random_geometric(spec, rng);
}

/// --sched goes through the shared scn grammar, so a typo like
/// --sched=bernouli:0.5 is rejected with the list of valid specs instead
/// of silently running the Bernoulli default.
std::unique_ptr<sim::LinkScheduler> build_scheduler(const Flags& flags) {
  const std::string spec = flags.str("sched", "bernoulli:0.5");
  const std::string error = scn::validate_scheduler_spec(spec);
  if (!error.empty()) {
    std::cerr << "dglab: --sched: " << error << "\n";
    std::exit(2);
  }
  return scn::build_scheduler(spec);
}

/// Parses --channel=dual | sinr:alpha,beta,noise via the shared
/// phys::parse_channel_spec grammar.  Returns nullptr for the default
/// dual-graph reception (the scheduler decides the round topology); for
/// sinr, the graph must carry a plane embedding.  Exits with a message on
/// a malformed spec or a missing embedding (bad CLI input gets exit 2
/// instead of the SinrChannel constructor's contract abort).
std::unique_ptr<phys::ChannelModel> build_channel(const Flags& flags,
                                                  const graph::DualGraph& g) {
  phys::ChannelSpec spec;
  const std::string error =
      phys::parse_channel_spec(flags.str("channel", "dual"), spec);
  if (!error.empty()) {
    std::cerr << "dglab: --channel: " << error << "\n";
    std::exit(2);
  }
  if (!spec.is_sinr) return nullptr;
  if (!g.embedding().has_value()) {
    std::cerr << "dglab: --channel=sinr needs an embedded topology "
                 "(geometric, grid, star, or line)\n";
    std::exit(2);
  }
  return std::make_unique<phys::SinrChannel>(spec.sinr);
}

/// Parses --trace-rounds=LO:HI / --trace-vertices=v1,v2,... into a sink
/// filter, exiting with a message on malformed values.
obs::TraceSink::Filter trace_filter_flags(const Flags& flags) {
  obs::TraceSink::Filter f;
  if (flags.flag("trace-rounds")) {
    const std::string s = flags.str("trace-rounds", "");
    const auto colon = s.find(':');
    std::uint64_t lo = 0, hi = 0;
    if (colon == std::string::npos || !parse_uint(s.substr(0, colon), lo) ||
        !parse_uint(s.substr(colon + 1), hi) || lo > hi) {
      std::cerr << "dglab: --trace-rounds needs LO:HI with LO <= HI; got '"
                << s << "'\n";
      std::exit(2);
    }
    f.round_lo = static_cast<std::int64_t>(lo);
    f.round_hi = static_cast<std::int64_t>(hi);
  }
  if (flags.flag("trace-vertices")) {
    for (const std::string& v : split(flags.str("trace-vertices", ""), ',')) {
      std::uint64_t parsed = 0;
      if (!parse_uint(v, parsed)) {
        std::cerr << "dglab: --trace-vertices needs a comma-separated "
                     "vertex list; got '" << v << "'\n";
        std::exit(2);
      }
      f.vertices.push_back(static_cast<std::uint32_t>(parsed));
    }
  }
  return f;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  if (!os) return false;
  os << content;
  return static_cast<bool>(os);
}

/// Builds the LB simulation with --channel deciding reception: an explicit
/// channel model when one is requested, the dual-graph scheduler otherwise.
std::unique_ptr<lb::LbSimulation> make_simulation(const Flags& flags,
                                                  const graph::DualGraph& g,
                                                  const lb::LbParams& params,
                                                  std::uint64_t master) {
  auto channel = build_channel(flags, g);
  std::unique_ptr<lb::LbSimulation> sim;
  if (channel != nullptr) {
    sim = std::make_unique<lb::LbSimulation>(g, std::move(channel), params,
                                             master);
  } else {
    sim = std::make_unique<lb::LbSimulation>(g, build_scheduler(flags), params,
                                             master);
  }
  sim->configure(engine_config_flags(flags));
  return sim;
}

void describe(const graph::DualGraph& g, const Flags& flags) {
  std::cout << "network: n=" << g.size() << " Delta=" << g.delta()
            << " Delta'=" << g.delta_prime()
            << " unreliable-edges=" << g.unreliable_edge_count() << "\n";
  if (g.embedding().has_value()) {
    std::cout << "embedding: r-geographic(r=" << g.r() << ") -> "
              << (graph::is_r_geographic(g, *g.embedding(), g.r())
                      ? "valid"
                      : "INVALID")
              << "\n";
  }
  (void)flags;
}

// ---- subcommands ----

int cmd_net(const Flags& flags) {
  Rng rng(flags.uint("seed", 1));
  const auto g = build_network(flags, rng);
  describe(g, flags);
  // Degree histogram.
  std::map<std::size_t, std::size_t> hist;
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    ++hist[g.g_neighbors(v).size()];
  }
  Table table({"G-degree", "vertices"});
  for (const auto& [deg, count] : hist) {
    table.row().cell(static_cast<std::uint64_t>(deg)).cell(
        static_cast<std::uint64_t>(count));
  }
  table.print(std::cout);
  return 0;
}

int cmd_seed(const Flags& flags) {
  const std::uint64_t master = flags.uint("seed", 1);
  Rng rng(master);
  const auto g = build_network(flags, rng);
  describe(g, flags);
  const double eps = std::min(0.25, flags.num("eps", 0.1));
  const auto params = seed::SeedAlgParams::make(eps, g.delta());
  std::cout << "SeedAlg(eps=" << eps << "): " << params.num_phases
            << " phases x " << params.phase_length << " rounds = "
            << params.total_rounds() << " rounds\n";

  const auto ids = sim::assign_ids(g.size(), derive_seed(master, 1));
  auto channel = build_channel(flags, g);
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng init(derive_seed(master, 2));
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(std::make_unique<seed::SeedProcess>(params, ids[v], init));
  }
  std::unique_ptr<sim::LinkScheduler> sched;
  std::unique_ptr<sim::Engine> engine;
  if (channel != nullptr) {
    engine = std::make_unique<sim::Engine>(g, *channel, std::move(procs),
                                           derive_seed(master, 3));
  } else {
    sched = build_scheduler(flags);
    engine = std::make_unique<sim::Engine>(g, *sched, std::move(procs),
                                           derive_seed(master, 3));
  }
  std::cout << "channel: " << engine->channel().name() << "\n";
  engine->configure(engine_config_flags(flags));
  engine->run_rounds(params.total_rounds());

  seed::DecisionVector decisions(g.size());
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    decisions[v] =
        dynamic_cast<const seed::SeedProcess&>(engine->process(v)).decision();
  }
  const auto res = seed::check_seed_spec(g, ids, decisions);
  std::cout << "spec: well-formed=" << (res.well_formed ? "OK" : "FAIL")
            << " consistent=" << (res.consistent ? "OK" : "FAIL")
            << " owners-local=" << (res.owners_local ? "OK" : "FAIL") << "\n"
            << "distinct owners: " << res.distinct_owners
            << "; max owners per closed G'-neighborhood: "
            << res.max_neighborhood_owners << "\n";
  return res.well_formed && res.consistent ? 0 : 1;
}

int cmd_run(const Flags& flags) {
  const std::uint64_t master = flags.uint("seed", 1);
  Rng rng(master);
  const auto g = build_network(flags, rng);
  describe(g, flags);

  lb::LbScales scales;
  scales.ack_scale = flags.num("ack-scale", 0.02);
  auto params = lb::LbParams::calibrated(flags.num("eps", 0.1),
                                         std::max(1.0, g.r()), g.delta(),
                                         g.delta_prime(), scales);
  params.phases_per_seed = static_cast<int>(flags.uint("reuse", 1));
  params.use_shared_seeds = !flags.flag("ablate");

  std::cout << "LBAlg: T_s=" << params.t_s << " T_prog=" << params.t_prog
            << " phase=" << params.phase_length()
            << " group=" << params.group_length()
            << " T_ack=" << params.t_ack_phases << " phases"
            << (params.use_shared_seeds ? "" : "  [ABLATED]") << "\n";

  auto sim_ptr = make_simulation(flags, g, params, master);
  lb::LbSimulation& sim = *sim_ptr;
  std::cout << "channel: " << sim.engine().channel().name() << "\n";

  const bool want_metrics = flags.flag("metrics-out");
  const bool want_trace = flags.flag("trace-out");
  if (!want_trace &&
      (flags.flag("trace-rounds") || flags.flag("trace-vertices"))) {
    std::cerr << "dglab: --trace-rounds/--trace-vertices need --trace-out=\n";
    std::exit(2);
  }
  obs::Registry registry;  // backs --trace-out's profiler even without
                           // --metrics-out; only written when asked for
  std::unique_ptr<obs::TraceSink> sink;
  if (want_trace) {
    sink = std::make_unique<obs::TraceSink>(trace_filter_flags(flags));
  }

  sim::TraceRecorder trace(static_cast<std::size_t>(
      std::max<std::uint64_t>(1, flags.uint("trace", 16))));
  if (want_trace) {
    // Richer recorder tail for the exported track (set before
    // registration: observer interest is sampled at add_observer).
    trace.enable_round_markers(true);
    trace.enable_fault_events(true);
  }
  sim.add_observer(&trace);
  if (want_metrics || want_trace) sim.set_telemetry(&registry, sink.get());

  const std::string traffic_str = flags.str("traffic", "");
  // Flag combinations that would otherwise be silently ignored are
  // rejected (the same policy as unknown flags).
  if (traffic_str.empty() && flags.flag("traffic-cap")) {
    std::cerr << "dglab: --traffic-cap needs --traffic= (the keep-busy "
                 "default has no admission queue)\n";
    std::exit(2);
  }
  if (!traffic_str.empty() && flags.flag("senders")) {
    std::cerr << "dglab: --senders and --traffic are mutually exclusive "
                 "(use --traffic=saturate:count for spread senders)\n";
    std::exit(2);
  }
  if (!traffic_str.empty()) {
    traffic::TrafficSpec tspec;
    const std::string error = traffic::parse_traffic_spec(traffic_str, tspec);
    if (!error.empty()) {
      std::cerr << "dglab: --traffic: " << error << "\n";
      std::exit(2);
    }
    const bool counted = tspec.kind == traffic::TrafficSpec::Kind::kSaturate ||
                         tspec.kind == traffic::TrafficSpec::Kind::kBurst;
    if ((counted && tspec.count > g.size()) ||
        (tspec.kind == traffic::TrafficSpec::Kind::kHotspot &&
         tspec.hot >= g.size())) {
      std::cerr << "dglab: --traffic: vertex bound exceeds network size "
                << g.size() << " in '" << traffic_str << "'\n";
      std::exit(2);
    }
    // Digits only: strtoull would silently wrap "-1" to ULLONG_MAX (an
    // unbounded queue) instead of rejecting it.
    const std::string cap_str = flags.str("traffic-cap", "0");
    if (cap_str.empty() ||
        cap_str.find_first_not_of("0123456789") != std::string::npos) {
      std::cerr << "dglab: --traffic-cap needs a non-negative integer; "
                   "got '" << cap_str << "'\n";
      std::exit(2);
    }
    sim.traffic().set_queue_capacity(
        static_cast<std::size_t>(flags.uint("traffic-cap", 0)));
    sim.add_traffic(
        traffic::build_source(tspec, g.size(), derive_seed(master, 0x7fcULL)));
    std::cout << "traffic: " << traffic_str << "\n";
  } else {
    const auto senders =
        std::min<std::uint64_t>(flags.uint("senders", 2), g.size());
    if (senders >= 1) {
      sim.keep_busy(traffic::spread_vertices(
          static_cast<std::size_t>(senders), g.size()));
    }
  }
  const std::string faults_str = flags.str("faults", "");
  std::unique_ptr<fault::FaultPlan> plan;  // must outlive the run
  if (!faults_str.empty()) {
    fault::FaultSpec fspec;
    const std::string error = fault::parse_fault_spec(faults_str, fspec);
    if (!error.empty()) {
      std::cerr << "dglab: --faults: " << error << "\n";
      std::exit(2);
    }
    const bool names_vertex = fspec.kind == fault::FaultSpec::Kind::kCrash ||
                              fspec.kind == fault::FaultSpec::Kind::kRegion;
    if ((names_vertex && fspec.vertex >= g.size()) ||
        (fspec.kind == fault::FaultSpec::Kind::kAdversary &&
         static_cast<std::size_t>(fspec.k) > g.size())) {
      std::cerr << "dglab: --faults: vertex bound exceeds network size "
                << g.size() << " in '" << faults_str << "'\n";
      std::exit(2);
    }
    plan = fault::build_fault_plan(fspec);
    sim.set_fault_plan(plan.get());
    std::cout << "faults: " << faults_str << " (" << plan->name()
              << " plan)\n";
  }
  sim.run_phases(static_cast<std::int64_t>(flags.uint("phases", 30)));
  if (want_metrics || want_trace) sim.export_telemetry();

  const auto& r = sim.report();
  std::cout << "\nafter " << sim.round() << " rounds:\n"
            << "  timely-ack=" << (r.timely_ack_ok ? "OK" : "VIOLATED")
            << " validity=" << (r.validity_ok ? "OK" : "VIOLATED")
            << " violations=" << r.violations << "\n"
            << "  bcast/ack/recv: " << r.bcast_count << "/" << r.ack_count
            << "/" << r.recv_count << " (raw receptions "
            << r.raw_receptions << ")\n"
            << "  reliability: " << r.reliability.successes() << "/"
            << r.reliability.trials() << "   progress: "
            << r.progress.successes() << "/" << r.progress.trials() << "\n";
  if (!traffic_str.empty()) {
    const traffic::TrafficStats& ts = sim.traffic().stats();
    // --phases=0 runs no rounds; report 0 rates instead of dividing by 0.
    const double rounds = std::max(1.0, static_cast<double>(sim.round()));
    std::cout << "  traffic: offered/admitted/acked/dropped: " << ts.offered
              << "/" << ts.admitted << "/" << ts.acked << "/" << ts.dropped
              << "  (offered " << ts.offered / rounds << "/round, delivered "
              << ts.acked / rounds << "/round)\n"
              << "  latency (rounds): wait " << ts.mean_wait() << "  ack "
              << ts.mean_ack_latency() << "  first-recv "
              << ts.mean_recv_latency() << "\n"
              << "  queued: network backlog mean " << ts.mean_backlog()
              << "  per-node depth max " << ts.depth_max << "\n";
    if (ts.crash_requeues != 0 || ts.readmitted != 0) {
      std::cout << "  crash re-queues: " << ts.crash_requeues
                << "  re-admitted after recovery: " << ts.readmitted << "\n";
    }
  }
  if (!faults_str.empty()) {
    // The graceful-degradation ledger: spec tallies above cover only
    // fault-free windows; everything a fault touched degrades into here.
    const lb::DegradationLedger& led = sim.ledger();
    std::cout << "  degradation: crashes/recoveries " << led.crashes << "/"
              << led.recoveries << "  fault rounds " << led.fault_rounds
              << "/" << led.rounds_observed << "\n"
              << "  fault-window progress: "
              << led.faulty_progress.successes() << "/"
              << led.faulty_progress.trials() << " (violation rate "
              << led.progress_violation_rate() << ")\n"
              << "  fault-window reliability: "
              << led.faulty_reliability.successes() << "/"
              << led.faulty_reliability.trials() << "\n"
              << "  re-stabilization: mean "
              << led.mean_restabilization_rounds() << " rounds over "
              << led.restab_count << " recoveries"
              << "  fault-window ack rate "
              << led.fault_window_ack_rate() << "/round\n";
  }
  if (flags.flag("trace")) {
    std::cout << "\ntrace tail:\n";
    trace.print(std::cout);
  }
  if (want_metrics) {
    const std::string path = flags.str("metrics-out", "");
    if (!write_file(path, registry.json())) {
      std::cerr << "dglab: --metrics-out: cannot write '" << path << "'\n";
      return 2;
    }
    std::cout << "metrics: " << registry.size() << " series -> " << path
              << "\n";
  }
  if (want_trace) {
    obs::export_recorder(trace, *sink);
    const std::string path = flags.str("trace-out", "");
    if (!write_file(path, sink->json())) {
      std::cerr << "dglab: --trace-out: cannot write '" << path << "'\n";
      return 2;
    }
    std::cout << "trace: " << sink->event_count() << " events -> " << path
              << "\n";
  }
  return r.timely_ack_ok && r.validity_ok ? 0 : 1;
}

int cmd_sweep(const Flags& flags) {
  Table table({"Delta", "phase", "progress mean (rounds)",
               "reliability", "progress freq"});
  for (const std::string& ds : split(flags.str("deltas", "4,8,16,32"), ',')) {
    const auto clique = static_cast<std::size_t>(
        std::strtoull(ds.c_str(), nullptr, 10));
    const auto g = graph::clique_cluster(clique);
    lb::LbScales scales;
    scales.ack_scale = flags.num("ack-scale", 0.02);
    const auto params = lb::LbParams::calibrated(
        flags.num("eps", 0.1), 1.5, g.delta(), g.delta_prime(), scales);
    auto sim_ptr = make_simulation(flags, g, params, flags.uint("seed", 1));
    lb::LbSimulation& sim = *sim_ptr;
    sim.keep_busy({0});
    sim.run_phases(static_cast<std::int64_t>(flags.uint("phases", 20)));
    const auto& r = sim.report();
    // Mean first-reception latency across completed broadcasts.
    double total = 0;
    std::size_t count = 0;
    for (const auto& rec : sim.checker().broadcasts()) {
      for (const auto& [v, round] : rec.recv_rounds) {
        total += static_cast<double>(round - rec.input_round);
        ++count;
      }
    }
    table.row()
        .cell(static_cast<std::uint64_t>(clique))
        .cell(params.phase_length())
        .cell(count ? total / static_cast<double>(count) : 0.0, 1)
        .cell(std::to_string(r.reliability.successes()) + "/" +
              std::to_string(r.reliability.trials()))
        .cell(r.progress.trials() ? r.progress.frequency() : 1.0, 3);
  }
  table.print(std::cout);
  return 0;
}

void usage() {
  std::cout << "usage: dglab <net|seed|run|sweep> [--flags]\n"
               "       dglab --flags...   (implies 'run')\n"
               "  --topology=grid:32x32 | geometric:256 | clique:16 | "
               "star:16 | line:16\n"
               "  --metrics-out=FILE --trace-out=FILE  telemetry dumps "
               "(trace-event JSON loads in Perfetto)\n"
               "  --trace-rounds=LO:HI --trace-vertices=v1,v2  trace filters\n"
               "  --channel=dual | sinr:alpha,beta,noise  reception physics\n"
               "  --splice=noop | dedup[:window[:slab]] | tap:slab[:v1,...]"
               "  extra pipeline stage\n"
               "  --traffic=saturate[:count] | poisson:rate | "
               "burst:period:size[:count] | hotspot:rate:bias[:hot]\n"
               "  --faults=crash:round:vertex[:repair] | "
               "poisson:rate[:mean_repair] | "
               "region:round:center:radius[:repair] | "
               "adversary:k[:period[:repair]]\n"
               "see the header of tools/dglab.cpp for the full flag list\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  // A leading --flag implies `run`, so the flag-only invocation
  // `dglab --topology=grid:32x32 --metrics-out=m.json` works as-is.
  std::string cmd = argv[1];
  int first = 2;
  if (cmd.rfind("--", 0) == 0) {
    cmd = "run";
    first = 1;
  }
  const Flags flags(argc, argv, first);
  if (!flags.unknown().empty()) {
    for (const std::string& arg : flags.unknown()) {
      std::cerr << "dglab: unknown flag '" << arg << "'\n";
    }
    std::cerr << "valid flags:";
    for (const char* f : kValidFlags) std::cerr << " --" << f;
    std::cerr << "\n";
    return 2;
  }
  // Traffic flags only apply to `run`; the other subcommands drive their
  // own environments, and silently ignoring the flags there would break
  // the no-silent-ignore policy the run command enforces.
  if (cmd != "run" &&
      (flags.flag("traffic") || flags.flag("traffic-cap") ||
       flags.flag("faults"))) {
    std::cerr << "dglab: --traffic/--traffic-cap/--faults only apply to "
                 "the 'run' subcommand\n";
    return 2;
  }
  if (cmd == "net" && flags.flag("splice")) {
    std::cerr << "dglab: --splice only applies to the run/sweep/seed "
                 "subcommands (net builds no engine)\n";
    return 2;
  }
  if (cmd != "run" &&
      (flags.flag("metrics-out") || flags.flag("trace-out") ||
       flags.flag("trace-rounds") || flags.flag("trace-vertices"))) {
    std::cerr << "dglab: the telemetry flags (--metrics-out/--trace-out/"
                 "--trace-rounds/--trace-vertices) only apply to the 'run' "
                 "subcommand\n";
    return 2;
  }
  if (cmd == "net") return cmd_net(flags);
  if (cmd == "seed") return cmd_seed(flags);
  if (cmd == "run") return cmd_run(flags);
  if (cmd == "sweep") return cmd_sweep(flags);
  usage();
  return 2;
}
