#!/usr/bin/env python3
"""Compare two bench_out/ directories: wall-clock and key-metric deltas.

Usage: bench_diff.py BASELINE_DIR CURRENT_DIR [--metrics] [--threshold PCT]
                     [--force]
       bench_diff.py --counters-only [--allow-new] GOLDEN.json CURRENT.json

For every BENCH_<name>.json present in both directories (the
bench_support.h / engine_micro_report.py shape: {"elapsed_ms", "sections"}),
prints the wall-clock delta.  For engine_micro, also prints per-benchmark
time and rounds/sec deltas (the tentpole throughput metric).  With
--metrics, additionally diffs every numeric cell of structurally matching
tables and reports those that moved by more than --threshold percent
(default 5) -- the guard against silent metric drift in perf PRs.

Reports carry machine/build stamps (hardware_concurrency, git_sha).  When
the hardware stamps differ the timing comparison is refused -- wall-clock
deltas across machines are noise dressed up as signal -- unless --force is
given; differing git SHAs are reported but do not block (comparing
revisions on one machine is the tool's main use).

In the default (directory) mode exit status is always 0: the tool
documents change, it does not gate.

--counters-only is the GATING mode: the two arguments are campaign
counters FILES (dgcampaign's COUNTERS_<campaign>.json,
"dg-campaign-counters-v1").  Counters are seed-deterministic -- pure
functions of the campaign file, independent of thread count, wall clock
and machine -- so ANY difference is a real behavioral regression: the
tool prints every mismatched value with its variant/metric/trial path and
exits 1.  Timing never enters this comparison (counters files carry
none), so the gate is immune to CI noise.  --allow-new downgrades
current-only variants to warnings: when a campaign grows, the pre-existing
variants still gate exactly while the additions await a golden refresh.

The same mode also accepts obs telemetry dumps -- "dg-metrics-v1"
(dglab --metrics-out / METRICS_<variant>.json) and
"dg-campaign-metrics-v1" (METRICS_<campaign>.json) -- dispatched on the
file's "format" key.  Only the LOGICAL domain is compared (counters,
gauges, histogram buckets); any "timing" section is ignored, since it is
wall clock by definition.  --allow-new applies the same way: current-only
variants and current-only metric names warn instead of failing.
"""
import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"  warning: cannot read {path}: {err}", file=sys.stderr)
        return None


def fmt_delta(old, new):
    if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
        return f"{old} -> {new}"
    if old == 0:
        return f"{old:g} -> {new:g}"
    pct = (new - old) / old * 100.0
    return f"{old:g} -> {new:g} ({pct:+.1f}%)"


def rows_by_key(section_tables, key_column):
    """Maps key-column value -> row dict for the first table having the key."""
    out = {}
    for table in section_tables:
        for row in table.get("rows", []):
            if key_column in row:
                out.setdefault(str(row[key_column]), row)
    return out


def engine_micro_rows(report):
    rows = {}
    for section in report.get("sections", []):
        rows.update(rows_by_key(section.get("tables", []), "benchmark"))
    if not rows:
        # Legacy shape: raw google-benchmark output (pre engine_micro_report).
        for bench in report.get("benchmarks", []):
            time_ns = bench.get("real_time")
            rows[bench.get("name", "?")] = {
                "benchmark": bench.get("name", "?"),
                "time_ns": time_ns,
                "rounds_per_sec": (1e9 / time_ns) if time_ns else None,
            }
    return rows


def diff_engine_micro(base, cur):
    base_rows = engine_micro_rows(base)
    cur_rows = engine_micro_rows(cur)
    for name in sorted(base_rows.keys() & cur_rows.keys()):
        b, c = base_rows[name], cur_rows[name]
        line = f"    {name}: time_ns {fmt_delta(b.get('time_ns'), c.get('time_ns'))}"
        if b.get("rounds_per_sec") and c.get("rounds_per_sec"):
            ratio = c["rounds_per_sec"] / b["rounds_per_sec"]
            line += (f", rounds/sec "
                     f"{fmt_delta(b['rounds_per_sec'], c['rounds_per_sec'])}"
                     f" = {ratio:.2f}x")
        print(line)
    for name in sorted(cur_rows.keys() - base_rows.keys()):
        print(f"    {name}: new benchmark")


def diff_metrics(name, base, cur, threshold_pct):
    """Diffs numeric cells of structurally matching tables."""
    moved = []
    base_sections = base.get("sections", [])
    cur_sections = cur.get("sections", [])
    for si, (bs, cs) in enumerate(zip(base_sections, cur_sections)):
        for ti, (bt, ct) in enumerate(
                zip(bs.get("tables", []), cs.get("tables", []))):
            for ri, (br, cr) in enumerate(
                    zip(bt.get("rows", []), ct.get("rows", []))):
                for col in br.keys() & cr.keys():
                    b, c = br[col], cr[col]
                    if not isinstance(b, (int, float)) or \
                       not isinstance(c, (int, float)) or b == c:
                        continue
                    pct = abs(c - b) / abs(b) * 100.0 if b else float("inf")
                    if pct > threshold_pct:
                        moved.append(
                            f"    s{si}/t{ti}/row{ri} {col}: {fmt_delta(b, c)}")
    if moved:
        print(f"  metrics moved > threshold in {name}:")
        for line in moved:
            print(line)


def variants_by_name(doc):
    return {v.get("name", "?"): v for v in doc.get("variants", [])}


def diff_counters(baseline_path, current_path, allow_new=False):
    """Exact comparison of two campaign counters files.  Returns the number
    of mismatches (0 = gate passes).  With allow_new, variants present only
    in the current file warn instead of failing (the intended flow when a
    campaign grows: land the new variants, then refresh the golden)."""
    base = load(baseline_path)
    cur = load(current_path)
    if base is None or cur is None:
        print("counter diff: unreadable input", file=sys.stderr)
        return 1
    mismatches = 0

    def report(path, b, c):
        nonlocal mismatches
        mismatches += 1
        print(f"  COUNTER MISMATCH {path}: {b!r} -> {c!r}")

    for key in ("format", "campaign"):
        if base.get(key) != cur.get(key):
            report(key, base.get(key), cur.get(key))
    base_variants = variants_by_name(base)
    cur_variants = variants_by_name(cur)
    for name in sorted(base_variants.keys() - cur_variants.keys()):
        report(f"variants[{name}]", "present", "MISSING")
    for name in sorted(cur_variants.keys() - base_variants.keys()):
        if allow_new:
            print(f"  warning: variants[{name}] is new (no golden entry; "
                  "--allow-new accepted it)")
        else:
            report(f"variants[{name}]", "MISSING", "present")
    for name in sorted(base_variants.keys() & cur_variants.keys()):
        b, c = base_variants[name], cur_variants[name]
        for key in ("seed", "trials", "metrics"):
            if b.get(key) != c.get(key):
                report(f"variants[{name}].{key}", b.get(key), c.get(key))
        metrics = b.get("metrics", [])
        b_rows, c_rows = b.get("per_trial", []), c.get("per_trial", [])
        if len(b_rows) != len(c_rows):
            report(f"variants[{name}].per_trial length",
                   len(b_rows), len(c_rows))
        for t, (br, cr) in enumerate(zip(b_rows, c_rows)):
            if len(br) != len(cr):
                report(f"variants[{name}].per_trial[{t}] length",
                       len(br), len(cr))
            for m, (bv, cv) in enumerate(zip(br, cr)):
                if bv != cv:
                    metric = metrics[m] if m < len(metrics) else f"#{m}"
                    report(f"variants[{name}].{metric}[trial {t}]", bv, cv)
        b_sums, c_sums = b.get("sums", []), c.get("sums", [])
        if len(b_sums) != len(c_sums):
            report(f"variants[{name}].sums length",
                   len(b_sums), len(c_sums))
        for m, (bs, cs) in enumerate(zip(b_sums, c_sums)):
            if bs != cs:
                metric = metrics[m] if m < len(metrics) else f"#{m}"
                report(f"variants[{name}].{metric}.sum", bs, cs)

    print(f"counter diff: {baseline_path} -> {current_path}: "
          f"{'OK' if mismatches == 0 else f'{mismatches} mismatch(es)'}")
    return mismatches


def diff_logical_domain(prefix, base, cur, report, allow_new):
    """Exact comparison of one dg-metrics-v1 "logical" object (counters,
    gauges, histograms).  New metric names in current warn under
    allow_new; everything else mismatches."""
    base = base or {}
    cur = cur or {}
    for group in ("counters", "gauges", "histograms"):
        b_group = base.get(group, {})
        c_group = cur.get(group, {})
        for name in sorted(b_group.keys() - c_group.keys()):
            report(f"{prefix}.{group}[{name}]", "present", "MISSING")
        for name in sorted(c_group.keys() - b_group.keys()):
            if allow_new:
                print(f"  warning: {prefix}.{group}[{name}] is new "
                      "(no golden entry; --allow-new accepted it)")
            else:
                report(f"{prefix}.{group}[{name}]", "MISSING", "present")
        for name in sorted(b_group.keys() & c_group.keys()):
            b, c = b_group[name], c_group[name]
            if group != "histograms":
                if b != c:
                    report(f"{prefix}.{group}[{name}]", b, c)
                continue
            for key in ("bounds", "buckets", "count", "sum"):
                if b.get(key) != c.get(key):
                    report(f"{prefix}.{group}[{name}].{key}",
                           b.get(key), c.get(key))


def diff_metrics_files(baseline_path, current_path, allow_new=False):
    """Gating comparison of two obs metrics dumps (dg-metrics-v1 or
    dg-campaign-metrics-v1).  Returns the mismatch count; only the logical
    domain participates."""
    base = load(baseline_path)
    cur = load(current_path)
    if base is None or cur is None:
        print("metrics diff: unreadable input", file=sys.stderr)
        return 1
    mismatches = 0

    def report(path, b, c):
        nonlocal mismatches
        mismatches += 1
        print(f"  METRIC MISMATCH {path}: {b!r} -> {c!r}")

    if base.get("format") != cur.get("format"):
        report("format", base.get("format"), cur.get("format"))
    elif base.get("format") == "dg-metrics-v1":
        diff_logical_domain("logical", base.get("logical"),
                            cur.get("logical"), report, allow_new)
    else:  # dg-campaign-metrics-v1
        if base.get("campaign") != cur.get("campaign"):
            report("campaign", base.get("campaign"), cur.get("campaign"))
        base_variants = variants_by_name(base)
        cur_variants = variants_by_name(cur)
        for name in sorted(base_variants.keys() - cur_variants.keys()):
            report(f"variants[{name}]", "present", "MISSING")
        for name in sorted(cur_variants.keys() - base_variants.keys()):
            if allow_new:
                print(f"  warning: variants[{name}] is new (no golden "
                      "entry; --allow-new accepted it)")
            else:
                report(f"variants[{name}]", "MISSING", "present")
        for name in sorted(base_variants.keys() & cur_variants.keys()):
            diff_logical_domain(
                f"variants[{name}].logical",
                base_variants[name].get("metrics", {}).get("logical"),
                cur_variants[name].get("metrics", {}).get("logical"),
                report, allow_new)
        diff_logical_domain(
            "campaign_metrics.logical",
            base.get("campaign_metrics", {}).get("logical"),
            cur.get("campaign_metrics", {}).get("logical"),
            report, allow_new)

    print(f"metrics diff: {baseline_path} -> {current_path}: "
          f"{'OK' if mismatches == 0 else f'{mismatches} mismatch(es)'}")
    return mismatches


METRICS_FORMATS = ("dg-metrics-v1", "dg-campaign-metrics-v1")


def diff_gating(baseline_path, current_path, allow_new=False):
    """--counters-only dispatcher: routes on the files' "format" key so
    counters files and obs metrics dumps share one gating flag."""
    cur = load(current_path)
    if cur is not None and cur.get("format") in METRICS_FORMATS:
        return diff_metrics_files(baseline_path, current_path, allow_new)
    return diff_counters(baseline_path, current_path, allow_new)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--metrics", action="store_true",
                        help="also diff numeric table cells")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="percent change to report with --metrics")
    parser.add_argument("--force", action="store_true",
                        help="compare even when hardware stamps differ")
    parser.add_argument("--counters-only", action="store_true",
                        help="gating mode: compare two campaign counters "
                             "files exactly; exit 1 on any difference")
    parser.add_argument("--allow-new", action="store_true",
                        help="with --counters-only: variants present only "
                             "in the current file warn instead of failing "
                             "(use while a campaign grows)")
    args = parser.parse_args()

    if args.allow_new and not args.counters_only:
        print("bench_diff: --allow-new only applies to --counters-only",
              file=sys.stderr)
        return 2

    if args.counters_only:
        for path in (args.baseline, args.current):
            if not os.path.isfile(path):
                print(f"counter diff: {path} is not a file "
                      "(--counters-only takes two COUNTERS_*.json or "
                      "METRICS_*.json files)",
                      file=sys.stderr)
                return 2
        return 1 if diff_gating(args.baseline, args.current,
                                args.allow_new) else 0

    def bench_names(d):
        return {f[len("BENCH_"):-len(".json")]
                for f in os.listdir(d)
                if f.startswith("BENCH_") and f.endswith(".json")}

    base_names = bench_names(args.baseline)
    cur_names = bench_names(args.current)

    print(f"bench diff: {args.baseline} -> {args.current}")
    for name in sorted(base_names & cur_names):
        base = load(os.path.join(args.baseline, f"BENCH_{name}.json"))
        cur = load(os.path.join(args.current, f"BENCH_{name}.json"))
        if base is None or cur is None:
            continue
        base_hw = base.get("hardware_concurrency")
        cur_hw = cur.get("hardware_concurrency")
        cross_machine = (base_hw is not None and cur_hw is not None
                         and base_hw != cur_hw and not args.force)
        base_sha = base.get("git_sha")
        cur_sha = cur.get("git_sha")
        sha_note = (f"  [git {base_sha} -> {cur_sha}]"
                    if base_sha and cur_sha and base_sha != cur_sha else "")
        if cross_machine:
            # Only timing comparisons are machine-dependent; experiment
            # metric cells are seed-deterministic (montecarlo.h) and still
            # diff meaningfully across machines.  engine_micro's table IS
            # timings, so its metric diff is refused too.
            print(f"  {name}: timing REFUSED -- hardware_concurrency "
                  f"{base_hw} vs {cur_hw} (cross-machine timings are not "
                  f"comparable; --force to override){sha_note}")
        else:
            print(f"  {name}: elapsed_ms "
                  f"{fmt_delta(base.get('elapsed_ms'), cur.get('elapsed_ms'))}"
                  f"{sha_note}")
            if name == "engine_micro":
                diff_engine_micro(base, cur)
        if args.metrics and not (cross_machine and name == "engine_micro"):
            diff_metrics(name, base, cur, args.threshold)
    for name in sorted(cur_names - base_names):
        print(f"  {name}: new bench (no baseline)")
    for name in sorted(base_names - cur_names):
        print(f"  {name}: missing from current run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
