#!/usr/bin/env bash
# Sweep every bench binary and collect machine-readable results.
#
# Usage: tools/run_benches.sh [BUILD_DIR] [OUT_DIR] [FILTER]
#   BUILD_DIR  CMake build tree containing bench/ binaries (default: build)
#   OUT_DIR    where BENCH_*.json and BENCH_*.txt land (default: bench_out)
#   FILTER     only run benches whose name contains this substring
#
# Each bench_* binary mirrors its stdout tables into $DG_BENCH_JSON (see
# bench/bench_support.h); bench_engine_micro is google-benchmark, so
# tools/engine_micro_report.py converts its native report into the same
# {elapsed_ms, sections} shape with rounds/sec rows.  Every run produces a
# BENCH_<name>.json with per-bench timing and metric rows, plus the
# human-readable table in BENCH_<name>.txt.
set -u

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench_out}
FILTER=${3:-}

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
ran=0 failed=0

for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name=$(basename "$bin")
  name=${name#bench_}
  case "$name" in
    *"$FILTER"*) ;;
    *) continue ;;
  esac
  json="$OUT_DIR/BENCH_${name}.json"
  txt="$OUT_DIR/BENCH_${name}.txt"
  # Drop stale results first: a bench that crashes never writes its JSON,
  # and a leftover file from a previous sweep must not pass for current.
  rm -f "$json" "$txt"
  echo "== bench_$name -> $json"
  if [ "$name" = engine_micro ]; then
    python3 "$(dirname "$0")/engine_micro_report.py" "$bin" "$json" "$txt"
  else
    DG_BENCH_JSON="$json" "$bin" > "$txt" 2>&1
  fi
  status=$?
  if [ $status -ne 0 ]; then
    # A bench can exit nonzero after its JSON was already written (the
    # report flushes at process exit); don't let failed results pass for
    # good ones.
    rm -f "$json"
    echo "   FAILED (exit $status); see $txt" >&2
    failed=$((failed + 1))
    continue
  fi
  ran=$((ran + 1))
done

echo "ran $ran bench(es), $failed failure(s); results in $OUT_DIR/"
[ $failed -eq 0 ]
