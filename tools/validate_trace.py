#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (dglab --trace-out).

Usage: validate_trace.py TRACE.json [--expect-phases] [--expect-span]
                         [--expect-faults] [--expect-stage NAME]

Checks, in order:
  1. the file parses as JSON and carries a "traceEvents" array
  2. every event has the required keys for its phase type ('X' slices
     need ts/dur/pid/tid/name; 'i' instants need ts/pid/tid/name;
     'M' metadata is exempt)
  3. per (pid, tid) track, timestamps are non-decreasing in FILE ORDER --
     the property obs::TraceSink::write_json guarantees by stable-sorting,
     and the one Perfetto's JSON importer relies on for nesting
  4. slice durations are non-negative and nested slices stay inside their
     round tick

The --expect-* flags turn presence checks into failures (CI uses them to
assert the acceptance-criteria content: engine phase slices, at least one
complete enqueue->ack message span, crash/recover instants).

Exit 0 when everything holds; 1 with a message per violation otherwise.
"""
import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace")
    parser.add_argument("--expect-phases", action="store_true",
                        help="fail unless engine phase slices are present")
    parser.add_argument("--expect-span", action="store_true",
                        help="fail unless a complete (acked) message span "
                             "is present")
    parser.add_argument("--expect-faults", action="store_true",
                        help="fail unless crash/recover instants are present")
    parser.add_argument("--expect-stage", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a slice named NAME is present "
                             "(repeatable; asserts spliced pipeline stages "
                             "like 'dedup' show up in the stage timeline)")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"validate_trace: {args.trace}: {err}", file=sys.stderr)
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"validate_trace: {args.trace}: no traceEvents array",
              file=sys.stderr)
        return 1

    errors = 0

    def fail(index, message):
        nonlocal errors
        errors += 1
        print(f"  event[{index}]: {message}")

    last_ts = {}       # (pid, tid) -> last timestamp seen in file order
    phase_names = {"transmit", "prepare_round", "compute", "receive",
                   "output_flush"}
    saw_phase = False
    saw_acked_span = False
    saw_crash = False
    saw_recover = False
    saw_stages = set()

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(i, f"not an object: {ev!r}")
            continue
        ph = ev.get("ph")
        if ph == "M":
            continue  # metadata carries no timestamp
        if ph not in ("X", "i"):
            fail(i, f"unexpected phase type {ph!r}")
            continue
        required = ("name", "ts", "pid", "tid") + (("dur",) if ph == "X"
                                                  else ())
        missing = [k for k in required if k not in ev]
        if missing:
            fail(i, f"{ph!r} event missing keys {missing}")
            continue
        ts = ev["ts"]
        track = (ev["pid"], ev["tid"])
        if track in last_ts and ts < last_ts[track]:
            fail(i, f"track {track} timestamp regressed: "
                    f"{last_ts[track]} -> {ts}")
        last_ts[track] = ts
        if ph == "X" and ev["dur"] < 0:
            fail(i, f"negative duration {ev['dur']}")

        name = ev["name"]
        if name in phase_names:
            saw_phase = True
        if ph == "X" and name.startswith("msg ") and \
                isinstance(ev.get("args"), dict) and \
                ev["args"].get("status") == "acked":
            saw_acked_span = True
        if name == "crash":
            saw_crash = True
        if name == "recover":
            saw_recover = True
        if name in args.expect_stage:
            saw_stages.add(name)

    if args.expect_phases and not saw_phase:
        errors += 1
        print("  missing: engine phase slices")
    if args.expect_span and not saw_acked_span:
        errors += 1
        print("  missing: a complete (acked) message span")
    if args.expect_faults and not (saw_crash and saw_recover):
        errors += 1
        print(f"  missing: fault instants (crash={saw_crash}, "
              f"recover={saw_recover})")
    for stage in args.expect_stage:
        if stage not in saw_stages:
            errors += 1
            print(f"  missing: stage slice '{stage}'")

    n = len(events)
    print(f"validate_trace: {args.trace}: {n} events, "
          f"{len(last_ts)} tracks: "
          f"{'OK' if errors == 0 else f'{errors} violation(s)'}")
    return 0 if errors == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
