#include "obs/trace_sink.h"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <sstream>

#include "scn/json.h"
#include "sim/trace.h"
#include "util/assert.h"

namespace dg::obs {

namespace {

constexpr int kEnginePid = 1;
constexpr int kMessagesPid = 2;
constexpr int kFaultsPid = 3;
constexpr int kRecorderPid = 4;
constexpr int kStagesPid = 5;

const char* pid_name(int pid) {
  switch (pid) {
    case kEnginePid: return "engine";
    case kMessagesPid: return "messages";
    case kFaultsPid: return "faults";
    case kRecorderPid: return "recorder";
    case kStagesPid: return "stages";
    default: return "track";
  }
}

}  // namespace

TraceSink::TraceSink(Filter filter) : filter_(std::move(filter)) {
  DG_EXPECTS(filter_.round_lo <= filter_.round_hi);
  std::sort(filter_.vertices.begin(), filter_.vertices.end());
}

bool TraceSink::round_in_range(std::int64_t round) const noexcept {
  return round >= filter_.round_lo && round <= filter_.round_hi;
}

bool TraceSink::vertex_selected(std::uint32_t vertex) const {
  if (filter_.vertices.empty()) return true;
  return std::binary_search(filter_.vertices.begin(), filter_.vertices.end(),
                            vertex);
}

void TraceSink::push(Event event) {
  const std::size_t pid = static_cast<std::size_t>(event.pid);
  if (pid < used_pids_.size()) used_pids_[pid] = true;
  events_.push_back(std::move(event));
}

void TraceSink::round_phases(std::int64_t round,
                             const std::vector<std::string>& names,
                             const std::vector<std::uint64_t>& ns) {
  DG_EXPECTS(names.size() == ns.size());
  if (!round_in_range(round)) return;
  const std::int64_t tick = round * kRoundTickUs;
  const std::uint64_t total =
      std::accumulate(ns.begin(), ns.end(), std::uint64_t{0});
  {
    Event e;
    e.name = "round " + std::to_string(round);
    e.ts = tick;
    e.dur = kRoundTickUs;
    e.pid = kEnginePid;
    e.args_json = "{\"total_ns\": " + std::to_string(total) + "}";
    push(std::move(e));
  }
  if (total == 0) return;
  // Stage slices split the tick proportionally to measured nanoseconds
  // (floor, min 1us so sub-promille stages stay visible), clamped so the
  // children never escape the parent slice.
  std::int64_t pos = tick;
  for (std::size_t p = 0; p < ns.size(); ++p) {
    if (ns[p] == 0) continue;
    std::int64_t dur = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(ns[p] * static_cast<std::uint64_t>(
                                                 kRoundTickUs) / total));
    dur = std::min(dur, tick + kRoundTickUs - pos);
    if (dur <= 0) break;
    Event e;
    e.name = names[p];
    e.ts = pos;
    e.dur = dur;
    e.pid = kEnginePid;
    e.args_json = "{\"ns\": " + std::to_string(ns[p]) + "}";
    push(std::move(e));
    pos += dur;
  }
}

void TraceSink::message_span(std::uint32_t vertex, std::uint64_t content,
                             std::int64_t enqueue, std::int64_t admit,
                             std::int64_t first_recv, std::int64_t ack,
                             std::int64_t abort_round) {
  if (!vertex_selected(vertex)) return;
  // The span closes at its terminal event; unterminated messages close one
  // tick after their last recorded event so the slice stays well-formed.
  const std::int64_t last =
      std::max({enqueue, admit, first_recv, ack, abort_round});
  const std::int64_t end =
      ack != 0 ? ack : (abort_round != 0 ? abort_round : last + 1);
  if (enqueue > filter_.round_hi || end < filter_.round_lo) return;

  const char* status =
      ack != 0 ? "acked" : (abort_round != 0 ? "aborted" : "open");
  {
    Event e;
    e.name = "msg " + std::to_string(content);
    e.ts = enqueue * kRoundTickUs;
    e.dur = std::max<std::int64_t>(1, (end - enqueue) * kRoundTickUs);
    e.pid = kMessagesPid;
    e.tid = vertex;
    std::ostringstream args;
    args << "{\"enqueue\": " << enqueue << ", \"admit\": " << admit
         << ", \"first_recv\": " << first_recv << ", \"ack\": " << ack
         << ", \"abort\": " << abort_round << ", \"status\": \"" << status
         << "\"}";
    e.args_json = args.str();
    push(std::move(e));
  }
  if (admit != 0) {
    Event e;
    e.name = "queued";
    e.ts = enqueue * kRoundTickUs;
    e.dur = std::max<std::int64_t>(1, (admit - enqueue) * kRoundTickUs);
    e.pid = kMessagesPid;
    e.tid = vertex;
    push(std::move(e));
    Event f;
    f.name = "inflight";
    f.ts = admit * kRoundTickUs;
    f.dur = std::max<std::int64_t>(1, (end - admit) * kRoundTickUs);
    f.pid = kMessagesPid;
    f.tid = vertex;
    push(std::move(f));
  }
  if (first_recv != 0) {
    Event e;
    e.name = "first_recv";
    e.ph = 'i';
    e.ts = first_recv * kRoundTickUs;
    e.pid = kMessagesPid;
    e.tid = vertex;
    push(std::move(e));
  }
}

void TraceSink::crash(std::int64_t round, std::uint32_t vertex) {
  instant(round, vertex, "crash", kFaultsPid);
}

void TraceSink::recover(std::int64_t round, std::uint32_t vertex) {
  instant(round, vertex, "recover", kFaultsPid);
}

void TraceSink::instant(std::int64_t round, std::uint32_t vertex,
                        const std::string& name, int pid,
                        const std::string& args_json) {
  if (!round_in_range(round) || !vertex_selected(vertex)) return;
  Event e;
  e.name = name;
  e.ph = 'i';
  e.ts = round * kRoundTickUs;
  e.pid = pid;
  e.tid = vertex;
  e.args_json = args_json;
  push(std::move(e));
}

void TraceSink::write_json(std::ostream& os) const {
  // Stable sort by timestamp: per-track monotone file order, parents
  // before children at equal ts (insertion order breaks ties).
  std::vector<std::size_t> order(events_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return events_[a].ts < events_[b].ts;
                   });
  os << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;
  for (std::size_t pid = 0; pid < used_pids_.size(); ++pid) {
    if (!used_pids_[pid]) continue;
    os << (first ? "\n" : ",\n") << "{\"name\": \"process_name\", \"ph\": "
       << "\"M\", \"pid\": " << pid << ", \"tid\": 0, \"ts\": 0, \"args\": "
       << "{\"name\": \"" << pid_name(static_cast<int>(pid)) << "\"}}";
    first = false;
  }
  for (const std::size_t idx : order) {
    const Event& e = events_[idx];
    os << (first ? "\n" : ",\n") << "{\"name\": \""
       << scn::json::escape(e.name) << "\", \"ph\": \"" << e.ph
       << "\", \"ts\": " << e.ts;
    if (e.ph == 'X') os << ", \"dur\": " << e.dur;
    if (e.ph == 'i') os << ", \"s\": \"t\"";
    os << ", \"pid\": " << e.pid << ", \"tid\": " << e.tid;
    if (!e.args_json.empty()) os << ", \"args\": " << e.args_json;
    os << "}";
    first = false;
  }
  os << "\n]}\n";
}

std::string TraceSink::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void export_recorder(const sim::TraceRecorder& recorder, TraceSink& sink) {
  using EventKind = sim::TraceRecorder::EventKind;
  for (const auto& ev : recorder.events()) {
    const char* name = "?";
    switch (ev.kind) {
      case EventKind::transmit: name = "tx"; break;
      case EventKind::receive: name = "rx"; break;
      case EventKind::collision: name = "collision"; break;
      case EventKind::round_begin: name = "round_begin"; break;
      case EventKind::round_end: name = "round_end"; break;
      case EventKind::crash: name = "crash"; break;
      case EventKind::recover: name = "recover"; break;
    }
    const std::string args = "{\"text\": \"" +
                             scn::json::escape(
                                 sim::TraceRecorder::describe(ev)) +
                             "\"}";
    sink.instant(ev.round, ev.vertex, name, /*pid=*/4, args);
  }
}

}  // namespace dg::obs
