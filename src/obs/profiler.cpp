#include "obs/profiler.h"

#include <numeric>
#include <string>

namespace dg::obs {

PhaseProfiler::PhaseProfiler(Registry& registry) {
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    phase_ns_[p] = &registry.counter(
        std::string("engine.phase.") + phase_name(static_cast<Phase>(p)) +
            ".ns",
        Domain::kTiming);
  }
  round_ns_ = &registry.counter("engine.round.ns", Domain::kTiming);
  parallel_ns_ = &registry.counter("engine.pool.parallel.ns",
                                   Domain::kTiming);
  round_us_ = &registry.histogram(
      "engine.round.us", Domain::kTiming,
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000,
       50000, 100000});
}

void PhaseProfiler::begin_round(std::int64_t round) {
  round_ = round;
  current_.fill(0);
  current_parallel_ns_ = 0;
  round_start_ = Clock::now();
}

void PhaseProfiler::phase_begin(Phase phase) {
  (void)phase;
  phase_start_ = Clock::now();
}

void PhaseProfiler::phase_end(Phase phase) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - phase_start_)
                      .count();
  current_[static_cast<std::size_t>(phase)] +=
      static_cast<std::uint64_t>(ns);
}

void PhaseProfiler::add_parallel_ns(std::uint64_t ns) {
  current_parallel_ns_ += ns;
}

void PhaseProfiler::end_round(TraceSink* sink) {
  const auto round_ns =
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              Clock::now() - round_start_)
              .count());
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    *phase_ns_[p] += current_[p];
  }
  *round_ns_ += round_ns;
  *parallel_ns_ += current_parallel_ns_;
  round_us_->record(static_cast<double>(round_ns) / 1000.0);
  last_ = current_;
  if (sink != nullptr) sink->round_phases(round_, current_);
}

}  // namespace dg::obs
