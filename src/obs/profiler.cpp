#include "obs/profiler.h"

#include <algorithm>
#include <string>

#include "util/assert.h"

namespace dg::obs {

PhaseProfiler::PhaseProfiler(Registry& registry) : registry_(&registry) {
  round_ns_ = &registry.counter("engine.round.ns", Domain::kTiming);
  parallel_ns_ = &registry.counter("engine.pool.parallel.ns",
                                   Domain::kTiming);
  round_us_ = &registry.histogram(
      "engine.round.us", Domain::kTiming,
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000,
       50000, 100000});
}

std::size_t PhaseProfiler::register_stage(const std::string& name) {
  const std::size_t slot = names_.size();
  names_.push_back(name);
  phase_ns_.push_back(&registry_->counter("engine.phase." + name + ".ns",
                                          Domain::kTiming));
  current_.push_back(0);
  last_.push_back(0);
  return slot;
}

void PhaseProfiler::begin_round(std::int64_t round) {
  round_ = round;
  std::fill(current_.begin(), current_.end(), std::uint64_t{0});
  current_parallel_ns_ = 0;
  round_start_ = Clock::now();
}

void PhaseProfiler::phase_begin(std::size_t slot) {
  DG_ASSERT(slot < current_.size());
  (void)slot;
  phase_start_ = Clock::now();
}

void PhaseProfiler::phase_end(std::size_t slot) {
  DG_ASSERT(slot < current_.size());
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - phase_start_)
                      .count();
  current_[slot] += static_cast<std::uint64_t>(ns);
}

void PhaseProfiler::add_parallel_ns(std::uint64_t ns) {
  current_parallel_ns_ += ns;
}

void PhaseProfiler::end_round(TraceSink* sink) {
  const auto round_ns =
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              Clock::now() - round_start_)
              .count());
  for (std::size_t p = 0; p < current_.size(); ++p) {
    *phase_ns_[p] += current_[p];
  }
  *round_ns_ += round_ns;
  *parallel_ns_ += current_parallel_ns_;
  round_us_->record(static_cast<double>(round_ns) / 1000.0);
  last_ = current_;
  if (sink != nullptr) sink->round_phases(round_, names_, current_);
}

}  // namespace dg::obs
