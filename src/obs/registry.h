// obs::Registry -- the telemetry metrics registry (counters, gauges,
// fixed-bucket histograms) behind --metrics-out and METRICS_* campaign
// artifacts.
//
// Every metric lives in one of two strictly separated domains:
//
//   kLogical -- a pure function of (scenario, seed): round counts,
//               transmissions, deliveries, traffic ledger sums.  Logical
//               dumps are BYTE-IDENTICAL across --round-threads / --threads
//               and machines, which is what lets CI gate on them exactly
//               like campaign counters.
//   kTiming  -- wall-clock measurements (phase durations, dispatch counts,
//               pool stats).  Never gated, excluded from logical dumps by
//               construction.
//
// Determinism contract: logical metrics may only be recorded from serial
// code (or serially replayed code) whose order does not depend on thread
// scheduling; the engine and wrappers uphold this by recording them at the
// same serial seams that keep observers deterministic.  The registry itself
// is not thread-safe -- one registry per trial, merged afterwards in trial
// order (see scn/campaign.cpp).
//
// Merge semantics (Registry::merge): counters add, gauges last-write-wins
// (the merged-in value overwrites -- this makes merge ORDER observable,
// which the deterministic-rollup tests rely on), histograms add bucketwise
// and require identical bounds.
//
// Serialization is byte-stable: metrics sort by name, numbers render via
// the shared shortest-round-trip formatter (scn/json.h, a standalone leaf
// with no scn dependencies).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <map>
#include <vector>

namespace dg::obs {

enum class Domain : std::uint8_t { kLogical = 0, kTiming = 1 };

class Registry {
 public:
  /// Fixed-bucket histogram: bucket i counts values v with
  /// bounds[i-1] < v <= bounds[i]; the final bucket (index bounds.size())
  /// is the overflow bucket for v > bounds.back().  Bounds are fixed at
  /// registration and must be strictly increasing.
  class Histogram {
   public:
    void record(double value);

    const std::vector<double>& bounds() const noexcept { return bounds_; }
    /// bounds().size() + 1 entries; the last is the overflow bucket.
    const std::vector<std::uint64_t>& buckets() const noexcept {
      return buckets_;
    }
    std::uint64_t count() const noexcept { return count_; }
    double sum() const noexcept { return sum_; }

   private:
    friend class Registry;
    std::vector<double> bounds_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
  };

  /// Returns the counter slot for `name`, creating it at 0.  The reference
  /// stays valid for the registry's lifetime (node-based storage), so hot
  /// paths cache it once and bump it directly.  Re-registration with a
  /// different kind or domain is a contract violation.
  std::uint64_t& counter(const std::string& name, Domain domain);

  /// The gauge slot for `name` (a plain double, last write wins).
  double& gauge(const std::string& name, Domain domain);

  /// The histogram for `name`; `bounds` must be strictly increasing and
  /// must match on re-registration.
  Histogram& histogram(const std::string& name, Domain domain,
                       std::vector<double> bounds);

  /// Folds `other` into this registry: counters add, gauges overwrite,
  /// histogram buckets add (bounds must match).  Metrics unknown here are
  /// created.  Merge order is observable through gauges -- deterministic
  /// rollups must merge in a deterministic order (trial order, then
  /// variant order).
  void merge(const Registry& other);

  bool empty() const noexcept { return metrics_.empty(); }
  std::size_t size() const noexcept { return metrics_.size(); }

  /// Byte-stable JSON document (format "dg-metrics-v1"): metrics sorted by
  /// name within their domain.  With include_timing=false the "timing" key
  /// is omitted entirely -- the logical dump CI byte-compares across
  /// --round-threads.
  std::string json(bool include_timing = true) const;

  /// Streaming form of json(); every line after the first is prefixed with
  /// `indent` so campaign roll-ups can embed dumps at any nesting depth.
  void write_json(std::ostream& os, bool include_timing,
                  const std::string& indent = "") const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Metric {
    Domain domain = Domain::kLogical;
    Kind kind = Kind::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0;
    Histogram hist;
  };

  Metric& slot(const std::string& name, Domain domain, Kind kind);

  /// std::map: stable references (counter() hands them out) and sorted
  /// iteration (byte-stable dumps) in one structure.
  std::map<std::string, Metric> metrics_;
};

}  // namespace dg::obs
