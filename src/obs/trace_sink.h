// obs::TraceSink -- span/event collector emitting Chrome trace-event JSON
// (the format Perfetto and chrome://tracing load natively).
//
// Time axis: the trace runs on VIRTUAL time -- round t owns the tick
// [t*1000, (t+1)*1000) microseconds -- so logical events (message
// lifecycles, crash/recover instants) and wall-clock measurements (the
// engine phase profile) share one coherent timeline.  Phase slices
// subdivide their round's tick proportionally to the measured wall-clock
// nanoseconds; everything else sits at its round's tick boundary.
//
// Tracks (pid/tid):
//   pid 1 "engine"   tid 0: one "round N" slice per profiled round with
//                           the stage slices nested inside it
//   pid 2 "messages" tid = vertex: one outer "msg <content>" slice per
//                           traffic message with "queued"/"inflight"
//                           children and a "first_recv" instant
//   pid 3 "faults"   tid = vertex: "crash"/"recover" instants
//   pid 4 "recorder" tid = vertex: sim::TraceRecorder events exported via
//                           export_recorder()
//   pid 5 "stages"   tid = vertex: spliced-stage instants (e.g. the
//                           trace-tap stage's per-vertex probes)
//
// Filters: a round range and a vertex set, applied at record time so
// million-node runs stay bounded.  Phase slices honor only the round
// range; vertex-scoped events honor both.
//
// Output ordering: write_json() sorts events by timestamp (stable, so a
// parent slice inserted before its children stays before them at equal
// ts), which makes per-track timestamps monotone in file order -- the
// property tools/validate_trace.py checks in CI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

namespace dg::sim {
class TraceRecorder;
}  // namespace dg::sim

namespace dg::obs {

class TraceSink {
 public:
  /// Microseconds of virtual time per round.
  static constexpr std::int64_t kRoundTickUs = 1000;

  struct Filter {
    std::int64_t round_lo = 0;  ///< inclusive
    std::int64_t round_hi = std::numeric_limits<std::int64_t>::max();
    /// Vertices to keep for vertex-scoped events; empty = all.
    std::vector<std::uint32_t> vertices;
  };

  TraceSink() = default;
  explicit TraceSink(Filter filter);

  const Filter& filter() const noexcept { return filter_; }

  /// One profiled round: parallel vectors of stage names and wall-clock
  /// nanoseconds (0 = the stage did not run this round), in pipeline
  /// order.  Emits the round slice plus nested stage slices.
  void round_phases(std::int64_t round,
                    const std::vector<std::string>& names,
                    const std::vector<std::uint64_t>& ns);

  /// One traffic message lifecycle (rounds are 0 where the event never
  /// happened, matching traffic::MessageRecord).  Emits the outer message
  /// slice, queued/inflight children, and the first_recv instant.
  void message_span(std::uint32_t vertex, std::uint64_t content,
                    std::int64_t enqueue, std::int64_t admit,
                    std::int64_t first_recv, std::int64_t ack,
                    std::int64_t abort_round);

  void crash(std::int64_t round, std::uint32_t vertex);
  void recover(std::int64_t round, std::uint32_t vertex);

  /// Free-form instant on (pid, tid=vertex) at the round tick; used by the
  /// recorder export.  Subject to both filters.
  void instant(std::int64_t round, std::uint32_t vertex,
               const std::string& name, int pid,
               const std::string& args_json = "");

  /// Recorded events (metadata excluded).
  std::size_t event_count() const noexcept { return events_.size(); }

  /// The complete trace document: {"displayTimeUnit", "traceEvents": [..]}.
  void write_json(std::ostream& os) const;
  std::string json() const;

 private:
  struct Event {
    std::string name;
    char ph = 'X';  ///< 'X' complete slice, 'i' instant
    std::int64_t ts = 0;
    std::int64_t dur = 0;  ///< slices only
    int pid = 1;
    std::uint64_t tid = 0;
    std::string args_json;  ///< pre-rendered {"k": v} body, may be empty
  };

  bool round_in_range(std::int64_t round) const noexcept;
  bool vertex_selected(std::uint32_t vertex) const;
  void push(Event event);

  Filter filter_;
  std::vector<bool> used_pids_ = std::vector<bool>(8, false);
  std::vector<Event> events_;
};

/// Replays a sim::TraceRecorder's buffered events into `sink` as instants
/// on the "recorder" track (pid 4), named by event kind with the
/// describe() text as an argument, so the text and JSON renderings of one
/// recording agree event-for-event (modulo the sink's filters).
void export_recorder(const sim::TraceRecorder& recorder, TraceSink& sink);

}  // namespace dg::obs
