// obs::PhaseProfiler -- per-round wall-clock phase timing for the engine.
//
// The engine owns one profiler per installed telemetry registry and brackets
// each phase of run_round() with ScopedPhase guards; end_round() folds the
// measured nanoseconds into TIMING-domain registry counters/histograms and
// emits one round slice (with nested phase slices) into the trace sink.
// Everything here is wall clock, so nothing it writes lands in the logical
// (CI-gated) domain.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

#include "obs/registry.h"
#include "obs/trace_sink.h"

namespace dg::obs {

class PhaseProfiler {
 public:
  /// Registers the timing metrics in `registry` (which must outlive the
  /// profiler): engine.phase.<name>.ns counters, the engine.round.us
  /// histogram, and the engine.pool.parallel.ns utilization counter.
  explicit PhaseProfiler(Registry& registry);

  void begin_round(std::int64_t round);
  void phase_begin(Phase phase);
  void phase_end(Phase phase);
  /// Nanoseconds spent inside thread-pool dispatches this round (the
  /// utilization numerator; the round total is the denominator).
  void add_parallel_ns(std::uint64_t ns);
  /// Accumulates the round into the registry and, when `sink` is non-null,
  /// emits the round's phase slices.
  void end_round(TraceSink* sink);

  /// Last finished round's per-phase nanoseconds (tests).
  const std::array<std::uint64_t, kPhaseCount>& last_round_ns() const
      noexcept {
    return last_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  std::array<std::uint64_t*, kPhaseCount> phase_ns_{};
  std::uint64_t* round_ns_ = nullptr;
  std::uint64_t* parallel_ns_ = nullptr;
  Registry::Histogram* round_us_ = nullptr;

  std::int64_t round_ = 0;
  Clock::time_point round_start_{};
  Clock::time_point phase_start_{};
  std::array<std::uint64_t, kPhaseCount> current_{};
  std::array<std::uint64_t, kPhaseCount> last_{};
  std::uint64_t current_parallel_ns_ = 0;
};

/// RAII phase bracket that is a no-op on a null profiler, so the engine's
/// round loops stay branch-light when telemetry is off.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, Phase phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) profiler_->phase_begin(phase_);
  }
  ~ScopedPhase() {
    if (profiler_ != nullptr) profiler_->phase_end(phase_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  Phase phase_;
};

}  // namespace dg::obs
