// obs::PhaseProfiler -- per-round wall-clock stage timing for the engine.
//
// The engine owns one profiler per installed telemetry registry and
// registers one timing slot per pipeline stage (register_stage), in
// pipeline order, so spliced stages get per-stage timers automatically;
// run_pipeline brackets each stage with ScopedPhase guards on its slot.
// end_round() folds the measured nanoseconds into TIMING-domain registry
// counters/histograms and emits one round slice (with nested stage
// slices) into the trace sink.  Everything here is wall clock, so nothing
// it writes lands in the logical (CI-gated) domain.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/trace_sink.h"

namespace dg::obs {

class PhaseProfiler {
 public:
  /// Registers the stage-independent timing metrics in `registry` (which
  /// must outlive the profiler): the engine.round.us histogram and the
  /// engine.round.ns / engine.pool.parallel.ns counters.
  explicit PhaseProfiler(Registry& registry);

  /// Registers "engine.phase.<name>.ns" and returns the slot index to
  /// bracket with.  Counter slots in the registry are keyed by name, so
  /// re-registering after a profiler rebuild keeps accumulating into the
  /// same counters.
  std::size_t register_stage(const std::string& name);

  std::size_t stage_count() const noexcept { return names_.size(); }
  const std::vector<std::string>& stage_names() const noexcept {
    return names_;
  }

  void begin_round(std::int64_t round);
  void phase_begin(std::size_t slot);
  void phase_end(std::size_t slot);
  /// Nanoseconds spent inside thread-pool dispatches this round (the
  /// utilization numerator; the round total is the denominator).
  void add_parallel_ns(std::uint64_t ns);
  /// Accumulates the round into the registry and, when `sink` is non-null,
  /// emits the round's stage slices.
  void end_round(TraceSink* sink);

  /// Last finished round's per-slot nanoseconds (tests).
  const std::vector<std::uint64_t>& last_round_ns() const noexcept {
    return last_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  Registry* registry_;
  std::vector<std::string> names_;
  std::vector<std::uint64_t*> phase_ns_;
  std::uint64_t* round_ns_ = nullptr;
  std::uint64_t* parallel_ns_ = nullptr;
  Registry::Histogram* round_us_ = nullptr;

  std::int64_t round_ = 0;
  Clock::time_point round_start_{};
  Clock::time_point phase_start_{};
  std::vector<std::uint64_t> current_;
  std::vector<std::uint64_t> last_;
  std::uint64_t current_parallel_ns_ = 0;
};

/// RAII stage bracket that is a no-op on a null profiler, so the engine's
/// round loop stays branch-light when telemetry is off.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, std::size_t slot)
      : profiler_(profiler), slot_(slot) {
    if (profiler_ != nullptr) profiler_->phase_begin(slot_);
  }
  ~ScopedPhase() {
    if (profiler_ != nullptr) profiler_->phase_end(slot_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  std::size_t slot_;
};

}  // namespace dg::obs
