#include "obs/registry.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "scn/json.h"
#include "util/assert.h"

namespace dg::obs {

void Registry::Histogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  count_ += 1;
  sum_ += value;
}

Registry::Metric& Registry::slot(const std::string& name, Domain domain,
                                 Kind kind) {
  auto [it, inserted] = metrics_.try_emplace(name);
  Metric& m = it->second;
  if (inserted) {
    m.domain = domain;
    m.kind = kind;
  } else {
    // A name means one thing: re-registration must agree on kind and
    // domain, or two call sites would silently share unrelated state.
    DG_EXPECTS(m.domain == domain);
    DG_EXPECTS(m.kind == kind);
  }
  return m;
}

std::uint64_t& Registry::counter(const std::string& name, Domain domain) {
  return slot(name, domain, Kind::kCounter).counter;
}

double& Registry::gauge(const std::string& name, Domain domain) {
  return slot(name, domain, Kind::kGauge).gauge;
}

Registry::Histogram& Registry::histogram(const std::string& name,
                                         Domain domain,
                                         std::vector<double> bounds) {
  DG_EXPECTS(!bounds.empty());
  DG_EXPECTS(std::is_sorted(bounds.begin(), bounds.end()));
  DG_EXPECTS(std::adjacent_find(bounds.begin(), bounds.end()) ==
             bounds.end());
  Metric& m = slot(name, domain, Kind::kHistogram);
  if (m.hist.bounds_.empty()) {
    m.hist.bounds_ = std::move(bounds);
    m.hist.buckets_.assign(m.hist.bounds_.size() + 1, 0);
  } else {
    DG_EXPECTS(m.hist.bounds_ == bounds);
  }
  return m.hist;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, theirs] : other.metrics_) {
    switch (theirs.kind) {
      case Kind::kCounter:
        counter(name, theirs.domain) += theirs.counter;
        break;
      case Kind::kGauge:
        gauge(name, theirs.domain) = theirs.gauge;
        break;
      case Kind::kHistogram: {
        Histogram& h =
            histogram(name, theirs.domain, theirs.hist.bounds_);
        for (std::size_t i = 0; i < h.buckets_.size(); ++i) {
          h.buckets_[i] += theirs.hist.buckets_[i];
        }
        h.count_ += theirs.hist.count_;
        h.sum_ += theirs.hist.sum_;
        break;
      }
    }
  }
}

namespace {

void write_domain(std::ostream& os, const std::string& indent,
                  const std::map<std::string, Registry::Histogram>& hists,
                  const std::vector<std::pair<std::string, std::uint64_t>>&
                      counters,
                  const std::vector<std::pair<std::string, double>>& gauges) {
  os << "{\n" << indent << "  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ",\n" : "\n") << indent << "    \""
       << scn::json::escape(counters[i].first)
       << "\": " << counters[i].second;
  }
  os << (counters.empty() ? "},\n" : "\n" + indent + "  },\n");
  os << indent << "  \"gauges\": {";
  std::size_t i = 0;
  for (const auto& [name, value] : gauges) {
    os << (i++ ? ",\n" : "\n") << indent << "    \""
       << scn::json::escape(name)
       << "\": " << scn::json::format_number(value);
  }
  os << (gauges.empty() ? "},\n" : "\n" + indent + "  },\n");
  os << indent << "  \"histograms\": {";
  i = 0;
  for (const auto& [name, h] : hists) {
    os << (i++ ? ",\n" : "\n") << indent << "    \""
       << scn::json::escape(name) << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds().size(); ++b) {
      os << (b ? ", " : "") << scn::json::format_number(h.bounds()[b]);
    }
    os << "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets().size(); ++b) {
      os << (b ? ", " : "") << h.buckets()[b];
    }
    os << "], \"count\": " << h.count()
       << ", \"sum\": " << scn::json::format_number(h.sum()) << "}";
  }
  os << (hists.empty() ? "}\n" : "\n" + indent + "  }\n");
  os << indent << "}";
}

}  // namespace

void Registry::write_json(std::ostream& os, bool include_timing,
                          const std::string& indent) const {
  const auto emit = [&](Domain domain) {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::map<std::string, Histogram> hists;
    for (const auto& [name, m] : metrics_) {
      if (m.domain != domain) continue;
      switch (m.kind) {
        case Kind::kCounter: counters.emplace_back(name, m.counter); break;
        case Kind::kGauge: gauges.emplace_back(name, m.gauge); break;
        case Kind::kHistogram: hists.emplace(name, m.hist); break;
      }
    }
    write_domain(os, indent + "  ", hists, counters, gauges);
  };
  os << "{\n" << indent << "  \"format\": \"dg-metrics-v1\",\n"
     << indent << "  \"logical\": ";
  emit(Domain::kLogical);
  if (include_timing) {
    os << ",\n" << indent << "  \"timing\": ";
    emit(Domain::kTiming);
  }
  os << "\n" << indent << "}";
}

std::string Registry::json(bool include_timing) const {
  std::ostringstream os;
  write_json(os, include_timing);
  os << "\n";
  return os.str();
}

}  // namespace dg::obs
