// Minimal JSON document model + strict parser for the scenario subsystem.
//
// The repo already *writes* JSON (bench_support.h's JsonReport); campaign
// files are the first thing it has to *read*.  The parser is strict RFC
// 8259 JSON (no comments, no trailing commas) and every parsed Value
// remembers its source line/column, so schema errors can point at the
// offending token ("campaigns/smoke.json:12:7: scenarios[0].topology:
// unknown key 'sides'").  Objects preserve member order and keep duplicate
// keys illegal -- both matter for schema validation and for deterministic
// re-serialization.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dg::scn::json {

class Value {
 public:
  enum class Kind { null, boolean, number, string, array, object };
  using Member = std::pair<std::string, Value>;

  Value() = default;

  static Value make_bool(bool b);
  static Value make_number(double v);
  static Value make_string(std::string s);
  static Value make_array();
  static Value make_object();

  Kind kind() const noexcept { return kind_; }
  bool is_object() const noexcept { return kind_ == Kind::object; }
  bool is_array() const noexcept { return kind_ == Kind::array; }
  bool is_string() const noexcept { return kind_ == Kind::string; }
  bool is_number() const noexcept { return kind_ == Kind::number; }
  bool is_bool() const noexcept { return kind_ == Kind::boolean; }

  /// Human-readable kind name ("object", "number", ...) for error messages.
  const char* kind_name() const noexcept;

  // Accessors contract-check the kind (schema validation always checks
  // kind first and reports its own error).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;
  std::vector<Value>& items();
  const std::vector<Member>& members() const;
  std::vector<Member>& members();

  /// Member lookup (objects only); nullptr when absent.
  const Value* find(const std::string& key) const;
  Value* find(const std::string& key);

  /// Sets (replacing) the member at a dotted path like "topology.k",
  /// creating intermediate objects as needed.  Used by the campaign
  /// matrix expansion to apply axis patches.  Fails (returns false) when
  /// a path step exists but is not an object.
  bool set_path(const std::string& dotted_path, Value v);

  /// Removes a direct member; no-op when absent.
  void remove(const std::string& key);

  /// 1-based source position of the value's first token (0 when the value
  /// was built programmatically).
  std::size_t line() const noexcept { return line_; }
  std::size_t col() const noexcept { return col_; }
  void set_pos(std::size_t line, std::size_t col) {
    line_ = line;
    col_ = col;
  }

 private:
  Kind kind_ = Kind::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<Member> obj_;
  std::size_t line_ = 0;
  std::size_t col_ = 0;
};

/// Parse failure: 1-based position plus a message.  ok() when message is
/// empty (the convention every scn error type follows).
struct ParseError {
  std::size_t line = 0;
  std::size_t col = 0;
  std::string message;
  bool ok() const noexcept { return message.empty(); }
};

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// anything else after the document is an error).
ParseError parse(const std::string& text, Value& out);

/// Canonical number formatting shared by every scn JSON emitter: integers
/// (within int64 range) print bare, other finite doubles print with the
/// shortest round-trip precision.  Deterministic for a given double, which
/// is what makes counter files byte-comparable.
std::string format_number(double v);

/// JSON string escaping (mirrors bench_support.h's rules).
std::string escape(const std::string& s);

}  // namespace dg::scn::json
