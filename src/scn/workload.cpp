#include "scn/workload.h"

#include <algorithm>
#include <memory>

#include "baseline/decay.h"
#include "fault/spec.h"
#include "lb/measure.h"
#include "lb/simulation.h"
#include "phys/extract.h"
#include "phys/sinr.h"
#include "seed/seed_alg.h"
#include "seed/spec.h"
#include "sim/engine.h"
#include "sim/engine_config.h"
#include "sim/splice.h"
#include "stats/probes.h"
#include "traffic/spec.h"
#include "util/assert.h"

namespace dg::scn {

namespace {

std::vector<graph::Vertex> resolve_senders(const AlgorithmSpec& a,
                                           std::size_t n) {
  if (!a.senders_all_but_receiver) return a.senders;
  std::vector<graph::Vertex> out;
  out.reserve(n - 1);
  for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(n); ++v) {
    if (static_cast<std::int64_t>(v) != a.receiver) out.push_back(v);
  }
  return out;
}

graph::Vertex resolve_receiver(const AlgorithmSpec& a,
                               const graph::DualGraph& g,
                               const std::vector<graph::Vertex>& senders) {
  if (a.receiver >= 0) return static_cast<graph::Vertex>(a.receiver);
  // -1: the first G-neighbor of the first sender (fallback: vertex 1) --
  // the E13 convention for measuring progress one reliable hop out.
  const graph::Vertex sender = senders.empty() ? 0 : senders.front();
  const auto neighbors = g.g_neighbors(sender);
  return neighbors.empty() ? 1 : neighbors.front();
}

lb::LbParams lb_params_for(const AlgorithmSpec& a,
                           const graph::DualGraph& g) {
  lb::LbScales scales;
  scales.ack_scale = a.ack_scale;
  const double r = a.r > 0 ? a.r : std::max(1.0, g.r());
  return lb::LbParams::calibrated(a.eps1, r, g.delta(), g.delta_prime(),
                                  scales);
}

/// The variant's EngineConfig: thread cap, per-trial telemetry, and its
/// spliced stages.  Stage specs were parsed and conflict-validated at
/// campaign load time, so a parse failure here is a programming error.
sim::EngineConfig engine_config_for(const ScenarioSpec& spec,
                                    obs::Registry* registry) {
  sim::EngineConfig config;
  if (spec.round_threads != 0) config.with_round_threads(spec.round_threads);
  if (registry != nullptr) config.with_telemetry(registry);
  for (const std::string& text : spec.stages) {
    sim::SpliceSpec splice;
    std::string err;
    const bool ok = sim::parse_splice_spec(text, splice, err);
    DG_EXPECTS(ok);
    config.with_splice(std::move(splice));
  }
  return config;
}

// ---- lb_progress (the E3/E6 trial body) ----

std::vector<double> run_lb_progress(const ScenarioSpec& spec,
                                    std::uint64_t seed,
                                    obs::Registry* registry) {
  Rng rng(seed);
  const auto g = build_topology(spec.topology, rng);
  const auto params = lb_params_for(spec.algorithm, g);
  const auto senders = resolve_senders(spec.algorithm, g.size());
  const auto receiver = resolve_receiver(spec.algorithm, g, senders);
  sim::Round latency = 0;
  const sim::EngineConfig config = engine_config_for(spec, registry);
  if (spec.channel_spec.is_sinr) {
    latency = lb::progress_latency(
        g, std::make_unique<phys::SinrChannel>(spec.channel_spec.sinr),
        params, senders, receiver, spec.algorithm.horizon_phases, seed,
        config);
  } else {
    latency = lb::progress_latency(g, build_scheduler(spec.scheduler),
                                   params, senders, receiver,
                                   spec.algorithm.horizon_phases, seed,
                                   config);
  }
  return {static_cast<double>(latency),
          static_cast<double>(params.phase_length())};
}

// ---- decay_progress (the E6 Decay trial body) ----

std::vector<double> run_decay_progress(const ScenarioSpec& spec,
                                       std::uint64_t seed,
                                       obs::Registry* registry) {
  Rng rng(seed);
  const auto g = build_topology(spec.topology, rng);
  const auto ids = sim::assign_ids(g.size(), seed);
  baseline::DecayParams params;
  params.log_delta = spec.algorithm.log_delta;
  params.ack_rounds = spec.algorithm.ack_rounds;
  auto sched = build_scheduler(spec.scheduler);
  std::vector<std::unique_ptr<sim::Process>> procs;
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(
        std::make_unique<baseline::DecayProcess>(params, ids[v], v, nullptr));
  }
  sim::Engine engine(g, *sched, std::move(procs), seed);
  engine.configure(engine_config_for(spec, registry));
  stats::FirstReceptionProbe probe(g.size());
  engine.add_observer(&probe);
  const auto receiver =
      static_cast<graph::Vertex>(std::max<std::int64_t>(
          0, spec.algorithm.receiver));
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    if (v == receiver) continue;
    dynamic_cast<baseline::DecayProcess&>(engine.process(v)).post_bcast(v);
  }
  engine.run_rounds(spec.algorithm.horizon_rounds);
  return {static_cast<double>(probe.first_reception(receiver)),
          static_cast<double>(spec.algorithm.horizon_rounds)};
}

// ---- seed_agreement (one SeedAlg execution + spec check) ----

seed::SeedSpecResult run_seed_check(const ScenarioSpec& spec,
                                    const graph::DualGraph& g,
                                    std::uint64_t seed,
                                    obs::Registry* registry) {
  const auto sparams =
      seed::SeedAlgParams::make(spec.algorithm.seed_eps, g.delta());
  const auto ids = sim::assign_ids(g.size(), derive_seed(seed, 1));
  std::vector<std::unique_ptr<sim::Process>> procs;
  Rng init(derive_seed(seed, 2));
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    procs.push_back(
        std::make_unique<seed::SeedProcess>(sparams, ids[v], init));
  }
  std::unique_ptr<sim::Engine> engine;
  std::unique_ptr<sim::LinkScheduler> sched;
  std::unique_ptr<phys::ChannelModel> channel;
  if (spec.channel_spec.is_sinr) {
    channel = std::make_unique<phys::SinrChannel>(spec.channel_spec.sinr);
    engine = std::make_unique<sim::Engine>(g, *channel, std::move(procs),
                                           derive_seed(seed, 3));
  } else {
    sched = build_scheduler(spec.scheduler);
    engine = std::make_unique<sim::Engine>(g, *sched, std::move(procs),
                                           derive_seed(seed, 3));
  }
  engine->configure(engine_config_for(spec, registry));
  engine->run_rounds(sparams.total_rounds());
  seed::DecisionVector decisions(g.size());
  for (graph::Vertex v = 0; v < g.size(); ++v) {
    decisions[v] =
        dynamic_cast<const seed::SeedProcess&>(engine->process(v)).decision();
  }
  return seed::check_seed_spec(g, ids, decisions);
}

std::vector<double> run_seed_agreement(const ScenarioSpec& spec,
                                       std::uint64_t seed,
                                       obs::Registry* registry) {
  Rng rng(seed);
  const auto g = build_topology(spec.topology, rng);
  const auto res = run_seed_check(spec, g, seed, registry);
  return {res.well_formed ? 1.0 : 0.0,
          res.consistent ? 1.0 : 0.0,
          res.owners_local ? 1.0 : 0.0,
          static_cast<double>(res.distinct_owners),
          static_cast<double>(res.max_neighborhood_owners)};
}

// ---- seed_then_progress (the E13 trial body: SeedAlg safety + LBAlg
// progress on one geometric deployment, shared trial seed) ----

std::vector<double> run_seed_then_progress(const ScenarioSpec& spec,
                                           std::uint64_t seed,
                                           obs::Registry* registry) {
  Rng rng(seed);
  const auto g = build_topology(spec.topology, rng);
  const auto res = run_seed_check(spec, g, seed, registry);
  const auto params = lb_params_for(spec.algorithm, g);
  const auto senders = resolve_senders(spec.algorithm, g.size());
  const auto receiver = resolve_receiver(spec.algorithm, g, senders);
  const auto latency = lb::progress_latency(
      g, build_scheduler(spec.scheduler), params, senders, receiver,
      spec.algorithm.horizon_phases, derive_seed(seed, 4),
      engine_config_for(spec, registry));
  return {static_cast<double>(latency),
          static_cast<double>(res.max_neighborhood_owners),
          res.consistent ? 1.0 : 0.0};
}

// ---- abstraction_fidelity (the E14 trial body: dual-graph abstraction
// vs SINR ground truth over one sampled deployment) ----

std::vector<double> run_abstraction_fidelity(const ScenarioSpec& spec,
                                             std::uint64_t seed,
                                             obs::Registry* registry) {
  Rng rng(seed);
  geo::Embedding emb;
  emb.reserve(spec.topology.n);
  for (std::size_t i = 0; i < spec.topology.n; ++i) {
    emb.push_back(geo::Point{rng.uniform(0.0, spec.topology.side),
                             rng.uniform(0.0, spec.topology.side)});
  }
  phys::SinrExtractParams xp;
  xp.sinr = spec.channel_spec.sinr;
  const auto ext = phys::extract_dual_graph(emb, xp, derive_seed(seed, 1));

  const auto senders = resolve_senders(spec.algorithm, ext.graph.size());
  const graph::Vertex sender = senders.empty() ? 0 : senders.front();
  const auto params = lb_params_for(spec.algorithm, ext.graph);
  const std::uint64_t master = derive_seed(seed, 2);

  lb::FloodStats dual;
  {
    lb::LbSimulation sim(ext.graph, build_scheduler(spec.scheduler), params,
                         master);
    sim.configure(engine_config_for(spec, registry));
    dual = lb::run_flood(sim, sender, spec.algorithm.horizon_phases);
    sim.export_telemetry();
  }
  lb::FloodStats sinr;
  {
    // Same processes and parameters, but reception is SINR physics over
    // the RAW deployment coordinates (the extracted graph's embedding is
    // rescaled; the physics must see the real geometry).
    lb::LbSimulation sim(
        ext.graph, std::make_unique<phys::SinrChannel>(xp.sinr, emb), params,
        master);
    sim.configure(engine_config_for(spec, registry));
    sinr = lb::run_flood(sim, sender, spec.algorithm.horizon_phases);
    sim.export_telemetry();
  }
  return {dual.progress_rounds,
          dual.reached_frac,
          dual.receptions,
          dual.ack_latency,
          dual.acked,
          sinr.progress_rounds,
          sinr.reached_frac,
          sinr.receptions,
          sinr.ack_latency,
          sinr.acked,
          static_cast<double>(ext.stats.reliable_edges),
          static_cast<double>(ext.stats.unreliable_edges)};
}

// ---- traffic_latency (the E15 trial body: an open-loop TrafficSource
// over the admission queues, measuring offered vs delivered throughput
// and enqueue->ack / enqueue->first-recv latency) ----

std::vector<double> run_traffic_latency(const ScenarioSpec& spec,
                                        std::uint64_t seed,
                                        obs::Registry* registry) {
  Rng rng(seed);
  const auto g = build_topology(spec.topology, rng);
  const auto params = lb_params_for(spec.algorithm, g);
  std::unique_ptr<lb::LbSimulation> sim;
  if (spec.channel_spec.is_sinr) {
    sim = std::make_unique<lb::LbSimulation>(
        g, std::make_unique<phys::SinrChannel>(spec.channel_spec.sinr),
        params, seed);
  } else {
    sim = std::make_unique<lb::LbSimulation>(
        g, build_scheduler(spec.scheduler), params, seed);
  }
  sim->configure(engine_config_for(spec, registry));
  sim->traffic().set_queue_capacity(
      static_cast<std::size_t>(spec.algorithm.queue_cap));
  // Stream 5: the source's private coins (0x1d5/ids and the engine streams
  // hang off the master seed; 1..4 are taken by the other workloads).
  sim->add_traffic(
      traffic::build_source(spec.traffic_spec, g.size(), derive_seed(seed, 5)));
  sim->run_phases(spec.algorithm.horizon_phases);
  sim->export_telemetry();

  const traffic::TrafficStats& ts = sim->traffic().stats();
  const double rounds = static_cast<double>(sim->round());
  return {static_cast<double>(ts.offered),
          static_cast<double>(ts.admitted),
          static_cast<double>(ts.dropped),
          static_cast<double>(ts.acked),
          static_cast<double>(ts.aborted),
          ts.mean_wait(),
          ts.mean_ack_latency(),
          ts.mean_recv_latency(),
          ts.mean_backlog(),
          static_cast<double>(ts.depth_max),
          rounds != 0 ? static_cast<double>(ts.offered) / rounds : 0.0,
          rounds != 0 ? static_cast<double>(ts.acked) / rounds : 0.0,
          static_cast<double>(ts.first_recvs)};
}

// ---- lb_churn (the E16 trial body: open-loop traffic under a
// crash/recover schedule, measuring graceful degradation -- fault-window
// progress violations, re-stabilization time, throughput dip -- next to
// the clean-window spec tallies) ----

std::vector<double> run_lb_churn(const ScenarioSpec& spec,
                                 std::uint64_t seed,
                                 obs::Registry* registry) {
  Rng rng(seed);
  const auto g = build_topology(spec.topology, rng);
  const auto params = lb_params_for(spec.algorithm, g);
  std::unique_ptr<lb::LbSimulation> sim;
  if (spec.channel_spec.is_sinr) {
    sim = std::make_unique<lb::LbSimulation>(
        g, std::make_unique<phys::SinrChannel>(spec.channel_spec.sinr),
        params, seed);
  } else {
    sim = std::make_unique<lb::LbSimulation>(
        g, build_scheduler(spec.scheduler), params, seed);
  }
  const auto plan = fault::build_fault_plan(spec.fault_spec);
  sim->configure(engine_config_for(spec, registry).with_fault_plan(plan.get()));
  sim->traffic().set_queue_capacity(
      static_cast<std::size_t>(spec.algorithm.queue_cap));
  // Same stream layout as traffic_latency (stream 5 = source coins); the
  // fault plan draws from the engine master seed under fault::kFaultStream,
  // so the churn axis perturbs no traffic or protocol randomness.
  sim->add_traffic(
      traffic::build_source(spec.traffic_spec, g.size(), derive_seed(seed, 5)));
  sim->run_phases(spec.algorithm.horizon_phases);
  sim->export_telemetry();

  const traffic::TrafficStats& ts = sim->traffic().stats();
  const lb::LbSpecReport& rep = sim->report();
  const lb::DegradationLedger& led = sim->ledger();
  const double rounds = static_cast<double>(sim->round());
  const double fault_round_frac =
      led.rounds_observed != 0
          ? static_cast<double>(led.fault_rounds) /
                static_cast<double>(led.rounds_observed)
          : 0.0;
  return {static_cast<double>(ts.offered),
          static_cast<double>(ts.admitted),
          static_cast<double>(ts.acked),
          static_cast<double>(ts.aborted),
          static_cast<double>(ts.dropped),
          static_cast<double>(ts.crash_requeues),
          static_cast<double>(ts.readmitted),
          static_cast<double>(led.crashes),
          static_cast<double>(led.recoveries),
          rep.progress.frequency(),
          static_cast<double>(rep.progress.trials()),
          led.progress_violation_rate(),
          static_cast<double>(led.faulty_progress.trials()),
          led.mean_restabilization_rounds(),
          fault_round_frac,
          led.fault_window_ack_rate(),
          rounds != 0 ? static_cast<double>(ts.acked) / rounds : 0.0};
}

}  // namespace

std::vector<std::string> metric_names(const ScenarioSpec& spec) {
  const std::string& t = spec.algorithm.type;
  if (t == "lb_progress") return {"latency", "phase_len"};
  if (t == "decay_progress") return {"latency", "horizon"};
  if (t == "seed_agreement") {
    return {"well_formed", "consistent", "owners_local", "distinct_owners",
            "max_owners"};
  }
  if (t == "seed_then_progress") {
    return {"latency", "max_owners", "consistent"};
  }
  if (t == "traffic_latency") {
    // first_recvs is the event count behind recv_latency's mean, so
    // consumers can re-pool latencies across trials without skew.
    // backlog_mean is the NETWORK-WIDE queued total per round;
    // qdepth_max is the worst single-node queue.
    return {"offered", "admitted", "dropped", "acked", "aborted",
            "wait_mean", "ack_latency", "recv_latency", "backlog_mean",
            "qdepth_max", "offered_rate", "delivered_rate", "first_recvs"};
  }
  if (t == "lb_churn") {
    // Clean-window spec tallies (clean_*) sit next to the degradation
    // ledger (faulty_*, restab, fault_*): the paper's bounds are asserted
    // only over fault-free windows, the rest is measured degradation.
    // *_trials are the event counts behind the neighboring rates, so
    // consumers can re-pool across trials without skew.
    return {"offered", "admitted", "acked", "aborted", "dropped",
            "crash_requeues", "readmitted", "crashes", "recoveries",
            "clean_progress_rate", "clean_progress_trials",
            "faulty_violation_rate", "faulty_progress_trials",
            "restab_mean", "fault_round_frac", "fault_ack_rate",
            "ack_rate"};
  }
  DG_EXPECTS(t == "abstraction_fidelity");
  return {"dual_progress", "dual_reached", "dual_receptions",
          "dual_ack_latency", "dual_acked", "sinr_progress", "sinr_reached",
          "sinr_receptions", "sinr_ack_latency", "sinr_acked",
          "reliable_edges", "unreliable_edges"};
}

std::vector<double> run_trial(const ScenarioSpec& spec,
                              std::uint64_t trial_seed,
                              obs::Registry* registry) {
  const std::string& t = spec.algorithm.type;
  if (t == "lb_progress") return run_lb_progress(spec, trial_seed, registry);
  if (t == "decay_progress") {
    return run_decay_progress(spec, trial_seed, registry);
  }
  if (t == "seed_agreement") {
    return run_seed_agreement(spec, trial_seed, registry);
  }
  if (t == "seed_then_progress") {
    return run_seed_then_progress(spec, trial_seed, registry);
  }
  if (t == "traffic_latency") {
    return run_traffic_latency(spec, trial_seed, registry);
  }
  if (t == "lb_churn") return run_lb_churn(spec, trial_seed, registry);
  DG_EXPECTS(t == "abstraction_fidelity");
  return run_abstraction_fidelity(spec, trial_seed, registry);
}

}  // namespace dg::scn
