#include "scn/campaign.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#include "scn/json.h"
#include "scn/workload.h"
#include "stats/montecarlo.h"

namespace dg::scn {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

double VariantResult::metric_sum(std::size_t metric) const {
  double sum = 0;
  for (const auto& row : trials) sum += row[metric];
  return sum;
}

CampaignResult run_campaign(const Campaign& campaign,
                            const RunOptions& options) {
  CampaignResult result;
  result.name = campaign.name;
  const auto campaign_start = Clock::now();
  for (const ScenarioSpec& spec : campaign.variants) {
    if (!options.filter.empty() &&
        spec.name.find(options.filter) == std::string::npos) {
      continue;
    }
    VariantResult vr;
    vr.spec = spec;
    if (options.max_trials != 0 && vr.spec.trials > options.max_trials) {
      vr.spec.trials = options.max_trials;
    }
    if (options.round_threads != 0) {
      vr.spec.round_threads = options.round_threads;
    }
    if (!options.splice.empty()) {
      vr.spec.stages.push_back(options.splice);
    }
    vr.metrics = metric_names(vr.spec);
    if (options.progress != nullptr) {
      *options.progress << "  " << vr.spec.name << ": " << vr.spec.trials
                        << " trials (seed " << vr.spec.seed << ") ..."
                        << std::flush;
    }
    const auto start = Clock::now();
    // The sharding seam: work-stealing trial scheduler, trial-ordered
    // results, per-trial seeds independent of the claiming worker.  With
    // obs enabled each trial fills its own pre-allocated registry slot
    // (no sharing across workers); the fold below runs in TRIAL order, so
    // the merged registry is independent of which worker ran what.
    std::vector<obs::Registry> trial_registries(
        vr.spec.obs ? vr.spec.trials : 0);
    vr.trials = stats::run_trials(
        vr.spec.trials, vr.spec.seed,
        [&vr, &trial_registries](std::size_t trial,
                                 std::uint64_t trial_seed) {
          obs::Registry* reg =
              vr.spec.obs ? &trial_registries[trial] : nullptr;
          return run_trial(vr.spec, trial_seed, reg);
        },
        options.threads);
    for (const obs::Registry& reg : trial_registries) {
      vr.registry.merge(reg);
    }
    vr.elapsed_ms = ms_since(start);
    if (options.progress != nullptr) {
      *options.progress << " done (" << static_cast<long>(vr.elapsed_ms)
                        << " ms)\n";
    }
    result.variants.push_back(std::move(vr));
  }
  result.elapsed_ms = ms_since(campaign_start);
  return result;
}

std::string counters_json(const CampaignResult& result) {
  std::ostringstream os;
  os << "{\n  \"format\": \"dg-campaign-counters-v1\",\n  \"campaign\": \""
     << json::escape(result.name) << "\",\n  \"variants\": [";
  for (std::size_t i = 0; i < result.variants.size(); ++i) {
    const VariantResult& v = result.variants[i];
    os << (i ? ",\n" : "\n") << "    {\n      \"name\": \""
       << json::escape(v.spec.name) << "\",\n      \"seed\": " << v.spec.seed
       << ",\n      \"trials\": " << v.trials.size()
       << ",\n      \"metrics\": [";
    for (std::size_t m = 0; m < v.metrics.size(); ++m) {
      os << (m ? ", " : "") << '"' << json::escape(v.metrics[m]) << '"';
    }
    os << "],\n      \"per_trial\": [";
    for (std::size_t t = 0; t < v.trials.size(); ++t) {
      os << (t ? ",\n                    " : "") << '[';
      for (std::size_t m = 0; m < v.trials[t].size(); ++m) {
        os << (m ? ", " : "") << json::format_number(v.trials[t][m]);
      }
      os << ']';
    }
    os << "],\n      \"sums\": [";
    for (std::size_t m = 0; m < v.metrics.size(); ++m) {
      os << (m ? ", " : "") << json::format_number(v.metric_sum(m));
    }
    os << "]\n    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string metrics_json(const CampaignResult& result) {
  std::ostringstream os;
  os << "{\n  \"format\": \"dg-campaign-metrics-v1\",\n  \"campaign\": \""
     << json::escape(result.name) << "\",\n  \"variants\": [";
  obs::Registry merged;
  bool first = true;
  for (const VariantResult& v : result.variants) {
    if (!v.spec.obs) continue;
    os << (first ? "\n" : ",\n") << "    {\n      \"name\": \""
       << json::escape(v.spec.name) << "\",\n      \"metrics\": ";
    v.registry.write_json(os, /*include_timing=*/false, "      ");
    os << "\n    }";
    merged.merge(v.registry);  // variant order, matching the file order
    first = false;
  }
  os << "\n  ],\n  \"campaign_metrics\": ";
  merged.write_json(os, /*include_timing=*/false, "  ");
  os << "\n}\n";
  return os.str();
}

namespace {

/// Shared provenance preamble of the timing-carrying reports (matches the
/// bench_support.h stamps bench_diff.py keys on).
void stamp(std::ostream& os, double elapsed_ms, const std::string& git_sha) {
  os << "{\n  \"elapsed_ms\": " << elapsed_ms
     << ",\n  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n  \"git_sha\": \""
     << json::escape(git_sha) << "\",\n";
}

std::string describe(const ScenarioSpec& s) {
  std::ostringstream os;
  os << "topology " << s.topology.type << ", scheduler " << s.scheduler
     << ", channel " << s.channel << ", algorithm " << s.algorithm.type
     << ", seed " << s.seed;
  return os.str();
}

}  // namespace

std::string variant_report_json(const VariantResult& v,
                                const std::string& git_sha) {
  std::ostringstream os;
  stamp(os, v.elapsed_ms, git_sha);
  os << "  \"sections\": [\n    {\n      \"experiment\": \"scenario "
     << json::escape(v.spec.name) << "\",\n      \"claim\": \""
     << json::escape(describe(v.spec)) << "\",\n      \"tables\": [";
  // Table 1: per-trial metric rows.
  os << "\n        {\n          \"columns\": [\"trial\"";
  for (const auto& m : v.metrics) os << ", \"" << json::escape(m) << '"';
  os << "],\n          \"rows\": [";
  for (std::size_t t = 0; t < v.trials.size(); ++t) {
    os << (t ? ",\n" : "\n") << "            {\"trial\": " << t;
    for (std::size_t m = 0; m < v.trials[t].size(); ++m) {
      os << ", \"" << json::escape(v.metrics[m])
         << "\": " << json::format_number(v.trials[t][m]);
    }
    os << '}';
  }
  os << "\n          ]\n        },";
  // Table 2: per-metric aggregates.
  os << "\n        {\n          \"columns\": [\"metric\", \"sum\", "
        "\"mean\", \"min\", \"max\"],\n          \"rows\": [";
  for (std::size_t m = 0; m < v.metrics.size(); ++m) {
    double lo = 0, hi = 0;
    if (!v.trials.empty()) {
      lo = hi = v.trials[0][m];
      for (const auto& row : v.trials) {
        lo = std::min(lo, row[m]);
        hi = std::max(hi, row[m]);
      }
    }
    const double sum = v.metric_sum(m);
    const double mean =
        v.trials.empty() ? 0 : sum / static_cast<double>(v.trials.size());
    os << (m ? ",\n" : "\n") << "            {\"metric\": \""
       << json::escape(v.metrics[m])
       << "\", \"sum\": " << json::format_number(sum)
       << ", \"mean\": " << json::format_number(mean)
       << ", \"min\": " << json::format_number(lo)
       << ", \"max\": " << json::format_number(hi) << '}';
  }
  os << "\n          ]\n        }\n      ]\n    }\n  ]\n}\n";
  return os.str();
}

std::string rollup_json(const CampaignResult& result,
                        const std::string& git_sha) {
  std::size_t total_trials = 0;
  for (const auto& v : result.variants) total_trials += v.trials.size();
  std::ostringstream os;
  stamp(os, result.elapsed_ms, git_sha);
  os << "  \"campaign\": \"" << json::escape(result.name)
     << "\",\n  \"variant_count\": " << result.variants.size()
     << ",\n  \"total_trials\": " << total_trials << ",\n  \"variants\": [";
  for (std::size_t i = 0; i < result.variants.size(); ++i) {
    const VariantResult& v = result.variants[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": \""
       << json::escape(v.spec.name) << "\", \"trials\": " << v.trials.size()
       << ", \"seed\": " << v.spec.seed
       << ", \"elapsed_ms\": " << v.elapsed_ms << ", \"sums\": {";
    for (std::size_t m = 0; m < v.metrics.size(); ++m) {
      os << (m ? ", " : "") << '"' << json::escape(v.metrics[m])
         << "\": " << json::format_number(v.metric_sum(m));
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string sanitize_filename(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    out += ok ? c : '_';
  }
  return out;
}

std::string write_reports(const CampaignResult& result,
                          const std::string& out_dir,
                          const std::string& git_sha) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) return out_dir + ": cannot create directory: " + ec.message();
  const auto write = [&](const std::string& file,
                         const std::string& content) -> bool {
    std::ofstream os(out_dir + "/" + file);
    if (!os) return false;
    os << content;
    return static_cast<bool>(os);
  };
  bool any_obs = false;
  for (const VariantResult& v : result.variants) {
    const std::string file =
        "SCN_" + sanitize_filename(v.spec.name) + ".json";
    if (!write(file, variant_report_json(v, git_sha))) {
      return out_dir + "/" + file + ": write failed";
    }
    if (v.spec.obs) {
      any_obs = true;
      const std::string mfile =
          "METRICS_" + sanitize_filename(v.spec.name) + ".json";
      // Logical domain only: the byte-comparable artifact.
      if (!write(mfile, v.registry.json(/*include_timing=*/false))) {
        return out_dir + "/" + mfile + ": write failed";
      }
    }
  }
  const std::string stem = sanitize_filename(result.name);
  if (!write("COUNTERS_" + stem + ".json", counters_json(result))) {
    return out_dir + "/COUNTERS_" + stem + ".json: write failed";
  }
  if (!write("CAMPAIGN_" + stem + ".json", rollup_json(result, git_sha))) {
    return out_dir + "/CAMPAIGN_" + stem + ".json: write failed";
  }
  if (any_obs &&
      !write("METRICS_" + stem + ".json", metrics_json(result))) {
    return out_dir + "/METRICS_" + stem + ".json: write failed";
  }
  return "";
}

}  // namespace dg::scn
