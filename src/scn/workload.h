// Workload execution for scenario variants: one trial = one seeded
// execution of the variant's algorithm stack, returning a fixed row of
// seed-deterministic metrics.
//
// Metric rows are pure functions of (spec, trial_seed) -- no wall-clock,
// no thread identity -- which is what makes campaign counter files
// byte-identical across --threads settings and machines.  Each workload
// reproduces the trial body of the hand-written bench it subsumed
// (bench_e3/e6/e13/e14), including the exact derive_seed() stream layout,
// so ported campaigns regenerate the pre-port numbers from the same seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "scn/scenario.h"

namespace dg::scn {

/// Metric names (column order of trial rows) for the variant's workload:
///   lb_progress:          latency, phase_len
///   decay_progress:       latency, horizon
///   seed_agreement:       well_formed, consistent, owners_local,
///                         distinct_owners, max_owners
///   seed_then_progress:   latency, max_owners, consistent
///   traffic_latency:      offered, admitted, dropped, acked, aborted,
///                         wait_mean, ack_latency, recv_latency,
///                         backlog_mean, qdepth_max, offered_rate,
///                         delivered_rate, first_recvs
///   abstraction_fidelity: dual_progress, dual_reached, dual_receptions,
///                         dual_ack_latency, dual_acked, sinr_progress,
///                         sinr_reached, sinr_receptions, sinr_ack_latency,
///                         sinr_acked, reliable_edges, unreliable_edges
///   lb_churn:             offered, admitted, acked, aborted, dropped,
///                         crash_requeues, readmitted, crashes, recoveries,
///                         clean_progress_rate, clean_progress_trials,
///                         faulty_violation_rate, faulty_progress_trials,
///                         restab_mean, fault_round_frac, fault_ack_rate,
///                         ack_rate
std::vector<std::string> metric_names(const ScenarioSpec& spec);

/// Runs one trial of the variant's workload with the given per-trial seed
/// (stats::run_trials derives it as derive_seed(spec.seed, trial_index)).
/// Returns one value per metric_names() entry.  When `registry` is
/// non-null the trial's simulations record obs telemetry into it; the
/// registry's logical domain is a pure function of (spec, trial_seed),
/// byte-identical at every round_threads value.  The registry must be
/// exclusive to this trial -- merge per-trial registries afterwards (in
/// trial order) for a deterministic aggregate.
std::vector<double> run_trial(const ScenarioSpec& spec,
                              std::uint64_t trial_seed,
                              obs::Registry* registry = nullptr);

}  // namespace dg::scn
