#include "scn/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/assert.h"

namespace dg::scn::json {

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::boolean;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double d) {
  Value v;
  v.kind_ = Kind::number;
  v.num_ = d;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::string;
  v.str_ = std::move(s);
  return v;
}

Value Value::make_array() {
  Value v;
  v.kind_ = Kind::array;
  return v;
}

Value Value::make_object() {
  Value v;
  v.kind_ = Kind::object;
  return v;
}

const char* Value::kind_name() const noexcept {
  switch (kind_) {
    case Kind::null: return "null";
    case Kind::boolean: return "boolean";
    case Kind::number: return "number";
    case Kind::string: return "string";
    case Kind::array: return "array";
    case Kind::object: return "object";
  }
  return "?";
}

bool Value::as_bool() const {
  DG_EXPECTS(kind_ == Kind::boolean);
  return bool_;
}

double Value::as_number() const {
  DG_EXPECTS(kind_ == Kind::number);
  return num_;
}

const std::string& Value::as_string() const {
  DG_EXPECTS(kind_ == Kind::string);
  return str_;
}

const std::vector<Value>& Value::items() const {
  DG_EXPECTS(kind_ == Kind::array);
  return arr_;
}

std::vector<Value>& Value::items() {
  DG_EXPECTS(kind_ == Kind::array);
  return arr_;
}

const std::vector<Value::Member>& Value::members() const {
  DG_EXPECTS(kind_ == Kind::object);
  return obj_;
}

std::vector<Value::Member>& Value::members() {
  DG_EXPECTS(kind_ == Kind::object);
  return obj_;
}

const Value* Value::find(const std::string& key) const {
  DG_EXPECTS(kind_ == Kind::object);
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Value::find(const std::string& key) {
  DG_EXPECTS(kind_ == Kind::object);
  for (auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Value::set_path(const std::string& dotted_path, Value v) {
  if (kind_ != Kind::object) return false;
  const auto dot = dotted_path.find('.');
  const std::string head = dotted_path.substr(0, dot);
  if (dot == std::string::npos) {
    if (Value* existing = find(head)) {
      *existing = std::move(v);
    } else {
      obj_.emplace_back(head, std::move(v));
    }
    return true;
  }
  Value* child = find(head);
  if (child == nullptr) {
    obj_.emplace_back(head, make_object());
    child = &obj_.back().second;
  }
  return child->set_path(dotted_path.substr(dot + 1), std::move(v));
}

void Value::remove(const std::string& key) {
  DG_EXPECTS(kind_ == Kind::object);
  for (auto it = obj_.begin(); it != obj_.end(); ++it) {
    if (it->first == key) {
      obj_.erase(it);
      return;
    }
  }
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ParseError run(Value& out) {
    skip_ws();
    if (!parse_value(out)) return error_;
    skip_ws();
    if (pos_ < text_.size()) {
      fail("unexpected content after the JSON document");
    }
    return error_;
  }

 private:
  bool fail(const std::string& message) {
    if (error_.ok()) {
      error_ = ParseError{line_, col_, message};
    }
    return false;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  bool expect(char c, const char* what) {
    if (peek() != c) {
      return fail(std::string("expected ") + what + " but found " +
                  describe_next());
    }
    advance();
    return true;
  }

  std::string describe_next() const {
    if (pos_ >= text_.size()) return "end of input";
    const char c = text_[pos_];
    if (static_cast<unsigned char>(c) < 0x20) return "a control character";
    return std::string("'") + c + "'";
  }

  bool parse_value(Value& out) {
    const std::size_t line = line_, col = col_;
    bool ok = false;
    switch (peek()) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"': {
        std::string s;
        ok = parse_string(s);
        if (ok) out = Value::make_string(std::move(s));
        break;
      }
      case 't':
      case 'f': ok = parse_keyword(out); break;
      case 'n': ok = parse_keyword(out); break;
      default: ok = parse_number(out); break;
    }
    if (ok) out.set_pos(line, col);
    return ok;
  }

  bool parse_keyword(Value& out) {
    static const struct {
      const char* text;
      int kind;  // 0 null, 1 true, 2 false
    } kKeywords[] = {{"null", 0}, {"true", 1}, {"false", 2}};
    for (const auto& kw : kKeywords) {
      const std::string word = kw.text;
      if (text_.compare(pos_, word.size(), word) == 0) {
        for (std::size_t i = 0; i < word.size(); ++i) advance();
        out = kw.kind == 0 ? Value{} : Value::make_bool(kw.kind == 1);
        return true;
      }
    }
    return fail("expected a JSON value but found " + describe_next());
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (peek() == '-') advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    if (peek() == '.') {
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      advance();
      if (peek() == '+' || peek() == '-') advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    const std::string lexeme = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(lexeme.c_str(), &end);
    if (lexeme.empty() || end == nullptr || *end != '\0' ||
        !std::isfinite(v)) {
      return fail("expected a JSON value but found " + describe_next());
    }
    out = Value::make_number(v);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"', "'\"'")) return false;
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = advance();
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = advance();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= text_.size()) return fail("unterminated \\u escape");
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("invalid \\u escape digit");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed by campaign files; lone surrogates encode as-is).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail(std::string("invalid escape '\\") + e + "'");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character inside string");
      } else {
        out += c;
      }
    }
  }

  bool parse_array(Value& out) {
    if (!expect('[', "'['")) return false;
    out = Value::make_array();
    skip_ws();
    if (peek() == ']') {
      advance();
      return true;
    }
    while (true) {
      Value item;
      skip_ws();
      if (!parse_value(item)) return false;
      out.items().push_back(std::move(item));
      skip_ws();
      if (peek() == ',') {
        advance();
        continue;
      }
      return expect(']', "',' or ']'");
    }
  }

  bool parse_object(Value& out) {
    if (!expect('{', "'{'")) return false;
    out = Value::make_object();
    skip_ws();
    if (peek() == '}') {
      advance();
      return true;
    }
    while (true) {
      skip_ws();
      const std::size_t key_line = line_, key_col = col_;
      std::string key;
      if (!parse_string(key)) return false;
      for (const auto& [k, v] : out.members()) {
        if (k == key) {
          line_ = key_line;
          col_ = key_col;
          return fail("duplicate object key '" + key + "'");
        }
      }
      skip_ws();
      if (!expect(':', "':' after object key")) return false;
      skip_ws();
      Value item;
      if (!parse_value(item)) return false;
      out.members().emplace_back(std::move(key), std::move(item));
      skip_ws();
      if (peek() == ',') {
        advance();
        continue;
      }
      return expect('}', "',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
  ParseError error_;
};

}  // namespace

ParseError parse(const std::string& text, Value& out) {
  return Parser(text).run(out);
}

std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) &&
      std::abs(v) < 9.2e18) {  // fits in int64
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest round-trip precision: try 15, 16, then 17 significant digits.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace dg::scn::json
