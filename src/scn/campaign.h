// CampaignRunner: executes an expanded campaign, sharded across threads.
//
// Each variant's trials run through stats::run_trials (work-stealing over
// a shared atomic trial index, results in trial order), so the output is
// deterministic for a given campaign file regardless of --threads: the
// counters document is byte-identical for 1 thread and N threads, which
// is what lets CI gate on it (tools/bench_diff.py --counters-only against
// a checked-in golden).
//
// Artifacts per run (write_reports):
//   SCN_<variant>.json      per-variant bench_support.h-style report
//                           (elapsed_ms + machine stamps + metric tables)
//   COUNTERS_<campaign>.json seed-deterministic counters only -- no
//                           timing, no machine stamps; the gating file
//   CAMPAIGN_<campaign>.json roll-up (variant list, totals, wall time)
//   METRICS_<variant>.json  (variants with "obs": true) the variant's
//                           merged obs::Registry, logical domain only --
//                           gateable exactly like the counters file
//   METRICS_<campaign>.json campaign metrics roll-up embedding every obs
//                           variant's logical dump plus the campaign-wide
//                           merge (variant order)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "scn/scenario.h"

namespace dg::scn {

struct RunOptions {
  std::size_t threads = 0;     ///< trial worker cap; 0 = hardware
  std::string filter;          ///< substring filter on variant names
  std::size_t max_trials = 0;  ///< clamp per-variant trials (0 = off);
                               ///< nightly CI runs campaigns reduced
  /// Engine round-thread cap forced onto every variant (0 = keep each
  /// variant's own spec / engine default).  Counters are byte-identical
  /// for every value -- the flag moves wall clock, never results.
  std::size_t round_threads = 0;
  /// Extra stage spliced into every variant's round pipeline, after any
  /// stages the variant declares itself (see sim/splice.h for the
  /// grammar).  Empty = none.  Must be a valid spec whose write set does
  /// not conflict with any variant's own stages -- the CLI validates
  /// before running.
  std::string splice;
  std::ostream* progress = nullptr;  ///< optional per-variant status lines
};

struct VariantResult {
  ScenarioSpec spec;                        ///< concrete expanded spec
  std::vector<std::string> metrics;         ///< column names
  std::vector<std::vector<double>> trials;  ///< [trial][metric], trial order
  double elapsed_ms = 0;                    ///< wall clock (non-gating)
  /// Merged obs telemetry (only populated when spec.obs): per-trial
  /// registries folded in TRIAL order -- not completion order -- so the
  /// logical domain is byte-identical at every --threads/--round-threads.
  obs::Registry registry;

  /// Sum of one metric column over all trials, accumulated in trial order
  /// (the deterministic aggregate the counters file records).
  double metric_sum(std::size_t metric) const;
};

struct CampaignResult {
  std::string name;
  std::vector<VariantResult> variants;
  double elapsed_ms = 0;
};

/// Runs every variant matching options.filter, in campaign order.
CampaignResult run_campaign(const Campaign& campaign,
                            const RunOptions& options);

/// The gating counters document: pure function of (campaign file, filter,
/// max_trials) -- byte-identical across thread counts and machines.
std::string counters_json(const CampaignResult& result);

/// One variant's bench_support.h-shaped report (elapsed_ms,
/// hardware_concurrency, git_sha, sections/tables).
std::string variant_report_json(const VariantResult& variant,
                                const std::string& git_sha);

/// Campaign roll-up: totals + per-variant timing and counter sums.
std::string rollup_json(const CampaignResult& result,
                        const std::string& git_sha);

/// Campaign metrics roll-up (format "dg-campaign-metrics-v1"): embeds each
/// obs variant's logical registry dump, plus "campaign" -- all variant
/// registries merged in VARIANT order.  Pure function of the campaign
/// inputs (no timing domain, no stamps), gateable like counters_json.
std::string metrics_json(const CampaignResult& result);

/// Writes the three artifact kinds into out_dir (created if needed).
/// Returns "" on success, else an error message.
std::string write_reports(const CampaignResult& result,
                          const std::string& out_dir,
                          const std::string& git_sha);

/// Variant name -> filesystem-safe stem ('/' and other non [A-Za-z0-9_.-]
/// become '_').
std::string sanitize_filename(const std::string& name);

}  // namespace dg::scn
