// Declarative scenario descriptions (the src/scn/ subsystem).
//
// A *campaign file* is a JSON document naming scenarios; each scenario
// names a topology generator, an oblivious link scheduler, a channel model
// (dual_graph or sinr:alpha,beta,noise), an optional traffic model
// (saturate/poisson/burst/hotspot -- the environment automaton, consumed
// by the traffic_latency and lb_churn workloads), an optional fault
// schedule (crash/poisson/region/adversary -- crash/recover churn,
// consumed by the lb_churn workload), an algorithm workload (LBAlg
// progress, Decay baseline, SeedAlg agreement, the combined r-sensitivity
// workload, the SINR abstraction-fidelity comparison, the open-loop
// traffic_latency queueing workload, or the lb_churn graceful-degradation
// workload), a trial count and a base seed.  An
// optional "matrix" block sweeps axes whose
// cross-product expands into concrete scenario *variants* -- the topology
// x scheduler x channel x algorithm x adversary cross-product as data
// instead of bespoke bench binaries.
//
//   {
//     "campaign": "smoke",
//     "scenarios": [
//       {
//         "name": "e3_progress",
//         "topology": {"type": "clique", "k": 4},
//         "scheduler": "bernoulli:0.5",
//         "channel": "dual_graph",
//         "algorithm": {"type": "lb_progress", "eps1": 0.1, "r": 1.5,
//                       "ack_scale": 0.02, "senders": [1], "receiver": 0,
//                       "horizon_phases": 12},
//         "trials": 30,
//         "seed": 227,
//         "matrix": {
//           "delta": [
//             {"tag": "4",  "seed_offset": 4,  "set": {"topology.k": 4}},
//             {"tag": "8",  "seed_offset": 8,  "set": {"topology.k": 8}}
//           ]
//         }
//       }
//     ]
//   }
//
// Matrix semantics: axes cross-multiply in declaration order; each axis
// entry carries a display tag, a seed offset (offsets from all axes ADD to
// the scenario's base seed, so sweep points draw decorrelated trial
// streams -- exactly the `0xe3 + clique` convention of the hand-written
// benches), and a "set" patch of dotted-path assignments applied to the
// scenario object before validation.  Variant names are
// "<scenario>/<tag>/<tag>...".
//
// Validation is strict: unknown keys anywhere, malformed scheduler or
// channel specs, empty sweep axes, duplicate scenario/variant names, and
// workload/topology mismatches are all errors carrying the file position
// and the JSON path of the offending token.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/spec.h"
#include "graph/dual_graph.h"
#include "phys/channel_spec.h"
#include "sim/scheduler.h"
#include "traffic/spec.h"
#include "util/rng.h"

namespace dg::scn {

struct TopologySpec {
  /// geometric | grid | clique | star | line | bridged | contention_star
  /// | disjoint_cliques | deployment
  std::string type = "geometric";
  std::size_t n = 64;        ///< geometric / deployment node count
  double side = 4.0;         ///< geometric / deployment square side
  double r = 1.5;            ///< geographic parameter (embedded families)
  std::size_t cols = 6;      ///< grid
  std::size_t rows = 4;      ///< grid
  double spacing = 1.0;      ///< grid / line
  std::size_t k = 16;        ///< clique size / star leaves / line length /
                             ///< contention-star unreliable neighbors /
                             ///< bridged per-cluster size / clique size of
                             ///< disjoint_cliques
  std::size_t cliques = 2;   ///< disjoint_cliques clique count
  double p_grey_reliable = 0.1;    ///< geometric grey-zone class probs
  double p_grey_unreliable = 0.6;
};

struct AlgorithmSpec {
  /// lb_progress | decay_progress | seed_agreement | seed_then_progress
  /// | abstraction_fidelity | traffic_latency | lb_churn
  std::string type = "lb_progress";

  // LBAlg knobs (lb_progress, seed_then_progress, abstraction_fidelity).
  double eps1 = 0.1;
  double r = 0;              ///< 0 = auto: max(1.0, graph r)
  double ack_scale = 0.02;
  std::vector<graph::Vertex> senders{0};
  bool senders_all_but_receiver = false;  ///< "senders": "all_but_receiver"
  std::int64_t receiver = 0;              ///< -1 = first G-neighbor of
                                          ///< senders[0] (fallback vertex 1)
  std::int64_t horizon_phases = 12;

  // Decay baseline knobs (decay_progress).
  int log_delta = 7;
  std::int64_t horizon_rounds = 4096;
  std::int64_t ack_rounds = 1 << 20;

  // SeedAlg knobs (seed_agreement, seed_then_progress).
  double seed_eps = 0.1;

  // Traffic knobs (traffic_latency): per-node admission queue bound
  // (0 = unbounded; offers beyond it are dropped and counted).
  std::int64_t queue_cap = 0;
};

/// One concrete (post-expansion) scenario variant.
struct ScenarioSpec {
  std::string name;  ///< variant-qualified: "e3_progress/8"
  TopologySpec topology;
  std::string scheduler = "bernoulli:0.5";
  std::string channel = "dual_graph";
  phys::ChannelSpec channel_spec;  ///< parsed form of `channel`
  /// Traffic model (the environment automaton), e.g. "poisson:0.3"; only
  /// the traffic_latency and lb_churn workloads consume it.  Empty = none.
  std::string traffic;
  traffic::TrafficSpec traffic_spec;  ///< parsed form of `traffic`
  /// Fault schedule (crash/recover churn, see fault/spec.h), e.g.
  /// "poisson:0.05:128"; only the lb_churn workload consumes it.  Empty =
  /// none.  Sweepable through the matrix like every other axis.
  std::string faults;
  fault::FaultSpec fault_spec;  ///< parsed form of `faults`
  AlgorithmSpec algorithm;
  std::size_t trials = 1;
  std::uint64_t seed = 1;  ///< base + matrix seed offsets
  /// Engine thread cap for the deterministic sharded round loop (results
  /// are byte-identical at every value).  0 = leave the engine default
  /// (the DG_ROUND_THREADS environment knob); >= 1 pins it for the
  /// variant's trials.
  std::size_t round_threads = 0;
  /// Collect obs telemetry for this variant: each trial fills a per-trial
  /// obs::Registry, merged in trial order into a per-variant registry the
  /// campaign writes as METRICS_<variant>.json.  The logical domain of
  /// that dump is byte-identical at every round_threads value.
  bool obs = false;
  /// Extra stages spliced into the round pipeline, in order (see
  /// sim/splice.h for the grammar: noop | dedup[:window[:slab]] |
  /// tap:slab[:v1,v2,...]).  Parsed and conflict-validated at load time;
  /// applied to every trial simulation of the variant.
  std::vector<std::string> stages;
};

struct Campaign {
  std::string name;
  std::vector<ScenarioSpec> variants;  ///< fully expanded, in file order
};

struct CampaignParse {
  Campaign campaign;
  std::string error;  ///< empty = ok; else "file:line:col: path: message"
  bool ok() const noexcept { return error.empty(); }
};

/// Parses + validates + expands a campaign document.  `filename` is used
/// only to prefix error messages.
CampaignParse parse_campaign_text(const std::string& text,
                                  const std::string& filename);

/// Reads the file and delegates to parse_campaign_text.
CampaignParse parse_campaign_file(const std::string& path);

/// Validates a scheduler spec: bernoulli:p | full-g | full-gprime |
/// flicker:period:duty | burst:epoch,p | anti[:log_delta[:pivot]].
/// Returns "" or a message naming the offending token.
std::string validate_scheduler_spec(const std::string& spec);

/// Validates a --round-threads style value: a positive integer, no sign,
/// no trailing junk (0 is rejected -- "run serial" is spelled 1, matching
/// sim::Engine::set_round_threads).  On success fills `out` and returns
/// ""; otherwise returns a message naming the offending value.  Shared by
/// dglab and dgcampaign so the two CLIs reject identically.
std::string validate_round_threads_value(const std::string& value,
                                         std::size_t& out);

/// Builds the (committed-later) scheduler for a validated spec.
/// Contract-checks that the spec is valid.
std::unique_ptr<sim::LinkScheduler> build_scheduler(const std::string& spec);

/// Builds the variant's topology.  `rng` is the trial's master stream and
/// is consumed only by the randomized families (geometric), mirroring the
/// hand-written benches.  Deployment scenarios have no DualGraph; their
/// workload samples the embedding itself (see workload.cpp).
graph::DualGraph build_topology(const TopologySpec& spec, Rng& rng);

}  // namespace dg::scn
