#include "scn/scenario.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <set>
#include <sstream>

#include "baseline/decay.h"
#include "graph/generators.h"
#include "scn/json.h"
#include "scn/spec_error.h"
#include "sim/splice.h"
#include "util/assert.h"
#include "util/specparse.h"

namespace dg::scn {

namespace {

using spec::parse_num;
using spec::split;

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) return false;
  }
  return true;
}

std::string join(std::initializer_list<const char*> words) {
  std::string out;
  for (const char* w : words) {
    if (!out.empty()) out += ", ";
    out += w;
  }
  return out;
}

/// Error sink: first failure wins; messages carry file:line:col + JSON
/// path so a campaign author can jump straight to the offending token.
class Ctx {
 public:
  explicit Ctx(std::string filename) : filename_(std::move(filename)) {}

  bool fail(const json::Value& at, const std::string& path,
            const std::string& message) {
    if (error_.empty()) {
      std::ostringstream os;
      os << filename_ << ':' << at.line() << ':' << at.col() << ": ";
      if (!path.empty()) os << path << ": ";
      os << message;
      error_ = os.str();
    }
    return false;
  }

  bool ok() const noexcept { return error_.empty(); }
  const std::string& error() const noexcept { return error_; }

 private:
  std::string filename_;
  std::string error_;
};

/// Typed field access over one JSON object with unknown-key detection.
/// Getters leave the output untouched when the key is absent (specs carry
/// the defaults), and fail with the expected/actual kinds otherwise.
class ObjectReader {
 public:
  ObjectReader(Ctx& ctx, const json::Value& obj, std::string path,
               std::initializer_list<const char*> valid)
      : ctx_(ctx), obj_(obj), path_(std::move(path)), valid_(valid) {}

  /// Reports every key outside the valid list.  Call last.
  bool finish() {
    for (const auto& [key, value] : obj_.members()) {
      bool known = false;
      for (const char* v : valid_) {
        if (key == v) {
          known = true;
          break;
        }
      }
      if (!known) {
        return ctx_.fail(value, path_,
                         "unknown key '" + key +
                             "' (valid keys: " + join(valid_) + ")");
      }
    }
    return true;
  }

  const json::Value* get(const char* key) const { return obj_.find(key); }

  bool str(const char* key, std::string& out) {
    const json::Value* v = get(key);
    if (v == nullptr) return true;
    if (!v->is_string()) return wrong_kind(*v, key, "a string");
    out = v->as_string();
    return true;
  }

  bool boolean(const char* key, bool& out) {
    const json::Value* v = get(key);
    if (v == nullptr) return true;
    if (!v->is_bool()) return wrong_kind(*v, key, "a boolean");
    out = v->as_bool();
    return true;
  }

  bool number(const char* key, double& out) {
    const json::Value* v = get(key);
    if (v == nullptr) return true;
    if (!v->is_number()) return wrong_kind(*v, key, "a number");
    out = v->as_number();
    return true;
  }

  bool integer(const char* key, std::int64_t& out, std::int64_t min,
               std::int64_t max = (std::int64_t{1} << 53)) {
    const json::Value* v = get(key);
    if (v == nullptr) return true;
    if (!v->is_number()) return wrong_kind(*v, key, "an integer");
    const double d = v->as_number();
    if (d != std::floor(d)) return wrong_kind(*v, key, "an integer");
    if (d < static_cast<double>(min) || d > static_cast<double>(max)) {
      std::ostringstream os;
      os << "key '" << key << "' must be in [" << min << ", " << max
         << "]; got " << json::format_number(d);
      return ctx_.fail(*v, path_, os.str());
    }
    out = static_cast<std::int64_t>(d);
    return true;
  }

  bool size(const char* key, std::size_t& out, std::size_t min = 1) {
    std::int64_t v = static_cast<std::int64_t>(out);
    if (!integer(key, v, static_cast<std::int64_t>(min))) return false;
    out = static_cast<std::size_t>(v);
    return true;
  }

  bool wrong_kind(const json::Value& v, const char* key, const char* want) {
    return ctx_.fail(v, path_,
                     std::string("key '") + key + "' must be " + want +
                         "; got " + v.kind_name());
  }

  Ctx& ctx() { return ctx_; }
  const std::string& path() const { return path_; }

 private:
  Ctx& ctx_;
  const json::Value& obj_;
  std::string path_;
  std::initializer_list<const char*> valid_;
};

// Key lists live at namespace scope so their backing arrays have static
// storage: ObjectReader keeps the initializer_list by value, and a braced
// temporary at a call site would dangle once the statement ends.
constexpr std::initializer_list<const char*> kTopLevelKeys = {
    "campaign", "scenarios"};
constexpr std::initializer_list<const char*> kScenarioKeys = {
    "name", "topology", "scheduler", "channel", "traffic", "faults",
    "algorithm", "trials", "seed", "round_threads", "obs", "stages",
    "matrix"};
constexpr std::initializer_list<const char*> kTopologyKeys = {
    "type", "n", "side", "r", "cols", "rows", "spacing",
    "k", "cliques", "p_grey_reliable", "p_grey_unreliable"};
constexpr std::initializer_list<const char*> kAlgorithmKeys = {
    "type", "eps1", "r", "ack_scale", "senders", "receiver",
    "horizon_phases", "log_delta", "horizon_rounds", "ack_rounds",
    "seed_eps", "queue_cap"};
constexpr std::initializer_list<const char*> kAxisEntryKeys = {
    "tag", "seed_offset", "set"};

const std::set<std::string> kTopologyTypes = {
    "geometric", "grid", "clique", "star", "line", "bridged",
    "contention_star", "disjoint_cliques", "deployment"};
const std::set<std::string> kAlgorithmTypes = {
    "lb_progress", "decay_progress", "seed_agreement",
    "seed_then_progress", "abstraction_fidelity", "traffic_latency",
    "lb_churn"};

/// The one-line workload list every workload-related rejection embeds
/// (the same actionable style as the channel/scheduler/traffic specs).
const char* kValidAlgorithmTypes =
    "lb_progress, decay_progress, seed_agreement, seed_then_progress, "
    "abstraction_fidelity, traffic_latency, lb_churn";
/// Topology families that attach a plane embedding (required by SINR
/// reception).
const std::set<std::string> kEmbeddedTopologies = {
    "geometric", "grid", "star", "line", "bridged"};

bool parse_topology(Ctx& ctx, const json::Value& v, const std::string& path,
                    TopologySpec& out) {
  if (!v.is_object()) {
    return ctx.fail(v, path, std::string("must be an object; got ") +
                                 v.kind_name());
  }
  ObjectReader r(ctx, v, path, kTopologyKeys);
  if (!r.str("type", out.type)) return false;
  if (kTopologyTypes.find(out.type) == kTopologyTypes.end()) {
    return ctx.fail(v.find("type") != nullptr ? *v.find("type") : v, path,
                    "unknown topology type '" + out.type +
                        "' (valid: geometric, grid, clique, star, line, "
                        "bridged, contention_star, disjoint_cliques, "
                        "deployment)");
  }
  if (!r.size("n", out.n) || !r.number("side", out.side) ||
      !r.number("r", out.r) || !r.size("cols", out.cols) ||
      !r.size("rows", out.rows) || !r.number("spacing", out.spacing) ||
      !r.size("k", out.k) || !r.size("cliques", out.cliques) ||
      !r.number("p_grey_reliable", out.p_grey_reliable) ||
      !r.number("p_grey_unreliable", out.p_grey_unreliable)) {
    return false;
  }
  if (!(out.side > 0.0)) return ctx.fail(v, path, "side must be > 0");
  if (!(out.spacing > 0.0)) return ctx.fail(v, path, "spacing must be > 0");
  const double min_r = out.type == "bridged" ? 1.2 : 1.0;
  if (!(out.r >= min_r)) {
    std::ostringstream os;
    os << "r must be >= " << min_r << " for topology '" << out.type << "'";
    return ctx.fail(v, path, os.str());
  }
  for (double p : {out.p_grey_reliable, out.p_grey_unreliable}) {
    if (!(p >= 0.0 && p <= 1.0)) {
      return ctx.fail(v, path, "grey-zone probabilities must be in [0, 1]");
    }
  }
  return r.finish();
}

bool parse_algorithm(Ctx& ctx, const json::Value& v, const std::string& path,
                     AlgorithmSpec& out) {
  if (!v.is_object()) {
    return ctx.fail(v, path, std::string("must be an object; got ") +
                                 v.kind_name());
  }
  ObjectReader r(ctx, v, path, kAlgorithmKeys);
  if (!r.str("type", out.type)) return false;
  if (kAlgorithmTypes.find(out.type) == kAlgorithmTypes.end()) {
    return ctx.fail(v.find("type") != nullptr ? *v.find("type") : v, path,
                    "unknown algorithm type '" + out.type + "' (valid: " +
                        std::string(kValidAlgorithmTypes) + ")");
  }
  std::int64_t log_delta = out.log_delta;
  if (!r.number("eps1", out.eps1) || !r.number("r", out.r) ||
      !r.number("ack_scale", out.ack_scale) ||
      !r.integer("receiver", out.receiver, -1) ||
      !r.integer("horizon_phases", out.horizon_phases, 1) ||
      !r.integer("log_delta", log_delta, 1, 62) ||
      !r.integer("horizon_rounds", out.horizon_rounds, 1) ||
      !r.integer("ack_rounds", out.ack_rounds, 1) ||
      !r.number("seed_eps", out.seed_eps) ||
      !r.integer("queue_cap", out.queue_cap, 0)) {
    return false;
  }
  out.log_delta = static_cast<int>(log_delta);
  if (!(out.eps1 > 0.0 && out.eps1 <= 0.5)) {
    return ctx.fail(v, path, "eps1 must be in (0, 0.5]");
  }
  if (!(out.seed_eps > 0.0 && out.seed_eps <= 0.25)) {
    return ctx.fail(v, path, "seed_eps must be in (0, 0.25]");
  }
  if (!(out.ack_scale > 0.0)) {
    return ctx.fail(v, path, "ack_scale must be > 0");
  }
  if (!(out.r >= 0.0)) {
    return ctx.fail(v, path, "r must be >= 0 (0 = derive from topology)");
  }
  if (const json::Value* s = r.get("senders")) {
    if (s->is_string()) {
      if (s->as_string() != "all_but_receiver") {
        return ctx.fail(*s, path,
                        "senders must be an array of vertex indices or the "
                        "string \"all_but_receiver\"; got '" +
                            s->as_string() + "'");
      }
      out.senders_all_but_receiver = true;
      out.senders.clear();
    } else if (s->is_array()) {
      if (s->items().empty()) {
        return ctx.fail(*s, path, "senders must not be empty");
      }
      out.senders.clear();
      for (const json::Value& item : s->items()) {
        if (!item.is_number()) {
          return ctx.fail(item, path,
                          "senders entries must be non-negative integers");
        }
        const double d = item.as_number();
        if (d != std::floor(d) || d < 0) {
          return ctx.fail(item, path,
                          "senders entries must be non-negative integers");
        }
        out.senders.push_back(static_cast<graph::Vertex>(d));
      }
    } else {
      return r.wrong_kind(*s, "senders",
                          "an array or \"all_but_receiver\"");
    }
  }
  return r.finish();
}

/// Total vertex count of a topology spec (known statically for every
/// family), used to bound-check senders/receiver at validation time
/// instead of hitting an engine contract abort mid-campaign.
std::size_t node_count(const TopologySpec& t) {
  if (t.type == "geometric" || t.type == "deployment") return t.n;
  if (t.type == "grid") return t.cols * t.rows;
  if (t.type == "clique" || t.type == "line") return t.k;
  if (t.type == "star") return t.k + 1;
  if (t.type == "bridged") return 2 * t.k;
  if (t.type == "contention_star") return t.k + 2;
  if (t.type == "disjoint_cliques") return t.cliques * t.k;
  return 0;
}

/// Cross-field rules: workload vs topology vs channel compatibility plus
/// vertex bound checks.  `at` anchors the error position.
bool validate_semantics(Ctx& ctx, const json::Value& at,
                        const std::string& path, const ScenarioSpec& spec) {
  const AlgorithmSpec& a = spec.algorithm;
  const std::size_t n = node_count(spec.topology);
  if (n < 2) {
    return ctx.fail(at, path, "topology must have at least 2 vertices");
  }
  if (a.type == "abstraction_fidelity") {
    if (spec.topology.type != "deployment") {
      return ctx.fail(at, path,
                      "algorithm 'abstraction_fidelity' requires topology "
                      "type 'deployment' (a raw SINR embedding); got '" +
                          spec.topology.type + "'");
    }
    if (!spec.channel_spec.is_sinr) {
      return ctx.fail(at, path,
                      "algorithm 'abstraction_fidelity' requires an SINR "
                      "channel (channel: \"sinr:alpha,beta,noise\"); got '" +
                          spec.channel + "'");
    }
  } else if (spec.topology.type == "deployment") {
    return ctx.fail(at, path,
                    "topology 'deployment' is only valid with algorithm "
                    "'abstraction_fidelity' (other workloads need a dual "
                    "graph; use 'geometric' instead)");
  } else if (spec.channel_spec.is_sinr) {
    if (a.type == "decay_progress" || a.type == "seed_then_progress") {
      return ctx.fail(at, path,
                      "algorithm '" + a.type +
                          "' supports only the dual_graph channel");
    }
    if (kEmbeddedTopologies.find(spec.topology.type) ==
        kEmbeddedTopologies.end()) {
      return ctx.fail(at, path,
                      "channel 'sinr' needs an embedded topology "
                      "(geometric, grid, star, line, bridged); got '" +
                          spec.topology.type + "'");
    }
  }
  const bool uses_traffic =
      a.type == "traffic_latency" || a.type == "lb_churn";
  if (uses_traffic) {
    if (spec.traffic.empty()) {
      return ctx.fail(at, path,
                      "algorithm '" + a.type +
                          "' needs a \"traffic\" spec (valid: " +
                          traffic::valid_traffic_specs() + ")");
    }
  } else if (!spec.traffic.empty()) {
    return ctx.fail(at, path,
                    "key \"traffic\" is only consumed by algorithm "
                    "'traffic_latency' or 'lb_churn'; algorithm '" +
                        a.type + "' manages its own environment (valid "
                        "workload kinds: " +
                        std::string(kValidAlgorithmTypes) + ")");
  } else if (a.queue_cap != 0) {
    // Same no-silent-ignore rule as the traffic key: a queue_cap sweep on
    // the wrong workload would otherwise produce identical counters with
    // no diagnostic.
    return ctx.fail(at, path,
                    "key \"queue_cap\" is only consumed by algorithm "
                    "'traffic_latency' or 'lb_churn'; algorithm '" +
                        a.type + "' has no admission queue (valid "
                        "workload kinds: " +
                        std::string(kValidAlgorithmTypes) + ")");
  }
  if (a.type == "lb_churn") {
    if (spec.faults.empty()) {
      return ctx.fail(at, path,
                      "algorithm 'lb_churn' needs a \"faults\" spec "
                      "(valid: " +
                          fault::valid_fault_specs() + ")");
    }
  } else if (!spec.faults.empty()) {
    return ctx.fail(at, path,
                    "key \"faults\" is only consumed by algorithm "
                    "'lb_churn'; algorithm '" +
                        a.type + "' runs fault-free (valid workload "
                        "kinds: " +
                        std::string(kValidAlgorithmTypes) + ")");
  }
  if (!spec.faults.empty()) {
    const fault::FaultSpec& f = spec.fault_spec;
    const bool names_vertex = f.kind == fault::FaultSpec::Kind::kCrash ||
                              f.kind == fault::FaultSpec::Kind::kRegion;
    if (names_vertex && f.vertex >= n) {
      std::ostringstream os;
      os << "faults '" << spec.faults << "' names vertex " << f.vertex
         << ", but the topology has only " << n << " vertices";
      return ctx.fail(at, path, os.str());
    }
    if (f.kind == fault::FaultSpec::Kind::kAdversary &&
        static_cast<std::size_t>(f.k) > n) {
      std::ostringstream os;
      os << "faults '" << spec.faults << "' crashes " << f.k
         << " vertices per period, but the topology has only " << n
         << " vertices";
      return ctx.fail(at, path, os.str());
    }
  }
  if (!spec.traffic.empty()) {
    const traffic::TrafficSpec& t = spec.traffic_spec;
    const bool counted = t.kind == traffic::TrafficSpec::Kind::kSaturate ||
                         t.kind == traffic::TrafficSpec::Kind::kBurst;
    if (counted && t.count > n) {
      std::ostringstream os;
      os << "traffic '" << spec.traffic << "' names " << t.count
         << " sender(s), but the topology has only " << n << " vertices";
      return ctx.fail(at, path, os.str());
    }
    if (t.kind == traffic::TrafficSpec::Kind::kHotspot && t.hot >= n) {
      std::ostringstream os;
      os << "traffic hot vertex " << t.hot << " out of range (topology has "
         << n << " vertices)";
      return ctx.fail(at, path, os.str());
    }
  }
  if (a.receiver >= static_cast<std::int64_t>(n)) {
    std::ostringstream os;
    os << "receiver " << a.receiver << " out of range (topology has " << n
       << " vertices)";
    return ctx.fail(at, path, os.str());
  }
  for (graph::Vertex s : a.senders) {
    if (s >= n) {
      std::ostringstream os;
      os << "sender " << s << " out of range (topology has " << n
         << " vertices)";
      return ctx.fail(at, path, os.str());
    }
  }
  return true;
}

/// Parses one *concrete* (matrix-expanded) scenario object.
bool parse_scenario(Ctx& ctx, const json::Value& v, const std::string& path,
                    ScenarioSpec& out) {
  ObjectReader r(ctx, v, path, kScenarioKeys);
  if (!r.str("scheduler", out.scheduler) ||
      !r.str("channel", out.channel)) {
    return false;
  }
  {
    const std::string err = validate_scheduler_spec(out.scheduler);
    if (!err.empty()) {
      const json::Value* at = v.find("scheduler");
      return ctx.fail(at != nullptr ? *at : v, path + ".scheduler", err);
    }
  }
  {
    const std::string err =
        phys::parse_channel_spec(out.channel, out.channel_spec);
    if (!err.empty()) {
      const json::Value* at = v.find("channel");
      return ctx.fail(at != nullptr ? *at : v, path + ".channel", err);
    }
  }
  if (!r.str("traffic", out.traffic)) return false;
  if (!out.traffic.empty()) {
    const std::string err =
        traffic::parse_traffic_spec(out.traffic, out.traffic_spec);
    if (!err.empty()) {
      const json::Value* at = v.find("traffic");
      return ctx.fail(at != nullptr ? *at : v, path + ".traffic", err);
    }
  }
  if (!r.str("faults", out.faults)) return false;
  if (!out.faults.empty()) {
    const std::string err =
        fault::parse_fault_spec(out.faults, out.fault_spec);
    if (!err.empty()) {
      const json::Value* at = v.find("faults");
      return ctx.fail(at != nullptr ? *at : v, path + ".faults", err);
    }
  }
  if (const json::Value* t = r.get("topology")) {
    if (!parse_topology(ctx, *t, path + ".topology", out.topology)) {
      return false;
    }
  }
  if (const json::Value* a = r.get("algorithm")) {
    if (!parse_algorithm(ctx, *a, path + ".algorithm", out.algorithm)) {
      return false;
    }
  }
  std::int64_t trials = static_cast<std::int64_t>(out.trials);
  std::int64_t seed = 0;
  bool have_seed = v.find("seed") != nullptr;
  if (!r.integer("trials", trials, 1) || !r.integer("seed", seed, 0) ||
      !r.size("round_threads", out.round_threads) ||
      !r.boolean("obs", out.obs)) {
    return false;
  }
  out.trials = static_cast<std::size_t>(trials);
  if (have_seed) out.seed = static_cast<std::uint64_t>(seed);
  if (const json::Value* st = r.get("stages")) {
    if (!st->is_array()) {
      return r.wrong_kind(*st, "stages", "an array of stage spec strings");
    }
    out.stages.clear();
    std::vector<sim::SpliceSpec> specs;
    for (std::size_t i = 0; i < st->items().size(); ++i) {
      const json::Value& item = st->items()[i];
      const std::string item_path =
          path + ".stages[" + std::to_string(i) + "]";
      if (!item.is_string()) {
        return ctx.fail(item, item_path,
                        std::string("stage spec must be a string; got ") +
                            item.kind_name());
      }
      sim::SpliceSpec spec;
      std::string err;
      if (!sim::parse_splice_spec(item.as_string(), spec, err)) {
        return ctx.fail(item, item_path, err);
      }
      specs.push_back(std::move(spec));
      out.stages.push_back(item.as_string());
    }
    const std::string err = sim::validate_splice_specs(specs);
    if (!err.empty()) {
      return ctx.fail(*st, path + ".stages", err);
    }
  }
  if (!r.finish()) return false;
  return validate_semantics(ctx, v, path, out);
}

struct AxisEntry {
  std::string tag;
  std::uint64_t seed_offset = 0;
  const json::Value* set = nullptr;  ///< patch object, may be null
};

struct Axis {
  std::string name;
  std::vector<AxisEntry> entries;
};

bool parse_matrix(Ctx& ctx, const json::Value& m, const std::string& path,
                  std::vector<Axis>& out) {
  if (!m.is_object()) {
    return ctx.fail(m, path, std::string("must be an object of axes; got ") +
                                 m.kind_name());
  }
  for (const auto& [axis_name, axis_val] : m.members()) {
    const std::string axis_path = path + "." + axis_name;
    if (!axis_val.is_array()) {
      return ctx.fail(axis_val, axis_path,
                      std::string("axis must be an array; got ") +
                          axis_val.kind_name());
    }
    if (axis_val.items().empty()) {
      return ctx.fail(axis_val, axis_path,
                      "empty sweep axis (every axis needs at least one "
                      "entry, or drop the axis)");
    }
    Axis axis;
    axis.name = axis_name;
    std::set<std::string> tags;
    for (std::size_t i = 0; i < axis_val.items().size(); ++i) {
      const json::Value& e = axis_val.items()[i];
      const std::string entry_path =
          axis_path + "[" + std::to_string(i) + "]";
      if (!e.is_object()) {
        return ctx.fail(e, entry_path,
                        std::string("axis entry must be an object with "
                                    "tag/seed_offset/set; got ") +
                            e.kind_name());
      }
      ObjectReader r(ctx, e, entry_path, kAxisEntryKeys);
      AxisEntry entry;
      if (!r.str("tag", entry.tag)) return false;
      if (!valid_name(entry.tag)) {
        return ctx.fail(e, entry_path,
                        "axis entry needs a \"tag\" of [A-Za-z0-9_.-]+");
      }
      if (!tags.insert(entry.tag).second) {
        return ctx.fail(e, entry_path,
                        "duplicate tag '" + entry.tag + "' in axis '" +
                            axis_name + "'");
      }
      std::int64_t off = 0;
      if (!r.integer("seed_offset", off, 0)) return false;
      entry.seed_offset = static_cast<std::uint64_t>(off);
      if (const json::Value* set = r.get("set")) {
        if (!set->is_object()) {
          return r.wrong_kind(*set, "set",
                              "an object of dotted-path assignments");
        }
        entry.set = set;
      }
      if (!r.finish()) return false;
      axis.entries.push_back(std::move(entry));
    }
    out.push_back(std::move(axis));
  }
  return true;
}

}  // namespace

std::string validate_scheduler_spec(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.empty()) return "empty scheduler spec";
  const std::string& kind = parts[0];
  const auto arity = [&](std::size_t max_args) -> std::string {
    if (parts.size() - 1 > max_args) {
      return "scheduler '" + kind + "' takes at most " +
             std::to_string(max_args) + " argument(s); got '" + spec + "'";
    }
    return "";
  };
  const auto arg = [&](std::size_t i, double dflt, double& out) -> bool {
    out = dflt;
    if (parts.size() <= i) return true;
    return parse_num(parts[i], out);
  };
  double a = 0, b = 0;
  if (kind == "bernoulli") {
    if (auto e = arity(1); !e.empty()) return e;
    if (!arg(1, 0.5, a)) return "malformed bernoulli probability in '" +
                                spec + "'";
    if (!(a >= 0.0 && a <= 1.0)) {
      return "bernoulli probability must be in [0, 1]; got '" + spec + "'";
    }
    return "";
  }
  if (kind == "full-g" || kind == "full-gprime") return arity(0);
  if (kind == "flicker") {
    if (auto e = arity(2); !e.empty()) return e;
    if (!arg(1, 64, a) || !arg(2, 32, b) || a != std::floor(a) ||
        b != std::floor(b)) {
      return "malformed flicker:period:duty in '" + spec + "'";
    }
    if (!(a >= 1.0) || !(b >= 0.0 && b <= a)) {
      return "flicker needs period >= 1 and 0 <= duty <= period; got '" +
             spec + "'";
    }
    return "";
  }
  if (kind == "burst") {
    if (auto e = arity(2); !e.empty()) return e;
    if (!arg(1, 16, a) || !arg(2, 0.5, b) || a != std::floor(a)) {
      return "malformed burst:epoch:p in '" + spec + "'";
    }
    if (!(a >= 1.0) || !(b >= 0.0 && b <= 1.0)) {
      return "burst needs epoch >= 1 and p in [0, 1]; got '" + spec + "'";
    }
    return "";
  }
  if (kind == "anti") {
    if (auto e = arity(2); !e.empty()) return e;
    if (!arg(1, 7, a) || !arg(2, 1.0 / 16.0, b) || a != std::floor(a)) {
      return "malformed anti:log_delta:pivot in '" + spec + "'";
    }
    if (!(a >= 1.0 && a <= 62.0) || !(b > 0.0 && b <= 1.0)) {
      return "anti needs log_delta in [1, 62] and pivot in (0, 1]; got '" +
             spec + "'";
    }
    return "";
  }
  return unknown_spec("scheduler", kind,
                      "bernoulli:p, full-g, full-gprime, "
                      "flicker:period:duty, burst:epoch:p, "
                      "anti[:log_delta[:pivot]]");
}

std::string validate_round_threads_value(const std::string& value,
                                         std::size_t& out) {
  if (value.empty()) return "round-threads needs a positive integer; got ''";
  for (char c : value) {
    if (c < '0' || c > '9') {
      return "round-threads needs a positive integer; got '" + value + "'";
    }
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || parsed == 0) {
    return "round-threads must be >= 1 (serial is 1); got '" + value + "'";
  }
  out = static_cast<std::size_t>(parsed);
  return "";
}

std::unique_ptr<sim::LinkScheduler> build_scheduler(const std::string& spec) {
  DG_EXPECTS(validate_scheduler_spec(spec).empty());
  const auto parts = split(spec, ':');
  const std::string& kind = parts[0];
  const auto arg = [&](std::size_t i, double dflt) {
    double out = dflt;
    if (parts.size() > i) parse_num(parts[i], out);
    return out;
  };
  if (kind == "full-g") return std::make_unique<sim::ConstantScheduler>(false);
  if (kind == "full-gprime") {
    return std::make_unique<sim::ConstantScheduler>(true);
  }
  if (kind == "flicker") {
    return std::make_unique<sim::FlickerScheduler>(
        static_cast<sim::Round>(arg(1, 64)),
        static_cast<sim::Round>(arg(2, 32)));
  }
  if (kind == "burst") {
    return std::make_unique<sim::BurstScheduler>(
        static_cast<sim::Round>(arg(1, 16)), arg(2, 0.5));
  }
  if (kind == "anti") {
    const int log_delta = static_cast<int>(arg(1, 7));
    return std::make_unique<sim::AntiScheduleAdversary>(
        [log_delta](sim::Round t) {
          return baseline::decay_probability(t, log_delta);
        },
        /*pivot=*/arg(2, 1.0 / 16.0));
  }
  return std::make_unique<sim::BernoulliScheduler>(arg(1, 0.5));
}

graph::DualGraph build_topology(const TopologySpec& t, Rng& rng) {
  if (t.type == "grid") return graph::grid(t.cols, t.rows, t.spacing, t.r);
  if (t.type == "clique") return graph::clique_cluster(t.k);
  if (t.type == "star") return graph::star_ring(t.k, t.r);
  if (t.type == "line") return graph::line(t.k, t.spacing, t.r);
  if (t.type == "bridged") return graph::bridged_clusters(t.k, t.r);
  if (t.type == "contention_star") return graph::contention_star(t.k);
  if (t.type == "disjoint_cliques") {
    return graph::disjoint_cliques(t.cliques, t.k);
  }
  DG_EXPECTS(t.type == "geometric");  // deployment never builds a graph
  graph::GeometricSpec spec;
  spec.n = t.n;
  spec.side = t.side;
  spec.r = t.r;
  spec.p_grey_reliable = t.p_grey_reliable;
  spec.p_grey_unreliable = t.p_grey_unreliable;
  return graph::random_geometric(spec, rng);
}

CampaignParse parse_campaign_text(const std::string& text,
                                  const std::string& filename) {
  CampaignParse out;
  json::Value doc;
  const json::ParseError perr = json::parse(text, doc);
  if (!perr.ok()) {
    std::ostringstream os;
    os << filename << ':' << perr.line << ':' << perr.col << ": "
       << perr.message;
    out.error = os.str();
    return out;
  }

  Ctx ctx(filename);
  const auto finish = [&]() {
    out.error = ctx.error();
    return out;
  };
  if (!doc.is_object()) {
    ctx.fail(doc, "",
             std::string("campaign document must be an object; got ") +
                 doc.kind_name());
    return finish();
  }
  ObjectReader top(ctx, doc, "", kTopLevelKeys);
  if (!top.str("campaign", out.campaign.name)) return finish();
  if (!valid_name(out.campaign.name)) {
    ctx.fail(doc, "campaign",
             "campaign needs a \"campaign\" name of [A-Za-z0-9_.-]+");
    return finish();
  }
  const json::Value* scenarios = top.get("scenarios");
  if (scenarios == nullptr || !scenarios->is_array() ||
      scenarios->items().empty()) {
    ctx.fail(scenarios != nullptr ? *scenarios : doc, "scenarios",
             "campaign needs a non-empty \"scenarios\" array");
    return finish();
  }
  if (!top.finish()) return finish();

  std::set<std::string> scenario_names;
  std::set<std::string> variant_names;
  for (std::size_t i = 0; i < scenarios->items().size(); ++i) {
    const json::Value& sv = scenarios->items()[i];
    const std::string path = "scenarios[" + std::to_string(i) + "]";
    if (!sv.is_object()) {
      ctx.fail(sv, path,
               std::string("scenario must be an object; got ") +
                   sv.kind_name());
      return finish();
    }
    const json::Value* name_val = sv.find("name");
    std::string base_name;
    if (name_val == nullptr || !name_val->is_string() ||
        !valid_name(base_name = name_val->as_string())) {
      ctx.fail(name_val != nullptr ? *name_val : sv, path,
               "scenario needs a \"name\" of [A-Za-z0-9_.-]+");
      return finish();
    }
    if (!scenario_names.insert(base_name).second) {
      ctx.fail(*name_val, path,
               "duplicate scenario name '" + base_name + "'");
      return finish();
    }

    std::vector<Axis> axes;
    if (const json::Value* m = sv.find("matrix")) {
      if (!parse_matrix(ctx, *m, path + ".matrix", axes)) return finish();
    }

    // Odometer over the axis cross-product (declaration order, last axis
    // fastest -- the loop-nest order of the hand-written benches).
    std::vector<std::size_t> idx(axes.size(), 0);
    while (true) {
      json::Value concrete = sv;  // deep copy
      concrete.remove("matrix");
      std::string variant = base_name;
      std::string variant_path = path;
      std::uint64_t offset = 0;
      bool patch_ok = true;
      std::string bad_path;
      for (std::size_t a = 0; a < axes.size() && patch_ok; ++a) {
        const AxisEntry& e = axes[a].entries[idx[a]];
        variant += "/" + e.tag;
        variant_path += "{" + axes[a].name + "=" + e.tag + "}";
        offset += e.seed_offset;
        if (e.set != nullptr) {
          for (const auto& [p, v] : e.set->members()) {
            if (!concrete.set_path(p, v)) {
              patch_ok = false;
              bad_path = p;
              break;
            }
          }
        }
      }
      if (!patch_ok) {
        ctx.fail(sv, variant_path,
                 "matrix set path '" + bad_path +
                     "' steps through a non-object value");
        return finish();
      }
      ScenarioSpec spec;
      if (!parse_scenario(ctx, concrete, variant_path, spec)) {
        return finish();
      }
      spec.name = variant;
      spec.seed += offset;
      if (!variant_names.insert(spec.name).second) {
        ctx.fail(sv, path, "duplicate variant name '" + spec.name + "'");
        return finish();
      }
      out.campaign.variants.push_back(std::move(spec));

      // Advance the odometer; wrapping past the first axis ends the sweep.
      bool done = true;
      for (std::size_t a = axes.size(); a > 0;) {
        --a;
        if (++idx[a] < axes[a].entries.size()) {
          done = false;
          break;
        }
        idx[a] = 0;
      }
      if (done) break;
    }
  }
  return finish();
}

CampaignParse parse_campaign_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    CampaignParse out;
    out.error = path + ": cannot open file";
    return out;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_campaign_text(buffer.str(), path);
}

}  // namespace dg::scn
