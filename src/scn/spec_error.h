// One shared formatter for "unknown spec prefix" diagnostics.
//
// The textual spec grammars (channel specs in phys/, fault and traffic
// specs in their own spec.cpp, scheduler specs and stage splices in scn/)
// all reject an unrecognized leading token.  Routing every rejection
// through unknown_spec() keeps the wording identical across subsystems, so
// dglab/dgcampaign users see one error shape no matter which grammar they
// typo'd.
#pragma once

#include <string>

namespace dg::scn {

/// "unknown <what> '<got>' (valid: <valid>)" -- `what` names the grammar
/// ("channel", "fault", "traffic", "scheduler", "stage", "slab"), `got` is
/// the offending token, `valid` enumerates the accepted prefixes.
inline std::string unknown_spec(const std::string& what,
                                const std::string& got,
                                const std::string& valid) {
  return "unknown " + what + " '" + got + "' (valid: " + valid + ")";
}

}  // namespace dg::scn
