// RoundPipeline -- the ordered stage graph one engine executes per round.
//
// The pipeline is a flat slot list: core stages (owned by the engine,
// appended at construction) interleaved with spliced stages (owned here,
// inserted after their anchor stage).  The driver in Engine::run_pipeline
// walks the slots in order; each slot carries its profiler slot index
// (assigned in pipeline order whenever telemetry is (re)installed) and
// whether the on_round_begin observer fan-out fires before it -- the seam
// that keeps the fault stage *before* round-begin observers, exactly where
// apply_faults() ran in the monolithic loop.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/stage.h"

namespace dg::sim {

class RoundPipeline {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  struct Slot {
    RoundStage* stage = nullptr;
    /// Index into the profiler's registered stages; npos while telemetry
    /// is off.
    std::size_t profile_slot = npos;
    /// Fire the on_round_begin observer fan-out before this stage.
    bool round_begin_before = false;
    /// True for spliced (pipeline-owned) stages; insert_after() chains
    /// same-anchor splices in installation order through this flag.
    bool spliced = false;
  };

  /// Appends a core stage (caller-owned, must outlive the pipeline).
  void append(RoundStage* stage, bool round_begin_before = false);

  /// Index of the slot whose stage name is `name`, or npos.
  std::size_t find(const std::string& name) const;

  /// Inserts an owned (spliced) stage after the named anchor stage and any
  /// splices already chained behind it, so same-anchor splices run in
  /// installation order.  The anchor must exist.
  void insert_after(const std::string& anchor,
                    std::unique_ptr<RoundStage> stage);

  std::vector<Slot>& slots() noexcept { return slots_; }
  const std::vector<Slot>& slots() const noexcept { return slots_; }
  std::size_t size() const noexcept { return slots_.size(); }

 private:
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<RoundStage>> owned_;
};

}  // namespace dg::sim
