#include "sim/scheduler.h"

#include <cmath>
#include <type_traits>

#include "util/assert.h"
#include "util/rng.h"
#include "util/simd.h"

namespace dg::sim {

// ---- BernoulliScheduler ----

BernoulliScheduler::BernoulliScheduler(double p) : p_(p) {
  DG_EXPECTS(p >= 0.0 && p <= 1.0);
}

void BernoulliScheduler::commit(const graph::DualGraph&, std::uint64_t seed) {
  seed_ = seed;
  // Map p to a 64-bit threshold once; active() compares a per-(edge, round)
  // hash against it.
  const long double scaled =
      static_cast<long double>(p_) * 18446744073709551615.0L;
  threshold_ = static_cast<std::uint64_t>(scaled);
}

bool BernoulliScheduler::active(graph::UnreliableEdgeId edge,
                                Round round) const {
  if (p_ >= 1.0) return true;
  if (p_ <= 0.0) return false;
  const std::uint64_t h = splitmix64(
      seed_ ^ splitmix64(static_cast<std::uint64_t>(edge) * 0x100000001b3ULL +
                         static_cast<std::uint64_t>(round)));
  return h < threshold_;
}

void BernoulliScheduler::fill_round(Round round, EdgeBitmap& out) const {
  if (p_ >= 1.0) {
    out.set_all();
    return;
  }
  if (p_ <= 0.0) {
    out.clear();
    return;
  }
  // Same per-edge hash as active(), vectorized 4 edges per step on AVX2
  // hardware (scalar word accumulation elsewhere); the kernel is
  // property-tested bit-for-bit against active() in
  // tests/scheduler_bitmap_test.cpp.
  util::simd::fill_hash_threshold(out.words().data(), out.size(), seed_,
                                  0x100000001b3ULL,
                                  static_cast<std::uint64_t>(round),
                                  threshold_);
}

std::string BernoulliScheduler::name() const {
  return "bernoulli(p=" + std::to_string(p_) + ")";
}

// ---- FlickerScheduler ----

FlickerScheduler::FlickerScheduler(Round period, Round duty)
    : period_(period), duty_(duty) {
  DG_EXPECTS(period >= 1);
  DG_EXPECTS(duty >= 0 && duty <= period);
}

void FlickerScheduler::commit(const graph::DualGraph& g, std::uint64_t seed) {
  Rng rng(seed, /*stream=*/0x1f1cULL);
  phase_.resize(g.unreliable_edge_count());
  for (auto& p : phase_) {
    p = static_cast<Round>(rng.below(static_cast<std::uint64_t>(period_)));
  }
}

bool FlickerScheduler::active(graph::UnreliableEdgeId edge,
                              Round round) const {
  DG_EXPECTS(edge < phase_.size());
  const Round pos = (round + phase_[edge]) % period_;
  return pos < duty_;
}

void FlickerScheduler::fill_round(Round round, EdgeBitmap& out) const {
  DG_EXPECTS(out.size() <= phase_.size());
  static_assert(std::is_same_v<Round, std::int64_t>);
  const Round base = round % period_;
  util::simd::fill_flicker(out.words().data(), out.size(), phase_.data(),
                           base, period_, duty_);
}

std::string FlickerScheduler::name() const {
  return "flicker(period=" + std::to_string(period_) +
         ",duty=" + std::to_string(duty_) + ")";
}

// ---- BurstScheduler ----

BurstScheduler::BurstScheduler(Round epoch_length, double p_up)
    : epoch_length_(epoch_length), p_up_(p_up) {
  DG_EXPECTS(epoch_length >= 1);
  DG_EXPECTS(p_up >= 0.0 && p_up <= 1.0);
}

void BurstScheduler::commit(const graph::DualGraph&, std::uint64_t seed) {
  seed_ = seed;
  const long double scaled =
      static_cast<long double>(p_up_) * 18446744073709551615.0L;
  threshold_ = static_cast<std::uint64_t>(scaled);
}

bool BurstScheduler::active(graph::UnreliableEdgeId edge, Round round) const {
  if (p_up_ >= 1.0) return true;
  if (p_up_ <= 0.0) return false;
  const auto epoch = static_cast<std::uint64_t>((round - 1) / epoch_length_);
  const std::uint64_t h = splitmix64(
      seed_ ^ splitmix64(static_cast<std::uint64_t>(edge) * 0x9e3779b1ULL +
                         epoch));
  return h < threshold_;
}

void BurstScheduler::fill_round(Round round, EdgeBitmap& out) const {
  if (p_up_ >= 1.0) {
    out.set_all();
    return;
  }
  if (p_up_ <= 0.0) {
    out.clear();
    return;
  }
  const auto epoch = static_cast<std::uint64_t>((round - 1) / epoch_length_);
  util::simd::fill_hash_threshold(out.words().data(), out.size(), seed_,
                                  0x9e3779b1ULL, epoch, threshold_);
}

std::string BurstScheduler::name() const {
  return "burst(epoch=" + std::to_string(epoch_length_) +
         ",p=" + std::to_string(p_up_) + ")";
}

// ---- AntiScheduleAdversary ----

AntiScheduleAdversary::AntiScheduleAdversary(
    ProbabilitySchedule target_schedule, double pivot)
    : schedule_(std::move(target_schedule)), pivot_(pivot) {
  DG_EXPECTS(schedule_ != nullptr);
  DG_EXPECTS(pivot >= 0.0 && pivot <= 1.0);
}

void AntiScheduleAdversary::commit(const graph::DualGraph&, std::uint64_t) {}

bool AntiScheduleAdversary::active(graph::UnreliableEdgeId,
                                   Round round) const {
  // High target probability -> flood the topology with unreliable edges to
  // maximize contention; low probability -> withdraw them so too few
  // neighbors transmit.
  return schedule_(round) > pivot_;
}

void AntiScheduleAdversary::fill_round(Round round, EdgeBitmap& out) const {
  // All-or-nothing per round: evaluate the target schedule once.
  if (schedule_(round) > pivot_) {
    out.set_all();
  } else {
    out.clear();
  }
}

std::string AntiScheduleAdversary::name() const { return "anti-schedule"; }

// ---- ExplicitScheduler ----

ExplicitScheduler::ExplicitScheduler(std::vector<std::vector<bool>> pattern)
    : pattern_(std::move(pattern)) {
  DG_EXPECTS(!pattern_.empty());
}

void ExplicitScheduler::commit(const graph::DualGraph& g, std::uint64_t) {
  packed_.clear();
  packed_.reserve(pattern_.size());
  for (const auto& row : pattern_) {
    DG_EXPECTS(row.size() == g.unreliable_edge_count());
    EdgeBitmap packed(row.size());
    for (std::size_t e = 0; e < row.size(); ++e) {
      if (row[e]) packed.set(e);
    }
    packed_.push_back(std::move(packed));
  }
}

bool ExplicitScheduler::active(graph::UnreliableEdgeId edge,
                               Round round) const {
  DG_EXPECTS(round >= 1);
  const auto& row =
      pattern_[static_cast<std::size_t>((round - 1) %
                                        static_cast<Round>(pattern_.size()))];
  DG_EXPECTS(edge < row.size());
  return row[edge];
}

void ExplicitScheduler::fill_round(Round round, EdgeBitmap& out) const {
  DG_EXPECTS(round >= 1);
  DG_EXPECTS(!packed_.empty());  // requires commit()
  const auto& packed =
      packed_[static_cast<std::size_t>((round - 1) %
                                       static_cast<Round>(packed_.size()))];
  DG_EXPECTS(out.size() == packed.size());
  out.copy_from(packed);
}

}  // namespace dg::sim
