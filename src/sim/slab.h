// Named per-round state slabs and slab sets.
//
// The round pipeline (sim/pipeline.h) schedules stages by the slabs they
// declare to read and write.  A slab is one of the engine's per-round
// scratch structures; the enum below is the closed catalog.  Declarations
// are a checked property: the pipeline validates spliced stages' write
// sets at install time (see sim/splice.h), which is what turns PR 6's
// sharding-safety convention ("blocks write disjoint per-vertex state")
// into something the engine can reject violations of.
#pragma once

#include <cstdint>
#include <string>

namespace dg::sim {

/// The engine's per-round state slabs, in catalog order.
enum class Slab : std::uint32_t {
  kTransmitBitmap = 0,  ///< bit v = v transmits this round
  kPacketSlab = 1,      ///< outgoing packet of v iff v transmits
  kHeardWords = 2,      ///< packed channel verdict per vertex
  kCrashedBitmap = 3,   ///< bit v = v is down
  kRngStreams = 4,      ///< per-vertex process random streams
  kDeliveryMask = 5,    ///< bit u = suppress delivery to u (splice-owned)
  kActivityMask = 6,    ///< bit v = v's word may hear something this round
};
inline constexpr std::size_t kSlabCount = 7;

/// A set of slabs, one bit per Slab enumerator.
using SlabSet = std::uint32_t;

inline constexpr SlabSet slab_bit(Slab s) {
  return SlabSet{1} << static_cast<std::uint32_t>(s);
}

inline constexpr bool slab_set_contains(SlabSet set, Slab s) {
  return (set & slab_bit(s)) != 0;
}

inline const char* slab_name(Slab s) {
  switch (s) {
    case Slab::kTransmitBitmap: return "transmit_bitmap";
    case Slab::kPacketSlab: return "packet_slab";
    case Slab::kHeardWords: return "heard_words";
    case Slab::kCrashedBitmap: return "crashed_bitmap";
    case Slab::kRngStreams: return "rng_streams";
    case Slab::kDeliveryMask: return "delivery_mask";
    case Slab::kActivityMask: return "activity_mask";
  }
  return "?";
}

/// Comma-separated catalog for error messages.
inline std::string valid_slab_names() {
  std::string out;
  for (std::size_t i = 0; i < kSlabCount; ++i) {
    if (!out.empty()) out += ", ";
    out += slab_name(static_cast<Slab>(i));
  }
  return out;
}

/// Parses a slab name; returns false (output untouched) if unknown.
inline bool parse_slab(const std::string& name, Slab& out) {
  for (std::size_t i = 0; i < kSlabCount; ++i) {
    const auto s = static_cast<Slab>(i);
    if (name == slab_name(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

/// The core stage owning (writing) each slab, or "" for slabs reserved for
/// spliced stages (only kDeliveryMask today).  Spliced stages may not write
/// an owned slab; the validator names the owner in its rejection.
inline const char* slab_owner(Slab s) {
  switch (s) {
    case Slab::kTransmitBitmap: return "transmit";
    case Slab::kPacketSlab: return "transmit";
    case Slab::kHeardWords: return "compute";
    case Slab::kCrashedBitmap: return "fault";
    case Slab::kRngStreams: return "output_flush";
    case Slab::kDeliveryMask: return "";
    case Slab::kActivityMask: return "frontier";
  }
  return "";
}

/// Comma-separated names of the slabs in `set`, catalog order.
inline std::string slab_set_names(SlabSet set) {
  std::string out;
  for (std::size_t i = 0; i < kSlabCount; ++i) {
    const auto s = static_cast<Slab>(i);
    if (!slab_set_contains(set, s)) continue;
    if (!out.empty()) out += ", ";
    out += slab_name(s);
  }
  return out;
}

}  // namespace dg::sim
