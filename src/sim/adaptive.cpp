#include "sim/adaptive.h"

#include "util/assert.h"

namespace dg::sim {

void TargetedJammer::plan_round(Round, const graph::DualGraph& g,
                                const std::vector<bool>& transmitting) {
  DG_EXPECTS(transmitting.size() == g.size());
  DG_EXPECTS(target_ < g.size());
  if (include_.size() != g.unreliable_edge_count()) {
    include_.resize(g.unreliable_edge_count());
  } else {
    include_.clear();
  }

  // How many reliable neighbors of the target transmit this round?
  std::size_t reliable_transmitters = 0;
  for (graph::Vertex v : g.g_neighbors(target_)) {
    if (transmitting[v]) ++reliable_transmitters;
  }

  if (reliable_transmitters == 1) {
    // A lone reliable transmitter would deliver: add one unreliable
    // transmitter to collide with it, if any exists.
    for (const auto& [edge, v] : g.unreliable_incident(target_)) {
      if (transmitting[v]) {
        include_.set(edge);
        ++interventions_;
        break;
      }
    }
  } else if (reliable_transmitters == 0) {
    // No reliable traffic: a lone unreliable transmitter would deliver.
    // Include none (silence) -- unless we can include two to collide, which
    // is equivalent; excluding is simplest and always available.
  }
  // reliable_transmitters >= 2: collision already; include nothing.
}

bool TargetedJammer::active(graph::UnreliableEdgeId edge) const {
  DG_EXPECTS(edge < include_.size());
  return include_.test(edge);
}

void TargetedJammer::fill_round(Bitmap& out) const {
  DG_EXPECTS(out.size() == include_.size());
  out.copy_from(include_);
}

}  // namespace dg::sim
