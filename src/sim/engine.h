// The synchronous-round execution engine (Section 2 semantics).
//
// Each round: every process decides transmit-or-receive; the round topology
// is E plus the unreliable edges the (pre-committed, oblivious) scheduler
// includes; a listening node receives a packet iff exactly one of its
// round-topology neighbors transmitted; otherwise it receives the null
// indicator (no collision detection).  Transmitters hear nothing.
//
// The engine is protocol-agnostic: environments and protocol wrappers
// interact with typed Process subclasses *between* calls to run_round(),
// which realizes the paper's inputs -> transmit -> receive -> outputs round
// micro-structure.
//
// Reception physics is delegated to a phys::ChannelModel: the default
// DualGraphChannel realizes the Section 2 single-transmitter rule over the
// scheduled round topology, while SinrChannel replaces it with SINR
// ground-truth physics over an embedding.  The engine itself only owns the
// round structure: transmit decisions, the channel call, delivery of the
// channel's verdicts, and observer fan-out.
//
// Hot-path layout: outgoing packets live in a flat per-vertex slab gated by
// a transmit bitmask (no per-round optional churn), and the channel folds
// heard-count + heard-from into a single packed word per vertex (see
// phys/channel.h for the contract).  None of this changes the observable
// round semantics (tests/determinism_test.cpp pins golden execution
// digests).
// Sharded rounds: when round_threads > 1, every process is shard_safe()
// and the channel is shardable(), run_round() partitions the vertices into
// cache-aligned blocks (multiples of 64 vertices, so each block owns whole
// transmit-bitmap words) and runs the transmit, reception and output phases
// block-parallel on a persistent thread pool.  Determinism is preserved
// structurally, not by scheduling: blocks write disjoint per-vertex state,
// each vertex draws only from its own rng stream, the channel's sharded
// reception writes only its own receiver range, and observers are fanned
// out *serially* between the phases in ascending vertex order -- the exact
// event stream of the serial loop.  Golden digests and campaign counters
// are therefore byte-identical at any thread count
// (tests/engine_shard_test.cpp sweeps the contract).
// Fault injection: an installed fault::FaultPlan is consulted serially at
// the top of every round (both loops), before any parallel phase starts.
// Crashed vertices are skipped in the transmit, reception and output
// phases -- no process calls, no observer events, rng stream paused -- so
// a fault schedule stays byte-identical across round_threads too.
//
// Round pipeline: internally the round is an explicit stage pipeline
// (fault -> transmit -> prepare_round -> compute -> receive ->
// output_flush; see sim/stage.h for the stage contract and
// docs/PIPELINE.md for the slab catalog).  One driver, run_pipeline(),
// serves both dispatches: a stage declaring vertex_disjoint_writes() runs
// block-parallel in sharded rounds, everything else serial, and the
// serial-replay / RoundHooks checkpoints are stage hooks.  Scenario
// splices (sim/splice.h) insert extra stages after their anchor without
// engine edits; their write sets are validated against the core stages'
// slab ownership first (see splice_stage()).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/plan.h"
#include "graph/dual_graph.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace_sink.h"
#include "phys/channel.h"
#include "sim/adaptive.h"
#include "sim/engine_config.h"
#include "sim/observer.h"
#include "sim/packet.h"
#include "sim/pipeline.h"
#include "sim/process.h"
#include "sim/scheduler.h"
#include "sim/splice.h"
#include "util/bitmap.h"
#include "util/thread_pool.h"

namespace dg::sim {

/// Assigns distinct ProcessIds to graph vertices (the paper's id() mapping,
/// unknown to the processes).  Ids are pseudorandom 64-bit values so no
/// process can infer topology from id structure.
std::vector<ProcessId> assign_ids(std::size_t n, std::uint64_t seed);

/// Serial checkpoints between the phases of a round, fired on the engine's
/// calling thread in both the serial and the sharded round loop.  Protocol
/// wrappers that buffer per-vertex callbacks during the (possibly parallel)
/// reception and output phases flush them here, in ascending vertex order,
/// to reproduce the serial loop's callback stream exactly (see
/// lb/simulation.h for the LbSimulation fan-out that motivates this).
class RoundHooks {
 public:
  virtual ~RoundHooks() = default;
  /// After every process's receive() for `round` and after the reception
  /// observers have been fanned out.
  virtual void after_receive_phase(Round round) = 0;
  /// After every process's end_round() for `round`, before on_round_end.
  virtual void after_output_phase(Round round) = 0;
};

struct EngineStages;  ///< the core stage set (defined in sim/engine.cpp)

class Engine {
 public:
  /// The graph and scheduler must outlive the engine.  `processes[v]` is the
  /// process at graph vertex v; the scheduler is committed here (with a
  /// stream derived from master_seed), before any round executes.  Wraps the
  /// scheduler in an engine-owned phys::DualGraphChannel.
  Engine(const graph::DualGraph& g, LinkScheduler& scheduler,
         std::vector<std::unique_ptr<Process>> processes,
         std::uint64_t master_seed);

  /// Same, but with an explicit channel model deciding reception (e.g.
  /// phys::SinrChannel).  The channel must outlive the engine and not be
  /// shared; it is bound here, before any round executes.
  Engine(const graph::DualGraph& g, phys::ChannelModel& channel,
         std::vector<std::unique_ptr<Process>> processes,
         std::uint64_t master_seed);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Applies a whole configuration in one call, in a fixed order: thread
  /// cap, fault plan, spliced stages, telemetry (splices first so the
  /// profiler registers their per-stage timers).  The preferred mutator
  /// surface; the individual setters below forward here.  Splices must
  /// have passed validate_splice_specs().
  void configure(const EngineConfig& config);

  /// Splices one extra stage into the round pipeline after its anchor
  /// stage, validating its write set against the core stages' slab
  /// ownership and the already-installed splices.  Returns "" on success
  /// or the violation message (the pipeline is unchanged on failure).
  std::string splice_stage(const SpliceSpec& spec);

  /// Splices installed so far, in installation order.
  const std::vector<SpliceSpec>& splices() const noexcept {
    return splices_;
  }

  /// Observers are invoked in registration order; they must outlive the
  /// engine.
  void add_observer(Observer* observer);

  /// Installs an ADAPTIVE adversary (see sim/adaptive.h) that overrides the
  /// oblivious scheduler for unreliable edges.  Deliberately outside the
  /// paper's model -- used only by the E12 impossibility counterfactual.
  /// Requires a scheduler-driven channel (the default DualGraphChannel).
  void set_adaptive_adversary(AdaptiveAdversary* adversary) {
    channel_->set_adaptive_adversary(adversary);
  }

  /// The channel model deciding reception for this execution.
  const phys::ChannelModel& channel() const noexcept { return *channel_; }

  /// Rounds executed so far (0 before the first run_round()).
  Round round() const noexcept { return round_; }

  /// The thread budget new engines start with: the DG_ROUND_THREADS
  /// environment variable ("max" = hardware concurrency, a positive integer
  /// = that many threads, unset/invalid = 1).
  static std::size_t default_round_threads();

  /// Whether new engines start with activity-driven sparse rounds enabled:
  /// the DG_SPARSE_ROUNDS environment variable ("0"/"off"/"false" disables;
  /// anything else, including unset, enables).
  static bool default_sparse_rounds();

  /// Enables/disables activity-driven sparse rounds (frontier masks,
  /// dirty-word heard_ zeroing, batched silent steps; see docs/PIPELINE.md).
  /// Like round_threads, the knob is an upper bound, never a semantics
  /// switch: the engine falls back to the dense dispatch whenever the
  /// channel cannot bound the frontier (frontier_capable() false) or a
  /// spliced stage is installed (splices read heard_ over every vertex),
  /// and results are byte-identical either way.  Disabling mid-run flushes
  /// parked processes (batched silent_steps catch-up) first.
  /// Deprecated forwarder for configure().
  void set_sparse_rounds(bool on);
  bool sparse_rounds() const noexcept { return sparse_enabled_; }
  /// True when the next round will take the sparse dispatch.
  bool sparse_rounds_active() const noexcept { return sparse_supported_; }

  /// Caps the threads a round may use (>= 1; 1 = the serial loop).  The
  /// engine still falls back to the serial loop whenever the vertex count
  /// yields fewer than two blocks, a process is not shard_safe() or the
  /// channel is not shardable() -- the knob is an upper bound, never a
  /// semantics switch (results are byte-identical for every value).
  /// Deprecated forwarder for configure(); new call sites should build an
  /// EngineConfig.
  void set_round_threads(std::size_t threads);
  std::size_t round_threads() const noexcept { return round_threads_; }

  /// Installs a fault plan (nullptr to remove): the plan is bound to the
  /// execution's graph and master seed here, then consulted serially at
  /// the top of every subsequent round.  `listener` (optional) receives
  /// crash/recover notifications for wrapper-level bookkeeping -- before
  /// Process::on_crash on a crash, after Process::on_recover on a
  /// recovery (see fault/plan.h).  Both must outlive the engine.
  /// Deprecated forwarder for configure().
  void set_fault_plan(fault::FaultPlan* plan,
                      fault::FaultListener* listener = nullptr);

  /// True while vertex v is crashed by the installed fault plan.
  bool crashed(graph::Vertex v) const { return crashed_.test(v); }
  /// Crashed vertices this round (count() for a population probe).
  const Bitmap& crashed_vertices() const noexcept { return crashed_; }

  /// Installs telemetry (both nullptr to remove; they must outlive the
  /// engine).  The registry receives LOGICAL per-round counters (rounds,
  /// transmissions, delivery/collision/silence verdicts, fault events) that
  /// are byte-identical across round_threads -- they are tallied in a
  /// serial pass over the channel's verdicts in both round loops -- plus
  /// TIMING phase/dispatch metrics that are wall-clock and never gated.
  /// The sink receives per-round stage slices and crash/recover instants.
  /// Deprecated forwarder for configure().
  void set_telemetry(obs::Registry* registry,
                     obs::TraceSink* sink = nullptr);

  /// Installs the serial between-phase checkpoints (nullptr to remove).
  /// The hooks object must outlive the engine and is fired by both round
  /// loops, so wrappers can keep buffering enabled regardless of which
  /// path a given round takes.
  void set_round_hooks(RoundHooks* hooks) { hooks_ = hooks; }

  /// Executes one synchronous round (steps 2-4 of the round structure;
  /// step 1, environment inputs, happens before this call via typed process
  /// APIs).
  void run_round();

  void run_rounds(Round count);

  const graph::DualGraph& network() const noexcept { return *graph_; }
  std::size_t process_count() const noexcept { return processes_.size(); }

  Process& process(graph::Vertex v);
  const Process& process(graph::Vertex v) const;

  /// The process-local random stream for vertex v (exposed so protocol
  /// wrappers can make *input-side* random choices attributable to the same
  /// process stream; the engine itself never draws from these between a
  /// process's own steps).
  Rng& process_rng(graph::Vertex v);

 private:
  friend struct EngineStages;  ///< the core stage set, sim/engine.cpp

  void init(std::uint64_t master_seed);  ///< shared constructor tail

  /// Vertices per shard block for the current thread cap: the vertex range
  /// split into ~4 blocks per thread (dynamic claiming evens out skewed
  /// blocks), rounded up to a multiple of 64 so every block owns whole
  /// bitmap words and exclusive heard_ cache lines.
  std::size_t shard_block_size() const;

  /// The one round driver (both dispatches): walks the pipeline slots in
  /// order, bracketing each active stage with its profiler slot and
  /// dispatching vertex-disjoint-write stages block-parallel when
  /// `sharded` (block_size/blocks describe the partition; unused serial).
  void run_pipeline(bool sharded, std::size_t block_size,
                    std::size_t blocks);

  // configure() bodies: the real mutators behind the deprecated setter
  // forwarders (forwarders build one-field configs, so these must not
  // call configure() back).
  void apply_round_threads(std::size_t threads);
  void apply_fault_plan(fault::FaultPlan* plan,
                        fault::FaultListener* listener);
  void apply_telemetry(obs::Registry* registry, obs::TraceSink* sink);
  void apply_sparse_rounds(bool on);

  /// Recomputes sparse_supported_ from the knob, the channel and the
  /// installed splices; allocates the sparse bookkeeping on first support.
  void update_sparse_support();

  /// Resets the sparse bookkeeping to "everyone stepped through round_,
  /// nobody parked (crashed vertices parked forever)" -- the state after a
  /// dense round, used when sparse dispatch (re-)engages.
  void reset_sparse_state();

  /// Catches every parked process up to round_ via one batched
  /// silent_steps() call, then resets the bookkeeping -- required before
  /// the dense dispatch (which steps every vertex) can take over mid-run.
  void flush_parked();

  /// (Re)creates the profiler against registry_ and assigns every pipeline
  /// slot its timing slot, in pipeline order.  Registry counters are keyed
  /// by name, so a rebuild keeps accumulating into the same counters.
  void rebuild_profiler();

  /// Serial fault checkpoint at the top of both round loops: asks the plan
  /// for this round's events and applies them (crashed_ bitmap, process
  /// and listener callbacks) before any phase -- parallel or not -- runs.
  void apply_faults(Round t);

  /// Serial logical-metrics pass over the round's frozen verdicts
  /// (transmitting_, heard_, crashed_), identical in both round loops --
  /// the reason logical registry dumps are byte-identical across
  /// round_threads.  Only runs when a registry is installed.
  void record_logical_round();

  const graph::DualGraph* graph_;
  std::unique_ptr<phys::ChannelModel> owned_channel_;  ///< scheduler ctor only
  phys::ChannelModel* channel_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Rng> rngs_;
  // Per-event fan-out lists (filtered by Observer::interest() at
  // registration, in registration order), so uninterested observers cost
  // nothing per event.
  std::vector<Observer*> obs_round_begin_;
  std::vector<Observer*> obs_transmit_;
  std::vector<Observer*> obs_receive_;
  std::vector<Observer*> obs_silence_;
  std::vector<Observer*> obs_round_end_;
  std::vector<Observer*> obs_fault_;
  Round round_ = 0;

  // Telemetry (see set_telemetry).  Logical counter slots are cached
  // registry references so the per-round pass never pays a map lookup.
  obs::Registry* registry_ = nullptr;
  obs::TraceSink* trace_sink_ = nullptr;
  std::unique_ptr<obs::PhaseProfiler> profiler_;
  std::uint64_t* m_rounds_ = nullptr;
  std::uint64_t* m_tx_ = nullptr;
  std::uint64_t* m_delivered_ = nullptr;
  std::uint64_t* m_collisions_ = nullptr;
  std::uint64_t* m_silent_ = nullptr;
  std::uint64_t* m_crashes_ = nullptr;
  std::uint64_t* m_recoveries_ = nullptr;
  std::uint64_t* m_dispatch_serial_ = nullptr;
  std::uint64_t* m_dispatch_sharded_ = nullptr;
  std::uint64_t* m_active_blocks_ = nullptr;
  double* m_frontier_fraction_ = nullptr;
  obs::Registry::Histogram* m_tx_per_round_ = nullptr;

  std::size_t round_threads_ = 1;
  bool all_shard_safe_ = false;  ///< every process consented, at init()
  RoundHooks* hooks_ = nullptr;
  std::unique_ptr<util::ThreadPool> pool_;  ///< created on first sharded round

  std::uint64_t master_seed_ = 0;  ///< kept for late fault-plan binding
  fault::FaultPlan* fault_plan_ = nullptr;
  fault::FaultListener* fault_listener_ = nullptr;
  Bitmap crashed_;  ///< bit v = v is down; written only by the fault stage
  std::vector<fault::FaultEvent> fault_events_;  ///< per-round scratch

  // Scratch reused every round, sized once at construction.
  std::vector<Packet> outgoing_slab_;   ///< packet of v iff v transmits
  Bitmap transmitting_;                 ///< bit v = v transmits this round
  /// Packed reception state written by the channel: high 32 bits = last
  /// heard-from vertex, low 32 bits = number of decodable senders.
  std::vector<std::uint64_t> heard_;
  /// Slab::kDeliveryMask -- bit u = suppress delivery to u this round.
  /// Only consulted when deliver_masked_ (armed per round by a
  /// mask-writing spliced stage, reset by the driver).
  Bitmap delivery_mask_;
  bool deliver_masked_ = false;

  // ---- activity-driven sparse rounds (see docs/PIPELINE.md) ----
  // The frontier stage computes frontier_ (Slab::kActivityMask) each round:
  // every vertex whose heard_ word could be non-zero.  Compute zeroes and
  // fills only frontier words (entries outside them are stale and never
  // read); transmit/receive/output skip words whose every vertex is parked
  // on a silent promise.  Bookkeeping invariants while sparse is active:
  // last_stepped_[v] = the round through which v's cursor has advanced
  // (batched silent_steps() jumps included); silent_until_[v] >= t means v
  // is parked at round t (crashed vertices park forever and are restored
  // by the fault stage on recovery); word_silent_until_[w] is a
  // conservative (<= actual) minimum over word w's vertices.
  bool sparse_enabled_ = true;     ///< the knob (config / DG_SPARSE_ROUNDS)
  bool sparse_supported_ = false;  ///< knob && channel && no splices
  bool sparse_active_ = false;     ///< this round runs the sparse dispatch
  Bitmap frontier_;                          ///< Slab::kActivityMask
  std::vector<std::size_t> active_words_;    ///< non-zero frontier words
  std::vector<std::uint8_t> block_active_;   ///< per shard block, sharded
  std::vector<Round> last_stepped_;
  std::vector<Round> silent_until_;
  std::vector<Round> word_silent_until_;

  // The stage pipeline: core stages (owned via stages_) plus splices
  // (owned by the pipeline), walked in order by run_pipeline().
  std::unique_ptr<EngineStages> stages_;
  RoundPipeline pipeline_;
  std::vector<SpliceSpec> splices_;  ///< installed, for conflict checks
};

}  // namespace dg::sim
