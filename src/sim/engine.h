// The synchronous-round execution engine (Section 2 semantics).
//
// Each round: every process decides transmit-or-receive; the round topology
// is E plus the unreliable edges the (pre-committed, oblivious) scheduler
// includes; a listening node receives a packet iff exactly one of its
// round-topology neighbors transmitted; otherwise it receives the null
// indicator (no collision detection).  Transmitters hear nothing.
//
// The engine is protocol-agnostic: environments and protocol wrappers
// interact with typed Process subclasses *between* calls to run_round(),
// which realizes the paper's inputs -> transmit -> receive -> outputs round
// micro-structure.
//
// Hot-path layout: outgoing packets live in a flat per-vertex slab gated by
// a transmit bitmask (no per-round optional churn), the scheduler's round
// subset is materialized once per round into an edge bitmap (one bit-probe
// per edge instead of a virtual call), and reception folds heard-count +
// heard-from into a single packed word per vertex over the graph's CSR
// adjacency.  None of this changes the observable round semantics
// (tests/determinism_test.cpp pins golden execution digests).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/dual_graph.h"
#include "sim/adaptive.h"
#include "sim/observer.h"
#include "sim/packet.h"
#include "sim/process.h"
#include "sim/scheduler.h"
#include "util/bitmap.h"

namespace dg::sim {

/// Assigns distinct ProcessIds to graph vertices (the paper's id() mapping,
/// unknown to the processes).  Ids are pseudorandom 64-bit values so no
/// process can infer topology from id structure.
std::vector<ProcessId> assign_ids(std::size_t n, std::uint64_t seed);

class Engine {
 public:
  /// The graph and scheduler must outlive the engine.  `processes[v]` is the
  /// process at graph vertex v; the scheduler is committed here (with a
  /// stream derived from master_seed), before any round executes.
  Engine(const graph::DualGraph& g, LinkScheduler& scheduler,
         std::vector<std::unique_ptr<Process>> processes,
         std::uint64_t master_seed);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Observers are invoked in registration order; they must outlive the
  /// engine.
  void add_observer(Observer* observer);

  /// Installs an ADAPTIVE adversary (see sim/adaptive.h) that overrides the
  /// oblivious scheduler for unreliable edges.  Deliberately outside the
  /// paper's model -- used only by the E12 impossibility counterfactual.
  void set_adaptive_adversary(AdaptiveAdversary* adversary) {
    adaptive_ = adversary;
  }

  /// Rounds executed so far (0 before the first run_round()).
  Round round() const noexcept { return round_; }

  /// Executes one synchronous round (steps 2-4 of the round structure;
  /// step 1, environment inputs, happens before this call via typed process
  /// APIs).
  void run_round();

  void run_rounds(Round count);

  const graph::DualGraph& network() const noexcept { return *graph_; }
  std::size_t process_count() const noexcept { return processes_.size(); }

  Process& process(graph::Vertex v);
  const Process& process(graph::Vertex v) const;

  /// The process-local random stream for vertex v (exposed so protocol
  /// wrappers can make *input-side* random choices attributable to the same
  /// process stream; the engine itself never draws from these between a
  /// process's own steps).
  Rng& process_rng(graph::Vertex v);

 private:
  const graph::DualGraph* graph_;
  LinkScheduler* scheduler_;
  AdaptiveAdversary* adaptive_ = nullptr;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Rng> rngs_;
  // Per-event fan-out lists (filtered by Observer::interest() at
  // registration, in registration order), so uninterested observers cost
  // nothing per event.
  std::vector<Observer*> obs_round_begin_;
  std::vector<Observer*> obs_transmit_;
  std::vector<Observer*> obs_receive_;
  std::vector<Observer*> obs_silence_;
  std::vector<Observer*> obs_round_end_;
  Round round_ = 0;

  // Scratch reused every round, sized once at construction.
  std::vector<Packet> outgoing_slab_;   ///< packet of v iff v transmits
  Bitmap transmitting_;                 ///< bit v = v transmits this round
  EdgeBitmap edge_active_;              ///< this round's unreliable subset
  /// Packed reception state: high 32 bits = last heard-from vertex, low 32
  /// bits = number of round-topology transmitters heard.
  std::vector<std::uint64_t> heard_;
  std::vector<bool> transmitting_bools_;  ///< adaptive plan_round view
};

}  // namespace dg::sim
