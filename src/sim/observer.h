// Execution observers.
//
// Spec checkers, statistics collectors, and trace recorders watch executions
// through this interface instead of storing full traces: a multi-hundred-
// thousand-round Monte Carlo run would otherwise exhaust memory.  Observers
// see ground truth (who transmitted, who received what from whom) that the
// *processes* themselves cannot see -- exactly the vantage point the paper's
// proofs take.
#pragma once

#include "graph/dual_graph.h"
#include "sim/packet.h"
#include "sim/process.h"

namespace dg::sim {

class Observer {
 public:
  virtual ~Observer() = default;

  virtual void on_round_begin(Round round) { (void)round; }

  /// Vertex v transmitted `packet` in `round`.
  virtual void on_transmit(Round round, graph::Vertex v,
                           const Packet& packet) {
    (void)round;
    (void)v;
    (void)packet;
  }

  /// Listening vertex u received `packet` from vertex `from` in `round`
  /// (the single-transmitter rule was satisfied at u).
  virtual void on_receive(Round round, graph::Vertex u, graph::Vertex from,
                          const Packet& packet) {
    (void)round;
    (void)u;
    (void)from;
    (void)packet;
  }

  /// Listening vertex u heard nothing in `round`.  `collision` is true when
  /// two or more of u's round-neighbors transmitted (information available
  /// to the analysis but *not* to u: no collision detection).
  virtual void on_silence(Round round, graph::Vertex u, bool collision) {
    (void)round;
    (void)u;
    (void)collision;
  }

  virtual void on_round_end(Round round) { (void)round; }
};

}  // namespace dg::sim
