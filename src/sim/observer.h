// Execution observers.
//
// Spec checkers, statistics collectors, and trace recorders watch executions
// through this interface instead of storing full traces: a multi-hundred-
// thousand-round Monte Carlo run would otherwise exhaust memory.  Observers
// see ground truth (who transmitted, who received what from whom) that the
// *processes* themselves cannot see -- exactly the vantage point the paper's
// proofs take.
#pragma once

#include "graph/dual_graph.h"
#include "sim/packet.h"
#include "sim/process.h"

namespace dg::sim {

class Observer {
 public:
  /// Event-interest bits.  The engine partitions observers per event at
  /// registration time, so an observer that only watches receptions never
  /// costs a virtual call on the (far more frequent) silences.
  enum : unsigned {
    kRoundBegin = 1u << 0,
    kTransmit = 1u << 1,
    kReceive = 1u << 2,
    kSilence = 1u << 3,
    kRoundEnd = 1u << 4,
    kFault = 1u << 5,
    kAllEvents = (1u << 6) - 1,
  };

  virtual ~Observer() = default;

  /// Which events this observer wants delivered.  Default: everything.
  /// Overriders MUST include the bit for every handler they override --
  /// events outside the mask are never delivered.
  virtual unsigned interest() const { return kAllEvents; }

  virtual void on_round_begin(Round round) { (void)round; }

  /// Vertex v transmitted `packet` in `round`.
  virtual void on_transmit(Round round, graph::Vertex v,
                           const Packet& packet) {
    (void)round;
    (void)v;
    (void)packet;
  }

  /// Listening vertex u received `packet` from vertex `from` in `round`
  /// (the single-transmitter rule was satisfied at u).
  virtual void on_receive(Round round, graph::Vertex u, graph::Vertex from,
                          const Packet& packet) {
    (void)round;
    (void)u;
    (void)from;
    (void)packet;
  }

  /// Listening vertex u heard nothing in `round`.  `collision` is true when
  /// two or more of u's round-neighbors transmitted (information available
  /// to the analysis but *not* to u: no collision detection).
  virtual void on_silence(Round round, graph::Vertex u, bool collision) {
    (void)round;
    (void)u;
    (void)collision;
  }

  virtual void on_round_end(Round round) { (void)round; }

  /// Vertex v crashed / recovered at the top of `round` (fault-plan
  /// events, fired serially from the engine's fault checkpoint after the
  /// process and fault-listener callbacks ran).  Requires the kFault
  /// interest bit.
  virtual void on_crash(Round round, graph::Vertex v) {
    (void)round;
    (void)v;
  }
  virtual void on_recover(Round round, graph::Vertex v) {
    (void)round;
    (void)v;
  }
};

}  // namespace dg::sim
