#include "sim/pipeline.h"

#include "util/assert.h"

namespace dg::sim {

void RoundPipeline::append(RoundStage* stage, bool round_begin_before) {
  DG_EXPECTS(stage != nullptr);
  Slot slot;
  slot.stage = stage;
  slot.round_begin_before = round_begin_before;
  slots_.push_back(slot);
}

std::size_t RoundPipeline::find(const std::string& name) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].stage->name() == name) return i;
  }
  return npos;
}

void RoundPipeline::insert_after(const std::string& anchor,
                                 std::unique_ptr<RoundStage> stage) {
  DG_EXPECTS(stage != nullptr);
  std::size_t i = find(anchor);
  DG_EXPECTS(i != npos);
  // Chain behind splices already anchored here: consecutive spliced slots
  // after an anchor are exactly its splices (the next core stage breaks
  // the run), so skipping them preserves installation order.
  while (i + 1 < slots_.size() && slots_[i + 1].spliced) ++i;
  Slot slot;
  slot.stage = stage.get();
  slot.spliced = true;
  slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(i) + 1, slot);
  owned_.push_back(std::move(stage));
}

}  // namespace dg::sim
