// Oblivious link schedulers (Section 2).
//
// A link scheduler is a sequence G = G_1, G_2, ... fixed at the beginning of
// the execution: each G_t is E plus an arbitrary subset of E' \ E.  The
// interface enforces obliviousness by construction: commit() is called once
// before round 1 with a private random seed, after which active() is a pure
// function of (edge id, round) -- the scheduler never sees any execution
// state, transmission history, or process randomness.
//
// The engine consumes schedules in bulk: once per round it calls
// fill_round(), which materializes the round's whole unreliable-edge subset
// into an EdgeBitmap, so the reception pass costs one bit-probe per edge
// instead of a virtual active() call.  fill_round() must agree bit-for-bit
// with active() (tests/scheduler_bitmap_test.cpp sweeps the contract);
// active() remains the semantic definition and the default implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/dual_graph.h"
#include "sim/process.h"
#include "util/bitmap.h"

namespace dg::sim {

/// Word-packed set of UnreliableEdgeIds: bit e = edge e present this round.
using EdgeBitmap = Bitmap;

class LinkScheduler {
 public:
  virtual ~LinkScheduler() = default;

  /// Commits the whole schedule.  Called exactly once, before round 1.
  virtual void commit(const graph::DualGraph& g, std::uint64_t seed) = 0;

  /// Whether unreliable edge `edge` is present in the topology of `round`.
  /// Must be deterministic after commit().  The sharded round engine probes
  /// active() concurrently from several threads, so implementations must be
  /// safe for concurrent const calls (every scheduler here is a pure
  /// function of immutable post-commit state, which suffices).
  virtual bool active(graph::UnreliableEdgeId edge, Round round) const = 0;

  /// Writes the whole round-`round` edge subset into `out` (sized by the
  /// caller to the graph's unreliable edge count).  Must equal active()
  /// bit-for-bit.  The default loops active(); concrete schedulers override
  /// with word-filling implementations.
  virtual void fill_round(Round round, EdgeBitmap& out) const {
    out.clear();
    const auto edges = static_cast<graph::UnreliableEdgeId>(out.size());
    for (graph::UnreliableEdgeId e = 0; e < edges; ++e) {
      if (active(e, round)) out.set(e);
    }
  }

  /// True when fill_round() costs O(edges / 64) words rather than per-edge
  /// work (constant or pre-materialized schedules).  The engine then always
  /// takes the bulk path; otherwise it materializes the bitmap only in
  /// rounds dense enough in transmitters to amortize the per-edge fill,
  /// falling back to per-incident-edge active() probes in sparse rounds.
  virtual bool fill_round_is_word_cheap() const { return false; }

  virtual std::string name() const = 0;
};

/// Includes either none or all of E' \ E in every round.  "none" yields the
/// classical reliable radio network G; "all" yields the static graph G'.
class ConstantScheduler final : public LinkScheduler {
 public:
  explicit ConstantScheduler(bool include_all) : include_all_(include_all) {}

  void commit(const graph::DualGraph&, std::uint64_t) override {}
  bool active(graph::UnreliableEdgeId, Round) const override {
    return include_all_;
  }
  void fill_round(Round, EdgeBitmap& out) const override {
    if (include_all_) {
      out.set_all();
    } else {
      out.clear();
    }
  }
  bool fill_round_is_word_cheap() const override { return true; }
  std::string name() const override {
    return include_all_ ? "full-G'" : "full-G";
  }

 private:
  bool include_all_;
};

/// Independently includes each unreliable edge in each round with
/// probability p.  The randomness is derived statelessly from the committed
/// seed (hash of (seed, edge, round)), so the whole infinite schedule is
/// fixed at commit time, satisfying obliviousness literally.
class BernoulliScheduler final : public LinkScheduler {
 public:
  explicit BernoulliScheduler(double p);

  void commit(const graph::DualGraph& g, std::uint64_t seed) override;
  bool active(graph::UnreliableEdgeId edge, Round round) const override;
  void fill_round(Round round, EdgeBitmap& out) const override;
  bool fill_round_is_word_cheap() const override {
    return p_ <= 0.0 || p_ >= 1.0;  // degenerate: set_all / clear
  }
  std::string name() const override;

 private:
  double p_;
  std::uint64_t seed_ = 0;
  std::uint64_t threshold_ = 0;
};

/// Deterministic periodic flicker: each edge is present in rounds where
/// ((round + phase(edge)) mod period) < duty.  Models links with long
/// coherent up/down intervals; edge phases are randomized at commit time.
class FlickerScheduler final : public LinkScheduler {
 public:
  FlickerScheduler(Round period, Round duty);

  void commit(const graph::DualGraph& g, std::uint64_t seed) override;
  bool active(graph::UnreliableEdgeId edge, Round round) const override;
  void fill_round(Round round, EdgeBitmap& out) const override;
  std::string name() const override;

 private:
  Round period_;
  Round duty_;
  std::vector<Round> phase_;
};

/// Bursty links: per-edge epochs of `epoch_length` rounds; an edge is
/// present for a whole epoch with probability p_up, independently per
/// (edge, epoch).  Models links with long coherent up/down intervals (the
/// Gilbert-Elliott flavor of unreliability) while staying oblivious: epoch
/// fates are derived statelessly from the committed seed.
class BurstScheduler final : public LinkScheduler {
 public:
  BurstScheduler(Round epoch_length, double p_up);

  void commit(const graph::DualGraph& g, std::uint64_t seed) override;
  bool active(graph::UnreliableEdgeId edge, Round round) const override;
  void fill_round(Round round, EdgeBitmap& out) const override;
  std::string name() const override;

 private:
  Round epoch_length_;
  double p_up_;
  std::uint64_t seed_ = 0;
  std::uint64_t threshold_ = 0;
};

/// The adversary from the paper's Discussion section: a link schedule
/// "constructed with the intent of thwarting the fixed schedule strategy by
/// including many links (i.e., increasing contention) when the schedule
/// selects high probabilities, and excluding many links when the schedule
/// selects low probabilities."
///
/// The adversary is given, at construction time, the *deterministic,
/// publicly known* round->probability schedule of the algorithm under attack
/// (e.g. Decay's geometric cycle).  It includes every unreliable edge in the
/// rounds where that schedule transmits with probability above `pivot`, and
/// none elsewhere.  This is a legal oblivious scheduler: the schedule
/// depends only on the algorithm's text, never on coin flips or execution
/// state -- which is exactly why it can thwart fixed schedules but not
/// LBAlg's seed-permuted schedules.
class AntiScheduleAdversary final : public LinkScheduler {
 public:
  using ProbabilitySchedule = std::function<double(Round)>;

  AntiScheduleAdversary(ProbabilitySchedule target_schedule, double pivot);

  void commit(const graph::DualGraph& g, std::uint64_t seed) override;
  bool active(graph::UnreliableEdgeId edge, Round round) const override;
  void fill_round(Round round, EdgeBitmap& out) const override;
  bool fill_round_is_word_cheap() const override { return true; }
  std::string name() const override;

 private:
  ProbabilitySchedule schedule_;
  double pivot_;
};

/// Fully explicit schedule: a pre-materialized vector of bitmaps, one per
/// round (cycled if the execution runs longer).  The most general oblivious
/// scheduler; used by tests to script exact topologies.
class ExplicitScheduler final : public LinkScheduler {
 public:
  /// pattern[t][e] == true -> edge e present in round t+1 (and in all
  /// rounds congruent mod the pattern length).
  explicit ExplicitScheduler(std::vector<std::vector<bool>> pattern);

  void commit(const graph::DualGraph& g, std::uint64_t seed) override;
  bool active(graph::UnreliableEdgeId edge, Round round) const override;
  void fill_round(Round round, EdgeBitmap& out) const override;
  bool fill_round_is_word_cheap() const override { return true; }
  std::string name() const override { return "explicit"; }

 private:
  std::vector<std::vector<bool>> pattern_;
  /// pattern_ pre-packed into words at commit() for the bulk path.
  std::vector<EdgeBitmap> packed_;
};

}  // namespace dg::sim
