#include "sim/trace.h"

#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace dg::sim {

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  DG_EXPECTS(capacity >= 1);
}

void TraceRecorder::push(Event event) {
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

void TraceRecorder::on_transmit(Round round, graph::Vertex v,
                                const Packet& p) {
  Event e;
  e.round = round;
  e.kind = EventKind::transmit;
  e.vertex = v;
  e.is_data = p.is_data();
  e.detail = p.is_data() ? p.data().content : p.seed().owner;
  push(e);
}

void TraceRecorder::on_receive(Round round, graph::Vertex u,
                               graph::Vertex from, const Packet& p) {
  Event e;
  e.round = round;
  e.kind = EventKind::receive;
  e.vertex = u;
  e.peer = from;
  e.is_data = p.is_data();
  e.detail = p.is_data() ? p.data().content : p.seed().owner;
  push(e);
}

void TraceRecorder::on_silence(Round round, graph::Vertex u, bool collision) {
  if (!collision) return;  // plain silence is noise; collisions matter
  Event e;
  e.round = round;
  e.kind = EventKind::collision;
  e.vertex = u;
  push(e);
}

void TraceRecorder::on_round_begin(Round round) {
  Event e;
  e.round = round;
  e.kind = EventKind::round_begin;
  push(e);
}

void TraceRecorder::on_round_end(Round round) {
  Event e;
  e.round = round;
  e.kind = EventKind::round_end;
  push(e);
}

void TraceRecorder::on_crash(Round round, graph::Vertex v) {
  Event e;
  e.round = round;
  e.kind = EventKind::crash;
  e.vertex = v;
  push(e);
}

void TraceRecorder::on_recover(Round round, graph::Vertex v) {
  Event e;
  e.round = round;
  e.kind = EventKind::recover;
  e.vertex = v;
  push(e);
}

void TraceRecorder::clear() {
  events_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::describe(const Event& event) {
  std::ostringstream os;
  os << "round " << event.round << ": ";
  switch (event.kind) {
    case EventKind::transmit:
      os << "v" << event.vertex << " tx "
         << (event.is_data ? "data content=" : "seed owner=") << event.detail;
      break;
    case EventKind::receive:
      os << "v" << event.peer << " -> v" << event.vertex << " "
         << (event.is_data ? "data content=" : "seed owner=") << event.detail;
      break;
    case EventKind::collision:
      os << "v" << event.vertex << " collision";
      break;
    case EventKind::round_begin:
      os << "round begin";
      break;
    case EventKind::round_end:
      os << "round end";
      break;
    case EventKind::crash:
      os << "v" << event.vertex << " crash";
      break;
    case EventKind::recover:
      os << "v" << event.vertex << " recover";
      break;
  }
  return os.str();
}

void TraceRecorder::print(std::ostream& os) const {
  if (dropped_ > 0) {
    os << "... (" << dropped_ << " earlier events dropped)\n";
  }
  for (const Event& e : events_) {
    os << describe(e) << '\n';
  }
}

}  // namespace dg::sim
