#include "sim/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <unordered_set>

#include "phys/dual_graph_channel.h"
#include "util/assert.h"
#include "util/rng.h"

namespace dg::sim {

std::vector<ProcessId> assign_ids(std::size_t n, std::uint64_t seed) {
  std::vector<ProcessId> ids;
  ids.reserve(n);
  std::unordered_set<ProcessId> used;
  std::uint64_t counter = 0;
  while (ids.size() < n) {
    const ProcessId candidate = splitmix64(seed ^ splitmix64(counter++));
    if (candidate != 0 && used.insert(candidate).second) {
      ids.push_back(candidate);
    }
  }
  return ids;
}

// ---------------------------------------------------------------------------
// The core stage set.  Each stage is a thin adapter from the RoundStage
// contract onto the engine's slabs and fan-out lists; the bodies are the
// phase bodies of the former monolithic round loops, split along the
// prologue/run/run_block/replay/epilogue seams so one driver serves both
// dispatches with the exact same event order (see sim/stage.h).
// ---------------------------------------------------------------------------

struct EngineStages {
  /// "fault": the serial fault checkpoint.  Only active with a plan
  /// installed, so fault-free rounds skip the bracket entirely.  Runs
  /// before the on_round_begin fan-out (the transmit slot carries that
  /// seam), exactly where apply_faults() sat in the monolithic loop.
  class FaultStage final : public RoundStage {
   public:
    explicit FaultStage(Engine& e) : e_(e) {}
    std::string name() const override { return "fault"; }
    SlabSet reads() const override { return 0; }
    SlabSet writes() const override {
      return slab_bit(Slab::kCrashedBitmap);
    }
    bool active(bool) const override { return e_.fault_plan_ != nullptr; }
    void run(RoundState& rs) override { e_.apply_faults(rs.round); }

   private:
    Engine& e_;
  };

  /// "transmit": per-vertex transmit decisions into the packet slab and
  /// transmit bitmap.  Blocks own whole bitmap words (block sizes are
  /// multiples of 64), so the set() read-modify-writes never touch
  /// another block's word.
  class TransmitStage final : public RoundStage {
   public:
    explicit TransmitStage(Engine& e) : e_(e) {}
    std::string name() const override { return "transmit"; }
    SlabSet reads() const override {
      return slab_bit(Slab::kCrashedBitmap) | slab_bit(Slab::kRngStreams);
    }
    SlabSet writes() const override {
      return slab_bit(Slab::kTransmitBitmap) | slab_bit(Slab::kPacketSlab) |
             slab_bit(Slab::kRngStreams);
    }
    bool vertex_disjoint_writes() const override { return true; }
    void prologue(RoundState&) override { e_.transmitting_.clear(); }
    void run(RoundState& rs) override {
      decide(rs, 0, static_cast<graph::Vertex>(rs.vertex_count),
             !e_.obs_transmit_.empty());
    }
    void run_block(RoundState& rs, graph::Vertex begin,
                   graph::Vertex end) override {
      decide(rs, begin, end, /*inline_obs=*/false);
    }
    void replay(RoundState& rs) override {
      // Ascending-vertex replay off the bitmap is the exact event stream
      // the serial dispatch emits inline.
      if (e_.obs_transmit_.empty()) return;
      const Round t = rs.round;
      e_.transmitting_.for_each_set([&](std::size_t v) {
        for (Observer* obs : e_.obs_transmit_) {
          obs->on_transmit(t, static_cast<graph::Vertex>(v),
                           e_.outgoing_slab_[v]);
        }
      });
    }

   private:
    void decide(RoundState& rs, graph::Vertex begin, graph::Vertex end,
                bool inline_obs) {
      const Round t = rs.round;
      for (graph::Vertex v = begin; v < end; ++v) {
        if (rs.faults && e_.crashed_.test(v)) continue;
        RoundContext ctx(t, e_.rngs_[v]);
        auto packet = e_.processes_[v]->transmit(ctx);
        if (!packet.has_value()) continue;
        // The wire carries the true sender id; processes cannot spoof.
        DG_ASSERT(packet->sender == e_.processes_[v]->id());
        e_.outgoing_slab_[v] = *std::move(packet);
        e_.transmitting_.set(v);
        if (inline_obs) {
          for (Observer* obs : e_.obs_transmit_) {
            obs->on_transmit(t, v, e_.outgoing_slab_[v]);
          }
        }
      }
    }

    Engine& e_;
  };

  /// "prepare_round": the channel's serial staging of everything
  /// transmit-set-dependent before the parallel reception fill.  Sharded
  /// rounds only; the serial channel call fuses prepare into compute.
  class ScheduleStage final : public RoundStage {
   public:
    explicit ScheduleStage(Engine& e) : e_(e) {}
    std::string name() const override { return "prepare_round"; }
    SlabSet reads() const override {
      return slab_bit(Slab::kTransmitBitmap);
    }
    SlabSet writes() const override { return 0; }
    bool active(bool sharded) const override { return sharded; }
    void run(RoundState& rs) override {
      e_.channel_->prepare_round(rs.round, e_.transmitting_);
    }

   private:
    Engine& e_;
  };

  /// "compute": reception physics, delegated to the channel model.  Fills
  /// one packed heard word per vertex; the logical-metrics pass over the
  /// frozen verdicts runs in after_phase (outside the timing bracket, and
  /// before any spliced stage anchored behind this one -- counters tally
  /// channel verdicts, not post-splice deliveries).
  class ChannelStage final : public RoundStage {
   public:
    explicit ChannelStage(Engine& e) : e_(e) {}
    std::string name() const override { return "compute"; }
    SlabSet reads() const override {
      return slab_bit(Slab::kTransmitBitmap) | slab_bit(Slab::kPacketSlab);
    }
    SlabSet writes() const override {
      return slab_bit(Slab::kHeardWords);
    }
    bool vertex_disjoint_writes() const override { return true; }
    void run(RoundState& rs) override {
      std::fill(e_.heard_.begin(), e_.heard_.end(), 0U);
      e_.channel_->compute_round(rs.round, e_.transmitting_, e_.heard_);
    }
    void run_block(RoundState& rs, graph::Vertex begin,
                   graph::Vertex end) override {
      std::fill(e_.heard_.begin() + begin, e_.heard_.begin() + end, 0U);
      e_.channel_->compute_shard(rs.round, e_.transmitting_, e_.heard_,
                                 begin, end);
    }
    void after_phase(RoundState&) override { e_.record_logical_round(); }

   private:
    Engine& e_;
  };

  /// "receive": hands every listener its verdict -- the decoded packet on
  /// a clean single-transmitter round (unless a spliced stage masked the
  /// delivery), the null indicator otherwise.
  class ReceiveStage final : public RoundStage {
   public:
    explicit ReceiveStage(Engine& e) : e_(e) {}
    std::string name() const override { return "receive"; }
    SlabSet reads() const override {
      return slab_bit(Slab::kTransmitBitmap) | slab_bit(Slab::kPacketSlab) |
             slab_bit(Slab::kHeardWords) | slab_bit(Slab::kCrashedBitmap) |
             slab_bit(Slab::kDeliveryMask) | slab_bit(Slab::kRngStreams);
    }
    SlabSet writes() const override {
      return slab_bit(Slab::kRngStreams);
    }
    bool vertex_disjoint_writes() const override { return true; }
    void run(RoundState& rs) override {
      deliver(rs, 0, static_cast<graph::Vertex>(rs.vertex_count),
              /*inline_obs=*/true);
    }
    void run_block(RoundState& rs, graph::Vertex begin,
                   graph::Vertex end) override {
      deliver(rs, begin, end, /*inline_obs=*/false);
    }
    void replay(RoundState& rs) override {
      // Replays the reception observers serially from the frozen heard
      // words: same verdicts, ascending vertex order, exactly the serial
      // dispatch's stream.
      if (e_.obs_receive_.empty() && e_.obs_silence_.empty()) return;
      const Round t = rs.round;
      const auto n = static_cast<graph::Vertex>(rs.vertex_count);
      for (graph::Vertex u = 0; u < n; ++u) {
        if (e_.transmitting_.test(u)) continue;
        if (rs.faults && e_.crashed_.test(u)) continue;
        const std::uint64_t h = e_.heard_[u];
        const auto count = static_cast<std::uint32_t>(h);
        if (count == 1 && !masked(u)) {
          const auto from = static_cast<graph::Vertex>(h >> 32);
          for (Observer* obs : e_.obs_receive_) {
            obs->on_receive(t, u, from, e_.outgoing_slab_[from]);
          }
        } else {
          for (Observer* obs : e_.obs_silence_) {
            obs->on_silence(t, u, /*collision=*/count > 1);
          }
        }
      }
    }
    void epilogue(RoundState& rs) override {
      if (e_.hooks_ != nullptr) e_.hooks_->after_receive_phase(rs.round);
    }

   private:
    bool masked(graph::Vertex u) const {
      return e_.deliver_masked_ && e_.delivery_mask_.test(u);
    }

    void deliver(RoundState& rs, graph::Vertex begin, graph::Vertex end,
                 bool inline_obs) {
      const Round t = rs.round;
      const bool obs_rx = inline_obs && !e_.obs_receive_.empty();
      const bool obs_sil = inline_obs && !e_.obs_silence_.empty();
      for (graph::Vertex u = begin; u < end; ++u) {
        if (e_.transmitting_.test(u)) continue;  // transmitters don't listen
        if (rs.faults && e_.crashed_.test(u)) continue;
        RoundContext ctx(t, e_.rngs_[u]);
        const std::uint64_t h = e_.heard_[u];
        const auto count = static_cast<std::uint32_t>(h);
        if (count == 1 && !masked(u)) {
          const auto from = static_cast<graph::Vertex>(h >> 32);
          const Packet& packet = e_.outgoing_slab_[from];
          if (obs_rx) {
            for (Observer* obs : e_.obs_receive_) {
              obs->on_receive(t, u, from, packet);
            }
          }
          e_.processes_[u]->receive(packet, ctx);
        } else {
          if (obs_sil) {
            for (Observer* obs : e_.obs_silence_) {
              obs->on_silence(t, u, /*collision=*/count > 1);
            }
          }
          e_.processes_[u]->receive(std::nullopt, ctx);
        }
      }
    }

    Engine& e_;
  };

  /// "output_flush": per-vertex end_round outputs, then the wrapper
  /// checkpoint.
  class OutputFlushStage final : public RoundStage {
   public:
    explicit OutputFlushStage(Engine& e) : e_(e) {}
    std::string name() const override { return "output_flush"; }
    SlabSet reads() const override {
      return slab_bit(Slab::kCrashedBitmap) | slab_bit(Slab::kRngStreams);
    }
    SlabSet writes() const override {
      return slab_bit(Slab::kRngStreams);
    }
    bool vertex_disjoint_writes() const override { return true; }
    void run(RoundState& rs) override {
      flush(rs, 0, static_cast<graph::Vertex>(rs.vertex_count));
    }
    void run_block(RoundState& rs, graph::Vertex begin,
                   graph::Vertex end) override {
      flush(rs, begin, end);
    }
    void epilogue(RoundState& rs) override {
      if (e_.hooks_ != nullptr) e_.hooks_->after_output_phase(rs.round);
    }

   private:
    void flush(RoundState& rs, graph::Vertex begin, graph::Vertex end) {
      const Round t = rs.round;
      for (graph::Vertex v = begin; v < end; ++v) {
        if (rs.faults && e_.crashed_.test(v)) continue;
        RoundContext ctx(t, e_.rngs_[v]);
        e_.processes_[v]->end_round(ctx);
      }
    }

    Engine& e_;
  };

  explicit EngineStages(Engine& e)
      : fault(e), transmit(e), schedule(e), channel(e), receive(e),
        output(e) {}

  FaultStage fault;
  TransmitStage transmit;
  ScheduleStage schedule;
  ChannelStage channel;
  ReceiveStage receive;
  OutputFlushStage output;
};

Engine::Engine(const graph::DualGraph& g, LinkScheduler& scheduler,
               std::vector<std::unique_ptr<Process>> processes,
               std::uint64_t master_seed)
    : graph_(&g),
      owned_channel_(std::make_unique<phys::DualGraphChannel>(scheduler)),
      channel_(owned_channel_.get()),
      processes_(std::move(processes)) {
  init(master_seed);
}

Engine::Engine(const graph::DualGraph& g, phys::ChannelModel& channel,
               std::vector<std::unique_ptr<Process>> processes,
               std::uint64_t master_seed)
    : graph_(&g), channel_(&channel), processes_(std::move(processes)) {
  init(master_seed);
}

Engine::~Engine() = default;

void Engine::init(std::uint64_t master_seed) {
  master_seed_ = master_seed;
  const graph::DualGraph& g = *graph_;
  DG_EXPECTS(g.finalized());
  DG_EXPECTS(processes_.size() == g.size());
  for (const auto& p : processes_) {
    DG_EXPECTS(p != nullptr);
  }
  rngs_.reserve(processes_.size());
  for (std::size_t v = 0; v < processes_.size(); ++v) {
    // Stream tag 0x9 partitions process streams away from other consumers
    // of the same master seed (scheduler, id assignment, generators).
    rngs_.emplace_back(master_seed, 0x900000000ULL + v);
  }
  // The channel derives its randomness (scheduler commitment, SINR fading)
  // from the same master seed the pre-seam engine handed the scheduler.
  channel_->bind(g, master_seed);

  outgoing_slab_.resize(processes_.size());
  transmitting_.resize(processes_.size());
  heard_.resize(processes_.size());
  crashed_.resize(processes_.size());
  delivery_mask_.resize(processes_.size());

  all_shard_safe_ =
      std::all_of(processes_.begin(), processes_.end(),
                  [](const auto& p) { return p->shard_safe(); });
  round_threads_ = default_round_threads();

  // The core pipeline.  The on_round_begin fan-out rides on the transmit
  // slot so fault events keep preceding it, as the monolithic loop did.
  stages_ = std::make_unique<EngineStages>(*this);
  pipeline_.append(&stages_->fault);
  pipeline_.append(&stages_->transmit, /*round_begin_before=*/true);
  pipeline_.append(&stages_->schedule);
  pipeline_.append(&stages_->channel);
  pipeline_.append(&stages_->receive);
  pipeline_.append(&stages_->output);
}

std::size_t Engine::default_round_threads() {
  const char* env = std::getenv("DG_ROUND_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  if (std::string_view(env) == "max") {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || parsed == 0) return 1;
  return static_cast<std::size_t>(parsed);
}

void Engine::configure(const EngineConfig& config) {
  if (config.round_threads != 0) apply_round_threads(config.round_threads);
  if (config.has_fault_plan) {
    apply_fault_plan(config.fault_plan, config.fault_listener);
  }
  for (const SpliceSpec& spec : config.splices) {
    const std::string err = splice_stage(spec);
    DG_EXPECTS(err.empty());  // configs carry pre-validated splice lists
  }
  if (config.has_telemetry) {
    apply_telemetry(config.registry, config.trace_sink);
  }
}

std::string Engine::splice_stage(const SpliceSpec& spec) {
  std::vector<SpliceSpec> all = splices_;
  all.push_back(spec);
  std::string err = validate_splice_specs(all);
  if (!err.empty()) return err;
  pipeline_.insert_after(splice_anchor(spec),
                         build_splice_stage(spec, processes_.size()));
  splices_ = std::move(all);
  // Telemetry installed first: give the new stage its timing slot.
  if (registry_ != nullptr) rebuild_profiler();
  return "";
}

void Engine::set_round_threads(std::size_t threads) {
  configure(EngineConfig{}.with_round_threads(threads));
}

void Engine::apply_round_threads(std::size_t threads) {
  DG_EXPECTS(threads >= 1);
  round_threads_ = threads;
  // Re-poll consent: a wrapper may have reconfigured its listener fan-out
  // (e.g. LbSimulation's buffered mode) since init(), changing the answer.
  all_shard_safe_ =
      std::all_of(processes_.begin(), processes_.end(),
                  [](const auto& p) { return p->shard_safe(); });
}

std::size_t Engine::shard_block_size() const {
  const std::size_t n = processes_.size();
  const std::size_t target_blocks = round_threads_ * 4;
  std::size_t size = (n + target_blocks - 1) / target_blocks;
  return (size + 63) / 64 * 64;
}

void Engine::add_observer(Observer* observer) {
  DG_EXPECTS(observer != nullptr);
  const unsigned mask = observer->interest();
  if (mask & Observer::kRoundBegin) obs_round_begin_.push_back(observer);
  if (mask & Observer::kTransmit) obs_transmit_.push_back(observer);
  if (mask & Observer::kReceive) obs_receive_.push_back(observer);
  if (mask & Observer::kSilence) obs_silence_.push_back(observer);
  if (mask & Observer::kRoundEnd) obs_round_end_.push_back(observer);
  if (mask & Observer::kFault) obs_fault_.push_back(observer);
}

void Engine::set_telemetry(obs::Registry* registry, obs::TraceSink* sink) {
  configure(EngineConfig{}.with_telemetry(registry, sink));
}

void Engine::apply_telemetry(obs::Registry* registry, obs::TraceSink* sink) {
  registry_ = registry;
  trace_sink_ = registry != nullptr ? sink : nullptr;
  if (registry == nullptr) {
    rebuild_profiler();
    m_rounds_ = m_tx_ = m_delivered_ = m_collisions_ = m_silent_ = nullptr;
    m_crashes_ = m_recoveries_ = nullptr;
    m_dispatch_serial_ = m_dispatch_sharded_ = nullptr;
    m_tx_per_round_ = nullptr;
    return;
  }
  using obs::Domain;
  m_rounds_ = &registry->counter("engine.rounds", Domain::kLogical);
  m_tx_ = &registry->counter("engine.tx", Domain::kLogical);
  m_delivered_ = &registry->counter("engine.rx.delivered", Domain::kLogical);
  m_collisions_ =
      &registry->counter("engine.rx.collisions", Domain::kLogical);
  m_silent_ = &registry->counter("engine.rx.silent", Domain::kLogical);
  m_crashes_ = &registry->counter("engine.faults.crashes", Domain::kLogical);
  m_recoveries_ =
      &registry->counter("engine.faults.recoveries", Domain::kLogical);
  m_tx_per_round_ = &registry->histogram(
      "engine.tx_per_round", Domain::kLogical,
      {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  // Dispatch counts and thread knobs depend on round_threads by
  // definition, so they live in the (never-gated) timing domain.
  m_dispatch_serial_ =
      &registry->counter("engine.dispatch.serial", Domain::kTiming);
  m_dispatch_sharded_ =
      &registry->counter("engine.dispatch.sharded", Domain::kTiming);
  registry->gauge("engine.round_threads", Domain::kTiming) =
      static_cast<double>(round_threads_);
  registry->gauge("engine.vertices", Domain::kLogical) =
      static_cast<double>(processes_.size());
  rebuild_profiler();
}

void Engine::rebuild_profiler() {
  if (registry_ == nullptr) {
    profiler_.reset();
    for (RoundPipeline::Slot& slot : pipeline_.slots()) {
      slot.profile_slot = RoundPipeline::npos;
    }
    return;
  }
  // One timing slot per pipeline slot, in pipeline order; the registry
  // keys counters by name, so rebuilding (after a splice) keeps
  // accumulating into the same engine.phase.<name>.ns slots.
  profiler_ = std::make_unique<obs::PhaseProfiler>(*registry_);
  for (RoundPipeline::Slot& slot : pipeline_.slots()) {
    slot.profile_slot = profiler_->register_stage(slot.stage->name());
  }
}

void Engine::record_logical_round() {
  if (m_rounds_ == nullptr) return;
  *m_rounds_ += 1;
  const std::uint64_t tx = transmitting_.count();
  *m_tx_ += tx;
  m_tx_per_round_->record(static_cast<double>(tx));
  const bool faults = fault_plan_ != nullptr;
  const auto n = static_cast<graph::Vertex>(processes_.size());
  std::uint64_t delivered = 0, collisions = 0, silent = 0;
  for (graph::Vertex u = 0; u < n; ++u) {
    if (transmitting_.test(u)) continue;
    if (faults && crashed_.test(u)) continue;
    const auto count = static_cast<std::uint32_t>(heard_[u]);
    if (count == 1) {
      ++delivered;
    } else if (count > 1) {
      ++collisions;
    } else {
      ++silent;
    }
  }
  *m_delivered_ += delivered;
  *m_collisions_ += collisions;
  *m_silent_ += silent;
}

Process& Engine::process(graph::Vertex v) {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

const Process& Engine::process(graph::Vertex v) const {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

Rng& Engine::process_rng(graph::Vertex v) {
  DG_EXPECTS(v < rngs_.size());
  return rngs_[v];
}

void Engine::set_fault_plan(fault::FaultPlan* plan,
                            fault::FaultListener* listener) {
  configure(EngineConfig{}.with_fault_plan(plan, listener));
}

void Engine::apply_fault_plan(fault::FaultPlan* plan,
                              fault::FaultListener* listener) {
  fault_plan_ = plan;
  fault_listener_ = plan != nullptr ? listener : nullptr;
  if (plan != nullptr) plan->bind(*graph_, master_seed_);
}

void Engine::apply_faults(Round t) {
  if (fault_plan_ == nullptr) return;
  fault_events_.clear();
  fault_plan_->plan_round(t, crashed_, fault_events_);
  for (const fault::FaultEvent& ev : fault_events_) {
    DG_EXPECTS(ev.vertex < processes_.size());
    if (ev.kind == fault::FaultKind::kCrash) {
      if (crashed_.test(ev.vertex)) continue;  // idempotent
      crashed_.set(ev.vertex);
      // Listener first: it may read pre-crash process state (e.g. abort
      // the in-flight broadcast) before on_crash wipes it.
      if (fault_listener_ != nullptr) fault_listener_->on_crash(t, ev.vertex);
      processes_[ev.vertex]->on_crash(t);
      for (Observer* obs : obs_fault_) obs->on_crash(t, ev.vertex);
      if (m_crashes_ != nullptr) *m_crashes_ += 1;
      if (trace_sink_ != nullptr) trace_sink_->crash(t, ev.vertex);
    } else {
      if (!crashed_.test(ev.vertex)) continue;  // idempotent
      crashed_.reset(ev.vertex);
      // Process first: the listener talks to a re-initialized process.
      processes_[ev.vertex]->on_recover(t);
      if (fault_listener_ != nullptr) {
        fault_listener_->on_recover(t, ev.vertex);
      }
      for (Observer* obs : obs_fault_) obs->on_recover(t, ev.vertex);
      if (m_recoveries_ != nullptr) *m_recoveries_ += 1;
      if (trace_sink_ != nullptr) trace_sink_->recover(t, ev.vertex);
    }
  }
}

void Engine::run_round() {
  if (round_threads_ > 1 && all_shard_safe_ && channel_->shardable()) {
    const std::size_t block_size = shard_block_size();
    const std::size_t blocks =
        (processes_.size() + block_size - 1) / block_size;
    if (blocks >= 2) {
      if (pool_ == nullptr || pool_->threads() != round_threads_) {
        pool_ = std::make_unique<util::ThreadPool>(round_threads_);
        // Channels may shard their serial-section precomputes (e.g. the
        // SINR far field) over the same pool; it is idle whenever the
        // engine calls into the channel serially.
        channel_->set_round_pool(pool_.get());
      }
      run_pipeline(/*sharded=*/true, block_size, blocks);
      return;
    }
  }
  run_pipeline(/*sharded=*/false, 0, 0);
}

void Engine::run_pipeline(bool sharded, std::size_t block_size,
                          std::size_t blocks) {
  const Round t = ++round_;
  if (profiler_ != nullptr) {
    profiler_->begin_round(t);
    *(sharded ? m_dispatch_sharded_ : m_dispatch_serial_) += 1;
  }
  deliver_masked_ = false;

  RoundState rs;
  rs.round = t;
  rs.faults = fault_plan_ != nullptr;
  rs.sharded = sharded;
  rs.vertex_count = processes_.size();
  rs.transmitting = &transmitting_;
  rs.packets = &outgoing_slab_;
  rs.heard = &heard_;
  rs.crashed = &crashed_;
  rs.delivery_mask = &delivery_mask_;
  rs.deliver_masked = &deliver_masked_;
  rs.registry = registry_;
  rs.trace = trace_sink_;

  // Every pool dispatch of the round funnels through this wrapper so the
  // profiler can total the parallel-section wall clock (the utilization
  // numerator) without instrumenting the pool itself.
  const auto pooled = [&](auto&& fn) {
    if (profiler_ == nullptr) {
      pool_->for_blocks(blocks, fn);
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    pool_->for_blocks(blocks, fn);
    profiler_->add_parallel_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  };

  for (const RoundPipeline::Slot& slot : pipeline_.slots()) {
    if (slot.round_begin_before) {
      for (Observer* obs : obs_round_begin_) {
        obs->on_round_begin(t);
      }
    }
    RoundStage& stage = *slot.stage;
    if (!stage.active(sharded)) continue;
    // Dispatch by declaration: a stage whose writes are vertex-disjoint
    // runs block-parallel in sharded rounds (blocks write disjoint state,
    // so determinism is structural); everything else runs serial.
    const bool parallel = sharded && stage.vertex_disjoint_writes();
    {
      obs::ScopedPhase phase(profiler_.get(), slot.profile_slot);
      stage.prologue(rs);
      if (parallel) {
        pooled([&](std::size_t b) {
          const auto begin = static_cast<graph::Vertex>(b * block_size);
          const auto end = static_cast<graph::Vertex>(
              std::min(b * block_size + block_size, processes_.size()));
          stage.run_block(rs, begin, end);
        });
        stage.replay(rs);
      } else {
        stage.run(rs);
      }
      stage.epilogue(rs);
    }
    stage.after_phase(rs);
  }

  for (Observer* obs : obs_round_end_) {
    obs->on_round_end(t);
  }
  if (profiler_ != nullptr) profiler_->end_round(trace_sink_);
}

void Engine::run_rounds(Round count) {
  DG_EXPECTS(count >= 0);
  for (Round i = 0; i < count; ++i) {
    run_round();
  }
}

}  // namespace dg::sim
