#include "sim/engine.h"

#include <algorithm>
#include <unordered_set>

#include "util/assert.h"
#include "util/rng.h"

namespace dg::sim {

std::vector<ProcessId> assign_ids(std::size_t n, std::uint64_t seed) {
  std::vector<ProcessId> ids;
  ids.reserve(n);
  std::unordered_set<ProcessId> used;
  std::uint64_t counter = 0;
  while (ids.size() < n) {
    const ProcessId candidate = splitmix64(seed ^ splitmix64(counter++));
    if (candidate != 0 && used.insert(candidate).second) {
      ids.push_back(candidate);
    }
  }
  return ids;
}

Engine::Engine(const graph::DualGraph& g, LinkScheduler& scheduler,
               std::vector<std::unique_ptr<Process>> processes,
               std::uint64_t master_seed)
    : graph_(&g),
      scheduler_(&scheduler),
      processes_(std::move(processes)) {
  DG_EXPECTS(g.finalized());
  DG_EXPECTS(processes_.size() == g.size());
  for (const auto& p : processes_) {
    DG_EXPECTS(p != nullptr);
  }
  rngs_.reserve(processes_.size());
  for (std::size_t v = 0; v < processes_.size(); ++v) {
    // Stream tag 0x9 partitions process streams away from other consumers
    // of the same master seed (scheduler, id assignment, generators).
    rngs_.emplace_back(master_seed, 0x900000000ULL + v);
  }
  scheduler_->commit(g, derive_seed(master_seed, /*stream=*/0x5c4edULL));

  outgoing_slab_.resize(processes_.size());
  transmitting_.resize(processes_.size());
  edge_active_.resize(g.unreliable_edge_count());
  heard_.resize(processes_.size());
}

void Engine::add_observer(Observer* observer) {
  DG_EXPECTS(observer != nullptr);
  const unsigned mask = observer->interest();
  if (mask & Observer::kRoundBegin) obs_round_begin_.push_back(observer);
  if (mask & Observer::kTransmit) obs_transmit_.push_back(observer);
  if (mask & Observer::kReceive) obs_receive_.push_back(observer);
  if (mask & Observer::kSilence) obs_silence_.push_back(observer);
  if (mask & Observer::kRoundEnd) obs_round_end_.push_back(observer);
}

Process& Engine::process(graph::Vertex v) {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

const Process& Engine::process(graph::Vertex v) const {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

Rng& Engine::process_rng(graph::Vertex v) {
  DG_EXPECTS(v < rngs_.size());
  return rngs_[v];
}

void Engine::run_round() {
  const Round t = ++round_;
  const auto n = static_cast<graph::Vertex>(processes_.size());
  // Per-event fan-out guards: executions with no (interested) observers --
  // the Monte Carlo bulk -- skip the fan-outs entirely.
  const bool obs_tx = !obs_transmit_.empty();
  const bool obs_rx = !obs_receive_.empty();
  const bool obs_sil = !obs_silence_.empty();

  for (Observer* obs : obs_round_begin_) {
    obs->on_round_begin(t);
  }

  // Step 2: transmit decisions, into the packet slab + transmit bitmask.
  // `unreliable_probes` counts the edge-presence tests the reception pass
  // will make; it picks the scheduler consumption strategy below.
  transmitting_.clear();
  std::size_t unreliable_probes = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    RoundContext ctx(t, rngs_[v]);
    auto packet = processes_[v]->transmit(ctx);
    if (!packet.has_value()) continue;
    // The wire carries the true sender id; processes cannot spoof.
    DG_ASSERT(packet->sender == processes_[v]->id());
    outgoing_slab_[v] = *std::move(packet);
    transmitting_.set(v);
    unreliable_probes += graph_->unreliable_incident(v).size();
    if (obs_tx) {
      for (Observer* obs : obs_transmit_) {
        obs->on_transmit(t, v, outgoing_slab_[v]);
      }
    }
  }

  // Step 3: reception under the single-transmitter rule on the round
  // topology G_t = E + {active unreliable edges}.  The round's unreliable
  // subset comes from the oblivious scheduler, or -- for the E12
  // counterfactual, outside the paper's model -- from an installed adaptive
  // adversary that sees the transmit decisions first.
  //
  // Strategy: materialize the whole subset into edge_active_ (one bit-probe
  // per edge below) when the fill is word-cheap or the round is dense
  // enough in transmitter-incident edges to amortize a per-edge fill;
  // otherwise probe the scheduler per incident edge, so sparse rounds never
  // pay for edges nobody transmits across.  Both paths are bit-identical by
  // the fill_round() == active() contract.
  bool use_bitmap = true;
  if (adaptive_ != nullptr) {
    transmitting_bools_.assign(processes_.size(), false);
    transmitting_.for_each_set(
        [&](std::size_t v) { transmitting_bools_[v] = true; });
    adaptive_->plan_round(t, *graph_, transmitting_bools_);
    adaptive_->fill_round(edge_active_);
  } else if (unreliable_probes == 0) {
    use_bitmap = false;  // neither path will probe anything
  } else if (scheduler_->fill_round_is_word_cheap() ||
             unreliable_probes * 2 >= edge_active_.size()) {
    scheduler_->fill_round(t, edge_active_);
  } else {
    use_bitmap = false;
  }

  // Fused heard-count/heard-from pass: one packed word per vertex (high 32
  // bits last sender, low 32 bits count), scanned over CSR adjacency.
  std::fill(heard_.begin(), heard_.end(), 0U);
  transmitting_.for_each_set([&](std::size_t vi) {
    const auto v = static_cast<graph::Vertex>(vi);
    const std::uint64_t sender_word = static_cast<std::uint64_t>(v) << 32;
    for (graph::Vertex u : graph_->g_neighbors(v)) {
      heard_[u] = sender_word | ((heard_[u] + 1) & 0xffffffffULL);
    }
    if (use_bitmap) {
      for (const auto& [edge, u] : graph_->unreliable_incident(v)) {
        if (edge_active_.test(edge)) {
          heard_[u] = sender_word | ((heard_[u] + 1) & 0xffffffffULL);
        }
      }
    } else {
      for (const auto& [edge, u] : graph_->unreliable_incident(v)) {
        if (scheduler_->active(edge, t)) {
          heard_[u] = sender_word | ((heard_[u] + 1) & 0xffffffffULL);
        }
      }
    }
  });

  for (graph::Vertex u = 0; u < n; ++u) {
    if (transmitting_.test(u)) continue;  // transmitters do not receive
    RoundContext ctx(t, rngs_[u]);
    const std::uint64_t h = heard_[u];
    const auto count = static_cast<std::uint32_t>(h);
    if (count == 1) {
      const auto from = static_cast<graph::Vertex>(h >> 32);
      const Packet& packet = outgoing_slab_[from];
      if (obs_rx) {
        for (Observer* obs : obs_receive_) {
          obs->on_receive(t, u, from, packet);
        }
      }
      processes_[u]->receive(packet, ctx);
    } else {
      if (obs_sil) {
        for (Observer* obs : obs_silence_) {
          obs->on_silence(t, u, /*collision=*/count > 1);
        }
      }
      processes_[u]->receive(std::nullopt, ctx);
    }
  }

  // Step 4: outputs.
  for (graph::Vertex v = 0; v < n; ++v) {
    RoundContext ctx(t, rngs_[v]);
    processes_[v]->end_round(ctx);
  }

  for (Observer* obs : obs_round_end_) {
    obs->on_round_end(t);
  }
}

void Engine::run_rounds(Round count) {
  DG_EXPECTS(count >= 0);
  for (Round i = 0; i < count; ++i) {
    run_round();
  }
}

}  // namespace dg::sim
