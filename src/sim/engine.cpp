#include "sim/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <unordered_set>

#include "phys/dual_graph_channel.h"
#include "util/assert.h"
#include "util/rng.h"

namespace dg::sim {

std::vector<ProcessId> assign_ids(std::size_t n, std::uint64_t seed) {
  std::vector<ProcessId> ids;
  ids.reserve(n);
  std::unordered_set<ProcessId> used;
  std::uint64_t counter = 0;
  while (ids.size() < n) {
    const ProcessId candidate = splitmix64(seed ^ splitmix64(counter++));
    if (candidate != 0 && used.insert(candidate).second) {
      ids.push_back(candidate);
    }
  }
  return ids;
}

Engine::Engine(const graph::DualGraph& g, LinkScheduler& scheduler,
               std::vector<std::unique_ptr<Process>> processes,
               std::uint64_t master_seed)
    : graph_(&g),
      owned_channel_(std::make_unique<phys::DualGraphChannel>(scheduler)),
      channel_(owned_channel_.get()),
      processes_(std::move(processes)) {
  init(master_seed);
}

Engine::Engine(const graph::DualGraph& g, phys::ChannelModel& channel,
               std::vector<std::unique_ptr<Process>> processes,
               std::uint64_t master_seed)
    : graph_(&g), channel_(&channel), processes_(std::move(processes)) {
  init(master_seed);
}

void Engine::init(std::uint64_t master_seed) {
  master_seed_ = master_seed;
  const graph::DualGraph& g = *graph_;
  DG_EXPECTS(g.finalized());
  DG_EXPECTS(processes_.size() == g.size());
  for (const auto& p : processes_) {
    DG_EXPECTS(p != nullptr);
  }
  rngs_.reserve(processes_.size());
  for (std::size_t v = 0; v < processes_.size(); ++v) {
    // Stream tag 0x9 partitions process streams away from other consumers
    // of the same master seed (scheduler, id assignment, generators).
    rngs_.emplace_back(master_seed, 0x900000000ULL + v);
  }
  // The channel derives its randomness (scheduler commitment, SINR fading)
  // from the same master seed the pre-seam engine handed the scheduler.
  channel_->bind(g, master_seed);

  outgoing_slab_.resize(processes_.size());
  transmitting_.resize(processes_.size());
  heard_.resize(processes_.size());
  crashed_.resize(processes_.size());

  all_shard_safe_ =
      std::all_of(processes_.begin(), processes_.end(),
                  [](const auto& p) { return p->shard_safe(); });
  round_threads_ = default_round_threads();
}

std::size_t Engine::default_round_threads() {
  const char* env = std::getenv("DG_ROUND_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  if (std::string_view(env) == "max") {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || parsed == 0) return 1;
  return static_cast<std::size_t>(parsed);
}

void Engine::set_round_threads(std::size_t threads) {
  DG_EXPECTS(threads >= 1);
  round_threads_ = threads;
  // Re-poll consent: a wrapper may have reconfigured its listener fan-out
  // (e.g. LbSimulation's buffered mode) since init(), changing the answer.
  all_shard_safe_ =
      std::all_of(processes_.begin(), processes_.end(),
                  [](const auto& p) { return p->shard_safe(); });
}

std::size_t Engine::shard_block_size() const {
  const std::size_t n = processes_.size();
  const std::size_t target_blocks = round_threads_ * 4;
  std::size_t size = (n + target_blocks - 1) / target_blocks;
  return (size + 63) / 64 * 64;
}

void Engine::add_observer(Observer* observer) {
  DG_EXPECTS(observer != nullptr);
  const unsigned mask = observer->interest();
  if (mask & Observer::kRoundBegin) obs_round_begin_.push_back(observer);
  if (mask & Observer::kTransmit) obs_transmit_.push_back(observer);
  if (mask & Observer::kReceive) obs_receive_.push_back(observer);
  if (mask & Observer::kSilence) obs_silence_.push_back(observer);
  if (mask & Observer::kRoundEnd) obs_round_end_.push_back(observer);
  if (mask & Observer::kFault) obs_fault_.push_back(observer);
}

void Engine::set_telemetry(obs::Registry* registry, obs::TraceSink* sink) {
  registry_ = registry;
  trace_sink_ = registry != nullptr ? sink : nullptr;
  if (registry == nullptr) {
    profiler_.reset();
    m_rounds_ = m_tx_ = m_delivered_ = m_collisions_ = m_silent_ = nullptr;
    m_crashes_ = m_recoveries_ = nullptr;
    m_dispatch_serial_ = m_dispatch_sharded_ = nullptr;
    m_tx_per_round_ = nullptr;
    return;
  }
  using obs::Domain;
  m_rounds_ = &registry->counter("engine.rounds", Domain::kLogical);
  m_tx_ = &registry->counter("engine.tx", Domain::kLogical);
  m_delivered_ = &registry->counter("engine.rx.delivered", Domain::kLogical);
  m_collisions_ =
      &registry->counter("engine.rx.collisions", Domain::kLogical);
  m_silent_ = &registry->counter("engine.rx.silent", Domain::kLogical);
  m_crashes_ = &registry->counter("engine.faults.crashes", Domain::kLogical);
  m_recoveries_ =
      &registry->counter("engine.faults.recoveries", Domain::kLogical);
  m_tx_per_round_ = &registry->histogram(
      "engine.tx_per_round", Domain::kLogical,
      {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  // Dispatch counts and thread knobs depend on round_threads by
  // definition, so they live in the (never-gated) timing domain.
  m_dispatch_serial_ =
      &registry->counter("engine.dispatch.serial", Domain::kTiming);
  m_dispatch_sharded_ =
      &registry->counter("engine.dispatch.sharded", Domain::kTiming);
  registry->gauge("engine.round_threads", Domain::kTiming) =
      static_cast<double>(round_threads_);
  registry->gauge("engine.vertices", Domain::kLogical) =
      static_cast<double>(processes_.size());
  profiler_ = std::make_unique<obs::PhaseProfiler>(*registry);
}

void Engine::record_logical_round() {
  if (m_rounds_ == nullptr) return;
  *m_rounds_ += 1;
  const std::uint64_t tx = transmitting_.count();
  *m_tx_ += tx;
  m_tx_per_round_->record(static_cast<double>(tx));
  const bool faults = fault_plan_ != nullptr;
  const auto n = static_cast<graph::Vertex>(processes_.size());
  std::uint64_t delivered = 0, collisions = 0, silent = 0;
  for (graph::Vertex u = 0; u < n; ++u) {
    if (transmitting_.test(u)) continue;
    if (faults && crashed_.test(u)) continue;
    const auto count = static_cast<std::uint32_t>(heard_[u]);
    if (count == 1) {
      ++delivered;
    } else if (count > 1) {
      ++collisions;
    } else {
      ++silent;
    }
  }
  *m_delivered_ += delivered;
  *m_collisions_ += collisions;
  *m_silent_ += silent;
}

Process& Engine::process(graph::Vertex v) {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

const Process& Engine::process(graph::Vertex v) const {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

Rng& Engine::process_rng(graph::Vertex v) {
  DG_EXPECTS(v < rngs_.size());
  return rngs_[v];
}

void Engine::set_fault_plan(fault::FaultPlan* plan,
                            fault::FaultListener* listener) {
  fault_plan_ = plan;
  fault_listener_ = plan != nullptr ? listener : nullptr;
  if (plan != nullptr) plan->bind(*graph_, master_seed_);
}

void Engine::apply_faults(Round t) {
  if (fault_plan_ == nullptr) return;
  fault_events_.clear();
  fault_plan_->plan_round(t, crashed_, fault_events_);
  for (const fault::FaultEvent& ev : fault_events_) {
    DG_EXPECTS(ev.vertex < processes_.size());
    if (ev.kind == fault::FaultKind::kCrash) {
      if (crashed_.test(ev.vertex)) continue;  // idempotent
      crashed_.set(ev.vertex);
      // Listener first: it may read pre-crash process state (e.g. abort
      // the in-flight broadcast) before on_crash wipes it.
      if (fault_listener_ != nullptr) fault_listener_->on_crash(t, ev.vertex);
      processes_[ev.vertex]->on_crash(t);
      for (Observer* obs : obs_fault_) obs->on_crash(t, ev.vertex);
      if (m_crashes_ != nullptr) *m_crashes_ += 1;
      if (trace_sink_ != nullptr) trace_sink_->crash(t, ev.vertex);
    } else {
      if (!crashed_.test(ev.vertex)) continue;  // idempotent
      crashed_.reset(ev.vertex);
      // Process first: the listener talks to a re-initialized process.
      processes_[ev.vertex]->on_recover(t);
      if (fault_listener_ != nullptr) {
        fault_listener_->on_recover(t, ev.vertex);
      }
      for (Observer* obs : obs_fault_) obs->on_recover(t, ev.vertex);
      if (m_recoveries_ != nullptr) *m_recoveries_ += 1;
      if (trace_sink_ != nullptr) trace_sink_->recover(t, ev.vertex);
    }
  }
}

void Engine::run_round() {
  if (round_threads_ > 1 && all_shard_safe_ && channel_->shardable()) {
    const std::size_t block_size = shard_block_size();
    const std::size_t blocks =
        (processes_.size() + block_size - 1) / block_size;
    if (blocks >= 2) {
      if (pool_ == nullptr || pool_->threads() != round_threads_) {
        pool_ = std::make_unique<util::ThreadPool>(round_threads_);
        // Channels may shard their serial-section precomputes (e.g. the
        // SINR far field) over the same pool; it is idle whenever the
        // engine calls into the channel serially.
        channel_->set_round_pool(pool_.get());
      }
      run_round_sharded(block_size, blocks);
      return;
    }
  }
  run_round_serial();
}

void Engine::run_round_serial() {
  const Round t = ++round_;
  if (profiler_ != nullptr) {
    profiler_->begin_round(t);
    *m_dispatch_serial_ += 1;
  }
  apply_faults(t);
  const auto n = static_cast<graph::Vertex>(processes_.size());
  // Per-event fan-out guards: executions with no (interested) observers --
  // the Monte Carlo bulk -- skip the fan-outs entirely.  Same idea for the
  // crash probes: fault-free executions never pay the bitmap tests.
  const bool obs_tx = !obs_transmit_.empty();
  const bool obs_rx = !obs_receive_.empty();
  const bool obs_sil = !obs_silence_.empty();
  const bool faults = fault_plan_ != nullptr;

  for (Observer* obs : obs_round_begin_) {
    obs->on_round_begin(t);
  }

  // Step 2: transmit decisions, into the packet slab + transmit bitmask.
  // Crashed vertices sit the whole round out: no process calls, no
  // observer events, rng stream untouched.
  transmitting_.clear();
  {
    obs::ScopedPhase phase(profiler_.get(), obs::Phase::kTransmit);
    for (graph::Vertex v = 0; v < n; ++v) {
      if (faults && crashed_.test(v)) continue;
      RoundContext ctx(t, rngs_[v]);
      auto packet = processes_[v]->transmit(ctx);
      if (!packet.has_value()) continue;
      // The wire carries the true sender id; processes cannot spoof.
      DG_ASSERT(packet->sender == processes_[v]->id());
      outgoing_slab_[v] = *std::move(packet);
      transmitting_.set(v);
      if (obs_tx) {
        for (Observer* obs : obs_transmit_) {
          obs->on_transmit(t, v, outgoing_slab_[v]);
        }
      }
    }
  }

  // Step 3: reception, decided by the channel model (the Section 2
  // single-transmitter rule under DualGraphChannel, SINR physics under
  // SinrChannel).  The channel fills one packed heard word per vertex (high
  // 32 bits last sender, low 32 bits decodable-sender count).
  {
    obs::ScopedPhase phase(profiler_.get(), obs::Phase::kCompute);
    std::fill(heard_.begin(), heard_.end(), 0U);
    channel_->compute_round(t, transmitting_, heard_);
  }
  record_logical_round();

  {
    obs::ScopedPhase phase(profiler_.get(), obs::Phase::kReceive);
    for (graph::Vertex u = 0; u < n; ++u) {
      if (transmitting_.test(u)) continue;  // transmitters do not receive
      if (faults && crashed_.test(u)) continue;
      RoundContext ctx(t, rngs_[u]);
      const std::uint64_t h = heard_[u];
      const auto count = static_cast<std::uint32_t>(h);
      if (count == 1) {
        const auto from = static_cast<graph::Vertex>(h >> 32);
        const Packet& packet = outgoing_slab_[from];
        if (obs_rx) {
          for (Observer* obs : obs_receive_) {
            obs->on_receive(t, u, from, packet);
          }
        }
        processes_[u]->receive(packet, ctx);
      } else {
        if (obs_sil) {
          for (Observer* obs : obs_silence_) {
            obs->on_silence(t, u, /*collision=*/count > 1);
          }
        }
        processes_[u]->receive(std::nullopt, ctx);
      }
    }
    if (hooks_ != nullptr) hooks_->after_receive_phase(t);
  }

  // Step 4: outputs.
  {
    obs::ScopedPhase phase(profiler_.get(), obs::Phase::kOutput);
    for (graph::Vertex v = 0; v < n; ++v) {
      if (faults && crashed_.test(v)) continue;
      RoundContext ctx(t, rngs_[v]);
      processes_[v]->end_round(ctx);
    }
    if (hooks_ != nullptr) hooks_->after_output_phase(t);
  }

  for (Observer* obs : obs_round_end_) {
    obs->on_round_end(t);
  }
  if (profiler_ != nullptr) profiler_->end_round(trace_sink_);
}

void Engine::run_round_sharded(std::size_t block_size, std::size_t blocks) {
  const Round t = ++round_;
  if (profiler_ != nullptr) {
    profiler_->begin_round(t);
    *m_dispatch_sharded_ += 1;
  }
  // Every pool dispatch of the round funnels through this wrapper so the
  // profiler can total the parallel-section wall clock (the utilization
  // numerator) without instrumenting the pool itself.
  const auto pooled = [&](std::size_t count, auto&& fn) {
    if (profiler_ == nullptr) {
      pool_->for_blocks(count, fn);
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    pool_->for_blocks(count, fn);
    profiler_->add_parallel_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  };
  // Fault events apply serially before any parallel phase, so crashed_ is
  // frozen (read-only) for the whole round -- the same events, in the same
  // order, as the serial loop.
  apply_faults(t);
  const bool faults = fault_plan_ != nullptr;
  const auto n = static_cast<graph::Vertex>(processes_.size());
  const auto block_range = [&](std::size_t b) {
    const auto begin = static_cast<graph::Vertex>(b * block_size);
    const auto end = static_cast<graph::Vertex>(
        std::min(static_cast<std::size_t>(begin) + block_size,
                 processes_.size()));
    return std::pair<graph::Vertex, graph::Vertex>(begin, end);
  };

  for (Observer* obs : obs_round_begin_) {
    obs->on_round_begin(t);
  }

  // Step 2: transmit decisions, block-parallel.  Each block's vertices are
  // a whole number of bitmap words (block_size is a multiple of 64), so the
  // transmitting_.set() read-modify-writes never touch another block's
  // word; slab entries and rng streams are per-vertex.
  transmitting_.clear();
  {
    obs::ScopedPhase phase(profiler_.get(), obs::Phase::kTransmit);
    pooled(blocks, [&](std::size_t b) {
      const auto [begin, end] = block_range(b);
      for (graph::Vertex v = begin; v < end; ++v) {
        if (faults && crashed_.test(v)) continue;
        RoundContext ctx(t, rngs_[v]);
        auto packet = processes_[v]->transmit(ctx);
        if (!packet.has_value()) continue;
        DG_ASSERT(packet->sender == processes_[v]->id());
        outgoing_slab_[v] = *std::move(packet);
        transmitting_.set(v);
      }
    });
    // Serial transmit fan-out: ascending-vertex replay off the bitmap is
    // the exact event stream the serial loop emits inline.
    if (!obs_transmit_.empty()) {
      transmitting_.for_each_set([&](std::size_t v) {
        for (Observer* obs : obs_transmit_) {
          obs->on_transmit(t, static_cast<graph::Vertex>(v),
                           outgoing_slab_[v]);
        }
      });
    }
  }

  // Step 3: reception.  The channel stages everything transmit-set-
  // dependent serially, then fills disjoint receiver ranges in parallel.
  {
    obs::ScopedPhase phase(profiler_.get(), obs::Phase::kPrepare);
    channel_->prepare_round(t, transmitting_);
  }
  {
    obs::ScopedPhase phase(profiler_.get(), obs::Phase::kCompute);
    pooled(blocks, [&](std::size_t b) {
      const auto [begin, end] = block_range(b);
      std::fill(heard_.begin() + begin, heard_.begin() + end, 0U);
      channel_->compute_shard(t, transmitting_, heard_, begin, end);
    });
  }
  record_logical_round();

  // Deliver block-parallel (per-vertex state only -- shard_safe() is the
  // processes' promise that their receive() fan-out tolerates this), then
  // replay the reception observers serially from the heard words: same
  // verdicts, ascending vertex order, exactly the serial loop's stream.
  {
    obs::ScopedPhase phase(profiler_.get(), obs::Phase::kReceive);
    pooled(blocks, [&](std::size_t b) {
      const auto [begin, end] = block_range(b);
      for (graph::Vertex u = begin; u < end; ++u) {
        if (transmitting_.test(u)) continue;
        if (faults && crashed_.test(u)) continue;
        RoundContext ctx(t, rngs_[u]);
        const std::uint64_t h = heard_[u];
        if (static_cast<std::uint32_t>(h) == 1) {
          processes_[u]->receive(outgoing_slab_[h >> 32], ctx);
        } else {
          processes_[u]->receive(std::nullopt, ctx);
        }
      }
    });
    if (!obs_receive_.empty() || !obs_silence_.empty()) {
      for (graph::Vertex u = 0; u < n; ++u) {
        if (transmitting_.test(u)) continue;
        if (faults && crashed_.test(u)) continue;
        const std::uint64_t h = heard_[u];
        const auto count = static_cast<std::uint32_t>(h);
        if (count == 1) {
          const auto from = static_cast<graph::Vertex>(h >> 32);
          for (Observer* obs : obs_receive_) {
            obs->on_receive(t, u, from, outgoing_slab_[from]);
          }
        } else {
          for (Observer* obs : obs_silence_) {
            obs->on_silence(t, u, /*collision=*/count > 1);
          }
        }
      }
    }
    if (hooks_ != nullptr) hooks_->after_receive_phase(t);
  }

  // Step 4: outputs, block-parallel, then the serial checkpoint.
  {
    obs::ScopedPhase phase(profiler_.get(), obs::Phase::kOutput);
    pooled(blocks, [&](std::size_t b) {
      const auto [begin, end] = block_range(b);
      for (graph::Vertex v = begin; v < end; ++v) {
        if (faults && crashed_.test(v)) continue;
        RoundContext ctx(t, rngs_[v]);
        processes_[v]->end_round(ctx);
      }
    });
    if (hooks_ != nullptr) hooks_->after_output_phase(t);
  }

  for (Observer* obs : obs_round_end_) {
    obs->on_round_end(t);
  }
  if (profiler_ != nullptr) profiler_->end_round(trace_sink_);
}

void Engine::run_rounds(Round count) {
  DG_EXPECTS(count >= 0);
  for (Round i = 0; i < count; ++i) {
    run_round();
  }
}

}  // namespace dg::sim
