#include "sim/engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <thread>
#include <unordered_set>

#include "phys/dual_graph_channel.h"
#include "util/assert.h"
#include "util/rng.h"

namespace dg::sim {

namespace {

/// silent_until_ value that parks a vertex for the rest of the execution
/// (crashed vertices; cleared on recovery).
constexpr Round kParkedForever = std::numeric_limits<Round>::max();

/// Saturating promise horizon: parked through round t + j.
constexpr Round promise_until(Round t, std::int64_t j) {
  return j >= kParkedForever - t ? kParkedForever : t + j;
}

}  // namespace

std::vector<ProcessId> assign_ids(std::size_t n, std::uint64_t seed) {
  std::vector<ProcessId> ids;
  ids.reserve(n);
  std::unordered_set<ProcessId> used;
  std::uint64_t counter = 0;
  while (ids.size() < n) {
    const ProcessId candidate = splitmix64(seed ^ splitmix64(counter++));
    if (candidate != 0 && used.insert(candidate).second) {
      ids.push_back(candidate);
    }
  }
  return ids;
}

// ---------------------------------------------------------------------------
// The core stage set.  Each stage is a thin adapter from the RoundStage
// contract onto the engine's slabs and fan-out lists; the bodies are the
// phase bodies of the former monolithic round loops, split along the
// prologue/run/run_block/replay/epilogue seams so one driver serves both
// dispatches with the exact same event order (see sim/stage.h).
// ---------------------------------------------------------------------------

struct EngineStages {
  /// "fault": the serial fault checkpoint.  Only active with a plan
  /// installed, so fault-free rounds skip the bracket entirely.  Runs
  /// before the on_round_begin fan-out (the transmit slot carries that
  /// seam), exactly where apply_faults() sat in the monolithic loop.
  class FaultStage final : public RoundStage {
   public:
    explicit FaultStage(Engine& e) : e_(e) {}
    std::string name() const override { return "fault"; }
    SlabSet reads() const override { return 0; }
    SlabSet writes() const override {
      return slab_bit(Slab::kCrashedBitmap);
    }
    bool active(bool) const override { return e_.fault_plan_ != nullptr; }
    void run(RoundState& rs) override { e_.apply_faults(rs.round); }

   private:
    Engine& e_;
  };

  /// "transmit": per-vertex transmit decisions into the packet slab and
  /// transmit bitmap.  Blocks own whole bitmap words (block sizes are
  /// multiples of 64), so the set() read-modify-writes never touch
  /// another block's word.
  class TransmitStage final : public RoundStage {
   public:
    explicit TransmitStage(Engine& e) : e_(e) {}
    std::string name() const override { return "transmit"; }
    SlabSet reads() const override {
      return slab_bit(Slab::kCrashedBitmap) | slab_bit(Slab::kRngStreams);
    }
    SlabSet writes() const override {
      return slab_bit(Slab::kTransmitBitmap) | slab_bit(Slab::kPacketSlab) |
             slab_bit(Slab::kRngStreams);
    }
    bool vertex_disjoint_writes() const override { return true; }
    void prologue(RoundState&) override { e_.transmitting_.clear(); }
    void run(RoundState& rs) override {
      if (rs.sparse) {
        decide_sparse(rs, 0, static_cast<graph::Vertex>(rs.vertex_count),
                      !e_.obs_transmit_.empty());
        return;
      }
      decide(rs, 0, static_cast<graph::Vertex>(rs.vertex_count),
             !e_.obs_transmit_.empty());
    }
    void run_block(RoundState& rs, graph::Vertex begin,
                   graph::Vertex end) override {
      if (rs.sparse) {
        decide_sparse(rs, begin, end, /*inline_obs=*/false);
        return;
      }
      decide(rs, begin, end, /*inline_obs=*/false);
    }
    void replay(RoundState& rs) override {
      // Ascending-vertex replay off the bitmap is the exact event stream
      // the serial dispatch emits inline.
      if (e_.obs_transmit_.empty()) return;
      const Round t = rs.round;
      e_.transmitting_.for_each_set([&](std::size_t v) {
        for (Observer* obs : e_.obs_transmit_) {
          obs->on_transmit(t, static_cast<graph::Vertex>(v),
                           e_.outgoing_slab_[v]);
        }
      });
    }

   private:
    void decide(RoundState& rs, graph::Vertex begin, graph::Vertex end,
                bool inline_obs) {
      const Round t = rs.round;
      for (graph::Vertex v = begin; v < end; ++v) {
        if (rs.faults && e_.crashed_.test(v)) continue;
        RoundContext ctx(t, e_.rngs_[v]);
        auto packet = e_.processes_[v]->transmit(ctx);
        if (!packet.has_value()) continue;
        // The wire carries the true sender id; processes cannot spoof.
        DG_ASSERT(packet->sender == e_.processes_[v]->id());
        e_.outgoing_slab_[v] = *std::move(packet);
        e_.transmitting_.set(v);
        if (inline_obs) {
          for (Observer* obs : e_.obs_transmit_) {
            obs->on_transmit(t, v, e_.outgoing_slab_[v]);
          }
        }
      }
    }

    /// Sparse dispatch: whole 64-vertex words of parked vertices are
    /// skipped via word_silent_until_; a vertex whose promise just expired
    /// gets one batched silent_steps() catch-up before its dense step.
    /// Crashed vertices are parked forever, so no explicit crashed_ test.
    void decide_sparse(RoundState& rs, graph::Vertex begin, graph::Vertex end,
                       bool inline_obs) {
      const Round t = rs.round;
      const std::size_t wb = begin / 64;
      const std::size_t we = (static_cast<std::size_t>(end) + 63) / 64;
      for (std::size_t w = wb; w < we; ++w) {
        if (e_.word_silent_until_[w] >= t) continue;
        const auto lo = static_cast<graph::Vertex>(w * 64);
        const auto hi =
            std::min(static_cast<graph::Vertex>(lo + 64), end);
        for (graph::Vertex v = lo; v < hi; ++v) {
          if (e_.silent_until_[v] >= t) continue;  // parked (or crashed)
          if (e_.last_stepped_[v] < t - 1) {
            e_.processes_[v]->silent_steps(t - 1 - e_.last_stepped_[v]);
          }
          e_.last_stepped_[v] = t;
          RoundContext ctx(t, e_.rngs_[v]);
          auto packet = e_.processes_[v]->transmit(ctx);
          if (!packet.has_value()) continue;
          DG_ASSERT(packet->sender == e_.processes_[v]->id());
          e_.outgoing_slab_[v] = *std::move(packet);
          e_.transmitting_.set(v);
          if (inline_obs) {
            for (Observer* obs : e_.obs_transmit_) {
              obs->on_transmit(t, v, e_.outgoing_slab_[v]);
            }
          }
        }
      }
    }

    Engine& e_;
  };

  /// "frontier": serial computation of the round's activity mask
  /// (Slab::kActivityMask) -- fault-event vertices plus the channel's
  /// conservative hearer superset of the transmit set -- and the word /
  /// shard-block indices derived from it.  Only active in sparse rounds;
  /// the dense dispatch never pays the bracket.
  class FrontierStage final : public RoundStage {
   public:
    explicit FrontierStage(Engine& e) : e_(e) {}
    std::string name() const override { return "frontier"; }
    SlabSet reads() const override {
      return slab_bit(Slab::kTransmitBitmap) | slab_bit(Slab::kCrashedBitmap);
    }
    SlabSet writes() const override {
      return slab_bit(Slab::kActivityMask);
    }
    bool active(bool) const override { return e_.sparse_active_; }
    void run(RoundState& rs) override {
      // Clear exactly last round's frontier words (the rest are already
      // zero), then refill for this round.
      auto fwords = e_.frontier_.words();
      for (std::size_t w : e_.active_words_) fwords[w] = 0;
      e_.active_words_.clear();
      if (rs.faults) {
        // Fault-event vertices join the frontier so a just-recovered
        // vertex reads a freshly-zeroed heard word, never a stale one.
        for (const fault::FaultEvent& ev : e_.fault_events_) {
          e_.frontier_.set(ev.vertex);
        }
      }
      e_.channel_->fill_frontier(e_.transmitting_, e_.frontier_);

      const std::size_t blocks =
          rs.sharded ? (rs.vertex_count + rs.block_size - 1) / rs.block_size
                     : 0;
      if (rs.sharded) e_.block_active_.assign(blocks, 0);
      for (std::size_t w = 0; w < fwords.size(); ++w) {
        if (fwords[w] == 0) continue;
        e_.active_words_.push_back(w);
        if (rs.sharded) e_.block_active_[(w * 64) / rs.block_size] = 1;
      }
      if (e_.m_active_blocks_ != nullptr) {
        *e_.m_active_blocks_ += e_.active_words_.size();
      }
      if (e_.m_frontier_fraction_ != nullptr && !fwords.empty()) {
        *e_.m_frontier_fraction_ =
            static_cast<double>(e_.active_words_.size()) /
            static_cast<double>(fwords.size());
      }
    }

   private:
    Engine& e_;
  };

  /// "prepare_round": the channel's serial staging of everything
  /// transmit-set-dependent before the parallel reception fill.  Sharded
  /// rounds only; the serial channel call fuses prepare into compute.
  class ScheduleStage final : public RoundStage {
   public:
    explicit ScheduleStage(Engine& e) : e_(e) {}
    std::string name() const override { return "prepare_round"; }
    SlabSet reads() const override {
      return slab_bit(Slab::kTransmitBitmap);
    }
    SlabSet writes() const override { return 0; }
    bool active(bool sharded) const override { return sharded; }
    void run(RoundState& rs) override {
      e_.channel_->prepare_round(rs.round, e_.transmitting_);
    }

   private:
    Engine& e_;
  };

  /// "compute": reception physics, delegated to the channel model.  Fills
  /// one packed heard word per vertex; the logical-metrics pass over the
  /// frozen verdicts runs in after_phase (outside the timing bracket, and
  /// before any spliced stage anchored behind this one -- counters tally
  /// channel verdicts, not post-splice deliveries).
  class ChannelStage final : public RoundStage {
   public:
    explicit ChannelStage(Engine& e) : e_(e) {}
    std::string name() const override { return "compute"; }
    SlabSet reads() const override {
      return slab_bit(Slab::kTransmitBitmap) | slab_bit(Slab::kPacketSlab);
    }
    SlabSet writes() const override {
      return slab_bit(Slab::kHeardWords);
    }
    bool vertex_disjoint_writes() const override { return true; }
    void run(RoundState& rs) override {
      if (rs.sparse) {
        // Dirty-word zeroing: only this round's frontier words are cleared
        // and filled; entries outside them are stale by contract and never
        // read (every reader is frontier-gated while sparse is active).
        const std::size_t n = e_.heard_.size();
        for (std::size_t w : e_.active_words_) {
          const std::size_t lo = w * 64;
          std::fill(e_.heard_.begin() + static_cast<std::ptrdiff_t>(lo),
                    e_.heard_.begin() +
                        static_cast<std::ptrdiff_t>(std::min(lo + 64, n)),
                    0U);
        }
        e_.channel_->compute_frontier(rs.round, e_.transmitting_, e_.heard_,
                                      e_.frontier_);
        return;
      }
      std::fill(e_.heard_.begin(), e_.heard_.end(), 0U);
      e_.channel_->compute_round(rs.round, e_.transmitting_, e_.heard_);
    }
    void run_block(RoundState& rs, graph::Vertex begin,
                   graph::Vertex end) override {
      if (rs.sparse) {
        // O(1) idle-block early-out, then zero + compute over maximal runs
        // of frontier words inside the block (blocks own whole words).
        if (e_.block_active_[begin / rs.block_size] == 0) return;
        const auto fwords = e_.frontier_.words();
        const std::size_t wb = begin / 64;
        const std::size_t we = (static_cast<std::size_t>(end) + 63) / 64;
        std::size_t w = wb;
        while (w < we) {
          if (fwords[w] == 0) {
            ++w;
            continue;
          }
          std::size_t run_end = w + 1;
          while (run_end < we && fwords[run_end] != 0) ++run_end;
          const auto lo = static_cast<graph::Vertex>(w * 64);
          const auto hi = std::min(
              static_cast<graph::Vertex>(run_end * 64), end);
          std::fill(e_.heard_.begin() + lo, e_.heard_.begin() + hi, 0U);
          e_.channel_->compute_shard(rs.round, e_.transmitting_, e_.heard_,
                                     lo, hi);
          w = run_end;
        }
        return;
      }
      std::fill(e_.heard_.begin() + begin, e_.heard_.begin() + end, 0U);
      e_.channel_->compute_shard(rs.round, e_.transmitting_, e_.heard_,
                                 begin, end);
    }
    void after_phase(RoundState&) override { e_.record_logical_round(); }

   private:
    Engine& e_;
  };

  /// "receive": hands every listener its verdict -- the decoded packet on
  /// a clean single-transmitter round (unless a spliced stage masked the
  /// delivery), the null indicator otherwise.
  class ReceiveStage final : public RoundStage {
   public:
    explicit ReceiveStage(Engine& e) : e_(e) {}
    std::string name() const override { return "receive"; }
    SlabSet reads() const override {
      return slab_bit(Slab::kTransmitBitmap) | slab_bit(Slab::kPacketSlab) |
             slab_bit(Slab::kHeardWords) | slab_bit(Slab::kCrashedBitmap) |
             slab_bit(Slab::kDeliveryMask) | slab_bit(Slab::kRngStreams);
    }
    SlabSet writes() const override {
      return slab_bit(Slab::kRngStreams);
    }
    bool vertex_disjoint_writes() const override { return true; }
    void run(RoundState& rs) override {
      if (rs.sparse) {
        // With silence observers attached the dense event stream mentions
        // every listening vertex, so a full mask-aware pass (heard read
        // through the frontier filter) reproduces it exactly; without
        // them, only frontier and promise-expired words are visited.
        if (!e_.obs_silence_.empty()) {
          deliver_sparse_full(rs, 0,
                              static_cast<graph::Vertex>(rs.vertex_count));
        } else {
          deliver_sparse(rs, 0, static_cast<graph::Vertex>(rs.vertex_count),
                         /*obs_rx=*/!e_.obs_receive_.empty());
        }
        return;
      }
      deliver(rs, 0, static_cast<graph::Vertex>(rs.vertex_count),
              /*inline_obs=*/true);
    }
    void run_block(RoundState& rs, graph::Vertex begin,
                   graph::Vertex end) override {
      if (rs.sparse) {
        deliver_sparse(rs, begin, end, /*obs_rx=*/false);
        return;
      }
      deliver(rs, begin, end, /*inline_obs=*/false);
    }
    void replay(RoundState& rs) override {
      // Replays the reception observers serially from the frozen heard
      // words: same verdicts, ascending vertex order, exactly the serial
      // dispatch's stream.  In sparse rounds heard_ is read through the
      // frontier filter -- entries outside frontier words are stale and
      // stand for the 0 the dense path would have computed.
      if (e_.obs_receive_.empty() && e_.obs_silence_.empty()) return;
      const Round t = rs.round;
      const auto n = static_cast<graph::Vertex>(rs.vertex_count);
      const auto fwords = e_.frontier_.words();
      for (graph::Vertex u = 0; u < n; ++u) {
        if (e_.transmitting_.test(u)) continue;
        if (rs.faults && e_.crashed_.test(u)) continue;
        const std::uint64_t h =
            (!rs.sparse || fwords[u >> 6] != 0) ? e_.heard_[u] : 0;
        const auto count = static_cast<std::uint32_t>(h);
        if (count == 1 && !masked(u)) {
          const auto from = static_cast<graph::Vertex>(h >> 32);
          for (Observer* obs : e_.obs_receive_) {
            obs->on_receive(t, u, from, e_.outgoing_slab_[from]);
          }
        } else {
          for (Observer* obs : e_.obs_silence_) {
            obs->on_silence(t, u, /*collision=*/count > 1);
          }
        }
      }
    }
    void epilogue(RoundState& rs) override {
      if (e_.hooks_ != nullptr) e_.hooks_->after_receive_phase(rs.round);
    }

   private:
    bool masked(graph::Vertex u) const {
      return e_.deliver_masked_ && e_.delivery_mask_.test(u);
    }

    void deliver(RoundState& rs, graph::Vertex begin, graph::Vertex end,
                 bool inline_obs) {
      const Round t = rs.round;
      const bool obs_rx = inline_obs && !e_.obs_receive_.empty();
      const bool obs_sil = inline_obs && !e_.obs_silence_.empty();
      for (graph::Vertex u = begin; u < end; ++u) {
        if (e_.transmitting_.test(u)) continue;  // transmitters don't listen
        if (rs.faults && e_.crashed_.test(u)) continue;
        RoundContext ctx(t, e_.rngs_[u]);
        const std::uint64_t h = e_.heard_[u];
        const auto count = static_cast<std::uint32_t>(h);
        if (count == 1 && !masked(u)) {
          const auto from = static_cast<graph::Vertex>(h >> 32);
          const Packet& packet = e_.outgoing_slab_[from];
          if (obs_rx) {
            for (Observer* obs : e_.obs_receive_) {
              obs->on_receive(t, u, from, packet);
            }
          }
          e_.processes_[u]->receive(packet, ctx);
        } else {
          if (obs_sil) {
            for (Observer* obs : e_.obs_silence_) {
              obs->on_silence(t, u, /*collision=*/count > 1);
            }
          }
          e_.processes_[u]->receive(std::nullopt, ctx);
        }
      }
    }

    /// Wakes a parked vertex on a count==1 delivery: batched cursor
    /// catch-up through round t-1, then the round-t transmit() call the
    /// dense path would have made (the silent promise covers round t, so
    /// it must return nullopt and draw no randomness), then unpark.
    void wake(graph::Vertex u, Round t) {
      if (e_.last_stepped_[u] < t - 1) {
        e_.processes_[u]->silent_steps(t - 1 - e_.last_stepped_[u]);
      }
      RoundContext ctx(t, e_.rngs_[u]);
      auto packet = e_.processes_[u]->transmit(ctx);
      DG_ASSERT(!packet.has_value());  // the promise covered round t
      (void)packet;
      e_.last_stepped_[u] = t;
      e_.silent_until_[u] = t - 1;
      const std::size_t w = u >> 6;
      // run_block owns whole words, so this write never races.
      if (e_.word_silent_until_[w] > t - 1) e_.word_silent_until_[w] = t - 1;
    }

    /// Sparse dispatch without silence observers: frontier words get the
    /// verdict loop (waking parked vertices on deliveries); non-frontier
    /// words are visited only while some vertex's promise has expired, and
    /// then only live vertices get the forced null reception -- without
    /// reading their (stale) heard words.
    void deliver_sparse(RoundState& rs, graph::Vertex begin, graph::Vertex end,
                        bool obs_rx) {
      const Round t = rs.round;
      const auto fwords = e_.frontier_.words();
      const std::size_t wb = begin / 64;
      const std::size_t we = (static_cast<std::size_t>(end) + 63) / 64;
      for (std::size_t w = wb; w < we; ++w) {
        const auto lo = static_cast<graph::Vertex>(w * 64);
        const auto hi = std::min(static_cast<graph::Vertex>(lo + 64), end);
        if (fwords[w] == 0) {
          if (e_.word_silent_until_[w] >= t) continue;
          for (graph::Vertex u = lo; u < hi; ++u) {
            if (e_.transmitting_.test(u)) continue;
            if (e_.silent_until_[u] >= t) continue;  // parked (or crashed)
            RoundContext ctx(t, e_.rngs_[u]);
            e_.processes_[u]->receive(std::nullopt, ctx);
          }
          continue;
        }
        // Frontier word: every heard entry in it was zeroed and filled
        // this round, so verdicts are read directly.
        for (graph::Vertex u = lo; u < hi; ++u) {
          if (e_.transmitting_.test(u)) continue;
          if (rs.faults && e_.crashed_.test(u)) continue;
          const std::uint64_t h = e_.heard_[u];
          const auto count = static_cast<std::uint32_t>(h);
          if (count == 1) {
            if (e_.silent_until_[u] >= t) wake(u, t);
            const auto from = static_cast<graph::Vertex>(h >> 32);
            const Packet& packet = e_.outgoing_slab_[from];
            if (obs_rx) {
              for (Observer* obs : e_.obs_receive_) {
                obs->on_receive(t, u, from, packet);
              }
            }
            RoundContext ctx(t, e_.rngs_[u]);
            e_.processes_[u]->receive(packet, ctx);
          } else {
            if (e_.silent_until_[u] >= t) continue;  // promised no-op
            RoundContext ctx(t, e_.rngs_[u]);
            e_.processes_[u]->receive(std::nullopt, ctx);
          }
        }
      }
    }

    /// Sparse dispatch with silence observers (serial rounds only): one
    /// full ascending pass so the observer stream is the dense stream
    /// event for event; process calls still honor the parked promises.
    void deliver_sparse_full(RoundState& rs, graph::Vertex begin,
                             graph::Vertex end) {
      const Round t = rs.round;
      const bool obs_rx = !e_.obs_receive_.empty();
      const auto fwords = e_.frontier_.words();
      for (graph::Vertex u = begin; u < end; ++u) {
        if (e_.transmitting_.test(u)) continue;
        if (rs.faults && e_.crashed_.test(u)) continue;
        const std::uint64_t h = fwords[u >> 6] != 0 ? e_.heard_[u] : 0;
        const auto count = static_cast<std::uint32_t>(h);
        if (count == 1) {
          if (e_.silent_until_[u] >= t) wake(u, t);
          const auto from = static_cast<graph::Vertex>(h >> 32);
          const Packet& packet = e_.outgoing_slab_[from];
          if (obs_rx) {
            for (Observer* obs : e_.obs_receive_) {
              obs->on_receive(t, u, from, packet);
            }
          }
          RoundContext ctx(t, e_.rngs_[u]);
          e_.processes_[u]->receive(packet, ctx);
        } else {
          for (Observer* obs : e_.obs_silence_) {
            obs->on_silence(t, u, /*collision=*/count > 1);
          }
          if (e_.silent_until_[u] >= t) continue;  // promised no-op
          RoundContext ctx(t, e_.rngs_[u]);
          e_.processes_[u]->receive(std::nullopt, ctx);
        }
      }
    }

    Engine& e_;
  };

  /// "output_flush": per-vertex end_round outputs, then the wrapper
  /// checkpoint.
  class OutputFlushStage final : public RoundStage {
   public:
    explicit OutputFlushStage(Engine& e) : e_(e) {}
    std::string name() const override { return "output_flush"; }
    SlabSet reads() const override {
      return slab_bit(Slab::kCrashedBitmap) | slab_bit(Slab::kRngStreams);
    }
    SlabSet writes() const override {
      return slab_bit(Slab::kRngStreams);
    }
    bool vertex_disjoint_writes() const override { return true; }
    void run(RoundState& rs) override {
      if (rs.sparse) {
        flush_sparse(rs, 0, static_cast<graph::Vertex>(rs.vertex_count));
        return;
      }
      flush(rs, 0, static_cast<graph::Vertex>(rs.vertex_count));
    }
    void run_block(RoundState& rs, graph::Vertex begin,
                   graph::Vertex end) override {
      if (rs.sparse) {
        flush_sparse(rs, begin, end);
        return;
      }
      flush(rs, begin, end);
    }
    void epilogue(RoundState& rs) override {
      if (e_.hooks_ != nullptr) e_.hooks_->after_output_phase(rs.round);
    }

   private:
    void flush(RoundState& rs, graph::Vertex begin, graph::Vertex end) {
      const Round t = rs.round;
      for (graph::Vertex v = begin; v < end; ++v) {
        if (rs.faults && e_.crashed_.test(v)) continue;
        RoundContext ctx(t, e_.rngs_[v]);
        e_.processes_[v]->end_round(ctx);
      }
    }

    /// Sparse dispatch: parked vertices promised a no-op end_round, so
    /// whole parked words are skipped; every stepped vertex is asked for a
    /// fresh silent promise (silent_steps(0)), and the word minimum is
    /// recomputed so fully-parked words vanish from next round's passes.
    void flush_sparse(RoundState& rs, graph::Vertex begin,
                      graph::Vertex end) {
      const Round t = rs.round;
      const std::size_t wb = begin / 64;
      const std::size_t we = (static_cast<std::size_t>(end) + 63) / 64;
      for (std::size_t w = wb; w < we; ++w) {
        if (e_.word_silent_until_[w] >= t) continue;
        const auto lo = static_cast<graph::Vertex>(w * 64);
        const auto hi = std::min(static_cast<graph::Vertex>(lo + 64), end);
        Round word_min = kParkedForever;
        for (graph::Vertex v = lo; v < hi; ++v) {
          const Round parked_until = e_.silent_until_[v];
          if (parked_until >= t) {  // parked (or crashed): promised no-op
            word_min = std::min(word_min, parked_until);
            continue;
          }
          RoundContext ctx(t, e_.rngs_[v]);
          e_.processes_[v]->end_round(ctx);
          const std::int64_t j = e_.processes_[v]->silent_steps(0);
          const Round until = j > 0 ? promise_until(t, j) : t;
          e_.silent_until_[v] = until;
          word_min = std::min(word_min, until);
        }
        e_.word_silent_until_[w] = word_min;
      }
    }

    Engine& e_;
  };

  explicit EngineStages(Engine& e)
      : fault(e), transmit(e), frontier(e), schedule(e), channel(e),
        receive(e), output(e) {}

  FaultStage fault;
  TransmitStage transmit;
  FrontierStage frontier;
  ScheduleStage schedule;
  ChannelStage channel;
  ReceiveStage receive;
  OutputFlushStage output;
};

Engine::Engine(const graph::DualGraph& g, LinkScheduler& scheduler,
               std::vector<std::unique_ptr<Process>> processes,
               std::uint64_t master_seed)
    : graph_(&g),
      owned_channel_(std::make_unique<phys::DualGraphChannel>(scheduler)),
      channel_(owned_channel_.get()),
      processes_(std::move(processes)) {
  init(master_seed);
}

Engine::Engine(const graph::DualGraph& g, phys::ChannelModel& channel,
               std::vector<std::unique_ptr<Process>> processes,
               std::uint64_t master_seed)
    : graph_(&g), channel_(&channel), processes_(std::move(processes)) {
  init(master_seed);
}

Engine::~Engine() = default;

void Engine::init(std::uint64_t master_seed) {
  master_seed_ = master_seed;
  const graph::DualGraph& g = *graph_;
  DG_EXPECTS(g.finalized());
  DG_EXPECTS(processes_.size() == g.size());
  for (const auto& p : processes_) {
    DG_EXPECTS(p != nullptr);
  }
  rngs_.reserve(processes_.size());
  for (std::size_t v = 0; v < processes_.size(); ++v) {
    // Stream tag 0x9 partitions process streams away from other consumers
    // of the same master seed (scheduler, id assignment, generators).
    rngs_.emplace_back(master_seed, 0x900000000ULL + v);
  }
  // The channel derives its randomness (scheduler commitment, SINR fading)
  // from the same master seed the pre-seam engine handed the scheduler.
  channel_->bind(g, master_seed);

  outgoing_slab_.resize(processes_.size());
  transmitting_.resize(processes_.size());
  heard_.resize(processes_.size());
  crashed_.resize(processes_.size());
  delivery_mask_.resize(processes_.size());

  all_shard_safe_ =
      std::all_of(processes_.begin(), processes_.end(),
                  [](const auto& p) { return p->shard_safe(); });
  round_threads_ = default_round_threads();
  sparse_enabled_ = default_sparse_rounds();

  // The core pipeline.  The on_round_begin fan-out rides on the transmit
  // slot so fault events keep preceding it, as the monolithic loop did.
  stages_ = std::make_unique<EngineStages>(*this);
  pipeline_.append(&stages_->fault);
  pipeline_.append(&stages_->transmit, /*round_begin_before=*/true);
  pipeline_.append(&stages_->frontier);
  pipeline_.append(&stages_->schedule);
  pipeline_.append(&stages_->channel);
  pipeline_.append(&stages_->receive);
  pipeline_.append(&stages_->output);
  update_sparse_support();
}

std::size_t Engine::default_round_threads() {
  const char* env = std::getenv("DG_ROUND_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  if (std::string_view(env) == "max") {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || parsed == 0) return 1;
  return static_cast<std::size_t>(parsed);
}

bool Engine::default_sparse_rounds() {
  const char* env = std::getenv("DG_SPARSE_ROUNDS");
  if (env == nullptr || *env == '\0') return true;
  const std::string_view v(env);
  return !(v == "0" || v == "off" || v == "false");
}

void Engine::set_sparse_rounds(bool on) {
  configure(EngineConfig{}.with_sparse_rounds(on));
}

void Engine::apply_sparse_rounds(bool on) {
  if (on == sparse_enabled_) return;
  if (!on) flush_parked();  // dense dispatch steps everyone from now on
  sparse_enabled_ = on;
  update_sparse_support();
  // Dense rounds may have run since the bookkeeping was last valid.
  if (sparse_supported_) reset_sparse_state();
}

void Engine::update_sparse_support() {
  sparse_supported_ = sparse_enabled_ && channel_->frontier_capable() &&
                      splices_.empty();
  if (sparse_supported_ && frontier_.size() != processes_.size()) {
    frontier_.resize(processes_.size());
    reset_sparse_state();
  }
}

void Engine::reset_sparse_state() {
  const std::size_t n = processes_.size();
  last_stepped_.assign(n, round_);
  silent_until_.assign(n, round_);
  const bool faults = fault_plan_ != nullptr;
  if (faults) {
    crashed_.for_each_set(
        [&](std::size_t v) { silent_until_[v] = kParkedForever; });
  }
  word_silent_until_.assign(frontier_.word_count(), round_);
  frontier_.clear();
  active_words_.clear();
}

void Engine::flush_parked() {
  // Only meaningful while the bookkeeping is current (sparse rounds were
  // eligible to run); after dense-only stretches the vectors are stale and
  // reset_sparse_state() re-syncs them if sparse ever re-engages.
  if (!sparse_supported_ || last_stepped_.empty()) return;
  const bool faults = fault_plan_ != nullptr;
  const auto n = static_cast<graph::Vertex>(processes_.size());
  for (graph::Vertex v = 0; v < n; ++v) {
    if (faults && crashed_.test(v)) continue;  // cursor rewritten on recover
    if (last_stepped_[v] >= round_) continue;
    // Every round in (last_stepped_, round_] sat inside v's silent promise
    // and delivered nothing, so one batched jump lands exactly where dense
    // stepping would have.
    processes_[v]->silent_steps(round_ - last_stepped_[v]);
    last_stepped_[v] = round_;
  }
  reset_sparse_state();
}

void Engine::configure(const EngineConfig& config) {
  if (config.round_threads != 0) apply_round_threads(config.round_threads);
  if (config.has_sparse_rounds) apply_sparse_rounds(config.sparse_rounds);
  if (config.has_fault_plan) {
    apply_fault_plan(config.fault_plan, config.fault_listener);
  }
  for (const SpliceSpec& spec : config.splices) {
    const std::string err = splice_stage(spec);
    DG_EXPECTS(err.empty());  // configs carry pre-validated splice lists
  }
  if (config.has_telemetry) {
    apply_telemetry(config.registry, config.trace_sink);
  }
}

std::string Engine::splice_stage(const SpliceSpec& spec) {
  std::vector<SpliceSpec> all = splices_;
  all.push_back(spec);
  std::string err = validate_splice_specs(all);
  if (!err.empty()) return err;
  pipeline_.insert_after(splice_anchor(spec),
                         build_splice_stage(spec, processes_.size()));
  splices_ = std::move(all);
  // Spliced stages read heard_ over every vertex, so the sparse dispatch
  // must stand down: catch parked processes up first, while the promises
  // still cover the skipped rounds.
  flush_parked();
  update_sparse_support();
  // Telemetry installed first: give the new stage its timing slot.
  if (registry_ != nullptr) rebuild_profiler();
  return "";
}

void Engine::set_round_threads(std::size_t threads) {
  configure(EngineConfig{}.with_round_threads(threads));
}

void Engine::apply_round_threads(std::size_t threads) {
  DG_EXPECTS(threads >= 1);
  round_threads_ = threads;
  // Re-poll consent: a wrapper may have reconfigured its listener fan-out
  // (e.g. LbSimulation's buffered mode) since init(), changing the answer.
  all_shard_safe_ =
      std::all_of(processes_.begin(), processes_.end(),
                  [](const auto& p) { return p->shard_safe(); });
}

std::size_t Engine::shard_block_size() const {
  const std::size_t n = processes_.size();
  const std::size_t target_blocks = round_threads_ * 4;
  std::size_t size = (n + target_blocks - 1) / target_blocks;
  return (size + 63) / 64 * 64;
}

void Engine::add_observer(Observer* observer) {
  DG_EXPECTS(observer != nullptr);
  const unsigned mask = observer->interest();
  if (mask & Observer::kRoundBegin) obs_round_begin_.push_back(observer);
  if (mask & Observer::kTransmit) obs_transmit_.push_back(observer);
  if (mask & Observer::kReceive) obs_receive_.push_back(observer);
  if (mask & Observer::kSilence) obs_silence_.push_back(observer);
  if (mask & Observer::kRoundEnd) obs_round_end_.push_back(observer);
  if (mask & Observer::kFault) obs_fault_.push_back(observer);
}

void Engine::set_telemetry(obs::Registry* registry, obs::TraceSink* sink) {
  configure(EngineConfig{}.with_telemetry(registry, sink));
}

void Engine::apply_telemetry(obs::Registry* registry, obs::TraceSink* sink) {
  registry_ = registry;
  trace_sink_ = registry != nullptr ? sink : nullptr;
  if (registry == nullptr) {
    rebuild_profiler();
    m_rounds_ = m_tx_ = m_delivered_ = m_collisions_ = m_silent_ = nullptr;
    m_crashes_ = m_recoveries_ = nullptr;
    m_dispatch_serial_ = m_dispatch_sharded_ = nullptr;
    m_active_blocks_ = nullptr;
    m_frontier_fraction_ = nullptr;
    m_tx_per_round_ = nullptr;
    return;
  }
  using obs::Domain;
  m_rounds_ = &registry->counter("engine.rounds", Domain::kLogical);
  m_tx_ = &registry->counter("engine.tx", Domain::kLogical);
  m_delivered_ = &registry->counter("engine.rx.delivered", Domain::kLogical);
  m_collisions_ =
      &registry->counter("engine.rx.collisions", Domain::kLogical);
  m_silent_ = &registry->counter("engine.rx.silent", Domain::kLogical);
  m_crashes_ = &registry->counter("engine.faults.crashes", Domain::kLogical);
  m_recoveries_ =
      &registry->counter("engine.faults.recoveries", Domain::kLogical);
  m_tx_per_round_ = &registry->histogram(
      "engine.tx_per_round", Domain::kLogical,
      {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  // Dispatch counts and thread knobs depend on round_threads by
  // definition, so they live in the (never-gated) timing domain.
  m_dispatch_serial_ =
      &registry->counter("engine.dispatch.serial", Domain::kTiming);
  m_dispatch_sharded_ =
      &registry->counter("engine.dispatch.sharded", Domain::kTiming);
  // Sparse-dispatch instrumentation also lives in the timing domain: it
  // advances only when the sparse path runs, and logical dumps must stay
  // byte-identical across sparse-on/off.
  m_active_blocks_ =
      &registry->counter("engine.active_blocks", Domain::kTiming);
  m_frontier_fraction_ =
      &registry->gauge("engine.frontier_fraction", Domain::kTiming);
  registry->gauge("engine.round_threads", Domain::kTiming) =
      static_cast<double>(round_threads_);
  registry->gauge("engine.vertices", Domain::kLogical) =
      static_cast<double>(processes_.size());
  rebuild_profiler();
}

void Engine::rebuild_profiler() {
  if (registry_ == nullptr) {
    profiler_.reset();
    for (RoundPipeline::Slot& slot : pipeline_.slots()) {
      slot.profile_slot = RoundPipeline::npos;
    }
    return;
  }
  // One timing slot per pipeline slot, in pipeline order; the registry
  // keys counters by name, so rebuilding (after a splice) keeps
  // accumulating into the same engine.phase.<name>.ns slots.
  profiler_ = std::make_unique<obs::PhaseProfiler>(*registry_);
  for (RoundPipeline::Slot& slot : pipeline_.slots()) {
    slot.profile_slot = profiler_->register_stage(slot.stage->name());
  }
}

void Engine::record_logical_round() {
  if (m_rounds_ == nullptr) return;
  *m_rounds_ += 1;
  const std::uint64_t tx = transmitting_.count();
  *m_tx_ += tx;
  m_tx_per_round_->record(static_cast<double>(tx));
  const bool faults = fault_plan_ != nullptr;
  const auto n = static_cast<graph::Vertex>(processes_.size());
  std::uint64_t delivered = 0, collisions = 0, silent = 0;
  if (sparse_active_) {
    // Mask-aware tally, byte-identical to the dense pass below: frontier
    // words read their (fresh) heard entries; every live non-transmitter
    // in a non-frontier word heard nothing by construction, so whole
    // words tally as silence via popcounts without touching stale heard_.
    const auto fwords = frontier_.words();
    const auto twords = transmitting_.words();
    const auto cwords = crashed_.words();
    for (std::size_t w = 0; w < fwords.size(); ++w) {
      std::uint64_t live = transmitting_.word_mask(w) & ~twords[w];
      if (faults) live &= ~cwords[w];
      if (fwords[w] == 0) {
        silent += static_cast<std::uint64_t>(std::popcount(live));
        continue;
      }
      while (live != 0) {
        const int b = std::countr_zero(live);
        live &= live - 1;
        const auto count =
            static_cast<std::uint32_t>(heard_[w * 64 +
                                              static_cast<std::size_t>(b)]);
        if (count == 1) {
          ++delivered;
        } else if (count > 1) {
          ++collisions;
        } else {
          ++silent;
        }
      }
    }
  } else {
    for (graph::Vertex u = 0; u < n; ++u) {
      if (transmitting_.test(u)) continue;
      if (faults && crashed_.test(u)) continue;
      const auto count = static_cast<std::uint32_t>(heard_[u]);
      if (count == 1) {
        ++delivered;
      } else if (count > 1) {
        ++collisions;
      } else {
        ++silent;
      }
    }
  }
  *m_delivered_ += delivered;
  *m_collisions_ += collisions;
  *m_silent_ += silent;
}

Process& Engine::process(graph::Vertex v) {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

const Process& Engine::process(graph::Vertex v) const {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

Rng& Engine::process_rng(graph::Vertex v) {
  DG_EXPECTS(v < rngs_.size());
  return rngs_[v];
}

void Engine::set_fault_plan(fault::FaultPlan* plan,
                            fault::FaultListener* listener) {
  configure(EngineConfig{}.with_fault_plan(plan, listener));
}

void Engine::apply_fault_plan(fault::FaultPlan* plan,
                              fault::FaultListener* listener) {
  fault_plan_ = plan;
  fault_listener_ = plan != nullptr ? listener : nullptr;
  if (plan != nullptr) plan->bind(*graph_, master_seed_);
}

void Engine::apply_faults(Round t) {
  if (fault_plan_ == nullptr) return;
  fault_events_.clear();
  fault_plan_->plan_round(t, crashed_, fault_events_);
  for (const fault::FaultEvent& ev : fault_events_) {
    DG_EXPECTS(ev.vertex < processes_.size());
    if (ev.kind == fault::FaultKind::kCrash) {
      if (crashed_.test(ev.vertex)) continue;  // idempotent
      if (sparse_supported_) {
        // Catch a parked vertex up through t-1 first, so the listener and
        // on_crash() see exactly the state dense stepping would have left
        // (all skipped rounds sat inside the silent promise).  The vertex
        // then parks forever; recovery below unparks it.
        if (last_stepped_[ev.vertex] < t - 1) {
          processes_[ev.vertex]->silent_steps(t - 1 -
                                              last_stepped_[ev.vertex]);
        }
        last_stepped_[ev.vertex] = t - 1;
        silent_until_[ev.vertex] = kParkedForever;
      }
      crashed_.set(ev.vertex);
      // Listener first: it may read pre-crash process state (e.g. abort
      // the in-flight broadcast) before on_crash wipes it.
      if (fault_listener_ != nullptr) fault_listener_->on_crash(t, ev.vertex);
      processes_[ev.vertex]->on_crash(t);
      for (Observer* obs : obs_fault_) obs->on_crash(t, ev.vertex);
      if (m_crashes_ != nullptr) *m_crashes_ += 1;
      if (trace_sink_ != nullptr) trace_sink_->crash(t, ev.vertex);
    } else {
      if (!crashed_.test(ev.vertex)) continue;  // idempotent
      if (sparse_supported_) {
        // Unpark: the recovered vertex steps from round t (on_recover
        // rewrites its cursor from the absolute round, so no catch-up).
        last_stepped_[ev.vertex] = t - 1;
        silent_until_[ev.vertex] = t - 1;
        const std::size_t w = ev.vertex >> 6;
        if (word_silent_until_[w] > t - 1) word_silent_until_[w] = t - 1;
      }
      crashed_.reset(ev.vertex);
      // Process first: the listener talks to a re-initialized process.
      processes_[ev.vertex]->on_recover(t);
      if (fault_listener_ != nullptr) {
        fault_listener_->on_recover(t, ev.vertex);
      }
      for (Observer* obs : obs_fault_) obs->on_recover(t, ev.vertex);
      if (m_recoveries_ != nullptr) *m_recoveries_ += 1;
      if (trace_sink_ != nullptr) trace_sink_->recover(t, ev.vertex);
    }
  }
}

void Engine::run_round() {
  if (round_threads_ > 1 && all_shard_safe_ && channel_->shardable()) {
    const std::size_t block_size = shard_block_size();
    const std::size_t blocks =
        (processes_.size() + block_size - 1) / block_size;
    if (blocks >= 2) {
      if (pool_ == nullptr || pool_->threads() != round_threads_) {
        pool_ = std::make_unique<util::ThreadPool>(round_threads_);
        // Channels may shard their serial-section precomputes (e.g. the
        // SINR far field) over the same pool; it is idle whenever the
        // engine calls into the channel serially.
        channel_->set_round_pool(pool_.get());
      }
      run_pipeline(/*sharded=*/true, block_size, blocks);
      return;
    }
  }
  run_pipeline(/*sharded=*/false, 0, 0);
}

void Engine::run_pipeline(bool sharded, std::size_t block_size,
                          std::size_t blocks) {
  const Round t = ++round_;
  if (profiler_ != nullptr) {
    profiler_->begin_round(t);
    *(sharded ? m_dispatch_sharded_ : m_dispatch_serial_) += 1;
  }
  deliver_masked_ = false;
  sparse_active_ = sparse_supported_;

  RoundState rs;
  rs.round = t;
  rs.faults = fault_plan_ != nullptr;
  rs.sharded = sharded;
  rs.sparse = sparse_active_;
  rs.vertex_count = processes_.size();
  rs.block_size = block_size;
  rs.transmitting = &transmitting_;
  rs.packets = &outgoing_slab_;
  rs.heard = &heard_;
  rs.crashed = &crashed_;
  rs.delivery_mask = &delivery_mask_;
  rs.activity = &frontier_;
  rs.deliver_masked = &deliver_masked_;
  rs.registry = registry_;
  rs.trace = trace_sink_;

  // Every pool dispatch of the round funnels through this wrapper so the
  // profiler can total the parallel-section wall clock (the utilization
  // numerator) without instrumenting the pool itself.
  const auto pooled = [&](auto&& fn) {
    if (profiler_ == nullptr) {
      pool_->for_blocks(blocks, fn);
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    pool_->for_blocks(blocks, fn);
    profiler_->add_parallel_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  };

  for (const RoundPipeline::Slot& slot : pipeline_.slots()) {
    if (slot.round_begin_before) {
      for (Observer* obs : obs_round_begin_) {
        obs->on_round_begin(t);
      }
    }
    RoundStage& stage = *slot.stage;
    if (!stage.active(sharded)) continue;
    // Dispatch by declaration: a stage whose writes are vertex-disjoint
    // runs block-parallel in sharded rounds (blocks write disjoint state,
    // so determinism is structural); everything else runs serial.
    const bool parallel = sharded && stage.vertex_disjoint_writes();
    {
      obs::ScopedPhase phase(profiler_.get(), slot.profile_slot);
      stage.prologue(rs);
      if (parallel) {
        pooled([&](std::size_t b) {
          const auto begin = static_cast<graph::Vertex>(b * block_size);
          const auto end = static_cast<graph::Vertex>(
              std::min(b * block_size + block_size, processes_.size()));
          stage.run_block(rs, begin, end);
        });
        stage.replay(rs);
      } else {
        stage.run(rs);
      }
      stage.epilogue(rs);
    }
    stage.after_phase(rs);
  }

  for (Observer* obs : obs_round_end_) {
    obs->on_round_end(t);
  }
  if (profiler_ != nullptr) profiler_->end_round(trace_sink_);
}

void Engine::run_rounds(Round count) {
  DG_EXPECTS(count >= 0);
  for (Round i = 0; i < count; ++i) {
    run_round();
  }
}

}  // namespace dg::sim
