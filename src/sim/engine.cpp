#include "sim/engine.h"

#include <unordered_set>

#include "util/assert.h"
#include "util/rng.h"

namespace dg::sim {

std::vector<ProcessId> assign_ids(std::size_t n, std::uint64_t seed) {
  std::vector<ProcessId> ids;
  ids.reserve(n);
  std::unordered_set<ProcessId> used;
  std::uint64_t counter = 0;
  while (ids.size() < n) {
    const ProcessId candidate = splitmix64(seed ^ splitmix64(counter++));
    if (candidate != 0 && used.insert(candidate).second) {
      ids.push_back(candidate);
    }
  }
  return ids;
}

Engine::Engine(const graph::DualGraph& g, LinkScheduler& scheduler,
               std::vector<std::unique_ptr<Process>> processes,
               std::uint64_t master_seed)
    : graph_(&g),
      scheduler_(&scheduler),
      processes_(std::move(processes)) {
  DG_EXPECTS(g.finalized());
  DG_EXPECTS(processes_.size() == g.size());
  for (const auto& p : processes_) {
    DG_EXPECTS(p != nullptr);
  }
  rngs_.reserve(processes_.size());
  for (std::size_t v = 0; v < processes_.size(); ++v) {
    // Stream tag 0x9 partitions process streams away from other consumers
    // of the same master seed (scheduler, id assignment, generators).
    rngs_.emplace_back(master_seed, 0x900000000ULL + v);
  }
  scheduler_->commit(g, derive_seed(master_seed, /*stream=*/0x5c4edULL));

  outgoing_.resize(processes_.size());
  heard_count_.resize(processes_.size());
  heard_from_.resize(processes_.size());
}

void Engine::add_observer(Observer* observer) {
  DG_EXPECTS(observer != nullptr);
  observers_.push_back(observer);
}

Process& Engine::process(graph::Vertex v) {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

const Process& Engine::process(graph::Vertex v) const {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

Rng& Engine::process_rng(graph::Vertex v) {
  DG_EXPECTS(v < rngs_.size());
  return rngs_[v];
}

void Engine::run_round() {
  const Round t = ++round_;
  const auto n = static_cast<graph::Vertex>(processes_.size());

  for (Observer* obs : observers_) {
    obs->on_round_begin(t);
  }

  // Step 2: transmit decisions.
  for (graph::Vertex v = 0; v < n; ++v) {
    RoundContext ctx(t, rngs_[v]);
    outgoing_[v] = processes_[v]->transmit(ctx);
    if (outgoing_[v].has_value()) {
      // The wire carries the true sender id; processes cannot spoof.
      DG_ASSERT(outgoing_[v]->sender == processes_[v]->id());
      for (Observer* obs : observers_) {
        obs->on_transmit(t, v, *outgoing_[v]);
      }
    }
  }

  // Step 3: reception under the single-transmitter rule on the round
  // topology G_t = E + {active unreliable edges}.  An installed adaptive
  // adversary (E12 counterfactual; outside the paper's model) sees the
  // transmit decisions first and overrides the oblivious scheduler.
  if (adaptive_ != nullptr) {
    transmitting_.assign(processes_.size(), false);
    for (graph::Vertex v = 0; v < n; ++v) {
      transmitting_[v] = outgoing_[v].has_value();
    }
    adaptive_->plan_round(t, *graph_, transmitting_);
  }
  std::fill(heard_count_.begin(), heard_count_.end(), 0U);
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!outgoing_[v].has_value()) continue;
    for (graph::Vertex u : graph_->g_neighbors(v)) {
      ++heard_count_[u];
      heard_from_[u] = v;
    }
    for (const auto& [edge, u] : graph_->unreliable_incident(v)) {
      const bool on = adaptive_ != nullptr ? adaptive_->active(edge)
                                           : scheduler_->active(edge, t);
      if (on) {
        ++heard_count_[u];
        heard_from_[u] = v;
      }
    }
  }

  for (graph::Vertex u = 0; u < n; ++u) {
    if (outgoing_[u].has_value()) continue;  // transmitters do not receive
    RoundContext ctx(t, rngs_[u]);
    if (heard_count_[u] == 1) {
      const graph::Vertex from = heard_from_[u];
      const Packet& packet = *outgoing_[from];
      for (Observer* obs : observers_) {
        obs->on_receive(t, u, from, packet);
      }
      processes_[u]->receive(packet, ctx);
    } else {
      for (Observer* obs : observers_) {
        obs->on_silence(t, u, /*collision=*/heard_count_[u] > 1);
      }
      processes_[u]->receive(std::nullopt, ctx);
    }
  }

  // Step 4: outputs.
  for (graph::Vertex v = 0; v < n; ++v) {
    RoundContext ctx(t, rngs_[v]);
    processes_[v]->end_round(ctx);
  }

  for (Observer* obs : observers_) {
    obs->on_round_end(t);
  }
}

void Engine::run_rounds(Round count) {
  DG_EXPECTS(count >= 0);
  for (Round i = 0; i < count; ++i) {
    run_round();
  }
}

}  // namespace dg::sim
