#include "sim/engine.h"

#include <algorithm>
#include <unordered_set>

#include "phys/dual_graph_channel.h"
#include "util/assert.h"
#include "util/rng.h"

namespace dg::sim {

std::vector<ProcessId> assign_ids(std::size_t n, std::uint64_t seed) {
  std::vector<ProcessId> ids;
  ids.reserve(n);
  std::unordered_set<ProcessId> used;
  std::uint64_t counter = 0;
  while (ids.size() < n) {
    const ProcessId candidate = splitmix64(seed ^ splitmix64(counter++));
    if (candidate != 0 && used.insert(candidate).second) {
      ids.push_back(candidate);
    }
  }
  return ids;
}

Engine::Engine(const graph::DualGraph& g, LinkScheduler& scheduler,
               std::vector<std::unique_ptr<Process>> processes,
               std::uint64_t master_seed)
    : graph_(&g),
      owned_channel_(std::make_unique<phys::DualGraphChannel>(scheduler)),
      channel_(owned_channel_.get()),
      processes_(std::move(processes)) {
  init(master_seed);
}

Engine::Engine(const graph::DualGraph& g, phys::ChannelModel& channel,
               std::vector<std::unique_ptr<Process>> processes,
               std::uint64_t master_seed)
    : graph_(&g), channel_(&channel), processes_(std::move(processes)) {
  init(master_seed);
}

void Engine::init(std::uint64_t master_seed) {
  const graph::DualGraph& g = *graph_;
  DG_EXPECTS(g.finalized());
  DG_EXPECTS(processes_.size() == g.size());
  for (const auto& p : processes_) {
    DG_EXPECTS(p != nullptr);
  }
  rngs_.reserve(processes_.size());
  for (std::size_t v = 0; v < processes_.size(); ++v) {
    // Stream tag 0x9 partitions process streams away from other consumers
    // of the same master seed (scheduler, id assignment, generators).
    rngs_.emplace_back(master_seed, 0x900000000ULL + v);
  }
  // The channel derives its randomness (scheduler commitment, SINR fading)
  // from the same master seed the pre-seam engine handed the scheduler.
  channel_->bind(g, master_seed);

  outgoing_slab_.resize(processes_.size());
  transmitting_.resize(processes_.size());
  heard_.resize(processes_.size());
}

void Engine::add_observer(Observer* observer) {
  DG_EXPECTS(observer != nullptr);
  const unsigned mask = observer->interest();
  if (mask & Observer::kRoundBegin) obs_round_begin_.push_back(observer);
  if (mask & Observer::kTransmit) obs_transmit_.push_back(observer);
  if (mask & Observer::kReceive) obs_receive_.push_back(observer);
  if (mask & Observer::kSilence) obs_silence_.push_back(observer);
  if (mask & Observer::kRoundEnd) obs_round_end_.push_back(observer);
}

Process& Engine::process(graph::Vertex v) {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

const Process& Engine::process(graph::Vertex v) const {
  DG_EXPECTS(v < processes_.size());
  return *processes_[v];
}

Rng& Engine::process_rng(graph::Vertex v) {
  DG_EXPECTS(v < rngs_.size());
  return rngs_[v];
}

void Engine::run_round() {
  const Round t = ++round_;
  const auto n = static_cast<graph::Vertex>(processes_.size());
  // Per-event fan-out guards: executions with no (interested) observers --
  // the Monte Carlo bulk -- skip the fan-outs entirely.
  const bool obs_tx = !obs_transmit_.empty();
  const bool obs_rx = !obs_receive_.empty();
  const bool obs_sil = !obs_silence_.empty();

  for (Observer* obs : obs_round_begin_) {
    obs->on_round_begin(t);
  }

  // Step 2: transmit decisions, into the packet slab + transmit bitmask.
  transmitting_.clear();
  for (graph::Vertex v = 0; v < n; ++v) {
    RoundContext ctx(t, rngs_[v]);
    auto packet = processes_[v]->transmit(ctx);
    if (!packet.has_value()) continue;
    // The wire carries the true sender id; processes cannot spoof.
    DG_ASSERT(packet->sender == processes_[v]->id());
    outgoing_slab_[v] = *std::move(packet);
    transmitting_.set(v);
    if (obs_tx) {
      for (Observer* obs : obs_transmit_) {
        obs->on_transmit(t, v, outgoing_slab_[v]);
      }
    }
  }

  // Step 3: reception, decided by the channel model (the Section 2
  // single-transmitter rule under DualGraphChannel, SINR physics under
  // SinrChannel).  The channel fills one packed heard word per vertex (high
  // 32 bits last sender, low 32 bits decodable-sender count).
  std::fill(heard_.begin(), heard_.end(), 0U);
  channel_->compute_round(t, transmitting_, heard_);

  for (graph::Vertex u = 0; u < n; ++u) {
    if (transmitting_.test(u)) continue;  // transmitters do not receive
    RoundContext ctx(t, rngs_[u]);
    const std::uint64_t h = heard_[u];
    const auto count = static_cast<std::uint32_t>(h);
    if (count == 1) {
      const auto from = static_cast<graph::Vertex>(h >> 32);
      const Packet& packet = outgoing_slab_[from];
      if (obs_rx) {
        for (Observer* obs : obs_receive_) {
          obs->on_receive(t, u, from, packet);
        }
      }
      processes_[u]->receive(packet, ctx);
    } else {
      if (obs_sil) {
        for (Observer* obs : obs_silence_) {
          obs->on_silence(t, u, /*collision=*/count > 1);
        }
      }
      processes_[u]->receive(std::nullopt, ctx);
    }
  }

  // Step 4: outputs.
  for (graph::Vertex v = 0; v < n; ++v) {
    RoundContext ctx(t, rngs_[v]);
    processes_[v]->end_round(ctx);
  }

  for (Observer* obs : obs_round_end_) {
    obs->on_round_end(t);
  }
}

void Engine::run_rounds(Round count) {
  DG_EXPECTS(count >= 0);
  for (Round i = 0; i < count; ++i) {
    run_round();
  }
}

}  // namespace dg::sim
