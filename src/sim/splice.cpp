#include "sim/splice.h"

#include <cmath>
#include <utility>

#include "obs/registry.h"
#include "obs/trace_sink.h"
#include "scn/spec_error.h"
#include "util/assert.h"
#include "util/rng.h"
#include "util/specparse.h"

namespace dg::sim {

namespace {

/// Trace track for spliced-stage instants (see obs/trace_sink.h pids).
constexpr int kStagesPid = 5;

std::string spec_stage_name(const SpliceSpec& spec) {
  switch (spec.kind) {
    case SpliceSpec::Kind::kNoop: return "noop";
    case SpliceSpec::Kind::kDedup: return "dedup";
    case SpliceSpec::Kind::kTap:
      return std::string("tap:") + slab_name(spec.tap_slab);
  }
  return "?";
}

/// Content key of one decoded packet: every field that distinguishes two
/// transmissions a dedup cache should treat as different, splitmix-mixed
/// and forced nonzero so the empty ring slot (0) never matches.
std::uint64_t packet_key(const Packet& p) {
  std::uint64_t k = splitmix64(p.sender);
  if (p.is_seed()) {
    const SeedPayload& s = p.seed();
    k = splitmix64(k ^ s.owner) ^ splitmix64(s.seed_value);
  } else {
    const DataPayload& d = p.data();
    k = splitmix64(k ^ d.id.origin) ^
        splitmix64((std::uint64_t{d.id.seq} << 1) ^ d.content);
  }
  return k == 0 ? 1 : k;
}

/// The observably-free seam probe: a stage that declares nothing and does
/// nothing, so a spliced run must stay byte-identical to an unspliced one
/// (CI's campaign gate diffs exactly that).
class NoopStage final : public RoundStage {
 public:
  std::string name() const override { return "noop"; }
  SlabSet reads() const override { return 0; }
  SlabSet writes() const override { return 0; }
  void run(RoundState&) override {}
};

/// Duplicate-suppression cache: per receiver, a ring of the last `window`
/// decoded packet keys.  A redundant delivery sets the receiver's bit in
/// the delivery mask, which the receive stage honors by handing the
/// process a null indicator instead of the packet.  Ring state depends
/// only on the receiver's own decode sequence (frozen heard words), so
/// block-parallel execution is deterministic at any thread count.
class DedupStage final : public RoundStage {
 public:
  DedupStage(std::size_t window, std::size_t vertex_count)
      : window_(window),
        keys_(vertex_count * window, 0),
        pos_(vertex_count, 0) {}

  std::string name() const override { return "dedup"; }
  SlabSet reads() const override {
    return slab_bit(Slab::kTransmitBitmap) | slab_bit(Slab::kPacketSlab) |
           slab_bit(Slab::kHeardWords) | slab_bit(Slab::kCrashedBitmap);
  }
  SlabSet writes() const override {
    return slab_bit(Slab::kDeliveryMask);
  }
  bool vertex_disjoint_writes() const override { return true; }

  void prologue(RoundState& rs) override {
    rs.delivery_mask->clear();
    *rs.deliver_masked = true;
  }
  void run(RoundState& rs) override {
    scan(rs, 0, static_cast<graph::Vertex>(rs.vertex_count));
  }
  void run_block(RoundState& rs, graph::Vertex begin,
                 graph::Vertex end) override {
    scan(rs, begin, end);
  }
  void after_phase(RoundState& rs) override {
    if (rs.registry != nullptr) {
      rs.registry->counter("stage.dedup.suppressed", obs::Domain::kLogical) +=
          rs.delivery_mask->count();
    }
  }

 private:
  void scan(RoundState& rs, graph::Vertex begin, graph::Vertex end) {
    for (graph::Vertex u = begin; u < end; ++u) {
      if (rs.transmitting->test(u)) continue;
      if (rs.faults && rs.crashed->test(u)) continue;
      const std::uint64_t h = (*rs.heard)[u];
      if (static_cast<std::uint32_t>(h) != 1) continue;
      const std::uint64_t key = packet_key((*rs.packets)[h >> 32]);
      std::uint64_t* ring = keys_.data() + u * window_;
      bool hit = false;
      for (std::size_t i = 0; i < window_; ++i) {
        if (ring[i] == key) {
          hit = true;
          break;
        }
      }
      if (hit) {
        rs.delivery_mask->set(u);
      } else {
        ring[pos_[u]] = key;
        pos_[u] = (pos_[u] + 1) % static_cast<std::uint32_t>(window_);
      }
    }
  }

  std::size_t window_;
  std::vector<std::uint64_t> keys_;  ///< per-vertex rings, window_ apiece
  std::vector<std::uint32_t> pos_;   ///< per-vertex ring cursor
};

/// Read-only probe of one slab: a logical population counter per round
/// plus per-vertex trace instants for an explicit vertex list.  Serial by
/// declaration (it writes no slab, but the trace sink is not shardable).
class TraceTapStage final : public RoundStage {
 public:
  TraceTapStage(Slab slab, std::vector<std::uint32_t> vertices)
      : slab_(slab),
        vertices_(std::move(vertices)),
        name_(std::string("tap:") + slab_name(slab)),
        counter_(std::string("stage.tap.") + slab_name(slab)) {}

  std::string name() const override { return name_; }
  SlabSet reads() const override { return slab_bit(slab_); }
  SlabSet writes() const override { return 0; }

  void run(RoundState& rs) override {
    if (rs.registry != nullptr) {
      rs.registry->counter(counter_, obs::Domain::kLogical) += population(rs);
    }
    if (rs.trace == nullptr) return;
    for (const std::uint32_t v : vertices_) {
      if (v >= rs.vertex_count) continue;
      rs.trace->instant(rs.round, v, name_, kStagesPid,
                        "{\"value\": " + std::to_string(value_at(rs, v)) +
                            "}");
    }
  }

 private:
  std::uint64_t population(const RoundState& rs) const {
    switch (slab_) {
      case Slab::kTransmitBitmap: return rs.transmitting->count();
      case Slab::kCrashedBitmap: return rs.crashed->count();
      case Slab::kHeardWords: {
        std::uint64_t n = 0;
        for (const std::uint64_t h : *rs.heard) n += (h != 0);
        return n;
      }
      default: return 0;
    }
  }

  std::uint64_t value_at(const RoundState& rs, std::uint32_t v) const {
    switch (slab_) {
      case Slab::kTransmitBitmap: return rs.transmitting->test(v);
      case Slab::kCrashedBitmap: return rs.crashed->test(v);
      case Slab::kHeardWords: return (*rs.heard)[v];
      default: return 0;
    }
  }

  Slab slab_;
  std::vector<std::uint32_t> vertices_;
  std::string name_;
  std::string counter_;
};

}  // namespace

std::string valid_splice_kinds() {
  return "noop, dedup[:window[:slab]], tap:slab[:v1,v2,...]";
}

bool parse_splice_spec(const std::string& text, SpliceSpec& out,
                       std::string& error) {
  out = SpliceSpec{};
  out.text = text;
  const std::vector<std::string> parts = spec::split(text, ':');
  const std::string kind = parts.empty() ? std::string() : parts[0];
  if (kind == "noop") {
    out.kind = SpliceSpec::Kind::kNoop;
    if (parts.size() > 1) {
      error = "stage 'noop' takes no arguments";
      return false;
    }
    return true;
  }
  if (kind == "dedup") {
    out.kind = SpliceSpec::Kind::kDedup;
    if (parts.size() > 3) {
      error = "stage 'dedup': too many arguments (dedup[:window[:slab]])";
      return false;
    }
    if (parts.size() >= 2) {
      double w = 0;
      if (!spec::parse_num(parts[1], w) || w < 1 || w != std::floor(w) ||
          w > 4096) {
        error = "stage 'dedup': bad window '" + parts[1] +
                "' (positive integer <= 4096 required)";
        return false;
      }
      out.window = static_cast<std::size_t>(w);
    }
    if (parts.size() == 3 && !parse_slab(parts[2], out.mask_slab)) {
      error = scn::unknown_spec("slab", parts[2], valid_slab_names());
      return false;
    }
    return true;
  }
  if (kind == "tap") {
    out.kind = SpliceSpec::Kind::kTap;
    if (parts.size() < 2) {
      error = "stage 'tap': missing slab (tap:slab[:v1,v2,...])";
      return false;
    }
    if (parts.size() > 3) {
      error = "stage 'tap': too many arguments (tap:slab[:v1,v2,...])";
      return false;
    }
    if (!parse_slab(parts[1], out.tap_slab)) {
      error = scn::unknown_spec("slab", parts[1], valid_slab_names());
      return false;
    }
    if (out.tap_slab != Slab::kTransmitBitmap &&
        out.tap_slab != Slab::kHeardWords &&
        out.tap_slab != Slab::kCrashedBitmap) {
      error = "stage 'tap': slab '" + parts[1] +
              "' is not tappable (valid: transmit_bitmap, heard_words, "
              "crashed_bitmap)";
      return false;
    }
    if (parts.size() == 3) {
      const std::vector<std::string> toks = spec::split(parts[2], ',');
      if (toks.empty()) {
        error = "stage 'tap': empty vertex list";
        return false;
      }
      for (const std::string& tok : toks) {
        double v = 0;
        if (!spec::parse_num(tok, v) || v < 0 || v != std::floor(v)) {
          error = "stage 'tap': bad vertex '" + tok + "'";
          return false;
        }
        out.vertices.push_back(static_cast<std::uint32_t>(v));
      }
    }
    return true;
  }
  error = scn::unknown_spec("stage", kind, valid_splice_kinds());
  return false;
}

SlabSet splice_reads(const SpliceSpec& spec) {
  switch (spec.kind) {
    case SpliceSpec::Kind::kNoop: return 0;
    case SpliceSpec::Kind::kDedup:
      return slab_bit(Slab::kTransmitBitmap) | slab_bit(Slab::kPacketSlab) |
             slab_bit(Slab::kHeardWords) | slab_bit(Slab::kCrashedBitmap);
    case SpliceSpec::Kind::kTap: return slab_bit(spec.tap_slab);
  }
  return 0;
}

SlabSet splice_writes(const SpliceSpec& spec) {
  switch (spec.kind) {
    case SpliceSpec::Kind::kNoop: return 0;
    case SpliceSpec::Kind::kDedup: return slab_bit(spec.mask_slab);
    case SpliceSpec::Kind::kTap: return 0;
  }
  return 0;
}

std::string validate_splice_specs(const std::vector<SpliceSpec>& specs) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SlabSet w = splice_writes(specs[i]);
    for (std::size_t s = 0; s < kSlabCount; ++s) {
      const auto slab = static_cast<Slab>(s);
      if (!slab_set_contains(w, slab)) continue;
      const char* owner = slab_owner(slab);
      if (*owner != '\0') {
        return "stage '" + spec_stage_name(specs[i]) + "' writes slab '" +
               slab_name(slab) + "' owned by core stage '" + owner +
               "' (spliced stages may only write: delivery_mask)";
      }
    }
    for (std::size_t j = 0; j < i; ++j) {
      const SlabSet overlap = w & splice_writes(specs[j]);
      if (overlap != 0) {
        return "stages '" + spec_stage_name(specs[j]) + "' and '" +
               spec_stage_name(specs[i]) + "' both write slab(s): " +
               slab_set_names(overlap);
      }
    }
  }
  return "";
}

std::string splice_anchor(const SpliceSpec& spec) {
  if (spec.kind == SpliceSpec::Kind::kTap) return slab_owner(spec.tap_slab);
  return "compute";
}

std::unique_ptr<RoundStage> build_splice_stage(const SpliceSpec& spec,
                                               std::size_t vertex_count) {
  switch (spec.kind) {
    case SpliceSpec::Kind::kNoop: return std::make_unique<NoopStage>();
    case SpliceSpec::Kind::kDedup:
      DG_EXPECTS(spec.mask_slab == Slab::kDeliveryMask);
      return std::make_unique<DedupStage>(spec.window, vertex_count);
    case SpliceSpec::Kind::kTap:
      return std::make_unique<TraceTapStage>(spec.tap_slab, spec.vertices);
  }
  return nullptr;
}

}  // namespace dg::sim
