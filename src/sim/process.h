// The process abstraction of Section 2.
//
// A process is a probabilistic automaton driven in synchronous rounds.  The
// paper's round micro-structure is: (1) environment inputs, (2) transmit
// decisions, (3) reception, (4) outputs.  The engine realizes (2) and (3)
// through this interface; (1) and (4) are realized by protocol-specific
// wrappers that talk to typed process subclasses between engine rounds.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/packet.h"
#include "util/rng.h"

namespace dg::sim {

/// Round numbers are 1-based, as in the paper ("rounds 1, 2, ...").
using Round = std::int64_t;

/// Per-round context handed to a process.  Grants access to the round number
/// and the process's own local randomness -- and nothing else (processes
/// must stay local: no n, no topology, no other processes).
class RoundContext {
 public:
  RoundContext(Round round, Rng& rng) : round_(round), rng_(&rng) {}

  Round round() const noexcept { return round_; }
  Rng& rng() noexcept { return *rng_; }

 private:
  Round round_;
  Rng* rng_;
};

class Process {
 public:
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const noexcept { return id_; }

  /// Step (2): decide to transmit (return a packet) or to receive
  /// (return nullopt).  Called exactly once per round.
  virtual std::optional<Packet> transmit(RoundContext& ctx) = 0;

  /// Step (3): reception outcome.  Called exactly once per round for
  /// *listening* processes only; `packet` is nullopt for the silence /
  /// collision indicator (the paper's "null" -- no collision detection, so
  /// silence and collision are indistinguishable).
  virtual void receive(const std::optional<Packet>& packet,
                       RoundContext& ctx) = 0;

  /// End of the round, after reception everywhere.  Protocol outputs (ack,
  /// recv, decide) are emitted from here via protocol-specific callbacks.
  virtual void end_round(RoundContext& ctx) { (void)ctx; }

  /// Fault seam (Engine::set_fault_plan).  While crashed, the process gets
  /// no transmit()/receive()/end_round() calls at all; on_crash fires once
  /// at the crash round (after the wrapper's FaultListener has read any
  /// pre-crash state it needs) and on_recover once at the recovery round,
  /// where the process must re-initialize its protocol state -- keeping
  /// only identity-level facts (its id, message sequence numbers) so a
  /// recovered node rejoins as itself, not as a duplicate.  Both are
  /// invoked serially at the round boundary, never from worker threads.
  virtual void on_crash(Round round) { (void)round; }
  virtual void on_recover(Round round) { (void)round; }

  /// Sparse-round consent (mirrors shard_safe()).  The engine calls this in
  /// two ways:
  ///
  ///  * `silent_steps(0)` -- a pure promise query.  The return value j >= 0
  ///    is the number of FUTURE rounds this process promises to be silent
  ///    for, PROVIDED it keeps receiving only null receptions: during those
  ///    rounds it would not transmit, emit no outputs, draw no randomness,
  ///    and treat receive(nullopt)/end_round() as no-ops.  Returning 0
  ///    (the default) opts out -- the engine steps the process every round.
  ///
  ///  * `silent_steps(k)` with k > 0 -- a batched catch-up.  The engine
  ///    reports that k consecutive promised-silent rounds have completed
  ///    without being stepped; the process must advance its round-position
  ///    cursor by k (a closed-form jump, no per-round work) so its state is
  ///    exactly what k individual silent rounds would have produced.  The
  ///    return value is a fresh promise for the rounds after the jump.
  ///
  /// A promise is conditional: if anything arrives (a count==1 delivery) or
  /// a fault event fires, the engine catches the process up and resumes
  /// per-round stepping, so the observable execution is byte-identical to
  /// the dense path.  Invoked under the same concurrency discipline as
  /// transmit()/receive(): serially in serial rounds, from the owning
  /// block's worker in sharded rounds (sharding already requires
  /// shard_safe() consent from every process).
  virtual std::int64_t silent_steps(std::int64_t k) {
    (void)k;
    return 0;
  }

  /// True when transmit()/receive()/end_round() touch only this process's
  /// own state (plus its RoundContext rng), so the engine may run different
  /// vertices' steps concurrently within a phase.  Processes whose callbacks
  /// fan out into shared protocol state (spec checkers, traffic ledgers)
  /// must return false unless that fan-out is concurrency-safe -- the
  /// engine silently falls back to the serial round loop when any process
  /// declines, so the conservative default costs correctness nothing.
  virtual bool shard_safe() const { return false; }

 protected:
  explicit Process(ProcessId id) : id_(id) {}

 private:
  ProcessId id_;
};

}  // namespace dg::sim
