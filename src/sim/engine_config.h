// sim::EngineConfig -- one builder for the engine's grown-by-accretion
// mutator surface.
//
// set_round_threads / set_fault_plan / set_telemetry accreted one PR at a
// time; wrappers and CLIs each call some subset in their own order.  The
// config object names every knob once, applies in a fixed order
// (threads, fault plan, splices, telemetry -- so spliced stages exist
// before the profiler registers per-stage timers), and flows unchanged
// through LbSimulation::configure() to the engine.  The old setters
// survive as thin forwarders for incremental migration; new call sites
// should build a config.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/splice.h"

namespace dg::fault {
class FaultPlan;
class FaultListener;
}  // namespace dg::fault

namespace dg::obs {
class Registry;
class TraceSink;
}  // namespace dg::obs

namespace dg::sim {

struct EngineConfig {
  /// 0 = leave the engine's current thread cap untouched.
  std::size_t round_threads = 0;

  /// Fault plan to install (nullptr clears) -- only applied when
  /// has_fault_plan is set, so a default config never clears an
  /// already-installed plan.
  bool has_fault_plan = false;
  fault::FaultPlan* fault_plan = nullptr;
  fault::FaultListener* fault_listener = nullptr;

  /// Telemetry to install (nullptrs clear) -- same has_* convention.
  bool has_telemetry = false;
  obs::Registry* registry = nullptr;
  obs::TraceSink* trace_sink = nullptr;

  /// Activity-driven sparse rounds (frontier masks + batched silent steps;
  /// see docs/PIPELINE.md) -- only applied when has_sparse_rounds is set,
  /// so a default config keeps the engine's current setting (which starts
  /// from the DG_SPARSE_ROUNDS environment knob, default on).
  bool has_sparse_rounds = false;
  bool sparse_rounds = true;

  /// Extra stages spliced into the round pipeline, in installation order.
  /// Must have passed validate_splice_specs().
  std::vector<SpliceSpec> splices;

  EngineConfig& with_round_threads(std::size_t threads) {
    round_threads = threads;
    return *this;
  }
  EngineConfig& with_fault_plan(fault::FaultPlan* plan,
                                fault::FaultListener* listener = nullptr) {
    has_fault_plan = true;
    fault_plan = plan;
    fault_listener = listener;
    return *this;
  }
  EngineConfig& with_telemetry(obs::Registry* reg,
                               obs::TraceSink* sink = nullptr) {
    has_telemetry = true;
    registry = reg;
    trace_sink = sink;
    return *this;
  }
  EngineConfig& with_sparse_rounds(bool on) {
    has_sparse_rounds = true;
    sparse_rounds = on;
    return *this;
  }
  EngineConfig& with_splice(SpliceSpec spec) {
    splices.push_back(std::move(spec));
    return *this;
  }
};

}  // namespace dg::sim
