// Wire-level packet formats.
//
// Two payload kinds cover the whole stack: seed-agreement packets (owner id
// + seed value; Section 3.2's "(i, s)" pairs) and data packets (a local
// broadcast message).  The collision semantics of Section 2 operate on whole
// packets regardless of kind.
#pragma once

#include <cstdint>
#include <variant>

namespace dg::sim {

/// Process identifier (the paper's id space I).  Processes know their own id
/// but not the global id() mapping.
using ProcessId = std::uint64_t;

/// Identifies one local-broadcast message.  The paper's message sets M_u are
/// pairwise disjoint; we realize this by keying messages on (origin, seq):
/// M_u = {(u, 1), (u, 2), ...}.
struct MessageId {
  ProcessId origin = 0;
  std::uint32_t seq = 0;

  friend bool operator==(const MessageId&, const MessageId&) = default;
};

struct MessageIdHash {
  std::size_t operator()(const MessageId& m) const noexcept {
    std::uint64_t x = m.origin ^ (0x9e3779b97f4a7c15ULL * (m.seq + 1));
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(x ^ (x >> 27));
  }
};

/// Seed-agreement payload: "(j, s)" from Section 3.2.
struct SeedPayload {
  ProcessId owner = 0;
  std::uint64_t seed_value = 0;
};

/// Local-broadcast payload.  `content` is opaque application data carried
/// for the benefit of layers above the MAC (e.g. multi-message broadcast
/// relays the same content under fresh MessageIds).
struct DataPayload {
  MessageId id;
  std::uint64_t content = 0;
};

struct Packet {
  ProcessId sender = 0;
  std::variant<SeedPayload, DataPayload> body;

  bool is_seed() const noexcept {
    return std::holds_alternative<SeedPayload>(body);
  }
  bool is_data() const noexcept {
    return std::holds_alternative<DataPayload>(body);
  }
  const SeedPayload& seed() const { return std::get<SeedPayload>(body); }
  const DataPayload& data() const { return std::get<DataPayload>(body); }
};

}  // namespace dg::sim
