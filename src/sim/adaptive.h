// ADAPTIVE adversaries -- deliberately OUTSIDE the paper's model.
//
// The dual graph model of Section 2 requires the link scheduler to be
// oblivious: the whole sequence G_1, G_2, ... is fixed before round 1.
// Ghaffari, Lynch, Newport [11] proved that this is not a convenience but a
// necessity: with an *adaptive* scheduler (one that picks the round
// topology after seeing who transmits), local broadcast with efficient
// progress is impossible -- no randomized strategy helps, because the
// adversary reacts to the coin flips themselves.
//
// This hook exists to reproduce that impossibility empirically (experiment
// E12): it lets a test/bench install a round-by-round adversary that sees
// the transmit decisions before the unreliable edges are fixed.  It is the
// counterfactual that justifies the model; nothing in the library's
// algorithms or guarantees uses it.
#pragma once

#include <vector>

#include "graph/dual_graph.h"
#include "sim/process.h"
#include "util/bitmap.h"

namespace dg::sim {

/// Chooses the unreliable-edge subset for a round AFTER observing that
/// round's transmit decisions.  Installing one via
/// Engine::set_adaptive_adversary OVERRIDES the oblivious scheduler for
/// unreliable edges entirely.
class AdaptiveAdversary {
 public:
  virtual ~AdaptiveAdversary() = default;

  /// Called once per round, after transmit decisions and before reception.
  /// `transmitting[v]` is true iff vertex v transmits this round.
  virtual void plan_round(Round round, const graph::DualGraph& g,
                          const std::vector<bool>& transmitting) = 0;

  /// Whether unreliable edge `edge` is included in this round's topology
  /// (valid after the corresponding plan_round call).
  virtual bool active(graph::UnreliableEdgeId edge) const = 0;

  /// Writes the planned round's whole edge subset into `out` (same bulk
  /// contract as LinkScheduler::fill_round; the engine feeds both paths into
  /// one bitmap).  Must equal active() bit-for-bit; the default loops it.
  virtual void fill_round(Bitmap& out) const {
    out.clear();
    const auto edges = static_cast<graph::UnreliableEdgeId>(out.size());
    for (graph::UnreliableEdgeId e = 0; e < edges; ++e) {
      if (active(e)) out.set(e);
    }
  }
};

/// The jammer that realizes the [11] impossibility argument against a
/// single target receiver:
///   * if exactly one reliable neighbor of the target transmits (the round
///     would deliver), it includes one transmitting unreliable neighbor's
///     edge to manufacture a collision;
///   * if no reliable neighbor transmits, it includes either zero or two+
///     transmitting unreliable edges so no lone unreliable transmitter can
///     sneak a message through;
///   * if two or more reliable neighbors transmit, the collision is already
///     there and it includes nothing.
/// Against this adversary the target never receives anything, regardless of
/// the algorithm's randomization -- progress is impossible, exactly as
/// proved.
class TargetedJammer final : public AdaptiveAdversary {
 public:
  explicit TargetedJammer(graph::Vertex target) : target_(target) {}

  void plan_round(Round round, const graph::DualGraph& g,
                  const std::vector<bool>& transmitting) override;
  bool active(graph::UnreliableEdgeId edge) const override;
  void fill_round(Bitmap& out) const override;

  /// Rounds in which the jammer had to intervene (diagnostics).
  std::uint64_t interventions() const noexcept { return interventions_; }

 private:
  graph::Vertex target_;
  Bitmap include_;
  std::uint64_t interventions_ = 0;
};

}  // namespace dg::sim
