// Scenario-spliceable pipeline stages.
//
// A splice spec is a small textual grammar (mirroring the channel /
// traffic / fault spec grammars) naming an extra stage to insert into the
// round pipeline without engine edits:
//
//   noop                       -- the observably-free seam probe (CI diffs
//                                 a spliced run byte-for-byte against an
//                                 unspliced one)
//   dedup[:window[:mask_slab]] -- duplicate-suppression cache: remembers
//                                 the last `window` (default 8) packets
//                                 each receiver decoded and masks redundant
//                                 deliveries via the delivery-mask slab
//   tap:slab[:v1,v2,...]       -- read-only probe: a logical counter of
//                                 the slab's population each round, plus
//                                 per-vertex trace instants for the listed
//                                 vertices
//
// Splices declare read/write sets like any stage; validate_splice_specs()
// rejects conflicting combinations (writing a core-owned slab, two
// splices writing the same slab) before anything is built, so scenario
// loading can report file:line errors.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/slab.h"
#include "sim/stage.h"

namespace dg::sim {

struct SpliceSpec {
  enum class Kind { kNoop, kDedup, kTap };

  Kind kind = Kind::kNoop;
  std::size_t window = 8;                ///< dedup ring depth
  Slab mask_slab = Slab::kDeliveryMask;  ///< dedup's write target
  Slab tap_slab = Slab::kTransmitBitmap;
  std::vector<std::uint32_t> vertices;   ///< tap's traced vertices
  std::string text;                      ///< original spec string
};

/// The grammar summary used in unknown-stage errors and usage text.
std::string valid_splice_kinds();

/// Parses `text` into `out`; on failure returns false and fills `error`
/// with an actionable message (out is unspecified).
bool parse_splice_spec(const std::string& text, SpliceSpec& out,
                       std::string& error);

/// Declared slab sets of the stage `spec` would build (used for
/// validation before construction).
SlabSet splice_reads(const SpliceSpec& spec);
SlabSet splice_writes(const SpliceSpec& spec);

/// Validates a whole splice list: no spec may write a slab owned by a core
/// stage, and no two specs may write the same slab.  Returns "" or the
/// first violation.
std::string validate_splice_specs(const std::vector<SpliceSpec>& specs);

/// The core stage the spliced stage anchors after ("compute" for noop and
/// dedup; the tapped slab's owner for taps).
std::string splice_anchor(const SpliceSpec& spec);

/// Builds the stage.  The spec must have passed validation; `vertex_count`
/// sizes per-vertex state.
std::unique_ptr<RoundStage> build_splice_stage(const SpliceSpec& spec,
                                               std::size_t vertex_count);

}  // namespace dg::sim
