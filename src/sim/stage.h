// RoundStage -- the unit of composition in the round pipeline.
//
// A stage declares which named slabs (sim/slab.h) it reads and writes and
// whether its writes are per-vertex-disjoint; the pipeline driver
// (Engine::run_pipeline) uses the declarations to decide dispatch: a stage
// with vertex_disjoint_writes() runs block-parallel on the engine's thread
// pool in sharded rounds, everything else runs serial.  Determinism across
// round_threads is preserved by the hook split below, not by scheduling:
// anything order-sensitive (observer fan-out, wrapper checkpoints) lives
// in the serial hooks.
//
// Hook order per stage, per round:
//   prologue()    serial, both dispatches, first inside the profiler
//                 bracket (slab resets go here)
//   run()         serial dispatch only: the full phase body, inline
//                 observer fan-out included
//   run_block()   sharded dispatch only: the parallel body for one vertex
//                 block [begin, end); must touch only per-vertex state
//   replay()      sharded dispatch only, serial, after all blocks: replays
//                 the observer stream in ascending vertex order -- the
//                 exact events run() would have emitted inline
//   epilogue()    serial, both dispatches, last inside the bracket
//                 (RoundHooks checkpoints fire here)
//   after_phase() serial, both dispatches, outside the profiler bracket
//                 (logical-metrics passes go here so they are not timed)
//
// Core stages are friends of the Engine (defined in sim/engine.cpp);
// spliced stages (sim/splice.h) see only this RoundState view.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dual_graph.h"
#include "sim/packet.h"
#include "sim/slab.h"
#include "util/bitmap.h"

namespace dg::obs {
class Registry;
class TraceSink;
}  // namespace dg::obs

namespace dg::sim {

/// The per-round state a spliced stage may see: pointers into the engine's
/// slabs plus the round header.  Slab pointers are stable for the engine's
/// lifetime; which ones a stage may dereference is bounded by its declared
/// read/write sets (validated at splice time).
struct RoundState {
  std::int64_t round = 0;
  bool faults = false;   ///< a fault plan is installed
  bool sharded = false;  ///< this round runs the block-parallel dispatch
  /// This round runs the activity-driven sparse dispatch: compute/receive
  /// visit only frontier words, heard entries outside them are stale.
  /// Never true while spliced stages are installed (see docs/PIPELINE.md).
  bool sparse = false;
  std::size_t vertex_count = 0;
  std::size_t block_size = 0;  ///< sharded partition stride (0 when serial)

  Bitmap* transmitting = nullptr;        ///< Slab::kTransmitBitmap
  std::vector<Packet>* packets = nullptr;       ///< Slab::kPacketSlab
  std::vector<std::uint64_t>* heard = nullptr;  ///< Slab::kHeardWords
  Bitmap* crashed = nullptr;             ///< Slab::kCrashedBitmap
  Bitmap* delivery_mask = nullptr;       ///< Slab::kDeliveryMask
  const Bitmap* activity = nullptr;      ///< Slab::kActivityMask (frontier)
  /// Set true by a mask-writing stage to arm the ReceiveStage mask check
  /// for this round; reset by the driver at round start.
  bool* deliver_masked = nullptr;

  obs::Registry* registry = nullptr;     ///< may be null
  obs::TraceSink* trace = nullptr;       ///< may be null
};

class RoundStage {
 public:
  virtual ~RoundStage() = default;

  /// Stable stage name: the profiler counter suffix and the trace slice
  /// label ("transmit", "compute", ...; spliced stages pick fresh names).
  virtual std::string name() const = 0;

  /// Slabs this stage reads / writes.  Writes must be declared exactly:
  /// the splice validator rejects a spliced stage whose write set overlaps
  /// a core-owned slab or another splice's writes.
  virtual SlabSet reads() const = 0;
  virtual SlabSet writes() const = 0;

  /// True iff every write the stage performs lands in state owned by a
  /// single vertex (or in bitmap words wholly owned by one 64-aligned
  /// block).  Grants block-parallel dispatch in sharded rounds.
  virtual bool vertex_disjoint_writes() const { return false; }

  /// Whether the stage participates this round (e.g. the fault stage only
  /// runs with a plan installed; prepare_round only in sharded rounds).
  /// Inactive stages are skipped entirely -- no profiler bracket.
  virtual bool active(bool sharded) const {
    (void)sharded;
    return true;
  }

  virtual void prologue(RoundState& rs) { (void)rs; }
  virtual void run(RoundState& rs) = 0;
  virtual void run_block(RoundState& rs, graph::Vertex begin,
                         graph::Vertex end) {
    // Default for serial-only stages: never called (the driver dispatches
    // run() when vertex_disjoint_writes() is false).
    (void)rs;
    (void)begin;
    (void)end;
  }
  virtual void replay(RoundState& rs) { (void)rs; }
  virtual void epilogue(RoundState& rs) { (void)rs; }
  virtual void after_phase(RoundState& rs) { (void)rs; }
};

}  // namespace dg::sim
