// Bounded execution trace recorder.
//
// Records the last `capacity` wire-level events (transmissions, receptions,
// collisions) in a ring buffer and renders them as text.  Debugging and
// observability tooling: examples print the final rounds of an execution,
// tests assert on exact event sequences without hand-rolled observers.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>

#include "sim/observer.h"

namespace dg::sim {

class TraceRecorder final : public Observer {
 public:
  enum class EventKind {
    transmit,
    receive,
    collision,
    round_begin,
    round_end,
    crash,
    recover,
  };

  struct Event {
    Round round = 0;
    EventKind kind = EventKind::transmit;
    graph::Vertex vertex = 0;          ///< acting vertex (tx/rx/fault);
                                       ///< 0 for round markers
    graph::Vertex peer = 0;            ///< sender for receive events
    bool is_data = false;              ///< data vs seed payload
    std::uint64_t detail = 0;          ///< content (data) / owner (seed)
  };

  /// Keeps at most `capacity` events (oldest dropped first).
  explicit TraceRecorder(std::size_t capacity = 4096);

  /// Opt-in extra event classes.  Both must be set BEFORE the recorder is
  /// registered with the engine: interest() is sampled once at
  /// add_observer() time.
  void enable_round_markers(bool on) { round_markers_ = on; }
  void enable_fault_events(bool on) { fault_events_ = on; }

  unsigned interest() const override {
    return kTransmit | kReceive | kSilence |
           (round_markers_ ? (kRoundBegin | kRoundEnd) : 0u) |
           (fault_events_ ? kFault : 0u);
  }
  void on_transmit(Round round, graph::Vertex v, const Packet& p) override;
  void on_receive(Round round, graph::Vertex u, graph::Vertex from,
                  const Packet& p) override;
  void on_silence(Round round, graph::Vertex u, bool collision) override;
  void on_round_begin(Round round) override;
  void on_round_end(Round round) override;
  void on_crash(Round round, graph::Vertex v) override;
  void on_recover(Round round, graph::Vertex v) override;

  const std::deque<Event>& events() const noexcept { return events_; }
  std::size_t dropped() const noexcept { return dropped_; }
  void clear();

  /// Renders one event per line: "round 17: v3 -> v5 data content=42".
  void print(std::ostream& os) const;
  static std::string describe(const Event& event);

 private:
  void push(Event event);

  std::size_t capacity_;
  std::deque<Event> events_;
  std::size_t dropped_ = 0;
  bool round_markers_ = false;
  bool fault_events_ = false;
};

}  // namespace dg::sim
