// Bounded execution trace recorder.
//
// Records the last `capacity` wire-level events (transmissions, receptions,
// collisions) in a ring buffer and renders them as text.  Debugging and
// observability tooling: examples print the final rounds of an execution,
// tests assert on exact event sequences without hand-rolled observers.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>

#include "sim/observer.h"

namespace dg::sim {

class TraceRecorder final : public Observer {
 public:
  enum class EventKind { transmit, receive, collision };

  struct Event {
    Round round = 0;
    EventKind kind = EventKind::transmit;
    graph::Vertex vertex = 0;          ///< acting vertex (tx or rx)
    graph::Vertex peer = 0;            ///< sender for receive events
    bool is_data = false;              ///< data vs seed payload
    std::uint64_t detail = 0;          ///< content (data) / owner (seed)
  };

  /// Keeps at most `capacity` events (oldest dropped first).
  explicit TraceRecorder(std::size_t capacity = 4096);

  unsigned interest() const override {
    return kTransmit | kReceive | kSilence;
  }
  void on_transmit(Round round, graph::Vertex v, const Packet& p) override;
  void on_receive(Round round, graph::Vertex u, graph::Vertex from,
                  const Packet& p) override;
  void on_silence(Round round, graph::Vertex u, bool collision) override;

  const std::deque<Event>& events() const noexcept { return events_; }
  std::size_t dropped() const noexcept { return dropped_; }
  void clear();

  /// Renders one event per line: "round 17: v3 -> v5 data content=42".
  void print(std::ostream& os) const;
  static std::string describe(const Event& event);

 private:
  void push(Event event);

  std::size_t capacity_;
  std::deque<Event> events_;
  std::size_t dropped_ = 0;
};

}  // namespace dg::sim
