// Consensus over the abstract MAC layer (in the spirit of Newport,
// "Consensus with an Abstract MAC Layer", PODC 2014 [20]).
//
// Single-hop binary/multi-valued consensus using nothing but bcast/abort/
// ack/rcv -- no ids, no knowledge of n, which is exactly the regime the
// abstract MAC line of work targets.  Each node draws a random priority and
// champions (priority, value) pairs: it repeatedly broadcasts its champion,
// adopting any higher-priority champion it hears.  Hearing a better
// champion mid-broadcast *aborts* the now-stale broadcast (the layer's
// abort input doing real work).  After `cycles` acknowledged broadcasts of
// its final champion, a node decides.
//
// Guarantees (single-hop network, MAC error eps): validity always
// (champions originate from initial values); agreement with probability
// >= 1 - n * eps (the max-priority champion reaches everyone via the
// reliability guarantee); termination deterministic (bounded cycles since
// adoptions strictly increase priority).
#pragma once

#include <cstdint>
#include <optional>

#include "amac/amac.h"

namespace dg::amac {

class ConsensusNode final : public MacApplication {
 public:
  /// `initial_value` is this node's proposal (32 bits); `priority` should
  /// be an independent uniform draw (32 bits) -- ties broken by value.
  ConsensusNode(std::uint32_t initial_value, std::uint32_t priority,
                int cycles = 2);

  void step(MacEndpoint& endpoint) override;
  void on_rcv(std::uint64_t content) override;
  void on_ack(std::uint64_t content) override;

  bool decided() const noexcept { return decided_; }
  /// Valid only once decided().
  std::uint32_t decision() const;
  std::uint32_t champion_priority() const noexcept { return priority_; }

  /// Content wire format: (priority << 32) | value.
  static std::uint64_t encode(std::uint32_t priority, std::uint32_t value) {
    return (static_cast<std::uint64_t>(priority) << 32) | value;
  }
  static std::uint32_t priority_of(std::uint64_t content) {
    return static_cast<std::uint32_t>(content >> 32);
  }
  static std::uint32_t value_of(std::uint64_t content) {
    return static_cast<std::uint32_t>(content & 0xffffffffULL);
  }

 private:
  std::uint32_t value_;
  std::uint32_t priority_;
  int cycles_left_;
  bool broadcasting_ = false;
  bool champion_changed_ = false;  // adopted a better champion mid-flight
  bool decided_ = false;
};

}  // namespace dg::amac
