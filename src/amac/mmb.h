// Multi-message broadcast over the abstract MAC layer.
//
// The flood-relay algorithm in the style of Ghaffari, Kantor, Lynch,
// Newport [9, 10]: k messages start at arbitrary source nodes and must
// reach every node of the (G-connected) network.  Each node relays every
// content it learns exactly once, as soon as its MAC endpoint is idle.  The
// algorithm uses only bcast/ack/rcv -- composing it with LbMacLayer ports
// it to the dual graph model, the paper's headline compositionality claim
// (experiment E9).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "amac/amac.h"

namespace dg::amac {

class MmbNode final : public MacApplication {
 public:
  MmbNode() = default;

  /// Injects an initial message at this node (a source).
  void inject(std::uint64_t content);

  // MacApplication:
  void step(MacEndpoint& endpoint) override;
  void on_rcv(std::uint64_t content) override;
  void on_ack(std::uint64_t content) override;

  /// Contents known to this node (delivered or originated).
  const std::unordered_set<std::uint64_t>& known() const noexcept {
    return known_;
  }
  bool knows(std::uint64_t content) const {
    return known_.contains(content);
  }
  std::size_t pending_relays() const noexcept { return queue_.size(); }

 private:
  std::unordered_set<std::uint64_t> known_;
  std::deque<std::uint64_t> queue_;
};

}  // namespace dg::amac
