#include "amac/lb_amac.h"

#include "util/assert.h"

namespace dg::amac {

bool LbMacLayer::Endpoint::bcast(std::uint64_t content) {
  if (sim_->busy(v_)) return false;
  sim_->post_bcast(v_, content);
  return true;
}

LbMacLayer::LbMacLayer(lb::LbSimulation& sim) : sim_(&sim) {
  const auto n = static_cast<graph::Vertex>(sim.network().size());
  endpoints_.reserve(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    endpoints_.emplace_back(sim, v);
  }
  sim_->set_extra_listener(this);
}

void LbMacLayer::attach(std::vector<MacApplication*> apps) {
  DG_EXPECTS(apps.size() == sim_->network().size());
  for (const auto* app : apps) {
    DG_EXPECTS(app != nullptr);
  }
  apps_ = std::move(apps);
}

void LbMacLayer::run_rounds(std::int64_t count) {
  DG_EXPECTS(!apps_.empty());
  for (std::int64_t i = 0; i < count; ++i) {
    for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(apps_.size());
         ++v) {
      apps_[v]->step(endpoints_[v]);
    }
    sim_->run_round();
  }
}

MacBounds LbMacLayer::bounds() const {
  const lb::LbParams& p = sim_->params();
  return MacBounds{p.t_ack_bound(), p.t_prog_bound(), p.eps1};
}

MacEndpoint& LbMacLayer::endpoint(graph::Vertex v) {
  DG_EXPECTS(v < endpoints_.size());
  return endpoints_[v];
}

void LbMacLayer::on_ack(graph::Vertex vertex, const sim::MessageId&,
                        sim::Round) {
  if (vertex < apps_.size()) {
    // The abstract MAC ack does not carry the MessageId; applications track
    // their own outstanding content.
    apps_[vertex]->on_ack(0);
  }
}

void LbMacLayer::on_recv(graph::Vertex vertex, const sim::MessageId&,
                         std::uint64_t content, sim::Round) {
  if (vertex < apps_.size()) {
    apps_[vertex]->on_rcv(content);
  }
}

}  // namespace dg::amac
