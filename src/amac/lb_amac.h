// LbMacLayer: the abstract MAC layer implemented by LBAlg in the dual graph
// model (the adaptation sketched in Sections 1 and 5 of the paper).
//
// The mediation work the paper describes -- aligning the round/receive-level
// LB definition with the event-level abstract MAC specification -- amounts
// to: (1) translating bcast calls into LB bcast inputs at round boundaries,
// (2) fanning LB ack/recv outputs into per-node client callbacks, and
// (3) exporting (f_ack, f_prog, eps) = (t_ack, t_prog, eps1) from the LB
// parameters.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "amac/amac.h"
#include "lb/simulation.h"

namespace dg::amac {

class LbMacLayer final : public lb::LbListener {
 public:
  /// Attaches to a simulation (must outlive the layer); installs itself as
  /// the simulation's extra listener.
  explicit LbMacLayer(lb::LbSimulation& sim);

  /// Binds one application per vertex (the vector length must equal the
  /// network size).  Applications are owned by the caller.
  void attach(std::vector<MacApplication*> apps);

  /// Runs `count` rounds: each round, every application's step() may issue
  /// bcasts (input step), then the network round executes.
  void run_rounds(std::int64_t count);

  MacBounds bounds() const;

  MacEndpoint& endpoint(graph::Vertex v);

  // lb::LbListener (outputs from the LB service):
  void on_ack(graph::Vertex vertex, const sim::MessageId& m,
              sim::Round round) override;
  void on_recv(graph::Vertex vertex, const sim::MessageId& m,
               std::uint64_t content, sim::Round round) override;

 private:
  class Endpoint final : public MacEndpoint {
   public:
    Endpoint(lb::LbSimulation& sim, graph::Vertex v) : sim_(&sim), v_(v) {}
    bool bcast(std::uint64_t content) override;
    bool abort() override { return sim_->post_abort(v_).has_value(); }
    bool busy() const override { return sim_->busy(v_); }

   private:
    lb::LbSimulation* sim_;
    graph::Vertex v_;
  };

  lb::LbSimulation* sim_;
  std::vector<Endpoint> endpoints_;
  std::vector<MacApplication*> apps_;
};

}  // namespace dg::amac
