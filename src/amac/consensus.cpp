#include "amac/consensus.h"

#include "util/assert.h"

namespace dg::amac {

ConsensusNode::ConsensusNode(std::uint32_t initial_value,
                             std::uint32_t priority, int cycles)
    : value_(initial_value), priority_(priority), cycles_left_(cycles) {
  DG_EXPECTS(cycles >= 1);
}

void ConsensusNode::step(MacEndpoint& endpoint) {
  if (decided_) return;
  if (champion_changed_ && endpoint.busy()) {
    // The in-flight broadcast carries a stale champion: cancel it and
    // re-broadcast the new one.
    endpoint.abort();
    broadcasting_ = false;
    champion_changed_ = false;
  }
  if (!endpoint.busy() && cycles_left_ > 0) {
    if (endpoint.bcast(encode(priority_, value_))) {
      broadcasting_ = true;
      champion_changed_ = false;
    }
  }
}

void ConsensusNode::on_rcv(std::uint64_t content) {
  if (decided_) return;
  const std::uint32_t p = priority_of(content);
  const std::uint32_t v = value_of(content);
  // Adopt strictly better champions; break priority ties toward the larger
  // value so all nodes converge on identical (priority, value) pairs.
  if (p > priority_ || (p == priority_ && v > value_)) {
    priority_ = p;
    value_ = v;
    champion_changed_ = true;
    // Re-announce the adopted champion at least once.
    if (cycles_left_ < 1) cycles_left_ = 1;
  }
}

void ConsensusNode::on_ack(std::uint64_t) {
  if (decided_ || !broadcasting_) return;
  broadcasting_ = false;
  if (champion_changed_) return;  // ack was for a stale champion
  if (--cycles_left_ <= 0) {
    decided_ = true;
  }
}

std::uint32_t ConsensusNode::decision() const {
  DG_EXPECTS(decided_);
  return value_;
}

}  // namespace dg::amac
