// The abstract MAC layer interface (Kuhn, Lynch, Newport [14, 16]).
//
// The abstract MAC layer exposes local broadcast as a service with bcast
// inputs and ack/rcv outputs, characterized by an acknowledgement bound
// f_ack, a progress bound f_prog, and (in the probabilistic variant) an
// error bound eps.  Algorithms written against this interface (the paper's
// "growing corpus": multi-message broadcast [9, 10], consensus [20],
// neighbor discovery [5, 6], ...) port to any model with an implementation
// of the layer.  Section 1/5 of the paper observes that LBAlg is such an
// implementation for the dual graph model; src/amac/lb_amac.h realizes the
// adaptation.
//
// Applications here see *only* this interface: no topology, no process ids
// of others, no model internals -- which is what makes the E9 experiment a
// genuine test of the compositionality claim.
#pragma once

#include <cstdint>

namespace dg::amac {

/// Application-side callbacks (the layer's outputs).
class MacClient {
 public:
  virtual ~MacClient() = default;
  /// rcv(m): a message with this content arrived from some G'-neighbor.
  virtual void on_rcv(std::uint64_t content) = 0;
  /// ack(m): the layer finished delivering the node's own bcast(content).
  virtual void on_ack(std::uint64_t content) = 0;
};

/// One node's handle on the layer (the layer's inputs).
class MacEndpoint {
 public:
  virtual ~MacEndpoint() = default;
  /// bcast(m): start broadcasting `content` to all reliable neighbors.
  /// Returns false (and does nothing) while a previous bcast is unacked.
  virtual bool bcast(std::uint64_t content) = 0;
  /// abort(m): cancel the outstanding bcast; no ack will follow.  Returns
  /// false when nothing was outstanding.
  virtual bool abort() = 0;
  virtual bool busy() const = 0;
};

/// The layer's advertised guarantees.
struct MacBounds {
  std::int64_t f_ack = 0;   ///< rounds from bcast to ack
  std::int64_t f_prog = 0;  ///< rounds to receive something near a sender
  double eps = 0.0;         ///< per-guarantee failure probability
};

/// A per-node application driven in lockstep with the rounds: `step` runs in
/// the input portion of each round and may call `endpoint.bcast`.
class MacApplication : public MacClient {
 public:
  virtual void step(MacEndpoint& endpoint) = 0;
};

}  // namespace dg::amac
