// Neighbor discovery over the abstract MAC layer (Cornejo, Lynch, Viqar,
// Welch [5, 6]).
//
// Every node broadcasts a hello carrying its own identity once; the MAC
// layer's reliability guarantee implies each node's hello reaches each of
// its reliable neighbors with probability >= 1 - eps, so after all acks the
// expected discovery recall over G-edges is >= 1 - eps.  Experiment E9
// measures exactly that recall.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "amac/amac.h"

namespace dg::amac {

class NeighborDiscoveryNode final : public MacApplication {
 public:
  /// `identity` is the value announced in the hello (the node's name at the
  /// application level).
  explicit NeighborDiscoveryNode(std::uint64_t identity)
      : identity_(identity) {}

  void step(MacEndpoint& endpoint) override;
  void on_rcv(std::uint64_t content) override;
  void on_ack(std::uint64_t content) override;

  bool hello_acked() const noexcept { return acked_; }
  const std::unordered_set<std::uint64_t>& discovered() const noexcept {
    return discovered_;
  }

 private:
  std::uint64_t identity_;
  bool sent_ = false;
  bool acked_ = false;
  std::unordered_set<std::uint64_t> discovered_;
};

}  // namespace dg::amac
