#include "amac/neighbor_discovery.h"

namespace dg::amac {

void NeighborDiscoveryNode::step(MacEndpoint& endpoint) {
  if (sent_) return;
  if (endpoint.bcast(identity_)) {
    sent_ = true;
  }
}

void NeighborDiscoveryNode::on_rcv(std::uint64_t content) {
  discovered_.insert(content);
}

void NeighborDiscoveryNode::on_ack(std::uint64_t) { acked_ = true; }

}  // namespace dg::amac
