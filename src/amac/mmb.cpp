#include "amac/mmb.h"

namespace dg::amac {

void MmbNode::inject(std::uint64_t content) {
  if (known_.insert(content).second) {
    queue_.push_back(content);
  }
}

void MmbNode::step(MacEndpoint& endpoint) {
  if (queue_.empty() || endpoint.busy()) return;
  if (endpoint.bcast(queue_.front())) {
    queue_.pop_front();
  }
}

void MmbNode::on_rcv(std::uint64_t content) {
  // Relay each content exactly once.
  if (known_.insert(content).second) {
    queue_.push_back(content);
  }
}

void MmbNode::on_ack(std::uint64_t) {}

}  // namespace dg::amac
