#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>

#include "util/assert.h"

namespace dg {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%' ||
          c == 'x')) {
      return false;
    }
  }
  return true;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DG_EXPECTS(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  DG_EXPECTS(!rows_.empty());
  DG_EXPECTS(rows_.back().size() < headers_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(int value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& cells, bool header) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string value = c < cells.size() ? cells[c] : std::string();
      const std::size_t pad = widths[c] - value.size();
      const bool right = !header && looks_numeric(value);
      if (right) {
        os << std::string(pad, ' ') << value;
      } else {
        os << value << std::string(pad, ' ');
      }
      os << (c + 1 < headers_.size() ? " | " : " |");
    }
    os << '\n';
  };

  emit_row(headers_, /*header=*/true);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit_row(row, /*header=*/false);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace dg
