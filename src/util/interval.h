// Wilson score confidence intervals for Bernoulli success frequencies.
//
// Every probabilistic property in the paper (agreement, reliability,
// progress, the Lemma C.1 probability floors) is verified empirically over
// Monte Carlo trials; the spec checkers and benches report Wilson intervals
// rather than raw frequencies so "holds with probability >= 1-eps" can be
// asserted with an explicit confidence.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/assert.h"

namespace dg {

struct Interval {
  double lo = 0.0;
  double hi = 1.0;

  bool contains(double p) const noexcept { return lo <= p && p <= hi; }
  double width() const noexcept { return hi - lo; }
};

/// Wilson score interval for `successes` out of `trials` at z standard
/// deviations (z = 1.96 -> ~95%, z = 2.58 -> ~99%, z = 3.29 -> ~99.9%).
inline Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                double z = 2.58) {
  DG_EXPECTS(trials > 0);
  DG_EXPECTS(successes <= trials);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  Interval out;
  out.lo = center - margin;
  out.hi = center + margin;
  if (out.lo < 0.0) out.lo = 0.0;
  if (out.hi > 1.0) out.hi = 1.0;
  return out;
}

/// Running tally of Bernoulli outcomes with interval accessors.
class BernoulliTally {
 public:
  void record(bool success) noexcept {
    ++trials_;
    if (success) ++successes_;
  }

  std::uint64_t trials() const noexcept { return trials_; }
  std::uint64_t successes() const noexcept { return successes_; }

  double frequency() const noexcept {
    return trials_ == 0 ? 0.0
                        : static_cast<double>(successes_) /
                              static_cast<double>(trials_);
  }

  Interval interval(double z = 2.58) const {
    return wilson_interval(successes_, trials_, z);
  }

  /// True iff the success probability is plausibly >= 1 - eps, i.e. the
  /// Wilson upper bound does not rule it out.
  bool consistent_with_at_least(double target, double z = 2.58) const {
    if (trials_ == 0) return true;
    return interval(z).hi >= target;
  }

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

}  // namespace dg
