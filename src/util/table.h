// Aligned text-table emitter used by the bench harness to print paper-style
// result tables (and optional CSV for downstream plotting).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dg {

/// A simple column-aligned table.  Cells are strings; numeric convenience
/// overloads format with sensible defaults.  Rendered with a header rule and
/// right-aligned numeric-looking cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row.  Returns *this for chaining via cell().
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value);
  /// Fixed-precision double (default 3 decimal places).
  Table& cell(double value, int precision = 3);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Column headers, in declaration order.
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  /// Formatted cell values, one inner vector per row() call.
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Renders the aligned table.
  void print(std::ostream& os) const;
  /// Renders as CSV (for plotting scripts).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dg
