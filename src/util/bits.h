// SeedBits: a deterministic stream of uniform bits expanded from a 64-bit
// seed value.
//
// The paper's seed domain is S_kappa = {0,1}^kappa: each seed-agreement
// participant draws a uniform kappa-bit string and ships it in messages.  In
// the simulator we ship a 64-bit seed value instead and expand it to bits on
// demand with a SplitMix64-based PRG.  Two nodes holding the same seed value
// read byte-identical bit streams (which is all the shared-randomness
// argument of LBAlg needs), and distinct owners hold independent uniform
// values (which is what the Independence property of the Seed spec needs).
// docs/PAPER_MAP.md documents this substitution; tests/util_test.cpp checks
// uniformity and cross-seed independence statistically.
#pragma once

#include <cstdint>

#include "util/assert.h"
#include "util/rng.h"

namespace dg {

/// Deterministic bit stream keyed by a 64-bit seed value.
///
/// Bits are indexed from 0; `take(k)` returns the next k bits as the integer
/// whose most-significant bit is the first bit consumed (so a group of nodes
/// calling take() in lockstep derive identical values).  Cursor-based, cheap
/// to copy.
class SeedBits {
 public:
  explicit SeedBits(std::uint64_t seed_value) : seed_value_(seed_value) {}

  std::uint64_t seed_value() const noexcept { return seed_value_; }
  std::uint64_t cursor() const noexcept { return cursor_; }

  /// Returns bit number `index` of the expanded stream (0 or 1).
  int bit_at(std::uint64_t index) const noexcept {
    const std::uint64_t word = splitmix64(seed_value_ ^ splitmix64(index / 64));
    return static_cast<int>((word >> (index % 64)) & 1U);
  }

  /// Consumes the next k bits (k in [0, 64]) and returns them as an integer.
  std::uint64_t take(int k) {
    DG_EXPECTS(k >= 0 && k <= 64);
    std::uint64_t value = 0;
    for (int i = 0; i < k; ++i) {
      value = (value << 1) | static_cast<std::uint64_t>(bit_at(cursor_++));
    }
    return value;
  }

  /// True iff the next k bits are all zero; consumes them.
  /// (LBAlg's participant rule: "if all of these bits are 0".)
  bool take_all_zero(int k) { return take(k) == 0; }

  /// Repositions the cursor (used to align all group members at a round
  /// boundary regardless of how many bits each consumed earlier).
  void seek(std::uint64_t bit_index) noexcept { cursor_ = bit_index; }

 private:
  std::uint64_t seed_value_;
  std::uint64_t cursor_ = 0;
};

}  // namespace dg
