#include "util/simd.h"

#include <algorithm>

#include "util/rng.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DG_SIMD_X86 1
#include <immintrin.h>
#else
#define DG_SIMD_X86 0
#endif

#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define DG_SIMD_NEON 1
#include <arm_neon.h>
#else
#define DG_SIMD_NEON 0
#endif

namespace dg::util::simd {

// ---- scalar references (the semantic definition both paths must match) ----

void fill_hash_threshold_scalar(std::uint64_t* words, std::size_t n_bits,
                                std::uint64_t seed, std::uint64_t mul,
                                std::uint64_t add, std::uint64_t threshold) {
  const std::size_t n_words = (n_bits + 63) / 64;
  for (std::size_t w = 0; w < n_words; ++w) {
    std::uint64_t bits = 0;
    const std::size_t lo = w * 64;
    const std::size_t hi = std::min(lo + 64, n_bits);
    for (std::size_t e = lo; e < hi; ++e) {
      const std::uint64_t h = splitmix64(seed ^ splitmix64(e * mul + add));
      bits |= static_cast<std::uint64_t>(h < threshold) << (e - lo);
    }
    words[w] = bits;
  }
}

void fill_flicker_scalar(std::uint64_t* words, std::size_t n_bits,
                         const std::int64_t* phase, std::int64_t base,
                         std::int64_t period, std::int64_t duty) {
  const std::size_t n_words = (n_bits + 63) / 64;
  for (std::size_t w = 0; w < n_words; ++w) {
    std::uint64_t bits = 0;
    const std::size_t lo = w * 64;
    const std::size_t hi = std::min(lo + 64, n_bits);
    for (std::size_t e = lo; e < hi; ++e) {
      std::int64_t pos = base + phase[e];
      if (pos >= period) pos -= period;
      bits |= static_cast<std::uint64_t>(pos < duty) << (e - lo);
    }
    words[w] = bits;
  }
}

#if DG_SIMD_X86

namespace {

__attribute__((target("avx2"))) inline __m256i mul64(__m256i a, __m256i b) {
  // Low 64 bits of the per-lane product: a_lo*b_lo + ((a_hi*b_lo +
  // a_lo*b_hi) << 32).  AVX2 has no 64x64 multiply; _mm256_mul_epu32 takes
  // the low 32 bits of each lane.
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i v_splitmix64(__m256i x) {
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
            _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
            _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

__attribute__((target("avx2"))) void fill_hash_threshold_avx2(
    std::uint64_t* words, std::size_t n_bits, std::uint64_t seed,
    std::uint64_t mul, std::uint64_t add, std::uint64_t threshold) {
  const std::size_t full_words = n_bits / 64;
  const __m256i vmul = _mm256_set1_epi64x(static_cast<long long>(mul));
  const __m256i vadd = _mm256_set1_epi64x(static_cast<long long>(add));
  const __m256i vseed = _mm256_set1_epi64x(static_cast<long long>(seed));
  // Unsigned h < threshold via signed compare after flipping the sign bit.
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i vthresh = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(threshold)), sign);
  __m256i e = _mm256_set_epi64x(3, 2, 1, 0);
  const __m256i four = _mm256_set1_epi64x(4);
  for (std::size_t w = 0; w < full_words; ++w) {
    std::uint64_t bits = 0;
    for (unsigned group = 0; group < 16; ++group) {
      const __m256i inner =
          v_splitmix64(_mm256_add_epi64(mul64(e, vmul), vadd));
      const __m256i h = v_splitmix64(_mm256_xor_si256(vseed, inner));
      const __m256i lt =
          _mm256_cmpgt_epi64(vthresh, _mm256_xor_si256(h, sign));
      const auto mask = static_cast<std::uint64_t>(
          _mm256_movemask_pd(_mm256_castsi256_pd(lt)));
      bits |= mask << (group * 4);
      e = _mm256_add_epi64(e, four);
    }
    words[w] = bits;
  }
  if (n_bits % 64 != 0) {
    fill_hash_threshold_scalar(words + full_words, n_bits % 64, seed, mul,
                               full_words * 64 * mul + add, threshold);
  }
}

__attribute__((target("avx2"))) void fill_flicker_avx2(
    std::uint64_t* words, std::size_t n_bits, const std::int64_t* phase,
    std::int64_t base, std::int64_t period, std::int64_t duty) {
  const std::size_t full_words = n_bits / 64;
  const __m256i vbase = _mm256_set1_epi64x(base);
  const __m256i vperiod = _mm256_set1_epi64x(period);
  const __m256i vduty = _mm256_set1_epi64x(duty);
  for (std::size_t w = 0; w < full_words; ++w) {
    std::uint64_t bits = 0;
    for (unsigned group = 0; group < 16; ++group) {
      const std::size_t e = w * 64 + group * 4;
      __m256i pos = _mm256_add_epi64(
          vbase, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i*>(phase + e)));
      // pos in [0, 2*period): subtract period once where pos >= period
      // (pos > period-1, but cmpgt is all we have: pos >= period iff
      // NOT (period > pos)).
      const __m256i wrap = _mm256_andnot_si256(
          _mm256_cmpgt_epi64(vperiod, pos), vperiod);
      pos = _mm256_sub_epi64(pos, wrap);
      const __m256i lt = _mm256_cmpgt_epi64(vduty, pos);
      const auto mask = static_cast<std::uint64_t>(
          _mm256_movemask_pd(_mm256_castsi256_pd(lt)));
      bits |= mask << (group * 4);
    }
    words[w] = bits;
  }
  if (n_bits % 64 != 0) {
    fill_flicker_scalar(words + full_words, n_bits % 64,
                        phase + full_words * 64, base, period, duty);
  }
}

bool detect_avx2() noexcept {
  return __builtin_cpu_supports("avx2") != 0;
}

}  // namespace

#endif  // DG_SIMD_X86

#if DG_SIMD_NEON

namespace {

// Low 64 bits of the per-lane product.  NEON has no 64x64 multiply either;
// same decomposition as the AVX2 mul64 above, using the widening 32x32
// multiplies: a_lo*b_lo + ((a_hi*b_lo + a_lo*b_hi) << 32).
inline uint64x2_t mul64_neon(uint64x2_t a, uint64x2_t b) {
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  uint64x2_t cross = vmull_u32(a_hi, b_lo);
  cross = vmlal_u32(cross, a_lo, b_hi);
  return vaddq_u64(vmull_u32(a_lo, b_lo), vshlq_n_u64(cross, 32));
}

inline uint64x2_t v_splitmix64_neon(uint64x2_t x) {
  x = vaddq_u64(x, vdupq_n_u64(0x9e3779b97f4a7c15ULL));
  x = mul64_neon(veorq_u64(x, vshrq_n_u64(x, 30)),
                 vdupq_n_u64(0xbf58476d1ce4e5b9ULL));
  x = mul64_neon(veorq_u64(x, vshrq_n_u64(x, 27)),
                 vdupq_n_u64(0x94d049bb133111ebULL));
  return veorq_u64(x, vshrq_n_u64(x, 31));
}

void fill_hash_threshold_neon(std::uint64_t* words, std::size_t n_bits,
                              std::uint64_t seed, std::uint64_t mul,
                              std::uint64_t add, std::uint64_t threshold) {
  const std::size_t full_words = n_bits / 64;
  const uint64x2_t vmul = vdupq_n_u64(mul);
  const uint64x2_t vadd = vdupq_n_u64(add);
  const uint64x2_t vseed = vdupq_n_u64(seed);
  const uint64x2_t vthresh = vdupq_n_u64(threshold);
  uint64x2_t e = vcombine_u64(vcreate_u64(0), vcreate_u64(1));
  const uint64x2_t two = vdupq_n_u64(2);
  for (std::size_t w = 0; w < full_words; ++w) {
    std::uint64_t bits = 0;
    for (unsigned group = 0; group < 32; ++group) {
      const uint64x2_t inner =
          v_splitmix64_neon(vaddq_u64(mul64_neon(e, vmul), vadd));
      const uint64x2_t h = v_splitmix64_neon(veorq_u64(vseed, inner));
      const uint64x2_t lt = vcltq_u64(h, vthresh);  // all-ones per hit lane
      bits |= ((vgetq_lane_u64(lt, 0) & 1) |
               ((vgetq_lane_u64(lt, 1) & 1) << 1))
              << (group * 2);
      e = vaddq_u64(e, two);
    }
    words[w] = bits;
  }
  if (n_bits % 64 != 0) {
    fill_hash_threshold_scalar(words + full_words, n_bits % 64, seed, mul,
                               full_words * 64 * mul + add, threshold);
  }
}

void fill_flicker_neon(std::uint64_t* words, std::size_t n_bits,
                       const std::int64_t* phase, std::int64_t base,
                       std::int64_t period, std::int64_t duty) {
  const std::size_t full_words = n_bits / 64;
  const int64x2_t vbase = vdupq_n_s64(base);
  const int64x2_t vperiod = vdupq_n_s64(period);
  const int64x2_t vduty = vdupq_n_s64(duty);
  for (std::size_t w = 0; w < full_words; ++w) {
    std::uint64_t bits = 0;
    for (unsigned group = 0; group < 32; ++group) {
      const std::size_t e = w * 64 + group * 2;
      int64x2_t pos = vaddq_s64(vbase, vld1q_s64(phase + e));
      // pos in [0, 2*period): subtract period once where pos >= period.
      const uint64x2_t wrap = vcgeq_s64(pos, vperiod);
      pos = vsubq_s64(pos, vreinterpretq_s64_u64(vandq_u64(
                               wrap, vreinterpretq_u64_s64(vperiod))));
      const uint64x2_t lt = vcltq_s64(pos, vduty);
      bits |= ((vgetq_lane_u64(lt, 0) & 1) |
               ((vgetq_lane_u64(lt, 1) & 1) << 1))
              << (group * 2);
    }
    words[w] = bits;
  }
  if (n_bits % 64 != 0) {
    fill_flicker_scalar(words + full_words, n_bits % 64,
                        phase + full_words * 64, base, period, duty);
  }
}

}  // namespace

#endif  // DG_SIMD_NEON

bool have_avx2() noexcept {
#if DG_SIMD_X86
  static const bool have = detect_avx2();
  return have;
#else
  return false;
#endif
}

bool have_neon() noexcept {
#if DG_SIMD_NEON
  return true;
#else
  return false;
#endif
}

void fill_hash_threshold(std::uint64_t* words, std::size_t n_bits,
                         std::uint64_t seed, std::uint64_t mul,
                         std::uint64_t add, std::uint64_t threshold) {
#if DG_SIMD_X86
  if (have_avx2()) {
    fill_hash_threshold_avx2(words, n_bits, seed, mul, add, threshold);
    return;
  }
#elif DG_SIMD_NEON
  fill_hash_threshold_neon(words, n_bits, seed, mul, add, threshold);
  return;
#endif
  fill_hash_threshold_scalar(words, n_bits, seed, mul, add, threshold);
}

void fill_flicker(std::uint64_t* words, std::size_t n_bits,
                  const std::int64_t* phase, std::int64_t base,
                  std::int64_t period, std::int64_t duty) {
#if DG_SIMD_X86
  if (have_avx2()) {
    fill_flicker_avx2(words, n_bits, phase, base, period, duty);
    return;
  }
#elif DG_SIMD_NEON
  fill_flicker_neon(words, n_bits, phase, base, period, duty);
  return;
#endif
  fill_flicker_scalar(words, n_bits, phase, base, period, duty);
}

}  // namespace dg::util::simd
