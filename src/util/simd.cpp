#include "util/simd.h"

#include <algorithm>

#include "util/rng.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DG_SIMD_X86 1
#include <immintrin.h>
#else
#define DG_SIMD_X86 0
#endif

namespace dg::util::simd {

// ---- scalar references (the semantic definition both paths must match) ----

void fill_hash_threshold_scalar(std::uint64_t* words, std::size_t n_bits,
                                std::uint64_t seed, std::uint64_t mul,
                                std::uint64_t add, std::uint64_t threshold) {
  const std::size_t n_words = (n_bits + 63) / 64;
  for (std::size_t w = 0; w < n_words; ++w) {
    std::uint64_t bits = 0;
    const std::size_t lo = w * 64;
    const std::size_t hi = std::min(lo + 64, n_bits);
    for (std::size_t e = lo; e < hi; ++e) {
      const std::uint64_t h = splitmix64(seed ^ splitmix64(e * mul + add));
      bits |= static_cast<std::uint64_t>(h < threshold) << (e - lo);
    }
    words[w] = bits;
  }
}

void fill_flicker_scalar(std::uint64_t* words, std::size_t n_bits,
                         const std::int64_t* phase, std::int64_t base,
                         std::int64_t period, std::int64_t duty) {
  const std::size_t n_words = (n_bits + 63) / 64;
  for (std::size_t w = 0; w < n_words; ++w) {
    std::uint64_t bits = 0;
    const std::size_t lo = w * 64;
    const std::size_t hi = std::min(lo + 64, n_bits);
    for (std::size_t e = lo; e < hi; ++e) {
      std::int64_t pos = base + phase[e];
      if (pos >= period) pos -= period;
      bits |= static_cast<std::uint64_t>(pos < duty) << (e - lo);
    }
    words[w] = bits;
  }
}

#if DG_SIMD_X86

namespace {

__attribute__((target("avx2"))) inline __m256i mul64(__m256i a, __m256i b) {
  // Low 64 bits of the per-lane product: a_lo*b_lo + ((a_hi*b_lo +
  // a_lo*b_hi) << 32).  AVX2 has no 64x64 multiply; _mm256_mul_epu32 takes
  // the low 32 bits of each lane.
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i v_splitmix64(__m256i x) {
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
            _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
            _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

__attribute__((target("avx2"))) void fill_hash_threshold_avx2(
    std::uint64_t* words, std::size_t n_bits, std::uint64_t seed,
    std::uint64_t mul, std::uint64_t add, std::uint64_t threshold) {
  const std::size_t full_words = n_bits / 64;
  const __m256i vmul = _mm256_set1_epi64x(static_cast<long long>(mul));
  const __m256i vadd = _mm256_set1_epi64x(static_cast<long long>(add));
  const __m256i vseed = _mm256_set1_epi64x(static_cast<long long>(seed));
  // Unsigned h < threshold via signed compare after flipping the sign bit.
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i vthresh = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(threshold)), sign);
  __m256i e = _mm256_set_epi64x(3, 2, 1, 0);
  const __m256i four = _mm256_set1_epi64x(4);
  for (std::size_t w = 0; w < full_words; ++w) {
    std::uint64_t bits = 0;
    for (unsigned group = 0; group < 16; ++group) {
      const __m256i inner =
          v_splitmix64(_mm256_add_epi64(mul64(e, vmul), vadd));
      const __m256i h = v_splitmix64(_mm256_xor_si256(vseed, inner));
      const __m256i lt =
          _mm256_cmpgt_epi64(vthresh, _mm256_xor_si256(h, sign));
      const auto mask = static_cast<std::uint64_t>(
          _mm256_movemask_pd(_mm256_castsi256_pd(lt)));
      bits |= mask << (group * 4);
      e = _mm256_add_epi64(e, four);
    }
    words[w] = bits;
  }
  if (n_bits % 64 != 0) {
    fill_hash_threshold_scalar(words + full_words, n_bits % 64, seed, mul,
                               full_words * 64 * mul + add, threshold);
  }
}

__attribute__((target("avx2"))) void fill_flicker_avx2(
    std::uint64_t* words, std::size_t n_bits, const std::int64_t* phase,
    std::int64_t base, std::int64_t period, std::int64_t duty) {
  const std::size_t full_words = n_bits / 64;
  const __m256i vbase = _mm256_set1_epi64x(base);
  const __m256i vperiod = _mm256_set1_epi64x(period);
  const __m256i vduty = _mm256_set1_epi64x(duty);
  for (std::size_t w = 0; w < full_words; ++w) {
    std::uint64_t bits = 0;
    for (unsigned group = 0; group < 16; ++group) {
      const std::size_t e = w * 64 + group * 4;
      __m256i pos = _mm256_add_epi64(
          vbase, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i*>(phase + e)));
      // pos in [0, 2*period): subtract period once where pos >= period
      // (pos > period-1, but cmpgt is all we have: pos >= period iff
      // NOT (period > pos)).
      const __m256i wrap = _mm256_andnot_si256(
          _mm256_cmpgt_epi64(vperiod, pos), vperiod);
      pos = _mm256_sub_epi64(pos, wrap);
      const __m256i lt = _mm256_cmpgt_epi64(vduty, pos);
      const auto mask = static_cast<std::uint64_t>(
          _mm256_movemask_pd(_mm256_castsi256_pd(lt)));
      bits |= mask << (group * 4);
    }
    words[w] = bits;
  }
  if (n_bits % 64 != 0) {
    fill_flicker_scalar(words + full_words, n_bits % 64,
                        phase + full_words * 64, base, period, duty);
  }
}

bool detect_avx2() noexcept {
  return __builtin_cpu_supports("avx2") != 0;
}

}  // namespace

#endif  // DG_SIMD_X86

bool have_avx2() noexcept {
#if DG_SIMD_X86
  static const bool have = detect_avx2();
  return have;
#else
  return false;
#endif
}

void fill_hash_threshold(std::uint64_t* words, std::size_t n_bits,
                         std::uint64_t seed, std::uint64_t mul,
                         std::uint64_t add, std::uint64_t threshold) {
#if DG_SIMD_X86
  if (have_avx2()) {
    fill_hash_threshold_avx2(words, n_bits, seed, mul, add, threshold);
    return;
  }
#endif
  fill_hash_threshold_scalar(words, n_bits, seed, mul, add, threshold);
}

void fill_flicker(std::uint64_t* words, std::size_t n_bits,
                  const std::int64_t* phase, std::int64_t base,
                  std::int64_t period, std::int64_t duty) {
#if DG_SIMD_X86
  if (have_avx2()) {
    fill_flicker_avx2(words, n_bits, phase, base, period, duty);
    return;
  }
#endif
  fill_flicker_scalar(words, n_bits, phase, base, period, duty);
}

}  // namespace dg::util::simd
