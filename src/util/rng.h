// Deterministic random-number utilities.
//
// Every random entity in a simulation (each process's local coin, the link
// scheduler, the topology generator, ...) gets its own independent stream
// derived from a single master seed via SplitMix64.  This gives bit-exact
// reproducibility for a given master seed while keeping streams statistically
// independent -- which the paper's model requires (processes use *local*
// randomness; the oblivious scheduler's choices are fixed up front).
#pragma once

#include <cstdint>
#include <random>

#include "util/assert.h"

namespace dg {

/// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
/// Used both as a stand-alone mixer and to seed mt19937_64 streams.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derive a child seed from a parent seed and a stream index.
/// Distinct (seed, stream) pairs give (practically) independent streams.
constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                    std::uint64_t stream) noexcept {
  return splitmix64(seed ^ splitmix64(stream + 0x632be59bd9b4e019ULL));
}

/// A process-local random stream.  Thin wrapper over mt19937_64 with the
/// handful of draw shapes the algorithms need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)) {}
  Rng(std::uint64_t seed, std::uint64_t stream)
      : engine_(derive_seed(seed, stream)) {}

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_) < p;
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    DG_EXPECTS(bound > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    DG_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Raw 64 uniform bits.
  std::uint64_t bits() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dg
