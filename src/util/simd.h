// SIMD word kernels for the schedulers' bulk bitmap fills.
//
// The oblivious schedulers materialize a whole round's unreliable-edge
// subset with one predicate evaluation per edge (util/bitmap.h
// fill_from).  These kernels compute the same words 4-8 edges at a time
// with AVX2 when the CPU has it, behind portable wrappers that fall back
// to the scalar forms on any other hardware.  Both paths must agree
// bit-for-bit with the schedulers' per-edge active() -- the *_scalar
// reference implementations are public precisely so
// tests/scheduler_bitmap_test.cpp can property-test the dispatching entry
// points against them (and both against active()).
//
// All kernels keep the Bitmap tail invariant: bits at or beyond n_bits in
// the last word are written as zero.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dg::util::simd {

/// True when the dispatching kernels take the AVX2 path on this machine.
bool have_avx2() noexcept;

/// True when the dispatching kernels take the NEON path on this machine
/// (AArch64, where AdvSIMD is architecturally mandatory -- so this is a
/// compile-time fact surfaced at runtime for symmetry with have_avx2()).
bool have_neon() noexcept;

/// words[e/64] bit e%64 = splitmix64(seed ^ splitmix64(e*mul + add))
///                        < threshold, for e in [0, n_bits).
/// This is the shared hash shape of the Bernoulli (mul = FNV prime,
/// add = round) and Burst (mul = golden-ratio 32, add = epoch) schedulers.
void fill_hash_threshold(std::uint64_t* words, std::size_t n_bits,
                         std::uint64_t seed, std::uint64_t mul,
                         std::uint64_t add, std::uint64_t threshold);
void fill_hash_threshold_scalar(std::uint64_t* words, std::size_t n_bits,
                                std::uint64_t seed, std::uint64_t mul,
                                std::uint64_t add, std::uint64_t threshold);

/// words[e/64] bit e%64 = pos(e) < duty where pos(e) = base + phase[e],
/// minus period once when it reaches it.  Requires phase[e] in [0, period)
/// and base in [0, period) -- the FlickerScheduler round form.
void fill_flicker(std::uint64_t* words, std::size_t n_bits,
                  const std::int64_t* phase, std::int64_t base,
                  std::int64_t period, std::int64_t duty);
void fill_flicker_scalar(std::uint64_t* words, std::size_t n_bits,
                         const std::int64_t* phase, std::int64_t base,
                         std::int64_t period, std::int64_t duty);

}  // namespace dg::util::simd
