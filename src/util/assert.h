// Lightweight contract-checking macros used across the library.
//
// DG_EXPECTS / DG_ENSURES check preconditions and postconditions; DG_ASSERT
// checks internal invariants.  All three are always on (simulation
// correctness matters more than the last few percent of speed), print the
// failing expression with its location, and abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dg::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace dg::detail

#define DG_EXPECTS(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                          \
          : ::dg::detail::contract_failure("precondition", #expr, __FILE__, \
                                           __LINE__))

#define DG_ENSURES(expr)                                                   \
  ((expr) ? static_cast<void>(0)                                           \
          : ::dg::detail::contract_failure("postcondition", #expr, __FILE__, \
                                           __LINE__))

#define DG_ASSERT(expr)                                                 \
  ((expr) ? static_cast<void>(0)                                        \
          : ::dg::detail::contract_failure("invariant", #expr, __FILE__, \
                                           __LINE__))
