// Small integer/real math helpers shared by the algorithm parameter
// calculations (Appendix B.1 / C.1 constant formulas).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "util/assert.h"

namespace dg {

/// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) noexcept {
  return 63 - std::countl_zero(x | 1ULL);
}

/// ceil(log2(x)) for x >= 1.  ceil_log2(1) == 0.
constexpr int ceil_log2(std::uint64_t x) noexcept {
  return (x <= 1) ? 0 : 64 - std::countl_zero(x - 1);
}

/// Smallest power of two >= x (pow2_ceil(0) == 1).
constexpr std::uint64_t pow2_ceil(std::uint64_t x) noexcept {
  return x <= 1 ? 1ULL : std::bit_ceil(x);
}

/// log2 as a real, guarded for arguments <= 1 (returns >= `floor_at`).
inline double log2_clamped(double x, double floor_at = 1.0) {
  if (x <= 1.0) return floor_at;
  const double v = std::log2(x);
  return v < floor_at ? floor_at : v;
}

/// ceil to int with overflow guard; value must be representable.
inline int ceil_to_int(double x) {
  DG_EXPECTS(x < 2.0e9);
  const double c = std::ceil(x);
  return static_cast<int>(c < 1.0 ? 1.0 : c);
}

/// x rounded up to the next multiple of m (m >= 1).
constexpr std::int64_t round_up(std::int64_t x, std::int64_t m) noexcept {
  return ((x + m - 1) / m) * m;
}

}  // namespace dg
