#include "util/thread_pool.h"

#include "util/assert.h"

namespace dg::util {

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads) {
  DG_EXPECTS(threads >= 1);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ensure_workers() {
  if (!workers_.empty() || threads_ <= 1) return;
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::run_blocks(std::size_t blocks, BlockFn fn, void* obj) {
  ensure_workers();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait for stragglers from the previous job to park before touching the
    // job fields: a worker still inside drain() may probe next_ once more
    // after the job completes, and must see the exhausted old counter, not a
    // half-written new job.
    done_cv_.wait(lock, [&] { return idle_ == workers_.size(); });
    fn_ = fn;
    obj_ = obj;
    blocks_ = blocks;
    next_.store(0, std::memory_order_relaxed);
    remaining_.store(blocks, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  drain();  // the caller is one of the pool's threads
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return remaining_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::drain() {
  for (;;) {
    const std::size_t block = next_.fetch_add(1, std::memory_order_relaxed);
    if (block >= blocks_) return;
    fn_(obj_, block);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last block: wake whoever waits in run_blocks.  Taking the lock
      // orders the notify after the waiter's predicate check.
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++idle_;
      done_cv_.notify_all();  // run_blocks may be waiting for us to park
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      --idle_;
      if (stop_) return;
      seen = generation_;
    }
    drain();
  }
}

}  // namespace dg::util
