// Shared token helpers for the textual spec grammars (scheduler specs in
// scn/, channel specs in phys/, traffic specs in traffic/).  The three
// grammars are documented as mirroring each other; keeping their
// tokenization in one place keeps the strictness rules (whole-token
// numbers, finite values) from drifting apart.
#pragma once

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace dg::spec {

inline std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) out.push_back(item);
  return out;
}

/// Strict numeric token: the whole token must parse and be finite.
inline bool parse_num(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && std::isfinite(out);
}

}  // namespace dg::spec
