// Persistent worker pool for deterministic block-parallel loops.
//
// The sharded round engine runs each phase of a round as a loop over
// disjoint vertex blocks.  Blocks are claimed dynamically (atomic counter),
// so the *assignment* of blocks to threads is racy -- determinism comes from
// the blocks writing disjoint state, never from execution order.  Workers
// are spawned lazily on the first parallel loop and persist across rounds;
// a Monte Carlo run pays thread creation once, not once per round.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dg::util {

class ThreadPool {
 public:
  /// `threads` counts the caller: a pool of k runs loops on the calling
  /// thread plus k-1 lazily created workers.  threads <= 1 never spawns.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threads() const noexcept { return threads_; }

  /// Runs fn(block) for every block in [0, blocks) across the caller and
  /// the workers, returning only after every block completed.  fn must
  /// confine its writes to per-block state; any shared reads must be
  /// immutable for the duration of the loop.  Not reentrant.
  template <typename Fn>
  void for_blocks(std::size_t blocks, Fn&& fn) {
    if (blocks <= 1 || threads_ <= 1) {
      for (std::size_t b = 0; b < blocks; ++b) fn(b);
      return;
    }
    run_blocks(
        blocks,
        [](void* obj, std::size_t block) {
          (*static_cast<std::remove_reference_t<Fn>*>(obj))(block);
        },
        &fn);
  }

 private:
  using BlockFn = void (*)(void* obj, std::size_t block);

  void run_blocks(std::size_t blocks, BlockFn fn, void* obj);
  void drain();
  void worker_loop();
  void ensure_workers();

  std::size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes workers on a new generation
  std::condition_variable done_cv_;  ///< job finished / worker parked
  std::uint64_t generation_ = 0;     ///< bumped per job, under mutex_
  std::size_t idle_ = 0;             ///< workers parked in wait, under mutex_
  bool stop_ = false;

  // Current job; written under mutex_ while every worker is parked, read by
  // workers after they observe the new generation under the same mutex.
  BlockFn fn_ = nullptr;
  void* obj_ = nullptr;
  std::size_t blocks_ = 0;
  std::atomic<std::size_t> next_{0};       ///< next unclaimed block
  std::atomic<std::size_t> remaining_{0};  ///< blocks not yet completed
};

}  // namespace dg::util
