// Flat 64-bit-word bitmap.
//
// The round engine's hot structures are sets over dense indices: which
// vertices transmit this round, which unreliable edges the scheduler
// includes.  Both are represented as word-packed bitmaps so membership is a
// one-bit probe and iteration is a countr_zero scan over set words --
// instead of a vector<bool> (bit-proxy churn) or per-element virtual calls.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/assert.h"

namespace dg {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t size) { resize(size); }

  /// Number of addressable bits (not the word capacity).
  std::size_t size() const noexcept { return size_; }
  std::size_t word_count() const noexcept { return words_.size(); }

  /// Resizes to `size` bits, all cleared.
  void resize(std::size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  void clear() noexcept {
    std::memset(words_.data(), 0, words_.size() * sizeof(std::uint64_t));
  }

  /// Sets every bit in [0, size); tail bits of the last word stay zero so
  /// count() and scans remain exact.
  void set_all() noexcept {
    if (words_.empty()) return;
    std::memset(words_.data(), 0xff, words_.size() * sizeof(std::uint64_t));
    const std::size_t tail = size_ % 64;
    if (tail != 0) words_.back() &= (~0ULL >> (64 - tail));
  }

  void set(std::size_t i) noexcept {
    DG_ASSERT(i < size_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  void reset(std::size_t i) noexcept {
    DG_ASSERT(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool test(std::size_t i) const noexcept {
    DG_ASSERT(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }

  std::size_t count() const noexcept {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  /// Raw word access for bulk fillers (schedulers write whole words).  The
  /// writer owns the tail-bit invariant: bits at or beyond size() must stay
  /// zero.
  std::span<std::uint64_t> words() noexcept { return words_; }
  std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Mask covering the valid bits of word `w` (all-ones except a partial
  /// last word).
  std::uint64_t word_mask(std::size_t w) const noexcept {
    DG_ASSERT(w < words_.size());
    const std::size_t tail = size_ % 64;
    if (w + 1 == words_.size() && tail != 0) return ~0ULL >> (64 - tail);
    return ~0ULL;
  }

  /// Copies another bitmap of the same size, word-wise.
  void copy_from(const Bitmap& other) noexcept {
    DG_ASSERT(size_ == other.size_);
    std::memcpy(words_.data(), other.words_.data(),
                words_.size() * sizeof(std::uint64_t));
  }

  /// Rebuilds the whole bitmap from a per-index predicate, accumulating 64
  /// bits in a register before each word store (the bulk-fill skeleton the
  /// schedulers share; keeps the tail-bit invariant by construction).
  template <typename Pred>
  void fill_from(Pred&& pred) {
    std::size_t i = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = 0;
      const std::size_t hi = (w + 1) * 64 < size_ ? (w + 1) * 64 : size_;
      for (; i < hi; ++i) {
        bits |= static_cast<std::uint64_t>(static_cast<bool>(pred(i)))
                << (i & 63);
      }
      words_[w] = bits;
    }
  }

  /// Calls f(index) for every set bit, in increasing index order.
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        f(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  friend bool operator==(const Bitmap& a, const Bitmap& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace dg
