// Textual channel specs: "dual_graph" (alias "dual") selects the Section 2
// scheduler-driven reception rule; "sinr[:alpha,beta,noise]" selects SINR
// ground-truth physics.  One parser serves every surface that accepts the
// spec (dglab --channel, scenario files, campaign validation), so the
// accepted grammar and the error messages cannot drift apart.
#pragma once

#include <string>

#include "phys/sinr.h"

namespace dg::phys {

struct ChannelSpec {
  bool is_sinr = false;  ///< false: dual-graph reception via the scheduler
  SinrParams sinr;       ///< meaningful only when is_sinr
};

/// Parses "dual" | "dual_graph" | "sinr" | "sinr:alpha,beta,noise" (':' is
/// accepted as a number separator too, so sinr:3:2:0.1 == sinr:3,2,0.1;
/// trailing numbers may be omitted to keep the defaults).  Validates the
/// SINR ranges (alpha > 0, beta >= 1, noise > 0; NaN rejected).  Returns
/// the empty string and fills `out` on success, else a human-readable
/// error naming the offending token.
std::string parse_channel_spec(const std::string& spec, ChannelSpec& out);

}  // namespace dg::phys
