// Physical-layer channel models.
//
// The round engine realizes the paper's round micro-structure (transmit
// decisions -> reception -> outputs) but delegates the *reception physics*
// -- given who transmits, what does each listening vertex hear? -- to a
// ChannelModel.  Two implementations exist:
//
//   * DualGraphChannel (phys/dual_graph_channel.h): the paper's Section 2
//     rule -- a listener receives iff exactly one neighbor in the round
//     topology (E plus the scheduler's unreliable subset) transmitted.
//     This is the default and is bit-for-bit identical to the reception
//     code that used to live inline in Engine::run_round()
//     (tests/determinism_test.cpp pins golden digests across the seam).
//
//   * SinrChannel (phys/sinr.h): ground-truth radio physics -- reception is
//     decided by the signal-to-interference-plus-noise ratio over a plane
//     embedding, not by per-edge combinatorics.  An *extension* beyond the
//     source paper (see docs/PAPER_MAP.md), used to test how well the dual
//     graph abstracts real interference.
//
// Contract: compute_round() fills heard[u] for every vertex u with a packed
// word -- high 32 bits = the vertex most recently heard from, low 32 bits =
// the number of decodable senders at u.  The engine interprets count == 1
// as a delivery from the packed sender, count == 0 as silence and
// count > 1 as a collision (both surfaced to the process as the null
// indicator: no collision detection).  `heard` is pre-zeroed by the caller;
// entries of transmitting vertices are ignored (transmitters hear nothing).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/dual_graph.h"
#include "sim/process.h"
#include "util/assert.h"
#include "util/bitmap.h"

namespace dg::sim {
class AdaptiveAdversary;
}  // namespace dg::sim

namespace dg::util {
class ThreadPool;
}  // namespace dg::util

namespace dg::phys {

/// Packs a reception word: `from` in the high 32 bits, `count` in the low
/// 32.  Channel implementations accumulate with heard_word(v, old + 1).
constexpr std::uint64_t heard_word(graph::Vertex from,
                                   std::uint64_t count) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | (count & 0xffffffffULL);
}

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// Binds the channel to a deployment.  Called exactly once, before round 1
  /// (the engine calls it from its constructor).  All channel randomness is
  /// derived from `master_seed` here; after bind(), reception must be a
  /// deterministic function of (round, transmit set).
  virtual void bind(const graph::DualGraph& g, std::uint64_t master_seed) = 0;

  /// Computes one round of reception: for each vertex u, writes the packed
  /// (heard-from, decodable-sender count) word into heard[u].  `heard` is
  /// pre-zeroed and sized to the vertex count.
  virtual void compute_round(sim::Round round, const Bitmap& transmitting,
                             std::span<std::uint64_t> heard) = 0;

  /// Installs the E12 adaptive adversary (sim/adaptive.h).  Only meaningful
  /// for channels whose reception is link-scheduler-driven; the default
  /// rejects the attempt (SINR reception has no edge schedule to override).
  virtual void set_adaptive_adversary(sim::AdaptiveAdversary* adversary) {
    (void)adversary;
    DG_EXPECTS(!"this channel model does not support adaptive adversaries");
  }

  /// True when this channel supports the sharded reception path:
  /// prepare_round() once per round, then compute_shard() over disjoint
  /// receiver ranges, possibly concurrently.  Channels that keep per-round
  /// mutable scratch keyed by receiver must overload both; the default
  /// (false) keeps the engine on the serial compute_round() path.
  virtual bool shardable() const { return false; }

  /// Serial per-round setup for the sharded path: everything that depends
  /// only on (round, transmit set) -- scheduler strategy selection, edge
  /// bitmap fills, transmitter bucketing -- happens here, once, before the
  /// engine fans compute_shard() out.  Default: nothing to prepare.
  virtual void prepare_round(sim::Round round, const Bitmap& transmitting) {
    (void)round;
    (void)transmitting;
  }

  /// Hands the engine's round thread pool to the channel, so per-round
  /// *serial-section* precomputation (prepare_round) may itself fan out
  /// block-parallel work -- the pool is guaranteed idle whenever the
  /// engine calls into the channel serially.  The pool outlives every
  /// subsequent round; the engine re-calls this if it rebuilds the pool.
  /// Sharding a precompute must not change its bytes: results stay
  /// identical at every thread count.  Default: ignored (serial channels
  /// have nothing to fan out).
  virtual void set_round_pool(util::ThreadPool* pool) { (void)pool; }

  /// Sharded reception: fills heard[u] for u in [begin, end) only, reading
  /// whatever prepare_round() staged.  May be called concurrently for
  /// disjoint ranges; must write nothing outside its range and must equal
  /// compute_round() bit-for-bit on the union of the ranges.  `heard` is
  /// the full vertex-indexed span (pre-zeroed over [begin, end)).
  virtual void compute_shard(sim::Round round, const Bitmap& transmitting,
                             std::span<std::uint64_t> heard,
                             graph::Vertex begin, graph::Vertex end) {
    (void)round;
    (void)transmitting;
    (void)heard;
    (void)begin;
    (void)end;
    DG_EXPECTS(!"this channel model does not implement sharded reception");
  }

  /// True when the channel can bound, before reception runs, the set of
  /// vertices that could possibly hear a non-zero verdict this round
  /// (fill_frontier below).  Channels that cannot -- or whose bound would
  /// be the whole vertex set -- keep the default and the engine stays on
  /// the dense path.
  virtual bool frontier_capable() const { return false; }

  /// Marks in `frontier` every vertex u whose heard[u] could be non-zero
  /// this round, given the transmit set: a conservative, schedule-
  /// independent superset (it may include vertices that end up hearing
  /// nothing, never the reverse).  Bits already set in `frontier` must be
  /// left set (the engine pre-seeds fault-event vertices).  Called serially
  /// once per round, before prepare_round()/compute.
  virtual void fill_frontier(const Bitmap& transmitting, Bitmap& frontier) {
    (void)transmitting;
    (void)frontier;
    DG_EXPECTS(!"this channel model does not implement frontier reception");
  }

  /// Serial sparse reception: fills heard[u] for frontier vertices only;
  /// the caller pre-zeroes heard over the frontier's 64-vertex words and
  /// guarantees fill_frontier() produced `frontier` from this round's
  /// transmit set.  The default forwards to compute_round(), which is
  /// correct whenever compute_round's writes are confined to the frontier
  /// (true of the dual-graph scatter); channels whose compute_round visits
  /// every receiver must override with a frontier-limited loop.
  virtual void compute_frontier(sim::Round round, const Bitmap& transmitting,
                                std::span<std::uint64_t> heard,
                                const Bitmap& frontier) {
    (void)frontier;
    compute_round(round, transmitting, heard);
  }

  /// Whether deliveries are confined to edges of the bound dual graph.
  /// True for DualGraphChannel (the Section 2 rule *is* the graph);
  /// false by default for physical channels, whose ground truth may
  /// deliver across pairs the declared G' does not connect -- spec
  /// checkers use this to know when the G'-adjacency clause of validity
  /// applies (see lb/spec.h).
  virtual bool respects_dual_graph() const { return false; }

  /// Human-readable channel identifier (benches and traces record it).
  virtual std::string name() const = 0;
};

}  // namespace dg::phys
