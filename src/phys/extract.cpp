#include "phys/extract.h"

#include <cmath>
#include <limits>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace dg::phys {

namespace {

/// Delivery frequency of tx -> rx over `contexts` sampled interference
/// contexts: every node in `others` transmits independently with
/// probability p, and tx delivers iff its signal clears beta against noise
/// plus the sampled interference (with beta >= 1, clearing is equivalent to
/// delivering: no second sender can clear simultaneously).
double delivery_frequency(const SinrParams& sinr, double signal_gain,
                          const std::vector<double>& other_gains,
                          std::size_t contexts, double p, Rng& rng) {
  std::size_t delivered = 0;
  for (std::size_t k = 0; k < contexts; ++k) {
    double interference = 0.0;
    for (double g : other_gains) {
      if (rng.chance(p)) interference += g;
    }
    if (signal_gain >= sinr.beta * (sinr.noise + interference)) ++delivered;
  }
  return static_cast<double>(delivered) / static_cast<double>(contexts);
}

}  // namespace

SinrExtraction extract_dual_graph(const geo::Embedding& embedding,
                                  const SinrExtractParams& params,
                                  std::uint64_t seed) {
  const auto n = static_cast<graph::Vertex>(embedding.size());
  DG_EXPECTS(n >= 1);
  DG_EXPECTS(params.contexts >= 1);
  DG_EXPECTS(params.sinr.beta >= 1.0);
  DG_EXPECTS(params.reliable_threshold >= params.unreliable_threshold);

  const double range = params.sinr.max_signal_range();
  const double range_sq = range * range;

  enum class Class : std::uint8_t { kAbsent, kUnreliable, kReliable };
  struct Pair {
    graph::Vertex u, v;
    Class cls;
  };
  std::vector<Pair> edges;

  ExtractionStats stats;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double min_nonreliable_dist = kInf;  // over ALL pairs not classified reliable
  double max_edge_dist = 0.0;          // over pairs that got an edge

  // Interference gain scratch: gains at the receiver from every node other
  // than the pair itself, rebuilt per direction.
  std::vector<double> other_gains;
  other_gains.reserve(n);

  std::uint64_t pair_index = 0;
  for (graph::Vertex u = 0; u < n; ++u) {
    for (graph::Vertex v = u + 1; v < n; ++v) {
      const double d2 = geo::distance_sq(embedding[u], embedding[v]);
      const double d = std::sqrt(d2);
      if (d2 > range_sq) {
        // Beyond decodable range: absent by definition, no sampling needed.
        min_nonreliable_dist = std::min(min_nonreliable_dist, d);
        continue;
      }
      ++stats.candidate_pairs;
      // One private stream per ordered pair keeps the extraction
      // deterministic and independent of scan order.
      Rng rng(seed, pair_index++);
      double freq_min = 1.0, freq_max = 0.0;
      for (const auto& [rx, tx] : {std::pair{u, v}, std::pair{v, u}}) {
        other_gains.clear();
        for (graph::Vertex w = 0; w < n; ++w) {
          if (w == rx || w == tx) continue;
          other_gains.push_back(path_gain(
              params.sinr, geo::distance_sq(embedding[rx], embedding[w])));
        }
        const double freq = delivery_frequency(
            params.sinr, path_gain(params.sinr, d2), other_gains,
            params.contexts, params.tx_probability, rng);
        freq_min = std::min(freq_min, freq);
        freq_max = std::max(freq_max, freq);
      }
      Class cls = Class::kAbsent;
      if (freq_min >= params.reliable_threshold) {
        cls = Class::kReliable;
        ++stats.reliable_edges;
      } else if (freq_max >= params.unreliable_threshold) {
        cls = Class::kUnreliable;
        ++stats.unreliable_edges;
      }
      if (cls != Class::kReliable) {
        min_nonreliable_dist = std::min(min_nonreliable_dist, d);
      }
      if (cls != Class::kAbsent) {
        max_edge_dist = std::max(max_edge_dist, d);
        edges.push_back(Pair{u, v, cls});
      }
    }
  }

  // Rescale so the r-geographic conditions hold structurally (see header):
  // unit distance lands just below the closest non-reliable pair.  The
  // relative margins dominate any float error when is_r_geographic
  // recomputes distances from the scaled coordinates.
  constexpr double kMargin = 1e-9;
  if (min_nonreliable_dist < kInf) {
    DG_EXPECTS(min_nonreliable_dist > 0.0);  // coincident non-reliable pair
    stats.scale = (1.0 + kMargin) / min_nonreliable_dist;
  }
  stats.r = std::max(1.0, max_edge_dist * stats.scale * (1.0 + kMargin));

  graph::DualGraph g(n);
  for (const Pair& e : edges) {
    if (e.cls == Class::kReliable) {
      g.add_reliable_edge(e.u, e.v);
    } else {
      g.add_unreliable_edge(e.u, e.v);
    }
  }
  geo::Embedding scaled;
  scaled.reserve(n);
  for (const geo::Point& p : embedding) {
    scaled.push_back(geo::Point{p.x * stats.scale, p.y * stats.scale});
  }
  g.set_embedding(std::move(scaled), stats.r);
  g.finalize();
  return SinrExtraction{std::move(g), stats};
}

}  // namespace dg::phys
