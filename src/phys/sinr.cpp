#include "phys/sinr.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/thread_pool.h"

namespace dg::phys {

double SinrParams::max_signal_range() const {
  return std::pow(power / (beta * noise), 1.0 / alpha);
}

SinrChannel::SinrChannel(const SinrParams& params)
    : params_(params), explicit_embedding_(false) {
  DG_EXPECTS(params.alpha > 0.0);
  DG_EXPECTS(params.beta >= 1.0);  // unique-decode regime (see header)
  DG_EXPECTS(params.noise > 0.0);
  DG_EXPECTS(params.power > 0.0);
}

SinrChannel::SinrChannel(const SinrParams& params, geo::Embedding embedding)
    : SinrChannel(params) {
  positions_ = std::move(embedding);
  explicit_embedding_ = true;
}

std::size_t SinrChannel::cell_index(const geo::RegionId& id) const {
  const auto it = cell_of_id_.find(id);
  DG_ASSERT(it != cell_of_id_.end());
  return it->second;
}

void SinrChannel::bind(const graph::DualGraph& g, std::uint64_t master_seed) {
  (void)master_seed;  // the SINR channel is deterministic given positions
  DG_EXPECTS(g.finalized());
  if (!explicit_embedding_) {
    DG_EXPECTS(g.embedding().has_value());
    positions_ = *g.embedding();
  }
  DG_EXPECTS(positions_.size() == g.size());

  near_radius_ = std::max(1.0, params_.max_signal_range());
  const double range = params_.max_signal_range();
  range_sq_ = range * range;
  const geo::GridPartition grid(params_.cell_side, near_radius_);

  // Static cell directory: every vertex bucketed once; cells are created in
  // first-touch (ascending vertex) order, so layout is deterministic.
  cells_.clear();
  cell_of_id_.clear();
  cell_of_vertex_.assign(positions_.size(), 0);
  for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(positions_.size());
       ++v) {
    const geo::RegionId id = grid.region_of(positions_[v]);
    auto [it, inserted] = cell_of_id_.try_emplace(id, cells_.size());
    if (inserted) cells_.push_back(Cell{id, {}, {}});
    cells_[it->second].members.push_back(v);
    cell_of_vertex_[v] = it->second;
  }

  // Near sets: occupied cells whose closures come within the decodable
  // radius.  GridPartition::neighbors enumerates exactly the cells with
  // min_cell_distance <= r, so every possible decodable sender of a
  // receiver in `cell` lives in cell.near.
  for (Cell& cell : cells_) {
    cell.near.push_back(cell_of_id_.at(cell.id));
    for (const geo::RegionId& nb : grid.neighbors(cell.id)) {
      const auto it = cell_of_id_.find(nb);
      if (it != cell_of_id_.end()) cell.near.push_back(it->second);
    }
    std::sort(cell.near.begin(), cell.near.end());
  }

  cell_tx_.assign(cells_.size(), {});
  tx_cells_.clear();
  tx_cells_.reserve(cells_.size());
  far_field_.assign(cells_.size(), 0.0);
  frontier_tx_seen_.assign(cells_.size(), 0);
  frontier_cell_seen_.assign(cells_.size(), 0);
  frontier_tx_touched_.clear();
  frontier_touched_.clear();
}

void SinrChannel::fill_frontier(const Bitmap& transmitting, Bitmap& frontier) {
  // Every decodable sender of a receiver in cell rc lives in a cell of
  // cells_[rc].near (bind() sizes the near radius to the max decodable
  // range), and min_cell_distance is symmetric, so the possible hearers of
  // a transmitter in cell tc are exactly the members of cells_[tc].near.
  // Dedup through the touched-flag scratch keeps the cost O(activity).
  transmitting.for_each_set([&](std::size_t vi) {
    const std::size_t tc = cell_of_vertex_[vi];
    if (frontier_tx_seen_[tc] != 0) return;
    frontier_tx_seen_[tc] = 1;
    frontier_tx_touched_.push_back(tc);
    for (std::size_t nc : cells_[tc].near) {
      if (frontier_cell_seen_[nc] != 0) continue;
      frontier_cell_seen_[nc] = 1;
      frontier_touched_.push_back(nc);
      for (graph::Vertex u : cells_[nc].members) frontier.set(u);
    }
  });
  for (std::size_t c : frontier_tx_touched_) frontier_tx_seen_[c] = 0;
  for (std::size_t c : frontier_touched_) frontier_cell_seen_[c] = 0;
  frontier_tx_touched_.clear();
  frontier_touched_.clear();
}

void SinrChannel::compute_frontier(sim::Round round, const Bitmap& transmitting,
                                   std::span<std::uint64_t> heard,
                                   const Bitmap& frontier) {
  // Same staging as the sharded path, then the verdict loop over maximal
  // runs of non-empty frontier words only.  Visiting a non-frontier vertex
  // inside a frontier word is harmless (its verdict is clears == 0, no
  // write); skipping empty words is where the sparsity pays.
  prepare_round(round, transmitting);
  const auto words = frontier.words();
  const auto n = static_cast<graph::Vertex>(positions_.size());
  std::size_t w = 0;
  while (w < words.size()) {
    if (words[w] == 0) {
      ++w;
      continue;
    }
    std::size_t w_end = w + 1;
    while (w_end < words.size() && words[w_end] != 0) ++w_end;
    const auto begin = static_cast<graph::Vertex>(w * 64);
    const auto end = std::min(static_cast<graph::Vertex>(w_end * 64), n);
    compute_shard(round, transmitting, heard, begin, end);
    w = w_end;
  }
}

void SinrChannel::compute_round(sim::Round round, const Bitmap& transmitting,
                                std::span<std::uint64_t> heard) {
  // The serial pass is the sharded pass over the full receiver range; the
  // verdict loop lives in compute_shard() alone so the two paths cannot
  // drift apart.
  prepare_round(round, transmitting);
  compute_shard(round, transmitting, heard, 0,
                static_cast<graph::Vertex>(positions_.size()));
}

void SinrChannel::prepare_round(sim::Round round, const Bitmap& transmitting) {
  (void)round;
  // Bucket this round's transmitters (touched-cell list keeps the clear
  // step proportional to the previous round's transmitter spread).
  for (std::size_t c : tx_cells_) cell_tx_[c].clear();
  tx_cells_.clear();
  transmitting.for_each_set([&](std::size_t vi) {
    const auto v = static_cast<graph::Vertex>(vi);
    const std::size_t c = cell_of_vertex_[v];
    if (cell_tx_[c].empty()) tx_cells_.push_back(c);
    cell_tx_[c].push_back(v);
  });
  if (tx_cells_.empty()) return;  // compute_shard() early-outs too

  // Far-field estimate per receiver cell: each far transmitter cell
  // contributes P * count * min_cell_distance^-alpha -- a conservative
  // per-cell monopole whose distance term depends only on cell geometry, so
  // the estimate is monotone in the transmit set (see header).  tx_cells_
  // is in first-touch (ascending transmitter) order: deterministic.
  //
  // The receiver-cell loop shards over the engine's pool when one is
  // installed (prepare_round runs in the engine's serial section, so the
  // pool is idle): per-cell writes are disjoint and each cell keeps the
  // exact inner tx_cells_ accumulation order, so the sharded fill is
  // bit-identical to the serial one at every thread count.
  const geo::GridPartition grid(params_.cell_side, near_radius_);
  const auto fill_cells = [&](std::size_t rc_begin, std::size_t rc_end) {
    for (std::size_t rc = rc_begin; rc < rc_end; ++rc) {
      double far = 0.0;
      for (std::size_t tc : tx_cells_) {
        const double d = grid.min_cell_distance(cells_[rc].id, cells_[tc].id);
        if (d <= near_radius_) continue;  // exact near term handles it
        far += params_.power * static_cast<double>(cell_tx_[tc].size()) *
               std::pow(d, -params_.alpha);
      }
      far_field_[rc] = far;
    }
  };
  const std::size_t cell_count = cells_.size();
  if (pool_ != nullptr && pool_->threads() > 1 && cell_count >= 2) {
    const std::size_t blocks = std::min(pool_->threads() * 4, cell_count);
    const std::size_t block_size = (cell_count + blocks - 1) / blocks;
    pool_->for_blocks(blocks, [&](std::size_t b) {
      const std::size_t rc_begin = b * block_size;
      fill_cells(rc_begin, std::min(rc_begin + block_size, cell_count));
    });
  } else {
    fill_cells(0, cell_count);
  }
}

void SinrChannel::compute_shard(sim::Round round, const Bitmap& transmitting,
                                std::span<std::uint64_t> heard,
                                graph::Vertex begin, graph::Vertex end) {
  (void)round;
  if (tx_cells_.empty()) return;

  // Per-receiver verdicts: exact signal + interference over near cells,
  // far-field estimate for the rest, deliver iff exactly one candidate
  // clears beta (with beta >= 1, at most one ever does).  Candidate scratch
  // is thread-local: concurrent shards must not share a buffer, and each
  // receiver's candidate list is rebuilt from scratch either way.
  static thread_local std::vector<std::pair<graph::Vertex, double>> candidates;
  for (graph::Vertex u = begin; u < end; ++u) {
    if (transmitting.test(u)) continue;  // transmitters hear nothing
    const std::size_t rc = cell_of_vertex_[u];
    const geo::Point& pu = positions_[u];
    double interference = far_field_[rc];
    candidates.clear();
    for (std::size_t nc : cells_[rc].near) {
      for (graph::Vertex v : cell_tx_[nc]) {
        const double d2 = geo::distance_sq(pu, positions_[v]);
        const double gain = path_gain(params_, d2);
        interference += gain;
        if (d2 <= range_sq_) candidates.emplace_back(v, gain);
      }
    }
    std::uint64_t clears = 0;
    graph::Vertex from = 0;
    for (const auto& [v, gain] : candidates) {
      // SINR test: gain / (N + I - gain) >= beta, rearranged to avoid the
      // division.
      if (gain >= params_.beta * (params_.noise + interference - gain)) {
        ++clears;
        from = v;
      }
    }
    if (clears != 0) heard[u] = heard_word(from, clears);
  }
}

std::string SinrChannel::name() const {
  return "sinr(alpha=" + std::to_string(params_.alpha) +
         ",beta=" + std::to_string(params_.beta) +
         ",noise=" + std::to_string(params_.noise) + ")";
}

}  // namespace dg::phys
