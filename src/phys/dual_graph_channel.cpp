#include "phys/dual_graph_channel.h"

#include "sim/adaptive.h"
#include "util/rng.h"

namespace dg::phys {

void DualGraphChannel::bind(const graph::DualGraph& g,
                            std::uint64_t master_seed) {
  DG_EXPECTS(g.finalized());
  graph_ = &g;
  // Stream tag 0x5c4ed is the historical scheduler stream: committing here
  // (instead of in the engine) must not move any scheduler RNG draw.
  scheduler_->commit(g, derive_seed(master_seed, /*stream=*/0x5c4edULL));
  edge_active_.resize(g.unreliable_edge_count());
}

void DualGraphChannel::compute_round(sim::Round round,
                                     const Bitmap& transmitting,
                                     std::span<std::uint64_t> heard) {
  const graph::DualGraph& g = *graph_;
  // `unreliable_probes` counts the edge-presence tests the reception pass
  // will make; it picks the scheduler consumption strategy below.
  std::size_t unreliable_probes = 0;
  transmitting.for_each_set([&](std::size_t v) {
    unreliable_probes +=
        g.unreliable_incident(static_cast<graph::Vertex>(v)).size();
  });

  // The round's unreliable subset comes from the oblivious scheduler, or --
  // for the E12 counterfactual, outside the paper's model -- from an
  // installed adaptive adversary that sees the transmit decisions first.
  //
  // Strategy: materialize the whole subset into edge_active_ (one bit-probe
  // per edge below) when the fill is word-cheap or the round is dense
  // enough in transmitter-incident edges to amortize a per-edge fill;
  // otherwise probe the scheduler per incident edge, so sparse rounds never
  // pay for edges nobody transmits across.  Both paths are bit-identical by
  // the fill_round() == active() contract.
  bool use_bitmap = true;
  if (adaptive_ != nullptr) {
    transmitting_bools_.assign(g.size(), false);
    transmitting.for_each_set(
        [&](std::size_t v) { transmitting_bools_[v] = true; });
    adaptive_->plan_round(round, g, transmitting_bools_);
    adaptive_->fill_round(edge_active_);
  } else if (unreliable_probes == 0) {
    use_bitmap = false;  // neither path will probe anything
  } else if (scheduler_->fill_round_is_word_cheap() ||
             unreliable_probes * 2 >= edge_active_.size()) {
    scheduler_->fill_round(round, edge_active_);
  } else {
    use_bitmap = false;
  }

  // Fused heard-count/heard-from pass: one packed word per vertex (high 32
  // bits last sender, low 32 bits count), scanned over CSR adjacency.
  transmitting.for_each_set([&](std::size_t vi) {
    const auto v = static_cast<graph::Vertex>(vi);
    const std::uint64_t sender_word = static_cast<std::uint64_t>(v) << 32;
    for (graph::Vertex u : g.g_neighbors(v)) {
      heard[u] = sender_word | ((heard[u] + 1) & 0xffffffffULL);
    }
    if (use_bitmap) {
      for (const auto& [edge, u] : g.unreliable_incident(v)) {
        if (edge_active_.test(edge)) {
          heard[u] = sender_word | ((heard[u] + 1) & 0xffffffffULL);
        }
      }
    } else {
      for (const auto& [edge, u] : g.unreliable_incident(v)) {
        if (scheduler_->active(edge, round)) {
          heard[u] = sender_word | ((heard[u] + 1) & 0xffffffffULL);
        }
      }
    }
  });
}

void DualGraphChannel::prepare_round(sim::Round round,
                                     const Bitmap& transmitting) {
  const graph::DualGraph& g = *graph_;
  // Identical strategy selection to compute_round(): the probe count and
  // the density cutover must match so the two paths consume the scheduler
  // the same way round for round.
  std::size_t unreliable_probes = 0;
  transmitting.for_each_set([&](std::size_t v) {
    unreliable_probes +=
        g.unreliable_incident(static_cast<graph::Vertex>(v)).size();
  });
  use_bitmap_ = true;
  if (adaptive_ != nullptr) {
    transmitting_bools_.assign(g.size(), false);
    transmitting.for_each_set(
        [&](std::size_t v) { transmitting_bools_[v] = true; });
    adaptive_->plan_round(round, g, transmitting_bools_);
    adaptive_->fill_round(edge_active_);
  } else if (unreliable_probes == 0) {
    // No transmitter has unreliable incidence, so the gather's
    // transmitting-first test short-circuits every edge probe; the branch
    // taken below is irrelevant, matching the serial "neither path probes"
    // case.
    use_bitmap_ = false;
  } else if (scheduler_->fill_round_is_word_cheap() ||
             unreliable_probes * 2 >= edge_active_.size()) {
    scheduler_->fill_round(round, edge_active_);
  } else {
    use_bitmap_ = false;
  }
}

void DualGraphChannel::compute_shard(sim::Round round,
                                     const Bitmap& transmitting,
                                     std::span<std::uint64_t> heard,
                                     graph::Vertex begin, graph::Vertex end) {
  const graph::DualGraph& g = *graph_;
  // Receiver-side gather over [begin, end): writes stay inside the shard's
  // own range, so shards never contend.  count and max-transmitting-
  // neighbor reproduce the serial scatter's packed word exactly (see the
  // header).  The transmitting test comes first: when no transmitter has
  // unreliable incidence the round's edge_active_ may be stale, and the
  // short-circuit guarantees it is never read -- same contract as the
  // serial strategy block.
  for (graph::Vertex u = begin; u < end; ++u) {
    std::uint64_t count = 0;
    graph::Vertex from = 0;
    for (graph::Vertex v : g.g_neighbors(u)) {
      if (transmitting.test(v)) {
        ++count;
        if (v > from) from = v;
      }
    }
    if (use_bitmap_) {
      for (const auto& [edge, v] : g.unreliable_incident(u)) {
        if (transmitting.test(v) && edge_active_.test(edge)) {
          ++count;
          if (v > from) from = v;
        }
      }
    } else {
      for (const auto& [edge, v] : g.unreliable_incident(u)) {
        if (transmitting.test(v) && scheduler_->active(edge, round)) {
          ++count;
          if (v > from) from = v;
        }
      }
    }
    if (count != 0) heard[u] = heard_word(from, count);
  }
}

void DualGraphChannel::fill_frontier(const Bitmap& transmitting,
                                     Bitmap& frontier) {
  const graph::DualGraph& g = *graph_;
  // Conservative superset of this round's hearers: reliable neighbors plus
  // *all* unreliable-incident endpoints of every transmitter, regardless of
  // which edges the scheduler (or an adaptive adversary) activates.  Being
  // schedule-independent keeps the scheduler's RNG consumption and the
  // adaptive plan_round() call order byte-identical to the dense path; the
  // cost is O(sum deg(tx)), the same order as the scatter itself.
  transmitting.for_each_set([&](std::size_t vi) {
    const auto v = static_cast<graph::Vertex>(vi);
    for (graph::Vertex u : g.g_neighbors(v)) frontier.set(u);
    for (const auto& [edge, u] : g.unreliable_incident(v)) {
      (void)edge;
      frontier.set(u);
    }
  });
}

std::string DualGraphChannel::name() const {
  return "dual-graph(" + scheduler_->name() + ")";
}

}  // namespace dg::phys
