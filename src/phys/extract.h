// Dual-graph extraction from an SINR deployment.
//
// The bridge from physics back to the paper's model: given node positions
// and SINR parameters, classify every vertex pair as reliable /
// grey-zone-unreliable / absent by Monte Carlo sampling of interference
// contexts, and package the result as a finalized graph::DualGraph whose
// (rescaled) embedding satisfies the two r-geographic conditions of
// Section 2:
//
//   (1) d(u, v) <= 1  implies {u, v} in E;
//   (2) d(u, v) > r   implies {u, v} not in E'.
//
// A pair is sampled by letting one endpoint transmit, the other listen, and
// every other node transmit independently with `tx_probability`; the pair's
// delivery frequency over `contexts` such rounds (computed with the exact
// SINR rule, per direction) decides its class: reliable when both
// directions deliver in at least `reliable_threshold` of contexts,
// unreliable when either direction delivers in at least
// `unreliable_threshold`, absent otherwise.
//
// The raw embedding is then rescaled so condition (1) holds by
// construction: unit distance is placed just below the closest pair that
// failed the reliability test, so everything closer -- which is, by
// minimality, reliable -- lands at scaled distance <= 1, and the failing
// pair itself lands strictly above 1.  r is the largest scaled distance
// spanned by any extracted edge (clamped to >= 1), so condition (2) is also
// structural.  The output therefore always validates
// graph::is_r_geographic, and the whole seed/LB/AMAC stack and its spec
// checkers run on it unchanged.
//
// Extraction is offline tooling (deployment analysis), not a round-engine
// hot path: cost is O(candidate pairs * contexts * interferers-in-range).
#pragma once

#include <cstdint>

#include "geo/point.h"
#include "graph/dual_graph.h"
#include "phys/sinr.h"

namespace dg::phys {

struct SinrExtractParams {
  SinrParams sinr;
  std::size_t contexts = 64;          ///< MC interference contexts per pair
  double tx_probability = 0.15;       ///< background transmit probability
  double reliable_threshold = 0.99;   ///< min delivery freq, both directions
  double unreliable_threshold = 0.05; ///< min delivery freq, either direction
};

struct ExtractionStats {
  std::size_t candidate_pairs = 0;  ///< pairs within max signal range
  std::size_t reliable_edges = 0;
  std::size_t unreliable_edges = 0;
  double scale = 1.0;  ///< graph distance = raw distance * scale
  double r = 1.0;      ///< the r for which the result is r-geographic
};

struct SinrExtraction {
  graph::DualGraph graph;  ///< finalized, rescaled embedding attached
  ExtractionStats stats;
};

/// Extracts the dual-graph abstraction of the SINR deployment `embedding`.
/// Deterministic for a given (embedding, params, seed).  Requires at least
/// one vertex and pairwise-distinct positions among pairs that fail the
/// reliability test (coincident unreliable pairs cannot satisfy (1) under
/// any rescaling).
SinrExtraction extract_dual_graph(const geo::Embedding& embedding,
                                  const SinrExtractParams& params,
                                  std::uint64_t seed);

}  // namespace dg::phys
