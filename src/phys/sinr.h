// SINR ground-truth channel: reception decided by physics, not edges.
//
// This is an *extension* beyond the source paper (see docs/PAPER_MAP.md):
// the dual graph of Section 2 abstracts radio behavior into per-edge
// reliability classes, and this channel provides the ground truth to test
// that abstraction against, in the spirit of Halldorsson-Mitra ("Towards
// Tight Bounds for Local Broadcasting") and Halldorsson-Holzer-Lynch ("A
// Local Broadcast Layer for the SINR Network Model").
//
// Model: nodes live at fixed plane positions (the deployment embedding);
// every transmitter radiates uniform power P with path-loss exponent alpha,
// so its signal at distance d is P * d^-alpha.  A listening node u decodes
// sender v iff
//
//     P d(v,u)^-alpha  >=  beta * (N + sum_{w in Tx, w != v} P d(w,u)^-alpha)
//
// and the round delivers at u iff exactly one sender clears the threshold
// (with beta >= 1 at most one sender can ever clear, so this matches the
// classical SINR reception rule).
//
// Acceleration: the naive rule costs O(n * |Tx|) per round.  SinrChannel
// buckets nodes into a geo::GridPartition cell grid whose region-graph
// radius covers the maximum decodable range, computes the signal and
// interference of *near* transmitters (cells within that radius) exactly,
// and aggregates each *far* cell's transmitters into one term
// P * count * min_cell_distance^-alpha evaluated per receiver cell.  Far
// cells are strictly beyond decodable range, so candidate senders are
// always evaluated exactly; the far-field term is a deterministic,
// conservative (over-)estimate of far interference that is monotone in the
// transmit set -- adding a transmitter never lowers any receiver's
// interference estimate, preserving the SINR monotonicity property
// (tests/phys_test.cpp).  Per-round cost is O(|Tx| + C_rx * C_tx + near
// pairs) where C are occupied cell counts -- near-linear for bounded
// density instead of O(n * |Tx|).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/point.h"
#include "geo/region_partition.h"
#include "phys/channel.h"

namespace dg::phys {

struct SinrParams {
  double alpha = 3.0;  ///< path-loss exponent (2..6 in practice)
  double beta = 2.0;   ///< decoding threshold, linear (>= 1: unique decode)
  double noise = 0.1;  ///< ambient noise N > 0
  double power = 1.0;  ///< uniform transmit power P

  /// Bucket-grid cell side (must satisfy the GridPartition diameter bound
  /// side * sqrt(2) <= 1).
  double cell_side = 0.5;

  /// Maximum distance at which a sender can clear beta even with zero
  /// interference: (P / (beta * N))^(1/alpha).  Everything farther is pure
  /// interference.
  double max_signal_range() const;
};

/// Received power of one transmitter at squared distance `distance_sq`:
/// P * d^-alpha, computed without the square root.  Distances are clamped
/// away from zero so coincident points cannot produce inf.
inline double path_gain(const SinrParams& p, double distance_sq) {
  constexpr double kMinDistSq = 1e-18;
  return p.power * std::pow(std::max(distance_sq, kMinDistSq), -0.5 * p.alpha);
}

class SinrChannel final : public ChannelModel {
 public:
  /// Positions come from the bound graph's attached embedding.
  explicit SinrChannel(const SinrParams& params);

  /// Positions come from `embedding` (one point per vertex), regardless of
  /// the bound graph's own embedding -- e.g. running processes parameterized
  /// by an *extracted* (rescaled) dual graph over the raw deployment
  /// geometry.
  SinrChannel(const SinrParams& params, geo::Embedding embedding);

  void bind(const graph::DualGraph& g, std::uint64_t master_seed) override;
  void compute_round(sim::Round round, const Bitmap& transmitting,
                     std::span<std::uint64_t> heard) override;
  /// Sharded path: prepare_round() buckets the round's transmitters and
  /// computes the per-cell far field (both functions of the transmit set
  /// alone); compute_shard() runs the per-receiver verdict loop over its
  /// range with thread-local candidate scratch.  Per-receiver arithmetic
  /// and accumulation order are identical to the serial pass, so the
  /// floating-point verdicts match bit for bit.
  bool shardable() const override { return true; }
  /// The far-field precompute (per receiver cell, disjoint writes, inner
  /// accumulation order unchanged) shards over the engine's pool when one
  /// is installed -- bit-identical to the serial pass at any thread count.
  void set_round_pool(util::ThreadPool* pool) override { pool_ = pool; }
  void prepare_round(sim::Round round, const Bitmap& transmitting) override;
  void compute_shard(sim::Round round, const Bitmap& transmitting,
                     std::span<std::uint64_t> heard, graph::Vertex begin,
                     graph::Vertex end) override;
  /// Frontier: noise > 0 bounds the decodable range, and near sets are
  /// symmetric in min_cell_distance, so every possible hearer lives in a
  /// near cell of some transmitter cell.  fill_frontier() unions those
  /// cells' members (deduped with O(activity) touched-flag scratch);
  /// compute_frontier() runs prepare_round() plus the verdict loop over
  /// frontier words only.
  bool frontier_capable() const override { return true; }
  void fill_frontier(const Bitmap& transmitting, Bitmap& frontier) override;
  void compute_frontier(sim::Round round, const Bitmap& transmitting,
                        std::span<std::uint64_t> heard,
                        const Bitmap& frontier) override;
  std::string name() const override;

  const SinrParams& params() const noexcept { return params_; }

 private:
  struct Cell {
    geo::RegionId id;
    std::vector<graph::Vertex> members;  ///< all vertices in the cell
    std::vector<std::size_t> near;       ///< cell indices within near radius
  };

  std::size_t cell_index(const geo::RegionId& id) const;

  SinrParams params_;
  geo::Embedding positions_;
  bool explicit_embedding_;
  double near_radius_ = 0.0;   ///< >= max_signal_range(), >= 1 (grid bound)
  double range_sq_ = 0.0;      ///< max_signal_range squared
  std::vector<Cell> cells_;
  std::unordered_map<geo::RegionId, std::size_t, geo::RegionIdHash>
      cell_of_id_;
  std::vector<std::size_t> cell_of_vertex_;

  // Per-round scratch, sized at bind(); written only by prepare_round(),
  // read-only during the (possibly concurrent) compute_shard() calls.
  std::vector<std::vector<graph::Vertex>> cell_tx_;  ///< transmitters per cell
  std::vector<std::size_t> tx_cells_;                ///< touched cell indices
  std::vector<double> far_field_;                    ///< per receiver cell

  // fill_frontier() dedup scratch: flags + touched lists so each call costs
  // O(activity), not O(cell count).  Sized at bind(), reset after each use.
  std::vector<std::uint8_t> frontier_tx_seen_;    ///< tx cell already expanded
  std::vector<std::uint8_t> frontier_cell_seen_;  ///< cell already unioned
  std::vector<std::size_t> frontier_tx_touched_;  ///< tx flags to reset
  std::vector<std::size_t> frontier_touched_;     ///< cell flags to reset

  util::ThreadPool* pool_ = nullptr;  ///< engine's pool; idle when we run
};

}  // namespace dg::phys
