#include "phys/channel_spec.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "scn/spec_error.h"
#include "util/specparse.h"

namespace dg::phys {

namespace {

using spec::parse_num;
using spec::split;

}  // namespace

std::string parse_channel_spec(const std::string& spec, ChannelSpec& out) {
  out = ChannelSpec{};
  if (spec == "dual" || spec == "dual_graph") return "";
  const auto colon = spec.find(':');
  if (spec.substr(0, colon) != "sinr") {
    return scn::unknown_spec("channel", spec,
                             "dual_graph, sinr:alpha,beta,noise");
  }
  out.is_sinr = true;
  if (colon != std::string::npos) {
    // Accept ':' as a separator too (scheduler specs use it), so
    // sinr:3:2:0.1 and sinr:3,2,0.1 mean the same thing.
    std::string body = spec.substr(colon + 1);
    std::replace(body.begin(), body.end(), ':', ',');
    const auto nums = split(body, ',');
    if (nums.size() > 3) {
      return "channel 'sinr' takes at most three numbers "
             "(alpha,beta,noise); got '" +
             spec + "'";
    }
    std::string error;
    const auto num = [&](std::size_t i, double dflt) {
      if (nums.size() <= i || nums[i].empty()) return dflt;
      double v = 0;
      // Shared strict rule (whole token, finite): "sinr:inf" is now
      // rejected here instead of sliding through the range checks.
      if (!parse_num(nums[i], v)) {
        error = "malformed channel number '" + nums[i] + "' in '" + spec +
                "'";
        return dflt;
      }
      return v;
    };
    out.sinr.alpha = num(0, out.sinr.alpha);
    out.sinr.beta = num(1, out.sinr.beta);
    out.sinr.noise = num(2, out.sinr.noise);
    if (!error.empty()) return error;
  }
  // Negated comparisons so NaN (which fails every ordering test) is
  // rejected too.
  if (!(out.sinr.alpha > 0.0) || !(out.sinr.beta >= 1.0) ||
      !(out.sinr.noise > 0.0)) {
    std::ostringstream os;
    os << "channel 'sinr' needs alpha > 0, beta >= 1 (unique-decode "
          "regime), noise > 0; got alpha="
       << out.sinr.alpha << " beta=" << out.sinr.beta
       << " noise=" << out.sinr.noise;
    return os.str();
  }
  return "";
}

}  // namespace dg::phys
