// The Section 2 dual-graph reception rule as a ChannelModel.
//
// A listening vertex u receives iff exactly one neighbor in the round
// topology G_t = E + {scheduler's active unreliable edges} transmitted.
// This code is the former Engine::run_round() reception pass, extracted
// verbatim behind the channel seam: the scheduler-consumption strategy
// (bulk bitmap fill vs per-incident-edge probes), the adaptive-adversary
// override and the fused heard-count/heard-from scan are all preserved, and
// the golden execution digests of tests/determinism_test.cpp pin that the
// extraction is bit-for-bit.
#pragma once

#include <string>

#include "phys/channel.h"
#include "sim/scheduler.h"

namespace dg::phys {

class DualGraphChannel final : public ChannelModel {
 public:
  /// The scheduler must outlive the channel.  bind() commits it (with the
  /// same seed stream the engine historically used), so a scheduler must
  /// not be shared across channels.
  explicit DualGraphChannel(sim::LinkScheduler& scheduler)
      : scheduler_(&scheduler) {}

  void bind(const graph::DualGraph& g, std::uint64_t master_seed) override;
  void compute_round(sim::Round round, const Bitmap& transmitting,
                     std::span<std::uint64_t> heard) override;
  void set_adaptive_adversary(sim::AdaptiveAdversary* adversary) override {
    adaptive_ = adversary;
  }
  /// Sharded path: prepare_round() runs the strategy block (adaptive plan,
  /// bulk fill vs per-edge probes) serially; compute_shard() then *gathers*
  /// per receiver -- count and max transmitting round-neighbor over u's own
  /// adjacency -- which equals the serial scatter's packed word exactly:
  /// the scatter's last writer is the largest transmitting neighbor because
  /// for_each_set scans ascending.  The serial compute_round() keeps the
  /// scatter form, which is faster when rounds are sparse in transmitters.
  bool shardable() const override { return true; }
  void prepare_round(sim::Round round, const Bitmap& transmitting) override;
  void compute_shard(sim::Round round, const Bitmap& transmitting,
                     std::span<std::uint64_t> heard, graph::Vertex begin,
                     graph::Vertex end) override;
  bool respects_dual_graph() const override { return true; }
  /// Frontier: every G-neighbor of a transmitter plus every unreliable-
  /// incident endpoint, whether or not the edge fires -- a schedule-
  /// independent superset, so the mask never consumes a scheduler draw.
  /// The serial sparse path keeps the inherited compute_frontier() default
  /// (forward to compute_round()): the scatter's writes are confined to
  /// exactly this frontier.
  bool frontier_capable() const override { return true; }
  void fill_frontier(const Bitmap& transmitting, Bitmap& frontier) override;
  std::string name() const override;

  const sim::LinkScheduler& scheduler() const noexcept { return *scheduler_; }

 private:
  const graph::DualGraph* graph_ = nullptr;
  sim::LinkScheduler* scheduler_;
  sim::AdaptiveAdversary* adaptive_ = nullptr;

  // Scratch reused every round, sized at bind().
  sim::EdgeBitmap edge_active_;           ///< this round's unreliable subset
  std::vector<bool> transmitting_bools_;  ///< adaptive plan_round view
  /// Strategy picked by prepare_round() for the round's compute_shard()
  /// calls: probe edge_active_ (true) or scheduler_->active() (false).
  bool use_bitmap_ = false;
};

}  // namespace dg::phys
