#include "geo/region_partition.h"

#include <cmath>
#include <queue>
#include <unordered_set>

#include "util/assert.h"

namespace dg::geo {

GridPartition::GridPartition(double side, double r) : side_(side), r_(r) {
  DG_EXPECTS(side > 0.0);
  // Lemma A.1 requires every region to have diameter <= 1.
  DG_EXPECTS(side * std::sqrt(2.0) <= 1.0 + 1e-12);
  DG_EXPECTS(r >= 1.0);
}

RegionId GridPartition::region_of(const Point& p) const noexcept {
  return RegionId{static_cast<std::int32_t>(std::floor(p.x / side_)),
                  static_cast<std::int32_t>(std::floor(p.y / side_))};
}

Point GridPartition::corner(const RegionId& id) const noexcept {
  return Point{id.ix * side_, id.iy * side_};
}

double GridPartition::min_cell_distance(const RegionId& a,
                                        const RegionId& b) const noexcept {
  // Gap between cells along each axis: |delta| - 1 whole cells when the
  // cells are not adjacent/overlapping on that axis.
  const auto axis_gap = [this](std::int32_t ia, std::int32_t ib) {
    const std::int64_t d = std::llabs(static_cast<std::int64_t>(ia) -
                                      static_cast<std::int64_t>(ib));
    return d <= 1 ? 0.0 : static_cast<double>(d - 1) * side_;
  };
  const double gx = axis_gap(a.ix, b.ix);
  const double gy = axis_gap(a.iy, b.iy);
  return std::sqrt(gx * gx + gy * gy);
}

bool GridPartition::adjacent(const RegionId& a,
                             const RegionId& b) const noexcept {
  if (a == b) return false;
  return min_cell_distance(a, b) <= r_;
}

std::vector<RegionId> GridPartition::neighbors(const RegionId& id) const {
  std::vector<RegionId> out;
  const auto reach = static_cast<std::int32_t>(std::ceil(r_ / side_)) + 1;
  for (std::int32_t dx = -reach; dx <= reach; ++dx) {
    for (std::int32_t dy = -reach; dy <= reach; ++dy) {
      if (dx == 0 && dy == 0) continue;
      const RegionId cand{id.ix + dx, id.iy + dy};
      if (adjacent(id, cand)) out.push_back(cand);
    }
  }
  return out;
}

void GridPartition::for_each_within_hops(
    const RegionId& id, int h,
    const std::function<void(const RegionId&, int hops)>& visit) const {
  DG_EXPECTS(h >= 0);
  std::unordered_set<RegionId, RegionIdHash> seen;
  std::queue<std::pair<RegionId, int>> frontier;
  seen.insert(id);
  frontier.emplace(id, 0);
  while (!frontier.empty()) {
    const auto [region, hops] = frontier.front();
    frontier.pop();
    visit(region, hops);
    if (hops == h) continue;
    for (const RegionId& next : neighbors(region)) {
      if (seen.insert(next).second) {
        frontier.emplace(next, hops + 1);
      }
    }
  }
}

std::size_t GridPartition::count_within_hops(const RegionId& id, int h) const {
  std::size_t count = 0;
  for_each_within_hops(id, h, [&count](const RegionId&, int) { ++count; });
  return count;
}

std::size_t GridPartition::cr_bound() const {
  // One region-graph hop spans at most ceil(r/side) + 1 cells per axis, so
  // all 1-hop neighbors (plus the region itself) fit in a square of
  // (2*(ceil(r/side)+1) + 1)^2 cells.  For side = 1/2 this is
  // (2*ceil(2r) + 3)^2 = O(r^2), matching c_r = c1 * r^2 of Lemma A.2.
  const auto reach = static_cast<std::size_t>(std::ceil(r_ / side_)) + 1;
  const std::size_t span = 2 * reach + 1;
  return span * span;
}

}  // namespace dg::geo
