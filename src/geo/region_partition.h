// The region partition of Appendix A.
//
// Lemma A.1 fixes a partition R of the plane into half-open squares of side
// 1/2 (diameter sqrt(2)/2 <= 1, satisfying f-boundedness with
// f(h) = c1 * r^2 * h^2).  The partition is an *analysis* device -- the
// algorithms never touch it -- but the verification tooling does: the seed
// spec checker and several property tests reason about regions exactly the
// way Appendix B does (goodness per region, leaders per region, neighbors in
// the region graph G_{R,r}).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geo/point.h"

namespace dg::geo {

/// Identifies one grid cell.  Cell (ix, iy) covers the half-open square
/// [ix*side, (ix+1)*side) x [iy*side, (iy+1)*side), which realizes the
/// "include only part of the boundary" rule of Lemma A.1.
struct RegionId {
  std::int32_t ix = 0;
  std::int32_t iy = 0;

  friend bool operator==(const RegionId&, const RegionId&) = default;
};

struct RegionIdHash {
  std::size_t operator()(const RegionId& r) const noexcept {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.ix)) << 32) |
        static_cast<std::uint32_t>(r.iy);
    std::uint64_t x = key + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(x ^ (x >> 27));
  }
};

/// The fixed grid partition (side defaults to the paper's 1/2) together with
/// the region graph G_{R,r}: regions R != R' are adjacent iff some points
/// p in R, q in R' satisfy d(p, q) <= r.
class GridPartition {
 public:
  explicit GridPartition(double side = 0.5, double r = 1.0);

  double side() const noexcept { return side_; }
  double r() const noexcept { return r_; }

  RegionId region_of(const Point& p) const noexcept;

  /// Lower-left (closed) corner of the cell.
  Point corner(const RegionId& id) const noexcept;

  /// Minimum Euclidean distance between the closures of two cells
  /// (0 when equal or touching).
  double min_cell_distance(const RegionId& a, const RegionId& b) const noexcept;

  /// Region-graph adjacency: distinct regions within distance r.
  bool adjacent(const RegionId& a, const RegionId& b) const noexcept;

  /// All regions adjacent to `id` in G_{R,r} (finite: the grid is infinite
  /// but only cells within ceil(r/side)+1 cell steps can qualify).
  std::vector<RegionId> neighbors(const RegionId& id) const;

  /// Number of regions whose hop distance from `id` in G_{R,r} is <= h,
  /// including `id` itself.  Used to validate f-boundedness (Lemma A.2).
  std::size_t count_within_hops(const RegionId& id, int h) const;

  /// Visits every region within hop distance <= h of `id` (including `id`).
  void for_each_within_hops(
      const RegionId& id, int h,
      const std::function<void(const RegionId&, int hops)>& visit) const;

  /// The c_r bound of Lemma A.2 for this partition: an upper bound on the
  /// number of regions within 1 hop of any region (including itself),
  /// computed exactly for the grid geometry.
  std::size_t cr_bound() const;

 private:
  double side_;
  double r_;
};

}  // namespace dg::geo
