// Plane geometry primitives for r-geographic dual graphs (paper Section 2).
#pragma once

#include <cmath>
#include <vector>

namespace dg::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

inline double distance_sq(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point& a, const Point& b) noexcept {
  return std::sqrt(distance_sq(a, b));
}

/// An embedding emb: V -> R^2 assigns a plane position to each graph vertex
/// (vertices are dense indices 0..n-1).
using Embedding = std::vector<Point>;

}  // namespace dg::geo
