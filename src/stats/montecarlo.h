// Monte Carlo trial runner.
//
// Trials are independent executions (fresh configuration + fresh master
// seed); they run in parallel across hardware threads.  Each trial function
// receives the trial index and a derived seed, and returns a sample
// structure; results come back in trial order regardless of scheduling, so
// output is deterministic for a given base seed.
//
// Scheduling is work-stealing over a shared atomic trial index rather than
// static striping: trial costs are heterogeneous (an SINR-channel trial is
// far pricier than a dual-graph trial, and within one sweep larger
// configurations cost more), so a fixed stride would leave workers idle
// behind whichever stripe drew the expensive trials.  A trial's seed
// depends only on its index, never on which worker claims it, so the
// result vector stays bit-identical across thread counts and schedules.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace dg::stats {

/// Runs `trials` invocations of fn(trial_index, trial_seed) across up to
/// `max_workers` threads (0 = hardware_concurrency()); returns results
/// indexed by trial.  The worker cap changes scheduling only, never
/// results: a trial's seed depends only on its index, so the result vector
/// is bit-identical for any thread count (the scenario runner's
/// --threads 1 vs --threads N determinism guarantee rests on this).
template <typename Fn>
auto run_trials(std::size_t trials, std::uint64_t base_seed, Fn&& fn,
                std::size_t max_workers = 0)
    -> std::vector<decltype(fn(std::size_t{}, std::uint64_t{}))> {
  using Result = decltype(fn(std::size_t{}, std::uint64_t{}));
  DG_EXPECTS(trials >= 1);
  std::vector<Result> results(trials);

  if (max_workers == 0) {
    const std::size_t hw = std::thread::hardware_concurrency();
    max_workers = hw == 0 ? 1 : hw;
  }
  const std::size_t workers = std::min(trials, max_workers);

  if (workers <= 1) {
    for (std::size_t t = 0; t < trials; ++t) {
      results[t] = fn(t, derive_seed(base_seed, t));
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
           t < trials;
           t = next.fetch_add(1, std::memory_order_relaxed)) {
        results[t] = fn(t, derive_seed(base_seed, t));
      }
    });
  }
  for (auto& th : pool) th.join();
  return results;
}

}  // namespace dg::stats
