#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace dg::stats {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  DG_EXPECTS(!sorted.empty());
  DG_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summary::of(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double x : samples) var += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = quantile_sorted(samples, 0.5);
  s.p90 = quantile_sorted(samples, 0.9);
  s.p99 = quantile_sorted(samples, 0.99);
  return s;
}

}  // namespace dg::stats
