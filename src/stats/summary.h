// Summary statistics over samples collected by the experiment harness.
#pragma once

#include <cstdint>
#include <vector>

namespace dg::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  /// Computes all fields from the samples (sorts a copy).
  static Summary of(std::vector<double> samples);
};

/// The q-quantile (0 <= q <= 1) of sorted samples, linear interpolation.
double quantile_sorted(const std::vector<double>& sorted, double q);

}  // namespace dg::stats
