// Reusable measurement observers for the experiment harness.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dual_graph.h"
#include "sim/observer.h"

namespace dg::stats {

/// Records, per vertex, the first round a *data* packet was received.
/// In single-source experiments (one designated always-active broadcaster)
/// this is exactly the progress latency the t_prog experiments measure.
class FirstReceptionProbe final : public sim::Observer {
 public:
  explicit FirstReceptionProbe(std::size_t n) : first_round_(n, 0) {}

  unsigned interest() const override { return kReceive; }
  void on_receive(sim::Round round, graph::Vertex u, graph::Vertex,
                  const sim::Packet& packet) override {
    if (!packet.is_data()) return;
    if (first_round_[u] == 0) first_round_[u] = round;
  }

  /// 0 if the vertex never received a data packet.
  sim::Round first_reception(graph::Vertex u) const {
    return first_round_[u];
  }

  const std::vector<sim::Round>& all() const noexcept { return first_round_; }

 private:
  std::vector<sim::Round> first_round_;
};

/// Records, per vertex, the first round each of a set of tracked message
/// contents was received (by content value).  Used by delivery-latency
/// measurements where specific messages matter.
class ContentReceptionProbe final : public sim::Observer {
 public:
  ContentReceptionProbe(std::size_t n, std::uint64_t tracked_content)
      : tracked_(tracked_content), first_round_(n, 0) {}

  unsigned interest() const override { return kReceive; }
  void on_receive(sim::Round round, graph::Vertex u, graph::Vertex,
                  const sim::Packet& packet) override {
    if (!packet.is_data() || packet.data().content != tracked_) return;
    if (first_round_[u] == 0) first_round_[u] = round;
  }

  sim::Round first_reception(graph::Vertex u) const {
    return first_round_[u];
  }

 private:
  std::uint64_t tracked_;
  std::vector<sim::Round> first_round_;
};

/// Counts transmissions and receptions per round bucket (engine throughput
/// and contention diagnostics).
class TrafficProbe final : public sim::Observer {
 public:
  unsigned interest() const override {
    return kTransmit | kReceive | kSilence;
  }
  void on_transmit(sim::Round, graph::Vertex, const sim::Packet&) override {
    ++transmissions_;
  }
  void on_receive(sim::Round, graph::Vertex, graph::Vertex,
                  const sim::Packet&) override {
    ++receptions_;
  }
  void on_silence(sim::Round, graph::Vertex, bool collision) override {
    if (collision) ++collisions_;
  }

  std::uint64_t transmissions() const noexcept { return transmissions_; }
  std::uint64_t receptions() const noexcept { return receptions_; }
  std::uint64_t collisions() const noexcept { return collisions_; }

 private:
  std::uint64_t transmissions_ = 0;
  std::uint64_t receptions_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace dg::stats
