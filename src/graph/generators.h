// Topology generators.  Every generator returns a finalized DualGraph; the
// geometric families attach their r-geographic embedding, so tests can
// re-validate the Section 2 constraints and the analysis tooling can
// partition the plane.  The purely combinatorial families (contention_star,
// disjoint_cliques) carry no embedding.
#pragma once

#include <cstddef>

#include "graph/dual_graph.h"
#include "util/rng.h"

namespace dg::graph {

/// Random geometric dual graph: n points uniform in [0, side]^2.
///   d <= 1        -> reliable edge (forced by the r-geographic property);
///   1 < d <= r    -> the "grey zone": reliable with prob p_grey_reliable,
///                    else unreliable with prob p_grey_unreliable, else
///                    absent (all three allowed by the model);
///   d > r         -> no edge (forced).
struct GeometricSpec {
  std::size_t n = 64;
  double side = 4.0;
  double r = 1.5;
  double p_grey_reliable = 0.1;
  double p_grey_unreliable = 0.6;
};

DualGraph random_geometric(const GeometricSpec& spec, Rng& rng);

/// Deterministic grid of cols x rows nodes with the given spacing; grey-zone
/// pairs become unreliable edges (deterministically, for reproducible
/// multi-hop topologies).  spacing <= 1 keeps the grid G-connected.
DualGraph grid(std::size_t cols, std::size_t rows, double spacing, double r);

/// A cluster of n mutually reliable nodes (all inside a ball of diameter 1):
/// the clique that realizes the Omega(log) progress lower bound of Section 1
/// (symmetry breaking among an unknown subset of n contenders).
DualGraph clique_cluster(std::size_t n);

/// Hub node 0 at the origin plus `leaves` nodes on the unit circle around
/// it: every leaf is a reliable neighbor of the hub.  Realizes the
/// Omega(Delta) acknowledgement lower bound of Section 1 (the hub can
/// receive at most one message per round).  Chord-adjacent leaves closer
/// than distance 1 also get reliable edges, as the geographic property
/// forces.
DualGraph star_ring(std::size_t leaves, double r);

/// `n` nodes on a line with the given spacing; pairs in the grey zone get
/// unreliable edges.  The classic multi-hop pipeline for flood benchmarks.
DualGraph line(std::size_t n, double spacing, double r);

/// Two reliable cliques whose only interconnection is a band of *unreliable*
/// edges: communication across the cut exists only when the scheduler allows
/// it.  Exercises progress/validity under total link unreliability.
DualGraph bridged_clusters(std::size_t per_cluster, double r);

/// The contention-star topology of the paper's Discussion section: receiver
/// 0, one reliable sender (vertex 1), and `unreliable_neighbors` vertices
/// attached to the receiver by unreliable edges only.  No embedding (the
/// topology is combinatorial, not geometric).
DualGraph contention_star(std::size_t unreliable_neighbors);

/// Disjoint union of `cliques` cliques of `clique_size` mutually-reliable
/// nodes: the fixed-Delta, growing-n family for the locality experiments.
/// No embedding.
DualGraph disjoint_cliques(std::size_t cliques, std::size_t clique_size);

}  // namespace dg::graph
