#include "graph/dual_graph.h"

#include <algorithm>

#include "util/assert.h"

namespace dg::graph {

namespace {

/// Packs per-vertex builder lists into offsets + one contiguous data array,
/// releasing the builder storage as it goes.
template <typename T>
void pack_csr(std::vector<std::vector<T>>& lists,
              std::vector<std::size_t>& offsets, std::vector<T>& data) {
  const std::size_t n = lists.size();
  offsets.resize(n + 1);
  std::size_t total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    offsets[u] = total;
    total += lists[u].size();
  }
  offsets[n] = total;
  data.reserve(total);
  for (auto& list : lists) {
    data.insert(data.end(), list.begin(), list.end());
    list = {};  // release per-vertex storage eagerly
  }
  lists = {};
}

}  // namespace

DualGraph::DualGraph(std::size_t n)
    : n_(n),
      build_g_adj_(n),
      build_gprime_adj_(n),
      build_unreliable_adj_(n) {
  DG_EXPECTS(n >= 1);
}

void DualGraph::add_reliable_edge(Vertex u, Vertex v) {
  check_builder();
  check_vertex(u);
  check_vertex(v);
  DG_EXPECTS(u != v);
  auto& au = build_g_adj_[u];
  if (std::find(au.begin(), au.end(), v) != au.end()) return;  // idempotent
  // Must not previously have been added as unreliable: E and E' \ E are
  // built disjointly (generators decide the class of each edge once).
  DG_EXPECTS(std::none_of(
      build_unreliable_adj_[u].begin(), build_unreliable_adj_[u].end(),
      [v](const auto& entry) { return entry.second == v; }));
  build_g_adj_[u].push_back(v);
  build_g_adj_[v].push_back(u);
  build_gprime_adj_[u].push_back(v);
  build_gprime_adj_[v].push_back(u);
}

void DualGraph::add_unreliable_edge(Vertex u, Vertex v) {
  check_builder();
  check_vertex(u);
  check_vertex(v);
  DG_EXPECTS(u != v);
  const auto& au = build_unreliable_adj_[u];
  if (std::any_of(au.begin(), au.end(),
                  [v](const auto& entry) { return entry.second == v; })) {
    return;  // idempotent
  }
  DG_EXPECTS(std::find(build_g_adj_[u].begin(), build_g_adj_[u].end(), v) ==
             build_g_adj_[u].end());
  const auto id = static_cast<UnreliableEdgeId>(unreliable_edges_.size());
  unreliable_edges_.push_back(UnreliableEdge{u, v});
  build_unreliable_adj_[u].emplace_back(id, v);
  build_unreliable_adj_[v].emplace_back(id, u);
  build_gprime_adj_[u].push_back(v);
  build_gprime_adj_[v].push_back(u);
}

void DualGraph::set_embedding(geo::Embedding embedding, double r) {
  check_builder();
  DG_EXPECTS(embedding.size() == n_);
  DG_EXPECTS(r >= 1.0);
  embedding_ = std::move(embedding);
  r_ = r;
}

void DualGraph::finalize() {
  check_builder();
  finalized_ = true;
  delta_ = 1;
  delta_prime_ = 1;
  for (std::size_t u = 0; u < n_; ++u) {
    std::sort(build_g_adj_[u].begin(), build_g_adj_[u].end());
    std::sort(build_gprime_adj_[u].begin(), build_gprime_adj_[u].end());
    // Unreliable incidence keeps insertion order: consumers (e.g. the
    // targeted jammer's "first transmitting incident edge" rule) observe it.
    delta_ = std::max(delta_, build_g_adj_[u].size() + 1);
    delta_prime_ = std::max(delta_prime_, build_gprime_adj_[u].size() + 1);
  }
  pack_csr(build_g_adj_, g_offsets_, g_data_);
  pack_csr(build_gprime_adj_, gprime_offsets_, gprime_data_);
  pack_csr(build_unreliable_adj_, unreliable_offsets_, unreliable_data_);
}

bool DualGraph::has_reliable_edge(Vertex u, Vertex v) const {
  check_vertex(v);
  const auto adj = g_neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

bool DualGraph::has_gprime_edge(Vertex u, Vertex v) const {
  check_vertex(v);
  const auto adj = gprime_neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::size_t DualGraph::unreliable_edge_count() const {
  check_finalized();
  return unreliable_edges_.size();
}

const UnreliableEdge& DualGraph::unreliable_edge(UnreliableEdgeId id) const {
  check_finalized();
  DG_EXPECTS(id < unreliable_edges_.size());
  return unreliable_edges_[id];
}

std::size_t DualGraph::delta() const {
  check_finalized();
  return delta_;
}

std::size_t DualGraph::delta_prime() const {
  check_finalized();
  return delta_prime_;
}

bool is_r_geographic(const DualGraph& g, const geo::Embedding& embedding,
                     double r) {
  DG_EXPECTS(embedding.size() == g.size());
  DG_EXPECTS(r >= 1.0);
  const auto n = static_cast<Vertex>(g.size());
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const double d = geo::distance(embedding[u], embedding[v]);
      if (d <= 1.0 && !g.has_reliable_edge(u, v)) return false;
      if (d > r && g.has_gprime_edge(u, v)) return false;
    }
  }
  return true;
}

}  // namespace dg::graph
