#include "graph/dual_graph.h"

#include <algorithm>

#include "util/assert.h"

namespace dg::graph {

DualGraph::DualGraph(std::size_t n)
    : n_(n),
      g_adj_(n),
      gprime_adj_(n),
      unreliable_adj_(n) {
  DG_EXPECTS(n >= 1);
}

void DualGraph::check_vertex(Vertex u) const { DG_EXPECTS(u < n_); }

void DualGraph::check_builder() const { DG_EXPECTS(!finalized_); }

void DualGraph::check_finalized() const { DG_EXPECTS(finalized_); }

void DualGraph::add_reliable_edge(Vertex u, Vertex v) {
  check_builder();
  check_vertex(u);
  check_vertex(v);
  DG_EXPECTS(u != v);
  auto& au = g_adj_[u];
  if (std::find(au.begin(), au.end(), v) != au.end()) return;  // idempotent
  // Must not previously have been added as unreliable: E and E' \ E are
  // built disjointly (generators decide the class of each edge once).
  DG_EXPECTS(std::none_of(
      unreliable_adj_[u].begin(), unreliable_adj_[u].end(),
      [v](const auto& entry) { return entry.second == v; }));
  g_adj_[u].push_back(v);
  g_adj_[v].push_back(u);
  gprime_adj_[u].push_back(v);
  gprime_adj_[v].push_back(u);
}

void DualGraph::add_unreliable_edge(Vertex u, Vertex v) {
  check_builder();
  check_vertex(u);
  check_vertex(v);
  DG_EXPECTS(u != v);
  const auto& au = unreliable_adj_[u];
  if (std::any_of(au.begin(), au.end(),
                  [v](const auto& entry) { return entry.second == v; })) {
    return;  // idempotent
  }
  DG_EXPECTS(std::find(g_adj_[u].begin(), g_adj_[u].end(), v) ==
             g_adj_[u].end());
  const auto id = static_cast<UnreliableEdgeId>(unreliable_edges_.size());
  unreliable_edges_.push_back(UnreliableEdge{u, v});
  unreliable_adj_[u].emplace_back(id, v);
  unreliable_adj_[v].emplace_back(id, u);
  gprime_adj_[u].push_back(v);
  gprime_adj_[v].push_back(u);
}

void DualGraph::set_embedding(geo::Embedding embedding, double r) {
  check_builder();
  DG_EXPECTS(embedding.size() == n_);
  DG_EXPECTS(r >= 1.0);
  embedding_ = std::move(embedding);
  r_ = r;
}

void DualGraph::finalize() {
  check_builder();
  finalized_ = true;
  delta_ = 1;
  delta_prime_ = 1;
  for (std::size_t u = 0; u < n_; ++u) {
    std::sort(g_adj_[u].begin(), g_adj_[u].end());
    std::sort(gprime_adj_[u].begin(), gprime_adj_[u].end());
    delta_ = std::max(delta_, g_adj_[u].size() + 1);
    delta_prime_ = std::max(delta_prime_, gprime_adj_[u].size() + 1);
  }
}

const std::vector<Vertex>& DualGraph::g_neighbors(Vertex u) const {
  check_finalized();
  check_vertex(u);
  return g_adj_[u];
}

const std::vector<Vertex>& DualGraph::gprime_neighbors(Vertex u) const {
  check_finalized();
  check_vertex(u);
  return gprime_adj_[u];
}

const std::vector<std::pair<UnreliableEdgeId, Vertex>>&
DualGraph::unreliable_incident(Vertex u) const {
  check_finalized();
  check_vertex(u);
  return unreliable_adj_[u];
}

bool DualGraph::has_reliable_edge(Vertex u, Vertex v) const {
  check_finalized();
  check_vertex(u);
  check_vertex(v);
  const auto& adj = g_adj_[u];
  return std::binary_search(adj.begin(), adj.end(), v);
}

bool DualGraph::has_gprime_edge(Vertex u, Vertex v) const {
  check_finalized();
  check_vertex(u);
  check_vertex(v);
  const auto& adj = gprime_adj_[u];
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::size_t DualGraph::unreliable_edge_count() const {
  check_finalized();
  return unreliable_edges_.size();
}

const UnreliableEdge& DualGraph::unreliable_edge(UnreliableEdgeId id) const {
  check_finalized();
  DG_EXPECTS(id < unreliable_edges_.size());
  return unreliable_edges_[id];
}

std::size_t DualGraph::delta() const {
  check_finalized();
  return delta_;
}

std::size_t DualGraph::delta_prime() const {
  check_finalized();
  return delta_prime_;
}

bool is_r_geographic(const DualGraph& g, const geo::Embedding& embedding,
                     double r) {
  DG_EXPECTS(embedding.size() == g.size());
  DG_EXPECTS(r >= 1.0);
  const auto n = static_cast<Vertex>(g.size());
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const double d = geo::distance(embedding[u], embedding[v]);
      if (d <= 1.0 && !g.has_reliable_edge(u, v)) return false;
      if (d > r && g.has_gprime_edge(u, v)) return false;
    }
  }
  return true;
}

}  // namespace dg::graph
