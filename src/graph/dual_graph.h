// The dual graph (G, G') of Section 2: G = (V, E) carries reliable links,
// G' = (V, E') with E a subset of E' adds the unreliable links E' \ E whose
// round-by-round presence is chosen by an oblivious link scheduler.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/point.h"

namespace dg::graph {

/// Dense vertex index (the paper's graph vertex u in V).
using Vertex = std::uint32_t;

/// Index of an unreliable edge (an element of E' \ E); the link scheduler
/// addresses edges by this index.
using UnreliableEdgeId = std::uint32_t;

struct UnreliableEdge {
  Vertex u = 0;
  Vertex v = 0;
};

/// Immutable-after-build dual graph with adjacency lists for G and for the
/// unreliable part E' \ E, plus the degree bounds Delta and Delta' the
/// processes are allowed to know.
class DualGraph {
 public:
  explicit DualGraph(std::size_t n);

  // ---- construction (builder phase) ----

  /// Adds {u, v} to E (and hence to E').  Idempotent.
  void add_reliable_edge(Vertex u, Vertex v);
  /// Adds {u, v} to E' \ E.  Must not already be reliable.  Idempotent.
  void add_unreliable_edge(Vertex u, Vertex v);
  /// Attaches the plane embedding used to generate the graph (optional; used
  /// by validators and the analysis tooling, never by algorithms).
  void set_embedding(geo::Embedding embedding, double r);

  /// Freezes the graph: sorts adjacency, computes degree bounds.  Must be
  /// called exactly once before any query; enforced by contract checks.
  void finalize();

  // ---- queries (after finalize) ----

  std::size_t size() const noexcept { return n_; }
  bool finalized() const noexcept { return finalized_; }

  const std::vector<Vertex>& g_neighbors(Vertex u) const;
  /// All G'-neighbors (reliable + unreliable), sorted.
  const std::vector<Vertex>& gprime_neighbors(Vertex u) const;
  /// Unreliable incident edges of u as (edge id, other endpoint) pairs.
  const std::vector<std::pair<UnreliableEdgeId, Vertex>>& unreliable_incident(
      Vertex u) const;

  bool has_reliable_edge(Vertex u, Vertex v) const;
  bool has_gprime_edge(Vertex u, Vertex v) const;

  std::size_t unreliable_edge_count() const;
  const UnreliableEdge& unreliable_edge(UnreliableEdgeId id) const;

  /// Delta: max over u of |N_G(u) u {u}| (paper Section 2).
  std::size_t delta() const;
  /// Delta': max over u of |N_G'(u) u {u}|.
  std::size_t delta_prime() const;

  const std::optional<geo::Embedding>& embedding() const noexcept {
    return embedding_;
  }
  /// The r for which the attached embedding is claimed r-geographic
  /// (meaningful only when an embedding is attached).
  double r() const noexcept { return r_; }

 private:
  void check_vertex(Vertex u) const;
  void check_builder() const;
  void check_finalized() const;

  std::size_t n_;
  bool finalized_ = false;
  std::vector<std::vector<Vertex>> g_adj_;
  std::vector<std::vector<Vertex>> gprime_adj_;
  std::vector<std::vector<std::pair<UnreliableEdgeId, Vertex>>>
      unreliable_adj_;
  std::vector<UnreliableEdge> unreliable_edges_;
  std::size_t delta_ = 1;
  std::size_t delta_prime_ = 1;
  std::optional<geo::Embedding> embedding_;
  double r_ = 1.0;
};

/// Checks the two r-geographic conditions of Section 2 against an embedding:
///   (1) d(u, v) <= 1  implies {u, v} in E;
///   (2) d(u, v) > r   implies {u, v} not in E'.
/// Returns true iff both hold for every vertex pair.
bool is_r_geographic(const DualGraph& g, const geo::Embedding& embedding,
                     double r);

}  // namespace dg::graph
