// The dual graph (G, G') of Section 2: G = (V, E) carries reliable links,
// G' = (V, E') with E a subset of E' adds the unreliable links E' \ E whose
// round-by-round presence is chosen by an oblivious link scheduler.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "geo/point.h"
#include "util/assert.h"

namespace dg::graph {

/// Dense vertex index (the paper's graph vertex u in V).
using Vertex = std::uint32_t;

/// Index of an unreliable edge (an element of E' \ E); the link scheduler
/// addresses edges by this index.
using UnreliableEdgeId = std::uint32_t;

struct UnreliableEdge {
  Vertex u = 0;
  Vertex v = 0;
};

/// Immutable-after-build dual graph with adjacency for G and for the
/// unreliable part E' \ E, plus the degree bounds Delta and Delta' the
/// processes are allowed to know.
///
/// Construction uses per-vertex builder lists; finalize() freezes them into
/// flat CSR (offset + data) arrays so the round engine's neighbor scans are
/// contiguous loads instead of pointer-chasing vector<vector> hops.  All
/// query accessors hand out spans over the CSR data.
class DualGraph {
 public:
  /// (edge id, other endpoint) entry of a vertex's unreliable incidence.
  using IncidentEdge = std::pair<UnreliableEdgeId, Vertex>;

  explicit DualGraph(std::size_t n);

  // ---- construction (builder phase) ----

  /// Adds {u, v} to E (and hence to E').  Idempotent.
  void add_reliable_edge(Vertex u, Vertex v);
  /// Adds {u, v} to E' \ E.  Must not already be reliable.  Idempotent.
  void add_unreliable_edge(Vertex u, Vertex v);
  /// Attaches the plane embedding used to generate the graph (optional; used
  /// by validators and the analysis tooling, never by algorithms).
  void set_embedding(geo::Embedding embedding, double r);

  /// Freezes the graph: sorts adjacency, packs it into CSR arrays, computes
  /// degree bounds, and releases the builder lists.  Must be called exactly
  /// once before any query; enforced by contract checks.
  void finalize();

  // ---- queries (after finalize) ----

  std::size_t size() const noexcept { return n_; }
  bool finalized() const noexcept { return finalized_; }

  // The three adjacency accessors are the round engine's innermost loads;
  // they are defined inline (below) so the CSR base pointers stay in
  // registers across a transmitter scan.
  std::span<const Vertex> g_neighbors(Vertex u) const;
  /// All G'-neighbors (reliable + unreliable), sorted.
  std::span<const Vertex> gprime_neighbors(Vertex u) const;
  /// Unreliable incident edges of u as (edge id, other endpoint) pairs.
  std::span<const IncidentEdge> unreliable_incident(Vertex u) const;

  bool has_reliable_edge(Vertex u, Vertex v) const;
  bool has_gprime_edge(Vertex u, Vertex v) const;

  std::size_t unreliable_edge_count() const;
  const UnreliableEdge& unreliable_edge(UnreliableEdgeId id) const;

  /// Delta: max over u of |N_G(u) u {u}| (paper Section 2).
  std::size_t delta() const;
  /// Delta': max over u of |N_G'(u) u {u}|.
  std::size_t delta_prime() const;

  const std::optional<geo::Embedding>& embedding() const noexcept {
    return embedding_;
  }
  /// The r for which the attached embedding is claimed r-geographic
  /// (meaningful only when an embedding is attached).
  double r() const noexcept { return r_; }

 private:
  void check_vertex(Vertex u) const { DG_EXPECTS(u < n_); }
  void check_builder() const { DG_EXPECTS(!finalized_); }
  void check_finalized() const { DG_EXPECTS(finalized_); }

  std::size_t n_;
  bool finalized_ = false;

  // Builder-phase adjacency; emptied by finalize().
  std::vector<std::vector<Vertex>> build_g_adj_;
  std::vector<std::vector<Vertex>> build_gprime_adj_;
  std::vector<std::vector<IncidentEdge>> build_unreliable_adj_;

  // Frozen CSR arrays: neighbors of u live at data[offsets[u] ..
  // offsets[u + 1]).
  std::vector<std::size_t> g_offsets_;
  std::vector<Vertex> g_data_;
  std::vector<std::size_t> gprime_offsets_;
  std::vector<Vertex> gprime_data_;
  std::vector<std::size_t> unreliable_offsets_;
  std::vector<IncidentEdge> unreliable_data_;

  std::vector<UnreliableEdge> unreliable_edges_;
  std::size_t delta_ = 1;
  std::size_t delta_prime_ = 1;
  std::optional<geo::Embedding> embedding_;
  double r_ = 1.0;
};

inline std::span<const Vertex> DualGraph::g_neighbors(Vertex u) const {
  check_finalized();
  check_vertex(u);
  return {g_data_.data() + g_offsets_[u], g_offsets_[u + 1] - g_offsets_[u]};
}

inline std::span<const Vertex> DualGraph::gprime_neighbors(Vertex u) const {
  check_finalized();
  check_vertex(u);
  return {gprime_data_.data() + gprime_offsets_[u],
          gprime_offsets_[u + 1] - gprime_offsets_[u]};
}

inline std::span<const DualGraph::IncidentEdge> DualGraph::unreliable_incident(
    Vertex u) const {
  check_finalized();
  check_vertex(u);
  return {unreliable_data_.data() + unreliable_offsets_[u],
          unreliable_offsets_[u + 1] - unreliable_offsets_[u]};
}

/// Checks the two r-geographic conditions of Section 2 against an embedding:
///   (1) d(u, v) <= 1  implies {u, v} in E;
///   (2) d(u, v) > r   implies {u, v} not in E'.
/// Returns true iff both hold for every vertex pair.
bool is_r_geographic(const DualGraph& g, const geo::Embedding& embedding,
                     double r);

}  // namespace dg::graph
