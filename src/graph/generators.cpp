#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numbers>
#include <vector>

#include "geo/point.h"
#include "util/assert.h"

namespace dg::graph {

namespace {

/// Wires every vertex pair according to the r-geographic rules, using
/// `grey_decision` to classify grey-zone pairs (return values: 0 = absent,
/// 1 = reliable, 2 = unreliable).
template <typename GreyFn>
void wire_geometric(DualGraph& g, const geo::Embedding& pts, double r,
                    GreyFn&& grey_decision) {
  const auto n = static_cast<Vertex>(pts.size());
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const double d = geo::distance(pts[u], pts[v]);
      if (d <= 1.0) {
        g.add_reliable_edge(u, v);
      } else if (d <= r) {
        switch (grey_decision(u, v, d)) {
          case 1:
            g.add_reliable_edge(u, v);
            break;
          case 2:
            g.add_unreliable_edge(u, v);
            break;
          default:
            break;
        }
      }
    }
  }
}

}  // namespace

DualGraph random_geometric(const GeometricSpec& spec, Rng& rng) {
  DG_EXPECTS(spec.n >= 1);
  DG_EXPECTS(spec.side > 0.0);
  DG_EXPECTS(spec.r >= 1.0);
  DG_EXPECTS(spec.p_grey_reliable >= 0.0 && spec.p_grey_reliable <= 1.0);
  DG_EXPECTS(spec.p_grey_unreliable >= 0.0 && spec.p_grey_unreliable <= 1.0);

  geo::Embedding pts(spec.n);
  for (auto& p : pts) {
    p = geo::Point{rng.uniform(0.0, spec.side), rng.uniform(0.0, spec.side)};
  }

  DualGraph g(spec.n);
  wire_geometric(g, pts, spec.r, [&](Vertex, Vertex, double) {
    if (rng.chance(spec.p_grey_reliable)) return 1;
    if (rng.chance(spec.p_grey_unreliable)) return 2;
    return 0;
  });
  g.set_embedding(std::move(pts), spec.r);
  g.finalize();
  return g;
}

DualGraph grid(std::size_t cols, std::size_t rows, double spacing, double r) {
  DG_EXPECTS(cols >= 1 && rows >= 1);
  DG_EXPECTS(spacing > 0.0);
  DG_EXPECTS(r >= 1.0);
  const std::size_t n = cols * rows;
  geo::Embedding pts(n);
  for (std::size_t j = 0; j < rows; ++j) {
    for (std::size_t i = 0; i < cols; ++i) {
      pts[j * cols + i] = geo::Point{i * spacing, j * spacing};
    }
  }
  DualGraph g(n);
  // Lattice fast path: every candidate neighbor sits within
  // ceil(r / spacing) grid steps, so wire by bounded offset enumeration --
  // O(n * (r/spacing)^2) instead of the all-pairs O(n^2) scan, which is
  // what makes the nightly grid:1000x1000 (10^6 vertices, 5*10^11 pairs
  // all-pairs) campaign feasible.  Candidates are sorted ascending and
  // classified through geo::distance on the embedded points, so both the
  // edge insertion order (= unreliable edge ids) and the floating-point
  // boundary decisions are bit-identical to wire_geometric's scan.
  const auto reach = static_cast<std::ptrdiff_t>(std::ceil(r / spacing));
  const auto icols = static_cast<std::ptrdiff_t>(cols);
  const auto irows = static_cast<std::ptrdiff_t>(rows);
  std::vector<Vertex> candidates;
  for (std::ptrdiff_t j = 0; j < irows; ++j) {
    for (std::ptrdiff_t i = 0; i < icols; ++i) {
      const Vertex u = static_cast<Vertex>(j * icols + i);
      candidates.clear();
      for (std::ptrdiff_t dj = 0; dj <= reach; ++dj) {
        const std::ptrdiff_t j2 = j + dj;
        if (j2 >= irows) break;
        for (std::ptrdiff_t di = (dj == 0 ? 1 : -reach); di <= reach; ++di) {
          const std::ptrdiff_t i2 = i + di;
          if (i2 < 0 || i2 >= icols) continue;
          candidates.push_back(static_cast<Vertex>(j2 * icols + i2));
        }
      }
      std::sort(candidates.begin(), candidates.end());
      for (const Vertex v : candidates) {
        const double d = geo::distance(pts[u], pts[v]);
        if (d <= 1.0) {
          g.add_reliable_edge(u, v);
        } else if (d <= r) {
          g.add_unreliable_edge(u, v);  // grey -> E'\E
        }
      }
    }
  }
  g.set_embedding(std::move(pts), r);
  g.finalize();
  return g;
}

DualGraph clique_cluster(std::size_t n) {
  DG_EXPECTS(n >= 1);
  geo::Embedding pts(n);
  // Pack all nodes in a tiny disc so every pair is within distance 1.
  const double radius = 0.25;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    const double rho = radius * (n == 1 ? 0.0 : 1.0);
    pts[i] = geo::Point{rho * std::cos(angle), rho * std::sin(angle)};
  }
  DualGraph g(n);
  wire_geometric(g, pts, /*r=*/1.0, [](Vertex, Vertex, double) { return 0; });
  g.set_embedding(std::move(pts), 1.0);
  g.finalize();
  return g;
}

DualGraph star_ring(std::size_t leaves, double r) {
  DG_EXPECTS(leaves >= 1);
  DG_EXPECTS(r >= 1.0);
  const std::size_t n = leaves + 1;
  geo::Embedding pts(n);
  pts[0] = geo::Point{0.0, 0.0};  // hub
  for (std::size_t i = 0; i < leaves; ++i) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(i) /
                         static_cast<double>(leaves);
    pts[i + 1] = geo::Point{std::cos(angle), std::sin(angle)};
  }
  DualGraph g(n);
  // Grey-zone leaf pairs stay unconnected: the star stays as sparse as the
  // geographic property permits, concentrating contention on the hub.
  wire_geometric(g, pts, r, [](Vertex, Vertex, double) { return 0; });
  g.set_embedding(std::move(pts), r);
  g.finalize();
  return g;
}

DualGraph line(std::size_t n, double spacing, double r) {
  DG_EXPECTS(n >= 1);
  DG_EXPECTS(spacing > 0.0);
  DG_EXPECTS(r >= 1.0);
  geo::Embedding pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = geo::Point{static_cast<double>(i) * spacing, 0.0};
  }
  DualGraph g(n);
  wire_geometric(g, pts, r, [](Vertex, Vertex, double) { return 2; });
  g.set_embedding(std::move(pts), r);
  g.finalize();
  return g;
}

DualGraph bridged_clusters(std::size_t per_cluster, double r) {
  DG_EXPECTS(per_cluster >= 1);
  DG_EXPECTS(r >= 1.2);  // need grey-zone room for the bridge
  const std::size_t n = 2 * per_cluster;
  geo::Embedding pts(n);
  // Cluster A in a disc around (0, 0), cluster B around (gap, 0), with
  // 1 < gap <= r so cross-cluster pairs are exactly in the grey zone.
  const double gap = 1.0 + (r - 1.0) * 0.5;
  const double radius = 0.05;
  for (std::size_t i = 0; i < per_cluster; ++i) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(i) /
                         static_cast<double>(per_cluster);
    pts[i] = geo::Point{radius * std::cos(angle), radius * std::sin(angle)};
    pts[per_cluster + i] =
        geo::Point{gap + radius * std::cos(angle), radius * std::sin(angle)};
  }
  DualGraph g(n);
  wire_geometric(g, pts, r, [](Vertex, Vertex, double) { return 2; });
  g.set_embedding(std::move(pts), r);
  g.finalize();
  return g;
}

DualGraph contention_star(std::size_t unreliable_neighbors) {
  DualGraph g(unreliable_neighbors + 2);
  g.add_reliable_edge(0, 1);
  for (Vertex v = 2; v < unreliable_neighbors + 2; ++v) {
    g.add_unreliable_edge(0, v);
  }
  g.finalize();
  return g;
}

DualGraph disjoint_cliques(std::size_t cliques, std::size_t clique_size) {
  DualGraph g(cliques * clique_size);
  for (std::size_t c = 0; c < cliques; ++c) {
    for (std::size_t i = 0; i < clique_size; ++i) {
      for (std::size_t j = i + 1; j < clique_size; ++j) {
        g.add_reliable_edge(static_cast<Vertex>(c * clique_size + i),
                            static_cast<Vertex>(c * clique_size + j));
      }
    }
  }
  g.finalize();
  return g;
}

}  // namespace dg::graph
